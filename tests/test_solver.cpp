// Tests for the linear and nonlinear solver stack: GMRES on known
// systems, Schwarz preconditioner variants, and the full psi-NKS driver on
// the Euler problem (end-to-end integration).

#include <gtest/gtest.h>

#include <cmath>

#include "cfd/problem.hpp"
#include "common/rng.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "solver/gmres.hpp"
#include "solver/newton.hpp"
#include "solver/precond.hpp"
#include "sparse/assembly.hpp"
#include "sparse/vec.hpp"

namespace {

using namespace f3d;
using namespace f3d::solver;
using sparse::Vec;

// Synthetic SPD-ish block system on a small box mesh.
struct SmallSystem {
  sparse::Bcsr<double> a;
  Vec b;
  Vec x_true;
};

SmallSystem make_system(int nb = 4, int nx = 4) {
  auto m = mesh::generate_box_mesh(nx, nx, nx);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  SmallSystem sys;
  sys.a = sparse::build_bcsr(s, nb, fn);
  Rng rng(1);
  sys.x_true.resize(sys.a.scalar_n());
  for (auto& v : sys.x_true) v = rng.uniform(-1, 1);
  sys.b.resize(sys.x_true.size());
  sys.a.spmv(sys.x_true, sys.b);
  return sys;
}

LinearOperator op_of(const sparse::Bcsr<double>& a) {
  LinearOperator op;
  op.n = a.scalar_n();
  op.apply = [&a](const double* x, double* y) { a.spmv(x, y); };
  return op;
}

// --- GMRES --------------------------------------------------------------

TEST(Gmres, SolvesIdentity) {
  LinearOperator op;
  op.n = 5;
  op.apply = [](const double* x, double* y) {
    for (int i = 0; i < 5; ++i) y[i] = x[i];
  };
  Vec b = {1, 2, 3, 4, 5}, x(5, 0.0);
  IdentityPreconditioner m(5);
  auto r = gmres(op, m, b, x, {});
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 1);
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(x[i], b[i], 1e-12);
}

TEST(Gmres, SolvesBlockSystemUnpreconditioned) {
  auto sys = make_system();
  auto op = op_of(sys.a);
  IdentityPreconditioner m(op.n);
  Vec x(op.n, 0.0);
  GmresOptions o;
  o.rtol = 1e-10;
  o.max_iters = 300;
  o.restart = 30;
  auto r = gmres(op, m, sys.b, x, o);
  EXPECT_TRUE(r.converged);
  double err = 0;
  for (int i = 0; i < op.n; ++i) err = std::max(err, std::abs(x[i] - sys.x_true[i]));
  EXPECT_LT(err, 1e-7);
}

TEST(Gmres, ClassicalAndModifiedGsAgree) {
  auto sys = make_system();
  auto op = op_of(sys.a);
  IdentityPreconditioner m(op.n);
  GmresOptions o;
  o.rtol = 1e-8;
  o.max_iters = 200;
  Vec x1(op.n, 0.0), x2(op.n, 0.0);
  o.orth = Orthogonalization::kModifiedGramSchmidt;
  auto r1 = gmres(op, m, sys.b, x1, o);
  o.orth = Orthogonalization::kClassicalGramSchmidt;
  auto r2 = gmres(op, m, sys.b, x2, o);
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  // Same system, nearly identical iteration counts for a well-conditioned
  // problem.
  EXPECT_NEAR(r1.iterations, r2.iterations, 3);
}

TEST(Gmres, PreconditioningReducesIterations) {
  auto sys = make_system();
  auto op = op_of(sys.a);
  GmresOptions o;
  o.rtol = 1e-8;
  o.max_iters = 300;

  IdentityPreconditioner ident(op.n);
  Vec x1(op.n, 0.0);
  auto r_plain = gmres(op, ident, sys.b, x1, o);

  auto ilu = make_global_ilu(sys.a, 0);
  Vec x2(op.n, 0.0);
  auto r_prec = gmres(op, *ilu, sys.b, x2, o);

  EXPECT_TRUE(r_prec.converged);
  EXPECT_LT(r_prec.iterations, r_plain.iterations);
}

TEST(Gmres, HonorsIterationLimit) {
  auto sys = make_system();
  auto op = op_of(sys.a);
  IdentityPreconditioner m(op.n);
  GmresOptions o;
  o.rtol = 1e-14;
  o.max_iters = 3;
  Vec x(op.n, 0.0);
  auto r = gmres(op, m, sys.b, x, o);
  EXPECT_LE(r.iterations, 3);
}

TEST(Gmres, CountersTrackWork) {
  auto sys = make_system();
  auto op = op_of(sys.a);
  IdentityPreconditioner m(op.n);
  GmresOptions o;
  o.rtol = 1e-6;
  Vec x(op.n, 0.0);
  auto r = gmres(op, m, sys.b, x, o);
  EXPECT_GE(r.counters.matvecs, r.iterations);
  EXPECT_GT(r.counters.dots, 0);
  EXPECT_GT(r.counters.prec_applies, 0);
}

// --- Schwarz preconditioners --------------------------------------------

class SchwarzTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SchwarzTest, ConvergesForAllVariants) {
  const auto [nparts, overlap] = GetParam();
  auto sys = make_system(4, 5);
  auto op = op_of(sys.a);

  auto g = [&] {
    std::vector<std::array<int, 2>> edges;
    for (int i = 0; i < sys.a.nrows; ++i)
      for (int p = sys.a.ptr[i]; p < sys.a.ptr[i + 1]; ++p)
        if (sys.a.col[p] > i) edges.push_back({i, sys.a.col[p]});
    return mesh::build_graph(sys.a.nrows, edges);
  }();
  auto partition = part::kway_grow(g, nparts);

  for (auto type : {SchwarzType::kAsm, SchwarzType::kRasm}) {
    SchwarzOptions so;
    so.type = type;
    so.overlap = overlap;
    so.fill_level = 0;
    SchwarzPreconditioner prec(sys.a, partition, so);
    GmresOptions o;
    o.rtol = 1e-8;
    o.max_iters = 200;
    Vec x(op.n, 0.0);
    auto r = gmres(op, prec, sys.b, x, o);
    EXPECT_TRUE(r.converged) << prec.name();
    double err = 0;
    for (int i = 0; i < op.n; ++i)
      err = std::max(err, std::abs(x[i] - sys.x_true[i]));
    EXPECT_LT(err, 1e-6) << prec.name();
  }
}

INSTANTIATE_TEST_SUITE_P(PartsByOverlap, SchwarzTest,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(0, 1, 2)));

TEST(Schwarz, SingleDomainIluEqualsGlobalIlu) {
  auto sys = make_system();
  auto prec = make_global_ilu(sys.a, 1);
  EXPECT_EQ(prec->num_subdomains(), 1);
  // One apply must give the same result as a direct BlockIlu solve.
  auto pat = sparse::ilu_symbolic(sys.a, 1);
  auto f = sparse::ilu_factor_block<double>(sys.a, pat);
  Vec z1(sys.b.size()), z2(sys.b.size());
  prec->apply(sys.b.data(), z1.data());
  f.solve(sys.b.data(), z2.data());
  for (std::size_t i = 0; i < z1.size(); ++i) EXPECT_NEAR(z1[i], z2[i], 1e-14);
}

TEST(Schwarz, MoreSubdomainsNeedMoreIterations) {
  // The central algorithmic scalability effect (paper Tables 3-4): block
  // iterative convergence degrades with the number of blocks.
  auto sys = make_system(4, 6);
  auto op = op_of(sys.a);
  std::vector<std::array<int, 2>> edges;
  for (int i = 0; i < sys.a.nrows; ++i)
    for (int p = sys.a.ptr[i]; p < sys.a.ptr[i + 1]; ++p)
      if (sys.a.col[p] > i) edges.push_back({i, sys.a.col[p]});
  auto g = mesh::build_graph(sys.a.nrows, edges);

  auto its_for = [&](int nparts) {
    SchwarzOptions so;
    so.type = SchwarzType::kBlockJacobi;
    so.fill_level = 0;
    so.overlap = 0;
    SchwarzPreconditioner prec(sys.a, part::kway_grow(g, nparts), so);
    GmresOptions o;
    o.rtol = 1e-8;
    o.max_iters = 400;
    Vec x(op.n, 0.0);
    return gmres(op, prec, sys.b, x, o).iterations;
  };
  const int i1 = its_for(1);
  const int i16 = its_for(16);
  EXPECT_LE(i1, i16);
}

TEST(Schwarz, OverlapReducesIterations) {
  auto sys = make_system(4, 6);
  auto op = op_of(sys.a);
  std::vector<std::array<int, 2>> edges;
  for (int i = 0; i < sys.a.nrows; ++i)
    for (int p = sys.a.ptr[i]; p < sys.a.ptr[i + 1]; ++p)
      if (sys.a.col[p] > i) edges.push_back({i, sys.a.col[p]});
  auto g = mesh::build_graph(sys.a.nrows, edges);
  auto partition = part::kway_grow(g, 8);

  auto its_for = [&](int overlap) {
    SchwarzOptions so;
    so.type = SchwarzType::kRasm;
    so.fill_level = 0;
    so.overlap = overlap;
    SchwarzPreconditioner prec(sys.a, partition, so);
    GmresOptions o;
    o.rtol = 1e-8;
    o.max_iters = 400;
    Vec x(op.n, 0.0);
    return gmres(op, prec, sys.b, x, o).iterations;
  };
  EXPECT_LE(its_for(1), its_for(0));
}

TEST(Schwarz, SinglePrecisionHalvesFactorStorage) {
  auto sys = make_system();
  auto pd = make_global_ilu(sys.a, 1, false);
  auto pf = make_global_ilu(sys.a, 1, true);
  EXPECT_EQ(pd->factor_bytes(), 2 * pf->factor_bytes());

  // And the float preconditioner still converges GMRES equivalently.
  auto op = op_of(sys.a);
  GmresOptions o;
  o.rtol = 1e-8;
  Vec x1(op.n, 0.0), x2(op.n, 0.0);
  auto r1 = gmres(op, *pd, sys.b, x1, o);
  auto r2 = gmres(op, *pf, sys.b, x2, o);
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_NEAR(r1.iterations, r2.iterations, 2);
}

TEST(Schwarz, RefactorTracksNewValues) {
  auto sys = make_system();
  auto prec = make_global_ilu(sys.a, 0);
  // Scale A by 2: the preconditioner must follow after refactor.
  for (auto& v : sys.a.val) v *= 2.0;
  prec->refactor(sys.a);
  Vec z(sys.b.size());
  prec->apply(sys.b.data(), z.data());
  // M^{-1} b with M ~ 2A_orig: residual check against the *new* A.
  Vec az(sys.b.size());
  sys.a.spmv(z, az);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    num += (az[i] - sys.b[i]) * (az[i] - sys.b[i]);
    den += sys.b[i] * sys.b[i];
  }
  EXPECT_LT(std::sqrt(num / den), 0.25);
}

TEST(Schwarz, SubdomainSizesReflectOverlap) {
  auto sys = make_system(2, 5);
  std::vector<std::array<int, 2>> edges;
  for (int i = 0; i < sys.a.nrows; ++i)
    for (int p = sys.a.ptr[i]; p < sys.a.ptr[i + 1]; ++p)
      if (sys.a.col[p] > i) edges.push_back({i, sys.a.col[p]});
  auto g = mesh::build_graph(sys.a.nrows, edges);
  auto partition = part::kway_grow(g, 4);

  SchwarzOptions s0;
  s0.type = SchwarzType::kRasm;
  s0.overlap = 0;
  SchwarzOptions s1 = s0;
  s1.overlap = 1;
  SchwarzPreconditioner p0(sys.a, partition, s0), p1(sys.a, partition, s1);
  auto z0 = p0.subdomain_sizes();
  auto z1 = p1.subdomain_sizes();
  long long t0 = 0, t1 = 0;
  for (int v : z0) t0 += v;
  for (int v : z1) t1 += v;
  EXPECT_EQ(t0, sys.a.nrows);  // zero overlap partitions exactly
  EXPECT_GT(t1, t0);           // overlap duplicates boundary layers
}

// --- psi-NKS end-to-end --------------------------------------------------

TEST(Ptc, ConvergesIncompressibleWingFlow) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 8, .ny = 4, .nz = 4});
  mesh::apply_best_ordering(m);
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);  // stay first order: fast test

  auto x = prob.initial_state();
  PtcOptions opts;
  opts.cfl0 = 20.0;
  opts.max_steps = 60;
  opts.rtol = 1e-6;
  opts.schwarz.fill_level = 1;
  auto res = ptc_solve(prob, x, opts);
  EXPECT_TRUE(res.converged)
      << "final/initial = " << res.final_residual / res.initial_residual
      << " after " << res.steps << " steps";
  EXPECT_GT(res.total_linear_iterations, 0);
  EXPECT_GT(res.function_evaluations, res.steps);
}

TEST(Ptc, ConvergesCompressibleWingFlow) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 6, .ny = 4, .nz = 4});
  mesh::apply_best_ordering(m);
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kCompressible;
  cfg.order = 1;
  cfg.mach = 0.3;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);

  auto x = prob.initial_state();
  PtcOptions opts;
  opts.cfl0 = 10.0;
  opts.max_steps = 80;
  opts.rtol = 1e-6;
  opts.schwarz.fill_level = 1;
  auto res = ptc_solve(prob, x, opts);
  EXPECT_TRUE(res.converged)
      << "final/initial = " << res.final_residual / res.initial_residual;
}

TEST(Ptc, ResidualHistoryIsRecorded) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 6, .ny = 3, .nz = 3});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  PtcOptions opts;
  opts.max_steps = 10;
  opts.rtol = 1e-14;  // force all steps
  auto res = ptc_solve(prob, x, opts);
  EXPECT_EQ(static_cast<int>(res.history.size()), res.steps);
  for (const auto& h : res.history) {
    EXPECT_GT(h.residual, 0.0);
    EXPECT_GT(h.cfl, 0.0);
  }
}

TEST(Ptc, SerCflGrowsAsResidualDrops) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 6, .ny = 3, .nz = 3});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  PtcOptions opts;
  opts.cfl0 = 5.0;
  opts.max_steps = 25;
  opts.rtol = 1e-10;
  auto res = ptc_solve(prob, x, opts);
  ASSERT_GE(res.history.size(), 3u);
  EXPECT_GT(res.history.back().cfl, res.history.front().cfl);
}

TEST(Ptc, MultiSubdomainSolveConverges) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 8, .ny = 4, .nz = 4});
  mesh::apply_best_ordering(m);
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  PtcOptions opts;
  opts.max_steps = 80;
  opts.rtol = 1e-6;
  opts.num_subdomains = 8;
  opts.schwarz.type = SchwarzType::kRasm;
  opts.schwarz.overlap = 1;
  opts.schwarz.fill_level = 0;
  auto res = ptc_solve(prob, x, opts);
  EXPECT_TRUE(res.converged);
}

TEST(Ptc, OrderSwitchoverActivates) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 6, .ny = 3, .nz = 3});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 2;  // EulerProblem resets to 1 until the switch point
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, 1e-2);
  EXPECT_EQ(disc.config().order, 1);
  auto x = prob.initial_state();
  PtcOptions opts;
  opts.max_steps = 60;
  opts.rtol = 1e-5;
  opts.schwarz.fill_level = 1;
  auto res = ptc_solve(prob, x, opts);
  EXPECT_EQ(disc.config().order, 2) << "switchover should have triggered";
  EXPECT_TRUE(res.converged);
}

}  // namespace
