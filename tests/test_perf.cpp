// Tests for the performance-model substrate: the paper's Eq. 1/2 miss
// bounds, the SpMV traffic/bandwidth model, STREAM, and machine presets.

#include <gtest/gtest.h>

#include "perf/machine.hpp"
#include "perf/models.hpp"
#include "perf/stream.hpp"

namespace {

using namespace f3d::perf;

TEST(MissBounds, ZeroWhenWorkingSetFits) {
  EXPECT_EQ(conflict_miss_bound(1000, 4096, 8192, 16), 0u);
  EXPECT_EQ(tlb_miss_bound(1000, 1 << 20, 64, 4096 * 64), 0u);
}

TEST(MissBounds, Eq1VersusEq2Contrast) {
  // Paper Eq. 1 (span ~ N, non-interlaced) vs Eq. 2 (span ~ beta): with
  // N >> beta the non-interlaced working set overflows the cache while the
  // interlaced one fits. Sized at the paper's 2.8M-vertex case, where
  // N = 11.2M DOFs >> the 0.5M doubles of a 4 MB L2.
  const std::uint64_t rows = 11200000;  // 2.8M vertices * 4 DOFs
  const std::uint64_t beta = 4 * 30000; // nb * RCM bandwidth
  const std::uint64_t cache_dw = 4 * 1024 * 1024 / 8;  // 4 MB L2
  const std::uint64_t line_dw = 16;                     // 128 B lines
  const auto non_interlaced =
      conflict_miss_bound(rows, rows, cache_dw, line_dw);  // span ~ N
  const auto interlaced = conflict_miss_bound(rows, beta, cache_dw, line_dw);
  EXPECT_EQ(interlaced, 0u);  // fits the 4 MB cache
  EXPECT_GT(non_interlaced, 0u);
}

TEST(MissBounds, GrowsLinearlyInExcess) {
  const auto a = conflict_miss_bound(100, 2000, 1000, 10);
  const auto b = conflict_miss_bound(100, 3000, 1000, 10);
  EXPECT_EQ(a, 100u * 100u);  // (2000-1000)/10 per row
  EXPECT_EQ(b, 100u * 200u);
}

TEST(MissBounds, TlbUsesPageGranularity) {
  // reach = 16 pages of 4K = 64K; span 96K -> 8 pages excess per row.
  EXPECT_EQ(tlb_miss_bound(10, 96 * 1024, 16, 4096), 10u * 8u);
}

TEST(SpmvModel, BlockingReducesIndexTraffic) {
  // Same operator: N vertices, nnzb blocks of nb=4 vs expanded point CSR.
  SpmvShape blocked{.block_rows = 10000, .blocks = 70000, .nb = 4};
  SpmvShape point{.block_rows = 40000,
                  .blocks = 70000ull * 16,
                  .nb = 1};
  auto tb = spmv_traffic(blocked);
  auto tp = spmv_traffic(point);
  EXPECT_DOUBLE_EQ(tb.matrix_bytes, tp.matrix_bytes);
  EXPECT_LT(tb.index_bytes * 4, tp.index_bytes);
  EXPECT_LT(tb.total(), tp.total());
  // Identical flop counts.
  EXPECT_DOUBLE_EQ(spmv_flops(blocked), spmv_flops(point));
}

TEST(SpmvModel, BandwidthBoundScalesWithBw) {
  SpmvShape s{.block_rows = 10000, .blocks = 70000, .nb = 4};
  const double m1 = spmv_mflops_bound(s, 1000);
  const double m2 = spmv_mflops_bound(s, 2000);
  EXPECT_NEAR(m2, 2 * m1, 1e-9);
  EXPECT_GT(m1, 0);
}

TEST(SpmvModel, PoorReuseLowersBound) {
  SpmvShape good{.block_rows = 10000, .blocks = 70000, .nb = 4, .x_reuse = 1.0};
  SpmvShape bad = good;
  bad.x_reuse = 6.0;  // colored-edge-style thrashing
  EXPECT_GT(spmv_mflops_bound(good, 1000), spmv_mflops_bound(bad, 1000));
}

TEST(SpmvModel, SinglePrecisionSpeedupBound) {
  // All traffic in the factors -> 2x; none -> 1x.
  EXPECT_DOUBLE_EQ(single_precision_speedup_bound(1.0), 2.0);
  EXPECT_DOUBLE_EQ(single_precision_speedup_bound(0.0), 1.0);
  EXPECT_GT(single_precision_speedup_bound(0.8), 1.5);
}

TEST(Stream, RatesPositiveAndOrdered) {
  // Small arrays for test speed; still far larger than L1.
  auto r = run_stream(1 << 20, 2);
  EXPECT_GT(r.copy_mbs, 0);
  EXPECT_GT(r.scale_mbs, 0);
  EXPECT_GT(r.add_mbs, 0);
  EXPECT_GT(r.triad_mbs, 0);
  EXPECT_GE(r.best(), r.copy_mbs);
  EXPECT_GE(r.best(), r.triad_mbs);
}

TEST(Machines, PresetsAreSane) {
  for (const auto& m : all_machines()) {
    EXPECT_FALSE(m.name.empty());
    EXPECT_GT(m.max_nodes, 0);
    EXPECT_GT(m.cpu_mflops_peak, 0);
    EXPECT_GT(m.sparse_efficiency, 0);
    EXPECT_LT(m.sparse_efficiency, 1);
    EXPECT_LT(m.sparse_efficiency, m.flux_efficiency)
        << m.name << ": sparse kernels are bandwidth-starved";
    EXPECT_GT(m.mem_bw_mbs, 0);
    EXPECT_GT(m.net_bw_mbs, 0);
    EXPECT_GT(m.sparse_mflops(), 0);
    EXPECT_GT(m.flux_mflops(), m.sparse_mflops());
  }
}

TEST(Machines, T3eHasFastestNetwork) {
  EXPECT_LT(cray_t3e().net_latency_us, asci_red().net_latency_us);
  EXPECT_LT(cray_t3e().net_latency_us, blue_pacific().net_latency_us);
}

}  // namespace
