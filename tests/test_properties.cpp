// Property-based tests: parameterized sweeps over block sizes, fill
// levels, mesh shapes, layouts, and randomized states, checking the
// structural invariants every experiment relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "cfd/euler.hpp"
#include "common/rng.hpp"
#include "mesh/dual.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "partition/partition.hpp"
#include "solver/gmres.hpp"
#include "solver/precond.hpp"
#include "sparse/assembly.hpp"
#include "sparse/ilu.hpp"
#include "sparse/vec.hpp"

namespace {

using namespace f3d;
using sparse::Vec;

// ---------------------------------------------------------------------
// ILU across (block size, fill level): factors of a diagonally dominant
// matrix must reduce the residual, monotonically with fill.
class IluProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IluProperty, ResidualReductionImprovesWithFill) {
  const auto [nb, fill] = GetParam();
  auto m = mesh::generate_box_mesh(5, 4, 4);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  auto a = sparse::build_bcsr(s, nb, fn);

  Rng rng(nb * 10 + fill);
  Vec b(static_cast<std::size_t>(a.scalar_n()));
  for (auto& v : b) v = rng.uniform(-1, 1);

  auto resid_for = [&](int level) {
    auto f = sparse::ilu_factor_block<double>(a, sparse::ilu_symbolic(a, level));
    Vec x(b.size()), r(b.size());
    f.solve(b, x);
    a.spmv(x, r);
    for (std::size_t i = 0; i < b.size(); ++i) r[i] = b[i] - r[i];
    return sparse::norm2(r) / sparse::norm2(b);
  };
  const double rf = resid_for(fill);
  EXPECT_LT(rf, 0.3) << "nb=" << nb << " fill=" << fill;
  if (fill > 0) {
    EXPECT_LE(rf, resid_for(fill - 1) * 1.01)
        << "more fill must not degrade accuracy";
  }
}

INSTANTIATE_TEST_SUITE_P(BlockAndFill, IluProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                                            ::testing::Values(0, 1, 2)));

// ---------------------------------------------------------------------
// Layout equivalence across block sizes: interlaced point CSR, BCSR and
// non-interlaced point CSR all represent the same operator.
class LayoutProperty : public ::testing::TestWithParam<int> {};

TEST_P(LayoutProperty, AllFormatsAgree) {
  const int nb = GetParam();
  auto m = mesh::generate_box_mesh(4, 3, 3);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s, 7);
  auto ab = sparse::build_bcsr(s, nb, fn);
  auto ai = sparse::build_point_csr(s, nb, fn, sparse::FieldLayout::kInterlaced);
  auto an =
      sparse::build_point_csr(s, nb, fn, sparse::FieldLayout::kNonInterlaced);
  auto ax = sparse::bcsr_to_point(ab);

  Rng rng(nb);
  Vec x(static_cast<std::size_t>(s.n) * nb);
  for (auto& v : x) v = rng.uniform(-1, 1);
  Vec yb, yi, yx;
  ab.spmv(x, yb);
  ai.spmv(x, yi);
  ax.spmv(x, yx);
  auto xn = sparse::convert_layout(x, sparse::FieldLayout::kInterlaced,
                                   sparse::FieldLayout::kNonInterlaced, s.n, nb);
  Vec yn;
  an.spmv(xn, yn);
  auto yn_i = sparse::convert_layout(yn, sparse::FieldLayout::kNonInterlaced,
                                     sparse::FieldLayout::kInterlaced, s.n, nb);
  for (std::size_t i = 0; i < yb.size(); ++i) {
    EXPECT_NEAR(yb[i], yi[i], 1e-13);
    EXPECT_NEAR(yb[i], yx[i], 1e-13);
    EXPECT_NEAR(yb[i], yn_i[i], 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, LayoutProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// Dual-mesh closure across mesh shapes: the discrete divergence identity
// must hold on any generated mesh, warped or not, shuffled or not.
struct MeshCase {
  const char* name;
  int nx, ny, nz;
  bool wing;
  bool shuffle;
};

class DualClosureProperty : public ::testing::TestWithParam<MeshCase> {};

TEST_P(DualClosureProperty, ClosureHolds) {
  const auto& c = GetParam();
  auto m = c.wing
               ? mesh::generate_wing_mesh(
                     mesh::WingMeshConfig{.nx = c.nx, .ny = c.ny, .nz = c.nz})
               : mesh::generate_box_mesh(c.nx, c.ny, c.nz);
  if (c.shuffle) mesh::shuffle_mesh(m, 3);
  auto d = mesh::compute_dual_metrics(m);
  EXPECT_LT(mesh::closure_defect(m, d), 1e-10) << c.name;
  // Volumes: positive everywhere and summing to the mesh volume.
  double sum = 0;
  for (double v : d.vertex_volume) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, m.total_volume(), 1e-10 * m.total_volume());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DualClosureProperty,
    ::testing::Values(MeshCase{"box small", 2, 2, 2, false, false},
                      MeshCase{"box flat", 8, 4, 1, false, false},
                      MeshCase{"box tall", 2, 2, 9, false, true},
                      MeshCase{"wing coarse", 6, 3, 3, true, false},
                      MeshCase{"wing shuffled", 10, 5, 5, true, true}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (auto& ch : n)
        if (ch == ' ') ch = '_';
      return n;
    });

// ---------------------------------------------------------------------
// Flux fuzzing: consistency and conservation antisymmetry must hold for
// random admissible states and normals (both models).
TEST(FluxFuzz, ConsistencyAndAntisymmetryOverRandomStates) {
  Rng rng(99);
  for (int model = 0; model < 2; ++model) {
    cfd::FlowConfig cfg;
    cfg.model = model == 0 ? cfd::Model::kIncompressible
                           : cfd::Model::kCompressible;
    const int nb = cfg.nb();
    for (int trial = 0; trial < 200; ++trial) {
      double ql[cfd::kMaxComponents], qr[cfd::kMaxComponents], n[3];
      for (int d = 0; d < 3; ++d) n[d] = rng.uniform(-1, 1);
      if (cfg.model == cfd::Model::kIncompressible) {
        for (int c = 0; c < 4; ++c) {
          ql[c] = rng.uniform(-1, 1);
          qr[c] = rng.uniform(-1, 1);
        }
      } else {
        // Admissible compressible states: positive density & pressure.
        auto fill = [&](double* q) {
          q[0] = rng.uniform(0.5, 2.0);
          for (int c = 1; c < 4; ++c) q[c] = q[0] * rng.uniform(-0.5, 0.5);
          const double ke =
              0.5 * (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) / q[0];
          q[4] = ke + rng.uniform(0.5, 2.0) / (cfg.gamma - 1.0);
        };
        fill(ql);
        fill(qr);
      }
      double f1[cfd::kMaxComponents], f2[cfd::kMaxComponents],
          fp[cfd::kMaxComponents];
      // Consistency.
      cfd::rusanov_flux(cfg, ql, ql, n, f1);
      cfd::physical_flux(cfg, ql, n, fp);
      for (int c = 0; c < nb; ++c)
        ASSERT_NEAR(f1[c], fp[c], 1e-12 * (1 + std::abs(fp[c])));
      // Antisymmetry.
      const double nm[3] = {-n[0], -n[1], -n[2]};
      cfd::rusanov_flux(cfg, ql, qr, n, f1);
      cfd::rusanov_flux(cfg, qr, ql, nm, f2);
      for (int c = 0; c < nb; ++c)
        ASSERT_NEAR(f1[c], -f2[c], 1e-12 * (1 + std::abs(f1[c])));
    }
  }
}

// ---------------------------------------------------------------------
// Global conservation: interior edge fluxes telescope, so the sum of the
// residual over all vertices equals the net boundary flux alone.
TEST(Conservation, ResidualSumEqualsBoundaryFlux) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 8, .ny = 4, .nz = 4});
  for (int order : {1, 2}) {
    cfd::FlowConfig cfg;
    cfg.model = cfd::Model::kIncompressible;
    cfg.order = order;
    cfd::EulerDiscretization disc(m, cfg);
    auto q = disc.make_freestream_field();
    Rng rng(5);
    for (int v = 0; v < q.num_vertices(); ++v)
      for (int c = 0; c < q.nb(); ++c)
        q.set(v, c, q.get(v, c) + 0.1 * rng.uniform(-1, 1));
    std::vector<double> r;
    disc.residual(q, r);

    // Component-wise sum of the residual.
    double rsum[cfd::kMaxComponents] = {0, 0, 0, 0, 0};
    for (int v = 0; v < q.num_vertices(); ++v)
      for (int c = 0; c < q.nb(); ++c) rsum[c] += r[q.base(v) + c * q.stride()];

    // Recompute only the boundary closure.
    double bsum[cfd::kMaxComponents] = {0, 0, 0, 0, 0};
    const auto& bfaces = m.boundary_faces();
    const auto& dual = disc.dual();
    double qv[cfd::kMaxComponents], f[cfd::kMaxComponents],
        qinf[cfd::kMaxComponents];
    cfd::freestream_state(cfg, qinf);
    for (std::size_t bf = 0; bf < bfaces.size(); ++bf) {
      const double n3[3] = {dual.bface_normal[bf][0] / 3.0,
                            dual.bface_normal[bf][1] / 3.0,
                            dual.bface_normal[bf][2] / 3.0};
      for (int lv = 0; lv < 3; ++lv) {
        const int v = bfaces[bf].v[lv];
        for (int c = 0; c < q.nb(); ++c)
          qv[c] = q.get(v, c);
        if (bfaces[bf].tag == mesh::BoundaryTag::kWall)
          cfd::wall_flux(cfg, qv, n3, f);
        else
          cfd::rusanov_flux(cfg, qv, qinf, n3, f);
        for (int c = 0; c < q.nb(); ++c) bsum[c] += f[c];
      }
    }
    for (int c = 0; c < q.nb(); ++c)
      EXPECT_NEAR(rsum[c], bsum[c], 1e-10 * (1 + std::abs(bsum[c])))
          << "order " << order << " component " << c;
  }
}

// ---------------------------------------------------------------------
// Renumbering invariance: permuting the mesh must not change the physics.
// The wall pressure force of a (partially converged) state mapped through
// the permutation must match exactly.
TEST(Invariance, ResidualCommutesWithVertexPermutation) {
  auto m1 = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 6, .ny = 4, .nz = 4});
  auto m2 = m1;
  std::vector<int> perm(m1.num_vertices());
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(8);
  shuffle(perm, rng);
  m2.permute_vertices(perm);
  m2.permute_edges(mesh::edge_order_sorted(m2));

  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization d1(m1, cfg), d2(m2, cfg);

  auto q1 = d1.make_freestream_field();
  for (int v = 0; v < q1.num_vertices(); ++v)
    for (int c = 0; c < q1.nb(); ++c)
      q1.set(v, c, q1.get(v, c) + 0.05 * std::sin(v * 0.7 + c));
  // Same physical state on the permuted mesh.
  auto q2 = d2.make_freestream_field();
  for (int v = 0; v < q1.num_vertices(); ++v)
    for (int c = 0; c < q1.nb(); ++c) q2.set(perm[v], c, q1.get(v, c));

  std::vector<double> r1, r2;
  d1.residual(q1, r1);
  d2.residual(q2, r2);
  for (int v = 0; v < q1.num_vertices(); ++v)
    for (int c = 0; c < q1.nb(); ++c)
      EXPECT_NEAR(r1[q1.base(v) + c * q1.stride()],
                  r2[q2.base(perm[v]) + c * q2.stride()], 1e-11)
          << "v=" << v << " c=" << c;
}

// ---------------------------------------------------------------------
// Schwarz/GMRES across type x precision on a fixed system: all variants
// must solve to the same answer.
class SchwarzMatrix
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SchwarzMatrix, AllVariantsSolve) {
  const auto [type_i, single] = GetParam();
  auto m = mesh::generate_box_mesh(5, 4, 4);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  auto a = sparse::build_bcsr(s, 4, fn);
  auto g = mesh::build_graph(m.num_vertices(), m.edges());
  auto partition = part::kway_grow(g, 6);

  solver::SchwarzOptions so;
  so.type = type_i == 0   ? solver::SchwarzType::kBlockJacobi
            : type_i == 1 ? solver::SchwarzType::kAsm
                          : solver::SchwarzType::kRasm;
  so.overlap = so.type == solver::SchwarzType::kBlockJacobi ? 0 : 1;
  so.fill_level = 0;
  so.single_precision = single;
  solver::SchwarzPreconditioner prec(a, partition, so);

  Rng rng(3);
  Vec x_true(static_cast<std::size_t>(a.scalar_n())), b(x_true.size());
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  a.spmv(x_true, b);

  solver::LinearOperator op;
  op.n = a.scalar_n();
  op.apply = [&](const double* xx, double* yy) { a.spmv(xx, yy); };
  Vec x(b.size(), 0.0);
  solver::GmresOptions o;
  o.rtol = 1e-10;
  o.max_iters = 300;
  auto res = solver::gmres(op, prec, b, x, o);
  EXPECT_TRUE(res.converged) << prec.name();
  double err = 0;
  for (std::size_t i = 0; i < x.size(); ++i)
    err = std::max(err, std::abs(x[i] - x_true[i]));
  EXPECT_LT(err, 1e-7) << prec.name();
}

INSTANTIATE_TEST_SUITE_P(TypesAndPrecision, SchwarzMatrix,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(false, true)));

// ---------------------------------------------------------------------
// Partitioners across counts: full coverage + every vertex in exactly one
// part; kway connectivity; balance-first near-perfect balance.
class PartitionerProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerProperty, InvariantsAcrossCounts) {
  const int np = GetParam();
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 10, .ny = 6, .nz = 6});
  auto g = mesh::build_graph(m.num_vertices(), m.edges());

  auto pk = part::kway_grow(g, np);
  auto qk = part::evaluate(g, pk);
  EXPECT_EQ(qk.max_components, 1) << "kway parts must be connected";
  EXPECT_GT(qk.min_size, 0);

  auto pb = part::balance_first(g, np);
  auto qb = part::evaluate(g, pb);
  // Striping balances to about +/- 1 vertex per chunk boundary.
  const double ideal = static_cast<double>(m.num_vertices()) / np;
  EXPECT_LT(qb.imbalance, (ideal + 2.0) / ideal) << "balance-first must balance";

  // Overlap monotonicity for both.
  for (const auto& p : {pk, pb}) {
    auto r0 = part::overlap_expand(g, p, 0);
    auto r1 = part::overlap_expand(g, p, 1);
    for (int s = 0; s < np; ++s) EXPECT_LE(r0[s].size(), r1[s].size());
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, PartitionerProperty,
                         ::testing::Values(2, 3, 7, 16, 40));

// ---------------------------------------------------------------------
// Gradient exactness is ordering-invariant (second-order reconstruction
// must not care about edge order).
TEST(Invariance, GradientsIgnoreEdgeOrder) {
  auto m = mesh::generate_box_mesh(4, 4, 3);
  cfd::FlowConfig cfg;
  cfg.order = 2;
  cfd::EulerDiscretization d1(m, cfg);
  auto q = d1.make_freestream_field();
  Rng rng(12);
  for (int v = 0; v < q.num_vertices(); ++v)
    for (int c = 0; c < q.nb(); ++c)
      q.set(v, c, rng.uniform(-1, 1));
  std::vector<double> g1;
  d1.gradients(q, g1);

  auto m2 = m;
  m2.permute_edges(mesh::edge_order_random(m2, 77));
  cfd::EulerDiscretization d2(m2, cfg);
  std::vector<double> g2;
  d2.gradients(q, g2);
  ASSERT_EQ(g1.size(), g2.size());
  for (std::size_t i = 0; i < g1.size(); ++i) EXPECT_NEAR(g1[i], g2[i], 1e-12);
}

}  // namespace
