// Tests for the distributed resilience layer: incremental shrink
// repartitioning, buddy (diskless neighbor) checkpointing, the lossy
// interconnect model, the fail-stop campaign simulator under both
// recovery policies, and the Young/Daly availability model.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "mesh/generator.hpp"
#include "mesh/graph.hpp"
#include "par/distres.hpp"
#include "par/loadmodel.hpp"
#include "par/stepmodel.hpp"
#include "partition/partition.hpp"
#include "perf/machine.hpp"
#include "resilience/buddy.hpp"
#include "resilience/faults.hpp"

namespace {

using namespace f3d;
using namespace f3d::resilience;

mesh::Graph wing_graph() {
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 12, .ny = 7, .nz = 7});
  return mesh::build_graph(m.num_vertices(), m.edges());
}

// Arm kRankFail so that exactly the draws [first_draw, first_draw+count)
// fire — with P draws per step (one per alive rank, rank order), draw
// s*P + r is rank r at step s.
void arm_rank_fail_at(FaultInjector& inj, int first_draw, int count = 1) {
  FaultPlan plan;
  plan.fire_every = 1;
  plan.skip_first = first_draw;
  plan.max_fires = count;
  inj.arm(FaultSite::kRankFail, plan);
}

par::WorkCoefficients test_work() {
  par::WorkCoefficients work;
  work.sparse_bytes_per_vertex_it = 1200;
  work.sparse_flops_per_vertex_it = 300;
  return work;
}

// --- incremental repartitioning ------------------------------------------

TEST(Repartition, DeadPartEmptiesAndSurvivorsAbsorb) {
  auto g = wing_graph();
  auto p = part::kway_grow(g, 8);
  const int dead = 3;
  int dead_size = 0;
  for (int v = 0; v < p.num_vertices(); ++v)
    if (p.part[v] == dead) ++dead_size;
  ASSERT_GT(dead_size, 0);

  part::RepartitionReport rep;
  auto q = part::repartition_after_failure(g, p, dead, &rep);
  EXPECT_EQ(q.nparts, p.nparts);  // part ids stay stable
  EXPECT_EQ(q.num_vertices(), p.num_vertices());
  EXPECT_EQ(rep.moved_vertices, dead_size);
  EXPECT_GE(rep.receiving_parts, 1);
  for (int v = 0; v < q.num_vertices(); ++v) {
    EXPECT_NE(q.part[v], dead);
    // Only dead-part vertices moved.
    if (p.part[v] != dead) {
      EXPECT_EQ(q.part[v], p.part[v]);
    }
  }
  EXPECT_GE(rep.imbalance_after, 1.0);
  // Absorbing a subdomain into its neighbors cannot improve balance.
  EXPECT_GE(rep.imbalance_after, rep.imbalance_before - 1e-12);
}

TEST(Repartition, RepeatedFailuresDownToOnePart) {
  auto g = wing_graph();
  auto p = part::kway_grow(g, 4);
  for (int dead = 0; dead < 3; ++dead)
    p = part::repartition_after_failure(g, p, dead);
  for (int v = 0; v < p.num_vertices(); ++v) EXPECT_EQ(p.part[v], 3);
  // Killing the last non-empty part has nowhere to put the vertices.
  EXPECT_THROW(part::repartition_after_failure(g, p, 3), Error);
}

TEST(Repartition, MeasuredLoadExcludesTheDeadPart) {
  auto g = wing_graph();
  auto p = part::kway_grow(g, 8);
  auto before = par::measure_load(g, p);
  auto q = part::repartition_after_failure(g, p, 0);
  auto after = par::measure_load(g, q);
  EXPECT_EQ(after.procs, 8);
  EXPECT_EQ(after.active_procs, 7);
  // Same vertices over fewer workers: the per-worker average rises.
  EXPECT_GT(after.avg_owned, before.avg_owned);
  EXPECT_NEAR(after.avg_owned * 7, before.total_vertices, 1e-9);
}

// --- buddy checkpointing --------------------------------------------------

TEST(Buddy, StoreMirrorsToNextAliveRank) {
  BuddyStore store(4);
  EXPECT_EQ(store.buddy_of(1), 2);
  EXPECT_EQ(store.buddy_of(3), 0);  // ring wrap
  EXPECT_TRUE(store.store(1, "payload-one"));
  EXPECT_EQ(store.copies(1), 2);
  ASSERT_TRUE(store.retrieve(1).has_value());
  EXPECT_EQ(*store.retrieve(1), "payload-one");
}

TEST(Buddy, OwnerFailureRecoversFromBuddyCopy) {
  BuddyStore store(4);
  store.store(2, "state-of-two");
  store.fail_rank(2);
  EXPECT_FALSE(store.alive(2));
  EXPECT_EQ(store.copies(2), 1);  // the copy on rank 3 survives
  ASSERT_TRUE(store.retrieve(2).has_value());
  EXPECT_EQ(*store.retrieve(2), "state-of-two");
}

TEST(Buddy, DoubleFailureLosesState) {
  BuddyStore store(4);
  store.store(2, "state-of-two");
  store.fail_rank(3);  // the buddy holding 2's mirror
  store.fail_rank(2);
  EXPECT_EQ(store.copies(2), 0);
  EXPECT_FALSE(store.retrieve(2).has_value());
}

TEST(Buddy, BuddyOfSkipsDeadRanksAndReviveRestores) {
  BuddyStore store(4);
  store.fail_rank(2);
  EXPECT_EQ(store.buddy_of(1), 3);  // dead rank skipped on the ring
  store.revive_rank(2);
  EXPECT_EQ(store.buddy_of(1), 2);
  EXPECT_EQ(store.copies(2), 0);  // revived slot holds no data yet
  BuddyStore lone(1);
  EXPECT_EQ(lone.buddy_of(0), -1);
  EXPECT_FALSE(lone.store(0, "x"));  // no buddy: mirror refused
  EXPECT_EQ(lone.copies(0), 1);      // but the local copy is kept
}

TEST(Buddy, CorruptedCopyIsRejectedByCrc) {
  BuddyStore store(4);
  store.store(1, "precious-state");
  // Flip one byte of the local copy: retrieve must fall through to the
  // intact buddy copy.
  std::string* local = store.frame_for_test(1, 1);
  ASSERT_NE(local, nullptr);
  (*local)[local->size() / 2] ^= 0x40;
  ASSERT_TRUE(store.retrieve(1).has_value());
  EXPECT_EQ(*store.retrieve(1), "precious-state");
  // Corrupt the buddy copy too: nothing valid remains.
  std::string* remote = store.frame_for_test(1, 2);
  ASSERT_NE(remote, nullptr);
  (*remote)[remote->size() / 2] ^= 0x40;
  EXPECT_FALSE(store.retrieve(1).has_value());
}

// --- lossy interconnect in the step model ---------------------------------

TEST(LossyComm, CorruptedMessagesChargeRecoveryTime) {
  auto g = wing_graph();
  auto load = par::measure_load(g, part::kway_grow(g, 8));
  const auto work = test_work();
  const auto machine = perf::asci_red();
  const par::StepCounts counts;
  par::CommReliability comm;

  // Checksum tax applies even on a clean network.
  const auto clean = par::model_step(machine, load, work, counts);
  const auto framed =
      par::model_step(machine, load, work, counts, par::NodeMode::kMpi1,
                      &comm);
  EXPECT_GT(framed.t_scatter, clean.t_scatter);
  EXPECT_EQ(framed.retransmits, 0);
  EXPECT_EQ(framed.t_recovery, 0.0);

  // A noisy link retransmits; the retry latency lands in t_recovery.
  FaultInjector inj(99);
  FaultPlan plan;
  plan.probability = 0.3;
  inj.arm(FaultSite::kMessage, plan);
  InjectorScope scope(&inj);
  const auto noisy =
      par::model_step(machine, load, work, counts, par::NodeMode::kMpi1,
                      &comm);
  EXPECT_GT(noisy.retransmits, 0);
  EXPECT_GT(noisy.t_recovery, 0.0);
  EXPECT_GT(noisy.total(), framed.total());
}

TEST(LossyComm, ReplayIsBitIdenticalFromSeed) {
  auto g = wing_graph();
  auto load = par::measure_load(g, part::kway_grow(g, 8));
  const auto work = test_work();
  const auto machine = perf::asci_red();
  par::CommReliability comm;
  FaultPlan plan;
  plan.probability = 0.3;

  auto run = [&] {
    FaultInjector inj(1234);
    inj.arm(FaultSite::kMessage, plan);
    InjectorScope scope(&inj);
    return par::model_step(machine, load, work, par::StepCounts{},
                           par::NodeMode::kMpi1, &comm);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.t_recovery, b.t_recovery);  // bitwise
  EXPECT_EQ(a.retransmits, b.retransmits);
}

// --- the fail-stop campaign ----------------------------------------------

struct CampaignRig {
  mesh::Graph g = wing_graph();
  par::CampaignDomain domain;
  par::WorkCoefficients work = test_work();
  perf::MachineModel machine = perf::asci_red();
  std::vector<par::StepCounts> steps;
  static constexpr int kRanks = 8;

  CampaignRig() : steps(20) {
    domain = par::make_domain(g, part::kway_grow(g, kRanks));
  }

  par::CampaignResult run(par::RecoveryPolicy policy, int first_draw,
                          int fail_count = 1) {
    FaultInjector inj(5);
    arm_rank_fail_at(inj, first_draw, fail_count);
    par::CampaignOptions o;
    o.policy = policy;
    o.spare_ranks = 4;
    o.checkpoint_interval = 5;
    o.injector = &inj;
    return par::simulate_campaign(machine, domain, work, steps, o);
  }
};

TEST(Campaign, SpareSubstitutionAbsorbsAFailure) {
  CampaignRig rig;
  // Rank 2 dies in step 3.
  const auto r = rig.run(par::RecoveryPolicy::kSpareRank,
                         3 * CampaignRig::kRanks + 2);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps_executed, 20);
  EXPECT_EQ(r.rank_failures, 1);
  EXPECT_EQ(r.spares_used, 1);
  EXPECT_EQ(r.shrink_events, 0);
  EXPECT_GT(r.sim.aggregate.t_recovery, 0.0);
  EXPECT_GT(r.t_rework, 0.0);
  EXPECT_GT(r.t_restore, 0.0);
  // The spare restores the full decomposition.
  EXPECT_TRUE(r.rank_alive[2]);
  EXPECT_EQ(r.final_load.active_procs, CampaignRig::kRanks);
  EXPECT_EQ(r.log.count(RecoveryAction::kDetectRankFail), 1);
  EXPECT_EQ(r.log.count(RecoveryAction::kSpareSubstitution), 1);
  EXPECT_GT(r.log.count(RecoveryAction::kBuddyCheckpoint), 1);
  EXPECT_GT(r.availability(), 0.0);
  EXPECT_LT(r.availability(), 1.0);
}

TEST(Campaign, ShrinkRepartitionAbsorbsAFailure) {
  CampaignRig rig;
  const auto r = rig.run(par::RecoveryPolicy::kShrinkRepartition,
                         3 * CampaignRig::kRanks + 2);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps_executed, 20);
  EXPECT_EQ(r.rank_failures, 1);
  EXPECT_EQ(r.spares_used, 0);
  EXPECT_EQ(r.shrink_events, 1);
  EXPECT_GT(r.sim.aggregate.t_recovery, 0.0);
  EXPECT_FALSE(r.rank_alive[2]);
  EXPECT_EQ(r.final_load.active_procs, CampaignRig::kRanks - 1);
  EXPECT_EQ(r.log.count(RecoveryAction::kShrinkRepartition), 1);
}

// Satellite check: both policies ride out the same seeded failure, and
// the shrink campaign pays for it with more imbalance wait (implicit
// synchronization) than the spare campaign, whose decomposition never
// degrades.
TEST(Campaign, PoliciesAgreeOnTheFaultButDifferInImbalance) {
  CampaignRig rig;
  const int at = 3 * CampaignRig::kRanks + 2;
  const auto spare = rig.run(par::RecoveryPolicy::kSpareRank, at);
  const auto shrink = rig.run(par::RecoveryPolicy::kShrinkRepartition, at);
  ASSERT_TRUE(spare.completed);
  ASSERT_TRUE(shrink.completed);
  // Same failure observed under both policies.
  EXPECT_EQ(spare.rank_failures, shrink.rank_failures);
  EXPECT_EQ(spare.log.events()[2].step, shrink.log.events()[2].step);
  EXPECT_GT(shrink.sim.aggregate.t_implicit_sync,
            spare.sim.aggregate.t_implicit_sync);
  // Fewer workers on the same mesh: the shrink campaign's busy phases
  // stretch too.
  EXPECT_GT(shrink.sim.aggregate.t_flux, spare.sim.aggregate.t_flux);
}

TEST(Campaign, ReplayIsBitIdenticalFromSeed) {
  CampaignRig rig;
  auto run = [&] {
    FaultInjector inj(42);
    FaultPlan plan;
    plan.probability = 1.0 / 15.0;  // a busy campaign: several failures
    inj.arm(FaultSite::kRankFail, plan);
    par::CampaignOptions o;
    o.policy = par::RecoveryPolicy::kSpareRank;
    o.spare_ranks = 2;  // exhausts and falls back to shrinking
    o.checkpoint_interval = 4;
    o.injector = &inj;
    return par::simulate_campaign(rig.machine, rig.domain, rig.work,
                                  rig.steps, o);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_GT(a.rank_failures, 2);  // the seed produces spare exhaustion
  EXPECT_GT(a.shrink_events, 0);
  EXPECT_EQ(a.rank_failures, b.rank_failures);
  EXPECT_EQ(a.spares_used, b.spares_used);
  EXPECT_EQ(a.sim.total_seconds, b.sim.total_seconds);  // bitwise
  EXPECT_EQ(a.t_rework, b.t_rework);
  EXPECT_EQ(a.t_restore, b.t_restore);
  EXPECT_EQ(a.log.size(), b.log.size());
  EXPECT_EQ(a.rank_alive, b.rank_alive);
}

// Silent halo corruption: the flip happens in memory, so the wire CRC
// passes and detection is up to the receiving rank's downstream guards.
TEST(Campaign, SilentHaloFlipIsCaughtDownstreamOrEscapes) {
  CampaignRig rig;
  auto run = [&](int bit, bool guards) {
    FaultInjector inj(7);
    FaultPlan p;  // one kBitFlip draw per alive rank per clean step
    p.fire_every = 1;
    p.skip_first = 3 * CampaignRig::kRanks + 1;  // step 3, rank 1
    p.max_fires = 1;
    inj.arm(FaultSite::kBitFlip, p);
    inj.set_bit_flip({.bit = bit, .target = FlipTarget::kHalo});
    par::CampaignOptions o;
    o.checkpoint_interval = 5;
    o.sdc_guards = guards;
    o.injector = &inj;
    return par::simulate_campaign(rig.machine, rig.domain, rig.work,
                                  rig.steps, o);
  };

  // Exponent flip with guards on: caught, rolled back to the last buddy
  // checkpoint, rework charged.
  const auto caught = run(62, true);
  EXPECT_TRUE(caught.completed);
  EXPECT_EQ(caught.steps_executed, 20);
  EXPECT_EQ(caught.sdc_injected, 1);
  EXPECT_EQ(caught.sdc_caught, 1);
  EXPECT_EQ(caught.sdc_escaped, 0);
  EXPECT_GT(caught.t_rework, 0.0);
  EXPECT_EQ(caught.log.count(RecoveryAction::kDetectSdc), 1);
  EXPECT_EQ(caught.log.count(RecoveryAction::kSdcRollback), 1);

  // Low mantissa bit: below the guards' noise floor — escapes into the
  // campaign's answer with no recovery charge.
  const auto low = run(8, true);
  EXPECT_EQ(low.sdc_injected, 1);
  EXPECT_EQ(low.sdc_caught, 0);
  EXPECT_EQ(low.sdc_escaped, 1);
  EXPECT_EQ(low.log.count(RecoveryAction::kSdcRollback), 0);
  EXPECT_EQ(low.t_rework, 0.0);

  // Guards off: even a loud exponent flip sails through.
  const auto unguarded = run(62, false);
  EXPECT_EQ(unguarded.sdc_caught, 0);
  EXPECT_EQ(unguarded.sdc_escaped, 1);
  EXPECT_EQ(unguarded.log.count(RecoveryAction::kDetectSdc), 0);
}

TEST(Campaign, SimultaneousBuddyPairLossIsUnrecoverable) {
  CampaignRig rig;
  // Ranks 0 and 1 (a buddy pair on the ring) both die in step 1, before
  // any re-mirror: the diskless double-failure window.
  const auto r = rig.run(par::RecoveryPolicy::kSpareRank,
                         1 * CampaignRig::kRanks + 0, 2);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rank_failures, 2);
  EXPECT_LT(r.steps_executed, 20);
  EXPECT_GE(r.log.count(RecoveryAction::kBuddyRestore), 1);
}

TEST(Campaign, SyntheticDomainUsesAnalyticShrink) {
  par::SurfaceLaw law;
  law.edges_per_vertex = 7;
  law.ghost_coeff = 2.0;
  law.cut_coeff = 4.0;
  law.imbalance_coeff = 0.5;
  law.neighbor_base = 6;
  const auto domain =
      par::make_domain(par::synthesize_load(32000, 16, law));
  FaultInjector inj(5);
  arm_rank_fail_at(inj, 2 * 16 + 3);
  par::CampaignOptions o;
  o.policy = par::RecoveryPolicy::kShrinkRepartition;
  o.checkpoint_interval = 5;
  o.injector = &inj;
  const std::vector<par::StepCounts> steps(10);
  const auto r = par::simulate_campaign(perf::asci_red(), domain,
                                        test_work(), steps, o);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.shrink_events, 1);
  EXPECT_EQ(r.final_load.procs, 15);
  EXPECT_GT(r.final_load.avg_owned, domain.load.avg_owned);
}

TEST(ShrinkLoad, SpreadsTheDeadSubdomainOverSurvivors) {
  par::SurfaceLaw law;
  law.edges_per_vertex = 7;
  law.ghost_coeff = 2.0;
  law.imbalance_coeff = 0.3;
  law.neighbor_base = 6;
  const auto load = par::synthesize_load(64000, 32, law);
  const auto shrunk = par::shrink_load(load);
  EXPECT_EQ(shrunk.procs, 31);
  EXPECT_GT(shrunk.avg_owned, load.avg_owned);
  EXPECT_GE(shrunk.max_owned, shrunk.avg_owned);
  // Critical path degrades at least as much as the average.
  const double avg_ratio = shrunk.avg_owned / load.avg_owned;
  EXPECT_GE(shrunk.max_owned / load.max_owned, 1.0);
  EXPECT_NEAR(avg_ratio, 32.0 / 31.0, 1e-12);
  EXPECT_THROW(
      {
        auto one = load;
        one.procs = 1;
        par::shrink_load(one);
      },
      Error);
}

// --- Young/Daly availability model ----------------------------------------

TEST(Daly, OptimumMinimizesTheAnalyticOverhead) {
  const double delta = 0.2, mtbf = 500, restart = 1.0;
  const double tau = par::daly_optimal_interval(delta, mtbf);
  EXPECT_NEAR(tau, std::sqrt(2 * delta * mtbf), 1e-12);
  const double at_opt = par::daly_overhead(tau, delta, restart, mtbf);
  EXPECT_LT(at_opt, par::daly_overhead(tau / 3, delta, restart, mtbf));
  EXPECT_LT(at_opt, par::daly_overhead(tau * 3, delta, restart, mtbf));
}

// The simulator's measured availability overhead agrees with the Daly
// prediction at the analytic optimum — the bench_availability acceptance
// criterion, shrunk to test size. Fully deterministic from the seeds.
TEST(Daly, SimulatedOverheadMatchesPredictionAtTheOptimum) {
  par::SurfaceLaw law;
  law.edges_per_vertex = 7;
  law.ghost_coeff = 2.0;
  law.cut_coeff = 4.0;
  law.imbalance_coeff = 0.5;
  law.neighbor_base = 8;
  const int procs = 32;
  const auto domain =
      par::make_domain(par::synthesize_load(4000.0 * procs, procs, law));
  const auto work = test_work();
  const auto machine = perf::asci_red();
  const int nsteps = 3000;
  const std::vector<par::StepCounts> steps(nsteps);
  const double mtbf_steps = 250;
  const double q = 1.0 / (mtbf_steps * procs);

  par::CampaignOptions base;
  base.policy = par::RecoveryPolicy::kSpareRank;
  base.spare_ranks = 1 << 20;
  base.checkpoint_doubles_per_vertex = 120;

  const double step_s =
      par::model_step(machine, domain.load, work, steps[0]).total();
  base.spare_boot_s = 0.25 * step_s;

  auto measure = [&](int interval, int seed) {
    FaultInjector inj(static_cast<std::uint64_t>(seed));
    FaultPlan plan;
    plan.probability = q;
    inj.arm(FaultSite::kRankFail, plan);
    par::CampaignOptions o = base;
    o.checkpoint_interval = interval;
    o.injector = &inj;
    return par::simulate_campaign(machine, domain, work, steps, o);
  };

  const double delta = measure(0, 1).checkpoint_cost_s;
  const double mtbf_s = mtbf_steps * step_s;
  const double restart_s = 2 * delta + base.spare_boot_s;
  const double tau_opt_s = par::daly_optimal_interval(delta, mtbf_s);
  const int tau_opt = std::max(
      1, static_cast<int>(std::lround(tau_opt_s / step_s)));

  auto overhead_at = [&](int interval) {
    double sum = 0;
    const int nseeds = 3;
    for (int seed = 1; seed <= nseeds; ++seed) {
      const auto r = measure(interval, seed);
      EXPECT_TRUE(r.completed);
      sum += r.total_seconds() / r.useful_seconds() - 1.0;
    }
    return sum / nseeds;
  };

  const double measured = overhead_at(tau_opt);
  const double predicted =
      par::daly_overhead(tau_opt * step_s, delta, restart_s, mtbf_s);
  EXPECT_GT(measured, 0.0);
  EXPECT_NEAR(measured, predicted, 0.25 * predicted);
  // The U-curve: the optimum beats a 6x-too-eager and a 6x-too-lazy
  // checkpoint policy on the measured curve too.
  EXPECT_LT(measured, overhead_at(std::max(1, tau_opt / 6)));
  EXPECT_LT(measured, overhead_at(tau_opt * 6));
}

}  // namespace
