// Unit tests for the common utilities: error macros, timers, RNG, dense
// block kernels, options parser, and table formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/densemat.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace {

// Keep a value alive without volatile (avoids -Wvolatile).
inline void benchmark_do_not_optimize(double& v) {
  asm volatile("" : "+m"(v) : : "memory");
}

TEST(Error, CheckThrowsWithLocation) {
  try {
    F3D_CHECK_MSG(1 == 2, "context");
    FAIL() << "should have thrown";
  } catch (const f3d::Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("context"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) { F3D_CHECK(2 + 2 == 4); }

TEST(Timer, MeasuresElapsedTime) {
  f3d::Timer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  benchmark_do_not_optimize(sink);
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(PhaseTimers, AccumulatesBuckets) {
  f3d::PhaseTimers pt;
  pt.add("flux", 1.5);
  pt.add("flux", 0.5);
  pt.add("spmv", 1.0);
  EXPECT_DOUBLE_EQ(pt.get("flux"), 2.0);
  EXPECT_DOUBLE_EQ(pt.get("spmv"), 1.0);
  EXPECT_DOUBLE_EQ(pt.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(pt.total(), 3.0);
  pt.clear();
  EXPECT_DOUBLE_EQ(pt.total(), 0.0);
}

TEST(PhaseTimers, ScopeAddsOnDestruction) {
  f3d::PhaseTimers pt;
  {
    f3d::PhaseTimers::Scope s(pt, "work");
    double x = 0;
    for (int i = 0; i < 1000; ++i) x += i;
    benchmark_do_not_optimize(x);
  }
  EXPECT_GT(pt.get("work"), 0.0);
}

TEST(Rng, DeterministicForSeed) {
  f3d::Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformInRange) {
  f3d::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, BelowCoversRange) {
  f3d::Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);  // all residues hit with high probability
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  f3d::Rng rng(5);
  f3d::shuffle(v, rng);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_NE(v[0] * 100 + v[1], 0 * 100 + 1);  // overwhelmingly likely moved
}

TEST(Dense, LuRoundTrip4x4) {
  // A = random-ish diagonally dominant block; check A x = b solve.
  const int nb = 4;
  double a[16] = {10, 1, 2, 0, 1, 12, 0, 3, 2, 0, 9, 1, 0, 3, 1, 11};
  double a_copy[16];
  std::copy(a, a + 16, a_copy);
  double x_true[4] = {1, -2, 3, 0.5};
  double b[4] = {0, 0, 0, 0};
  f3d::dense::gemv_acc(nb, a, x_true, b);

  ASSERT_TRUE(f3d::dense::lu_factor(nb, a_copy));
  double x[4];
  f3d::dense::lu_solve(nb, a_copy, b, x);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
}

TEST(Dense, LuDetectsZeroPivot) {
  double a[4] = {0, 1, 1, 0};  // 2x2 with zero leading pivot
  EXPECT_FALSE(f3d::dense::lu_factor(2, a));
}

TEST(Dense, GemvSubMatchesAcc) {
  const int nb = 3;
  double a[9] = {1, 2, 3, 4, 5, 6, 7, 8, 10};
  double x[3] = {1, 1, 1};
  double yp[3] = {0, 0, 0}, ym[3] = {0, 0, 0};
  f3d::dense::gemv_acc(nb, a, x, yp);
  f3d::dense::gemv_sub(nb, a, x, ym);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(yp[i], -ym[i]);
}

TEST(Dense, GemmSubMatchesManual) {
  const int nb = 2;
  double a[4] = {1, 2, 3, 4};
  double b[4] = {5, 6, 7, 8};
  double c[4] = {0, 0, 0, 0};
  f3d::dense::gemm_sub(nb, a, b, c);
  // c -= a*b => c = -(a*b)
  EXPECT_DOUBLE_EQ(c[0], -(1 * 5 + 2 * 7));
  EXPECT_DOUBLE_EQ(c[1], -(1 * 6 + 2 * 8));
  EXPECT_DOUBLE_EQ(c[2], -(3 * 5 + 4 * 7));
  EXPECT_DOUBLE_EQ(c[3], -(3 * 6 + 4 * 8));
}

TEST(Dense, LuSolveBlockInvertsAgainstGemm) {
  const int nb = 3;
  double a[9] = {8, 1, 2, 1, 9, 3, 2, 3, 10};
  double lu[9];
  std::copy(a, a + 9, lu);
  ASSERT_TRUE(f3d::dense::lu_factor(nb, lu));
  double b[9] = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  f3d::dense::lu_solve_block(nb, lu, b);  // b = A^{-1}
  // Check A * A^{-1} = I via gemm_sub: c = I - A*Ainv should be ~0.
  double c[9] = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  f3d::dense::gemm_sub(nb, a, b, c);
  for (double v : c) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Options, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "-n", "42", "-tol", "1.5e-3", "-verbose",
                        "-name", "rcm", "file.txt"};
  f3d::Options o(9, argv);
  EXPECT_EQ(o.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(o.get_double("tol", 0), 1.5e-3);
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_EQ(o.get_string("name", ""), "rcm");
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "file.txt");
}

TEST(Options, NegativeNumbersAreValues) {
  const char* argv[] = {"prog", "-alpha", "-0.5", "-k", "-3"};
  f3d::Options o(5, argv);
  EXPECT_DOUBLE_EQ(o.get_double("alpha", 0), -0.5);
  EXPECT_EQ(o.get_int("k", 0), -3);
}

TEST(Options, FallbacksWhenMissing) {
  f3d::Options o;
  EXPECT_EQ(o.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(o.get_double("y", 2.5), 2.5);
  EXPECT_EQ(o.get_string("z", "d"), "d");
  EXPECT_FALSE(o.get_bool("w", false));
  EXPECT_FALSE(o.has("x"));
}

TEST(Options, ProgrammaticSet) {
  f3d::Options o;
  o.set("np", "16");
  EXPECT_EQ(o.get_int("np", 0), 16);
}

TEST(Table, FormatsAlignedColumns) {
  f3d::Table t({"Name", "Time"});
  t.add_row({"alpha", "1.00"});
  t.add_row({"b", "10.25"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("10.25"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  f3d::Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), f3d::Error);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(f3d::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(f3d::Table::num(static_cast<long long>(42)), "42");
}

}  // namespace
