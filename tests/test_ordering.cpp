// Tests for vertex (RCM) and edge orderings — the paper's §2.1 layout
// machinery. Key properties: RCM reduces bandwidth; sorted edge order is
// monotone in the tail vertex; colored order has no vertex shared between
// consecutive edges of a class.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"

namespace {

using namespace f3d::mesh;

TEST(Rcm, PermutationIsBijection) {
  auto m = generate_box_mesh(4, 4, 4);
  shuffle_mesh(m, 1);
  auto perm = rcm_ordering(m.vertex_adjacency());
  std::set<int> s(perm.begin(), perm.end());
  EXPECT_EQ(static_cast<int>(s.size()), m.num_vertices());
  EXPECT_EQ(*s.begin(), 0);
  EXPECT_EQ(*s.rbegin(), m.num_vertices() - 1);
}

TEST(Rcm, ReducesBandwidthOfShuffledMesh) {
  auto m = generate_wing_mesh(WingMeshConfig{.nx = 10, .ny = 6, .nz = 6});
  shuffle_mesh(m, 17);
  const int bw_before = m.bandwidth();
  m.permute_vertices(rcm_ordering(m.vertex_adjacency()));
  const int bw_after = m.bandwidth();
  EXPECT_LT(bw_after, bw_before / 4) << "RCM should cut bandwidth sharply";
}

TEST(Rcm, HandlesDisconnectedGraph) {
  // Two 4-cliques not connected to each other.
  std::vector<std::array<int, 2>> edges;
  for (int base : {0, 4})
    for (int i = 0; i < 4; ++i)
      for (int j = i + 1; j < 4; ++j) edges.push_back({base + i, base + j});
  auto g = build_graph(8, edges);
  auto perm = rcm_ordering(g);
  std::set<int> s(perm.begin(), perm.end());
  EXPECT_EQ(s.size(), 8u);
}

TEST(Rcm, PathGraphGetsBandwidthOne) {
  std::vector<std::array<int, 2>> edges;
  const int n = 20;
  // Scrambled path: i <-> i+1 under a fixed scramble.
  std::vector<int> label(n);
  std::iota(label.begin(), label.end(), 0);
  std::swap(label[0], label[13]);
  std::swap(label[5], label[17]);
  for (int i = 0; i + 1 < n; ++i) edges.push_back({std::min(label[i], label[i + 1]),
                                                   std::max(label[i], label[i + 1])});
  auto g = build_graph(n, edges);
  auto perm = rcm_ordering(g);
  int bw = 0;
  for (const auto& e : edges)
    bw = std::max(bw, std::abs(perm[e[0]] - perm[e[1]]));
  EXPECT_EQ(bw, 1);
}

TEST(EdgeOrder, SortedIsLexicographic) {
  auto m = generate_box_mesh(3, 3, 3);
  shuffle_mesh(m, 3);
  m.permute_edges(edge_order_sorted(m));
  const auto& e = m.edges();
  for (std::size_t k = 1; k < e.size(); ++k) EXPECT_LE(e[k - 1], e[k]);
}

TEST(EdgeOrder, ColoredOrderIsPermutation) {
  auto m = generate_box_mesh(3, 3, 3);
  auto order = edge_order_colored(m);
  std::set<int> s(order.begin(), order.end());
  EXPECT_EQ(static_cast<int>(s.size()), m.num_edges());
}

TEST(EdgeOrder, ColoringIsProper) {
  // Within the colored order, recompute colors and verify no two edges of
  // the same color share a vertex.
  auto m = generate_box_mesh(3, 2, 2);
  auto stats = edge_coloring_stats(m);
  EXPECT_GT(stats.num_colors, 1);
  EXPECT_GT(stats.max_class, 0);
}

TEST(EdgeOrder, ColoredHasWorseLocalityThanSorted) {
  // Locality proxy: mean |tail(k+1) - tail(k)| across the edge sequence.
  auto measure = [](const UnstructuredMesh& m) {
    const auto& e = m.edges();
    double s = 0;
    for (std::size_t k = 1; k < e.size(); ++k)
      s += std::abs(e[k][0] - e[k - 1][0]);
    return s / static_cast<double>(e.size() - 1);
  };
  auto m = generate_wing_mesh(WingMeshConfig{.nx = 10, .ny = 6, .nz = 6});
  auto sorted_mesh = m;
  sorted_mesh.permute_edges(edge_order_sorted(sorted_mesh));
  auto colored_mesh = m;
  colored_mesh.permute_edges(edge_order_colored(colored_mesh));
  EXPECT_LT(measure(sorted_mesh) * 5, measure(colored_mesh))
      << "colored (vector) order should jump wildly between tail vertices";
}

TEST(EdgeOrder, RandomIsDeterministicInSeed) {
  auto m = generate_box_mesh(3, 3, 3);
  EXPECT_EQ(edge_order_random(m, 7), edge_order_random(m, 7));
  EXPECT_NE(edge_order_random(m, 7), edge_order_random(m, 8));
}

TEST(BestOrdering, ImprovesBandwidthAndSortsEdges) {
  auto m = generate_wing_mesh(WingMeshConfig{.nx = 8, .ny = 6, .nz = 6});
  shuffle_mesh(m, 5);
  const int bw_before = m.bandwidth();
  apply_best_ordering(m);
  EXPECT_LT(m.bandwidth(), bw_before);
  const auto& e = m.edges();
  for (std::size_t k = 1; k < e.size(); ++k) EXPECT_LE(e[k - 1], e[k]);
}

}  // namespace
