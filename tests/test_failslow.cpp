// Fail-slow tolerance tests: the three injection sites and their arm()
// validation, the perturbed step model (contention + jitter terms, halo
// timeout, bounded retransmit escalation), the median/MAD outlier
// detector (including the clean-campaign zero-false-positive guarantee
// across thread counts), the weighted repartitioner's monotonicity
// property, and the campaign mitigation ladder end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/pool.hpp"
#include "mesh/generator.hpp"
#include "mesh/graph.hpp"
#include "par/distres.hpp"
#include "par/failslow.hpp"
#include "par/loadmodel.hpp"
#include "par/stepmodel.hpp"
#include "partition/partition.hpp"
#include "perf/machine.hpp"
#include "resilience/faults.hpp"

namespace {

using namespace f3d;
using namespace f3d::resilience;

mesh::Graph wing_graph() {
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 12, .ny = 7, .nz = 7});
  return mesh::build_graph(m.num_vertices(), m.edges());
}

par::WorkCoefficients test_work() {
  par::WorkCoefficients work;
  work.sparse_bytes_per_vertex_it = 1200;
  work.sparse_flops_per_vertex_it = 300;
  return work;
}

// With P draws per step (one per alive rank, rank order), draw s*P + r
// is rank r at step s — same convention as kRankFail.
FaultPlan fire_rank_at(int first_draw, int count = 1) {
  FaultPlan plan;
  plan.fire_every = 1;
  plan.skip_first = first_draw;
  plan.max_fires = count;
  return plan;
}

// --- arm() validation of the fail-slow sites ------------------------------

TEST(FailSlowArm, SlowRankRejectsSubUnitSlowdown) {
  FaultInjector inj(1);
  FaultPlan plan;
  plan.probability = 0.1;
  plan.magnitude = 0.5;  // a rank cannot run backwards
  EXPECT_THROW(inj.arm(FaultSite::kSlowRank, plan), Error);
  plan.magnitude = -3.0;
  EXPECT_THROW(inj.arm(FaultSite::kSlowRank, plan), Error);
  plan.magnitude = 1.0;  // boundary: a do-nothing straggler is legal
  EXPECT_NO_THROW(inj.arm(FaultSite::kSlowRank, plan));
  plan.magnitude = 4.0;
  EXPECT_NO_THROW(inj.arm(FaultSite::kSlowRank, plan));
}

TEST(FailSlowArm, JitterRejectsNonPositiveSigma) {
  FaultInjector inj(1);
  FaultPlan plan;
  plan.probability = 0.1;
  plan.magnitude = 0.0;
  EXPECT_THROW(inj.arm(FaultSite::kJitter, plan), Error);
  plan.magnitude = -0.5;
  EXPECT_THROW(inj.arm(FaultSite::kJitter, plan), Error);
  plan.magnitude = 0.25;
  EXPECT_NO_THROW(inj.arm(FaultSite::kJitter, plan));
}

TEST(FailSlowArm, DegradedLinkRejectsFactorOutsideUnitInterval) {
  FaultInjector inj(1);
  FaultPlan plan;
  plan.probability = 0.1;
  // The default magnitude (2.0) is NOT a valid bandwidth factor: arming
  // kDegradedLink forces an explicit, physical choice.
  EXPECT_THROW(inj.arm(FaultSite::kDegradedLink, plan), Error);
  plan.magnitude = 0.0;
  EXPECT_THROW(inj.arm(FaultSite::kDegradedLink, plan), Error);
  plan.magnitude = -0.2;
  EXPECT_THROW(inj.arm(FaultSite::kDegradedLink, plan), Error);
  plan.magnitude = 1.0;  // boundary: a healthy link is legal
  EXPECT_NO_THROW(inj.arm(FaultSite::kDegradedLink, plan));
  plan.magnitude = 0.25;
  EXPECT_NO_THROW(inj.arm(FaultSite::kDegradedLink, plan));
}

TEST(FailSlowArm, SiteNamesAreStable) {
  EXPECT_STREQ(fault_site_name(FaultSite::kSlowRank), "slow-rank");
  EXPECT_STREQ(fault_site_name(FaultSite::kJitter), "jitter");
  EXPECT_STREQ(fault_site_name(FaultSite::kDegradedLink), "degraded-link");
}

// Golden-stream: the new sites draw from their own seed-derived streams,
// so arming them never perturbs an existing site's sequence, and a
// state() round-trip replays them bit-identically.
TEST(FailSlowArm, NewSitesDoNotPerturbExistingStreams) {
  FaultPlan p;
  p.probability = 0.5;
  auto fire_pattern = [&](bool arm_new) {
    FaultInjector inj(77);
    inj.arm(FaultSite::kMessage, p);
    if (arm_new) {
      FaultPlan q = p;
      q.magnitude = 2.0;
      inj.arm(FaultSite::kSlowRank, q);
      for (int i = 0; i < 100; ++i) inj.should_fire(FaultSite::kSlowRank);
    }
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i)
      fires.push_back(inj.should_fire(FaultSite::kMessage));
    return fires;
  };
  EXPECT_EQ(fire_pattern(false), fire_pattern(true));
}

TEST(FailSlowArm, StateRoundTripReplaysNewSites) {
  FaultPlan p;
  p.probability = 0.3;
  p.magnitude = 3.0;
  FaultInjector inj(9);
  inj.arm(FaultSite::kSlowRank, p);
  FaultPlan q;
  q.probability = 0.3;
  q.magnitude = 0.5;
  inj.arm(FaultSite::kDegradedLink, q);
  for (int i = 0; i < 57; ++i) {
    inj.should_fire(FaultSite::kSlowRank);
    inj.should_fire(FaultSite::kDegradedLink);
  }
  const auto st = inj.state();
  std::vector<bool> expect;
  for (int i = 0; i < 50; ++i) {
    expect.push_back(inj.should_fire(FaultSite::kSlowRank));
    expect.push_back(inj.should_fire(FaultSite::kDegradedLink));
  }
  FaultInjector replay(0);
  replay.arm(FaultSite::kSlowRank, p);
  replay.arm(FaultSite::kDegradedLink, q);
  replay.restore(st);
  std::vector<bool> got;
  for (int i = 0; i < 50; ++i) {
    got.push_back(replay.should_fire(FaultSite::kSlowRank));
    got.push_back(replay.should_fire(FaultSite::kDegradedLink));
  }
  EXPECT_EQ(expect, got);
}

// --- the perturbed step model ---------------------------------------------

struct ModelRig {
  mesh::Graph g = wing_graph();
  par::PartitionLoad load = par::measure_load(g, part::kway_grow(g, 8));
  par::WorkCoefficients work = test_work();
  perf::MachineModel machine = perf::asci_red();
};

TEST(PerturbedStep, TrivialPerturbationIsBitTransparent) {
  ModelRig rig;
  const auto base = par::model_step(rig.machine, rig.load, rig.work, {});
  par::StepPerturbation none;
  const auto same =
      par::model_step(rig.machine, rig.load, rig.work, {},
                      par::NodeMode::kMpi1, nullptr, &none);
  EXPECT_EQ(base.total(), same.total());  // bitwise
  EXPECT_EQ(base.t_implicit_sync, same.t_implicit_sync);
}

TEST(PerturbedStep, RejectsUnphysicalPerturbations) {
  ModelRig rig;
  par::StepPerturbation p;
  p.crit_slowdown = 1.0;
  p.avg_slowdown = 2.0;  // the critical path cannot beat the mean
  EXPECT_THROW(par::model_step(rig.machine, rig.load, rig.work, {},
                               par::NodeMode::kMpi1, nullptr, &p),
               Error);
  p = {};
  p.link_factor = 0.0;
  EXPECT_THROW(par::model_step(rig.machine, rig.load, rig.work, {},
                               par::NodeMode::kMpi1, nullptr, &p),
               Error);
  p = {};
  p.jitter = -0.1;
  EXPECT_THROW(par::model_step(rig.machine, rig.load, rig.work, {},
                               par::NodeMode::kMpi1, nullptr, &p),
               Error);
}

TEST(PerturbedStep, StragglerStretchesImbalanceNotJustBusyTime) {
  ModelRig rig;
  const auto base = par::model_step(rig.machine, rig.load, rig.work, {});
  par::StepPerturbation p;
  p.crit_slowdown = 4.0;  // one rank 4x slow: pure critical-path stretch
  const auto slow =
      par::model_step(rig.machine, rig.load, rig.work, {},
                      par::NodeMode::kMpi1, nullptr, &p);
  // The mean busy time barely moves (avg_slowdown = 1) ...
  EXPECT_NEAR(slow.t_flux, base.t_flux, 1e-12);
  // ... while the max-avg gap — the implicit synchronization wait —
  // blows up: that is the fail-slow signature.
  EXPECT_GT(slow.t_implicit_sync, 3.0 * base.t_implicit_sync);
  EXPECT_GT(slow.total(), 1.5 * base.total());
  EXPECT_EQ(slow.crit_slowdown, 4.0);
}

TEST(PerturbedStep, DegradedLinkStretchesTheScatterPhase) {
  ModelRig rig;
  const auto base = par::model_step(rig.machine, rig.load, rig.work, {});
  par::StepPerturbation p;
  p.link_factor = 0.1;  // 10x bandwidth cut, no timeout armed
  const auto sick =
      par::model_step(rig.machine, rig.load, rig.work, {},
                      par::NodeMode::kMpi1, nullptr, &p);
  EXPECT_GT(sick.t_scatter, base.t_scatter);
  EXPECT_EQ(sick.halo_timeouts, 0);  // nobody re-routed: everyone waited
  EXPECT_NEAR(sick.t_flux, base.t_flux, 1e-12);
}

TEST(PerturbedStep, HaloTimeoutReroutesInsteadOfWaiting) {
  ModelRig rig;
  par::StepPerturbation p;
  p.link_factor = 0.05;
  // Both arms carry the comm model (same CRC tax); only the timeout
  // differs. Timeout = healthy latency + 4x healthy transfer time, so a
  // 20x bandwidth cut trips it.
  par::CommReliability comm_wait;  // halo_timeout_us = 0: wait it out
  const auto waiting =
      par::model_step(rig.machine, rig.load, rig.work, {},
                      par::NodeMode::kMpi1, &comm_wait, &p);
  par::CommReliability comm;
  const double msg_bytes = rig.load.max_ghosts * rig.work.nb *
                           sizeof(double) /
                           std::max(rig.load.max_neighbors, 1.0);
  comm.halo_timeout_us =
      rig.machine.net_latency_us + 4.0 * msg_bytes / rig.machine.net_bw_mbs;
  const auto rerouted =
      par::model_step(rig.machine, rig.load, rig.work, {},
                      par::NodeMode::kMpi1, &comm, &p);
  EXPECT_GT(rerouted.halo_timeouts, 0);
  EXPECT_GT(rerouted.t_recovery, 0.0);
  // The re-post on the fallback path beats waiting out a 20x-slow link.
  EXPECT_LT(rerouted.total(), waiting.total());
  // A healthy link under the same timeout never trips it.
  par::StepPerturbation healthy;
  const auto clean =
      par::model_step(rig.machine, rig.load, rig.work, {},
                      par::NodeMode::kMpi1, &comm, &healthy);
  EXPECT_EQ(clean.halo_timeouts, 0);
  EXPECT_EQ(clean.t_recovery, 0.0);
}

TEST(PerturbedStep, JitterTermAddsNoiseWait) {
  ModelRig rig;
  const auto base = par::model_step(rig.machine, rig.load, rig.work, {});
  par::StepPerturbation p;
  p.jitter = 0.10;
  const auto noisy =
      par::model_step(rig.machine, rig.load, rig.work, {},
                      par::NodeMode::kMpi1, nullptr, &p);
  EXPECT_GT(noisy.t_implicit_sync, base.t_implicit_sync);
  EXPECT_NEAR(noisy.t_flux, base.t_flux, 1e-12);  // busy time unchanged
  EXPECT_EQ(noisy.jitter_extra, 0.10);
}

// Satellite: retransmit escalation is bounded. A pathologically lossy
// link (every opportunity fires, generous retry budget) charges at most
// the per-step cap, and the exponential backoff stops doubling at
// backoff_max_us.
TEST(PerturbedStep, RetransmitEscalationIsBounded) {
  ModelRig rig;
  par::CommReliability comm;
  comm.max_retries = 64;
  comm.step_recovery_cap_s = 0.5;
  FaultInjector inj(3);
  FaultPlan always;
  always.fire_every = 1;
  inj.arm(FaultSite::kMessage, always);
  InjectorScope scope(&inj);
  const auto b = par::model_step(rig.machine, rig.load, rig.work, {},
                                 par::NodeMode::kMpi1, &comm);
  EXPECT_GT(b.retransmits, 0);
  EXPECT_LE(b.t_recovery, comm.step_recovery_cap_s);
  // Unclamped doubling of a 50us backoff over 64 retries would exceed
  // any physical step time by orders of magnitude; the cap plus the
  // backoff ceiling keeps the charge finite and bounded.
  EXPECT_TRUE(std::isfinite(b.t_recovery));
}

// --- the detector ---------------------------------------------------------

TEST(Detector, MedianAndMadBasics) {
  EXPECT_DOUBLE_EQ(par::median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(par::median_of({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(par::median_of({}), 0.0);
  EXPECT_DOUBLE_EQ(par::mad_of({1.0, 1.0, 5.0}, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(par::mad_of({1.0, 2.0, 4.0}, 2.0), 1.0);
}

TEST(Detector, OptionsAreValidated) {
  par::DetectorOptions bad;
  bad.window = 0;
  EXPECT_THROW(par::SlowRankDetector(4, bad), Error);
  bad = {};
  bad.window = 65;
  EXPECT_THROW(par::SlowRankDetector(4, bad), Error);
  bad = {};
  bad.confirm = 9;  // > window
  EXPECT_THROW(par::SlowRankDetector(4, bad), Error);
  bad = {};
  bad.z_threshold = 0;
  EXPECT_THROW(par::SlowRankDetector(4, bad), Error);
}

TEST(Detector, PersistentOutlierConfirmsAtTheConfirmBar) {
  par::SlowRankDetector det(8);
  std::vector<double> x(8, 1.0);
  x[5] = 4.0;  // rank 5 runs 4x slow every step
  std::vector<int> confirmed;
  int confirm_step = -1;
  for (int s = 0; s < 10; ++s) {
    auto now = det.observe(s, x);
    if (!now.empty() && confirm_step < 0) {
      confirmed = now;
      confirm_step = s;
    }
  }
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0], 5);
  EXPECT_EQ(confirm_step, det.options().confirm - 1);  // earliest possible
  EXPECT_EQ(det.detect_latency(5), det.options().confirm);
  EXPECT_EQ(det.health(5), par::RankHealth::kConfirmedSlow);
  EXPECT_EQ(det.health(0), par::RankHealth::kHealthy);
  EXPECT_GT(det.last_z(5), det.options().z_threshold);
}

TEST(Detector, TransientSpikeIsSuspectedButAgesOut) {
  par::SlowRankDetector det(8);
  std::vector<double> clean(8, 1.0);
  std::vector<double> spiky = clean;
  spiky[2] = 3.0;
  EXPECT_TRUE(det.observe(0, spiky).empty());
  EXPECT_EQ(det.health(2), par::RankHealth::kSuspected);
  EXPECT_EQ(det.suspected_events(), 1);
  for (int s = 1; s <= det.options().window; ++s)
    EXPECT_TRUE(det.observe(s, clean).empty());
  EXPECT_EQ(det.health(2), par::RankHealth::kHealthy);  // aged out
  EXPECT_EQ(det.confirmed_ranks(), 0);
}

TEST(Detector, QuarantineAndResetLifecycle) {
  par::SlowRankDetector det(8);
  std::vector<double> x(8, 1.0);
  x[3] = 5.0;
  for (int s = 0; s < 5; ++s) det.observe(s, x);
  ASSERT_EQ(det.health(3), par::RankHealth::kConfirmedSlow);
  det.quarantine(3);
  EXPECT_EQ(det.health(3), par::RankHealth::kQuarantined);
  // A quarantined rank is excluded: its (stale) telemetry cannot raise
  // new suspicions.
  const int before = det.suspected_events();
  det.observe(5, x);
  EXPECT_EQ(det.suspected_events(), before);
  det.reset(3);
  EXPECT_EQ(det.health(3), par::RankHealth::kHealthy);
  EXPECT_EQ(det.detect_latency(3), det.options().confirm);  // record kept
}

// The zero-false-positive guarantee: with the MAD floor set at the
// benign-noise amplitude b, a sample sits at most 2b from the sample
// median, so clean z-scores stay under 2b / (1.4826 * b) ~= 1.35 —
// never near the threshold of 4. Hammer it with hash noise.
TEST(Detector, BoundedBenignNoiseNeverSuspects) {
  par::DetectorOptions opts;
  opts.mad_floor_frac = 0.02;  // = the noise amplitude below
  par::SlowRankDetector det(16, opts);
  std::vector<double> x(16);
  for (int s = 0; s < 500; ++s) {
    for (int r2 = 0; r2 < 16; ++r2) {
      const double eps =
          0.02 * (2.0 * par::hash01(123, static_cast<std::uint64_t>(s),
                                    static_cast<std::uint64_t>(r2)) -
                  1.0);
      x[static_cast<std::size_t>(r2)] = 1.0 + eps;
    }
    EXPECT_TRUE(det.observe(s, x).empty());
  }
  EXPECT_EQ(det.suspected_events(), 0);
  EXPECT_EQ(det.confirmed_ranks(), 0);
}

// --- the weighted repartitioner -------------------------------------------

TEST(WeightedRepartition, ShiftsLoadOffTheSlowRank) {
  auto g = wing_graph();
  auto p = part::kway_grow(g, 8);
  std::vector<double> speed(8, 1.0);
  speed[3] = 0.25;  // rank 3 is a 4x straggler
  const double before = part::weighted_imbalance(p, speed);
  part::RepartitionReport rep;
  auto q = part::repartition_for_imbalance(g, p, speed, &rep);
  const double after = part::weighted_imbalance(q, speed);
  EXPECT_GT(rep.moved_vertices, 0);
  EXPECT_LT(after, before);
  EXPECT_NEAR(after, rep.imbalance_after, 1e-12);
  EXPECT_NEAR(before, rep.imbalance_before, 1e-12);
  // The slow part shed vertices; nobody else's vertices moved to it.
  int size_before = 0, size_after = 0;
  for (int v = 0; v < p.num_vertices(); ++v) {
    if (p.part[v] == 3) ++size_before;
    if (q.part[v] == 3) ++size_after;
  }
  EXPECT_LT(size_after, size_before);
  EXPECT_EQ(q.nparts, p.nparts);
}

TEST(WeightedRepartition, UniformSpeedsOnBalancedPartitionIsANoOp) {
  auto g = wing_graph();
  auto p = part::balance_first(g, 8);  // perfectly balanced by design
  const std::vector<double> speed(8, 1.0);
  part::RepartitionReport rep;
  auto q = part::repartition_for_imbalance(g, p, speed, &rep);
  EXPECT_EQ(rep.moved_vertices, 0);
  EXPECT_EQ(q.part, p.part);
}

TEST(WeightedRepartition, RejectsBadSpeeds) {
  auto g = wing_graph();
  auto p = part::kway_grow(g, 4);
  EXPECT_THROW(
      part::repartition_for_imbalance(g, p, std::vector<double>(3, 1.0)),
      Error);
  std::vector<double> zero(4, 1.0);
  zero[1] = 0.0;
  EXPECT_THROW(part::repartition_for_imbalance(g, p, zero), Error);
}

// Property: on randomized partitions and speeds, the weighted imbalance
// never increases, and the deterministic tie-breaks reproduce the exact
// same partition on a replay.
TEST(WeightedRepartition, PropertyMonotoneAndDeterministic) {
  auto g = wing_graph();
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const int nparts = 3 + static_cast<int>(rng.uniform() * 8);
    auto p = part::kway_grow(g, nparts,
                             static_cast<unsigned>(trial * 7 + 1));
    std::vector<double> speed(static_cast<std::size_t>(nparts));
    for (double& sp : speed) sp = 0.2 + 0.8 * rng.uniform();
    part::RepartitionReport rep;
    auto q = part::repartition_for_imbalance(g, p, speed, &rep);
    EXPECT_LE(rep.imbalance_after, rep.imbalance_before + 1e-12)
        << "trial " << trial;
    EXPECT_GE(rep.imbalance_after, 1.0 - 1e-12);
    // Vertex conservation: every vertex still has a valid part.
    ASSERT_EQ(q.num_vertices(), p.num_vertices());
    for (int v = 0; v < q.num_vertices(); ++v) {
      ASSERT_GE(q.part[v], 0);
      ASSERT_LT(q.part[v], nparts);
    }
    // Determinism: same inputs, same moves.
    auto q2 = part::repartition_for_imbalance(g, p, speed);
    EXPECT_EQ(q.part, q2.part) << "trial " << trial;
  }
}

// --- the campaign: detection + mitigation ladder --------------------------

struct FailSlowRig {
  mesh::Graph g = wing_graph();
  par::CampaignDomain domain;
  par::WorkCoefficients work = test_work();
  perf::MachineModel machine = perf::asci_red();
  std::vector<par::StepCounts> steps;
  static constexpr int kRanks = 8;

  FailSlowRig() : steps(40) {
    domain = par::make_domain(g, part::kway_grow(g, kRanks));
  }

  par::CampaignResult run(par::SlowMitigation mitigation,
                          double slowdown = 4.0, int slow_rank = 2,
                          int at_step = 4) {
    FaultInjector inj(5);
    if (slowdown > 1.0) {
      FaultPlan plan = fire_rank_at(at_step * kRanks + slow_rank);
      plan.magnitude = slowdown;
      inj.arm(FaultSite::kSlowRank, plan);
    }
    par::CampaignOptions o;
    o.policy = par::RecoveryPolicy::kSpareRank;
    o.spare_ranks = 2;
    o.checkpoint_interval = 10;
    o.comm = par::CommReliability{};
    o.slow_mitigation = mitigation;
    o.injector = &inj;
    return par::simulate_campaign(machine, domain, work, steps, o);
  }
};

TEST(FailSlowCampaign, CleanCampaignHasZeroFalsePositives) {
  FailSlowRig rig;
  const auto r = rig.run(par::SlowMitigation::kQuarantine, 1.0);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.slow_suspected, 0);
  EXPECT_EQ(r.slow_confirmed, 0);
  EXPECT_EQ(r.slow_quarantined, 0);
  EXPECT_EQ(r.weighted_repartitions, 0);
  EXPECT_EQ(r.checkpoint_retunes, 0);
  EXPECT_EQ(r.log.count(RecoveryAction::kDetectSlowRank), 0);
}

// The detector's verdicts are pure functions of the telemetry: running
// the campaign under 1, 2 or 4 pool threads changes nothing, bit for
// bit — clean runs stay clean and the straggler run confirms the same
// rank at the same step.
TEST(FailSlowCampaign, VerdictsAreThreadCountInvariant) {
  for (const double slowdown : {1.0, 4.0}) {
    std::vector<par::CampaignResult> results;
    for (const int threads : {1, 2, 4}) {
      exec::ThreadScope scope(threads);
      FailSlowRig rig;
      results.push_back(rig.run(par::SlowMitigation::kQuarantine, slowdown));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].slow_suspected, results[0].slow_suspected);
      EXPECT_EQ(results[i].slow_confirmed, results[0].slow_confirmed);
      EXPECT_EQ(results[i].slow_detect_latency_steps,
                results[0].slow_detect_latency_steps);
      EXPECT_EQ(results[i].sim.total_seconds,
                results[0].sim.total_seconds);  // bitwise
      EXPECT_EQ(results[i].log.size(), results[0].log.size());
    }
    EXPECT_EQ(results[0].slow_suspected == 0, slowdown == 1.0);
  }
}

TEST(FailSlowCampaign, DetectOnlyConfirmsTheInjectedRankAndDoesNotMitigate) {
  FailSlowRig rig;
  const auto r = rig.run(par::SlowMitigation::kNone);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.slow_confirmed, 1);
  EXPECT_GE(r.slow_suspected, 3);
  EXPECT_EQ(r.log.count(RecoveryAction::kDetectSlowRank), 1);
  // Detection latency: first suspicion to confirmation, >= confirm bar.
  EXPECT_GE(r.slow_detect_latency_steps, 3);
  EXPECT_LE(r.slow_detect_latency_steps, 8);
  // Control arm: nobody acted on it.
  EXPECT_EQ(r.slow_quarantined, 0);
  EXPECT_EQ(r.weighted_repartitions, 0);
  EXPECT_EQ(r.spares_used, 0);
  EXPECT_EQ(r.log.count(RecoveryAction::kQuarantineSlowRank), 0);
  EXPECT_EQ(r.log.count(RecoveryAction::kWeightedRepartition), 0);
  // The named rank is the injected one.
  for (const auto& e : r.log.events()) {
    if (e.action == RecoveryAction::kDetectSlowRank) {
      EXPECT_NE(e.detail.find("rank 2"), std::string::npos);
    }
  }
}

TEST(FailSlowCampaign, RepartitionRungShedsLoadAndRecoversTime) {
  FailSlowRig rig;
  const auto none = rig.run(par::SlowMitigation::kNone);
  const auto repart = rig.run(par::SlowMitigation::kRepartition);
  ASSERT_TRUE(repart.completed);
  EXPECT_EQ(repart.weighted_repartitions, 1);
  EXPECT_EQ(repart.slow_quarantined, 0);
  EXPECT_EQ(repart.log.count(RecoveryAction::kWeightedRepartition), 1);
  EXPECT_LT(repart.sim.total_seconds, none.sim.total_seconds);
}

TEST(FailSlowCampaign, QuarantineRungMigratesAndRetunesCheckpoints) {
  FailSlowRig rig;
  const auto none = rig.run(par::SlowMitigation::kNone);
  const auto quar = rig.run(par::SlowMitigation::kQuarantine);
  ASSERT_TRUE(quar.completed);
  EXPECT_EQ(quar.slow_quarantined, 1);
  EXPECT_EQ(quar.spares_used, 1);
  EXPECT_EQ(quar.log.count(RecoveryAction::kQuarantineSlowRank), 1);
  EXPECT_EQ(quar.log.count(RecoveryAction::kCheckpointRetune),
            quar.checkpoint_retunes);
  // The migrated rank runs healthy afterwards: the quarantine arm beats
  // living with the straggler. (Whether it also beats the repartition
  // rung depends on the spare-boot cost amortization — bench_failslow
  // sweeps that tradeoff; this short campaign only pins the direction.)
  EXPECT_LT(quar.sim.total_seconds, none.sim.total_seconds);
}

TEST(FailSlowCampaign, DegradedLinkTripsTimeoutsUnderRetryRung) {
  FailSlowRig rig;
  auto run = [&](par::SlowMitigation m) {
    FaultInjector inj(5);
    FaultPlan plan = fire_rank_at(4 * FailSlowRig::kRanks + 3);
    plan.magnitude = 0.05;  // 20x bandwidth cut on rank 3's links
    inj.arm(FaultSite::kDegradedLink, plan);
    par::CampaignOptions o;
    o.policy = par::RecoveryPolicy::kSpareRank;
    o.spare_ranks = 0;  // no spares: retry is the only rung available
    o.checkpoint_interval = 10;
    o.comm = par::CommReliability{};
    o.slow_mitigation = m;
    o.injector = &inj;
    return par::simulate_campaign(rig.machine, rig.domain, rig.work,
                                  rig.steps, o);
  };
  const auto waiting = run(par::SlowMitigation::kNone);
  const auto retry = run(par::SlowMitigation::kRetry);
  ASSERT_TRUE(retry.completed);
  // kNone leaves halo_timeout_us at 0: everyone waits out the sick link.
  EXPECT_EQ(waiting.sim.aggregate.halo_timeouts, 0);
  EXPECT_GT(retry.sim.aggregate.halo_timeouts, 0);
  EXPECT_LT(retry.sim.total_seconds, waiting.sim.total_seconds);
}

TEST(FailSlowCampaign, TransientJitterSuspectsWithoutConfirming) {
  FailSlowRig rig;
  FaultInjector inj(5);
  FaultPlan plan = fire_rank_at(6 * FailSlowRig::kRanks + 1);  // one spike
  plan.magnitude = 4.0;  // sigma: up to 4x transient stretch
  inj.arm(FaultSite::kJitter, plan);
  par::CampaignOptions o;
  o.policy = par::RecoveryPolicy::kSpareRank;
  o.checkpoint_interval = 10;
  o.slow_mitigation = par::SlowMitigation::kQuarantine;
  o.injector = &inj;
  const auto r = par::simulate_campaign(rig.machine, rig.domain, rig.work,
                                        rig.steps, o);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.slow_suspected, 1);
  EXPECT_EQ(r.slow_confirmed, 0);  // one spike never crosses the bar
  EXPECT_EQ(r.slow_quarantined, 0);
}

TEST(FailSlowCampaign, ReplayIsBitIdenticalFromSeed) {
  FailSlowRig rig;
  const auto a = rig.run(par::SlowMitigation::kQuarantine);
  const auto b = rig.run(par::SlowMitigation::kQuarantine);
  EXPECT_EQ(a.sim.total_seconds, b.sim.total_seconds);  // bitwise
  EXPECT_EQ(a.slow_suspected, b.slow_suspected);
  EXPECT_EQ(a.slow_confirmed, b.slow_confirmed);
  EXPECT_EQ(a.slow_detect_latency_steps, b.slow_detect_latency_steps);
  EXPECT_EQ(a.t_restore, b.t_restore);
  EXPECT_EQ(a.log.size(), b.log.size());
}

}  // namespace
