// SIMD wrapper + mixed-precision contracts:
//  * f3d::simd pack semantics (load/store/gather/promote, the FIXED
//    pairwise hsum order every horizontal reduction in the library uses),
//  * the runtime scalar/SIMD toggle and its elementwise bit-identity
//    guarantee (axpy-family kernels round identically in both configs),
//  * thread-count bit-invariance of the hot kernels in BOTH configs —
//    the determinism contract is per (isa, precision) configuration,
//  * float-storage/double-accumulate equivalences: exact for float-
//    representable values, bounded by the float unit roundoff otherwise
//    (the error-budget the ABFT guard and the mixed psi-NKS solve rely
//    on).

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstring>
#include <vector>

#include "cfd/euler.hpp"
#include "cfd/problem.hpp"
#include "common/simd.hpp"
#include "exec/pool.hpp"
#include "exec/reduce.hpp"
#include "mesh/generator.hpp"
#include "solver/newton.hpp"
#include "sparse/csr.hpp"
#include "sparse/ilu.hpp"
#include "sparse/vec.hpp"

namespace {

using namespace f3d;
using simd::Vd;

// --- pack semantics -------------------------------------------------------

TEST(SimdWrapper, ReportsConsistentConfig) {
  // double_lanes() reports what the dispatched kernels use: the full pack
  // when the vector paths are live, 1 on the scalar fallback.
  EXPECT_EQ(simd::double_lanes(), simd::enabled() ? simd::kDoubleLanes : 1);
  EXPECT_EQ(simd::kDoubleLanes, 4);
  EXPECT_NE(simd::isa_name(), nullptr);
  EXPECT_NE(simd::target_arch(), nullptr);
  // enabled() can never claim SIMD that was not compiled in.
  if (!simd::compiled()) EXPECT_FALSE(simd::enabled());
}

TEST(SimdWrapper, EnabledScopeTogglesAndRestores) {
  const bool before = simd::enabled();
  {
    simd::EnabledScope off(false);
    EXPECT_FALSE(simd::enabled());
    {
      simd::EnabledScope on(true);
      EXPECT_EQ(simd::enabled(), simd::compiled());
    }
    EXPECT_FALSE(simd::enabled());
  }
  EXPECT_EQ(simd::enabled(), before);
}

TEST(SimdWrapper, LoadStoreRoundTrip) {
  const double src[4] = {1.5, -2.25, 3.0e10, -0.0};
  double dst[4] = {};
  Vd::loadu(src).storeu(dst);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(dst[i], src[i]);
    EXPECT_EQ(Vd::loadu(src).lane(i), src[i]);
  }
  const Vd b = Vd::broadcast(7.25);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(b.lane(i), 7.25);
  const Vd z = Vd::zero();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(z.lane(i), 0.0);
}

TEST(SimdWrapper, PromotingFloatLoadIsExact) {
  // Float-storage kernels promote on load: each lane must be the exact
  // double value of the stored float (promotion is always exact).
  const float src[4] = {1.5F, -2.25F, 3.1415927F, 1.0e-30F};
  const Vd v = Vd::loadu(src);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(v.lane(i), static_cast<double>(src[i]));
}

TEST(SimdWrapper, GatherMatchesIndexedLoads) {
  std::vector<double> base(32);
  for (std::size_t i = 0; i < base.size(); ++i)
    base[i] = 0.25 * static_cast<double>(i) - 3.0;
  const int idx[4] = {31, 0, 17, 4};
  const Vd g = Vd::gather(base.data(), idx);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(g.lane(i), base[idx[i]]);
}

TEST(SimdWrapper, HsumIsFixedPairwiseOrder) {
  // The determinism contract pins hsum to (l0+l1) + (l2+l3); values are
  // chosen so other association orders round differently.
  const double src[4] = {1.0, 1e-16, -1.0, 1e-16};
  const double expect = (src[0] + src[1]) + (src[2] + src[3]);
  EXPECT_EQ(Vd::loadu(src).hsum(), expect);
  // And NOT the sequential order for this input.
  const double sequential = ((src[0] + src[1]) + src[2]) + src[3];
  EXPECT_NE(expect, sequential);
}

TEST(SimdWrapper, ArithmeticOperatorsMatchScalarLanewise) {
  const double a[4] = {1.5, -2.0, 0.125, 1e8};
  const double b[4] = {-0.5, 3.0, 7.75, 1e-8};
  const Vd va = Vd::loadu(a), vb = Vd::loadu(b);
  const Vd sum = va + vb, diff = va - vb, prod = va * vb;
  Vd acc = Vd::loadu(a);
  acc += vb;
  Vd acc2 = Vd::loadu(a);
  acc2 -= vb;
  Vd acc3 = Vd::loadu(a);
  acc3 *= vb;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sum.lane(i), a[i] + b[i]);
    EXPECT_EQ(diff.lane(i), a[i] - b[i]);
    EXPECT_EQ(prod.lane(i), a[i] * b[i]);
    EXPECT_EQ(acc.lane(i), a[i] + b[i]);
    EXPECT_EQ(acc2.lane(i), a[i] - b[i]);
    EXPECT_EQ(acc3.lane(i), a[i] * b[i]);
  }
}

// --- scalar/SIMD config contracts -----------------------------------------

std::vector<double> pattern_vector(int n, double phase) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] = std::sin(0.1 * i + phase) + 2.0;
  return x;
}

TEST(SimdConfig, AxpyFamilyIsBitIdenticalScalarVsSimd) {
  // Elementwise kernels do the same per-element arithmetic in both
  // configs — packs only batch independent elements — so the outputs are
  // bit-identical, not merely close.
  const int n = 10007;  // odd: exercises the scalar tail
  const auto x = pattern_vector(n, 0.0);
  auto y1 = pattern_vector(n, 1.0);
  auto y2 = y1;
  {
    simd::EnabledScope off(false);
    sparse::axpy(1.7, x, y1);
    sparse::aypx(0.3, x, y1);
    sparse::scale(y1, 1.25);
  }
  {
    simd::EnabledScope on(true);
    sparse::axpy(1.7, x, y2);
    sparse::aypx(0.3, x, y2);
    sparse::scale(y2, 1.25);
  }
  EXPECT_EQ(std::memcmp(y1.data(), y2.data(), y1.size() * sizeof(double)), 0);
}

sparse::Bcsr<double> wing_jacobian(cfd::EulerDiscretization& disc) {
  auto q = disc.make_freestream_field();
  auto jac = disc.allocate_jacobian();
  disc.jacobian(q, jac);
  for (int i = 0; i < jac.nrows; ++i) {
    double* blk = jac.find_block(i, i);
    for (int c = 0; c < jac.nb; ++c)
      blk[static_cast<std::size_t>(c) * jac.nb + c] += 1.0;
  }
  return jac;
}

TEST(SimdConfig, HotKernelsAreThreadCountInvariantInBothConfigs) {
  // The bit-determinism contract is per (isa, precision) config: within
  // one config, 1/2/4 threads produce byte-identical results. Scalar and
  // SIMD configs may legitimately differ (horizontal reductions round
  // differently) — that cross-config difference is NOT asserted either
  // way.
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 6, .ny = 4, .nz = 4});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 2;
  cfd::EulerDiscretization disc(m, cfg);
  const auto q = disc.make_freestream_field();
  const auto jac = wing_jacobian(disc);
  const int n = disc.num_unknowns();
  const auto x = pattern_vector(n, 0.5);

  const int before = exec::pool().num_threads();
  for (bool use_simd : {false, true}) {
    simd::EnabledScope scope(use_simd);
    std::vector<double> r1, y1(static_cast<std::size_t>(n));
    double d1 = 0;
    for (int nt : {1, 2, 4}) {
      exec::set_threads(nt);
      std::vector<double> r, y(static_cast<std::size_t>(n));
      disc.residual(q, r);
      jac.spmv(x.data(), y.data());
      const double d = exec::dot(n, x.data(), y.data());
      if (nt == 1) {
        r1 = r;
        y1 = y;
        d1 = d;
        continue;
      }
      EXPECT_EQ(std::memcmp(r.data(), r1.data(), r.size() * sizeof(double)),
                0)
          << "residual, simd=" << use_simd << ", " << nt << " threads";
      EXPECT_EQ(std::memcmp(y.data(), y1.data(), y.size() * sizeof(double)),
                0)
          << "spmv, simd=" << use_simd << ", " << nt << " threads";
      EXPECT_EQ(d, d1) << "dot, simd=" << use_simd << ", " << nt
                       << " threads";
    }
  }
  exec::set_threads(before);
}

TEST(SimdConfig, TrisolveLevelScheduleMatchesSerialInBothConfigs) {
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 5, .ny = 4, .nz = 3});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  const auto jac = wing_jacobian(disc);
  const int n = jac.scalar_n();
  const auto pat = sparse::ilu_symbolic(jac, 0);
  const auto ilu = sparse::ilu_factor_block<double>(jac, pat);
  const auto fwd = sparse::lower_levels(pat);
  const auto bwd = sparse::upper_levels(pat);
  const auto b = pattern_vector(n, 0.25);

  const int before = exec::pool().num_threads();
  for (bool use_simd : {false, true}) {
    simd::EnabledScope scope(use_simd);
    std::vector<double> zs(static_cast<std::size_t>(n)),
        zl(static_cast<std::size_t>(n));
    ilu.solve(b.data(), zs.data());
    for (int nt : {1, 2, 4}) {
      exec::set_threads(nt);
      ilu.solve_levels(fwd, bwd, b.data(), zl.data());
      EXPECT_EQ(std::memcmp(zs.data(), zl.data(), zs.size() * sizeof(double)),
                0)
          << "simd=" << use_simd << ", " << nt << " threads";
    }
  }
  exec::set_threads(before);
}

// --- mixed precision (float storage, double accumulate) -------------------

TEST(MixedPrecision, FloatStorageIsExactForRepresentableValues) {
  // Multiples of 0.25 in a small range are exact floats: narrowing loses
  // nothing, promote-on-load restores the identical doubles, so the
  // products agree BITWISE within each SIMD config.
  sparse::Bcsr<double> a;
  a.nb = 4;
  a.nrows = 8;
  a.ptr.push_back(0);
  for (int i = 0; i < a.nrows; ++i) {
    a.col.push_back(i);
    if (i + 1 < a.nrows) a.col.push_back(i + 1);
    a.ptr.push_back(static_cast<int>(a.col.size()));
  }
  a.val.resize(a.nblocks() * 16);
  for (std::size_t k = 0; k < a.val.size(); ++k)
    a.val[k] = 0.25 * static_cast<double>((k % 64)) - 4.0;
  a.check();
  const auto af = a.convert<float>();
  std::vector<double> x(static_cast<std::size_t>(a.scalar_n()));
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.5 * static_cast<double>(i % 16) - 2.0;

  for (bool use_simd : {false, true}) {
    simd::EnabledScope scope(use_simd);
    std::vector<double> yd(x.size()), yf(x.size());
    a.spmv(x.data(), yd.data());
    af.spmv(x.data(), yf.data());
    EXPECT_EQ(std::memcmp(yd.data(), yf.data(), yd.size() * sizeof(double)),
              0)
        << "simd=" << use_simd;
  }
}

TEST(MixedPrecision, SpmvErrorWithinFloatUnitRoundoffBudget) {
  // Error budget: each stored entry carries one float rounding, so
  // |y_f - y_d|_i <= u_f * (|A| |x|)_i elementwise (plus accumulation
  // noise absorbed in a small slack). This is the bound the widened ABFT
  // guard is calibrated against.
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 5, .ny = 4, .nz = 3});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  const auto jac = wing_jacobian(disc);
  const auto jac_f = jac.convert<float>();
  const int n = jac.scalar_n();
  const auto x = pattern_vector(n, 0.75);

  // |A| |x| elementwise via an absolute-value copy.
  auto jac_abs = jac;
  for (auto& v : jac_abs.val) v = std::fabs(v);
  auto x_abs = x;
  for (auto& v : x_abs) v = std::fabs(v);
  std::vector<double> yd(static_cast<std::size_t>(n)),
      yf(static_cast<std::size_t>(n)), mass(static_cast<std::size_t>(n));
  jac.spmv(x.data(), yd.data());
  jac_f.spmv(x.data(), yf.data());
  jac_abs.spmv(x_abs.data(), mass.data());

  const double slack = 8.0;  // accumulation-length headroom
  for (int i = 0; i < n; ++i)
    EXPECT_LE(std::fabs(yf[i] - yd[i]),
              slack * FLT_EPSILON * mass[static_cast<std::size_t>(i)] +
                  1e-300)
        << "row " << i;
}

TEST(MixedPrecision, FloatGradientResidualCloseToDouble) {
  // reco_single_precision stores gradients/limiters in float; the
  // second-order residual must track the double-storage one to float
  // accuracy relative to the local flux magnitude.
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 6, .ny = 4, .nz = 4});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 2;
  cfd::EulerDiscretization disc_d(m, cfg);
  cfd::FlowConfig cfg_f = cfg;
  cfg_f.reco_single_precision = true;
  cfd::EulerDiscretization disc_f(m, cfg_f);

  // A non-trivial state (freestream has zero gradients): perturb each
  // component deterministically.
  auto q = disc_d.make_freestream_field();
  auto& qd = q.data();
  for (std::size_t i = 0; i < qd.size(); ++i)
    qd[i] += 0.05 * std::sin(0.37 * static_cast<double>(i));

  std::vector<double> rd, rf;
  disc_d.residual(q, rd);
  disc_f.residual(q, rf);
  ASSERT_EQ(rd.size(), rf.size());
  double rmax = 0;
  for (double v : rd) rmax = std::max(rmax, std::fabs(v));
  ASSERT_GT(rmax, 0.0);
  for (std::size_t i = 0; i < rd.size(); ++i)
    EXPECT_NEAR(rf[i], rd[i], 1e-4 * rmax) << "unknown " << i;
}

// The double solve's achieved stopping bound: rtol * r0 (what converged
// means); computed from the double result so both runs are held to the
// identical threshold.
double rtol_bound(const solver::PtcResult& rd) {
  return 1e-8 * rd.initial_residual * (1.0 + 1e-12);
}

TEST(MixedPrecision, MixedSolveConvergesToSameToleranceAsDouble) {
  // The end-to-end contract: with float operator storage and float ILU
  // factors, psi-NKS still converges to the same tolerance — storage
  // precision perturbs the *solver*, not the residual definition, so
  // only the iteration path may differ (within a small budget).
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 5, .ny = 4, .nz = 3});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);

  auto run = [&](bool mixed) {
    solver::PtcOptions o;
    o.cfl0 = 20.0;
    o.max_steps = 200;
    o.rtol = 1e-8;
    o.num_subdomains = 2;
    o.matrix_free = false;
    o.matrix_single_precision = mixed;
    o.schwarz.single_precision = mixed;
    auto x = prob.initial_state();
    return solver::ptc_solve(prob, x, o);
  };
  const auto rd = run(false);
  const auto rf = run(true);
  EXPECT_TRUE(rd.converged);
  EXPECT_TRUE(rf.converged) << "mixed-precision solve failed to reach the "
                               "tolerance the double solve reached";
  // Same tolerance reached; the step count may drift by a small budget.
  EXPECT_LE(rf.final_residual, rtol_bound(rd))
      << "mixed solve stopped above the double solve's achieved tolerance";
  EXPECT_LE(std::abs(rf.steps - rd.steps), 3);
}

}  // namespace
