// Tests for the cache/TLB simulator and the traced kernels: LRU
// semantics, associativity conflicts, TLB reach, and numeric equality of
// traced kernels with the production kernels. The layout-sensitivity
// checks here are miniature versions of the Figure 3 experiment.

#include <gtest/gtest.h>

#include <numeric>

#include "cfd/euler.hpp"
#include "common/rng.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "obs/obs.hpp"
#include "simcache/cache.hpp"
#include "simcache/traced_kernels.hpp"
#include "sparse/assembly.hpp"

namespace {

using namespace f3d;
using namespace f3d::simcache;

TEST(Cache, ColdMissesThenHits) {
  CacheModel c(1024, 64, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(32));  // same 64B line
  EXPECT_FALSE(c.access(64)); // next line
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, CapacityEviction) {
  // 8 lines of 64B, direct... 2-way, 4 sets. Touch 16 distinct lines then
  // re-touch the first: must have been evicted.
  CacheModel c(512, 64, 2);
  for (int i = 0; i < 16; ++i) c.access(static_cast<std::uint64_t>(i) * 64);
  c.reset_counters();
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, LruKeepsHotLine) {
  // 2-way set: addresses 0, S, 2S map to the same set (S = set stride).
  // Keep 0 hot; it must survive the insertion of 2S.
  CacheModel c(512, 64, 2);  // 4 sets -> set stride = 4*64 = 256
  c.access(0);
  c.access(256);
  c.access(0);     // refresh 0's recency
  c.access(512);   // evicts 256, not 0
  c.reset_counters();
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(256));
}

TEST(Cache, ConflictMissesDespiteCapacity) {
  // Working set of 3 lines all mapping to one 2-way set thrashes even
  // though the total capacity could hold them: the conflict-miss
  // mechanism of the paper's Eq. 1/2.
  CacheModel c(4096, 64, 2);  // 32 sets, stride 2048
  for (int rep = 0; rep < 10; ++rep)
    for (std::uint64_t a : {0ull, 2048ull, 4096ull}) c.access(a);
  // Round-robin through 3 lines in a 2-way LRU set misses every time.
  EXPECT_EQ(c.hits(), 0u);
}

TEST(Cache, FullyAssociativeTlbReach) {
  // 4-entry, 4 KiB pages: 4 pages fit, the 5th evicts.
  CacheModel tlb(4 * 4096, 4096, 4);
  for (int p = 0; p < 4; ++p) tlb.access(static_cast<std::uint64_t>(p) * 4096);
  tlb.reset_counters();
  for (int p = 0; p < 4; ++p) tlb.access(static_cast<std::uint64_t>(p) * 4096);
  EXPECT_EQ(tlb.misses(), 0u);
  tlb.access(5ull * 4096);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(CacheModel(1000, 64, 2), Error);  // not line multiple
  EXPECT_THROW(CacheModel(0, 64, 2), Error);
  EXPECT_THROW(CacheModel(3 * 64, 64, 2), Error);  // lines % ways != 0
}

TEST(Tracer, TouchWalksLines) {
  MemoryTracer::Config cfg;
  cfg.l1_capacity = 1024;
  cfg.l1_line = 32;
  cfg.l1_assoc = 2;
  cfg.l2_capacity = 4096;
  cfg.l2_line = 64;
  cfg.l2_assoc = 2;
  cfg.tlb_entries = 4;
  cfg.page_size = 4096;
  MemoryTracer t(cfg);
  alignas(64) static double buf[64];
  t.touch(buf, 32 * 8);  // 256 bytes = 8 L1 lines
  EXPECT_EQ(t.l1().accesses(), 8u);
  EXPECT_EQ(t.l1().misses(), 8u);
  t.touch(buf, 32 * 8);
  EXPECT_EQ(t.l1().hits(), 8u);
}

TEST(Tracer, PublishCountersFillsGlobalRegistry) {
  MemoryTracer t;
  alignas(64) static double buf[512];
  t.touch(buf, sizeof buf);
  t.touch(buf, sizeof buf);

  auto& reg = obs::Registry::global();
  const long long before_acc = reg.counter("simcache.test.accesses");
  const long long before_l1 = reg.counter("simcache.test.l1.misses");
  t.publish_counters("simcache.test");
  EXPECT_EQ(reg.counter("simcache.test.accesses") - before_acc,
            static_cast<long long>(t.l1().accesses()));
  EXPECT_EQ(reg.counter("simcache.test.l1.misses") - before_l1,
            static_cast<long long>(t.l1().misses()));
  const double rate = reg.gauge("simcache.test.l1.miss_rate");
  EXPECT_GT(rate, 0.0);
  EXPECT_LE(rate, 1.0);
}

// --- traced kernels ------------------------------------------------------

TEST(TracedKernels, CsrSpmvMatchesProduction) {
  auto m = mesh::generate_box_mesh(4, 4, 4);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  auto a = sparse::build_point_csr(s, 4, fn, sparse::FieldLayout::kInterlaced);
  Rng rng(1);
  std::vector<double> x(a.n), y1(a.n), y2(a.n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  a.spmv(x.data(), y1.data());
  NullTracer nt;
  traced_spmv_csr(a, x.data(), y2.data(), nt);
  for (int i = 0; i < a.n; ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(TracedKernels, BcsrSpmvMatchesProduction) {
  auto m = mesh::generate_box_mesh(4, 4, 4);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  auto a = sparse::build_bcsr(s, 4, fn);
  Rng rng(2);
  std::vector<double> x(a.scalar_n()), y1(a.scalar_n()), y2(a.scalar_n());
  for (auto& v : x) v = rng.uniform(-1, 1);
  a.spmv(x.data(), y1.data());
  NullTracer nt;
  traced_spmv_bcsr(a, x.data(), y2.data(), nt);
  for (int i = 0; i < a.scalar_n(); ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(TracedKernels, FluxMatchesProductionFirstOrder) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 6, .ny = 4, .nz = 4});
  cfd::FlowConfig cfg;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  auto q = disc.make_freestream_field();
  Rng rng(3);
  for (int v = 0; v < q.num_vertices(); ++v)
    for (int c = 0; c < q.nb(); ++c)
      q.set(v, c, q.get(v, c) + 0.05 * rng.uniform(-1, 1));
  // Production residual includes boundary fluxes; traced_flux covers the
  // edge loop only, so compare against an edge-only reference computed by
  // subtracting the boundary part. Easier: compare traced_flux against a
  // freshly computed edge-only accumulation using the public flux API.
  std::vector<double> r_traced;
  NullTracer nt;
  traced_flux(m, disc.dual(), cfg, q, r_traced, nt);

  std::vector<double> r_ref(r_traced.size(), 0.0);
  const auto& edges = m.edges();
  double ql[cfd::kMaxComponents], qr[cfd::kMaxComponents],
      f[cfd::kMaxComponents];
  for (int e = 0; e < m.num_edges(); ++e) {
    const int i = edges[e][0], j = edges[e][1];
    const double n[3] = {disc.dual().edge_normal[e][0],
                         disc.dual().edge_normal[e][1],
                         disc.dual().edge_normal[e][2]};
    for (int c = 0; c < cfg.nb(); ++c) {
      ql[c] = q.get(i, c);
      qr[c] = q.get(j, c);
    }
    cfd::rusanov_flux(cfg, ql, qr, n, f);
    for (int c = 0; c < cfg.nb(); ++c) {
      r_ref[q.base(i) + c * q.stride()] += f[c];
      r_ref[q.base(j) + c * q.stride()] -= f[c];
    }
  }
  for (std::size_t k = 0; k < r_ref.size(); ++k)
    EXPECT_NEAR(r_traced[k], r_ref[k], 1e-14);
}

TEST(TracedKernels, ReorderedMeshHasFewerTlbMisses) {
  // Miniature Figure 3: a shuffled mesh's flux loop must incur far more
  // TLB misses than the RCM+sorted-edge mesh.
  auto shuffled = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 14, .ny = 8, .nz = 8});
  mesh::shuffle_mesh(shuffled, 7);
  auto ordered = shuffled;
  mesh::apply_best_ordering(ordered);

  cfd::FlowConfig cfg;
  cfg.order = 1;
  MemoryTracer::Config tc;
  tc.tlb_entries = 16;  // small TLB so the small mesh exceeds its reach
  tc.page_size = 4096;
  auto misses_for = [&](const mesh::UnstructuredMesh& mesh) {
    cfd::EulerDiscretization disc(mesh, cfg);
    auto q = disc.make_freestream_field();
    std::vector<double> r;
    MemoryTracer t(tc);
    traced_flux(mesh, disc.dual(), cfg, q, r, t);
    return t.tlb().misses();
  };
  const auto m_shuffled = misses_for(shuffled);
  const auto m_ordered = misses_for(ordered);
  EXPECT_LT(m_ordered * 3, m_shuffled)
      << "ordered " << m_ordered << " vs shuffled " << m_shuffled;
}

TEST(TracedKernels, InterlacingReducesL2MissesForSpmv) {
  // Interlaced point CSR (bandwidth ~ nb*beta) vs non-interlaced
  // (bandwidth ~ N): with a cache smaller than the non-interlaced working
  // set, the non-interlaced layout must miss more on the x gathers.
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 14, .ny = 8, .nz = 8});
  mesh::apply_best_ordering(m);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  const int nb = 4;
  auto ai = sparse::build_point_csr(s, nb, fn, sparse::FieldLayout::kInterlaced);
  auto an = sparse::build_point_csr(s, nb, fn, sparse::FieldLayout::kNonInterlaced);

  MemoryTracer::Config tc;
  tc.l2_capacity = 64 * 1024;  // scaled-down L2 for a scaled-down problem
  tc.l2_line = 128;
  tc.l2_assoc = 2;
  auto l2_misses = [&](const sparse::Csr<double>& a) {
    std::vector<double> x(a.n, 1.0), y(a.n);
    MemoryTracer t(tc);
    traced_spmv_csr(a, x.data(), y.data(), t);
    return t.l2().misses();
  };
  EXPECT_LT(l2_misses(ai), l2_misses(an));
}

}  // namespace
