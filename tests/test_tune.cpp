// f3d::tune — registry bind/round-trip and strict-load semantics, the
// three search strategies (seeded reproducibility, gate enforcement,
// degenerate spaces), the tuning DB's safe-fallback contract, and one
// real-solve SolveLab pass (bit-identity gate + broken-config rejection).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "solver/newton.hpp"
#include "tune/bindings.hpp"
#include "tune/db.hpp"
#include "tune/lab.hpp"
#include "tune/registry.hpp"
#include "tune/search.hpp"

namespace {

using namespace f3d;

// A small struct standing in for the solver option structs.
struct ToyOptions {
  int restart = 20;
  double rtol = 1e-3;
  bool fused = false;
  enum class Color { kRed, kGreen, kBlue };
  Color color = Color::kGreen;

  void bind(tune::Registry& reg) {
    reg.add_int("toy.restart", &restart, 4, 200, "restart length");
    reg.add_double("toy.rtol", &rtol, 1e-6, 0.5, "linear tolerance");
    reg.add_bool("toy.fused", &fused, "fused kernel toggle");
    reg.add_enum("toy.color", &color, {"red", "green", "blue"}, "a choice");
  }
};

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

// ---------------------------------------------------------------- registry

TEST(TuneRegistry, BindRegistersTypedKnobs) {
  ToyOptions toy;
  tune::Registry reg;
  toy.bind(reg);
  ASSERT_EQ(reg.size(), 4);
  EXPECT_EQ(reg.at("toy.restart").kind, tune::KnobKind::kInt);
  EXPECT_EQ(reg.at("toy.rtol").kind, tune::KnobKind::kDouble);
  EXPECT_TRUE(reg.at("toy.rtol").log_scale);  // 0.5 / 1e-6 spans decades
  EXPECT_EQ(reg.at("toy.fused").kind, tune::KnobKind::kBool);
  EXPECT_EQ(reg.at("toy.color").kind, tune::KnobKind::kEnum);
  EXPECT_EQ(reg.find("toy.nope"), nullptr);
  EXPECT_THROW((void)reg.at("toy.nope"), Error);
}

TEST(TuneRegistry, SettersWriteThroughToStruct) {
  ToyOptions toy;
  tune::Registry reg;
  toy.bind(reg);
  reg.set_number("toy.restart", 60);
  reg.set_number("toy.fused", 1);
  reg.set_number("toy.color", 2);
  EXPECT_EQ(toy.restart, 60);
  EXPECT_TRUE(toy.fused);
  EXPECT_EQ(toy.color, ToyOptions::Color::kBlue);
}

TEST(TuneRegistry, SetNumberClampsIntoRange) {
  ToyOptions toy;
  tune::Registry reg;
  toy.bind(reg);
  reg.set_number("toy.restart", 100000);
  EXPECT_EQ(toy.restart, 200);
  reg.set_number("toy.restart", -3);
  EXPECT_EQ(toy.restart, 4);
  reg.set_number("toy.color", 99);
  EXPECT_EQ(toy.color, ToyOptions::Color::kBlue);  // clamped to last choice
}

TEST(TuneRegistry, JsonRoundTripIsExact) {
  ToyOptions toy;
  tune::Registry reg;
  toy.bind(reg);
  reg.set_number("toy.rtol", 3.333333333333333e-4);
  reg.set_number("toy.color", 0);
  obs::Json dump = reg.to_json();

  ToyOptions toy2;
  tune::Registry reg2;
  toy2.bind(reg2);
  reg2.from_json(obs::parse_json(dump.dump()));
  EXPECT_EQ(toy2.restart, toy.restart);
  EXPECT_EQ(toy2.rtol, toy.rtol);  // %.17g round-trip: bit-exact
  EXPECT_EQ(toy2.fused, toy.fused);
  EXPECT_EQ(toy2.color, toy.color);
  EXPECT_EQ(reg2.to_json().dump(), dump.dump());
}

TEST(TuneRegistry, FromJsonRejectsOutOfRangeAndLeavesStateUntouched) {
  ToyOptions toy;
  tune::Registry reg;
  toy.bind(reg);
  obs::Json bad = obs::Json::object();
  bad.set("toy.restart", 50).set("toy.rtol", 0.9);  // rtol above max
  EXPECT_THROW(reg.from_json(bad), Error);
  EXPECT_EQ(toy.restart, 20);  // nothing applied, not even the valid member
  EXPECT_EQ(toy.rtol, 1e-3);
}

TEST(TuneRegistry, FromJsonRejectsUnknownKnobAndTypeMismatch) {
  ToyOptions toy;
  tune::Registry reg;
  toy.bind(reg);
  obs::Json unknown = obs::Json::object();
  unknown.set("toy.imaginary", 1);
  EXPECT_THROW(reg.from_json(unknown), Error);

  obs::Json mismatch = obs::Json::object();
  mismatch.set("toy.restart", 12.5);  // int knob, double value
  EXPECT_THROW(reg.from_json(mismatch), Error);

  obs::Json bad_choice = obs::Json::object();
  bad_choice.set("toy.color", "magenta");
  EXPECT_THROW(reg.from_json(bad_choice), Error);

  EXPECT_EQ(toy.restart, 20);
  EXPECT_EQ(toy.color, ToyOptions::Color::kGreen);
}

TEST(TuneRegistry, SubsetLoadAndResetDefaults) {
  ToyOptions toy;
  tune::Registry reg;
  toy.bind(reg);
  obs::Json subset = obs::Json::object();
  subset.set("toy.fused", true);
  reg.from_json(subset);
  EXPECT_TRUE(toy.fused);
  EXPECT_EQ(toy.restart, 20);  // untouched members keep their values
  reg.reset_defaults();
  EXPECT_FALSE(toy.fused);
  EXPECT_EQ(toy.restart, 20);
}

TEST(TuneRegistry, DuplicateNameRejected) {
  ToyOptions toy;
  tune::Registry reg;
  toy.bind(reg);
  int extra = 0;
  EXPECT_THROW(reg.add_int("toy.restart", &extra, 0, 1, "dup"), Error);
}

TEST(TuneRegistry, SolverStructsBindTheDocumentedSpace) {
  solver::PtcOptions ptc;
  tune::Registry reg;
  ptc.bind(reg);
  tune::bind_exec_threads(reg);
  tune::bind_simd(reg);
  // The ptc/gmres/schwarz + process-global space: 10 + 4 + 6 + 2 knobs.
  EXPECT_EQ(reg.size(), 22);
  // Knob writes land in the nested structs.
  reg.set_number("gmres.restart", 44);
  reg.set_number("schwarz.overlap", 1);
  reg.set_number("ptc.checkpoint_every", 7);
  EXPECT_EQ(ptc.gmres.restart, 44);
  EXPECT_EQ(ptc.schwarz.overlap, 1);
  EXPECT_EQ(ptc.recovery.checkpoint_every, 7);
  // Every knob's catalog record names itself and documents itself.
  for (const auto& k : reg.knobs()) {
    EXPECT_FALSE(k.name.empty());
    EXPECT_FALSE(k.doc.empty());
  }
}

// ------------------------------------------------------------------ search

// Deterministic synthetic evaluator: quadratic bowl over two knobs with
// the optimum away from the defaults. Counts calls.
struct BowlLab {
  double x = 0.0;  // default far from optimum (3.0)
  double y = 0.0;  // optimum at -1.0
  int calls = 0;
  tune::Registry reg;

  BowlLab() {
    reg.add_double("bowl.x", &x, -5.0, 5.0, "x");
    reg.add_double("bowl.y", &y, -5.0, 5.0, "y");
  }

  tune::Evaluator evaluator() {
    return [this](tune::Registry&, int) {
      ++calls;
      tune::TrialOutcome t;
      t.ok = true;
      t.score = (x - 3.0) * (x - 3.0) + (y + 1.0) * (y + 1.0);
      return t;
    };
  }
};

TEST(TuneSearch, RandomSearchImprovesOnBowl) {
  BowlLab lab;
  tune::SearchOptions opts;
  opts.strategy = tune::Strategy::kRandom;
  opts.trials = 32;
  opts.seed = 7;
  auto res = tune::search(lab.reg, {"bowl.x", "bowl.y"}, lab.evaluator(), opts);
  EXPECT_TRUE(res.baseline_ok);
  EXPECT_TRUE(res.improved);
  EXPECT_LT(res.best_score, res.baseline_score);
  // Registry holds the winner on return.
  EXPECT_NEAR(lab.reg.get_number("bowl.x"),
              res.best_config.find("bowl.x")->d, 0);
}

TEST(TuneSearch, HillClimbDescendsTheBowl) {
  BowlLab lab;
  tune::SearchOptions opts;
  opts.strategy = tune::Strategy::kHillClimb;
  opts.trials = 40;
  opts.seed = 3;
  auto res = tune::search(lab.reg, {"bowl.x", "bowl.y"}, lab.evaluator(), opts);
  EXPECT_TRUE(res.improved);
  // Hill climb should get closer to (3, -1) than the (0, 0) start.
  EXPECT_LT(res.best_score, 10.0 * 0.5);
}

TEST(TuneSearch, SeededSearchIsReproducible) {
  for (auto strategy : {tune::Strategy::kRandom, tune::Strategy::kHillClimb,
                        tune::Strategy::kHalving}) {
    tune::SearchOptions opts;
    opts.strategy = strategy;
    opts.trials = 12;
    opts.halving_width = 6;
    opts.seed = 42;
    BowlLab a, b;
    auto ra = tune::search(a.reg, {"bowl.x", "bowl.y"}, a.evaluator(), opts);
    auto rb = tune::search(b.reg, {"bowl.x", "bowl.y"}, b.evaluator(), opts);
    EXPECT_EQ(ra.best_config.dump(), rb.best_config.dump())
        << tune::strategy_name(strategy);
    EXPECT_EQ(ra.best_score, rb.best_score);
    EXPECT_EQ(ra.evaluations, rb.evaluations);
    ASSERT_EQ(ra.history.size(), rb.history.size());
    for (std::size_t i = 0; i < ra.history.size(); ++i)
      EXPECT_EQ(ra.history[i].config.dump(), rb.history[i].config.dump());
  }
}

TEST(TuneSearch, GateFailingConfigsNeverWin) {
  // Evaluator rejects everything except the baseline; score would
  // otherwise improve monotonically with x.
  double x = 0.0;
  int calls = 0;
  tune::Registry reg;
  reg.add_double("k.x", &x, 0.0, 10.0, "x");
  auto evaluate = [&](tune::Registry&, int) {
    ++calls;
    tune::TrialOutcome t;
    t.ok = calls == 1;  // only the baseline passes the gates
    t.score = 100.0 - x;
    t.note = t.ok ? "" : "gate: synthetic failure";
    return t;
  };
  for (auto strategy : {tune::Strategy::kRandom, tune::Strategy::kHillClimb,
                        tune::Strategy::kHalving}) {
    x = 0.0;
    calls = 0;
    tune::SearchOptions opts;
    opts.strategy = strategy;
    opts.trials = 8;
    opts.halving_width = 4;
    auto res = tune::search(reg, {"k.x"}, evaluate, opts);
    EXPECT_FALSE(res.improved) << tune::strategy_name(strategy);
    EXPECT_GT(res.rejected, 0) << tune::strategy_name(strategy);
    // Baseline restored: the rejected high-x proposals must not stick.
    EXPECT_EQ(x, 0.0) << tune::strategy_name(strategy);
  }
}

TEST(TuneSearch, EmptyKnobSpaceIsDegenerateBaselineOnly) {
  BowlLab lab;
  tune::SearchOptions opts;
  opts.strategy = tune::Strategy::kHalving;
  auto res = tune::search(lab.reg, {}, lab.evaluator(), opts);
  EXPECT_FALSE(res.improved);
  EXPECT_EQ(res.evaluations, 1);  // just the baseline
  EXPECT_TRUE(res.baseline_ok);
  EXPECT_FALSE(res.note.empty());
  EXPECT_EQ(lab.reg.get_number("bowl.x"), 0.0);
}

TEST(TuneSearch, SingleCandidateHalvingBracketTerminates) {
  BowlLab lab;
  tune::SearchOptions opts;
  opts.strategy = tune::Strategy::kHalving;
  opts.halving_width = 1;  // bracket is just the baseline slot
  opts.halving_rungs = 1;
  auto res = tune::search(lab.reg, {"bowl.x"}, lab.evaluator(), opts);
  EXPECT_FALSE(res.improved);
  EXPECT_GE(res.evaluations, 1);
}

TEST(TuneSearch, DegenerateHalvingParametersAreGuarded) {
  BowlLab lab;
  tune::SearchOptions opts;
  opts.strategy = tune::Strategy::kHalving;
  opts.halving_width = 0;   // clamped to 1
  opts.halving_rungs = 0;   // clamped to 1
  opts.halving_eta = 0.0;   // clamped to 2.0
  auto res = tune::search(lab.reg, {"bowl.x"}, lab.evaluator(), opts);
  EXPECT_GE(res.evaluations, 1);  // terminated, no division by zero
}

TEST(TuneSearch, UnknownKnobNameThrows) {
  BowlLab lab;
  tune::SearchOptions opts;
  EXPECT_THROW(
      (void)tune::search(lab.reg, {"bowl.zzz"}, lab.evaluator(), opts), Error);
}

TEST(TuneSearch, HalvingBeatsBaselineOnBowl) {
  BowlLab lab;
  tune::SearchOptions opts;
  opts.strategy = tune::Strategy::kHalving;
  opts.halving_width = 16;
  opts.halving_rungs = 3;
  opts.seed = 11;
  auto res = tune::search(lab.reg, {"bowl.x", "bowl.y"}, lab.evaluator(), opts);
  EXPECT_TRUE(res.improved);
  EXPECT_LT(res.best_score, res.baseline_score);
}

// -------------------------------------------------------------------- db

TEST(TuneDb, MeshClassBuckets) {
  EXPECT_EQ(tune::mesh_class_of(2500), "wing-small");
  EXPECT_EQ(tune::mesh_class_of(8000), "wing-medium");
  EXPECT_EQ(tune::mesh_class_of(50000), "wing-large");
  EXPECT_EQ(tune::mesh_class_of(500000), "wing-xl");
}

TEST(TuneDb, SaveLoadLookupRoundTrip) {
  const std::string path = temp_path("tunedb_roundtrip.json");
  tune::Db db;
  tune::DbEntry e;
  e.key = {"wing-small", "avx2", "double"};
  e.config = obs::Json::object();
  e.config.set("gmres.restart", 44).set("gmres.rtol", 1.2345678901234567e-3);
  e.score = 0.125;
  e.baseline_score = 0.25;
  e.strategy = "halving";
  e.evaluations = 17;
  db.put(e);
  ASSERT_TRUE(db.save(path));

  tune::Db loaded = tune::Db::load(path);
  EXPECT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.size(), 1);
  const auto* hit = loaded.lookup(e.key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->config.dump(), e.config.dump());  // bit-exact round-trip
  EXPECT_EQ(hit->score, 0.125);
  EXPECT_EQ(hit->strategy, "halving");
  EXPECT_EQ(loaded.lookup({"wing-xl", "avx2", "double"}), nullptr);
}

TEST(TuneDb, PutReplacesSameKey) {
  tune::Db db;
  tune::DbEntry e;
  e.key = {"wing-small", "avx2", "double"};
  e.score = 1.0;
  db.put(e);
  e.score = 0.5;
  db.put(e);
  EXPECT_EQ(db.size(), 1);
  EXPECT_EQ(db.lookup(e.key)->score, 0.5);
}

TEST(TuneDb, MissingFileFallsBackToEmpty) {
  tune::Db db = tune::Db::load(temp_path("no_such_tunedb.json"));
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.size(), 0);
  EXPECT_FALSE(db.note().empty());
}

TEST(TuneDb, CorruptAndWrongSchemaFilesFallBackToEmpty) {
  const std::string garbage = temp_path("tunedb_garbage.json");
  { std::ofstream(garbage) << "{ not json at all"; }
  tune::Db db1 = tune::Db::load(garbage);
  EXPECT_FALSE(db1.ok());
  EXPECT_EQ(db1.size(), 0);

  const std::string wrong = temp_path("tunedb_wrong_schema.json");
  { std::ofstream(wrong) << "{\"schema\": \"f3d-bench-v1\", \"entries\": []}\n"; }
  tune::Db db2 = tune::Db::load(wrong);
  EXPECT_FALSE(db2.ok());

  const std::string broken_entry = temp_path("tunedb_broken_entry.json");
  {
    std::ofstream(broken_entry)
        << "{\"schema\": \"f3d-tunedb-v1\", \"entries\": [ {\"score\": 1} ]}\n";
  }
  tune::Db db3 = tune::Db::load(broken_entry);
  EXPECT_FALSE(db3.ok());
  EXPECT_EQ(db3.size(), 0);
}

TEST(TuneDb, ApplyHitAppliesAndMissLeavesDefaults) {
  ToyOptions toy;
  tune::Registry reg;
  toy.bind(reg);

  tune::Db db;
  tune::DbEntry e;
  e.key = {"wing-small", "avx2", "double"};
  e.config = obs::Json::object();
  e.config.set("toy.restart", 64);
  db.put(e);

  std::string note;
  EXPECT_FALSE(tune::apply(reg, db, {"wing-xl", "avx2", "double"}, &note));
  EXPECT_EQ(toy.restart, 20);
  EXPECT_FALSE(note.empty());

  EXPECT_TRUE(tune::apply(reg, db, e.key, &note));
  EXPECT_EQ(toy.restart, 64);
}

TEST(TuneDb, ApplyRejectsInvalidStoredConfig) {
  ToyOptions toy;
  tune::Registry reg;
  toy.bind(reg);

  tune::Db db;
  tune::DbEntry e;
  e.key = {"wing-small", "avx2", "double"};
  e.config = obs::Json::object();
  e.config.set("toy.restart", 64).set("toy.rtol", 123.0);  // out of range
  db.put(e);

  std::string note;
  EXPECT_FALSE(tune::apply(reg, db, e.key, &note));
  EXPECT_EQ(toy.restart, 20);  // nothing applied
  EXPECT_NE(note.find("toy.rtol"), std::string::npos);
}

// ------------------------------------------------------------- solve lab

TEST(TuneLab, DefaultConfigPassesAllGates) {
  tune::SolveLab lab(1500);
  auto outcome = lab.evaluate(/*fidelity=*/0);
  EXPECT_TRUE(outcome.ok) << outcome.note;
  EXPECT_GT(outcome.work_units, 0);
  EXPECT_GT(outcome.score, 0.0);
}

TEST(TuneLab, BrokenConfigIsRejectedByTheGates) {
  tune::SolveLab lab(1500);
  // A hopeless continuation: CFL pinned at 0.5 with no SER growth cannot
  // reach the tolerance inside the fidelity-0 step cap.
  lab.registry().set_number("ptc.cfl0", 0.5);
  lab.registry().set_number("ptc.ser_exponent", 0.0);
  lab.registry().set_number("ptc.cfl_max", 100.0);
  auto outcome = lab.evaluate(/*fidelity=*/0);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.note.find("gate"), std::string::npos);
}

TEST(TuneLab, DbKeyAndSearchSpaceAreRegistered) {
  tune::SolveLab lab(1500);
  auto key = lab.db_key();
  EXPECT_EQ(key.mesh_class, "wing-small");
  EXPECT_EQ(key.precision, "double");
  EXPECT_FALSE(key.host_isa.empty());
  for (const auto& name : tune::SolveLab::default_search_space())
    EXPECT_NE(lab.registry().find(name), nullptr) << name;
}

TEST(TuneLab, PersistedEntryReproducesTunedConfigBitIdentically) {
  tune::SolveLab lab(1500);
  tune::Registry& reg = lab.registry();
  // A hand-"tuned" config (no search needed for the persistence contract).
  reg.set_number("gmres.restart", 28);
  reg.set_number("gmres.rtol", 2.4999999999999998e-3);
  reg.set_number("schwarz.fill_level", 2);
  const std::string tuned_dump = reg.to_json().dump();

  const std::string path = temp_path("tunedb_reproduce.json");
  tune::Db db;
  tune::DbEntry e;
  e.key = lab.db_key();
  e.config = reg.to_json();
  db.put(e);
  ASSERT_TRUE(db.save(path));

  // A second lab (fresh process stand-in) consults the persisted DB.
  tune::SolveLab lab2(1500);
  tune::Db loaded = tune::Db::load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(tune::apply(lab2.registry(), loaded, lab2.db_key()));
  EXPECT_EQ(lab2.registry().to_json().dump(), tuned_dump);
}

}  // namespace
