// Tests for the sparse substrate: vector kernels, CSR/BCSR formats, layout
// equivalence (the operators behind the paper's Table 1 must be identical
// across layouts), and ILU(k) factorization.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "mesh/generator.hpp"
#include "sparse/assembly.hpp"
#include "sparse/csr.hpp"
#include "sparse/ilu.hpp"
#include "sparse/layout.hpp"
#include "sparse/vec.hpp"

namespace {

using namespace f3d;
using namespace f3d::sparse;

// --- vector kernels ----------------------------------------------------

TEST(Vec, DotAndNorm) {
  Vec x = {3, 4};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
}

TEST(Vec, AxpyFamilies) {
  Vec x = {1, 2, 3}, y = {10, 20, 30};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (Vec{12, 24, 36}));
  aypx(0.5, x, y);  // y = x + 0.5 y
  EXPECT_EQ(y, (Vec{7, 14, 21}));
  Vec w;
  waxpy(w, -1.0, x, y);  // w = -x + y
  EXPECT_EQ(w, (Vec{6, 12, 18}));
  scale(w, 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  set_all(w, 0.0);
  EXPECT_DOUBLE_EQ(norm2(w), 0.0);
}

TEST(Vec, SizeMismatchThrows) {
  Vec x = {1, 2}, y = {1};
  EXPECT_THROW(dot(x, y), Error);
  EXPECT_THROW(axpy(1.0, x, y), Error);
}

// --- fixtures ----------------------------------------------------------

Stencil small_stencil() {
  auto m = mesh::generate_box_mesh(3, 3, 3);
  return stencil_from_mesh(m);
}

// --- stencil -----------------------------------------------------------

TEST(Stencil, ContainsSelfAndIsSorted) {
  auto s = small_stencil();
  for (int i = 0; i < s.n; ++i) {
    bool self = false;
    for (int p = s.ptr[i]; p < s.ptr[i + 1]; ++p) {
      if (s.col[p] == i) self = true;
      if (p > s.ptr[i]) {
        EXPECT_LT(s.col[p - 1], s.col[p]);
      }
    }
    EXPECT_TRUE(self) << "row " << i;
  }
}

TEST(Stencil, SymmetricPattern) {
  auto s = small_stencil();
  auto has = [&](int i, int j) {
    for (int p = s.ptr[i]; p < s.ptr[i + 1]; ++p)
      if (s.col[p] == j) return true;
    return false;
  };
  for (int i = 0; i < s.n; ++i)
    for (int p = s.ptr[i]; p < s.ptr[i + 1]; ++p)
      EXPECT_TRUE(has(s.col[p], i));
}

// --- formats and layout equivalence -----------------------------------

TEST(Formats, BcsrEqualsInterlacedPointCsr) {
  auto s = small_stencil();
  const int nb = 4;
  auto fn = synthetic_values(s);
  auto bm = build_bcsr(s, nb, fn);
  auto pm = build_point_csr(s, nb, fn, FieldLayout::kInterlaced);

  Rng rng(1);
  Vec x(static_cast<std::size_t>(s.n) * nb);
  for (auto& v : x) v = rng.uniform(-1, 1);
  Vec y1, y2;
  bm.spmv(x, y1);
  pm.spmv(x, y2);
  ASSERT_EQ(y1.size(), y2.size());
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

TEST(Formats, NonInterlacedIsPermutedInterlaced) {
  auto s = small_stencil();
  const int nb = 5;
  auto fn = synthetic_values(s);
  auto mi = build_point_csr(s, nb, fn, FieldLayout::kInterlaced);
  auto mn = build_point_csr(s, nb, fn, FieldLayout::kNonInterlaced);

  Rng rng(2);
  Vec xi(static_cast<std::size_t>(s.n) * nb);
  for (auto& v : xi) v = rng.uniform(-1, 1);
  auto xn = convert_layout(xi, FieldLayout::kInterlaced,
                           FieldLayout::kNonInterlaced, s.n, nb);

  Vec yi, yn;
  mi.spmv(xi, yi);
  mn.spmv(xn, yn);
  auto yn_as_i = convert_layout(yn, FieldLayout::kNonInterlaced,
                                FieldLayout::kInterlaced, s.n, nb);
  for (std::size_t i = 0; i < yi.size(); ++i)
    EXPECT_NEAR(yi[i], yn_as_i[i], 1e-13);
}

TEST(Formats, NonInterlacedHasHugeBandwidth) {
  auto s = small_stencil();
  const int nb = 4;
  auto fn = synthetic_values(s);
  auto mi = build_point_csr(s, nb, fn, FieldLayout::kInterlaced);
  auto mn = build_point_csr(s, nb, fn, FieldLayout::kNonInterlaced);
  auto bandwidth = [](const Csr<double>& m) {
    int bw = 0;
    for (int i = 0; i < m.n; ++i)
      for (int p = m.ptr[i]; p < m.ptr[i + 1]; ++p)
        bw = std::max(bw, std::abs(m.col[p] - i));
    return bw;
  };
  // The non-interlaced bandwidth is ~(nb-1)*N (paper Eq. 1 regime); the
  // interlaced one is ~nb*beta (Eq. 2 regime).
  EXPECT_GT(bandwidth(mn), (nb - 1) * s.n / 2);
  EXPECT_LT(bandwidth(mi), bandwidth(mn) / 2);
}

TEST(Formats, ConvertLayoutRoundTrips) {
  Rng rng(3);
  const int n = 10, nb = 4;
  Vec x(static_cast<std::size_t>(n) * nb);
  for (auto& v : x) v = rng.uniform(-1, 1);
  auto y = convert_layout(x, FieldLayout::kInterlaced,
                          FieldLayout::kNonInterlaced, n, nb);
  auto z = convert_layout(y, FieldLayout::kNonInterlaced,
                          FieldLayout::kInterlaced, n, nb);
  EXPECT_EQ(x, z);
}

TEST(Formats, ConvertLayoutInvolutionPropertySweep) {
  // Property: there-and-back is the identity for every (n, nb) shape —
  // odd and even vertex counts, single-component fields, both starting
  // layouts. Exact equality: conversion only permutes, never rounds.
  Rng rng(7);
  for (int n : {1, 2, 3, 7, 8, 16, 17}) {
    for (int nb : {1, 2, 4, 5}) {
      Vec x(static_cast<std::size_t>(n) * nb);
      for (auto& v : x) v = rng.uniform(-10, 10);
      for (auto from : {FieldLayout::kInterlaced, FieldLayout::kNonInterlaced}) {
        const auto to = from == FieldLayout::kInterlaced
                            ? FieldLayout::kNonInterlaced
                            : FieldLayout::kInterlaced;
        auto y = convert_layout(x, from, to, n, nb);
        auto z = convert_layout(y, to, from, n, nb);
        EXPECT_EQ(x, z) << "n=" << n << " nb=" << nb;
        // nb == 1 (and n == 1): the two layouts coincide, so a single
        // conversion is already the identity.
        if (nb == 1 || n == 1)
          EXPECT_EQ(x, y) << "n=" << n << " nb=" << nb;
      }
    }
  }
}

TEST(Formats, SoaViewAliasesSameBytes) {
  // The SIMD fast paths address fields through SoaView; the view must
  // alias the caller's storage (no copy) with the field_index map.
  const int n = 6, nb = 4;
  std::vector<double> x(static_cast<std::size_t>(n) * nb);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.5 * static_cast<double>(i);
  for (auto layout : {FieldLayout::kInterlaced, FieldLayout::kNonInterlaced}) {
    auto view = soa_view(x, layout, n, nb);
    for (int v = 0; v < n; ++v)
      for (int c = 0; c < nb; ++c)
        EXPECT_EQ(view.at(v, c), &x[field_index(layout, n, nb, v, c)]);
    // Strides are consistent with the address map.
    EXPECT_EQ(view.at(1, 0) - view.at(0, 0), view.vertex_stride());
    EXPECT_EQ(view.at(0, 1) - view.at(0, 0), view.component_stride());
    // Writes through the view land in the vector's bytes.
    *view.at(2, 3) = -99.0;
    EXPECT_EQ(x[field_index(layout, n, nb, 2, 3)], -99.0);
  }
  // Interlaced blocks are the contiguous nb-runs Vd::loadu consumes.
  auto vi = soa_view(x, FieldLayout::kInterlaced, n, nb);
  for (int v = 0; v < n; ++v) EXPECT_EQ(vi.block(v), &x[v * nb]);
}

TEST(Formats, FloatConversionPreservesValuesApprox) {
  auto s = small_stencil();
  auto fn = synthetic_values(s);
  auto m = build_bcsr(s, 4, fn);
  auto mf = m.convert<float>();
  Rng rng(4);
  Vec x(static_cast<std::size_t>(m.scalar_n()));
  for (auto& v : x) v = rng.uniform(-1, 1);
  Vec yd, yf;
  m.spmv(x, yd);
  mf.spmv(x, yf);
  for (std::size_t i = 0; i < yd.size(); ++i)
    EXPECT_NEAR(yd[i], yf[i], 1e-5 * (1.0 + std::abs(yd[i])));
}

TEST(Formats, FindLocatesEntries) {
  auto s = small_stencil();
  auto fn = synthetic_values(s);
  auto pm = build_point_csr(s, 2, fn, FieldLayout::kInterlaced);
  ASSERT_NE(pm.find(0, 0), nullptr);
  auto bm = build_bcsr(s, 2, fn);
  ASSERT_NE(bm.find_block(0, 0), nullptr);
  EXPECT_EQ(bm.find_block(0, s.n - 1), nullptr);  // corner not adjacent
}

// --- ILU ---------------------------------------------------------------

TEST(Ilu, SymbolicLevel0EqualsInput) {
  auto s = small_stencil();
  auto pat = ilu_symbolic(s.n, s.ptr, s.col, 0);
  EXPECT_EQ(pat.ptr, s.ptr);
  EXPECT_EQ(pat.col, s.col);
  for (int i = 0; i < s.n; ++i) EXPECT_EQ(pat.col[pat.diag[i]], i);
}

TEST(Ilu, FillGrowsWithLevel) {
  auto s = small_stencil();
  auto p0 = ilu_symbolic(s.n, s.ptr, s.col, 0);
  auto p1 = ilu_symbolic(s.n, s.ptr, s.col, 1);
  auto p2 = ilu_symbolic(s.n, s.ptr, s.col, 2);
  EXPECT_LT(p0.nnz(), p1.nnz());
  EXPECT_LT(p1.nnz(), p2.nnz());
}

TEST(Ilu, PatternsNest) {
  auto s = small_stencil();
  auto p1 = ilu_symbolic(s.n, s.ptr, s.col, 1);
  auto p2 = ilu_symbolic(s.n, s.ptr, s.col, 2);
  // Every level-1 entry appears at level 2.
  for (int i = 0; i < s.n; ++i) {
    int q = p2.ptr[i];
    for (int p = p1.ptr[i]; p < p1.ptr[i + 1]; ++p) {
      while (q < p2.ptr[i + 1] && p2.col[q] < p1.col[p]) ++q;
      ASSERT_LT(q, p2.ptr[i + 1]);
      EXPECT_EQ(p2.col[q], p1.col[p]);
    }
  }
}

TEST(Ilu, TridiagonalFullFactorizationIsExact) {
  // For a tridiagonal matrix, ILU(0) is the exact LU: solve must match a
  // direct solution.
  const int n = 50;
  Csr<double> a;
  a.n = n;
  a.ptr.push_back(0);
  for (int i = 0; i < n; ++i) {
    if (i > 0) {
      a.col.push_back(i - 1);
      a.val.push_back(-1.0);
    }
    a.col.push_back(i);
    a.val.push_back(2.5);
    if (i < n - 1) {
      a.col.push_back(i + 1);
      a.val.push_back(-1.0);
    }
    a.ptr.push_back(static_cast<int>(a.col.size()));
  }
  auto pat = ilu_symbolic(a, 0);
  auto f = ilu_factor_point<double>(a, pat);

  Rng rng(5);
  Vec x_true(n), b(n);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  a.spmv(x_true, b);
  Vec x(n);
  f.solve(b, x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
}

TEST(Ilu, PointIluIsApproximateInverse) {
  auto s = small_stencil();
  auto fn = synthetic_values(s);
  auto a = build_point_csr(s, 2, fn, FieldLayout::kInterlaced);
  auto pat = ilu_symbolic(a, 1);
  auto f = ilu_factor_point<double>(a, pat);

  // For a diagonally dominant A, the preconditioned residual of one solve
  // should shrink strongly: || b - A M^{-1} b || << || b ||.
  Rng rng(6);
  Vec b(a.n);
  for (auto& v : b) v = rng.uniform(-1, 1);
  Vec x(a.n), r(a.n);
  f.solve(b, x);
  a.spmv(x, r);
  for (int i = 0; i < a.n; ++i) r[i] = b[i] - r[i];
  EXPECT_LT(norm2(r), 0.25 * norm2(b));
}

TEST(Ilu, BlockIluMatchesPointIluOnBlockDiagonalPattern) {
  // With block size 1 the block path must numerically equal the point path.
  auto s = small_stencil();
  auto fn = synthetic_values(s);
  auto bm = build_bcsr(s, 1, fn);
  auto pm = bcsr_to_point(bm);
  auto patb = ilu_symbolic(bm, 1);
  auto patp = ilu_symbolic(pm, 1);
  auto fb = ilu_factor_block<double>(bm, patb);
  auto fp = ilu_factor_point<double>(pm, patp);

  Rng rng(7);
  Vec b(pm.n);
  for (auto& v : b) v = rng.uniform(-1, 1);
  Vec xb(pm.n), xp(pm.n);
  fb.solve(b, xb);
  fp.solve(b, xp);
  for (int i = 0; i < pm.n; ++i) EXPECT_NEAR(xb[i], xp[i], 1e-12);
}

TEST(Ilu, BlockIluReducesResidual) {
  auto s = small_stencil();
  auto fn = synthetic_values(s);
  auto a = build_bcsr(s, 4, fn);
  auto pat = ilu_symbolic(a, 0);
  auto f = ilu_factor_block<double>(a, pat);

  Rng rng(8);
  Vec b(static_cast<std::size_t>(a.scalar_n()));
  for (auto& v : b) v = rng.uniform(-1, 1);
  Vec x(b.size()), r(b.size());
  f.solve(b, x);
  a.spmv(x, r);
  for (std::size_t i = 0; i < b.size(); ++i) r[i] = b[i] - r[i];
  EXPECT_LT(norm2(r), 0.25 * norm2(b));
}

TEST(Ilu, HigherFillIsMoreAccurate) {
  auto s = small_stencil();
  auto fn = synthetic_values(s);
  auto a = build_bcsr(s, 4, fn);
  Rng rng(9);
  Vec b(static_cast<std::size_t>(a.scalar_n()));
  for (auto& v : b) v = rng.uniform(-1, 1);

  auto resid = [&](int level) {
    auto f = ilu_factor_block<double>(a, ilu_symbolic(a, level));
    Vec x(b.size()), r(b.size());
    f.solve(b, x);
    a.spmv(x, r);
    for (std::size_t i = 0; i < b.size(); ++i) r[i] = b[i] - r[i];
    return norm2(r);
  };
  const double r0 = resid(0), r1 = resid(1), r2 = resid(2);
  EXPECT_LT(r1, r0);
  EXPECT_LT(r2, r1);
}

TEST(Ilu, FloatStorageCloseToDouble) {
  auto s = small_stencil();
  auto fn = synthetic_values(s);
  auto a = build_bcsr(s, 4, fn);
  auto pat = ilu_symbolic(a, 1);
  auto fd = ilu_factor_block<double>(a, pat);
  auto ff = ilu_factor_block<float>(a, pat);

  Rng rng(10);
  Vec b(static_cast<std::size_t>(a.scalar_n()));
  for (auto& v : b) v = rng.uniform(-1, 1);
  Vec xd(b.size()), xf(b.size());
  fd.solve(b, xd);
  ff.solve(b, xf);
  double diff = 0, ref = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    diff += (xd[i] - xf[i]) * (xd[i] - xf[i]);
    ref += xd[i] * xd[i];
  }
  EXPECT_LT(std::sqrt(diff), 1e-4 * std::sqrt(ref));
}

TEST(Ilu, MissingDiagonalThrows) {
  std::vector<int> ptr = {0, 1, 2};
  std::vector<int> col = {1, 0};  // 2x2 anti-diagonal: no (0,0)
  EXPECT_THROW(ilu_symbolic(2, ptr, col, 0), Error);
}

}  // namespace
