// Failure injection and boundary-condition tests across all modules:
// every F3D_CHECK guard that protects an API contract should fire on bad
// input, and degenerate-but-legal inputs should work.

#include <gtest/gtest.h>

#include <cmath>

#include "cfd/problem.hpp"
#include "common/error.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "partition/multilevel.hpp"
#include "solver/gmres.hpp"
#include "solver/newton.hpp"
#include "solver/precond.hpp"
#include "sparse/assembly.hpp"
#include "sparse/ilu.hpp"
#include "sparse/vec.hpp"

namespace {

using namespace f3d;
using sparse::Vec;

// --- mesh ------------------------------------------------------------------

TEST(EdgeCase, EmptyMeshRejected) {
  mesh::UnstructuredMesh m({}, {}, {});
  EXPECT_THROW(m.finalize(), Error);
}

TEST(EdgeCase, TetVertexOutOfRangeRejected) {
  std::vector<std::array<double, 3>> coords = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<std::array<int, 4>> tets = {{0, 1, 2, 7}};
  mesh::UnstructuredMesh m(std::move(coords), std::move(tets), {});
  EXPECT_THROW(m.finalize(), Error);
}

TEST(EdgeCase, DegenerateTetRejected) {
  std::vector<std::array<double, 3>> coords = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<std::array<int, 4>> tets = {{0, 1, 2, 2}};
  mesh::UnstructuredMesh m(std::move(coords), std::move(tets), {});
  EXPECT_THROW(m.finalize(), Error);
}

TEST(EdgeCase, UnfinalizedMeshOperationsRejected) {
  std::vector<std::array<double, 3>> coords = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<std::array<int, 4>> tets = {{0, 1, 2, 3}};
  mesh::UnstructuredMesh m(std::move(coords), std::move(tets), {});
  EXPECT_THROW(m.permute_vertices({0, 1, 2, 3}), Error);
  EXPECT_THROW((void)m.vertex_adjacency(), Error);
  EXPECT_THROW((void)m.bandwidth(), Error);
}

TEST(EdgeCase, NegativeVolumeTetCaughtByDualMetrics) {
  // Inverted orientation: dual metrics must refuse.
  std::vector<std::array<double, 3>> coords = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<std::array<int, 4>> tets = {{0, 2, 1, 3}};  // swapped
  mesh::UnstructuredMesh m(std::move(coords), std::move(tets), {});
  m.finalize();
  EXPECT_THROW(mesh::compute_dual_metrics(m), Error);
}

TEST(EdgeCase, MinimalOneCellBox) {
  auto m = mesh::generate_box_mesh(1, 1, 1);
  EXPECT_EQ(m.num_vertices(), 8);
  EXPECT_EQ(m.num_tets(), 6);
  auto d = mesh::compute_dual_metrics(m);
  EXPECT_LT(mesh::closure_defect(m, d), 1e-12);
}

TEST(EdgeCase, GeneratorRejectsZeroCells) {
  EXPECT_THROW(mesh::generate_box_mesh(0, 1, 1), Error);
  EXPECT_THROW(mesh::generate_wing_mesh_with_size(1), Error);
}

// --- sparse ------------------------------------------------------------------

TEST(EdgeCase, CsrCheckCatchesCorruption) {
  sparse::Csr<double> a;
  a.n = 2;
  a.ptr = {0, 1, 2};
  a.col = {0, 5};  // out of range
  a.val = {1.0, 1.0};
  EXPECT_THROW(a.check(), Error);
  a.col = {0, 1};
  a.check();  // now fine
  a.ptr = {0, 2, 1};  // non-monotone
  EXPECT_THROW(a.check(), Error);
}

TEST(EdgeCase, IluZeroPivotDetected) {
  // 2x2 with a structurally present but numerically zero pivot after
  // elimination: [1 1; 1 1] -> U22 = 0.
  sparse::Csr<double> a;
  a.n = 2;
  a.ptr = {0, 2, 4};
  a.col = {0, 1, 0, 1};
  a.val = {1, 1, 1, 1};
  auto pat = sparse::ilu_symbolic(a, 0);
  EXPECT_THROW(sparse::ilu_factor_point<double>(a, pat), Error);
}

TEST(EdgeCase, BlockIluSingularDiagonalDetected) {
  sparse::Bcsr<double> a;
  a.nb = 2;
  a.nrows = 1;
  a.ptr = {0, 1};
  a.col = {0};
  a.val = {1, 2, 2, 4};  // rank-1 block
  auto pat = sparse::ilu_symbolic(a, 0);
  EXPECT_THROW(sparse::ilu_factor_block<double>(a, pat), Error);
}

TEST(EdgeCase, ConvertLayoutRejectsWrongSize) {
  Vec x(10);
  EXPECT_THROW(
      sparse::convert_layout(x, sparse::FieldLayout::kInterlaced,
                             sparse::FieldLayout::kNonInterlaced, 3, 4),
      Error);
}

// --- solver -------------------------------------------------------------------

TEST(EdgeCase, GmresZeroRhsReturnsZero) {
  solver::LinearOperator op;
  op.n = 4;
  op.apply = [](const double* x, double* y) {
    for (int i = 0; i < 4; ++i) y[i] = 2 * x[i];
  };
  solver::IdentityPreconditioner m(4);
  Vec b(4, 0.0), x(4, 0.0);
  auto r = solver::gmres(op, m, b, x, {});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCase, GmresSizeMismatchRejected) {
  solver::LinearOperator op;
  op.n = 4;
  op.apply = [](const double*, double*) {};
  solver::IdentityPreconditioner m(4);
  Vec b(3, 1.0), x(4, 0.0);
  EXPECT_THROW(solver::gmres(op, m, b, x, {}), Error);
}

TEST(EdgeCase, GmresRestartOne) {
  // Restart 1 = steepest-descent-like; must still converge on identity.
  solver::LinearOperator op;
  op.n = 3;
  op.apply = [](const double* x, double* y) {
    for (int i = 0; i < 3; ++i) y[i] = x[i];
  };
  solver::IdentityPreconditioner m(3);
  Vec b = {1, 2, 3}, x(3, 0.0);
  solver::GmresOptions o;
  o.restart = 1;
  auto r = solver::gmres(op, m, b, x, o);
  EXPECT_TRUE(r.converged);
}

TEST(EdgeCase, SchwarzBlockJacobiWithOverlapRejected) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  auto a = sparse::build_bcsr(s, 2, fn);
  auto g = mesh::build_graph(m.num_vertices(), m.edges());
  auto p = part::kway_grow(g, 2);
  solver::SchwarzOptions so;
  so.type = solver::SchwarzType::kBlockJacobi;
  so.overlap = 1;  // contradiction
  EXPECT_THROW(solver::SchwarzPreconditioner(a, p, so), Error);
}

TEST(EdgeCase, SchwarzPartitionSizeMismatchRejected) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  auto a = sparse::build_bcsr(s, 2, fn);
  part::Partition p;
  p.nparts = 2;
  p.part.assign(a.nrows + 1, 0);  // wrong size
  EXPECT_THROW(solver::SchwarzPreconditioner(a, p, {}), Error);
}

TEST(EdgeCase, PtcRejectsWrongStateSize) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  cfd::FlowConfig cfg;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc);
  Vec x(3, 0.0);  // wrong size
  EXPECT_THROW(solver::ptc_solve(prob, x, {}), Error);
}

TEST(EdgeCase, PtcZeroStepsBudget) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  cfd::FlowConfig cfg;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  solver::PtcOptions o;
  o.max_steps = 0;
  auto r = solver::ptc_solve(prob, x, o);
  EXPECT_EQ(r.steps, 0);
  EXPECT_GT(r.initial_residual, 0.0);
}

// --- partition -----------------------------------------------------------------

TEST(EdgeCase, PartitionersRejectInvalidCounts) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  auto g = mesh::build_graph(m.num_vertices(), m.edges());
  EXPECT_THROW(part::kway_grow(g, 0), Error);
  EXPECT_THROW(part::kway_grow(g, m.num_vertices() + 1), Error);
  EXPECT_THROW(part::multilevel_kway(g, 0), Error);
  EXPECT_THROW(part::balance_first(g, -1), Error);
}

TEST(EdgeCase, PartitionOnePartPerVertex) {
  auto m = mesh::generate_box_mesh(1, 1, 1);
  auto g = mesh::build_graph(m.num_vertices(), m.edges());
  auto p = part::kway_grow(g, m.num_vertices());
  std::vector<int> seen(m.num_vertices(), 0);
  for (int v : p.part) ++seen[v];
  for (int c : seen) EXPECT_EQ(c, 1);
}

// --- cfd ------------------------------------------------------------------------

TEST(EdgeCase, EulerProblemRequiresInterlaced) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  cfd::FlowConfig cfg;
  cfg.layout = sparse::FieldLayout::kNonInterlaced;
  cfd::EulerDiscretization disc(m, cfg);
  EXPECT_THROW(cfd::EulerProblem prob(disc), Error);
}

TEST(EdgeCase, InvalidOrderRejected) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  cfd::FlowConfig cfg;
  cfg.order = 3;
  EXPECT_THROW(cfd::EulerDiscretization(m, cfg), Error);
}

TEST(EdgeCase, ResidualLayoutMismatchRejected) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  cfd::FlowConfig cfg;  // interlaced
  cfd::EulerDiscretization disc(m, cfg);
  cfd::FlowField q(m.num_vertices(), cfg.nb(),
                   sparse::FieldLayout::kNonInterlaced);
  std::vector<double> r;
  EXPECT_THROW(disc.residual(q, r), Error);
}

}  // namespace
