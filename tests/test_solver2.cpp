// Tests for the second wave of solver features: BiCGSTAB, the SSOR
// subdomain solve, the matrix-free toggle, Morton ordering, and the 3C
// miss classification of the cache simulator.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "common/rng.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "simcache/cache.hpp"
#include "solver/bicgstab.hpp"
#include "solver/gmres.hpp"
#include "solver/precond.hpp"
#include "sparse/assembly.hpp"
#include "sparse/vec.hpp"

namespace {

using namespace f3d;
using namespace f3d::solver;
using sparse::Vec;

struct Sys {
  sparse::Bcsr<double> a;
  Vec b, x_true;
  mesh::Graph g;
};

Sys make_sys(int nb = 4, int nx = 4) {
  auto m = mesh::generate_box_mesh(nx, nx, nx);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  Sys sys;
  sys.a = sparse::build_bcsr(s, nb, fn);
  Rng rng(1);
  sys.x_true.resize(sys.a.scalar_n());
  for (auto& v : sys.x_true) v = rng.uniform(-1, 1);
  sys.b.resize(sys.x_true.size());
  sys.a.spmv(sys.x_true, sys.b);
  sys.g = mesh::build_graph(m.num_vertices(), m.edges());
  return sys;
}

LinearOperator op_of(const sparse::Bcsr<double>& a) {
  LinearOperator op;
  op.n = a.scalar_n();
  op.apply = [&a](const double* x, double* y) { a.spmv(x, y); };
  return op;
}

// --- BiCGSTAB ------------------------------------------------------------

TEST(Bicgstab, SolvesBlockSystem) {
  auto sys = make_sys();
  auto op = op_of(sys.a);
  IdentityPreconditioner m(op.n);
  Vec x(op.n, 0.0);
  BicgstabOptions o;
  o.rtol = 1e-10;
  o.max_iters = 400;
  auto r = bicgstab(op, m, sys.b, x, o);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.breakdown);
  double err = 0;
  for (int i = 0; i < op.n; ++i)
    err = std::max(err, std::abs(x[i] - sys.x_true[i]));
  EXPECT_LT(err, 1e-7);
}

TEST(Bicgstab, PreconditioningHelps) {
  auto sys = make_sys(4, 5);
  auto op = op_of(sys.a);
  IdentityPreconditioner ident(op.n);
  auto ilu = make_global_ilu(sys.a, 0);
  BicgstabOptions o;
  o.rtol = 1e-8;
  Vec x1(op.n, 0.0), x2(op.n, 0.0);
  auto r1 = bicgstab(op, ident, sys.b, x1, o);
  auto r2 = bicgstab(op, *ilu, sys.b, x2, o);
  EXPECT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations);
}

TEST(Bicgstab, AgreesWithGmres) {
  auto sys = make_sys();
  auto op = op_of(sys.a);
  auto ilu = make_global_ilu(sys.a, 1);
  Vec xg(op.n, 0.0), xb(op.n, 0.0);
  GmresOptions og;
  og.rtol = 1e-10;
  og.max_iters = 300;
  BicgstabOptions ob;
  ob.rtol = 1e-10;
  ob.max_iters = 300;
  EXPECT_TRUE(gmres(op, *ilu, sys.b, xg, og).converged);
  EXPECT_TRUE(bicgstab(op, *ilu, sys.b, xb, ob).converged);
  for (int i = 0; i < op.n; ++i) EXPECT_NEAR(xg[i], xb[i], 1e-6);
}

TEST(Bicgstab, ExactInitialGuessReturnsImmediately) {
  auto sys = make_sys(2, 3);
  auto op = op_of(sys.a);
  IdentityPreconditioner m(op.n);
  Vec x = sys.x_true;
  auto r = bicgstab(op, m, sys.b, x, {});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Bicgstab, CountsWork) {
  auto sys = make_sys(2, 3);
  auto op = op_of(sys.a);
  IdentityPreconditioner m(op.n);
  Vec x(op.n, 0.0);
  BicgstabOptions o;
  o.rtol = 1e-8;
  auto r = bicgstab(op, m, sys.b, x, o);
  // Two matvecs per full iteration (plus the initial residual).
  EXPECT_GE(r.counters.matvecs, 2 * (r.iterations - 1));
  EXPECT_GT(r.counters.dots, 0);
}

// --- SSOR subdomain solver -------------------------------------------------

TEST(Ssor, ConvergesGmresAndMoreSweepsHelp) {
  auto sys = make_sys(4, 5);
  auto op = op_of(sys.a);
  auto partition = part::kway_grow(sys.g, 4);
  auto its_for = [&](int sweeps) {
    SchwarzOptions so;
    so.type = SchwarzType::kBlockJacobi;
    so.subdomain_solver = SubdomainSolver::kSsor;
    so.sweeps = sweeps;
    SchwarzPreconditioner prec(sys.a, partition, so);
    GmresOptions o;
    o.rtol = 1e-8;
    o.max_iters = 300;
    Vec x(op.n, 0.0);
    auto r = gmres(op, prec, sys.b, x, o);
    EXPECT_TRUE(r.converged) << prec.name();
    return r.iterations;
  };
  EXPECT_LE(its_for(3), its_for(1));
}

TEST(Ssor, NameReflectsConfiguration) {
  auto sys = make_sys(2, 3);
  auto partition = part::kway_grow(sys.g, 2);
  SchwarzOptions so;
  so.type = SchwarzType::kBlockJacobi;
  so.subdomain_solver = SubdomainSolver::kSsor;
  so.sweeps = 3;
  SchwarzPreconditioner prec(sys.a, partition, so);
  EXPECT_NE(prec.name().find("ssor(3)"), std::string::npos);
}

// --- Morton ordering --------------------------------------------------------

TEST(Morton, IsPermutation) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 8, .ny = 5, .nz = 5});
  mesh::shuffle_mesh(m, 4);
  auto perm = mesh::morton_ordering(m);
  std::set<int> s(perm.begin(), perm.end());
  EXPECT_EQ(static_cast<int>(s.size()), m.num_vertices());
}

TEST(Morton, ImprovesMeanEdgeLocalityVsShuffled) {
  // Z-order is a *locality* ordering: it shrinks the typical |i-j| gap
  // across edges (cache/TLB behaviour) even though its worst-case
  // bandwidth stays large at quadrant boundaries.
  auto mean_gap = [](const mesh::UnstructuredMesh& mm) {
    double s = 0;
    for (const auto& e : mm.edges()) s += e[1] - e[0];
    return s / mm.num_edges();
  };
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 10, .ny = 6, .nz = 6});
  mesh::shuffle_mesh(m, 9);
  const double gap_shuffled = mean_gap(m);
  m.permute_vertices(mesh::morton_ordering(m));
  EXPECT_LT(mean_gap(m), gap_shuffled / 3);
}

TEST(Morton, RcmStillBetterOnBandwidth) {
  // SFC ordering is locality-good but bandwidth-worse than RCM — the
  // documented tradeoff.
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 10, .ny = 6, .nz = 6});
  mesh::shuffle_mesh(m, 9);
  auto m_sfc = m;
  m_sfc.permute_vertices(mesh::morton_ordering(m_sfc));
  auto m_rcm = m;
  m_rcm.permute_vertices(mesh::rcm_ordering(m_rcm.vertex_adjacency()));
  EXPECT_LE(m_rcm.bandwidth(), m_sfc.bandwidth());
}

// --- 3C miss classification ---------------------------------------------

TEST(MissClass, ColdPassIsAllCompulsory) {
  simcache::CacheModel c(1024, 64, 2, /*classify=*/true);
  for (int i = 0; i < 8; ++i) c.access(static_cast<std::uint64_t>(i) * 64);
  EXPECT_EQ(c.compulsory_misses(), 8u);
  EXPECT_EQ(c.capacity_misses(), 0u);
  EXPECT_EQ(c.conflict_misses(), 0u);
}

TEST(MissClass, ThrashingSetIsConflict) {
  // 3 lines mapping to one 2-way set of a large cache: pure conflict.
  simcache::CacheModel c(4096, 64, 2, true);  // 32 sets, stride 2048
  for (int rep = 0; rep < 5; ++rep)
    for (std::uint64_t a : {0ull, 2048ull, 4096ull}) c.access(a);
  EXPECT_EQ(c.compulsory_misses(), 3u);
  EXPECT_EQ(c.capacity_misses(), 0u);
  EXPECT_GT(c.conflict_misses(), 8u);
}

TEST(MissClass, StreamingBeyondCapacityIsCapacity) {
  // Cycle through 4x the capacity sequentially: repeats miss in the
  // fully-associative shadow too -> capacity misses.
  simcache::CacheModel c(1024, 64, 2, true);  // 16 lines
  for (int rep = 0; rep < 3; ++rep)
    for (int i = 0; i < 64; ++i) c.access(static_cast<std::uint64_t>(i) * 64);
  EXPECT_EQ(c.compulsory_misses(), 64u);
  EXPECT_GT(c.capacity_misses(), 100u);
  EXPECT_EQ(c.misses(),
            c.compulsory_misses() + c.capacity_misses() + c.conflict_misses());
}

TEST(MissClass, SumIdentityAlwaysHolds) {
  Rng rng(5);
  simcache::CacheModel c(2048, 64, 4, true);
  for (int i = 0; i < 5000; ++i)
    c.access(rng.below(1 << 16) & ~63ull);
  EXPECT_EQ(c.misses(),
            c.compulsory_misses() + c.capacity_misses() + c.conflict_misses());
  EXPECT_GT(c.hits() + c.misses(), 0u);
}

TEST(MissClass, DisabledByDefault) {
  simcache::CacheModel c(1024, 64, 2);
  for (int i = 0; i < 100; ++i) c.access(static_cast<std::uint64_t>(i) * 64);
  EXPECT_EQ(c.compulsory_misses(), 0u);
  EXPECT_GT(c.misses(), 0u);
}

}  // namespace
