// Tests for the Euler discretization: flux consistency, analytic
// Jacobians against finite differences, freestream preservation (the
// discrete divergence identity), gradient exactness, limiter bounds,
// layout invariance, and threaded-residual equivalence.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cfd/euler.hpp"
#include "common/rng.hpp"
#include "mesh/generator.hpp"

namespace {

using namespace f3d;
using namespace f3d::cfd;
using sparse::FieldLayout;

FlowConfig incompressible_cfg(int order = 1) {
  FlowConfig cfg;
  cfg.model = Model::kIncompressible;
  cfg.order = order;
  return cfg;
}

FlowConfig compressible_cfg(int order = 1) {
  FlowConfig cfg;
  cfg.model = Model::kCompressible;
  cfg.order = order;
  return cfg;
}

// A generic smooth non-trivial state for Jacobian tests.
void test_state(const FlowConfig& cfg, double* q) {
  if (cfg.model == Model::kIncompressible) {
    q[0] = 0.3;
    q[1] = 0.9;
    q[2] = -0.2;
    q[3] = 0.15;
  } else {
    q[0] = 1.1;
    q[1] = 0.4;
    q[2] = -0.1;
    q[3] = 0.2;
    q[4] = 2.2;
  }
}

// --- pointwise flux physics -------------------------------------------

TEST(Flux, RusanovConsistency) {
  // F(q, q, n) must equal the physical flux F(q, n).
  for (auto cfg : {incompressible_cfg(), compressible_cfg()}) {
    double q[kMaxComponents], f1[kMaxComponents], f2[kMaxComponents];
    test_state(cfg, q);
    const double n[3] = {0.3, -0.2, 0.5};
    physical_flux(cfg, q, n, f1);
    rusanov_flux(cfg, q, q, n, f2);
    for (int c = 0; c < cfg.nb(); ++c) EXPECT_NEAR(f1[c], f2[c], 1e-14);
  }
}

TEST(Flux, RusanovIsConservativeAntisymmetric) {
  // F(qL, qR, n) == -F(qR, qL, -n): what edge assembly relies on.
  for (auto cfg : {incompressible_cfg(), compressible_cfg()}) {
    double ql[kMaxComponents], qr[kMaxComponents];
    test_state(cfg, ql);
    test_state(cfg, qr);
    qr[0] += 0.1;
    qr[1] -= 0.2;
    const double n[3] = {0.3, -0.2, 0.5};
    const double nm[3] = {-0.3, 0.2, -0.5};
    double f1[kMaxComponents], f2[kMaxComponents];
    rusanov_flux(cfg, ql, qr, n, f1);
    rusanov_flux(cfg, qr, ql, nm, f2);
    for (int c = 0; c < cfg.nb(); ++c) EXPECT_NEAR(f1[c], -f2[c], 1e-14);
  }
}

TEST(Flux, WaveSpeedPositiveAndScalesWithArea) {
  for (auto cfg : {incompressible_cfg(), compressible_cfg()}) {
    double q[kMaxComponents];
    test_state(cfg, q);
    const double n[3] = {0.3, -0.2, 0.5};
    const double n2[3] = {0.6, -0.4, 1.0};
    const double l1 = max_wave_speed(cfg, q, n);
    const double l2 = max_wave_speed(cfg, q, n2);
    EXPECT_GT(l1, 0.0);
    EXPECT_NEAR(l2, 2 * l1, 1e-12);
  }
}

TEST(Flux, JacobianMatchesFiniteDifference) {
  for (auto cfg : {incompressible_cfg(), compressible_cfg()}) {
    const int nb = cfg.nb();
    double q[kMaxComponents];
    test_state(cfg, q);
    const double n[3] = {0.4, 0.1, -0.3};
    std::vector<double> a(nb * nb);
    flux_jacobian(cfg, q, n, a.data());

    const double eps = 1e-7;
    for (int j = 0; j < nb; ++j) {
      double qp[kMaxComponents], qm[kMaxComponents];
      std::copy(q, q + nb, qp);
      std::copy(q, q + nb, qm);
      qp[j] += eps;
      qm[j] -= eps;
      double fp[kMaxComponents], fm[kMaxComponents];
      physical_flux(cfg, qp, n, fp);
      physical_flux(cfg, qm, n, fm);
      for (int i = 0; i < nb; ++i) {
        const double fd = (fp[i] - fm[i]) / (2 * eps);
        EXPECT_NEAR(a[i * nb + j], fd, 1e-5 * (1 + std::abs(fd)))
            << "model=" << static_cast<int>(cfg.model) << " i=" << i
            << " j=" << j;
      }
    }
  }
}

TEST(Flux, WallJacobianMatchesFiniteDifference) {
  for (auto cfg : {incompressible_cfg(), compressible_cfg()}) {
    const int nb = cfg.nb();
    double q[kMaxComponents];
    test_state(cfg, q);
    const double n[3] = {0.0, 0.2, -0.7};
    std::vector<double> a(nb * nb);
    wall_flux_jacobian(cfg, q, n, a.data());
    const double eps = 1e-7;
    for (int j = 0; j < nb; ++j) {
      double qp[kMaxComponents], qm[kMaxComponents];
      std::copy(q, q + nb, qp);
      std::copy(q, q + nb, qm);
      qp[j] += eps;
      qm[j] -= eps;
      double fp[kMaxComponents], fm[kMaxComponents];
      wall_flux(cfg, qp, n, fp);
      wall_flux(cfg, qm, n, fm);
      for (int i = 0; i < nb; ++i)
        EXPECT_NEAR(a[i * nb + j], (fp[i] - fm[i]) / (2 * eps), 1e-6);
    }
  }
}

TEST(Flux, FreestreamHasUnitSoundSpeedCompressible) {
  auto cfg = compressible_cfg();
  double q[kMaxComponents];
  freestream_state(cfg, q);
  const double p = pressure(cfg, q);
  EXPECT_NEAR(std::sqrt(cfg.gamma * p / q[0]), 1.0, 1e-12);
  const double speed =
      std::sqrt(q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) / q[0];
  EXPECT_NEAR(speed, cfg.mach, 1e-12);
}

// --- discretization ----------------------------------------------------

class EulerDiscTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EulerDiscTest, FreestreamIsPreserved) {
  // The residual of the uniform freestream must vanish to roundoff: this
  // couples flux consistency with the dual-mesh closure identity.
  // Wall faces require the freestream to be wall-tangent, so use a flat
  // box (wall normal is exactly -z) and zero angle of attack.
  const auto [model_i, order] = GetParam();
  FlowConfig cfg = model_i == 0 ? incompressible_cfg(order)
                                : compressible_cfg(order);
  cfg.alpha_deg = 0.0;
  auto m = mesh::generate_box_mesh(6, 4, 4, 2.0, 1.0, 1.0);
  EulerDiscretization disc(m, cfg);
  auto q = disc.make_freestream_field();
  std::vector<double> r;
  disc.residual(q, r);
  double rn = 0;
  for (double v : r) rn = std::max(rn, std::abs(v));
  EXPECT_LT(rn, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(ModelsAndOrders, EulerDiscTest,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(1, 2)));

TEST(EulerDisc, WingProducesNonzeroResidualAtFreestream) {
  // With the bump and nonzero incidence the freestream is NOT a solution.
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 8, .ny = 4, .nz = 4});
  EulerDiscretization disc(m, incompressible_cfg(1));
  auto q = disc.make_freestream_field();
  std::vector<double> r;
  disc.residual(q, r);
  double rn = 0;
  for (double v : r) rn += v * v;
  EXPECT_GT(std::sqrt(rn), 1e-6);
}

TEST(EulerDisc, ResidualIsLayoutInvariant) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 6, .ny = 4, .nz = 4});
  for (int order : {1, 2}) {
    FlowConfig ci = incompressible_cfg(order);
    ci.layout = FieldLayout::kInterlaced;
    FlowConfig cn = ci;
    cn.layout = FieldLayout::kNonInterlaced;

    EulerDiscretization di(m, ci), dn(m, cn);
    auto qi = di.make_freestream_field();
    // Perturb deterministically so the residual is nontrivial.
    Rng rng(3);
    for (int v = 0; v < qi.num_vertices(); ++v)
      for (int c = 0; c < qi.nb(); ++c)
        qi.set(v, c, qi.get(v, c) + 0.05 * rng.uniform(-1, 1));
    auto qn = qi.as_layout(FieldLayout::kNonInterlaced);

    std::vector<double> ri, rn;
    di.residual(qi, ri);
    dn.residual(qn, rn);
    auto rn_conv = sparse::convert_layout(rn, FieldLayout::kNonInterlaced,
                                          FieldLayout::kInterlaced,
                                          qi.num_vertices(), qi.nb());
    ASSERT_EQ(ri.size(), rn_conv.size());
    for (std::size_t k = 0; k < ri.size(); ++k)
      EXPECT_NEAR(ri[k], rn_conv[k], 1e-12) << "order " << order;
  }
}

TEST(EulerDisc, ThreadedResidualMatchesSerial) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 8, .ny = 4, .nz = 4});
  EulerDiscretization disc(m, incompressible_cfg(2));
  auto q = disc.make_freestream_field();
  Rng rng(4);
  for (int v = 0; v < q.num_vertices(); ++v)
    for (int c = 0; c < q.nb(); ++c)
      q.set(v, c, q.get(v, c) + 0.05 * rng.uniform(-1, 1));
  std::vector<double> r1, r2;
  disc.residual(q, r1);
  disc.residual_threaded(q, r2, 2);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t k = 0; k < r1.size(); ++k) EXPECT_NEAR(r1[k], r2[k], 1e-11);
}

TEST(EulerDisc, GradientsExactForLinearField) {
  auto m = mesh::generate_box_mesh(5, 4, 3, 2.0, 1.5, 1.0);
  FlowConfig cfg = incompressible_cfg(2);
  EulerDiscretization disc(m, cfg);
  FlowField q(m.num_vertices(), cfg.nb(), cfg.layout);
  // q_c = a_c + g_c . x, exactly linear.
  const double g[4][3] = {{1, 2, 3}, {-1, 0.5, 0}, {0, 0, 2}, {0.25, -0.75, 1}};
  for (int v = 0; v < m.num_vertices(); ++v) {
    const auto& x = m.coords()[v];
    for (int c = 0; c < 4; ++c)
      q.set(v, c, 0.1 * c + g[c][0] * x[0] + g[c][1] * x[1] + g[c][2] * x[2]);
  }
  std::vector<double> grad;
  disc.gradients(q, grad);
  // Interior vertices (dual cell closed): gradient must be exact.
  std::vector<char> on_boundary(m.num_vertices(), 0);
  for (const auto& f : m.boundary_faces())
    for (int v : f.v) on_boundary[v] = 1;
  int checked = 0;
  for (int v = 0; v < m.num_vertices(); ++v) {
    if (on_boundary[v]) continue;
    ++checked;
    // SoA-blocked gradient layout: grad[(v*3 + d)*nb + c].
    for (int c = 0; c < 4; ++c)
      for (int d = 0; d < 3; ++d)
        EXPECT_NEAR(grad[(static_cast<std::size_t>(v) * 3 + d) * 4 + c],
                    g[c][d], 1e-10)
            << "v=" << v << " c=" << c << " d=" << d;
  }
  EXPECT_GT(checked, 0);
}

TEST(EulerDisc, LimitersInUnitInterval) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 6, .ny = 4, .nz = 4});
  FlowConfig cfg = incompressible_cfg(2);
  EulerDiscretization disc(m, cfg);
  auto q = disc.make_freestream_field();
  Rng rng(5);
  for (int v = 0; v < q.num_vertices(); ++v)
    for (int c = 0; c < q.nb(); ++c)
      q.set(v, c, q.get(v, c) + 0.3 * rng.uniform(-1, 1));
  std::vector<double> grad, phi;
  disc.gradients(q, grad);
  disc.limiters(q, grad, phi);
  for (double p : phi) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-12);
  }
}

TEST(EulerDisc, JacobianApproximatesResidualDerivative) {
  // The assembled first-order Jacobian freezes the Rusanov dissipation
  // coefficient, so it is an approximation; it must still match a
  // directional finite difference of the first-order residual to a few
  // percent near freestream (this is the preconditioner-quality property
  // the NKS solver depends on).
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 6, .ny = 4, .nz = 4});
  for (auto base_cfg : {incompressible_cfg(1), compressible_cfg(1)}) {
    EulerDiscretization disc(m, base_cfg);
    auto q = disc.make_freestream_field();
    Rng rng(6);
    for (int v = 0; v < q.num_vertices(); ++v)
      for (int c = 0; c < q.nb(); ++c)
        q.set(v, c, q.get(v, c) * (1 + 0.02 * rng.uniform(-1, 1)) +
                        0.01 * rng.uniform(-1, 1));

    auto jac = disc.allocate_jacobian();
    disc.jacobian(q, jac);

    // Directional derivative: (r(q + eps d) - r(q)) / eps vs J d.
    std::vector<double> d(disc.num_unknowns());
    for (auto& v : d) v = rng.uniform(-1, 1);
    const double eps = 1e-6;
    FlowField qp = q;
    for (std::size_t k = 0; k < qp.data().size(); ++k)
      qp.data()[k] += eps * d[k];
    std::vector<double> r0, rp, jd(disc.num_unknowns());
    disc.residual(q, r0);
    disc.residual(qp, rp);
    jac.spmv(d.data(), jd.data());
    double num = 0, den = 0;
    for (int k = 0; k < disc.num_unknowns(); ++k) {
      const double fd = (rp[k] - r0[k]) / eps;
      num += (fd - jd[k]) * (fd - jd[k]);
      den += fd * fd;
    }
    EXPECT_LT(std::sqrt(num), 0.05 * std::sqrt(den))
        << "model " << static_cast<int>(base_cfg.model);
  }
}

TEST(EulerDisc, SpectralRadiusPositiveEverywhere) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 6, .ny = 4, .nz = 4});
  for (auto cfg : {incompressible_cfg(1), compressible_cfg(1)}) {
    EulerDiscretization disc(m, cfg);
    auto q = disc.make_freestream_field();
    std::vector<double> sr;
    disc.spectral_radius(q, sr);
    for (double v : sr) EXPECT_GT(v, 0.0);
  }
}

TEST(EulerDisc, ResidualFlopsPositiveAndScaleWithOrder) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 6, .ny = 4, .nz = 4});
  EulerDiscretization d1(m, incompressible_cfg(1));
  EulerDiscretization d2(m, incompressible_cfg(2));
  EXPECT_GT(d1.residual_flops(), 0.0);
  EXPECT_GT(d2.residual_flops(), d1.residual_flops());
}

}  // namespace
