// End-to-end integration tests: full pipelines through mesh generation,
// ordering, partitioning, discretization, and the psi-NKS solver with
// the extended options (SSOR subdomains, matrix-explicit operator,
// coarse space, multilevel partitions, float preconditioner), plus
// physics invariance of the converged answer under renumbering.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "cfd/problem.hpp"
#include "io/vtk.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "obs/obs.hpp"
#include "partition/multilevel.hpp"
#include "perf/machine.hpp"
#include "solver/newton.hpp"

namespace {

using namespace f3d;

solver::PtcOptions base_opts() {
  solver::PtcOptions o;
  o.cfl0 = 20.0;
  o.rtol = 1e-7;
  o.max_steps = 50;
  o.schwarz.fill_level = 1;
  return o;
}

mesh::UnstructuredMesh small_wing() {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = 8, .ny = 4, .nz = 4});
  mesh::apply_best_ordering(m);
  return m;
}

double wall_force_z(const mesh::UnstructuredMesh& m,
                    const cfd::EulerDiscretization& disc,
                    const std::vector<double>& x) {
  double fz = 0;
  const auto& bfaces = m.boundary_faces();
  for (std::size_t f = 0; f < bfaces.size(); ++f) {
    if (bfaces[f].tag != mesh::BoundaryTag::kWall) continue;
    for (int lv = 0; lv < 3; ++lv) {
      const int v = bfaces[f].v[lv];
      const double* q = &x[static_cast<std::size_t>(v) * disc.nb()];
      fz += cfd::pressure(disc.config(), q) *
            disc.dual().bface_normal[f][2] / 3.0;
    }
  }
  return fz;
}

TEST(Integration, SsorSubdomainsConverge) {
  auto m = small_wing();
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  auto o = base_opts();
  o.num_subdomains = 6;
  o.schwarz.subdomain_solver = solver::SubdomainSolver::kSsor;
  o.schwarz.sweeps = 2;
  auto res = solver::ptc_solve(prob, x, o);
  EXPECT_TRUE(res.converged);
}

TEST(Integration, MatrixExplicitOperatorConverges) {
  auto m = small_wing();
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  auto o = base_opts();
  o.matrix_free = false;
  auto res = solver::ptc_solve(prob, x, o);
  EXPECT_TRUE(res.converged);
  // The assembled operator needs no FD residual evaluations inside GMRES.
  EXPECT_LT(res.function_evaluations,
            res.total_linear_iterations + 6 * res.steps);
}

TEST(Integration, PhaseTimersRecordTheTwoPhases) {
  auto m = small_wing();
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  auto o = base_opts();
  auto res = solver::ptc_solve(prob, x, o);
  ASSERT_TRUE(res.converged);
  EXPECT_GT(res.phases.get("flux"), 0.0);
  EXPECT_GT(res.phases.get("krylov"), 0.0);
  EXPECT_GT(res.phases.get("factor"), 0.0);
  EXPECT_GT(res.phases.get("jacobian"), 0.0);
  // Everything accounted is positive and flux dominates the FD solver.
  EXPECT_GT(res.phases.total(), res.phases.get("factor"));
}

TEST(Integration, TracedSolveEmitsPhaseSpans) {
  auto m = small_wing();
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  obs::Tracer::global().clear();
  obs::set_tracing(true);
  auto res = solver::ptc_solve(prob, x, base_opts());
  obs::set_tracing(false);
  ASSERT_TRUE(res.converged);

  auto ev = obs::Tracer::global().drain();
  ASSERT_FALSE(ev.empty());
  // The root span plus every phase the PhaseTimers report covers.
  std::map<std::string, int> count;
  for (const auto& e : ev) ++count[e.name];
  EXPECT_EQ(count["ptc_solve"], 1);
  for (const char* phase : {"flux", "jacobian", "factor", "krylov", "precond"})
    EXPECT_GT(count[phase], 0) << phase;

  // The phase spans under the root account for the bulk of its wall time
  // (lenient 50% bound: a tiny solve has real partition/setup overhead and
  // timing noise, the ci.sh gate checks the >=90% claim on a real run).
  const obs::SpanEvent* root = nullptr;
  for (const auto& e : ev)
    if (std::string(e.name) == "ptc_solve") root = &e;
  ASSERT_NE(root, nullptr);
  double covered_us = 0;
  for (const auto& e : ev)
    if (e.tid == root->tid && e.depth == root->depth + 1)
      covered_us += e.duration_us();
  EXPECT_GE(covered_us, 0.5 * root->duration_us());
  EXPECT_LE(covered_us, 1.001 * root->duration_us());
}

TEST(Integration, TracingOffLeavesNoSpans) {
  auto m = small_wing();
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  obs::Tracer::global().clear();
  obs::set_tracing(false);
  auto res = solver::ptc_solve(prob, x, base_opts());
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(obs::Tracer::global().drain().empty());
}

TEST(Integration, CoarseSpaceInPtcConverges) {
  auto m = small_wing();
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  auto o = base_opts();
  o.num_subdomains = 8;
  o.use_coarse_space = true;
  o.schwarz.type = solver::SchwarzType::kBlockJacobi;
  o.schwarz.fill_level = 0;
  auto res = solver::ptc_solve(prob, x, o);
  EXPECT_TRUE(res.converged);
}

TEST(Integration, MultilevelPartitionInPtcConverges) {
  auto m = small_wing();
  auto g = mesh::build_graph(m.num_vertices(), m.edges());
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  auto o = base_opts();
  o.num_subdomains = 8;
  o.partition = part::multilevel_kway(g, 8);
  o.schwarz.type = solver::SchwarzType::kRasm;
  o.schwarz.overlap = 1;
  o.schwarz.fill_level = 0;
  auto res = solver::ptc_solve(prob, x, o);
  EXPECT_TRUE(res.converged);
}

TEST(Integration, FloatPreconditionerFullSolveMatchesDouble) {
  auto m = small_wing();
  auto solve_with = [&](bool single) {
    cfd::FlowConfig cfg;
    cfg.model = cfd::Model::kIncompressible;
    cfg.order = 1;
    cfd::EulerDiscretization disc(m, cfg);
    cfd::EulerProblem prob(disc, -1.0);
    auto x = prob.initial_state();
    auto o = base_opts();
    o.schwarz.single_precision = single;
    auto res = solver::ptc_solve(prob, x, o);
    EXPECT_TRUE(res.converged);
    return std::pair<double, int>(wall_force_z(m, disc, x), res.steps);
  };
  auto [fz_d, steps_d] = solve_with(false);
  auto [fz_f, steps_f] = solve_with(true);
  // Same physics, same step counts (the paper: convergence unaffected).
  EXPECT_NEAR(fz_d, fz_f, 1e-5 * (1 + std::abs(fz_d)));
  EXPECT_NEAR(steps_d, steps_f, 1);
}

TEST(Integration, ConvergedForceInvariantUnderRenumbering) {
  // Solve the same flow on the ordered mesh and a shuffled copy; the
  // wall force must agree — the physics cannot depend on data layout.
  auto solve_on = [&](mesh::UnstructuredMesh mesh_in) {
    cfd::FlowConfig cfg;
    cfg.model = cfd::Model::kIncompressible;
    cfg.order = 1;
    cfd::EulerDiscretization disc(mesh_in, cfg);
    cfd::EulerProblem prob(disc, -1.0);
    auto x = prob.initial_state();
    auto o = base_opts();
    o.rtol = 1e-9;
    auto res = solver::ptc_solve(prob, x, o);
    EXPECT_TRUE(res.converged);
    return wall_force_z(mesh_in, disc, x);
  };
  auto m1 = small_wing();
  auto m2 = m1;
  mesh::shuffle_mesh(m2, 31);
  const double f1 = solve_on(std::move(m1));
  const double f2 = solve_on(std::move(m2));
  EXPECT_NEAR(f1, f2, 1e-6 * (1 + std::abs(f1)));
}

TEST(Integration, SecondOrderSolveAndVtkDump) {
  auto m = small_wing();
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 2;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, 0.0);  // second order from the start
  auto x = prob.initial_state();
  auto o = base_opts();
  o.max_steps = 60;
  auto res = solver::ptc_solve(prob, x, o);
  EXPECT_TRUE(res.converged);
  io::write_flow_vtk("/tmp/f3d_integration.vtk", m, disc.config(), x);
  std::remove("/tmp/f3d_integration.vtk");
}

TEST(Integration, HostMachineModelIsUsable) {
  auto m = perf::host_machine(1 << 19);  // small arrays: fast test
  EXPECT_GT(m.mem_bw_mbs, 10.0);
  EXPECT_GT(m.cpu_mflops_peak, 100.0);
  EXPECT_GT(m.sparse_mflops(), 0.0);
  EXPECT_EQ(m.max_nodes, 1);
}

}  // namespace
