// Tests for the benchmark calibration utilities (bench_util): the
// iteration-growth fit, work-coefficient calibration, and the standard
// mesh factories — these feed every figure-level reproduction, so they
// get their own correctness checks.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "bench_util.hpp"
#include "cfd/euler.hpp"
#include "obs/trace.hpp"

namespace {

using namespace f3d;

TEST(BenchUtil, WriteJsonWrapsInBenchEnvelope) {
  auto payload = benchutil::Json::object();
  payload.set("points", 3).set("label", "demo");
  const std::string path = ::testing::TempDir() + "BENCH_envelope_check.json";
  benchutil::write_json(path, payload);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  auto parsed = obs::parse_json(ss.str());
  ASSERT_TRUE(obs::is_bench_report(parsed));
  EXPECT_EQ(parsed.find("meta")->find("experiment")->s, "envelope_check");
  EXPECT_DOUBLE_EQ(parsed.find("series")->find("points")->number(), 3);

  // Re-writing an already-enveloped value must not double-wrap.
  benchutil::write_json(path, parsed);
  std::ifstream in2(path);
  std::stringstream ss2;
  ss2 << in2.rdbuf();
  auto parsed2 = obs::parse_json(ss2.str());
  EXPECT_EQ(parsed2.find("series")->find("points")->number(), 3);
  EXPECT_EQ(parsed2.dump(), parsed.dump());
}

TEST(BenchUtil, FitRecoversExactPowerLaw) {
  // its = 7 * P^0.25 exactly.
  std::vector<std::pair<int, double>> pts;
  for (int p : {8, 16, 32, 64, 128})
    pts.push_back({p, 7.0 * std::pow(p, 0.25)});
  EXPECT_NEAR(benchutil::fit_iteration_growth(pts), 0.25, 1e-12);
}

TEST(BenchUtil, FitHandlesFlatCounts) {
  std::vector<std::pair<int, double>> pts = {{8, 20}, {16, 20}, {32, 20}};
  EXPECT_NEAR(benchutil::fit_iteration_growth(pts), 0.0, 1e-12);
}

TEST(BenchUtil, MeshFactoriesContrastAsExpected) {
  auto shuffled = benchutil::make_shuffled_wing(3000);
  auto ordered = benchutil::make_ordered_wing(3000);
  EXPECT_EQ(shuffled.num_vertices(), ordered.num_vertices());
  EXPECT_LT(ordered.bandwidth(), shuffled.bandwidth() / 2);
}

TEST(BenchUtil, CalibratedWorkScalesWithFillAndPrecision) {
  auto m = benchutil::make_ordered_wing(2000);
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfd::EulerDiscretization disc(m, cfg);
  auto w0 = benchutil::calibrate_work(disc, 0, false);
  auto w1 = benchutil::calibrate_work(disc, 1, false);
  auto w0f = benchutil::calibrate_work(disc, 0, true);
  EXPECT_GT(w0.flux_flops_per_edge, 10.0);
  EXPECT_GT(w1.sparse_bytes_per_vertex_it, w0.sparse_bytes_per_vertex_it);
  EXPECT_LT(w0f.sparse_bytes_per_vertex_it, w0.sparse_bytes_per_vertex_it);
  EXPECT_EQ(w0.nb, 4);
}

TEST(BenchUtil, ProbeNksReportsConsistentCounts) {
  auto m = benchutil::make_ordered_wing(1200);
  solver::SchwarzOptions so;
  so.type = solver::SchwarzType::kBlockJacobi;
  so.fill_level = 0;
  auto probe = benchutil::probe_nks(m, 4, so, 3);
  EXPECT_EQ(probe.subdomains, 4);
  EXPECT_EQ(probe.steps, 3);
  EXPECT_GT(probe.total_linear_its, 0);
  EXPECT_NEAR(probe.linear_its_per_step,
              static_cast<double>(probe.total_linear_its) / probe.steps,
              1e-9);
  EXPECT_GT(probe.wall_seconds, 0);
}

TEST(BenchUtil, SurfaceLawFromEachPartitioner) {
  auto m = benchutil::make_ordered_wing(3000);
  for (auto kind : {benchutil::Partitioner::kKway,
                    benchutil::Partitioner::kBalanceFirst,
                    benchutil::Partitioner::kMultilevel}) {
    auto law = benchutil::measure_surface_law(m, {4, 8, 16}, kind);
    EXPECT_GT(law.ghost_coeff, 0) << static_cast<int>(kind);
    EXPECT_GT(law.edges_per_vertex, 5.0);
  }
}

}  // namespace
