// Shared-memory execution layer tests: pool chunking/nesting/exceptions,
// the fixed-block deterministic reductions, edge-coloring validity on
// shuffled wing meshes, level-schedule correctness for the ILU triangular
// factors, bit-identity of the parallel kernels (residual, SpMV, ILU
// trisolve, dot) across thread counts, and byte-identical psi-NKS
// checkpoints at 1/2/4 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cfd/euler.hpp"
#include "cfd/problem.hpp"
#include "exec/pool.hpp"
#include "exec/reduce.hpp"
#include "mesh/generator.hpp"
#include "mesh/mesh.hpp"
#include "mesh/ordering.hpp"
#include "solver/newton.hpp"
#include "sparse/ilu.hpp"

namespace {

using namespace f3d;

// --- pool ---------------------------------------------------------------

TEST(ThreadPool, CoversRangeExactlyOnceAtAnyThreadCount) {
  for (int nt : {1, 2, 3, 4, 7}) {
    exec::ThreadPool pool(nt);
    const std::int64_t n = 10007;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(
        0, n,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
        },
        /*grain=*/64);
    for (std::int64_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " nt=" << nt;
  }
}

TEST(ThreadPool, EmptyAndTinyRangesRunInline) {
  exec::ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> seen;
  pool.parallel_for(3, 7, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) seen.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(seen, (std::vector<int>{3, 4, 5, 6}));  // one inline chunk
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  exec::ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(
      0, 8,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
          exec::pool().parallel_for(
              0, 10,
              [&](std::int64_t l2, std::int64_t h2) {
                total.fetch_add(static_cast<int>(h2 - l2));
              },
              /*grain=*/1);
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  exec::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   0, 1000,
                   [&](std::int64_t lo, std::int64_t) {
                     if (lo >= 0) throw std::runtime_error("boom");
                   },
                   /*grain=*/64),
               std::runtime_error);
  // The pool must still be usable after a failed job.
  std::atomic<int> n{0};
  pool.parallel_for(
      0, 100, [&](std::int64_t lo, std::int64_t hi) {
        n.fetch_add(static_cast<int>(hi - lo));
      },
      /*grain=*/16);
  EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPool, ThreadScopeRestoresGlobalCount) {
  const int before = exec::num_threads();
  {
    exec::ThreadScope scope(3);
    EXPECT_EQ(exec::num_threads(), 3);
    {
      exec::ThreadScope inner(2);
      EXPECT_EQ(exec::num_threads(), 2);
    }
    EXPECT_EQ(exec::num_threads(), 3);
  }
  EXPECT_EQ(exec::num_threads(), before);
}

// --- deterministic reductions --------------------------------------------

TEST(Reduce, DotIsBitIdenticalAcrossThreadCounts) {
  // Size straddles several reduction blocks plus a ragged tail.
  const std::int64_t n = 3 * exec::kReduceBlock + 1234;
  std::vector<double> x(n), y(n);
  for (std::int64_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.001 * static_cast<double>(i)) * 1e3;
    y[i] = std::cos(0.0017 * static_cast<double>(i));
  }
  double ref = 0;
  {
    exec::ThreadScope scope(1);
    ref = exec::dot(n, x.data(), y.data());
  }
  for (int nt : {2, 3, 4, 8}) {
    exec::ThreadScope scope(nt);
    const double d = exec::dot(n, x.data(), y.data());
    EXPECT_EQ(std::memcmp(&d, &ref, sizeof d), 0) << "nt=" << nt;
  }
  // And close to the serial left-to-right sum.
  double serial = 0;
  for (std::int64_t i = 0; i < n; ++i) serial += x[i] * y[i];
  EXPECT_NEAR(ref, serial, 1e-6 * std::abs(serial) + 1e-9);
}

TEST(Reduce, SumAndMaxAbsAgreeWithSerial) {
  const std::int64_t n = exec::kReduceBlock + 37;
  std::vector<double> x(n);
  for (std::int64_t i = 0; i < n; ++i)
    x[i] = (i % 7 == 0 ? -1.0 : 1.0) * 0.5 * static_cast<double>(i % 100);
  exec::ThreadScope scope(4);
  double serial_sum = 0, serial_max = 0;
  for (double v : x) {
    serial_sum += v;
    serial_max = std::max(serial_max, std::abs(v));
  }
  EXPECT_NEAR(exec::sum(n, x.data()), serial_sum, 1e-9);
  EXPECT_EQ(exec::max_abs(n, x.data()), serial_max);
}

// --- edge coloring -------------------------------------------------------

void check_coloring(const mesh::UnstructuredMesh& m) {
  const auto col = mesh::edge_color_classes(m);
  ASSERT_GT(col.num_colors(), 0);
  // Classes partition the edge set.
  ASSERT_EQ(static_cast<int>(col.edge.size()), m.num_edges());
  std::vector<int> seen(m.num_edges(), 0);
  const auto& edges = m.edges();
  for (int c = 0; c < col.num_colors(); ++c) {
    std::vector<char> vertex_used(m.num_vertices(), 0);
    for (int p = col.class_ptr[c]; p < col.class_ptr[c + 1]; ++p) {
      const int e = col.edge[p];
      ASSERT_GE(e, 0);
      ASSERT_LT(e, m.num_edges());
      ++seen[e];
      // Conflict-freedom: no two edges of a class share a vertex.
      for (int v : {edges[e][0], edges[e][1]}) {
        ASSERT_FALSE(vertex_used[v]) << "class " << c << " vertex " << v;
        vertex_used[v] = 1;
      }
      // Ascending edge ids within a class (fixed accumulation order).
      if (p > col.class_ptr[c]) {
        ASSERT_LT(col.edge[p - 1], col.edge[p]);
      }
    }
  }
  for (int e = 0; e < m.num_edges(); ++e) ASSERT_EQ(seen[e], 1);
}

TEST(EdgeColoring, ValidOnShuffledWingsOfSeveralSizes) {
  for (int target : {200, 1200, 5000}) {
    auto m = mesh::generate_wing_mesh_with_size(target);
    mesh::shuffle_mesh(m, 17);
    check_coloring(m);
  }
}

TEST(EdgeColoring, ValidAfterBestOrdering) {
  auto m = mesh::generate_wing_mesh_with_size(1500);
  mesh::shuffle_mesh(m, 3);
  mesh::apply_best_ordering(m);
  check_coloring(m);
}

// --- level schedules -----------------------------------------------------

// Laplacian-like CSR of the mesh vertex graph: diagonally dominant, so
// ILU factors exist without pivoting.
sparse::Csr<double> graph_matrix(const mesh::UnstructuredMesh& m) {
  const int n = m.num_vertices();
  std::vector<std::vector<int>> adj(n);
  for (const auto& e : m.edges()) {
    adj[e[0]].push_back(e[1]);
    adj[e[1]].push_back(e[0]);
  }
  sparse::Csr<double> a;
  a.n = n;
  a.ptr.push_back(0);
  for (int i = 0; i < n; ++i) {
    auto& nb = adj[i];
    nb.push_back(i);
    std::sort(nb.begin(), nb.end());
    for (int j : nb) {
      a.col.push_back(j);
      a.val.push_back(j == i ? static_cast<double>(nb.size()) + 1.0 : -1.0);
    }
    a.ptr.push_back(static_cast<int>(a.col.size()));
  }
  return a;
}

void check_schedule(const sparse::IluPattern& pat) {
  const auto fwd = sparse::lower_levels(pat);
  const auto bwd = sparse::upper_levels(pat);
  // Both schedules cover every row exactly once.
  for (const auto* sch : {&fwd, &bwd}) {
    ASSERT_EQ(static_cast<int>(sch->rows.size()), pat.n);
    std::vector<int> seen(pat.n, 0);
    for (int r : sch->rows) ++seen[r];
    for (int i = 0; i < pat.n; ++i) ASSERT_EQ(seen[i], 1);
  }
  // Dependencies live in strictly earlier levels.
  std::vector<int> lev_fwd(pat.n), lev_bwd(pat.n);
  for (int l = 0; l < fwd.num_levels(); ++l)
    for (int p = fwd.level_ptr[l]; p < fwd.level_ptr[l + 1]; ++p)
      lev_fwd[fwd.rows[p]] = l;
  for (int l = 0; l < bwd.num_levels(); ++l)
    for (int p = bwd.level_ptr[l]; p < bwd.level_ptr[l + 1]; ++p)
      lev_bwd[bwd.rows[p]] = l;
  for (int i = 0; i < pat.n; ++i) {
    for (int p = pat.ptr[i]; p < pat.diag[i]; ++p)
      ASSERT_LT(lev_fwd[pat.col[p]], lev_fwd[i]);
    for (int p = pat.diag[i] + 1; p < pat.ptr[i + 1]; ++p)
      ASSERT_LT(lev_bwd[pat.col[p]], lev_bwd[i]);
  }
}

TEST(LevelSchedule, ValidOnShuffledWingsAndFillLevels) {
  for (int target : {300, 2000}) {
    auto m = mesh::generate_wing_mesh_with_size(target);
    mesh::shuffle_mesh(m, 11);
    const auto a = graph_matrix(m);
    for (int fill : {0, 1}) {
      const auto pat = sparse::ilu_symbolic(a, fill);
      check_schedule(pat);
    }
  }
}

TEST(LevelSchedule, PointSolveMatchesSerialBitwise) {
  auto m = mesh::generate_wing_mesh_with_size(2000);
  mesh::shuffle_mesh(m, 5);
  const auto a = graph_matrix(m);
  const auto pat = sparse::ilu_symbolic(a, 1);
  const auto ilu = sparse::ilu_factor_point<double>(a, pat);
  const auto fwd = sparse::lower_levels(pat);
  const auto bwd = sparse::upper_levels(pat);
  std::vector<double> b(a.n), x_serial(a.n), x_par(a.n);
  for (int i = 0; i < a.n; ++i) b[i] = std::sin(0.1 * i) + 2.0;
  ilu.solve(b.data(), x_serial.data());
  for (int nt : {1, 2, 4}) {
    exec::ThreadScope scope(nt);
    std::fill(x_par.begin(), x_par.end(), 0.0);
    ilu.solve_levels(fwd, bwd, b.data(), x_par.data());
    EXPECT_EQ(std::memcmp(x_serial.data(), x_par.data(),
                          x_serial.size() * sizeof(double)),
              0)
        << "nt=" << nt;
  }
}

TEST(LevelSchedule, BlockSolveMatchesSerialBitwise) {
  auto m = mesh::generate_wing_mesh_with_size(800);
  mesh::shuffle_mesh(m, 9);
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  auto jac = disc.allocate_jacobian();
  disc.jacobian(disc.make_freestream_field(), jac);
  for (int i = 0; i < jac.nrows; ++i) {  // ptc-style diagonal term
    double* blk = jac.find_block(i, i);
    for (int c = 0; c < jac.nb; ++c)
      blk[static_cast<std::size_t>(c) * jac.nb + c] += 1.0;
  }
  const auto pat = sparse::ilu_symbolic(jac, 0);
  const auto ilu = sparse::ilu_factor_block<double>(jac, pat);
  const auto fwd = sparse::lower_levels(pat);
  const auto bwd = sparse::upper_levels(pat);
  const int n = jac.scalar_n();
  std::vector<double> b(n), x_serial(n), x_par(n);
  for (int i = 0; i < n; ++i) b[i] = 1.0 + 0.01 * (i % 31);
  ilu.solve(b.data(), x_serial.data());
  for (int nt : {1, 2, 4}) {
    exec::ThreadScope scope(nt);
    std::fill(x_par.begin(), x_par.end(), 0.0);
    ilu.solve_levels(fwd, bwd, b.data(), x_par.data());
    EXPECT_EQ(std::memcmp(x_serial.data(), x_par.data(),
                          x_serial.size() * sizeof(double)),
              0)
        << "nt=" << nt;
  }
}

// --- parallel kernels bit-identical across thread counts ------------------

TEST(ColoredKernels, ResidualBitIdenticalAcrossThreadCounts) {
  auto m = mesh::generate_wing_mesh_with_size(1500);
  mesh::shuffle_mesh(m, 2);
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 2;  // exercises gradients + limiters too
  cfd::EulerDiscretization disc(m, cfg);
  auto q = disc.make_freestream_field();
  // Perturb so the limiter actually limits somewhere.
  for (std::size_t i = 0; i < q.data().size(); ++i)
    q.data()[i] += 1e-2 * std::sin(0.3 * static_cast<double>(i));
  std::vector<double> r_ref, r;
  {
    exec::ThreadScope scope(1);
    disc.residual(q, r_ref);
  }
  for (int nt : {2, 4}) {
    exec::ThreadScope scope(nt);
    disc.residual(q, r);
    ASSERT_EQ(r.size(), r_ref.size());
    EXPECT_EQ(std::memcmp(r.data(), r_ref.data(), r.size() * sizeof(double)),
              0)
        << "nt=" << nt;
  }
}

TEST(ColoredKernels, SpmvBitIdenticalAcrossThreadCounts) {
  auto m = mesh::generate_wing_mesh_with_size(1000);
  mesh::shuffle_mesh(m, 8);
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  auto jac = disc.allocate_jacobian();
  disc.jacobian(disc.make_freestream_field(), jac);
  const int n = jac.scalar_n();
  std::vector<double> x(n), y_ref(n), y(n);
  for (int i = 0; i < n; ++i) x[i] = std::cos(0.05 * i);
  {
    exec::ThreadScope scope(1);
    jac.spmv(x.data(), y_ref.data());
  }
  for (int nt : {2, 4}) {
    exec::ThreadScope scope(nt);
    jac.spmv(x.data(), y.data());
    EXPECT_EQ(std::memcmp(y.data(), y_ref.data(), y.size() * sizeof(double)),
              0)
        << "nt=" << nt;
  }
}

// --- full solver: byte-identical checkpoints at 1/2/4 threads -------------

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

TEST(Determinism, PtcCheckpointsByteIdenticalAt124Threads) {
  auto run = [&](int nt, const std::string& ck_path,
                 std::vector<double>* x_out) {
    std::remove(ck_path.c_str());
    exec::ThreadScope scope(nt);
    auto m = mesh::generate_wing_mesh(
        mesh::WingMeshConfig{.nx = 6, .ny = 3, .nz = 3});
    cfd::FlowConfig cfg;
    cfg.model = cfd::Model::kIncompressible;
    cfg.order = 1;
    cfd::EulerDiscretization disc(m, cfg);
    cfd::EulerProblem prob(disc, -1.0);
    auto x = prob.initial_state();
    solver::PtcOptions opts;
    opts.max_steps = 6;
    opts.rtol = 1e-10;
    opts.cfl0 = 10.0;
    opts.num_subdomains = 4;
    opts.schwarz.overlap = 1;
    opts.schwarz.fill_level = 1;
    opts.recovery.enabled = true;
    opts.recovery.checkpoint_path = ck_path;
    opts.recovery.checkpoint_every = 2;
    auto res = solver::ptc_solve(prob, x, opts);
    EXPECT_GT(res.steps, 0);
    *x_out = x;
  };

  // One shared path: the checkpoint's recovery log records the path it
  // was written to, so different filenames would differ by construction.
  std::vector<double> x1, x2, x4;
  const std::string ck = temp_path("f3d_exec_ck.bin");
  run(1, ck, &x1);
  const auto b1 = read_bytes(ck);
  run(2, ck, &x2);
  const auto b2 = read_bytes(ck);
  run(4, ck, &x4);
  const auto b4 = read_bytes(ck);

  // Final states bit-identical...
  ASSERT_EQ(x1.size(), x2.size());
  ASSERT_EQ(x1.size(), x4.size());
  EXPECT_EQ(std::memcmp(x1.data(), x2.data(), x1.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(x1.data(), x4.data(), x1.size() * sizeof(double)), 0);

  // ...and the checkpoint files byte-identical (the resilience layer's
  // replay guarantee survives threading).
  ASSERT_FALSE(b1.empty());
  EXPECT_EQ(b1, b2);
  EXPECT_EQ(b1, b4);
  std::remove(ck.c_str());
}

}  // namespace
