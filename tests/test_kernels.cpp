// Focused kernel tests: the dense block helpers that back block-ILU
// (right-solve identity), the compile-time-specialized SpMV dispatch, and
// scalar-storage conversions.

#include <gtest/gtest.h>

#include <cmath>

#include "common/densemat.hpp"
#include "common/rng.hpp"
#include "mesh/generator.hpp"
#include "sparse/assembly.hpp"

namespace {

using namespace f3d;

TEST(DenseKernels, RightLuSolveBlockInvertsFromTheRight) {
  // B := B * (LU)^{-1}  =>  (result) * A == B_original.
  const int nb = 4;
  Rng rng(3);
  double a[16], b[16], b_orig[16], lu[16];
  for (int i = 0; i < 16; ++i) {
    a[i] = rng.uniform(-1, 1);
    b[i] = rng.uniform(-1, 1);
  }
  for (int i = 0; i < nb; ++i) a[i * nb + i] += 4.0;  // invertible
  std::copy(b, b + 16, b_orig);
  std::copy(a, a + 16, lu);
  ASSERT_TRUE(dense::lu_factor(nb, lu));
  dense::right_lu_solve_block(nb, lu, b);

  // Check b * a == b_orig.
  for (int i = 0; i < nb; ++i)
    for (int j = 0; j < nb; ++j) {
      double s = 0;
      for (int k = 0; k < nb; ++k) s += b[i * nb + k] * a[k * nb + j];
      EXPECT_NEAR(s, b_orig[i * nb + j], 1e-11) << i << "," << j;
    }
}

TEST(DenseKernels, RightSolveConsistentWithLeftSolveViaTranspose) {
  // For B = I: right_lu_solve_block gives A^{-1}; lu_solve_block gives
  // A^{-1} too; they must agree.
  const int nb = 3;
  double a[9] = {7, 1, 2, 1, 8, 3, 2, 3, 9};
  double lu[9];
  std::copy(a, a + 9, lu);
  ASSERT_TRUE(dense::lu_factor(nb, lu));
  double left[9] = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  double right[9] = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  dense::lu_solve_block(nb, lu, left);
  dense::right_lu_solve_block(nb, lu, right);
  for (int i = 0; i < 9; ++i) EXPECT_NEAR(left[i], right[i], 1e-12);
}

TEST(SpmvDispatch, FixedKernelsMatchGenericForAllBlockSizes) {
  auto m = mesh::generate_box_mesh(3, 3, 3);
  auto s = sparse::stencil_from_mesh(m);
  for (int nb : {1, 2, 3, 4, 5, 6}) {
    auto fn = sparse::synthetic_values(s, nb);
    auto a = sparse::build_bcsr(s, nb, fn);
    Rng rng(nb);
    std::vector<double> x(static_cast<std::size_t>(a.scalar_n()));
    for (auto& v : x) v = rng.uniform(-1, 1);
    std::vector<double> y1(x.size()), y2(x.size());
    a.spmv(x.data(), y1.data());          // dispatched
    a.spmv_generic(x.data(), y2.data());  // reference
    for (std::size_t i = 0; i < x.size(); ++i)
      ASSERT_DOUBLE_EQ(y1[i], y2[i]) << "nb=" << nb;
  }
}

TEST(SpmvDispatch, FixedTemplateDirectCall) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  auto a = sparse::build_bcsr(s, 5, fn);
  std::vector<double> x(static_cast<std::size_t>(a.scalar_n()), 1.0);
  std::vector<double> y1(x.size()), y2(x.size());
  a.spmv_fixed<5>(x.data(), y1.data());
  a.spmv_generic(x.data(), y2.data());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(Conversion, CsrFloatRoundTripAccuracy) {
  auto m = mesh::generate_box_mesh(3, 2, 2);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  auto a = sparse::build_point_csr(s, 3, fn, sparse::FieldLayout::kInterlaced);
  auto af = a.convert<float>();
  auto back = af.convert<double>();
  EXPECT_EQ(a.ptr, back.ptr);
  EXPECT_EQ(a.col, back.col);
  for (std::size_t i = 0; i < a.val.size(); ++i)
    EXPECT_NEAR(a.val[i], back.val[i], 1e-6 * (1 + std::abs(a.val[i])));
}

TEST(Stencil, SingleTetIsFullyCoupled) {
  std::vector<std::array<double, 3>> coords = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<std::array<int, 4>> tets = {{0, 1, 2, 3}};
  mesh::UnstructuredMesh m(std::move(coords), std::move(tets), {});
  m.finalize();
  auto s = sparse::stencil_from_mesh(m);
  EXPECT_EQ(s.n, 4);
  EXPECT_EQ(s.nnz(), 16u);  // dense 4x4 coupling
}

TEST(SyntheticValues, DeterministicAndSeedSensitive) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  auto s = sparse::stencil_from_mesh(m);
  auto f1 = sparse::synthetic_values(s, 1);
  auto f2 = sparse::synthetic_values(s, 1);
  auto f3 = sparse::synthetic_values(s, 2);
  double b1[16], b2[16], b3[16];
  f1(0, 1, 4, b1);
  f2(0, 1, 4, b2);
  f3(0, 1, 4, b3);
  bool same12 = true, same13 = true;
  for (int i = 0; i < 16; ++i) {
    same12 &= b1[i] == b2[i];
    same13 &= b1[i] == b3[i];
  }
  EXPECT_TRUE(same12);
  EXPECT_FALSE(same13);
}

TEST(SyntheticValues, DiagonallyDominant) {
  auto m = mesh::generate_box_mesh(3, 3, 3);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  auto a = sparse::build_bcsr(s, 4, fn);
  // Scalar-level weak dominance check on the expanded matrix.
  auto p = sparse::bcsr_to_point(a);
  for (int i = 0; i < p.n; ++i) {
    double diag = 0, off = 0;
    for (int q = p.ptr[i]; q < p.ptr[i + 1]; ++q) {
      if (p.col[q] == i)
        diag = std::abs(p.val[q]);
      else
        off += std::abs(p.val[q]);
    }
    EXPECT_GT(diag, off) << "row " << i;
  }
}

}  // namespace
