// Tests for the I/O module: VTK structure and round-trippable numbers,
// CSV formatting, and error paths.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cfd/euler.hpp"
#include "io/csv.hpp"
#include "io/vtk.hpp"
#include "mesh/generator.hpp"

namespace {

using namespace f3d;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class TempFile {
public:
  explicit TempFile(const char* name)
      : path_(std::string("/tmp/f3d_test_") + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

private:
  std::string path_;
};

TEST(Vtk, WritesStructurallyValidFile) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  TempFile tf("mesh.vtk");
  io::write_vtk(tf.path(), m);
  auto s = slurp(tf.path());
  EXPECT_NE(s.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
  EXPECT_NE(s.find("POINTS 27 double"), std::string::npos);
  EXPECT_NE(s.find("CELLS 48 240"), std::string::npos);  // 6*8 tets
  EXPECT_NE(s.find("CELL_TYPES 48"), std::string::npos);
}

TEST(Vtk, WritesScalarAndVectorFields) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  const int nv = m.num_vertices();
  io::VtkField scalar{"temp", 1, std::vector<double>(nv, 1.5)};
  io::VtkField vec{"vel", 3, std::vector<double>(nv * 3, 0.25)};
  TempFile tf("fields.vtk");
  io::write_vtk(tf.path(), m, {scalar, vec});
  auto s = slurp(tf.path());
  EXPECT_NE(s.find("POINT_DATA 27"), std::string::npos);
  EXPECT_NE(s.find("SCALARS temp double 1"), std::string::npos);
  EXPECT_NE(s.find("VECTORS vel double"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

TEST(Vtk, RejectsWrongFieldSize) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  io::VtkField bad{"b", 1, std::vector<double>(3, 0.0)};
  TempFile tf("bad.vtk");
  EXPECT_THROW(io::write_vtk(tf.path(), m, {bad}), Error);
}

TEST(Vtk, RejectsUnwritablePath) {
  auto m = mesh::generate_box_mesh(1, 1, 1);
  EXPECT_THROW(io::write_vtk("/nonexistent-dir/x.vtk", m), Error);
}

TEST(Vtk, FlowWriterEmitsDerivedFields) {
  auto m = mesh::generate_box_mesh(2, 2, 2);
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kCompressible;
  cfd::EulerDiscretization disc(m, cfg);
  auto q = disc.make_freestream_field();
  TempFile tf("flow.vtk");
  io::write_flow_vtk(tf.path(), m, cfg, q.data());
  auto s = slurp(tf.path());
  EXPECT_NE(s.find("SCALARS pressure"), std::string::npos);
  EXPECT_NE(s.find("VECTORS velocity"), std::string::npos);
  EXPECT_NE(s.find("SCALARS density"), std::string::npos);
}

TEST(Csv, FormatsHeaderAndRows) {
  io::CsvWriter csv({"p", "its", "time"});
  csv.add_row({128, 22, 2039});
  csv.add_row({256, 24, 1144.5});
  auto s = csv.to_string();
  EXPECT_EQ(s.substr(0, 11), "p,its,time\n");
  EXPECT_NE(s.find("128,22,2039"), std::string::npos);
  EXPECT_NE(s.find("256,24,1144.5"), std::string::npos);
}

TEST(Csv, RoundTripsThroughFile) {
  io::CsvWriter csv({"a", "b"});
  csv.add_row({1.25, -3});
  TempFile tf("t.csv");
  csv.write(tf.path());
  EXPECT_EQ(slurp(tf.path()), csv.to_string());
}

TEST(State, RoundTripsBinary) {
  std::vector<double> x = {1.5, -2.25, 3.14159, 0.0, 1e-300};
  TempFile tf("state.bin");
  io::write_state(tf.path(), x);
  auto y = io::read_state(tf.path());
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(x[i], y[i]);
}

TEST(State, RejectsCorruptFile) {
  TempFile tf("garbage.bin");
  {
    std::ofstream out(tf.path());
    out << "not a state file";
  }
  EXPECT_THROW(io::read_state(tf.path()), Error);
  EXPECT_THROW(io::read_state("/nonexistent/state.bin"), Error);
}

TEST(State, EmptyVectorOk) {
  TempFile tf("empty.bin");
  io::write_state(tf.path(), {});
  EXPECT_TRUE(io::read_state(tf.path()).empty());
}

TEST(Csv, RejectsArityMismatch) {
  io::CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({1.0}), Error);
}

}  // namespace
