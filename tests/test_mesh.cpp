// Tests for the mesh substrate: topology derivation, generators, dual
// metrics (closure = discrete divergence theorem), permutations, graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/error.hpp"
#include "mesh/dual.hpp"
#include "mesh/generator.hpp"
#include "mesh/graph.hpp"
#include "mesh/mesh.hpp"

namespace {

using namespace f3d;
using namespace f3d::mesh;

UnstructuredMesh single_tet() {
  std::vector<std::array<double, 3>> coords = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  std::vector<std::array<int, 4>> tets = {{0, 1, 2, 3}};
  std::vector<BoundaryFace> bf = {
      {{0, 2, 1}, BoundaryTag::kWall},      // z=0, outward -z
      {{0, 1, 3}, BoundaryTag::kFarField},  // y=0, outward -y
      {{0, 3, 2}, BoundaryTag::kFarField},  // x=0, outward -x
      {{1, 2, 3}, BoundaryTag::kFarField},  // slanted
  };
  UnstructuredMesh m(std::move(coords), std::move(tets), std::move(bf));
  m.finalize();
  return m;
}

TEST(Mesh, SingleTetTopology) {
  auto m = single_tet();
  EXPECT_EQ(m.num_vertices(), 4);
  EXPECT_EQ(m.num_tets(), 1);
  EXPECT_EQ(m.num_edges(), 6);
  EXPECT_EQ(m.num_boundary_faces(), 4);
  EXPECT_NEAR(m.tet_volume(0), 1.0 / 6.0, 1e-15);
  EXPECT_NEAR(m.total_volume(), 1.0 / 6.0, 1e-15);
}

TEST(Mesh, EdgesAreUniqueAndSorted) {
  auto m = generate_box_mesh(3, 3, 3);
  std::set<std::array<int, 2>> seen;
  for (const auto& e : m.edges()) {
    EXPECT_LT(e[0], e[1]);
    EXPECT_TRUE(seen.insert(e).second) << "duplicate edge";
  }
}

TEST(Mesh, BoxMeshCounts) {
  const int n = 4;
  auto m = generate_box_mesh(n, n, n);
  EXPECT_EQ(m.num_vertices(), (n + 1) * (n + 1) * (n + 1));
  EXPECT_EQ(m.num_tets(), 6 * n * n * n);
  // Every boundary quad splits into 2 triangles; 6 faces of n^2 quads.
  EXPECT_EQ(m.num_boundary_faces(), 2 * 6 * n * n);
  EXPECT_NEAR(m.total_volume(), 1.0, 1e-12);
}

TEST(Mesh, AllTetsPositivelyOriented) {
  auto m = generate_wing_mesh(WingMeshConfig{});
  for (int t = 0; t < m.num_tets(); ++t) EXPECT_GT(m.tet_volume(t), 0.0);
}

TEST(Mesh, VertexAdjacencySymmetricAndSorted) {
  auto m = generate_box_mesh(3, 2, 2);
  auto a = m.vertex_adjacency();
  const int nv = m.num_vertices();
  ASSERT_EQ(static_cast<int>(a.ptr.size()), nv + 1);
  for (int i = 0; i < nv; ++i) {
    for (int p = a.ptr[i]; p < a.ptr[i + 1]; ++p) {
      int j = a.adj[p];
      if (p > a.ptr[i]) {
        EXPECT_LT(a.adj[p - 1], j);
      }
      // Symmetry: i must appear in j's list.
      bool found = std::binary_search(a.adj.begin() + a.ptr[j],
                                      a.adj.begin() + a.ptr[j + 1], i);
      EXPECT_TRUE(found);
    }
  }
}

TEST(Mesh, PermuteVerticesPreservesTopologyAndGeometry) {
  auto m = generate_box_mesh(3, 3, 3);
  const double vol = m.total_volume();
  const int ne = m.num_edges();
  const int nb = m.num_boundary_faces();

  std::vector<int> perm(m.num_vertices());
  std::iota(perm.rbegin(), perm.rend(), 0);  // reversal permutation
  m.permute_vertices(perm);

  EXPECT_EQ(m.num_edges(), ne);
  EXPECT_EQ(m.num_boundary_faces(), nb);
  EXPECT_NEAR(m.total_volume(), vol, 1e-12);
  for (const auto& e : m.edges()) EXPECT_LT(e[0], e[1]);
}

TEST(Mesh, PermuteVerticesRejectsNonBijection) {
  auto m = single_tet();
  EXPECT_THROW(m.permute_vertices({0, 0, 1, 2}), Error);
  EXPECT_THROW(m.permute_vertices({0, 1, 2}), Error);
}

TEST(Mesh, PermuteEdgesRejectsNonBijection) {
  auto m = single_tet();
  std::vector<int> bad(m.num_edges(), 0);
  EXPECT_THROW(m.permute_edges(bad), Error);
}

TEST(Mesh, ShuffleMeshKeepsInvariants) {
  auto m = generate_wing_mesh(WingMeshConfig{.nx = 8, .ny = 4, .nz = 4});
  const double vol = m.total_volume();
  const int ne = m.num_edges();
  shuffle_mesh(m, 123);
  EXPECT_EQ(m.num_edges(), ne);
  EXPECT_NEAR(m.total_volume(), vol, 1e-12);
  auto dual = compute_dual_metrics(m);
  EXPECT_LT(closure_defect(m, dual), 1e-10);
}

TEST(Mesh, BandwidthSmallForStructuredLargeForShuffled) {
  auto m = generate_box_mesh(6, 6, 6);
  const int bw_structured = m.bandwidth();
  shuffle_mesh(m, 99);
  const int bw_shuffled = m.bandwidth();
  EXPECT_LT(bw_structured, bw_shuffled);
}

// --- Dual metrics -----------------------------------------------------

TEST(Dual, SingleTetVolumes) {
  auto m = single_tet();
  auto d = compute_dual_metrics(m);
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(d.vertex_volume[i], (1.0 / 6.0) / 4.0, 1e-15);
}

TEST(Dual, VolumesSumToMeshVolume) {
  auto m = generate_wing_mesh(WingMeshConfig{.nx = 8, .ny = 4, .nz = 4});
  auto d = compute_dual_metrics(m);
  double s = std::accumulate(d.vertex_volume.begin(), d.vertex_volume.end(), 0.0);
  EXPECT_NEAR(s, m.total_volume(), 1e-10 * std::abs(m.total_volume()));
}

TEST(Dual, ClosureOnSingleTet) {
  auto m = single_tet();
  auto d = compute_dual_metrics(m);
  EXPECT_LT(closure_defect(m, d), 1e-12);
}

TEST(Dual, ClosureOnBoxMesh) {
  auto m = generate_box_mesh(4, 3, 2);
  auto d = compute_dual_metrics(m);
  EXPECT_LT(closure_defect(m, d), 1e-12);
}

TEST(Dual, ClosureOnWarpedWingMesh) {
  auto m = generate_wing_mesh(WingMeshConfig{});
  auto d = compute_dual_metrics(m);
  EXPECT_LT(closure_defect(m, d), 1e-10);
}

TEST(Dual, BoundaryNormalsAreOutward) {
  auto m = generate_box_mesh(2, 2, 2);
  auto d = compute_dual_metrics(m);
  const auto& bf = m.boundary_faces();
  for (std::size_t f = 0; f < bf.size(); ++f) {
    // For the unit box, outward normal at a face must point away from the
    // box center (0.5, 0.5, 0.5).
    const auto& v = bf[f].v;
    const auto& c = m.coords();
    std::array<double, 3> cen = {
        (c[v[0]][0] + c[v[1]][0] + c[v[2]][0]) / 3.0 - 0.5,
        (c[v[0]][1] + c[v[1]][1] + c[v[2]][1]) / 3.0 - 0.5,
        (c[v[0]][2] + c[v[1]][2] + c[v[2]][2]) / 3.0 - 0.5};
    const auto& n = d.bface_normal[f];
    EXPECT_GT(cen[0] * n[0] + cen[1] * n[1] + cen[2] * n[2], 0.0);
  }
}

TEST(Dual, BoundaryAreaOfBoxIsSix) {
  auto m = generate_box_mesh(3, 3, 3);
  auto d = compute_dual_metrics(m);
  double area = 0;
  for (const auto& n : d.bface_normal)
    area += std::sqrt(n[0] * n[0] + n[1] * n[1] + n[2] * n[2]);
  EXPECT_NEAR(area, 6.0, 1e-12);
}

TEST(Dual, EdgeNormalsFollowEdgePermutation) {
  auto m = generate_box_mesh(3, 2, 2);
  auto d0 = compute_dual_metrics(m);
  std::vector<int> order(m.num_edges());
  std::iota(order.rbegin(), order.rend(), 0);
  m.permute_edges(order);
  auto d1 = compute_dual_metrics(m);
  const int ne = m.num_edges();
  for (int e = 0; e < ne; ++e)
    for (int ddim = 0; ddim < 3; ++ddim)
      EXPECT_DOUBLE_EQ(d1.edge_normal[e][ddim],
                       d0.edge_normal[order[e]][ddim]);
}

// --- Generators --------------------------------------------------------

TEST(Generator, WingMeshHasWallAndFarField) {
  auto m = generate_wing_mesh(WingMeshConfig{});
  int walls = 0, far = 0;
  for (const auto& f : m.boundary_faces()) {
    if (f.tag == BoundaryTag::kWall) ++walls;
    if (f.tag == BoundaryTag::kFarField) ++far;
  }
  EXPECT_GT(walls, 0);
  EXPECT_GT(far, 0);
  // Bottom wall of a nx*ny grid = 2*nx*ny triangles.
  EXPECT_EQ(walls, 2 * 16 * 8);
}

TEST(Generator, WingBumpRaisesBottomWall) {
  WingMeshConfig cfg;
  auto flat = generate_box_mesh(cfg.nx, cfg.ny, cfg.nz, cfg.len_x, cfg.len_y,
                                cfg.len_z);
  auto wing = generate_wing_mesh(cfg);
  // Wing mesh volume must be smaller: the bump displaces volume.
  EXPECT_LT(wing.total_volume(), flat.total_volume());
  EXPECT_GT(wing.total_volume(), 0.9 * flat.total_volume());
}

TEST(Generator, GradedMeshClustersNearWall) {
  WingMeshConfig flat;
  WingMeshConfig graded = flat;
  graded.z_grading = 2.0;
  auto mf = generate_wing_mesh(flat);
  auto mg = generate_wing_mesh(graded);
  // Same topology, valid dual, and a smaller first off-wall spacing.
  EXPECT_EQ(mf.num_tets(), mg.num_tets());
  auto df = compute_dual_metrics(mf);
  auto dg = compute_dual_metrics(mg);
  EXPECT_LT(closure_defect(mg, dg), 1e-10);
  // First interior layer sits lower in the graded mesh: compare the
  // minimum positive z among vertices off the wall at (0,0,*) column.
  auto first_layer_z = [&](const UnstructuredMesh& m) {
    double zmin = 1e30;
    for (const auto& p : m.coords())
      if (p[0] < 1e-12 && p[1] < 1e-12 && p[2] > 1e-12)
        zmin = std::min(zmin, p[2]);
    return zmin;
  };
  EXPECT_LT(first_layer_z(mg), 0.6 * first_layer_z(mf));
  (void)df;
}

TEST(Generator, SizeTargetingIsClose) {
  auto m = generate_wing_mesh_with_size(5000);
  EXPECT_GT(m.num_vertices(), 2000);
  EXPECT_LE(m.num_vertices(), 5000 * 2);
}

// --- Graph utilities ---------------------------------------------------

TEST(Graph, BuildFromEdgesMatchesMeshAdjacency) {
  auto m = generate_box_mesh(3, 2, 2);
  auto a = m.vertex_adjacency();
  auto g = build_graph(m.num_vertices(), m.edges());
  EXPECT_EQ(a.ptr, g.ptr);
  EXPECT_EQ(a.adj, g.adj);
}

TEST(Graph, BfsLevelsOnPath) {
  // Path graph 0-1-2-3.
  std::vector<std::array<int, 2>> edges = {{0, 1}, {1, 2}, {2, 3}};
  auto g = build_graph(4, edges);
  auto d = bfs_levels(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Graph, BfsRespectsMask) {
  std::vector<std::array<int, 2>> edges = {{0, 1}, {1, 2}, {2, 3}};
  auto g = build_graph(4, edges);
  std::vector<char> mask = {1, 0, 1, 1};  // vertex 1 removed
  auto d = bfs_levels(g, 0, mask);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], -1);
  EXPECT_EQ(d[2], -1);  // unreachable without vertex 1
}

TEST(Graph, PseudoPeripheralOnPathIsEndpoint) {
  std::vector<std::array<int, 2>> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  auto g = build_graph(5, edges);
  int v = pseudo_peripheral_vertex(g, 2);
  EXPECT_TRUE(v == 0 || v == 4);
}

TEST(Graph, ConnectedComponentsCountsPieces) {
  // Two components: 0-1-2 and 3-4.
  std::vector<std::array<int, 2>> edges = {{0, 1}, {1, 2}, {3, 4}};
  auto g = build_graph(5, edges);
  std::vector<int> comp;
  EXPECT_EQ(connected_components(g, comp), 2);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(Graph, ConnectedComponentsWithMask) {
  // Path 0-1-2-3; masking out 1 splits it.
  std::vector<std::array<int, 2>> edges = {{0, 1}, {1, 2}, {2, 3}};
  auto g = build_graph(4, edges);
  std::vector<char> mask = {1, 0, 1, 1};
  std::vector<int> comp;
  EXPECT_EQ(connected_components(g, comp, mask), 2);
  EXPECT_EQ(comp[1], -1);
}

}  // namespace
