// Tests for the partitioners: coverage, balance/connectivity contrasts
// (the Figure 4 phenomenon), overlap expansion, and ghost statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mesh/generator.hpp"
#include "partition/partition.hpp"

namespace {

using namespace f3d;
using namespace f3d::part;

mesh::Graph wing_graph(int nx = 10, int ny = 6, int nz = 6) {
  auto m = mesh::generate_wing_mesh(mesh::WingMeshConfig{.nx = nx, .ny = ny, .nz = nz});
  return mesh::build_graph(m.num_vertices(), m.edges());
}

TEST(Partition, KwayCoversAllVertices) {
  auto g = wing_graph();
  for (int np : {1, 2, 4, 8, 16}) {
    auto p = kway_grow(g, np);
    EXPECT_EQ(p.nparts, np);
    std::set<int> used(p.part.begin(), p.part.end());
    EXPECT_EQ(static_cast<int>(used.size()), np) << np << " parts";
    for (int v : p.part) EXPECT_TRUE(v >= 0 && v < np);
  }
}

TEST(Partition, KwayPartsAreConnected) {
  auto g = wing_graph();
  auto p = kway_grow(g, 8);
  auto q = evaluate(g, p);
  // Greedy BFS growth produces connected parts (reseeding only occurs on
  // disconnected graphs, and the mesh is connected).
  EXPECT_EQ(q.max_components, 1);
  EXPECT_EQ(q.total_components, 8);
}

TEST(Partition, KwayBalanceIsReasonable) {
  auto g = wing_graph();
  auto p = kway_grow(g, 8);
  auto q = evaluate(g, p);
  EXPECT_LT(q.imbalance, 1.6);
  EXPECT_GT(q.min_size, 0);
}

TEST(Partition, BalanceFirstIsNearPerfectlyBalanced) {
  auto g = wing_graph();
  auto p = balance_first(g, 8);
  auto q = evaluate(g, p);
  EXPECT_LE(q.max_size - q.min_size, 8);  // striping: near-exact balance
  EXPECT_LT(q.imbalance, 1.05);
}

TEST(Partition, BalanceFirstFragmentsSubdomains) {
  // The p-MeTiS emulation must create disconnected pieces per part —
  // that's the mechanism the paper blames for its worse convergence.
  auto g = wing_graph();
  auto pk = kway_grow(g, 8);
  auto pb = balance_first(g, 8, 4);
  auto qk = evaluate(g, pk);
  auto qb = evaluate(g, pb);
  EXPECT_GT(qb.total_components, qk.total_components);
  EXPECT_GE(qb.max_components, 2);
}

TEST(Partition, EdgeCutGrowsWithParts) {
  auto g = wing_graph();
  auto q2 = evaluate(g, kway_grow(g, 2));
  auto q16 = evaluate(g, kway_grow(g, 16));
  EXPECT_GT(q16.edge_cut, q2.edge_cut);
}

TEST(Partition, DeterministicInSeed) {
  auto g = wing_graph();
  auto p1 = kway_grow(g, 4, 7);
  auto p2 = kway_grow(g, 4, 7);
  EXPECT_EQ(p1.part, p2.part);
}

TEST(Partition, SinglePartTrivial) {
  auto g = wing_graph(4, 3, 3);
  auto p = kway_grow(g, 1);
  for (int v : p.part) EXPECT_EQ(v, 0);
  auto q = evaluate(g, p);
  EXPECT_EQ(q.edge_cut, 0);
  EXPECT_DOUBLE_EQ(q.imbalance, 1.0);
}

TEST(Overlap, LevelZeroIsOwnedSet) {
  auto g = wing_graph(6, 4, 4);
  auto p = kway_grow(g, 4);
  auto regions = overlap_expand(g, p, 0);
  for (int s = 0; s < 4; ++s) {
    for (int v : regions[s]) EXPECT_EQ(p.part[v], s);
    int count = 0;
    for (int v = 0; v < p.num_vertices(); ++v) count += p.part[v] == s;
    EXPECT_EQ(static_cast<int>(regions[s].size()), count);
  }
}

TEST(Overlap, GrowsMonotonicallyAndIsSorted) {
  auto g = wing_graph(6, 4, 4);
  auto p = kway_grow(g, 4);
  auto r0 = overlap_expand(g, p, 0);
  auto r1 = overlap_expand(g, p, 1);
  auto r2 = overlap_expand(g, p, 2);
  for (int s = 0; s < 4; ++s) {
    EXPECT_LT(r0[s].size(), r1[s].size());
    EXPECT_LE(r1[s].size(), r2[s].size());
    EXPECT_TRUE(std::is_sorted(r1[s].begin(), r1[s].end()));
    // r0 subset of r1.
    EXPECT_TRUE(std::includes(r1[s].begin(), r1[s].end(), r0[s].begin(),
                              r0[s].end()));
  }
}

TEST(Overlap, Level1AddsExactlyBoundaryNeighbors) {
  auto g = wing_graph(6, 4, 4);
  auto p = kway_grow(g, 4);
  auto r1 = overlap_expand(g, p, 1);
  for (int s = 0; s < 4; ++s) {
    for (int v : r1[s]) {
      if (p.part[v] == s) continue;
      // Every overlap vertex must touch an owned vertex.
      bool touches = false;
      for (int e = g.ptr[v]; e < g.ptr[v + 1]; ++e)
        if (p.part[g.adj[e]] == s) touches = true;
      EXPECT_TRUE(touches);
    }
  }
}

TEST(CommStats, GhostsMatchManualCount) {
  auto g = wing_graph(6, 4, 4);
  auto p = kway_grow(g, 4);
  auto cs = comm_stats(g, p);
  // Manual recount for part 0.
  std::set<int> ghosts;
  for (int v = 0; v < p.num_vertices(); ++v) {
    if (p.part[v] != 0) continue;
    for (int e = g.ptr[v]; e < g.ptr[v + 1]; ++e)
      if (p.part[g.adj[e]] != 0) ghosts.insert(g.adj[e]);
  }
  EXPECT_EQ(cs.ghosts_in[0], static_cast<int>(ghosts.size()));
  EXPECT_GT(cs.total_ghosts, 0);
}

TEST(CommStats, GhostFractionGrowsWithParts) {
  // The paper (§2.3.1): with more subdomains a higher fraction of points
  // must be communicated. Check total ghosts grow with the part count.
  auto g = wing_graph();
  auto c4 = comm_stats(g, kway_grow(g, 4));
  auto c16 = comm_stats(g, kway_grow(g, 16));
  EXPECT_GT(c16.total_ghosts, c4.total_ghosts);
}

}  // namespace
