// Tests for the virtual parallel machine: load measurement, the surface
// law fit/extrapolation, the step-time model's qualitative behaviour
// (what Figures 1-2 and Tables 3/5 rely on), and the efficiency
// decomposition identity.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "mesh/generator.hpp"
#include "par/loadmodel.hpp"
#include "par/stepmodel.hpp"
#include "perf/machine.hpp"

namespace {

using namespace f3d;
using namespace f3d::par;

mesh::Graph wing_graph() {
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 14, .ny = 8, .nz = 8});
  return mesh::build_graph(m.num_vertices(), m.edges());
}

TEST(LoadModel, OwnedSumsToTotal) {
  auto g = wing_graph();
  auto p = part::kway_grow(g, 8);
  auto load = measure_load(g, p);
  EXPECT_EQ(load.procs, 8);
  EXPECT_NEAR(load.avg_owned * 8, load.total_vertices, 1e-9);
  EXPECT_GE(load.max_owned, load.avg_owned);
}

TEST(LoadModel, RedundantEdgeWorkGrowsWithParts) {
  auto g = wing_graph();
  auto l4 = measure_load(g, part::kway_grow(g, 4));
  auto l32 = measure_load(g, part::kway_grow(g, 32));
  // Total computed edges = unique + cut (double-counted): the redundant
  // fraction rises with P (Fig 1's observation).
  const double redundant4 = l4.avg_edges * 4 - l4.total_edges;
  const double redundant32 = l32.avg_edges * 32 - l32.total_edges;
  EXPECT_GT(redundant32, redundant4);
  EXPECT_GE(redundant4, 0);
}

TEST(LoadModel, SurfaceFitRoundTrips) {
  auto g = wing_graph();
  std::vector<PartitionLoad> samples;
  for (int np : {4, 8, 16, 32})
    samples.push_back(measure_load(g, part::kway_grow(g, np)));
  auto law = fit_surface_law(samples);
  EXPECT_GT(law.ghost_coeff, 0);
  EXPECT_GT(law.edges_per_vertex, 5.0);  // tets: ~7 edges/vertex
  EXPECT_LT(law.edges_per_vertex, 9.0);
  EXPECT_GE(law.imbalance_coeff, 0.0);
  EXPECT_GE(law.imbalance_at(1000), 1.0);

  // Synthesize at a measured size: ghost prediction within 2x.
  auto synth = synthesize_load(samples[1].total_vertices, 8, law);
  EXPECT_GT(synth.avg_ghosts, samples[1].avg_ghosts * 0.5);
  EXPECT_LT(synth.avg_ghosts, samples[1].avg_ghosts * 2.0);
}

// --- degenerate decompositions (single proc, more parts than vertices,
// --- empty parts after a fail-stop shrink) -------------------------------

TEST(LoadModel, SingleProcHasNoSurfaceQuantities) {
  auto g = wing_graph();
  part::Partition p;
  p.nparts = 1;
  p.part.assign(static_cast<std::size_t>(g.ptr.size()) - 1, 0);
  auto load = measure_load(g, p);
  EXPECT_EQ(load.procs, 1);
  EXPECT_EQ(load.active_procs, 1);
  EXPECT_EQ(load.avg_ghosts, 0.0);
  EXPECT_EQ(load.avg_neighbors, 0.0);
  EXPECT_NEAR(load.avg_owned, load.total_vertices, 1e-12);
  // A P=1 sample cannot constrain the surface law but must not poison
  // the fit with NaNs; alone it yields the defined all-zero law.
  auto law = fit_surface_law({load});
  EXPECT_EQ(law.ghost_coeff, 0.0);
  EXPECT_EQ(law.imbalance_coeff, 0.0);
  EXPECT_TRUE(std::isfinite(law.imbalance_at(1000)));
  // And the all-zero law still synthesizes a finite (commless) load.
  auto synth = synthesize_load(1000, 4, law);
  EXPECT_TRUE(std::isfinite(synth.max_edges));
  EXPECT_EQ(synth.avg_ghosts, 0.0);
}

TEST(LoadModel, MorePartsThanVerticesAveragesOverNonEmpty) {
  // 4 vertices on a path, striped over 16 parts: 12 parts are empty.
  auto g = mesh::build_graph(4, {{{0, 1}}, {{1, 2}}, {{2, 3}}});
  part::Partition p;
  p.nparts = 16;
  p.part = {0, 1, 2, 3};
  auto load = measure_load(g, p);
  EXPECT_EQ(load.procs, 16);
  EXPECT_EQ(load.active_procs, 4);
  // Averages describe the processors that actually hold vertices.
  EXPECT_NEAR(load.avg_owned, 1.0, 1e-12);
  EXPECT_NEAR(load.max_owned, 1.0, 1e-12);
  EXPECT_TRUE(std::isfinite(load.avg_ghosts));
}

TEST(LoadModel, DegenerateSamplesAreSkippedByTheFit) {
  auto g = wing_graph();
  std::vector<PartitionLoad> good;
  for (int np : {4, 8, 16})
    good.push_back(measure_load(g, part::kway_grow(g, np)));
  // The same fit with degenerate samples mixed in: a P=1 load and an
  // all-zero (post-failure, empty) load must be skipped, not averaged.
  std::vector<PartitionLoad> mixed = good;
  part::Partition p1;
  p1.nparts = 1;
  p1.part.assign(static_cast<std::size_t>(g.ptr.size()) - 1, 0);
  mixed.push_back(measure_load(g, p1));
  mixed.push_back(PartitionLoad{});
  auto law_good = fit_surface_law(good);
  auto law_mixed = fit_surface_law(mixed);
  EXPECT_EQ(law_mixed.ghost_coeff, law_good.ghost_coeff);
  EXPECT_EQ(law_mixed.cut_coeff, law_good.cut_coeff);
  EXPECT_EQ(law_mixed.imbalance_coeff, law_good.imbalance_coeff);
  EXPECT_THROW(fit_surface_law({}), Error);
}

TEST(LoadModel, SynthesizedGhostFractionRisesWithProcs) {
  SurfaceLaw law{.edges_per_vertex = 7,
                 .ghost_coeff = 3.0,
                 .cut_coeff = 5.0,
                 .imbalance_coeff = 0.7,
                 .neighbor_base = 12};
  auto l128 = synthesize_load(2.8e6, 128, law);
  auto l1024 = synthesize_load(2.8e6, 1024, law);
  EXPECT_GT(l1024.avg_ghosts / l1024.avg_owned,
            l128.avg_ghosts / l128.avg_owned);
  // Total communicated data still grows with P (Table 3: 2.0 -> 5.3 GB).
  EXPECT_GT(l1024.avg_ghosts * 1024, l128.avg_ghosts * 128);
}

// --- step model ----------------------------------------------------------

WorkCoefficients coeffs() {
  WorkCoefficients w;
  w.nb = 4;
  w.flux_flops_per_edge = 75;
  w.sparse_bytes_per_vertex_it = 2500;
  w.sparse_flops_per_vertex_it = 450;
  return w;
}

SurfaceLaw default_law() {
  // Coefficients in the range the real partition measurements produce
  // for tetrahedral meshes (see LoadModel.SurfaceFitRoundTrips).
  return SurfaceLaw{.edges_per_vertex = 7,
                    .ghost_coeff = 6.0,
                    .cut_coeff = 20.0,
                    .imbalance_coeff = 0.8,
                    .neighbor_base = 12};
}

TEST(StepModel, TimeDropsWithProcs) {
  auto m = perf::asci_red();
  auto law = default_law();
  StepCounts c;
  c.linear_its = 24;
  const double t128 =
      model_step(m, synthesize_load(2.8e6, 128, law), coeffs(), c).total();
  const double t1024 =
      model_step(m, synthesize_load(2.8e6, 1024, law), coeffs(), c).total();
  EXPECT_LT(t1024, t128);
  EXPECT_GT(t1024, t128 / 8.0 * 0.8);  // but sublinear speedup (8x procs)
}

TEST(StepModel, ScatterPercentageGrowsWithProcs) {
  // Table 3: ghost point scatter share rises 3% -> 6% from 128 to 1024.
  auto m = perf::asci_red();
  auto law = default_law();
  StepCounts c;
  c.linear_its = 24;
  auto b128 = model_step(m, synthesize_load(2.8e6, 128, law), coeffs(), c);
  auto b1024 = model_step(m, synthesize_load(2.8e6, 1024, law), coeffs(), c);
  EXPECT_GT(b1024.pct(b1024.t_scatter), b128.pct(b128.t_scatter));
}

TEST(StepModel, EffectiveBandwidthBelowWire) {
  // Table 3's point: application-level effective bandwidth (includes
  // packing and contention) is far below hardware bandwidth.
  auto m = perf::asci_red();
  auto b = model_step(m, synthesize_load(2.8e6, 512, default_law()), coeffs(),
                      StepCounts{});
  EXPECT_GT(b.effective_bw_per_node_mbs, 0);
  EXPECT_LT(b.effective_bw_per_node_mbs, m.net_bw_mbs / 4);
}

TEST(StepModel, GflopsPositiveAndScalesWithMachine) {
  auto law = default_law();
  auto load = synthesize_load(2.8e6, 512, law);
  StepCounts c;
  c.linear_its = 24;
  auto red = model_step(perf::asci_red(), load, coeffs(), c);
  auto t3e = model_step(perf::cray_t3e(), load, coeffs(), c);
  EXPECT_GT(red.gflops(), 0);
  EXPECT_GT(t3e.gflops(), 0);
}

TEST(StepModel, HybridMpiCrossoverMatchesTable5) {
  // Table 5's shape: at 256 nodes 2 MPI ranks/node edge out 2 OpenMP
  // threads (the replicated-array gather is a full memory pass at large
  // subdomains); at 3072 nodes the hybrid wins (gather is cache-resident,
  // while doubling the rank count inflates redundant cut-edge work).
  auto m = perf::asci_red();
  auto law = default_law();
  const double n = 2.8e6;
  auto w = coeffs();

  auto times = [&](int nodes) {
    const double t_mpi1 = model_flux_phase(
        m, synthesize_load(n, nodes, law), w, NodeMode::kMpi1);
    const double t_mpi2 = model_flux_phase(
        m, synthesize_load(n, 2 * nodes, law), w, NodeMode::kMpi2);
    const double t_omp2 = model_flux_phase(
        m, synthesize_load(n, nodes, law), w, NodeMode::kHybridOmp2);
    return std::array<double, 3>{t_mpi1, t_mpi2, t_omp2};
  };

  const auto low = times(256);
  EXPECT_LT(low[1], low[0]);  // second CPU helps either way
  EXPECT_LT(low[2], low[0]);
  EXPECT_LT(low[1], low[2]);  // MPI x2 wins at coarse granularity

  const auto high = times(3072);
  EXPECT_LT(high[2], high[0]);
  EXPECT_LT(high[2], high[1]);  // hybrid wins at fine granularity
  EXPECT_LT(high[1], high[0]);
}

TEST(StepModel, ImplicitSyncReflectsImbalance) {
  auto m = perf::asci_red();
  auto law_bal = default_law();
  auto law_imb = law_bal;
  law_imb.imbalance_coeff = 8.0;
  StepCounts c;
  auto b1 = model_step(m, synthesize_load(2.8e6, 512, law_bal), coeffs(), c);
  auto b2 = model_step(m, synthesize_load(2.8e6, 512, law_imb), coeffs(), c);
  EXPECT_GT(b2.t_implicit_sync, b1.t_implicit_sync);
}

TEST(SolveSimulation, AggregatesPerStepBreakdowns) {
  auto m = perf::asci_red();
  auto law = default_law();
  auto load = synthesize_load(2.8e6, 256, law);
  // A realistic history: iterations ramp as the CFL grows.
  std::vector<StepCounts> steps;
  for (int s = 0; s < 10; ++s) {
    StepCounts c;
    c.linear_its = 10 + 2 * s;
    steps.push_back(c);
  }
  auto sim = simulate_solve(m, load, coeffs(), steps);
  EXPECT_EQ(sim.step_seconds.size(), 10u);
  double sum = 0;
  for (double t : sim.step_seconds) sum += t;
  EXPECT_NEAR(sim.total_seconds, sum, 1e-12);
  EXPECT_NEAR(sim.total_seconds, sim.aggregate.total(), 1e-9);
  // Later (more iterations) steps cost more.
  EXPECT_GT(sim.step_seconds.back(), sim.step_seconds.front());
  EXPECT_GT(sim.aggregate.gflops(), 0);
  EXPECT_GT(sim.aggregate.effective_bw_per_node_mbs, 0);
}

// --- efficiency decomposition --------------------------------------------

TEST(Efficiency, IdentityAtBase) {
  std::vector<ScalingPoint> pts = {{128, 22, 2039}, {256, 24, 1144}};
  auto rows = efficiency_decomposition(pts);
  EXPECT_DOUBLE_EQ(rows[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].eta_overall, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].eta_alg, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].eta_impl, 1.0);
}

TEST(Efficiency, ReproducesPaperTable3Arithmetic) {
  // Feed the paper's own numbers; the decomposition must return the
  // paper's efficiency columns.
  std::vector<ScalingPoint> pts = {
      {128, 22, 2039}, {256, 24, 1144}, {512, 26, 638},
      {768, 27, 441},  {1024, 29, 362},
  };
  auto rows = efficiency_decomposition(pts);
  EXPECT_NEAR(rows[1].speedup, 1.78, 0.01);
  EXPECT_NEAR(rows[1].eta_overall, 0.89, 0.01);
  EXPECT_NEAR(rows[1].eta_alg, 0.92, 0.01);
  EXPECT_NEAR(rows[1].eta_impl, 0.97, 0.01);
  EXPECT_NEAR(rows[4].speedup, 5.63, 0.01);
  EXPECT_NEAR(rows[4].eta_overall, 0.70, 0.01);
  EXPECT_NEAR(rows[4].eta_alg, 0.76, 0.01);
  EXPECT_NEAR(rows[4].eta_impl, 0.93, 0.015);
}

TEST(Efficiency, ProductIdentityHolds) {
  std::vector<ScalingPoint> pts = {{128, 22, 2039}, {512, 26, 638}};
  auto rows = efficiency_decomposition(pts);
  for (const auto& r : rows)
    EXPECT_NEAR(r.eta_overall, r.eta_alg * r.eta_impl, 1e-12);
}

}  // namespace
