// Run-to-completion contract tests (f3d::guard): deterministic work-unit
// budgets, cooperative cancellation with a bounded and thread-count-
// independent latency, the wall-clock deadline, the livelock watchdog,
// the graceful-degradation ladder, fault capture, and the campaign-level
// budget/cancel integration in par::simulate_campaign.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cfd/problem.hpp"
#include "common/error.hpp"
#include "exec/pool.hpp"
#include "guard/guard.hpp"
#include "guard/watchdog.hpp"
#include "mesh/generator.hpp"
#include "mesh/graph.hpp"
#include "par/distres.hpp"
#include "partition/partition.hpp"
#include "perf/machine.hpp"
#include "resilience/faults.hpp"
#include "solver/newton.hpp"

namespace {

using namespace f3d;
using guard::SolveVerdict;
using guard::TripReason;

// --- guard primitives -----------------------------------------------------

TEST(SolveGuard, NamesCoverEveryEnumerator) {
  EXPECT_STREQ(guard::trip_reason_name(TripReason::kNone), "none");
  EXPECT_STREQ(guard::trip_reason_name(TripReason::kCancelled), "cancelled");
  EXPECT_STREQ(guard::trip_reason_name(TripReason::kDeadline), "deadline");
  EXPECT_STREQ(guard::trip_reason_name(TripReason::kWorkExhausted),
               "work-exhausted");
  EXPECT_STREQ(guard::verdict_name(SolveVerdict::kConverged), "converged");
  EXPECT_STREQ(guard::verdict_name(SolveVerdict::kMaxIters), "max-iters");
  EXPECT_STREQ(guard::verdict_name(SolveVerdict::kStagnated), "stagnated");
  EXPECT_STREQ(guard::verdict_name(SolveVerdict::kDeadline), "deadline");
  EXPECT_STREQ(guard::verdict_name(SolveVerdict::kCancelled), "cancelled");
  EXPECT_STREQ(guard::verdict_name(SolveVerdict::kFaultUnrecoverable),
               "fault-unrecoverable");
}

TEST(SolveGuard, UnboundedBudgetNeverTrips) {
  guard::SolveGuard g({});
  EXPECT_FALSE(g.budget().bounded());
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(g.charge(guard::kUnitsFactor), TripReason::kNone);
  EXPECT_EQ(g.work_units(), 1000 * guard::kUnitsFactor);
  EXPECT_EQ(g.latency_units(), 0);
  EXPECT_EQ(g.pressure(), 0.0);
}

TEST(SolveGuard, WorkBudgetTripsAtTheExactUnit) {
  guard::SolveBudget b;
  b.max_work_units = 10;
  guard::SolveGuard g(b);
  EXPECT_EQ(g.charge(4), TripReason::kNone);  // 4
  EXPECT_DOUBLE_EQ(g.pressure(), 0.4);
  EXPECT_EQ(g.charge(4), TripReason::kNone);          // 8
  EXPECT_EQ(g.charge(4), TripReason::kWorkExhausted);  // 12 >= 10
  EXPECT_EQ(g.tripped(), TripReason::kWorkExhausted);
  EXPECT_EQ(g.latency_units(), 0);  // nothing charged after the trip yet
  // Trips are sticky and latency counts post-trip units.
  EXPECT_EQ(g.charge(3), TripReason::kWorkExhausted);
  EXPECT_EQ(g.latency_units(), 3);
  EXPECT_DOUBLE_EQ(g.pressure(), 1.0);  // clamped
}

TEST(SolveGuard, ArmedCancelTripsAtTheExactUnit) {
  guard::CancelToken tok;
  tok.cancel_at_work(5);
  guard::SolveBudget b;
  b.cancel = &tok;
  guard::SolveGuard g(b);
  EXPECT_TRUE(b.bounded());
  EXPECT_EQ(g.charge(2), TripReason::kNone);       // 2
  EXPECT_EQ(g.charge(2), TripReason::kNone);       // 4
  EXPECT_EQ(g.charge(2), TripReason::kCancelled);  // 6 >= 5
  tok.reset();
  EXPECT_FALSE(tok.requested());
  EXPECT_EQ(tok.armed_at(), -1);
  // The guard's trip is sticky even after the token resets.
  EXPECT_EQ(g.tripped(), TripReason::kCancelled);
}

TEST(SolveGuard, CancelFlagObservedOnNextCharge) {
  guard::CancelToken tok;
  guard::SolveBudget b;
  b.cancel = &tok;
  guard::SolveGuard g(b);
  EXPECT_EQ(g.charge(1), TripReason::kNone);
  tok.cancel();  // any thread, any time
  EXPECT_EQ(g.charge(1), TripReason::kCancelled);
}

TEST(SolveGuard, DeadlineObservedAtClockCadence) {
  guard::SolveBudget b;
  b.wall_deadline_s = 1e-9;  // already expired at the first clock read
  b.check_every = 4;
  guard::SolveGuard g(b);
  // The first three unit charges stay under the cadence: no clock read.
  EXPECT_EQ(g.charge(1), TripReason::kNone);
  EXPECT_EQ(g.charge(1), TripReason::kNone);
  EXPECT_EQ(g.charge(1), TripReason::kNone);
  EXPECT_EQ(g.charge(1), TripReason::kDeadline);  // 4th unit reads the clock
  EXPECT_EQ(guard::cancel_latency_bound_units(b), 4);
}

TEST(SolveGuard, PollThrowsUntilDisarmed) {
  guard::CancelToken tok;
  guard::SolveBudget b;
  b.cancel = &tok;
  guard::SolveGuard g(b);
  guard::GuardScope scope(&g);
  ASSERT_EQ(guard::active_guard(), &g);
  EXPECT_NO_THROW(guard::poll_cancellation());  // not tripped
  tok.cancel();
  g.charge(1);
  EXPECT_TRUE(g.should_abandon());
  try {
    guard::poll_cancellation();
    FAIL() << "poll_cancellation must throw after a trip";
  } catch (const guard::CancelledError& e) {
    EXPECT_EQ(e.reason(), TripReason::kCancelled);
  }
  // The exit path disarms so it can keep using the pool.
  g.disarm();
  EXPECT_FALSE(g.should_abandon());
  EXPECT_NO_THROW(guard::poll_cancellation());
  EXPECT_EQ(g.tripped(), TripReason::kCancelled);  // trip state survives
}

TEST(SolveGuard, ScopeRestoresThePreviousGuard) {
  ASSERT_EQ(guard::active_guard(), nullptr);
  guard::SolveGuard outer({});
  {
    guard::GuardScope a(&outer);
    EXPECT_EQ(guard::active_guard(), &outer);
    guard::SolveGuard inner({});
    {
      guard::GuardScope bscope(&inner);
      EXPECT_EQ(guard::active_guard(), &inner);
    }
    EXPECT_EQ(guard::active_guard(), &outer);
  }
  EXPECT_EQ(guard::active_guard(), nullptr);
  EXPECT_NO_THROW(guard::poll_cancellation());  // no guard: no-op
}

// --- progress watchdog ----------------------------------------------------

TEST(ProgressWatchdog, CleanConvergenceNeverFires) {
  guard::WatchdogOptions o;
  o.enabled = true;
  o.window = 6;
  guard::ProgressWatchdog wd(o);
  double r = 1.0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(wd.observe(r)) << "step " << i;
    r *= 0.9;  // steady convergence
  }
  EXPECT_FALSE(wd.fired());
}

TEST(ProgressWatchdog, FlatResidualFiresOncePastTheWindow) {
  guard::WatchdogOptions o;
  o.enabled = true;
  o.window = 6;
  guard::ProgressWatchdog wd(o);
  int fired_at = -1;
  for (int i = 0; i < 20 && fired_at < 0; ++i)
    if (wd.observe(1e-13)) fired_at = i;
  EXPECT_EQ(fired_at, o.window);  // earliest possible firing point
  EXPECT_TRUE(wd.fired());
  EXPECT_FALSE(wd.observe(1e-13));  // fires at most once
}

TEST(ProgressWatchdog, DisabledObservesNothing) {
  guard::ProgressWatchdog wd({});
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(wd.observe(1.0));
  EXPECT_FALSE(wd.fired());
}

TEST(ProgressWatchdog, SlowPlateauToleratedWithinRatio) {
  guard::WatchdogOptions o;
  o.enabled = true;
  o.window = 4;
  o.stall_ratio = 0.9;  // demand 10% improvement per window
  guard::ProgressWatchdog wd(o);
  double r = 1.0;
  for (int i = 0; i < 40; ++i) {
    EXPECT_FALSE(wd.observe(r));
    r *= 0.96;  // 15% improvement per 4-step window: above the bar
  }
}

// --- guarded psi-NKS solves -----------------------------------------------

solver::PtcOptions base_options() {
  solver::PtcOptions o;
  o.cfl0 = 20.0;
  o.max_steps = 40;
  o.rtol = 1e-8;
  o.schwarz.fill_level = 1;
  o.num_subdomains = 2;
  return o;
}

solver::PtcResult run_wing(const solver::PtcOptions& opts,
                           std::vector<double>* x_out = nullptr,
                           resilience::FaultInjector* inj = nullptr) {
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 6, .ny = 3, .nz = 3});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  solver::PtcOptions o = opts;
  o.fault_injector = inj;
  auto res = solver::ptc_solve(prob, x, o);
  if (x_out != nullptr) *x_out = x;
  return res;
}

TEST(GuardedSolve, UnboundedGuardKeepsHistoricalBehavior) {
  auto res = run_wing(base_options());
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.verdict, SolveVerdict::kConverged);
  EXPECT_EQ(res.trip, TripReason::kNone);
  EXPECT_GT(res.work_units, 0);  // the cost model still accumulates
  EXPECT_EQ(res.cancel_latency_units, 0);
  EXPECT_EQ(res.degrade_rungs, 0);
  EXPECT_FALSE(res.watchdog_fired);
  EXPECT_GE(res.residual_drop_orders, 8.0);  // rtol 1e-8 was met
  EXPECT_TRUE(res.best_state_admissible);
}

TEST(GuardedSolve, WorkBudgetReturnsBestCommittedState) {
  const auto full = run_wing(base_options());
  ASSERT_TRUE(full.converged);
  ASSERT_GT(full.work_units, 10);

  solver::PtcOptions o = base_options();
  o.guard.budget.max_work_units = full.work_units / 2;
  std::vector<double> x;
  const auto res = run_wing(o, &x);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.verdict, SolveVerdict::kDeadline);
  EXPECT_EQ(res.trip, TripReason::kWorkExhausted);
  EXPECT_LT(res.steps, full.steps);
  // The trip is honored within the documented latency bound.
  EXPECT_LE(res.cancel_latency_units,
            guard::cancel_latency_bound_units(o.guard.budget));
  // The returned iterate is the last committed state: finite, admissible,
  // and graded (partial residual progress is reported, not hidden).
  for (double v : x) ASSERT_TRUE(std::isfinite(v));
  EXPECT_TRUE(res.best_state_admissible);
  EXPECT_GE(res.residual_drop_orders, 0.0);
  EXPECT_LT(res.residual_drop_orders, full.residual_drop_orders);
  EXPECT_GT(res.recovery_log.count(resilience::RecoveryAction::kGuardTrip), 0);
}

TEST(GuardedSolve, ExpiredWallDeadlineStillReturnsCommittedState) {
  solver::PtcOptions o = base_options();
  o.guard.budget.wall_deadline_s = 1e-9;  // expired before the first step
  std::vector<double> x;
  const auto res = run_wing(o, &x);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.verdict, SolveVerdict::kDeadline);
  EXPECT_EQ(res.trip, TripReason::kDeadline);
  for (double v : x) ASSERT_TRUE(std::isfinite(v));
  EXPECT_TRUE(std::isfinite(res.final_residual));
}

// The satellite guarantee: a cancel armed mid-solve (inside the Krylov
// iteration stream) is honored within the documented work-unit bound, and
// the returned state is bit-identical at 1, 2 and 4 threads — work units
// are charged only at thread-count-independent points.
TEST(GuardedSolve, CancellationLatencyBoundedAndStateThreadInvariant) {
  const auto full = run_wing(base_options());
  ASSERT_GT(full.work_units, 20);
  const long long arm = full.work_units / 2;  // lands mid-solve

  guard::CancelToken tok;
  std::vector<std::vector<double>> states;
  std::vector<solver::PtcResult> results;
  for (int nt : {1, 2, 4}) {
    exec::ThreadScope threads(nt);
    tok.reset();
    tok.cancel_at_work(arm);
    solver::PtcOptions o = base_options();
    o.guard.budget.cancel = &tok;
    std::vector<double> x;
    results.push_back(run_wing(o, &x));
    states.push_back(std::move(x));
    const auto& res = results.back();
    EXPECT_EQ(res.verdict, SolveVerdict::kCancelled) << nt << " threads";
    EXPECT_EQ(res.trip, TripReason::kCancelled) << nt << " threads";
    EXPECT_FALSE(res.converged);
    EXPECT_GE(res.work_units, arm);
    EXPECT_LE(res.cancel_latency_units,
              guard::cancel_latency_bound_units(o.guard.budget))
        << nt << " threads";
  }
  // Deterministic trip: identical unit counts and bitwise-identical
  // returned state at every thread count.
  for (std::size_t i = 1; i < states.size(); ++i) {
    EXPECT_EQ(results[i].work_units, results[0].work_units);
    EXPECT_EQ(results[i].steps, results[0].steps);
    EXPECT_EQ(results[i].final_residual, results[0].final_residual);
    ASSERT_EQ(states[i].size(), states[0].size());
    EXPECT_EQ(0, std::memcmp(states[i].data(), states[0].data(),
                             states[0].size() * sizeof(double)))
        << "state diverged between thread counts";
  }
}

TEST(GuardedSolve, WatchdogQuietOnCleanConvergence) {
  solver::PtcOptions o = base_options();
  o.guard.watchdog.enabled = true;
  o.guard.watchdog.window = 6;
  const auto res = run_wing(o);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.verdict, SolveVerdict::kConverged);
  EXPECT_FALSE(res.watchdog_fired);  // zero false positives on clean runs
}

TEST(GuardedSolve, WatchdogDetectsResidualFloorStall) {
  solver::PtcOptions o = base_options();
  o.rtol = 1e-300;  // unreachable: the solve plateaus at machine precision
  o.max_steps = 80;
  o.guard.watchdog.enabled = true;
  o.guard.watchdog.window = 10;
  o.guard.watchdog.stall_ratio = 0.9;
  const auto res = run_wing(o);
  EXPECT_FALSE(res.converged);
  EXPECT_TRUE(res.watchdog_fired);
  EXPECT_EQ(res.verdict, SolveVerdict::kStagnated);
  EXPECT_LT(res.steps, o.max_steps);  // fired before burning the step cap
  EXPECT_GT(res.recovery_log.count(resilience::RecoveryAction::kDetectStall),
            0);
}

TEST(GuardedSolve, DegradationLadderFiresUnderBudgetPressure) {
  const auto full = run_wing(base_options());
  ASSERT_TRUE(full.converged);

  solver::PtcOptions o = base_options();
  o.guard.budget.max_work_units = full.work_units;  // pressure reaches 1.0
  o.guard.degrade.enabled = true;
  const auto res = run_wing(o);
  EXPECT_GE(res.degrade_rungs, 1);
  EXPECT_GT(res.recovery_log.count(resilience::RecoveryAction::kDegradeRung),
            0);
  // Whatever the outcome, the answer is a graded committed state.
  EXPECT_TRUE(res.best_state_admissible);
}

TEST(GuardedSolve, CaptureFaultsMapsAbortToVerdict) {
  auto poisoned = [] {
    resilience::FaultInjector inj(4);
    resilience::FaultPlan p;
    p.fire_every = 1;
    p.skip_first = 30;  // let some steps commit first
    inj.arm(resilience::FaultSite::kResidual, p);
    return inj;
  };

  // Historical plain-path semantics: abort by exception.
  {
    auto inj = poisoned();
    EXPECT_THROW(run_wing(base_options(), nullptr, &inj), NumericalError);
  }
  // Captured: same fault, structured verdict and the best committed state.
  {
    auto inj = poisoned();
    solver::PtcOptions o = base_options();
    o.guard.capture_faults = true;
    std::vector<double> x;
    const auto res = run_wing(o, &x, &inj);
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.verdict, SolveVerdict::kFaultUnrecoverable);
    for (double v : x) ASSERT_TRUE(std::isfinite(v));
    EXPECT_TRUE(std::isfinite(res.final_residual));
    EXPECT_GT(res.recovery_log.count(resilience::RecoveryAction::kGuardTrip),
              0);
  }
}

// --- campaign-level budget and cancel -------------------------------------

struct CampaignRig {
  mesh::Graph g;
  par::CampaignDomain domain;
  par::WorkCoefficients work;
  perf::MachineModel machine = perf::asci_red();
  std::vector<par::StepCounts> steps;

  CampaignRig() : steps(20) {
    auto m = mesh::generate_wing_mesh(
        mesh::WingMeshConfig{.nx = 12, .ny = 7, .nz = 7});
    g = mesh::build_graph(m.num_vertices(), m.edges());
    domain = par::make_domain(g, part::kway_grow(g, 8));
    work.sparse_bytes_per_vertex_it = 1200;
    work.sparse_flops_per_vertex_it = 300;
  }

  par::CampaignResult run(double budget_s, guard::CancelToken* cancel) {
    resilience::FaultInjector inj(7);  // no armed sites: a clean campaign
    par::CampaignOptions o;
    o.injector = &inj;
    o.budget_modeled_s = budget_s;
    o.cancel = cancel;
    return par::simulate_campaign(machine, domain, work, steps, o);
  }
};

TEST(GuardCampaign, ModeledBudgetTripsDeterministically) {
  CampaignRig rig;
  const auto full = rig.run(0, nullptr);
  ASSERT_TRUE(full.completed);
  EXPECT_EQ(full.verdict, SolveVerdict::kConverged);
  EXPECT_EQ(full.steps_executed, 20);

  const double budget = full.total_seconds() / 2;
  const auto a = rig.run(budget, nullptr);
  EXPECT_FALSE(a.completed);
  EXPECT_EQ(a.verdict, SolveVerdict::kDeadline);
  EXPECT_GT(a.steps_executed, 0);
  EXPECT_LT(a.steps_executed, 20);
  // The budget is on modeled seconds: the trip step is bit-reproducible.
  const auto b = rig.run(budget, nullptr);
  EXPECT_EQ(a.steps_executed, b.steps_executed);
  EXPECT_EQ(a.total_seconds(), b.total_seconds());
}

TEST(GuardCampaign, CancelTokenHonoredAtStepBoundary) {
  CampaignRig rig;
  guard::CancelToken tok;
  tok.cancel();
  const auto res = rig.run(0, &tok);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.verdict, SolveVerdict::kCancelled);
  EXPECT_EQ(res.steps_executed, 0);  // honored before any modeled step
}

}  // namespace
