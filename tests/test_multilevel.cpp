// Tests for the multilevel k-way partitioner: coverage, balance, cut
// quality relative to the single-level grower, and determinism.

#include <gtest/gtest.h>

#include <set>

#include "mesh/generator.hpp"
#include "partition/multilevel.hpp"

namespace {

using namespace f3d;
using namespace f3d::part;

mesh::Graph wing_graph(int nx = 12, int ny = 8, int nz = 8) {
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = nx, .ny = ny, .nz = nz});
  return mesh::build_graph(m.num_vertices(), m.edges());
}

TEST(Multilevel, CoversAllVerticesAllParts) {
  auto g = wing_graph();
  for (int np : {2, 4, 8, 16, 32}) {
    auto p = multilevel_kway(g, np);
    ASSERT_EQ(p.nparts, np);
    std::set<int> used(p.part.begin(), p.part.end());
    EXPECT_EQ(static_cast<int>(used.size()), np) << np;
    for (int v : p.part) EXPECT_TRUE(v >= 0 && v < np);
  }
}

TEST(Multilevel, RespectsBalanceTolerance) {
  auto g = wing_graph();
  MultilevelOptions opts;
  opts.imbalance_tol = 1.05;
  for (int np : {4, 8, 16}) {
    auto p = multilevel_kway(g, np, opts);
    auto q = evaluate(g, p);
    // Allow slack for the +/-1-vertex granularity on top of the weight
    // tolerance.
    EXPECT_LT(q.imbalance, 1.12) << np << " parts";
  }
}

TEST(Multilevel, CutsFewerEdgesThanGreedyGrowth) {
  auto g = wing_graph();
  long long cut_ml = 0, cut_greedy = 0;
  for (int np : {8, 16, 32}) {
    cut_ml += evaluate(g, multilevel_kway(g, np)).edge_cut;
    cut_greedy += evaluate(g, kway_grow(g, np)).edge_cut;
  }
  EXPECT_LT(cut_ml, cut_greedy)
      << "multilevel should beat single-level growth on total cut";
}

TEST(Multilevel, PartsAreMostlyConnected) {
  // FM refinement can strand a vertex occasionally; require near-full
  // connectivity (the k-MeTiS character Fig 4 depends on).
  auto g = wing_graph();
  auto p = multilevel_kway(g, 16);
  auto q = evaluate(g, p);
  EXPECT_LE(q.total_components, 16 + 3);
}

TEST(Multilevel, DeterministicInSeed) {
  auto g = wing_graph(8, 5, 5);
  MultilevelOptions a, b;
  a.seed = b.seed = 12;
  EXPECT_EQ(multilevel_kway(g, 8, a).part, multilevel_kway(g, 8, b).part);
  MultilevelOptions c;
  c.seed = 13;
  EXPECT_NE(multilevel_kway(g, 8, a).part, multilevel_kway(g, 8, c).part);
}

TEST(Multilevel, SinglePartAndTinyGraphs) {
  auto g = wing_graph(2, 2, 2);
  auto p1 = multilevel_kway(g, 1);
  for (int v : p1.part) EXPECT_EQ(v, 0);
  // nparts near n.
  const int n = static_cast<int>(g.ptr.size()) - 1;
  auto pn = multilevel_kway(g, n / 2);
  std::set<int> used(pn.part.begin(), pn.part.end());
  EXPECT_EQ(static_cast<int>(used.size()), n / 2);
}

TEST(Multilevel, RefinementImprovesOverNoRefinement) {
  auto g = wing_graph();
  MultilevelOptions no_refine;
  no_refine.refine_passes = 0;
  MultilevelOptions with_refine;
  with_refine.refine_passes = 4;
  const auto cut0 = evaluate(g, multilevel_kway(g, 16, no_refine)).edge_cut;
  const auto cut4 = evaluate(g, multilevel_kway(g, 16, with_refine)).edge_cut;
  EXPECT_LE(cut4, cut0);
}

}  // namespace
