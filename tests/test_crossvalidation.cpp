// Cross-module validation: the analytic performance models (f3d::perf)
// checked against the cache/TLB simulator (f3d::simcache) on synthetic
// access patterns where both are exactly analyzable, and against each
// other's asymptotics. This is the reproduction's internal consistency
// net: Eq. 1/2 are *bounds*, so the simulator must never exceed them on
// the access pattern they model.

#include <gtest/gtest.h>

#include <vector>

#include "perf/models.hpp"
#include "simcache/cache.hpp"

namespace {

using namespace f3d;

// The access pattern behind the paper's conflict-miss bound: a sweep over
// N rows, each touching a window of the x-vector that slides by one
// element per row (bandwidth beta), on a cache of C doubles with W-double
// lines. One pass after warmup.
struct SweepResult {
  std::uint64_t misses = 0;
  std::uint64_t conflict = 0;
  std::uint64_t capacity = 0;
};

SweepResult simulate_banded_sweep(std::uint64_t rows, std::uint64_t beta,
                                  std::uint64_t cache_dw,
                                  std::uint64_t line_dw, int assoc) {
  simcache::CacheModel cache(cache_dw * 8, static_cast<std::uint32_t>(line_dw * 8),
                             assoc, /*classify=*/true);
  std::vector<double> x(rows + beta, 0.0);
  auto touch_window = [&](std::uint64_t row) {
    for (std::uint64_t j = 0; j < beta; j += line_dw)
      cache.access(reinterpret_cast<std::uint64_t>(&x[row + j]));
  };
  for (std::uint64_t i = 0; i < rows; ++i) touch_window(i);  // warm
  cache.reset_counters();
  for (std::uint64_t i = 0; i < rows; ++i) touch_window(i);
  return {cache.misses(), cache.conflict_misses(), cache.capacity_misses()};
}

TEST(CrossValidation, NoConflictMissesWhenWindowFitsCache) {
  // beta < C: Eq. 2 predicts zero *conflict* misses. The sliding window
  // still pays one refetch per line per pass (the full vector exceeds the
  // cache across the sweep — compulsory/capacity traffic), but nothing on
  // top of that: the per-row working set fits.
  const std::uint64_t rows = 2000, beta = 256, cache_dw = 1024, line = 8;
  const auto bound = perf::conflict_miss_bound(rows, beta, cache_dw, line);
  EXPECT_EQ(bound, 0u);
  auto sim = simulate_banded_sweep(rows, beta, cache_dw, line, 8);
  EXPECT_EQ(sim.conflict, 0u);
  // One refetch per distinct line of x per pass, nothing more.
  EXPECT_LE(sim.misses, (rows + beta) / line + 4);
}

TEST(CrossValidation, MissesAppearWhenWindowExceedsCache) {
  // beta > C: the bound predicts ~N*(beta-C)/W misses... per row the
  // window no longer fits, so the sweep re-misses the whole window: the
  // *observed* misses must be nonzero and below the per-access total.
  const std::uint64_t rows = 400, beta = 2048, cache_dw = 1024, line = 8;
  const auto bound = perf::conflict_miss_bound(rows, beta, cache_dw, line);
  EXPECT_GT(bound, 0u);
  auto sim = simulate_banded_sweep(rows, beta, cache_dw, line, 8);
  EXPECT_GT(sim.misses, rows);  // thrashing regime
  // Eq. 1/2 count conflict misses per row as (beta-C)/W; the LRU sweep
  // actually re-misses up to beta/W per row. The bound is a bound on the
  // *conflict* component; check the identity direction: conflict +
  // capacity <= rows * beta/W (total re-touches).
  EXPECT_LE(sim.conflict + sim.capacity, rows * (beta / line));
}

TEST(CrossValidation, MissBoundMonotoneInSpan) {
  std::uint64_t prev = 0;
  for (std::uint64_t beta = 1024; beta <= 8192; beta += 1024) {
    const auto b = perf::conflict_miss_bound(1000, beta, 1024, 8);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(CrossValidation, TlbSimulatorMatchesReachModel) {
  // Touch exactly `pages` distinct pages cyclically; the TLB-miss model
  // says zero misses when pages <= entries and thrashing when beyond.
  auto misses_for = [](int pages) {
    simcache::CacheModel tlb(64ull * 4096, 4096, 64);  // 64-entry, 4K pages
    std::vector<char> mem(static_cast<std::size_t>(pages) * 4096);
    for (int rep = 0; rep < 3; ++rep)
      for (int p = 0; p < pages; ++p)
        tlb.access(reinterpret_cast<std::uint64_t>(&mem[p * 4096]));
    return tlb.misses();
  };
  EXPECT_EQ(misses_for(32), 32u);   // compulsory only
  EXPECT_EQ(misses_for(64), 64u);   // exactly fits
  EXPECT_GT(misses_for(80), 160u);  // cyclic LRU thrash: re-misses
}

TEST(CrossValidation, SpmvTrafficModelMatchesHandCount) {
  // Hand-countable case: 4 block rows, 10 blocks, nb = 2, perfect reuse.
  perf::SpmvShape s{.block_rows = 4, .blocks = 10, .nb = 2, .x_reuse = 1.0};
  auto t = perf::spmv_traffic(s);
  EXPECT_DOUBLE_EQ(t.matrix_bytes, 10 * 4 * 8.0);          // 40 scalars
  EXPECT_DOUBLE_EQ(t.index_bytes, (10 + 4) * 4.0);         // cols + ptr
  EXPECT_DOUBLE_EQ(t.vector_bytes, 8 * 8.0 + 2 * 8 * 8.0); // x + y(rw)
  EXPECT_DOUBLE_EQ(perf::spmv_flops(s), 2.0 * 10 * 4);
}

}  // namespace
