// Tests for the dense pivoted LU and the two-level (coarse-grid) Schwarz
// preconditioner: correctness of the coarse correction and the theory's
// headline property — iteration counts stop growing with the subdomain
// count once a coarse space is present.

#include <gtest/gtest.h>

#include <cmath>

#include "common/denselu.hpp"
#include "common/rng.hpp"
#include "mesh/generator.hpp"
#include "mesh/graph.hpp"
#include "solver/coarse.hpp"
#include "solver/gmres.hpp"
#include "sparse/assembly.hpp"
#include "sparse/vec.hpp"

namespace {

using namespace f3d;
using namespace f3d::solver;
using sparse::Vec;

// --- DenseLu -------------------------------------------------------------

TEST(DenseLu, SolvesRandomSystem) {
  const int n = 24;
  Rng rng(1);
  std::vector<double> a(n * n);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (int i = 0; i < n; ++i) a[i * n + i] += 3.0;  // keep well-conditioned
  Vec x_true(n), b(n, 0.0);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];

  dense::DenseLu lu;
  ASSERT_TRUE(lu.factor(n, a.data()));
  Vec x(n);
  lu.solve(b.data(), x.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(DenseLu, RequiresPivoting) {
  // Zero leading entry: fails without pivoting, fine with it.
  const double a[4] = {0, 1, 1, 0};
  dense::DenseLu lu;
  ASSERT_TRUE(lu.factor(2, a));
  const double b[2] = {3, 7};
  double x[2];
  lu.solve(b, x);
  EXPECT_DOUBLE_EQ(x[0], 7);
  EXPECT_DOUBLE_EQ(x[1], 3);
}

TEST(DenseLu, DetectsSingular) {
  const double a[4] = {1, 2, 2, 4};  // rank 1
  dense::DenseLu lu;
  EXPECT_FALSE(lu.factor(2, a));
  EXPECT_FALSE(lu.ok());
  double b[2] = {1, 1}, x[2];
  EXPECT_THROW(lu.solve(b, x), Error);
}

TEST(DenseLu, SolveAliasesInput) {
  const double a[4] = {2, 0, 0, 4};
  dense::DenseLu lu;
  ASSERT_TRUE(lu.factor(2, a));
  double bx[2] = {2, 8};
  lu.solve(bx, bx);
  EXPECT_DOUBLE_EQ(bx[0], 1);
  EXPECT_DOUBLE_EQ(bx[1], 2);
}

// --- coarse Schwarz --------------------------------------------------------

struct System {
  sparse::Bcsr<double> a;
  Vec b;
  mesh::Graph g;
};

// Near-singular graph-Laplacian system: the elliptic regime where Schwarz
// theory predicts one-level iteration growth and a coarse-space cure.
// Block (v,v) = (degree + shift) I, block (v,w) = -I on mesh edges.
System big_system(int nb = 4, int size = 8, double shift = 0.05) {
  auto m = mesh::generate_box_mesh(2 * size, size, size);
  auto s = sparse::stencil_from_mesh(m);
  std::vector<int> degree(s.n);
  for (int i = 0; i < s.n; ++i) degree[i] = s.ptr[i + 1] - s.ptr[i] - 1;
  auto fn = [&](int vi, int vj, int nbk, double* block) {
    for (int a = 0; a < nbk; ++a)
      for (int b = 0; b < nbk; ++b)
        block[a * nbk + b] =
            (a == b) ? (vi == vj ? degree[vi] + shift : -1.0) : 0.0;
  };
  System sys;
  sys.a = sparse::build_bcsr(s, nb, fn);
  Rng rng(2);
  sys.b.resize(sys.a.scalar_n());
  for (auto& v : sys.b) v = rng.uniform(-1, 1);
  sys.g = mesh::build_graph(m.num_vertices(), m.edges());
  return sys;
}

int gmres_its(const System& sys, const Preconditioner& prec) {
  LinearOperator op;
  op.n = sys.a.scalar_n();
  op.apply = [&](const double* x, double* y) { sys.a.spmv(x, y); };
  GmresOptions o;
  o.rtol = 1e-8;
  o.max_iters = 400;
  o.restart = 40;
  Vec x(op.n, 0.0);
  auto r = gmres(op, prec, sys.b, x, o);
  EXPECT_TRUE(r.converged) << prec.name();
  return r.iterations;
}

TEST(Coarse, ApplyIsFinePlusCoarseCorrection) {
  auto sys = big_system(2, 4);
  auto partition = part::kway_grow(sys.g, 4);
  SchwarzOptions so;
  so.type = SchwarzType::kBlockJacobi;
  so.fill_level = 0;
  SchwarzPreconditioner fine(sys.a, partition, so);
  TwoLevelSchwarzPreconditioner two(sys.a, partition, so);
  EXPECT_EQ(two.coarse_dim(), 4 * 2);

  Vec zf(sys.b.size()), zt(sys.b.size());
  fine.apply(sys.b.data(), zf.data());
  two.apply(sys.b.data(), zt.data());
  // Correction must be nonzero and differ from fine-only.
  double diff = 0;
  for (std::size_t i = 0; i < zf.size(); ++i) diff += std::abs(zt[i] - zf[i]);
  EXPECT_GT(diff, 1e-10);
}

TEST(Coarse, ImprovesConditioningAtManySubdomains) {
  auto sys = big_system(4, 6);
  SchwarzOptions so;
  so.type = SchwarzType::kBlockJacobi;
  so.fill_level = 0;
  auto partition = part::kway_grow(sys.g, 24);
  SchwarzPreconditioner fine(sys.a, partition, so);
  TwoLevelSchwarzPreconditioner two(sys.a, partition, so);
  const int its_fine = gmres_its(sys, fine);
  const int its_two = gmres_its(sys, two);
  EXPECT_LE(its_two, its_fine);
}

TEST(Coarse, FlattensIterationGrowth) {
  // The headline property: one-level iteration counts grow with P; the
  // two-level counts grow much less (ideally stay bounded).
  auto sys = big_system(4, 6);
  SchwarzOptions so;
  so.type = SchwarzType::kBlockJacobi;
  so.fill_level = 0;

  int one_small = 0, one_large = 0, two_small = 0, two_large = 0;
  {
    auto p = part::kway_grow(sys.g, 4);
    one_small = gmres_its(sys, SchwarzPreconditioner(sys.a, p, so));
    two_small = gmres_its(sys, TwoLevelSchwarzPreconditioner(sys.a, p, so));
  }
  {
    auto p = part::kway_grow(sys.g, 32);
    one_large = gmres_its(sys, SchwarzPreconditioner(sys.a, p, so));
    two_large = gmres_its(sys, TwoLevelSchwarzPreconditioner(sys.a, p, so));
  }
  const int one_growth = one_large - one_small;
  const int two_growth = two_large - two_small;
  EXPECT_LE(two_growth, one_growth);
  EXPECT_LE(two_large, one_large);
}

TEST(Coarse, RefactorTracksNewValues) {
  auto sys = big_system(2, 4);
  auto partition = part::kway_grow(sys.g, 4);
  SchwarzOptions so;
  so.fill_level = 0;
  so.type = SchwarzType::kBlockJacobi;
  TwoLevelSchwarzPreconditioner prec(sys.a, partition, so);
  Vec z1(sys.b.size());
  prec.apply(sys.b.data(), z1.data());

  for (auto& v : sys.a.val) v *= 2.0;
  prec.refactor(sys.a);
  Vec z2(sys.b.size());
  prec.apply(sys.b.data(), z2.data());
  // M^{-1} of 2A should be half of M^{-1} of A.
  for (std::size_t i = 0; i < z1.size(); ++i)
    EXPECT_NEAR(z2[i], 0.5 * z1[i], 1e-9 * (1 + std::abs(z1[i])));
}

}  // namespace
