// Silent-data-corruption defense tests: the deterministic bit-flip
// injector, the ABFT checksummed SpMV (clean pass / corrupted fail /
// low-bit escape), Krylov invariant monitors, the physical-admissibility
// scan, the psi-NKS recompute/rollback rungs, checkpoint decode under an
// exhaustive corruption sweep, the hardened JSON parser's malformed-input
// corpus, and the ABFT false-positive guarantee on a long clean solve at
// several thread counts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "cfd/admissibility.hpp"
#include "cfd/problem.hpp"
#include "common/error.hpp"
#include "exec/pool.hpp"
#include "mesh/generator.hpp"
#include "obs/json.hpp"
#include "resilience/bitflip.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/faults.hpp"
#include "resilience/recovery.hpp"
#include "solver/gmres.hpp"
#include "solver/newton.hpp"
#include "sparse/abft.hpp"
#include "sparse/csr.hpp"

namespace {

using namespace f3d;
using namespace f3d::resilience;

// --- bit-flip primitives --------------------------------------------------

TEST(BitFlip, FlipIsItsOwnInverse) {
  const double v = 3.14159;
  for (int bit = 0; bit < 64; ++bit) {
    const double f = flip_bit(v, bit);
    EXPECT_NE(std::memcmp(&f, &v, sizeof v), 0) << "bit " << bit;
    const double back = flip_bit(f, bit);
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0) << "bit " << bit;
  }
  EXPECT_EQ(flip_bit(1.0, 63), -1.0);  // sign bit
  EXPECT_THROW((void)flip_bit(1.0, 64), f3d::Error);
  EXPECT_THROW((void)flip_bit(1.0, -1), f3d::Error);
}

TEST(BitFlip, LowMantissaBitIsATinyPerturbation) {
  const double v = 1.5;
  const double f = flip_bit(v, 0);
  EXPECT_NE(f, v);
  EXPECT_LT(std::abs(f - v) / v, 1e-15);  // the SDC class NaN guards miss
  // Exponent flips are loud: bit 61 of a [1,2) value scales it by 2^-512
  // (bit 62 would land the exponent on all-ones, i.e. NaN — the one flip
  // the classic guards DO see).
  EXPECT_LT(std::abs(flip_bit(v, 61) / v), 1e-100);
  EXPECT_TRUE(std::isnan(flip_bit(v, 62)));
}

TEST(BitFlip, MaybeFlipIsDeterministicAndTargeted) {
  std::vector<double> data(100, 2.0);
  // No injector registered: nothing fires, nothing consumed.
  EXPECT_EQ(maybe_flip(FlipTarget::kState, data.data(), 100), -1);

  FaultInjector inj(123);
  FaultPlan p;
  p.fire_every = 1;
  inj.arm(FaultSite::kBitFlip, p);
  inj.set_bit_flip({.bit = 52, .target = FlipTarget::kState});
  InjectorScope scope(&inj);

  // Mismatched target: passes without consuming a draw, so campaigns
  // stay comparable across targets.
  EXPECT_EQ(maybe_flip(FlipTarget::kMatrix, data.data(), 100), -1);
  EXPECT_EQ(inj.draws(FaultSite::kBitFlip), 0);

  const long long idx = maybe_flip(FlipTarget::kState, data.data(), 100);
  ASSERT_GE(idx, 0);
  ASSERT_LT(idx, 100);
  EXPECT_EQ(inj.draws(FaultSite::kBitFlip), 1);
  EXPECT_EQ(data[static_cast<std::size_t>(idx)], flip_bit(2.0, 52));
  for (long long i = 0; i < 100; ++i) {
    if (i == idx) continue;
    EXPECT_EQ(data[static_cast<std::size_t>(i)], 2.0);
  }

  // Same seed, same draw history -> same element.
  FaultInjector inj2(123);
  inj2.arm(FaultSite::kBitFlip, p);
  inj2.set_bit_flip({.bit = 52, .target = FlipTarget::kState});
  InjectorScope scope2(&inj2);
  std::vector<double> data2(100, 2.0);
  EXPECT_EQ(maybe_flip(FlipTarget::kState, data2.data(), 100), idx);
}

// --- ABFT checksummed SpMV ------------------------------------------------

sparse::Csr<double> laplacian1d(int n) {
  sparse::Csr<double> a;
  a.n = n;
  a.ptr.push_back(0);
  for (int i = 0; i < n; ++i) {
    if (i > 0) {
      a.col.push_back(i - 1);
      a.val.push_back(-1.0 + 0.01 * i);  // nonsymmetric, varied magnitudes
    }
    a.col.push_back(i);
    a.val.push_back(2.5 + 0.1 * (i % 7));
    if (i + 1 < n) {
      a.col.push_back(i + 1);
      a.val.push_back(-1.2);
    }
    a.ptr.push_back(static_cast<int>(a.col.size()));
  }
  return a;
}

std::vector<double> test_vector(int n) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] = std::sin(0.1 * i) + 2.0;
  return x;
}

TEST(Abft, CleanSpmvVerifies) {
  auto a = laplacian1d(500);
  sparse::AbftGuard g;
  sparse::rebuild(g, a);
  auto x = test_vector(a.n);
  std::vector<double> y;
  EXPECT_TRUE(sparse::spmv_verified(g, a, x, y));
  EXPECT_EQ(g.verifies, 1);
  EXPECT_EQ(g.failures, 0);
}

TEST(Abft, ExponentFlipInMatrixIsCaught) {
  auto a = laplacian1d(500);
  sparse::AbftGuard g;
  sparse::rebuild(g, a);
  auto x = test_vector(a.n);
  std::vector<double> y;
  for (int bit = 52; bit <= 63; ++bit) {
    auto corrupt = a;
    corrupt.val[777] = resilience::flip_bit(corrupt.val[777], bit);
    EXPECT_FALSE(sparse::spmv_verified(g, corrupt, x, y)) << "bit " << bit;
  }
  EXPECT_GT(g.failures, 0);
}

TEST(Abft, ExponentFlipInOutputIsCaught) {
  auto a = laplacian1d(300);
  sparse::AbftGuard g;
  sparse::rebuild(g, a);
  auto x = test_vector(a.n);
  std::vector<double> y;
  a.spmv(x, y);
  y[123] = resilience::flip_bit(y[123], 58);
  EXPECT_FALSE(sparse::verify_spmv(g, x.data(), y.data(), a.n));
}

TEST(Abft, LowMantissaFlipEscapes) {
  // The documented escape class: a bit-0 flip moves the product by ~eps,
  // far below the rounding bound. The guard must NOT fire (that would be
  // a false-positive machine on every clean run).
  auto a = laplacian1d(500);
  sparse::AbftGuard g;
  sparse::rebuild(g, a);
  auto x = test_vector(a.n);
  std::vector<double> y;
  auto corrupt = a;
  corrupt.val[777] = resilience::flip_bit(corrupt.val[777], 0);
  EXPECT_TRUE(sparse::spmv_verified(g, corrupt, x, y));
}

TEST(Abft, NanInfInputsFailInsteadOfSlippingThroughComparisons) {
  auto a = laplacian1d(100);
  sparse::AbftGuard g;
  sparse::rebuild(g, a);
  auto x = test_vector(a.n);
  std::vector<double> y;
  a.spmv(x, y);
  y[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(sparse::verify_spmv(g, x.data(), y.data(), a.n));
}

TEST(Abft, BcsrChecksumGuardsEveryBlockEntry) {
  // 3 block-rows of 2x2 blocks, dense block-tridiagonal.
  sparse::Bcsr<double> a;
  a.nb = 2;
  a.nrows = 3;
  a.ptr = {0, 2, 5, 7};
  a.col = {0, 1, 0, 1, 2, 1, 2};
  a.val.resize(a.nblocks() * 4);
  for (std::size_t k = 0; k < a.val.size(); ++k)
    a.val[k] = 0.5 + 0.25 * static_cast<double>(k % 11);
  a.check();

  sparse::AbftGuard g;
  sparse::rebuild(g, a);
  auto x = test_vector(a.scalar_n());
  std::vector<double> y;
  EXPECT_TRUE(sparse::spmv_verified(g, a, x, y));
  for (std::size_t k = 0; k < a.val.size(); ++k) {
    auto corrupt = a;
    corrupt.val[k] = resilience::flip_bit(corrupt.val[k], 55);
    EXPECT_FALSE(sparse::spmv_verified(g, corrupt, x, y)) << "entry " << k;
  }
}

TEST(Abft, VerdictIsThreadCountInvariant) {
  auto a = laplacian1d(2000);
  sparse::AbftGuard g;
  sparse::rebuild(g, a);
  auto x = test_vector(a.n);
  auto corrupt = a;
  corrupt.val[100] = resilience::flip_bit(corrupt.val[100], 40);

  const int before = exec::pool().num_threads();
  for (int nt : {1, 2, 4}) {
    exec::set_threads(nt);
    std::vector<double> y;
    EXPECT_TRUE(sparse::spmv_verified(g, a, x, y)) << nt << " threads";
    EXPECT_FALSE(sparse::spmv_verified(g, corrupt, x, y)) << nt << " threads";
  }
  exec::set_threads(before);
}

// --- ABFT under float storage (mixed precision) ---------------------------

TEST(AbftFloat, RebuildWidensBoundToFloatRoundoff) {
  auto ad = laplacian1d(100);
  const auto af = ad.convert<float>();
  sparse::AbftGuard g;
  sparse::rebuild(g, ad);
  EXPECT_DOUBLE_EQ(g.unit_roundoff, 2.220446049250313e-16);
  sparse::rebuild(g, af);
  EXPECT_DOUBLE_EQ(g.unit_roundoff, 1.1920928955078125e-7);
}

TEST(AbftFloat, TwoThousandCleanMixedProductsZeroFalsePositives) {
  // The mixed-precision false-positive guarantee: float storage rounds
  // every entry, so the double-eps bound would trip on clean products;
  // the widened FLT_EPSILON bound must never fire over a long clean run.
  const auto af = laplacian1d(500).convert<float>();
  sparse::AbftGuard g;
  sparse::rebuild(g, af);
  std::vector<double> x(static_cast<std::size_t>(af.n)), y;
  for (int step = 0; step < 2000; ++step) {
    for (int i = 0; i < af.n; ++i)
      x[static_cast<std::size_t>(i)] = std::sin(0.1 * i + 0.01 * step) + 2.0;
    EXPECT_TRUE(sparse::spmv_verified(g, af, x, y)) << "step " << step;
  }
  EXPECT_EQ(g.verifies, 2000);
  EXPECT_EQ(g.failures, 0);
}

TEST(AbftFloat, ExponentFlipCorpusDetectionRateAtLeast90Percent) {
  // Corpus: every float exponent bit (23-30) of a spread of live stored
  // entries. The guard must catch >= 90% — the escapes are bit-23 flips
  // on the smallest live values, whose perturbation can sit inside the
  // widened rounding bound.
  const auto af = laplacian1d(500).convert<float>();
  sparse::AbftGuard g;
  sparse::rebuild(g, af);
  auto x = test_vector(af.n);
  std::vector<double> y;

  std::vector<std::size_t> live;
  for (std::size_t k = 0; k < af.val.size() && live.size() < 25; k += 57)
    if (std::abs(af.val[k]) >= 0.5) live.push_back(k);
  ASSERT_GE(live.size(), 20u);

  int cases = 0, caught = 0;
  for (std::size_t k : live)
    for (int bit = 23; bit <= 30; ++bit) {
      auto corrupt = af;
      corrupt.val[k] = resilience::flip_bit(corrupt.val[k], bit);
      ++cases;
      if (!sparse::spmv_verified(g, corrupt, x, y)) ++caught;
    }
  EXPECT_GE(caught, (cases * 9 + 9) / 10)
      << caught << "/" << cases << " exponent flips detected";
}

TEST(AbftFloat, FloatSignFlipIsCaught) {
  const auto af = laplacian1d(300).convert<float>();
  sparse::AbftGuard g;
  sparse::rebuild(g, af);
  auto x = test_vector(af.n);
  std::vector<double> y;
  auto corrupt = af;
  corrupt.val[400] = resilience::flip_bit(corrupt.val[400], 31);
  EXPECT_FALSE(sparse::spmv_verified(g, corrupt, x, y));
}

TEST(AbftFloat, FloatMaybeFlipIsDeterministicAndLive) {
  // The float overload of the injector: same live-victim policy, float
  // epsilon threshold, deterministic victim for a fixed seed.
  auto run = [&]() {
    FaultInjector inj(42);
    FaultPlan p;
    p.fire_every = 1;
    inj.arm(FaultSite::kBitFlip, p);
    inj.set_bit_flip({.bit = 30, .target = FlipTarget::kMatrix});
    InjectorScope scope(&inj);
    std::vector<float> data = {0.0F, 1.5F, 0.0F, -2.25F, 3.0F, 0.0F};
    const long long idx = maybe_flip(FlipTarget::kMatrix, data.data(),
                                     static_cast<long long>(data.size()));
    return std::make_pair(idx, data);
  };
  const auto [i1, d1] = run();
  const auto [i2, d2] = run();
  ASSERT_GE(i1, 0);
  EXPECT_EQ(i1, i2);
  // Byte comparison: a bit-30 flip can land on NaN, where operator== is
  // false even for identical corruption.
  EXPECT_EQ(std::memcmp(d1.data(), d2.data(), d1.size() * sizeof(float)), 0);
  // The victim was a live (nonzero) value.
  const std::vector<float> orig = {0.0F, 1.5F, 0.0F, -2.25F, 3.0F, 0.0F};
  EXPECT_NE(std::memcmp(&d1[static_cast<std::size_t>(i1)],
                        &orig[static_cast<std::size_t>(i1)], sizeof(float)),
            0);
  EXPECT_TRUE(i1 == 1 || i1 == 3 || i1 == 4);
}

// --- Krylov invariant monitor ---------------------------------------------

TEST(KrylovMonitor, InjectedDirectionFlipTripsGmresDrift) {
  auto a = laplacian1d(400);
  solver::LinearOperator op;
  op.n = a.n;
  op.apply = [&a](const double* v, double* y) { a.spmv(v, y); };
  solver::IdentityPreconditioner prec(a.n);
  auto b = test_vector(a.n);

  solver::GmresOptions go;
  go.rtol = 1e-10;
  go.restart = 10;
  go.max_iters = 200;
  go.sdc_drift_tol = 1e-2;

  // Clean run: monitor armed, nothing suspected.
  {
    std::vector<double> x(static_cast<std::size_t>(a.n), 0.0);
    auto res = solver::gmres(op, prec, b, x, go);
    EXPECT_FALSE(res.sdc_suspected);
    EXPECT_LT(res.sdc_drift, 1e-2);
  }
  // One exponent flip in a fresh Krylov direction mid-first-cycle: the
  // recurrence and the true residual part ways, seen at the next restart.
  {
    FaultInjector inj(7);
    FaultPlan p;
    p.fire_every = 1;
    p.skip_first = 3;
    p.max_fires = 1;
    inj.arm(FaultSite::kBitFlip, p);
    inj.set_bit_flip({.bit = 57, .target = FlipTarget::kKrylov});
    InjectorScope scope(&inj);
    std::vector<double> x(static_cast<std::size_t>(a.n), 0.0);
    auto res = solver::gmres(op, prec, b, x, go);
    EXPECT_EQ(inj.fires(FaultSite::kBitFlip), 1);
    EXPECT_TRUE(res.sdc_suspected);
    EXPECT_GT(res.sdc_drift, 1e-2);
  }
}

// --- physical admissibility scan ------------------------------------------

TEST(Admissibility, CompressibleChecksDensityAndPressure) {
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kCompressible;
  const int nv = 50;
  // rho=1, u=(0.3,0,0), E comfortably above kinetic energy.
  std::vector<double> x(static_cast<std::size_t>(nv) * 5);
  for (int v = 0; v < nv; ++v) {
    double* q = &x[static_cast<std::size_t>(v) * 5];
    q[0] = 1.0;
    q[1] = 0.3;
    q[2] = q[3] = 0.0;
    q[4] = 2.0;
  }
  EXPECT_TRUE(cfd::scan_admissibility(cfg, x).ok());

  auto bad = x;
  bad[5 * 7 + 0] = -1.0;  // negative density at vertex 7
  auto rep = cfd::scan_admissibility(cfg, bad);
  EXPECT_EQ(rep.violations, 1);
  EXPECT_EQ(rep.first_bad_vertex, 7);

  bad = x;
  bad[5 * 3 + 4] = 0.01;  // E below kinetic energy -> negative pressure
  rep = cfd::scan_admissibility(cfg, bad);
  EXPECT_EQ(rep.violations, 1);
  EXPECT_EQ(rep.first_bad_vertex, 3);

  bad = x;
  bad[5 * 9 + 2] = std::numeric_limits<double>::quiet_NaN();
  bad[5 * 4 + 1] = std::numeric_limits<double>::infinity();
  rep = cfd::scan_admissibility(cfg, bad);
  EXPECT_EQ(rep.violations, 2);
  EXPECT_EQ(rep.first_bad_vertex, 4);
}

TEST(Admissibility, IncompressibleGaugePressureMayBeNegative) {
  // Artificial-compressibility pressure has no positivity constraint:
  // a legitimately negative gauge pressure must NOT trip the watchdog.
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  std::vector<double> x = {-0.5, 1.0, 0.0, 0.0, -2.0, 0.9, 0.1, 0.0};
  EXPECT_TRUE(cfd::scan_admissibility(cfg, x).ok());
  x[5] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(cfd::scan_admissibility(cfg, x).ok());
}

TEST(Admissibility, VerdictIsThreadCountInvariant) {
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kCompressible;
  const int nv = 5000;
  std::vector<double> x(static_cast<std::size_t>(nv) * 5);
  for (int v = 0; v < nv; ++v) {
    double* q = &x[static_cast<std::size_t>(v) * 5];
    q[0] = 1.0;
    q[1] = 0.1;
    q[2] = q[3] = 0.0;
    q[4] = 2.0;
  }
  x[5 * 1234 + 0] = -3.0;
  x[5 * 4001 + 0] = -3.0;
  const int before = exec::pool().num_threads();
  for (int nt : {1, 2, 4, 8}) {
    exec::set_threads(nt);
    auto rep = cfd::scan_admissibility(cfg, x);
    EXPECT_EQ(rep.violations, 2) << nt << " threads";
    EXPECT_EQ(rep.first_bad_vertex, 1234) << nt << " threads";
  }
  exec::set_threads(before);
}

// --- psi-NKS SDC rungs ----------------------------------------------------

solver::PtcOptions sdc_options(cfd::Model model) {
  solver::PtcOptions o;
  o.cfl0 = 20.0;
  o.max_steps = model == cfd::Model::kCompressible ? 60 : 40;
  o.rtol = 1e-6;
  o.num_subdomains = 2;
  o.schwarz.fill_level = 1;
  o.matrix_free = false;  // exercise the ABFT-guarded assembled path
  o.recovery.enabled = true;
  o.sdc.enabled = true;
  return o;
}

solver::PtcResult run_wing_sdc(cfd::Model model, FaultInjector* inj,
                               const solver::PtcOptions& o,
                               std::vector<double>* x_out = nullptr) {
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 6, .ny = 3, .nz = 3});
  cfd::FlowConfig cfg;
  cfg.model = model;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  solver::PtcOptions opts = o;
  opts.fault_injector = inj;
  auto res = solver::ptc_solve(prob, x, opts);
  if (x_out != nullptr) *x_out = x;
  return res;
}

TEST(PtcSdc, MatrixFlipDetectedByAbftAndClearedByRecompute) {
  FaultInjector inj(11);
  FaultPlan p;
  p.fire_every = 1;
  p.skip_first = 1;
  p.max_fires = 1;
  inj.arm(FaultSite::kBitFlip, p);
  inj.set_bit_flip({.bit = 58, .target = FlipTarget::kMatrix});
  auto res = run_wing_sdc(cfd::Model::kIncompressible, &inj, sdc_options(cfd::Model::kIncompressible));
  EXPECT_EQ(inj.fires(FaultSite::kBitFlip), 1);
  EXPECT_GT(res.sdc_detections, 0);
  EXPECT_GT(res.sdc_recomputes, 0);
  EXPECT_GT(res.recovery_log.count(RecoveryAction::kDetectSdc), 0);
  EXPECT_GT(res.recovery_log.count(RecoveryAction::kSdcRecompute), 0);
  EXPECT_TRUE(res.converged);
}

TEST(PtcSdc, MatrixFlipAbortsWithoutRecoveryLadder) {
  FaultInjector inj(11);
  FaultPlan p;
  p.fire_every = 1;
  p.skip_first = 1;
  p.max_fires = 1;
  inj.arm(FaultSite::kBitFlip, p);
  inj.set_bit_flip({.bit = 58, .target = FlipTarget::kMatrix});
  auto o = sdc_options(cfd::Model::kIncompressible);
  o.recovery.enabled = false;
  EXPECT_THROW(run_wing_sdc(cfd::Model::kIncompressible, &inj, o),
               f3d::NumericalError);
}

TEST(PtcSdc, PersistentStateCorruptionRollsBackToVerifiedState) {
  // A sign flip in the committed compressible state (seed 17 lands the
  // deterministically selected element on a density entry). The flipped
  // vector is a legal-if-terrible Newton initial guess — only the
  // step-entry admissibility scan sees the corruption, and recompute
  // cannot help, so detection goes straight to the rollback rung. After
  // restoring the last verified state the trajectory must be EXACTLY the
  // clean run's: rollback costs a detection, not an answer.
  const auto o = sdc_options(cfd::Model::kCompressible);
  std::vector<double> x_clean;
  const auto clean = run_wing_sdc(cfd::Model::kCompressible, nullptr, o,
                                  &x_clean);
  ASSERT_TRUE(clean.converged);

  FaultInjector inj(17);
  FaultPlan p;
  p.fire_every = 1;
  p.skip_first = 2;  // fire on the third committed state
  p.max_fires = 1;
  inj.arm(FaultSite::kBitFlip, p);
  inj.set_bit_flip({.bit = 63, .target = FlipTarget::kState});
  std::vector<double> x_faulty;
  auto res = run_wing_sdc(cfd::Model::kCompressible, &inj, o, &x_faulty);

  EXPECT_EQ(inj.fires(FaultSite::kBitFlip), 1);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.sdc_detections, 0);
  EXPECT_EQ(res.sdc_rollbacks, 1);
  EXPECT_GT(res.recovery_log.count(RecoveryAction::kDetectSdc), 0);
  EXPECT_EQ(res.recovery_log.count(RecoveryAction::kSdcRollback), 1);
  EXPECT_EQ(res.steps, clean.steps);
  ASSERT_EQ(x_faulty.size(), x_clean.size());
  EXPECT_EQ(std::memcmp(x_faulty.data(), x_clean.data(),
                        x_clean.size() * sizeof(double)),
            0);
}

TEST(PtcSdc, StateCorruptionAbortsWithoutRecoveryLadder) {
  FaultInjector inj(17);
  FaultPlan p;
  p.fire_every = 1;
  p.skip_first = 2;
  p.max_fires = 1;
  inj.arm(FaultSite::kBitFlip, p);
  inj.set_bit_flip({.bit = 63, .target = FlipTarget::kState});
  auto o = sdc_options(cfd::Model::kCompressible);
  o.recovery.enabled = false;
  EXPECT_THROW(run_wing_sdc(cfd::Model::kCompressible, &inj, o),
               f3d::NumericalError);
}

// --- checkpoint integrity: exhaustive corruption sweep --------------------

PtcCheckpoint small_checkpoint() {
  PtcCheckpoint ck;
  ck.step = 12;
  ck.steps_done = 12;
  ck.x = {1.0, -2.5, 3.25, 0.0, 1e-7, 42.0};
  ck.rnorm = 1e-4;
  ck.r0 = 1.0;
  ck.cfl_relax = 0.5;
  ck.function_evaluations = 99;
  ck.total_linear_iterations = 321;
  ck.gmres_restart = 20;
  ck.has_injector = true;
  FaultInjector inj(5);
  FaultPlan p;
  p.fire_every = 3;
  inj.arm(FaultSite::kResidual, p);
  for (int d = 0; d < 10; ++d) inj.should_fire(FaultSite::kResidual);
  ck.injector = inj.state();
  ck.log.add(3, RecoveryAction::kStepRejected, "attempt 1");
  ck.log.add(7, RecoveryAction::kDetectSdc, "test");
  return ck;
}

TEST(CheckpointIntegrity, EverySingleByteCorruptionIsRejected) {
  const std::string blob = encode_checkpoint(small_checkpoint());
  ASSERT_GT(blob.size(), 0u);
  ASSERT_TRUE(decode_checkpoint(blob).has_value());
  for (std::size_t i = 0; i < blob.size(); ++i) {
    for (unsigned char mask : {0x01, 0x80, 0xFF}) {
      std::string bad = blob;
      bad[i] = static_cast<char>(static_cast<unsigned char>(bad[i]) ^ mask);
      EXPECT_FALSE(decode_checkpoint(bad).has_value())
          << "byte " << i << " mask " << static_cast<int>(mask);
    }
  }
}

TEST(CheckpointIntegrity, EveryTruncationLengthIsRejected) {
  const std::string blob = encode_checkpoint(small_checkpoint());
  for (std::size_t len = 0; len < blob.size(); ++len)
    EXPECT_FALSE(decode_checkpoint(blob.substr(0, len)).has_value())
        << "length " << len;
  // Trailing garbage after a valid image must also be rejected.
  EXPECT_FALSE(decode_checkpoint(blob + "x").has_value());
}

// --- hardened JSON parser -------------------------------------------------

TEST(JsonHardening, MalformedInputCorpusThrowsCleanly) {
  const std::vector<std::string> corpus = {
      "",                          // empty input
      "   ",                       // whitespace only
      "tru",                       // truncated literals
      "fals",
      "nul",
      "truex",
      "\"abc",                     // unterminated string
      "\"abc\\",                   // unterminated escape
      "\"\\q\"",                   // unknown escape
      "\"\\u12",                   // truncated \u escape
      "\"\\u12zz\"",               // bad hex digit
      "\"\\ud800\"",               // lone high surrogate
      "\"\\ud800x\"",              // high surrogate, no low
      "\"\\ud800\\u0041\"",        // high surrogate + non-surrogate
      "\"\\udc00\"",               // lone low surrogate
      "{\"a\":1",                  // unterminated object
      "{\"a\" 1}",                 // missing colon
      "{\"a\":}",                  // missing value
      "{1:2}",                     // non-string key
      "[1,",                       // unterminated array
      "[1 2]",                     // missing comma
      "1e999",                     // double overflow -> inf
      "-1e999",
      "1e+999999",
      "-",                         // sign with no digits... parsed as token
      "--1",
      "1.2.3",
      "0x10",                      // hex is not JSON
      "[] []",                     // trailing characters
      "{} garbage",
  };
  for (const auto& s : corpus)
    EXPECT_THROW((void)obs::parse_json(s), std::runtime_error) << "'" << s << "'";
}

TEST(JsonHardening, DeepNestingIsRejectedNotAStackOverflow) {
  std::string deep_array(100000, '[');
  EXPECT_THROW((void)obs::parse_json(deep_array), std::runtime_error);
  std::string deep_object;
  for (int i = 0; i < 50000; ++i) deep_object += "{\"k\":";
  EXPECT_THROW((void)obs::parse_json(deep_object), std::runtime_error);
  // Moderate nesting still parses.
  std::string ok(100, '[');
  ok += std::string(100, ']');
  EXPECT_NO_THROW((void)obs::parse_json(ok));
}

TEST(JsonHardening, SurrogatePairsDecodeToUtf8) {
  const auto v = obs::parse_json("\"\\ud83d\\ude00\"");  // U+1F600
  ASSERT_EQ(v.kind, obs::Json::Kind::kString);
  EXPECT_EQ(v.s, "\xF0\x9F\x98\x80");
}

TEST(JsonHardening, IntegerOverflowFallsBackToDouble) {
  const auto v = obs::parse_json("92233720368547758080");  // > int64 max
  ASSERT_EQ(v.kind, obs::Json::Kind::kDouble);
  EXPECT_NEAR(v.d, 9.223372036854776e19, 1e5);
  const auto w = obs::parse_json("9223372036854775807");  // == int64 max
  ASSERT_EQ(w.kind, obs::Json::Kind::kInt);
  EXPECT_EQ(w.i, 9223372036854775807LL);
}

// --- ABFT false-positive guarantee on a long clean solve ------------------

TEST(CleanRun, TwoThousandStepsZeroDetectionsAndGuardsAreBitTransparent) {
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 4, .ny = 3, .nz = 3});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;

  auto run = [&](bool guards, int threads) {
    exec::set_threads(threads);
    cfd::EulerDiscretization disc(m, cfg);
    cfd::EulerProblem prob(disc, -1.0);
    auto x = prob.initial_state();
    solver::PtcOptions o;
    o.cfl0 = 20.0;
    o.max_steps = 2000;
    o.rtol = 1e-300;  // unreachable: force all 2000 steps
    o.num_subdomains = 2;
    o.schwarz.fill_level = 1;
    o.matrix_free = false;  // ABFT verifies every Krylov product
    o.jacobian_refresh = 4;
    o.recovery.enabled = true;
    o.sdc.enabled = guards;
    auto res = solver::ptc_solve(prob, x, o);
    EXPECT_EQ(res.steps, 2000);
    EXPECT_EQ(res.sdc_detections, 0);
    EXPECT_EQ(res.sdc_recomputes, 0);
    EXPECT_EQ(res.sdc_rollbacks, 0);
    EXPECT_EQ(res.recovery_log.count(RecoveryAction::kDetectSdc), 0);
    return x;
  };

  const int before = exec::pool().num_threads();
  const auto guarded1 = run(true, 1);
  for (int nt : {2, 4}) {
    const auto guarded = run(true, nt);
    EXPECT_EQ(std::memcmp(guarded.data(), guarded1.data(),
                          guarded1.size() * sizeof(double)),
              0)
        << nt << " threads drifted from the 1-thread state";
  }
  // Guards off, same run: the watchdog must be observation-only.
  const auto plain = run(false, 1);
  EXPECT_EQ(std::memcmp(plain.data(), guarded1.data(),
                        guarded1.size() * sizeof(double)),
            0)
      << "enabling the SDC guards changed the computed state";
  exec::set_threads(before);
}

TEST(CleanRun, MixedPrecisionTwoThousandStepsZeroFalsePositives) {
  // End-to-end mixed precision under the full SDC guard stack: the float
  // Krylov operator's products are ABFT-verified against the widened
  // FLT_EPSILON bound on every iteration of every step — a clean run
  // must never trip it.
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 4, .ny = 3, .nz = 3});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  solver::PtcOptions o;
  o.cfl0 = 20.0;
  o.max_steps = 2000;
  o.rtol = 1e-300;  // unreachable: force all 2000 steps
  o.num_subdomains = 2;
  o.schwarz.fill_level = 1;
  o.schwarz.single_precision = true;
  o.matrix_free = false;
  o.matrix_single_precision = true;
  o.jacobian_refresh = 4;
  o.recovery.enabled = true;
  o.sdc.enabled = true;
  auto res = solver::ptc_solve(prob, x, o);
  EXPECT_EQ(res.steps, 2000);
  EXPECT_EQ(res.sdc_detections, 0);
  EXPECT_EQ(res.sdc_recomputes, 0);
  EXPECT_EQ(res.sdc_rollbacks, 0);
  EXPECT_EQ(res.recovery_log.count(RecoveryAction::kDetectSdc), 0);
}

TEST(PtcSdc, MixedPrecisionMatrixFlipDetectedByAbft) {
  // A flip landing in the float operator after the checksum rebuild is
  // exactly what the widened guard must still catch.
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 4, .ny = 3, .nz = 3});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();

  FaultInjector inj(7);
  FaultPlan p;
  p.fire_every = 3;  // one flip a few refreshes in
  inj.arm(FaultSite::kBitFlip, p);
  inj.set_bit_flip({.bit = 28, .target = FlipTarget::kMatrix});
  InjectorScope scope(&inj);

  solver::PtcOptions o;
  o.cfl0 = 20.0;
  o.max_steps = 30;
  o.rtol = 1e-300;
  o.num_subdomains = 2;
  o.matrix_free = false;
  o.matrix_single_precision = true;
  o.schwarz.single_precision = true;
  o.jacobian_refresh = 1;  // refresh (and so flip opportunity) every step
  o.recovery.enabled = true;
  o.sdc.enabled = true;
  auto res = solver::ptc_solve(prob, x, o);
  EXPECT_GT(res.sdc_detections, 0)
      << "float-exponent flip in the mixed-precision operator escaped ABFT";
}

}  // namespace
