// Fault-isolated scenario fleet: batch-spec expansion determinism, the
// CRC-framed scenario journal (including the SIGKILL-style truncation
// property sweep at every byte boundary), the retry/quarantine ladder,
// admission control with supersede budget reclaim, kill-and-restart
// exactly-once semantics, worker-count determinism, and the tuning DB's
// atomic save under concurrent readers/writers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "fleet/journal.hpp"
#include "fleet/service.hpp"
#include "fleet/spec.hpp"
#include "obs/json.hpp"
#include "tune/db.hpp"

namespace {

using namespace f3d;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string s((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return s;
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------------- spec

const char* kSweepSpec = R"({
  "schema": "f3d-fleet-batch-v1",
  "name": "sweep-test",
  "seed": 7,
  "defaults": {"rtol": 1e-4, "max_steps": 60, "work_units": 0},
  "sweep": {"vertices": [150], "mach": [0.2, 0.3], "alpha_deg": [0.0, 2.0]}
})";

TEST(FleetSpec, SweepExpansionIsDeterministic) {
  const auto spec = fleet::BatchSpec::parse(kSweepSpec);
  ASSERT_EQ(spec.scenarios.size(), 4u);
  // vertices outermost, then mach, then alpha; ids dense in that order.
  EXPECT_EQ(spec.scenarios[0].id, 0);
  EXPECT_DOUBLE_EQ(spec.scenarios[0].mach, 0.2);
  EXPECT_DOUBLE_EQ(spec.scenarios[0].alpha_deg, 0.0);
  EXPECT_DOUBLE_EQ(spec.scenarios[1].alpha_deg, 2.0);
  EXPECT_DOUBLE_EQ(spec.scenarios[2].mach, 0.3);
  EXPECT_EQ(spec.scenarios[3].id, 3);
  EXPECT_DOUBLE_EQ(spec.scenarios[0].rtol, 1e-4);
  EXPECT_EQ(spec.scenarios[0].max_steps, 60);
  EXPECT_EQ(spec.scenarios[0].name, "v150-m0.200-a0.00");
  // Hash is stable across re-parses of the same text...
  EXPECT_EQ(spec.content_hash(), fleet::BatchSpec::parse(kSweepSpec).content_hash());
  // ...and sensitive to the expanded content.
  std::string other(kSweepSpec);
  other.replace(other.find("0.3"), 3, "0.4");
  EXPECT_NE(spec.content_hash(), fleet::BatchSpec::parse(other).content_hash());
}

TEST(FleetSpec, ExplicitScenariosAppendAfterSweep) {
  const auto spec = fleet::BatchSpec::parse(R"({
    "schema": "f3d-fleet-batch-v1",
    "sweep": {"mach": [0.2, 0.3]},
    "scenarios": [
      {"mach": 0.5, "priority": 5, "name": "rush"},
      {"mach": 0.6, "supersedes": 0}
    ]
  })");
  ASSERT_EQ(spec.scenarios.size(), 4u);
  EXPECT_EQ(spec.scenarios[2].name, "rush");
  EXPECT_EQ(spec.scenarios[2].priority, 5);
  EXPECT_EQ(spec.scenarios[3].supersedes, 0);
}

TEST(FleetSpec, StrictParseRejectsMalformedDocuments) {
  EXPECT_THROW((void)fleet::BatchSpec::parse("{}"), Error);
  EXPECT_THROW((void)fleet::BatchSpec::parse(R"({"schema": "wrong"})"), Error);
  EXPECT_THROW(
      (void)fleet::BatchSpec::parse(
          R"({"schema": "f3d-fleet-batch-v1", "bogus": 1,
              "sweep": {"mach": [0.2]}})"),
      Error);
  // No scenarios at all.
  EXPECT_THROW(
      (void)fleet::BatchSpec::parse(R"({"schema": "f3d-fleet-batch-v1"})"),
      Error);
  // supersedes must name an EARLIER scenario.
  EXPECT_THROW((void)fleet::BatchSpec::parse(R"({
    "schema": "f3d-fleet-batch-v1",
    "scenarios": [{"mach": 0.2, "supersedes": 0}]
  })"),
               Error);
}

// ---------------------------------------------------------------- journal

fleet::JournalRecord rec(fleet::RecordType t, int id, int attempt,
                         std::string detail = {}) {
  fleet::JournalRecord r;
  r.type = t;
  r.scenario_id = id;
  r.attempt = attempt;
  r.detail = std::move(detail);
  return r;
}

TEST(FleetJournal, RoundTripRecoversTerminalSets) {
  const std::string path = temp_path("journal_roundtrip.fjl");
  {
    auto j = fleet::Journal::create(path, 0xDEADBEEF, "batch-a");
    j.append(rec(fleet::RecordType::kStart, 0, 0));
    j.append(rec(fleet::RecordType::kCommit, 0, 0, "verdict=converged"));
    j.append(rec(fleet::RecordType::kStart, 1, 0));
    j.append(rec(fleet::RecordType::kStart, 1, 1));
    j.append(rec(fleet::RecordType::kQuarantine, 1, 1, "poison"));
    j.append(rec(fleet::RecordType::kShed, 2, 0, "over budget"));
    j.append(rec(fleet::RecordType::kCancel, 3, 0, "superseded"));
    j.append(rec(fleet::RecordType::kStart, 4, 0));
  }
  const auto st = fleet::Journal::replay(path);
  EXPECT_EQ(st.batch_hash, 0xDEADBEEFu);
  EXPECT_EQ(st.batch_name, "batch-a");
  EXPECT_EQ(st.committed, std::set<int>{0});
  EXPECT_EQ(st.quarantined, std::set<int>{1});
  EXPECT_EQ(st.shed, std::set<int>{2});
  EXPECT_EQ(st.cancelled, std::set<int>{3});
  EXPECT_EQ(st.attempts_started.at(1), 2);
  EXPECT_EQ(st.bytes_discarded, 0u);
  EXPECT_EQ(st.terminal_detail.at(1), "poison");
  // Scenario 4 started but never finished: it is the pending set.
  EXPECT_EQ(st.pending(5), std::vector<int>{4});
  EXPECT_TRUE(st.is_terminal(0));
  EXPECT_FALSE(st.is_terminal(4));
}

// The SIGKILL property: truncate the journal at EVERY byte boundary and
// replay. No truncation point may lose a fully framed decision, invent
// one, or crash the replayer — the torn tail is discarded, exactly.
TEST(FleetJournal, TruncationAtEveryByteBoundaryIsSafe) {
  const std::string path = temp_path("journal_trunc.fjl");
  {
    auto j = fleet::Journal::create(path, 42, "trunc");
    for (int id = 0; id < 6; ++id) {
      j.append(rec(fleet::RecordType::kStart, id, 0));
      j.append(rec(fleet::RecordType::kCommit, id, 0, "c"));
    }
  }
  const std::string full = slurp(path);
  const auto full_state = fleet::Journal::replay(path);
  ASSERT_EQ(full_state.committed.size(), 6u);

  const std::string cut = temp_path("journal_cut.fjl");
  std::set<int> prev_committed;
  for (std::size_t n = 12; n <= full.size(); ++n) {
    spew(cut, full.substr(0, n));
    const auto st = fleet::Journal::replay(cut);
    EXPECT_EQ(st.batch_hash, 42u);
    // Committed sets grow monotonically with the prefix length and are
    // always a prefix of {0, 1, ..., 5} in commit order.
    EXPECT_GE(st.committed.size(), prev_committed.size());
    for (int id : st.committed)
      EXPECT_LT(id, static_cast<int>(st.committed.size()));
    // A full replay discards nothing; a truncated one only ever loses
    // the torn tail, never a framed decision.
    if (st.frames_replayed == 13u) {
      EXPECT_EQ(st.bytes_discarded, 0u);
    }
    prev_committed = st.committed;
  }
  EXPECT_EQ(prev_committed.size(), 6u);

  // Headers shorter than 12 bytes are a hard error, not a quiet empty.
  spew(cut, full.substr(0, 7));
  EXPECT_THROW((void)fleet::Journal::replay(cut), Error);
}

TEST(FleetJournal, CorruptedFrameByteDiscardsTail) {
  const std::string path = temp_path("journal_flip.fjl");
  {
    auto j = fleet::Journal::create(path, 1, "flip");
    j.append(rec(fleet::RecordType::kCommit, 0, 0, "first"));
    j.append(rec(fleet::RecordType::kCommit, 1, 0, "second"));
  }
  std::string bytes = slurp(path);
  // Flip one payload byte of the SECOND commit frame: its CRC fails, the
  // first commit survives, the flipped frame and everything after die.
  bytes[bytes.size() - 3] ^= 0x40;
  spew(path, bytes);
  const auto st = fleet::Journal::replay(path);
  EXPECT_EQ(st.committed, std::set<int>{0});
  EXPECT_GT(st.bytes_discarded, 0u);
}

TEST(FleetJournal, AppendToRefusesForeignBatchAndHealsTornTail) {
  const std::string path = temp_path("journal_heal.fjl");
  {
    auto j = fleet::Journal::create(path, 77, "heal");
    j.append(rec(fleet::RecordType::kCommit, 0, 0, "ok"));
    j.append(rec(fleet::RecordType::kStart, 1, 0));
  }
  // Tear the last frame mid-write.
  std::string bytes = slurp(path);
  spew(path, bytes.substr(0, bytes.size() - 5));

  EXPECT_THROW((void)fleet::Journal::append_to(path, 78), Error);

  {
    auto j = fleet::Journal::append_to(path, 77);
    j.append(rec(fleet::RecordType::kCommit, 1, 0, "resumed"));
  }
  const auto st = fleet::Journal::replay(path);
  EXPECT_EQ(st.committed, (std::set<int>{0, 1}));
  EXPECT_EQ(st.bytes_discarded, 0u);  // torn tail healed on append_to
}

TEST(FleetJournal, DoubleTerminalFrameIsACorruptionError) {
  const std::string path = temp_path("journal_double.fjl");
  {
    auto j = fleet::Journal::create(path, 5, "double");
    j.append(rec(fleet::RecordType::kCommit, 0, 0, "a"));
    j.append(rec(fleet::RecordType::kCancel, 0, 0, "b"));
  }
  EXPECT_THROW((void)fleet::Journal::replay(path), Error);
}

// ---------------------------------------------------------------- service

// Small-but-real batches: 150-vertex compressible solves at loose
// tolerance, a few hundred ms each.
fleet::BatchSpec small_batch() { return fleet::BatchSpec::parse(kSweepSpec); }

fleet::FleetOptions quick_opts() {
  fleet::FleetOptions o;
  o.backoff_base_ms = 0;  // no sleeping in tests
  return o;
}

TEST(FleetService, CommitsWholeBatchAndIsDeterministic) {
  const auto spec = small_batch();
  fleet::Service svc(quick_opts());
  const auto a = svc.serve(spec);
  ASSERT_EQ(a.scenarios.size(), 4u);
  EXPECT_EQ(a.committed, 4);
  EXPECT_EQ(a.quarantined + a.shed + a.cancelled + a.pending, 0);
  for (const auto& sc : a.scenarios) {
    EXPECT_EQ(sc.status, fleet::ScenarioStatus::kCommitted);
    EXPECT_EQ(sc.attempts, 1);
    EXPECT_NE(sc.solution_crc, 0u);
  }
  // Different Mach numbers genuinely solve different problems.
  EXPECT_NE(a.scenarios[0].solution_crc, a.scenarios[2].solution_crc);

  // Re-serving the same spec reproduces every solution bit-for-bit (the
  // shared-artifact cache is reused; results must not change).
  const auto b = svc.serve(spec);
  for (std::size_t i = 0; i < a.scenarios.size(); ++i)
    EXPECT_EQ(a.scenarios[i].solution_crc, b.scenarios[i].solution_crc);
}

TEST(FleetService, WorkerCountDoesNotChangeSolutions) {
  const auto spec = small_batch();
  fleet::Service one(quick_opts());
  const auto ra = one.serve(spec);

  auto opts = quick_opts();
  opts.workers = 3;
  fleet::Service many(opts);
  const auto rb = many.serve(spec);
  ASSERT_EQ(rb.committed, 4);
  for (std::size_t i = 0; i < ra.scenarios.size(); ++i)
    EXPECT_EQ(ra.scenarios[i].solution_crc, rb.scenarios[i].solution_crc);
}

TEST(FleetService, FragileKnobsRecoverOnTheSafeDefaultsRung) {
  auto spec = small_batch();
  spec.scenarios[1].knobs = obs::Json::object();
  spec.scenarios[1].knobs.set("ptc.no_such_knob", 1.0);
  fleet::Service svc(quick_opts());
  const auto res = svc.serve(spec);
  EXPECT_EQ(res.committed, 4);
  // Attempt 0 rejected the knobs; attempt 1 (safe defaults) committed.
  EXPECT_EQ(res.scenarios[1].attempts, 2);
  EXPECT_GE(res.retries, 1);
}

TEST(FleetService, PoisonIsQuarantinedWithPostMortem) {
  auto spec = small_batch();
  // A hopeless contract: a work budget far too small for any knob
  // configuration to converge under.
  spec.scenarios[2].work_units = 5;
  auto opts = quick_opts();
  opts.max_attempts = 3;
  fleet::Service svc(opts);
  const auto res = svc.serve(spec);
  EXPECT_EQ(res.committed, 3);
  EXPECT_EQ(res.quarantined, 1);
  const auto& q = res.scenarios[2];
  EXPECT_EQ(q.status, fleet::ScenarioStatus::kQuarantined);
  EXPECT_EQ(q.attempts, 3);
  EXPECT_NE(q.detail.find("poison after 3 attempts"), std::string::npos);
  EXPECT_NE(q.detail.find("deadline"), std::string::npos);
}

TEST(FleetService, AdmissionShedsOverCapacityInSchedulingOrder) {
  auto spec = small_batch();
  for (auto& sc : spec.scenarios) sc.work_units = 1000;
  spec.scenarios[3].priority = 9;  // schedules first despite highest id
  auto opts = quick_opts();
  opts.admission_capacity_units = 2500;  // fits two of the four
  fleet::Service svc(opts);
  const auto res = svc.serve(spec);
  EXPECT_EQ(res.committed, 2);
  EXPECT_EQ(res.shed, 2);
  // Order: 3 (priority 9), then 0, then 1 and 2 are over capacity.
  EXPECT_EQ(res.scenarios[3].status, fleet::ScenarioStatus::kCommitted);
  EXPECT_EQ(res.scenarios[0].status, fleet::ScenarioStatus::kCommitted);
  EXPECT_EQ(res.scenarios[1].status, fleet::ScenarioStatus::kShed);
  EXPECT_EQ(res.scenarios[2].status, fleet::ScenarioStatus::kShed);
  EXPECT_NE(res.scenarios[1].detail.find("admission"), std::string::npos);
}

// Satellite contract: cancelling a queued-but-unstarted scenario releases
// its admitted budget immediately — a later admission in the same pass
// sees the headroom.
TEST(FleetService, SupersedeReleasesAdmittedBudgetImmediately) {
  auto spec = small_batch();
  for (auto& sc : spec.scenarios) sc.work_units = 1000;
  spec.scenarios[1].supersedes = 0;  // B supersedes A
  auto opts = quick_opts();
  opts.admission_capacity_units = 2500;  // A+B fit; C would not — unless
                                         // A's units are reclaimed
  fleet::Service svc(opts);
  const auto res = svc.serve(spec);
  EXPECT_EQ(res.scenarios[0].status, fleet::ScenarioStatus::kCancelled);
  EXPECT_EQ(res.scenarios[1].status, fleet::ScenarioStatus::kCommitted);
  EXPECT_EQ(res.scenarios[2].status, fleet::ScenarioStatus::kCommitted);
  EXPECT_EQ(res.scenarios[3].status, fleet::ScenarioStatus::kShed);
  EXPECT_EQ(res.budget_reclaimed_units, 1000);
  EXPECT_EQ(res.cancelled, 1);
}

TEST(FleetService, KillAndRestartReplaysExactlyThePendingSet) {
  const std::string journal = temp_path("fleet_kill.fjl");
  const auto spec = small_batch();

  auto opts = quick_opts();
  opts.journal_path = journal;
  opts.kill_after_commits = 2;
  fleet::Service first(opts);
  const auto before = first.serve(spec);
  EXPECT_TRUE(before.killed);
  EXPECT_GE(before.committed, 2);
  EXPECT_GT(before.pending, 0);

  const auto mid = fleet::Journal::replay(journal);
  const auto pending = mid.pending(static_cast<int>(spec.scenarios.size()));
  EXPECT_EQ(pending.size(), static_cast<std::size_t>(before.pending));

  auto resume_opts = quick_opts();
  resume_opts.journal_path = journal;
  resume_opts.resume = true;
  fleet::Service second(resume_opts);
  const auto after = second.serve(spec);
  EXPECT_EQ(after.committed, 4);
  EXPECT_EQ(after.pending, 0);
  // Exactly-once: scenarios committed before the kill were replayed from
  // the journal, not re-solved; the rest were solved exactly once.
  int replayed = 0;
  for (const auto& sc : after.scenarios) {
    EXPECT_EQ(sc.status, fleet::ScenarioStatus::kCommitted);
    if (sc.replayed) ++replayed;
  }
  EXPECT_EQ(replayed, before.committed);
  const auto final_state = fleet::Journal::replay(journal);
  EXPECT_EQ(final_state.committed.size(), 4u);
  EXPECT_TRUE(final_state.pending(4).empty());

  // Resuming against a different spec is refused.
  auto other = spec;
  other.scenarios[0].mach = 0.9;
  EXPECT_THROW((void)second.serve(other), Error);
}

// ----------------------------------------------------------- tune DB save

// Satellite contract: Db::save publishes atomically (temp file + rename),
// so concurrent readers hammering load() during repeated saves see either
// a complete old file or a complete new file — never a torn prefix.
TEST(FleetTuneDb, ConcurrentSaveAndLoadNeverSeeTornFiles) {
  const std::string path = temp_path("tunedb_concurrent.json");
  auto make_db = [](int gen) {
    tune::Db db;
    tune::DbEntry e;
    e.key = {"wing-small", "scalar", "double"};
    e.config = obs::Json::object();
    e.config.set("gmres.restart", static_cast<long long>(20 + gen % 40));
    e.score = 1.0 + gen;
    e.baseline_score = 2.0;
    e.strategy = "test";
    e.evaluations = gen;
    db.put(std::move(e));
    return db;
  };
  ASSERT_TRUE(make_db(0).save(path));

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int r = 0; r < 3; ++r)
    readers.emplace_back([&] {
      while (!stop.load()) {
        const tune::Db db = tune::Db::load(path);
        // ok() == false here would mean a torn/partial file was visible.
        if (!db.ok() || db.size() != 1) torn.fetch_add(1);
      }
    });
  std::thread writer([&] {
    for (int gen = 1; gen <= 200; ++gen)
      ASSERT_TRUE(make_db(gen).save(path));
  });
  writer.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);

  const tune::Db last = tune::Db::load(path);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last.entries()[0].evaluations, 200);
}

}  // namespace
