// Tests for f3d::obs — the span tracer, counter/gauge registry, sinks,
// and the PhaseTimers shim over the registry. The thread-count sweeps
// (1/2/4 workers) pin the determinism contract: counter totals and span
// counts are identical regardless of how the work was chunked.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "exec/pool.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

// Global allocation counter for the disabled-mode zero-allocation check.
// The default operator new[] forwards here, so this covers both forms.
namespace {
std::atomic<long long> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace f3d;

TEST(ObsSpan, NestingAndOrdering) {
  obs::Tracer tracer;
  obs::set_tracing(true);
  {
    obs::Span outer(tracer, "outer");
    { obs::Span inner(tracer, "inner"); }
    { obs::Span inner2(tracer, "inner2"); }
  }
  obs::set_tracing(false);

  auto ev = tracer.drain();
  ASSERT_EQ(ev.size(), 3u);
  // drain() sorts by (t0, tid, depth): the outer span starts first and at
  // equal timestamps the smaller depth wins, so "outer" leads.
  EXPECT_STREQ(ev[0].name, "outer");
  EXPECT_EQ(ev[0].depth, 0);
  EXPECT_STREQ(ev[1].name, "inner");
  EXPECT_EQ(ev[1].depth, 1);
  EXPECT_STREQ(ev[2].name, "inner2");
  EXPECT_EQ(ev[2].depth, 1);
  // Containment: children live inside the parent's [t0, t1).
  EXPECT_LE(ev[0].t0_ns, ev[1].t0_ns);
  EXPECT_LE(ev[1].t1_ns, ev[2].t0_ns);
  EXPECT_GE(ev[0].t1_ns, ev[2].t1_ns);
  // drain() clears the buffers.
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(ObsSpan, DisabledSpansRecordNothing) {
  obs::Tracer tracer;
  obs::set_tracing(false);
  {
    obs::Span s(tracer, "ghost");
  }
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(ObsSpan, DisabledSpansAllocateNothing) {
  obs::set_tracing(false);
  obs::Tracer tracer;
  const long long before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    obs::Span s(tracer, "noop");
    F3D_OBS_SPAN("noop_macro");
  }
  const long long after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after);
}

TEST(ObsSpan, PerThreadMergeDeterminism) {
  const std::int64_t n = 256;
  for (int threads : {1, 2, 4}) {
    exec::ThreadScope scope(threads);
    obs::Tracer tracer;
    obs::set_tracing(true);
    exec::pool().parallel_for(
        0, n,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t k = lo; k < hi; ++k) {
            obs::Span s(tracer, "item");
          }
        },
        /*grain=*/1);
    obs::set_tracing(false);
    auto ev = tracer.drain();
    ASSERT_EQ(ev.size(), static_cast<std::size_t>(n)) << threads << " threads";
    std::set<int> tids;
    for (const auto& e : ev) {
      EXPECT_STREQ(e.name, "item");
      EXPECT_LE(e.t0_ns, e.t1_ns);
      tids.insert(e.tid);
    }
    EXPECT_LE(static_cast<int>(tids.size()), threads);
  }
}

TEST(ObsSpan, MacroRecordsToGlobalTracer) {
  obs::Tracer::global().clear();
  obs::set_tracing(true);
  {
    F3D_OBS_SPAN("macro_span");
  }
  obs::set_tracing(false);
  auto ev = obs::Tracer::global().drain();
  bool found = false;
  for (const auto& e : ev)
    if (std::string(e.name) == "macro_span") found = true;
  EXPECT_TRUE(found);
}

TEST(ObsRegistry, CounterIdentityAcrossThreadCounts) {
  const std::int64_t n = 4096;
  for (int threads : {1, 2, 4}) {
    exec::ThreadScope scope(threads);
    obs::Registry reg;
    exec::pool().parallel_for(
        0, n,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t k = lo; k < hi; ++k) reg.count("hits");
        },
        /*grain=*/1);
    EXPECT_EQ(reg.counter("hits"), n) << threads << " threads";
    auto snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("hits"), n);
  }
}

TEST(ObsRegistry, TimesGaugesAndClear) {
  obs::Registry reg;
  reg.add_time("phase", 0.25);
  reg.add_time("phase", 0.25);
  reg.add_time("other", 1.0);
  reg.set_gauge("rate", 0.125);
  reg.set_gauge("rate", 0.5);  // last write wins
  EXPECT_DOUBLE_EQ(reg.seconds("phase"), 0.5);
  EXPECT_DOUBLE_EQ(reg.total_time(), 1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("rate"), 0.5);
  EXPECT_EQ(reg.counter("absent"), 0);
  reg.clear();
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(ObsRegistry, CopyMaterializesMergedSnapshot) {
  obs::Registry reg;
  reg.count("c", 7);
  reg.add_time("t", 2.0);
  obs::Registry copy(reg);
  EXPECT_EQ(copy.counter("c"), 7);
  EXPECT_DOUBLE_EQ(copy.seconds("t"), 2.0);
  copy.count("c", 1);  // copies are independent
  EXPECT_EQ(reg.counter("c"), 7);
  EXPECT_EQ(copy.counter("c"), 8);
}

TEST(ObsJson, ParseRoundTrip) {
  auto root = obs::Json::object();
  root.set("int", 42)
      .set("neg", -7)
      .set("dbl", 0.1)
      .set("str", "a \"quoted\"\nline")
      .set("flag", true)
      .set("nothing", obs::Json());
  auto arr = obs::Json::array();
  arr.push(1).push(2.5).push("three");
  root.set("arr", std::move(arr));

  const std::string text = root.dump();
  auto parsed = obs::parse_json(text);
  // %.17g doubles make dump -> parse -> dump a fixed point.
  EXPECT_EQ(parsed.dump(), text);
  ASSERT_NE(parsed.find("arr"), nullptr);
  EXPECT_EQ(parsed.find("arr")->items.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.find("dbl")->number(), 0.1);
  EXPECT_EQ(parsed.find("str")->s, "a \"quoted\"\nline");
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_THROW(obs::parse_json("{"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("nul"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("{} junk"), std::runtime_error);
}

TEST(ObsTrace, ChromeTraceRoundTrip) {
  obs::Tracer tracer;
  obs::set_tracing(true);
  {
    obs::Span a(tracer, "alpha");
    { obs::Span b(tracer, "beta"); }
  }
  obs::set_tracing(false);
  auto ev = tracer.drain();
  ASSERT_EQ(ev.size(), 2u);

  obs::Registry reg;
  reg.count("k.iterations", 11);
  reg.add_time("k.time", 0.25);
  const auto snap = reg.snapshot();

  auto trace = obs::chrome_trace_json(ev, &snap);
  auto parsed = obs::parse_json(trace.dump());

  const auto* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items.size(), 2u);
  for (const auto& e : events->items) {
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    EXPECT_EQ(e.find("ph")->s, "X");
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("dur"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
  }
  const auto* meta = parsed.find("meta");
  ASSERT_NE(meta, nullptr);
  ASSERT_NE(meta->find("schema"), nullptr);
  EXPECT_EQ(meta->find("schema")->s, obs::kTraceSchema);
  ASSERT_NE(meta->find("counters"), nullptr);
  EXPECT_DOUBLE_EQ(meta->find("counters")->find("k.iterations")->number(), 11);
}

TEST(ObsTrace, BenchReportEnvelope) {
  auto series = obs::Json::object();
  series.set("value", 3.5);
  auto report = obs::make_bench_report("demo", std::move(series));
  EXPECT_TRUE(obs::is_bench_report(report));
  EXPECT_EQ(report.find("meta")->find("schema")->s, obs::kBenchSchema);
  EXPECT_EQ(report.find("meta")->find("experiment")->s, "demo");
  EXPECT_DOUBLE_EQ(report.find("series")->find("value")->number(), 3.5);

  auto bare = obs::Json::object();
  bare.set("value", 1);
  EXPECT_FALSE(obs::is_bench_report(bare));
  EXPECT_FALSE(obs::is_bench_report(obs::Json(3)));
}

TEST(ObsTrace, CsvSinks) {
  obs::Tracer tracer;
  obs::set_tracing(true);
  {
    obs::Span a(tracer, "work");
  }
  obs::set_tracing(false);
  const auto csv = obs::spans_csv(tracer.drain());
  EXPECT_NE(csv.find("name,tid,depth,t0_us,dur_us"), std::string::npos);
  EXPECT_NE(csv.find("work"), std::string::npos);

  obs::Registry reg;
  reg.count("c", 2);
  reg.set_gauge("g", 1.5);
  const auto snap_csv = obs::snapshot_csv(reg.snapshot());
  EXPECT_NE(snap_csv.find("kind,name,value"), std::string::npos);
  EXPECT_NE(snap_csv.find("counter,c,2"), std::string::npos);
  EXPECT_NE(snap_csv.find("gauge,g"), std::string::npos);
}

TEST(ObsTable, RegistryAndSpanTables) {
  obs::Registry reg;
  reg.count("widgets", 5);
  reg.add_time("phase", 0.5);
  const auto rt = registry_table(reg.snapshot()).to_string();
  EXPECT_NE(rt.find("widgets"), std::string::npos);
  EXPECT_NE(rt.find("phase"), std::string::npos);

  obs::Tracer tracer;
  obs::set_tracing(true);
  for (int i = 0; i < 3; ++i) {
    obs::Span s(tracer, "rep");
  }
  obs::set_tracing(false);
  const auto st = spans_table(tracer.drain()).to_string();
  EXPECT_NE(st.find("rep"), std::string::npos);
  EXPECT_NE(st.find("| 3"), std::string::npos);  // count column
}

TEST(ObsPhaseTimers, ShimAccumulatesAndMerges) {
  PhaseTimers pt;
  pt.add("flux", 0.25);
  pt.add("flux", 0.25);
  pt.add("krylov", 1.0);
  EXPECT_DOUBLE_EQ(pt.get("flux"), 0.5);
  EXPECT_DOUBLE_EQ(pt.total(), 1.5);
  auto b = pt.buckets();
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b.at("krylov"), 1.0);
  pt.clear();
  EXPECT_DOUBLE_EQ(pt.total(), 0.0);
}

TEST(ObsPhaseTimers, ConcurrentScopesFromPoolWorkers) {
  for (int threads : {1, 2, 4}) {
    exec::ThreadScope scope(threads);
    PhaseTimers pt;
    const std::int64_t n = 64;
    exec::pool().parallel_for(
        0, n,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t k = lo; k < hi; ++k) {
            PhaseTimers::Scope s(pt, "phase");
            volatile double sink = 0;
            for (int it = 0; it < 100; ++it) sink = sink + 1.0;
          }
        },
        /*grain=*/1);
    // Every scope contributed; the total is positive and the bucket map
    // merges the shards.
    EXPECT_GT(pt.get("phase"), 0.0) << threads << " threads";
    EXPECT_EQ(pt.buckets().size(), 1u);
  }
}

}  // namespace
