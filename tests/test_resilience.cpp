// Resilience subsystem tests: the deterministic fault injector, the
// status-returning factorization paths, the Schwarz shift ladder, the
// GMRES stagnation watchdog, BiCGStab breakdown propagation, the psi-NKS
// recovery ladder (a seeded 4-class fault campaign on a small wing mesh),
// and the checkpoint/kill/resume round trip.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cfd/problem.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "mesh/generator.hpp"
#include "par/loadmodel.hpp"
#include "par/stepmodel.hpp"
#include "perf/machine.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/faults.hpp"
#include "resilience/recovery.hpp"
#include "solver/bicgstab.hpp"
#include "solver/gmres.hpp"
#include "solver/newton.hpp"
#include "solver/precond.hpp"
#include "sparse/assembly.hpp"
#include "sparse/ilu.hpp"
#include "sparse/vec.hpp"

namespace {

using namespace f3d;
using namespace f3d::solver;
using namespace f3d::resilience;
using sparse::Vec;

// --- fault injector ------------------------------------------------------

TEST(FaultInjector, ScheduleIsDeterministic) {
  FaultInjector inj(7);
  FaultPlan plan;
  plan.fire_every = 3;
  plan.skip_first = 2;
  plan.max_fires = 3;
  inj.arm(FaultSite::kResidual, plan);
  std::vector<bool> fired;
  for (int d = 0; d < 12; ++d)
    fired.push_back(inj.should_fire(FaultSite::kResidual));
  // Fires at draws 2, 5, 8, then capped by max_fires.
  const std::vector<bool> expect = {false, false, true, false, false, true,
                                    false, false, true, false, false, false};
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(inj.draws(FaultSite::kResidual), 12);
  EXPECT_EQ(inj.fires(FaultSite::kResidual), 3);
  EXPECT_EQ(inj.total_fires(), 3);
}

TEST(FaultInjector, ProbabilityDrawsReproduceFromSeed) {
  FaultPlan plan;
  plan.probability = 0.3;
  FaultInjector a(42), b(42), c(43);
  a.arm(FaultSite::kGmres, plan);
  b.arm(FaultSite::kGmres, plan);
  c.arm(FaultSite::kGmres, plan);
  int diffs_vs_c = 0;
  for (int d = 0; d < 200; ++d) {
    const bool fa = a.should_fire(FaultSite::kGmres);
    EXPECT_EQ(fa, b.should_fire(FaultSite::kGmres));
    if (fa != c.should_fire(FaultSite::kGmres)) ++diffs_vs_c;
  }
  EXPECT_GT(a.fires(FaultSite::kGmres), 0);
  EXPECT_LT(a.fires(FaultSite::kGmres), 200);
  EXPECT_GT(diffs_vs_c, 0);  // a different seed gives a different stream
}

TEST(FaultInjector, StateRestoreFastForwardsTheStream) {
  FaultPlan plan;
  plan.probability = 0.5;
  FaultInjector a(99);
  a.arm(FaultSite::kBicgstab, plan);
  for (int d = 0; d < 37; ++d) a.should_fire(FaultSite::kBicgstab);
  const FaultInjector::State mid = a.state();

  std::vector<bool> tail_a;
  for (int d = 0; d < 50; ++d)
    tail_a.push_back(a.should_fire(FaultSite::kBicgstab));

  FaultInjector b(0);  // seed overwritten by restore
  b.arm(FaultSite::kBicgstab, plan);
  b.restore(mid);
  EXPECT_EQ(b.draws(FaultSite::kBicgstab), 37);
  std::vector<bool> tail_b;
  for (int d = 0; d < 50; ++d)
    tail_b.push_back(b.should_fire(FaultSite::kBicgstab));
  EXPECT_EQ(tail_a, tail_b);
}

TEST(FaultInjector, UnarmedSitesNeverFire) {
  FaultInjector inj(1);
  for (int d = 0; d < 100; ++d) {
    EXPECT_FALSE(inj.should_fire(FaultSite::kResidual));
    EXPECT_FALSE(fault_fires(FaultSite::kResidual));  // none registered
  }
}

TEST(FaultInjector, ArmRejectsInvalidPlans) {
  FaultInjector inj(1);
  FaultPlan p;
  p.probability = -0.1;
  EXPECT_THROW(inj.arm(FaultSite::kResidual, p), f3d::Error);
  p.probability = 1.5;
  EXPECT_THROW(inj.arm(FaultSite::kResidual, p), f3d::Error);
  p.probability = std::nan("");
  EXPECT_THROW(inj.arm(FaultSite::kResidual, p), f3d::Error);
  p = {};
  p.fire_every = -1;
  EXPECT_THROW(inj.arm(FaultSite::kResidual, p), f3d::Error);
  p = {};
  p.skip_first = -3;
  EXPECT_THROW(inj.arm(FaultSite::kResidual, p), f3d::Error);
  p = {};
  p.max_fires = -1;
  EXPECT_THROW(inj.arm(FaultSite::kResidual, p), f3d::Error);
  EXPECT_THROW(inj.set_bit_flip({.bit = 64}), f3d::Error);
  EXPECT_THROW(inj.set_bit_flip({.bit = -1}), f3d::Error);
  // A rejected plan must not have disturbed the site: boundary values are
  // fine and the stream starts from draw 0.
  p = {};
  p.probability = 1.0;
  EXPECT_NO_THROW(inj.arm(FaultSite::kResidual, p));
  EXPECT_TRUE(inj.should_fire(FaultSite::kResidual));
  EXPECT_NO_THROW(inj.set_bit_flip({.bit = 0}));
  EXPECT_NO_THROW(inj.set_bit_flip({.bit = 63}));
}

// Golden guarantee the SDC campaigns rely on: arming the kBitFlip site
// must leave every other site's seeded stream bit-identical — per-site
// PRNG streams are independent, and a bit-flip opportunity whose target
// does not match consumes no draw.
TEST(FaultInjector, ArmingBitFlipLeavesOtherStreamsIdentical) {
  FaultPlan prob_plan;
  prob_plan.probability = 0.37;
  FaultInjector a(2024), b(2024);
  for (auto* inj : {&a, &b}) {
    inj->arm(FaultSite::kResidual, prob_plan);
    inj->arm(FaultSite::kGmres, prob_plan);
    inj->arm(FaultSite::kRankFail, prob_plan);
  }
  FaultPlan flips;
  flips.fire_every = 2;
  b.arm(FaultSite::kBitFlip, flips);
  b.set_bit_flip({.bit = 55, .target = FlipTarget::kState});

  for (int d = 0; d < 300; ++d) {
    EXPECT_EQ(a.should_fire(FaultSite::kResidual),
              b.should_fire(FaultSite::kResidual));
    EXPECT_EQ(a.should_fire(FaultSite::kGmres),
              b.should_fire(FaultSite::kGmres));
    EXPECT_EQ(a.should_fire(FaultSite::kRankFail),
              b.should_fire(FaultSite::kRankFail));
    // b's bit-flip stream advances in between; a doesn't have one.
    b.should_fire(FaultSite::kBitFlip);
  }
  EXPECT_GT(b.fires(FaultSite::kBitFlip), 0);
}

// --- status-returning factorization --------------------------------------

sparse::Csr<double> tridiag_with_zero_pivot(int n, int zero_row) {
  sparse::Csr<double> a;
  a.n = n;
  a.ptr.push_back(0);
  for (int i = 0; i < n; ++i) {
    if (i > 0) {
      a.col.push_back(i - 1);
      a.val.push_back(-1.0);
    }
    a.col.push_back(i);
    a.val.push_back(i == zero_row ? 0.0 : 2.5);
    if (i < n - 1) {
      a.col.push_back(i + 1);
      a.val.push_back(-1.0);
    }
    a.ptr.push_back(static_cast<int>(a.col.size()));
  }
  return a;
}

TEST(IluStatus, ZeroPivotReportsInsteadOfThrowing) {
  auto a = tridiag_with_zero_pivot(20, 0);
  auto pat = sparse::ilu_symbolic(a, 0);
  sparse::IluFactorStatus st;
  EXPECT_NO_THROW(sparse::ilu_factor_point<double>(a, pat, &st));
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(st.bad_row, 0);
}

TEST(IluStatus, ZeroPivotThrowsOnThePlainPath) {
  // Row 0: no prior elimination can fill the pivot back in.
  auto a = tridiag_with_zero_pivot(20, 0);
  auto pat = sparse::ilu_symbolic(a, 0);
  EXPECT_THROW(sparse::ilu_factor_point<double>(a, pat), f3d::NumericalError);
}

TEST(IluStatus, SingularDiagonalBlockReported) {
  auto m = mesh::generate_box_mesh(3, 3, 3);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  auto a = sparse::build_bcsr(s, 2, fn);
  double* blk = a.find_block(0, 0);
  ASSERT_NE(blk, nullptr);
  for (int k = 0; k < 4; ++k) blk[k] = 0.0;
  auto pat = sparse::ilu_symbolic(a, 0);
  sparse::IluFactorStatus st;
  EXPECT_NO_THROW(sparse::ilu_factor_block<double>(a, pat, &st));
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(st.bad_row, 0);
  EXPECT_THROW(sparse::ilu_factor_block<double>(a, pat), f3d::NumericalError);
}

// --- Schwarz shift ladder ------------------------------------------------

TEST(SchwarzLadder, ShiftAbsorbsSingularDiagonalBlock) {
  auto m = mesh::generate_box_mesh(4, 4, 4);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  auto a = sparse::build_bcsr(s, 2, fn);
  auto prec = make_global_ilu(a, 1);

  auto bad = a;
  // Block row 0: elimination cannot fill the singular pivot back in.
  double* blk = bad.find_block(0, 0);
  ASSERT_NE(blk, nullptr);
  for (int k = 0; k < 4; ++k) blk[k] = 0.0;

  EXPECT_THROW(prec->refactor(bad), f3d::NumericalError);

  FactorReport report;
  EXPECT_TRUE(prec->refactor_checked(bad, 1e-8, 12, &report));
  EXPECT_GT(report.shift_attempts, 0);
  EXPECT_GT(report.shift_used, 0.0);

  // The shifted factors must still be usable (finite output).
  Vec r(a.scalar_n(), 1.0), z(a.scalar_n(), 0.0);
  prec->apply(r.data(), z.data());
  for (double v : z) EXPECT_TRUE(std::isfinite(v));
}

// --- Krylov solvers under injected faults --------------------------------

struct SmallSystem {
  sparse::Bcsr<double> a;
  Vec b;
};

SmallSystem make_system() {
  auto m = mesh::generate_box_mesh(4, 4, 4);
  auto s = sparse::stencil_from_mesh(m);
  auto fn = sparse::synthetic_values(s);
  SmallSystem sys;
  sys.a = sparse::build_bcsr(s, 2, fn);
  Rng rng(3);
  sys.b.resize(sys.a.scalar_n());
  for (auto& v : sys.b) v = rng.uniform(-1, 1);
  return sys;
}

TEST(GmresStagnation, WipedDirectionsStopWithReason) {
  auto sys = make_system();
  LinearOperator op;
  op.n = sys.a.scalar_n();
  op.apply = [&](const double* x, double* y) { sys.a.spmv(x, y); };
  IdentityPreconditioner m(op.n);

  FaultInjector inj(5);
  FaultPlan always;
  always.fire_every = 1;
  inj.arm(FaultSite::kGmres, always);
  InjectorScope scope(&inj);

  Vec x(op.n, 0.0);
  auto res = gmres(op, m, sys.b, x, {});
  EXPECT_FALSE(res.converged);
  EXPECT_TRUE(res.stagnated);
  EXPECT_FALSE(res.reason.empty());
  // Dead directions contribute nothing; the residual estimate must not
  // collapse to a bogus zero.
  EXPECT_GT(res.final_residual, 0.0);
}

TEST(BicgstabBreakdown, InjectedCollapseSetsFlag) {
  auto sys = make_system();
  LinearOperator op;
  op.n = sys.a.scalar_n();
  op.apply = [&](const double* x, double* y) { sys.a.spmv(x, y); };
  IdentityPreconditioner m(op.n);

  FaultInjector inj(5);
  FaultPlan always;
  always.fire_every = 1;
  inj.arm(FaultSite::kBicgstab, always);
  InjectorScope scope(&inj);

  Vec x(op.n, 0.0);
  auto res = bicgstab(op, m, sys.b, x, {});
  EXPECT_TRUE(res.breakdown);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

// --- psi-NKS recovery ladder ---------------------------------------------

PtcOptions campaign_options() {
  PtcOptions opts;
  opts.cfl0 = 20.0;
  opts.max_steps = 40;
  opts.rtol = 1e-6;
  opts.schwarz.fill_level = 1;
  opts.num_subdomains = 2;
  return opts;
}

/// One seeded fault run on the small wing mesh; `x_out` (optional)
/// receives the final state for bitwise comparisons.
PtcResult run_wing(FaultInjector* inj, const PtcOptions& opts,
                   std::vector<double>* x_out = nullptr) {
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 6, .ny = 3, .nz = 3});
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(m, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  PtcOptions o = opts;
  o.fault_injector = inj;
  auto res = ptc_solve(prob, x, o);
  if (x_out != nullptr) *x_out = x;
  return res;
}

enum class FaultClass { kNanResidual, kZeroPivot, kGmresPoison, kBicgstabPoison };

FaultInjector make_campaign_injector(FaultClass cls, std::uint64_t seed) {
  FaultInjector inj(seed);
  const int s = static_cast<int>(seed % 5);
  switch (cls) {
    case FaultClass::kNanResidual: {
      FaultPlan p;
      // Early enough that even a fast clean run (~30 evaluations) is hit.
      p.fire_every = 40;
      p.skip_first = 5 + 3 * s;
      p.max_fires = 3;
      inj.arm(FaultSite::kResidual, p);
      break;
    }
    case FaultClass::kZeroPivot: {
      FaultPlan p;
      p.fire_every = 3;
      p.skip_first = s % 3;
      p.max_fires = 3;
      inj.arm(FaultSite::kFactorPivot, p);
      break;
    }
    case FaultClass::kGmresPoison: {
      FaultPlan p;  // persistent: every Arnoldi direction wiped
      p.fire_every = 1;
      inj.arm(FaultSite::kGmres, p);
      break;
    }
    case FaultClass::kBicgstabPoison: {
      FaultPlan p;  // persistent: every BiCGStab iteration breaks down
      p.fire_every = 1;
      inj.arm(FaultSite::kBicgstab, p);
      break;
    }
  }
  return inj;
}

PtcOptions class_options(FaultClass cls, bool recovery) {
  PtcOptions opts = campaign_options();
  if (cls == FaultClass::kBicgstabPoison)
    opts.krylov = PtcOptions::Krylov::kBicgstab;
  opts.recovery.enabled = recovery;
  return opts;
}

// Campaign-level half of the golden guarantee: a recovery campaign with
// an *idle* kBitFlip site armed (target kHalo — never announced inside
// ptc_solve) reproduces the no-bit-flip campaign bit for bit.
TEST(PtcRecovery, IdleBitFlipSiteKeepsCampaignBitIdentical) {
  auto inj_a = make_campaign_injector(FaultClass::kNanResidual, 0);
  std::vector<double> x_a;
  auto res_a = run_wing(&inj_a, class_options(FaultClass::kNanResidual, true),
                        &x_a);

  auto inj_b = make_campaign_injector(FaultClass::kNanResidual, 0);
  FaultPlan flips;
  flips.fire_every = 1;
  inj_b.arm(FaultSite::kBitFlip, flips);
  inj_b.set_bit_flip({.bit = 62, .target = FlipTarget::kHalo});
  std::vector<double> x_b;
  auto res_b = run_wing(&inj_b, class_options(FaultClass::kNanResidual, true),
                        &x_b);

  EXPECT_EQ(inj_b.draws(FaultSite::kBitFlip), 0);  // no draws consumed
  EXPECT_EQ(res_a.converged, res_b.converged);
  EXPECT_EQ(res_a.steps, res_b.steps);
  EXPECT_EQ(res_a.steps_rejected, res_b.steps_rejected);
  EXPECT_EQ(res_a.final_residual, res_b.final_residual);
  ASSERT_EQ(x_a.size(), x_b.size());
  EXPECT_EQ(std::memcmp(x_a.data(), x_b.data(), x_a.size() * sizeof(double)),
            0);
}

TEST(PtcRecovery, NanResidualIsRejectedAndRecovered) {
  auto inj = make_campaign_injector(FaultClass::kNanResidual, 0);
  auto res = run_wing(&inj, class_options(FaultClass::kNanResidual, true));
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.recovery_log.count(RecoveryAction::kDetectNanResidual), 0);
  EXPECT_GT(res.recovery_log.count(RecoveryAction::kStepRejected), 0);
  EXPECT_GT(res.recovery_log.count(RecoveryAction::kCflBacktrack), 0);
  EXPECT_GT(res.steps_rejected, 0);
}

TEST(PtcRecovery, NanResidualAbortsWithoutRecovery) {
  auto inj = make_campaign_injector(FaultClass::kNanResidual, 0);
  EXPECT_THROW(
      run_wing(&inj, class_options(FaultClass::kNanResidual, false)),
      f3d::NumericalError);
}

TEST(PtcRecovery, ZeroPivotIsShiftedOrRebuilt) {
  auto inj = make_campaign_injector(FaultClass::kZeroPivot, 1);
  auto res = run_wing(&inj, class_options(FaultClass::kZeroPivot, true));
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.recovery_log.count(RecoveryAction::kDetectSingularFactor), 0);
}

TEST(PtcRecovery, ZeroPivotAbortsWithoutRecovery) {
  auto inj = make_campaign_injector(FaultClass::kZeroPivot, 1);
  EXPECT_THROW(run_wing(&inj, class_options(FaultClass::kZeroPivot, false)),
               f3d::NumericalError);
}

TEST(PtcRecovery, BicgstabBreakdownSwapsToGmres) {
  auto inj = make_campaign_injector(FaultClass::kBicgstabPoison, 2);
  auto res = run_wing(&inj, class_options(FaultClass::kBicgstabPoison, true));
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.krylov_breakdowns, 0);
  EXPECT_GT(res.recovery_log.count(RecoveryAction::kDetectBreakdown), 0);
  EXPECT_GT(res.recovery_log.count(RecoveryAction::kKrylovSwap), 0);
  bool breakdown_recorded = false;
  for (const auto& h : res.history) breakdown_recorded |= h.linear_breakdown;
  EXPECT_TRUE(breakdown_recorded);
}

TEST(PtcRecovery, BicgstabBreakdownStallsWithoutRecovery) {
  auto inj = make_campaign_injector(FaultClass::kBicgstabPoison, 2);
  auto res = run_wing(&inj, class_options(FaultClass::kBicgstabPoison, false));
  EXPECT_FALSE(res.converged);
  EXPECT_GT(res.krylov_breakdowns, 0);  // satellite: breakdown propagated
}

TEST(PtcRecovery, GmresPoisonEscalatesThenSwaps) {
  auto inj = make_campaign_injector(FaultClass::kGmresPoison, 3);
  auto res = run_wing(&inj, class_options(FaultClass::kGmresPoison, true));
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.recovery_log.count(RecoveryAction::kDetectStagnation), 0);
  EXPECT_GT(res.recovery_log.count(RecoveryAction::kRestartEscalation), 0);
  EXPECT_GT(res.recovery_log.count(RecoveryAction::kKrylovSwap), 0);
}

TEST(PtcRecovery, GmresPoisonStallsWithoutRecovery) {
  auto inj = make_campaign_injector(FaultClass::kGmresPoison, 3);
  auto res = run_wing(&inj, class_options(FaultClass::kGmresPoison, false));
  EXPECT_FALSE(res.converged);
  bool stagnation_recorded = false;
  for (const auto& h : res.history) stagnation_recorded |= h.linear_stagnated;
  EXPECT_TRUE(stagnation_recorded);
}

// The headline campaign: 4 fault classes x 5 seeds. With recovery enabled
// >= 95% of runs must converge to rtol and none may abort; with recovery
// disabled every run must fail (abort or miss rtol).
TEST(FaultCampaign, RecoveryConvergesFaultsFailWithout) {
  const FaultClass classes[] = {
      FaultClass::kNanResidual, FaultClass::kZeroPivot,
      FaultClass::kGmresPoison, FaultClass::kBicgstabPoison};
  const std::uint64_t seeds[] = {11, 22, 33, 44, 55};

  int total = 0, recovered = 0, failed_without = 0;
  for (FaultClass cls : classes) {
    for (std::uint64_t seed : seeds) {
      ++total;
      // Recovery on: must not throw (no F3D_CHECK abort reachable).
      {
        auto inj = make_campaign_injector(cls, seed);
        PtcResult res;
        EXPECT_NO_THROW(res = run_wing(&inj, class_options(cls, true)))
            << "class " << static_cast<int>(cls) << " seed " << seed;
        if (res.converged) ++recovered;
      }
      // Recovery off: the same faults reproducibly fail.
      {
        auto inj = make_campaign_injector(cls, seed);
        bool failed = false;
        try {
          auto res = run_wing(&inj, class_options(cls, false));
          failed = !res.converged;
        } catch (const f3d::NumericalError&) {
          failed = true;
        }
        EXPECT_TRUE(failed) << "disabled run survived: class "
                            << static_cast<int>(cls) << " seed " << seed;
        if (failed) ++failed_without;
      }
    }
  }
  EXPECT_EQ(total, 20);
  EXPECT_GE(recovered * 100, total * 95)
      << "recovered " << recovered << "/" << total;
  EXPECT_EQ(failed_without, total);
}

// --- straggler injection in the parallel step model ----------------------

TEST(Straggler, InjectedSlowRankStretchesModeledSteps) {
  auto m = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 10, .ny = 6, .nz = 6});
  auto g = mesh::build_graph(m.num_vertices(), m.edges());
  auto load = par::measure_load(g, part::kway_grow(g, 8));
  par::WorkCoefficients work;
  work.sparse_bytes_per_vertex_it = 400;
  std::vector<par::StepCounts> steps(10);

  auto clean = par::simulate_solve(perf::asci_red(), load, work, steps);
  EXPECT_EQ(clean.straggler_steps, 0);

  FaultInjector inj(17);
  FaultPlan p;
  p.fire_every = 2;  // every other modeled step hits a slow rank
  p.magnitude = 4.0;
  inj.arm(FaultSite::kRank, p);
  InjectorScope scope(&inj);
  auto slow = par::simulate_solve(perf::asci_red(), load, work, steps);
  EXPECT_EQ(slow.straggler_steps, 5);
  EXPECT_GT(slow.total_seconds, clean.total_seconds);
  // Stretch shows up as imbalance (implicit sync), not extra busy time.
  EXPECT_GT(slow.aggregate.t_implicit_sync, clean.aggregate.t_implicit_sync);
}

// --- checkpoint/restart --------------------------------------------------

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Checkpoint, RoundTripIsBitExact) {
  PtcCheckpoint ck;
  ck.step = 7;
  ck.steps_done = 7;
  Rng rng(12);
  ck.x.resize(257);
  for (auto& v : ck.x) v = rng.uniform(-10, 10);
  ck.rnorm = 1.2345678901234567e-3;
  ck.r0 = 9.87654321e2;
  ck.cfl_relax = 0.25;
  ck.function_evaluations = 1234;
  ck.total_linear_iterations = 5678;
  ck.gmres_restart = 40;
  ck.krylov = 1;
  ck.has_injector = true;
  FaultInjector inj(314);
  FaultPlan p;
  p.probability = 0.4;
  inj.arm(FaultSite::kResidual, p);
  FaultPlan straggler;
  straggler.probability = 0.1;
  straggler.magnitude = 3.75;  // carried in the serialized state
  inj.arm(FaultSite::kRank, straggler);
  for (int d = 0; d < 23; ++d) inj.should_fire(FaultSite::kResidual);
  for (int d = 0; d < 7; ++d) inj.should_fire(FaultSite::kRankFail);
  ck.injector = inj.state();
  ck.rank_alive = {1, 1, 0, 1};  // distributed campaign state
  ck.spares_used = 2;
  ck.last_buddy_checkpoint_step = 5;
  ck.log.add(3, RecoveryAction::kStepRejected, "attempt 1");
  ck.log.add(3, RecoveryAction::kCflBacktrack, "cfl_relax=0.25");
  ck.log.add(5, RecoveryAction::kSpareSubstitution, "rank 2");

  const std::string path = temp_path("f3d_ck_roundtrip.bin");
  std::remove(path.c_str());
  ASSERT_TRUE(save_checkpoint(path, ck));
  auto back = load_checkpoint(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->step, ck.step);
  EXPECT_EQ(back->steps_done, ck.steps_done);
  ASSERT_EQ(back->x.size(), ck.x.size());
  EXPECT_EQ(0, std::memcmp(back->x.data(), ck.x.data(),
                           ck.x.size() * sizeof(double)));
  EXPECT_EQ(back->rnorm, ck.rnorm);  // bitwise: no text round trip
  EXPECT_EQ(back->r0, ck.r0);
  EXPECT_EQ(back->cfl_relax, ck.cfl_relax);
  EXPECT_EQ(back->function_evaluations, ck.function_evaluations);
  EXPECT_EQ(back->total_linear_iterations, ck.total_linear_iterations);
  EXPECT_EQ(back->gmres_restart, ck.gmres_restart);
  EXPECT_EQ(back->krylov, ck.krylov);
  ASSERT_TRUE(back->has_injector);
  EXPECT_EQ(back->injector.seed, ck.injector.seed);
  EXPECT_EQ(back->injector.draws, ck.injector.draws);
  EXPECT_EQ(back->injector.fires, ck.injector.fires);
  EXPECT_EQ(back->injector.magnitudes, ck.injector.magnitudes);
  EXPECT_EQ(back->injector.magnitudes[static_cast<int>(FaultSite::kRank)],
            3.75);
  EXPECT_EQ(back->rank_alive, ck.rank_alive);
  EXPECT_EQ(back->spares_used, ck.spares_used);
  EXPECT_EQ(back->last_buddy_checkpoint_step, ck.last_buddy_checkpoint_step);
  ASSERT_EQ(back->log.size(), ck.log.size());
  for (std::size_t i = 0; i < ck.log.size(); ++i) {
    EXPECT_EQ(back->log.events()[i].step, ck.log.events()[i].step);
    EXPECT_EQ(back->log.events()[i].action, ck.log.events()[i].action);
    EXPECT_EQ(back->log.events()[i].detail, ck.log.events()[i].detail);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingOrCorruptFilesAreRejected) {
  EXPECT_FALSE(load_checkpoint(temp_path("f3d_ck_missing.bin")).has_value());
  const std::string path = temp_path("f3d_ck_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "F3DCKPT2truncated";
  }
  EXPECT_FALSE(load_checkpoint(path).has_value());
  std::remove(path.c_str());
}

// Every single-byte corruption of the payload must be caught by the CRC,
// and truncation / version skew rejected before the payload is parsed.
TEST(Checkpoint, SingleFlippedByteFailsTheCrc) {
  PtcCheckpoint ck;
  ck.step = 11;
  ck.x = {1.0, 2.0, 3.0, 4.0};
  ck.rnorm = 1e-4;
  ck.log.add(2, RecoveryAction::kPivotShift, "shift=1e-06");
  const std::string bytes = encode_checkpoint(ck);
  ASSERT_TRUE(decode_checkpoint(bytes).has_value());

  const std::size_t header = 8 + 4 + 4 + 8;  // magic+version+crc+size
  for (std::size_t i = header; i < bytes.size(); i += 7) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    EXPECT_FALSE(decode_checkpoint(bad).has_value()) << "byte " << i;
  }
  // Truncation at any point is rejected too.
  EXPECT_FALSE(
      decode_checkpoint(bytes.substr(0, bytes.size() - 1)).has_value());
  EXPECT_FALSE(decode_checkpoint(bytes.substr(0, header)).has_value());
  // A checkpoint from a different format version is rejected up front.
  std::string skewed = bytes;
  skewed[8] = static_cast<char>(kCheckpointFormatVersion + 1);
  EXPECT_FALSE(decode_checkpoint(skewed).has_value());
  // Appending trailing garbage is not a valid checkpoint either.
  EXPECT_FALSE(decode_checkpoint(bytes + "x").has_value());
}

// On disk: corrupt one byte of a saved file and require rejection (the
// load path goes through the same CRC frame).
TEST(Checkpoint, CorruptedFileOnDiskIsRejected) {
  PtcCheckpoint ck;
  ck.step = 3;
  ck.x = {5.0, 6.0};
  const std::string path = temp_path("f3d_ck_bitflip.bin");
  std::remove(path.c_str());
  ASSERT_TRUE(save_checkpoint(path, ck));
  ASSERT_TRUE(load_checkpoint(path).has_value());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);  // somewhere inside the payload
    char c = 0;
    f.seekg(40);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x10);
    f.seekp(40);
    f.write(&c, 1);
  }
  EXPECT_FALSE(load_checkpoint(path).has_value());
  std::remove(path.c_str());
}

// Torn-write restore: save two generations, tear the primary (truncate
// mid-payload), and require the fallback loader to reject the torn file
// and restore the previous verified generation kept by save_checkpoint.
TEST(Checkpoint, TornPrimaryFallsBackToPreviousGeneration) {
  const std::string path = temp_path("f3d_ck_torn.bin");
  const std::string prev = path + ".prev";
  std::remove(path.c_str());
  std::remove(prev.c_str());

  PtcCheckpoint gen1;
  gen1.step = 5;
  gen1.x = {1.0, 2.0, 3.0};
  gen1.rnorm = 1e-3;
  PtcCheckpoint gen2;
  gen2.step = 9;
  gen2.x = {4.0, 5.0, 6.0};
  gen2.rnorm = 1e-5;
  ASSERT_TRUE(save_checkpoint(path, gen1));
  ASSERT_TRUE(save_checkpoint(path, gen2));  // rotates gen1 to .prev

  // Intact primary wins; no fallback.
  std::string from;
  auto intact = load_checkpoint_with_fallback(path, &from);
  ASSERT_TRUE(intact.has_value());
  EXPECT_EQ(intact->step, 9);
  EXPECT_EQ(from, path);

  // Tear the primary: truncate it mid-payload, as a crash or full disk
  // that bypassed the atomic-rename protocol would.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  ASSERT_FALSE(load_checkpoint(path).has_value());

  auto back = load_checkpoint_with_fallback(path, &from);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->step, 5);  // the previous verified generation
  ASSERT_EQ(back->x.size(), 3u);
  EXPECT_EQ(back->x[0], 1.0);
  EXPECT_EQ(back->rnorm, 1e-3);
  EXPECT_EQ(from, prev);

  // Both generations gone: restore reports nothing to resume from.
  std::remove(path.c_str());
  std::remove(prev.c_str());
  EXPECT_FALSE(load_checkpoint_with_fallback(path).has_value());
}

// Kill a run mid-solve, resume from its checkpoint, and require the
// resumed trajectory to be bit-identical to an uninterrupted run — with a
// live fault injector, so the injector stream restore is exercised too.
TEST(Checkpoint, KilledRunResumesBitIdentically) {
  const std::string full_path = temp_path("f3d_ck_full.bin");
  const std::string kill_path = temp_path("f3d_ck_killed.bin");
  std::remove(full_path.c_str());
  std::remove(kill_path.c_str());

  auto opts = class_options(FaultClass::kNanResidual, true);
  opts.recovery.checkpoint_every = 1;

  // Uninterrupted reference run.
  auto inj_full = make_campaign_injector(FaultClass::kNanResidual, 4);
  PtcOptions o_full = opts;
  o_full.recovery.checkpoint_path = full_path;
  std::vector<double> x_full;
  auto res_full = run_wing(&inj_full, o_full, &x_full);
  ASSERT_TRUE(res_full.converged);

  // "Killed" run: same faults, stopped early, leaving a checkpoint.
  auto inj_kill = make_campaign_injector(FaultClass::kNanResidual, 4);
  PtcOptions o_kill = opts;
  o_kill.recovery.checkpoint_path = kill_path;
  o_kill.max_steps = 3;  // well before convergence (~6 steps)
  auto res_kill = run_wing(&inj_kill, o_kill);
  ASSERT_FALSE(res_kill.converged);
  ASSERT_GT(res_kill.recovery_log.count(RecoveryAction::kCheckpointWrite), 0);

  // Resume: a fresh process would re-arm the injector and restore.
  auto inj_resume = make_campaign_injector(FaultClass::kNanResidual, 4);
  PtcOptions o_resume = opts;
  o_resume.recovery.checkpoint_path = kill_path;
  o_resume.recovery.resume = true;
  std::vector<double> x_resume;
  auto res_resume = run_wing(&inj_resume, o_resume, &x_resume);
  EXPECT_TRUE(res_resume.resumed);
  EXPECT_GT(res_resume.resume_step, 0);
  EXPECT_TRUE(res_resume.converged);
  EXPECT_GT(res_resume.recovery_log.count(RecoveryAction::kResume), 0);

  // Bitwise-identical final state: exact double equality, no tolerance.
  EXPECT_EQ(res_resume.final_residual, res_full.final_residual);
  EXPECT_EQ(res_resume.steps, res_full.steps);
  ASSERT_EQ(x_resume.size(), x_full.size());
  EXPECT_EQ(0, std::memcmp(x_resume.data(), x_full.data(),
                           x_full.size() * sizeof(double)));

  std::remove(full_path.c_str());
  std::remove(kill_path.c_str());
}

}  // namespace
