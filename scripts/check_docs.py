#!/usr/bin/env python3
"""Docs gate: validate the machine-readable artifacts and the markdown.

Checks, in order:
  1. Every committed BENCH_*.json carries the unified f3d-bench-v1
     envelope ({"meta": {"schema", "experiment"}, "series": ...}).
  2. Optionally (--trace FILE) a Chrome trace emitted by F3D_TRACE=1
     matches the f3d-trace-v1 schema: non-empty traceEvents, each event
     a complete ("ph" == "X") event with name/ts/dur/pid/tid, and the
     meta block carrying the schema tag. With --min-coverage, the
     depth-1 spans on the root span's tid must account for at least
     that fraction of the root span's duration.
  3. BENCH_failslow.json (when committed) additionally carries the
     fail-slow gates: a non-empty sweep with the per-cell keys, a
     ladder-recovery fraction >= 0.5 against the 4x straggler, and zero
     detector false positives over the clean campaigns.
  4. BENCH_deadline.json (when committed) carries the run-to-completion
     gates: the degradation ladder's on-time rate >= 0.95 (and above the
     no-ladder baseline), zero stall-watchdog false positives on clean
     scenarios with the stall scenario detected, and p99 cancellation
     latency within the documented work-unit bound at 1, 2 and 4
     threads with thread-invariant cancelled states.
  5. BENCH_tune.json (when committed) carries the self-tuning gates: at
     least two mesh-class cells with the tuned-vs-default keys, a tuned
     time never worse than the default (beyond timing noise), a
     bit-identical DB round-trip per cell, and an honest gate_note on
     any cell that retained the compiled defaults.
  6. BENCH_fleet.json (when committed) carries the scenario-fleet gates:
     a >= 64-scenario sweep served in the three lanes (clean /
     storm-none / storm-ladder), the retry ladder completing 100% of
     non-poison scenarios while quarantining 100% of injected poison,
     an exactly-once kill-and-restart (zero lost, zero
     double-committed), clean-lane serving overhead <= 10%, and a
     deterministic re-run.
  7. Every committed BENCH_*.json names an experiment registered in
     KNOWN_EXPERIMENTS below; an unknown experiment with no validator
     fails the gate rather than sliding through envelope-only.
  8. Optionally (--tunedb FILE) a persisted tuning database matches the
     f3d-tunedb-v1 schema: the schema tag, an entries array, and per
     entry the (mesh_class, host_isa, precision) key plus a config
     object.
  9. Optionally (--knobs FILE, a `tuned_solve -dump-knobs` catalog)
     every registered knob is documented: each knob's name must appear
     in docs/TUNING.md (or --tuning-md FILE), so adding a knob without
     documenting it fails CI.
  10. No dead relative links in README.md, DESIGN.md, EXPERIMENTS.md,
      ROADMAP.md, or docs/*.md.

Stdlib only; exits nonzero with one line per problem found.
"""

import argparse
import glob
import json
import os
import re
import sys

BENCH_SCHEMA = "f3d-bench-v1"
TRACE_SCHEMA = "f3d-trace-v1"

MARKDOWN_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"]
LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")


def check_bench_report(path, errors):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or invalid JSON ({e})")
        return
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        errors.append(f"{path}: missing meta object")
        return
    if meta.get("schema") != BENCH_SCHEMA:
        errors.append(f"{path}: meta.schema is {meta.get('schema')!r}, "
                      f"expected {BENCH_SCHEMA!r}")
    if not isinstance(meta.get("experiment"), str) or not meta["experiment"]:
        errors.append(f"{path}: meta.experiment must be a non-empty string")
    check_host_isa(path, meta, errors)
    if "series" not in doc:
        errors.append(f"{path}: missing series member")
        return
    exp = meta.get("experiment")
    if exp not in KNOWN_EXPERIMENTS:
        errors.append(
            f"{path}: experiment {exp!r} has no registered validator - "
            "register it in KNOWN_EXPERIMENTS (scripts/check_docs.py) so "
            "its gates are stated explicitly rather than skipped")
        return
    validator = KNOWN_EXPERIMENTS[exp]
    if validator is not None:
        validator(path, doc["series"], errors)


def check_host_isa(path, meta, errors):
    """Every artifact must say what vector hardware produced it: a SIMD
    or precision ratio is not interpretable without the host ISA."""
    isa = meta.get("host_isa")
    if not isinstance(isa, dict):
        errors.append(f"{path}: meta.host_isa missing (regenerate with a "
                      "current bench binary)")
        return
    if not isinstance(isa.get("isa"), str) or not isa["isa"]:
        errors.append(f"{path}: meta.host_isa.isa must be a non-empty string")
    if not isinstance(isa.get("arch"), str) or not isa["arch"]:
        errors.append(f"{path}: meta.host_isa.arch must be a non-empty string")
    if not isinstance(isa.get("double_lanes"), int) or isa["double_lanes"] < 1:
        errors.append(f"{path}: meta.host_isa.double_lanes missing or < 1")
    if not isinstance(isa.get("simd_compiled"), bool):
        errors.append(f"{path}: meta.host_isa.simd_compiled must be a bool")


SIMD_KERNELS = ("flux_residual", "block_spmv", "ilu0_trisolve", "full_solve")
SIMD_KERNEL_KEYS = (
    "scalar_double_seconds", "simd_double_seconds", "simd_mixed_seconds",
    "speedup_simd_double", "speedup_simd_mixed",
)


def check_simd_series(path, series, errors):
    """SIMD/mixed-precision A/B gates re-checked from the committed
    artifact: the three-way comparison must be present for every hot
    kernel, the mixed solve must reach the double solve's tolerance, and
    the speedup gate must either be met or honestly annotated next to the
    modeled ratios."""
    if not isinstance(series, dict):
        errors.append(f"{path}: simd series must be an object")
        return
    configs = series.get("configs")
    if configs != ["scalar-double", "simd-double", "simd-mixed"]:
        errors.append(f"{path}: configs must list the three-way A/B "
                      f"(got {configs!r})")
    kernels = series.get("kernels")
    if not isinstance(kernels, dict):
        errors.append(f"{path}: kernels object missing")
        kernels = {}
    for name in SIMD_KERNELS:
        cell = kernels.get(name)
        missing = [k for k in SIMD_KERNEL_KEYS
                   if not isinstance(cell, dict) or k not in cell]
        if missing:
            errors.append(f"{path}: kernels.{name} missing "
                          f"{', '.join(missing)}")
    model = series.get("model")
    if not isinstance(model, dict) or not isinstance(
            model.get("traffic_model_precision_bound"), (int, float)):
        errors.append(f"{path}: model.traffic_model_precision_bound missing "
                      "- the measured ratios need the modeled expectation "
                      "beside them")
    solve = series.get("mixed_solve")
    if not isinstance(solve, dict) or solve.get("same_tolerance") is not True:
        errors.append(f"{path}: mixed_solve.same_tolerance must be true - "
                      "float storage may not change what the solver "
                      "converges to")
    gate = series.get("gate_speedup")
    if not isinstance(gate, (int, float)) or gate < 1.3:
        errors.append(f"{path}: gate_speedup missing or < 1.3")
    if series.get("meets_gate") is True:
        for name in ("flux_residual", "block_spmv"):
            cell = kernels.get(name, {})
            sp = cell.get("speedup_simd_mixed") if isinstance(cell, dict) else None
            if not isinstance(sp, (int, float)) or (
                    isinstance(gate, (int, float)) and sp < gate):
                errors.append(f"{path}: meets_gate claims {name} >= "
                              f"{gate!r} but speedup_simd_mixed is {sp!r}")
    elif not (isinstance(series.get("gate_note"), str)
              and series["gate_note"]):
        errors.append(f"{path}: gate not met and no gate_note - a miss must "
                      "be honestly annotated (see EXPERIMENTS.md)")


FAILSLOW_CELL_KEYS = (
    "pattern", "severity", "policy", "seconds", "none_seconds",
    "oracle_seconds", "recovered_frac", "slow_confirmed",
    "detect_latency_steps",
)


def check_failslow_series(path, series, errors):
    """Fail-slow gates re-checked from the committed artifact, so a stale
    or hand-edited BENCH_failslow.json cannot pass the docs stage."""
    if not isinstance(series, dict):
        errors.append(f"{path}: failslow series must be an object")
        return
    sweep = series.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        errors.append(f"{path}: failslow sweep missing or empty")
    else:
        for k, cell in enumerate(sweep):
            missing = [key for key in FAILSLOW_CELL_KEYS
                       if not isinstance(cell, dict) or key not in cell]
            if missing:
                errors.append(f"{path}: sweep cell {k} missing "
                              f"{', '.join(missing)}")
    recovered = series.get("ladder_recovered_4x_straggler")
    if not isinstance(recovered, (int, float)) or recovered < 0.5:
        errors.append(f"{path}: ladder_recovered_4x_straggler is "
                      f"{recovered!r}, need >= 0.5")
    fp = series.get("false_positives")
    if fp != 0:
        errors.append(f"{path}: detector false_positives is {fp!r}, "
                      "need exactly 0")
    if not isinstance(series.get("clean_runs"), int) or series["clean_runs"] < 1:
        errors.append(f"{path}: clean_runs missing or < 1")


DEADLINE_CELL_KEYS = (
    "scenario", "budget_frac", "ladder", "verdict", "on_time",
    "budget_units", "work_units", "residual_drop_orders", "degrade_rungs",
)


def check_deadline_series(path, series, errors):
    """Run-to-completion gates re-checked from the committed artifact, so
    a stale or hand-edited BENCH_deadline.json cannot pass the docs
    stage."""
    if not isinstance(series, dict):
        errors.append(f"{path}: deadline series must be an object")
        return
    sweep = series.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        errors.append(f"{path}: deadline sweep missing or empty")
    else:
        for k, cell in enumerate(sweep):
            missing = [key for key in DEADLINE_CELL_KEYS
                       if not isinstance(cell, dict) or key not in cell]
            if missing:
                errors.append(f"{path}: sweep cell {k} missing "
                              f"{', '.join(missing)}")
    ladder = series.get("on_time_rate_ladder")
    if not isinstance(ladder, (int, float)) or ladder < 0.95:
        errors.append(f"{path}: on_time_rate_ladder is {ladder!r}, "
                      "need >= 0.95")
    baseline = series.get("on_time_rate_none")
    if not isinstance(baseline, (int, float)):
        errors.append(f"{path}: on_time_rate_none missing")
    elif isinstance(ladder, (int, float)) and baseline >= ladder:
        errors.append(f"{path}: on_time_rate_none ({baseline!r}) must be "
                      f"below the ladder rate ({ladder!r}) - the ladder "
                      "must demonstrably buy on-time completions")
    fp = series.get("watchdog_false_positives")
    if fp != 0:
        errors.append(f"{path}: watchdog_false_positives is {fp!r}, "
                      "need exactly 0")
    if not isinstance(series.get("clean_runs"), int) or series["clean_runs"] < 1:
        errors.append(f"{path}: clean_runs missing or < 1")
    if series.get("stall_detected") is not True:
        errors.append(f"{path}: stall_detected must be true - the watchdog "
                      "missed the stall scenario")
    bound = series.get("cancel_latency_bound_units")
    if not isinstance(bound, int) or bound < 1:
        errors.append(f"{path}: cancel_latency_bound_units missing or < 1")
        bound = None
    lat = series.get("cancel_latency")
    if not isinstance(lat, list) or not lat:
        errors.append(f"{path}: cancel_latency missing or empty")
    else:
        threads = set()
        for k, row in enumerate(lat):
            if not isinstance(row, dict):
                errors.append(f"{path}: cancel_latency row {k} not an object")
                continue
            threads.add(row.get("threads"))
            p99 = row.get("p99_latency_units")
            if not isinstance(p99, int):
                errors.append(f"{path}: cancel_latency row {k} missing "
                              "p99_latency_units")
            elif bound is not None and p99 > bound:
                errors.append(f"{path}: p99 cancellation latency {p99} at "
                              f"{row.get('threads')} thread(s) exceeds the "
                              f"documented bound {bound}")
        if not {1, 2, 4} <= threads:
            errors.append(f"{path}: cancel_latency must cover 1, 2 and 4 "
                          f"threads (got {sorted(t for t in threads if t)})")
    if series.get("cancel_states_thread_invariant") is not True:
        errors.append(f"{path}: cancel_states_thread_invariant must be true "
                      "- cancelled states diverged across thread counts")


TUNE_CELL_KEYS = (
    "mesh_class", "vertices", "default_seconds", "tuned_seconds",
    "speedup", "trials", "improved", "db_roundtrip_identical",
    "tuned_config",
)

TUNEDB_SCHEMA = "f3d-tunedb-v1"


def check_tune_series(path, series, errors):
    """Self-tuning gates re-checked from the committed artifact: the tuned
    config must never be worse than the compiled defaults (the search's
    structural fallback), every cell's DB round-trip must be bit-exact,
    and a cell that kept the defaults must say why."""
    if not isinstance(series, dict):
        errors.append(f"{path}: tune series must be an object")
        return
    cells = series.get("mesh_classes")
    if not isinstance(cells, list) or len(cells) < 2:
        errors.append(f"{path}: mesh_classes must cover >= 2 mesh classes")
        cells = cells if isinstance(cells, list) else []
    for k, cell in enumerate(cells):
        missing = [key for key in TUNE_CELL_KEYS
                   if not isinstance(cell, dict) or key not in cell]
        if missing:
            errors.append(f"{path}: mesh_classes cell {k} missing "
                          f"{', '.join(missing)}")
            continue
        # Never-worse with a 2% timing-noise margin: speedup >= 0.98.
        if not isinstance(cell.get("speedup"), (int, float)) or \
                cell["speedup"] < 0.98:
            errors.append(f"{path}: cell {cell.get('mesh_class')!r} speedup "
                          f"{cell.get('speedup')!r} violates the never-worse "
                          "gate (need >= 0.98)")
        if cell.get("db_roundtrip_identical") is not True:
            errors.append(f"{path}: cell {cell.get('mesh_class')!r} DB "
                          "round-trip is not bit-identical")
        if cell.get("improved") is not True and not (
                isinstance(cell.get("gate_note"), str) and cell["gate_note"]):
            errors.append(f"{path}: cell {cell.get('mesh_class')!r} kept "
                          "the defaults but carries no gate_note - a "
                          "no-improvement result must be honestly annotated")
    if series.get("never_worse") is not True:
        errors.append(f"{path}: never_worse must be true - the search's "
                      "baseline fallback guarantees it structurally")
    if series.get("db_schema") != TUNEDB_SCHEMA:
        errors.append(f"{path}: db_schema is {series.get('db_schema')!r}, "
                      f"expected {TUNEDB_SCHEMA!r}")


FLEET_LANES = ("clean", "storm-none", "storm-ladder")
FLEET_LANE_KEYS = (
    "name", "completed", "quarantined", "wall_s", "scenarios_per_hour",
    "p50_latency_s", "p99_latency_s",
)


def check_fleet_series(path, series, errors):
    """Scenario-fleet gates re-checked from the committed artifact: the
    retry ladder must demonstrably buy completions over the unmitigated
    storm, poison must be fully quarantined, the journal must make
    kill-and-restart exactly-once, and the robustness machinery must be
    near-free on a clean batch."""
    if not isinstance(series, dict):
        errors.append(f"{path}: fleet series must be an object")
        return
    n = series.get("scenarios")
    if not isinstance(n, int) or n < 64:
        errors.append(f"{path}: scenarios is {n!r}, need a >= 64-scenario "
                      "sweep")
    lanes = {}
    raw = series.get("lanes")
    if not isinstance(raw, list):
        errors.append(f"{path}: lanes array missing")
        raw = []
    for k, lane in enumerate(raw):
        missing = [key for key in FLEET_LANE_KEYS
                   if not isinstance(lane, dict) or key not in lane]
        if missing:
            errors.append(f"{path}: lane {k} missing {', '.join(missing)}")
            continue
        lanes[lane["name"]] = lane
        if not isinstance(lane["scenarios_per_hour"], (int, float)) or \
                lane["scenarios_per_hour"] <= 0:
            errors.append(f"{path}: lane {lane['name']!r} "
                          "scenarios_per_hour must be > 0")
        if isinstance(lane["p50_latency_s"], (int, float)) and \
                isinstance(lane["p99_latency_s"], (int, float)) and \
                lane["p50_latency_s"] > lane["p99_latency_s"]:
            errors.append(f"{path}: lane {lane['name']!r} p50 latency "
                          "exceeds p99")
    for name in FLEET_LANES:
        if name not in lanes:
            errors.append(f"{path}: lane {name!r} missing")
    frac = series.get("non_poison_completed_frac_ladder")
    if frac != 1:
        errors.append(f"{path}: non_poison_completed_frac_ladder is "
                      f"{frac!r} - the ladder must complete 100% of "
                      "non-poison scenarios")
    injected = series.get("poison_injected")
    quarantined = series.get("poison_quarantined")
    if not isinstance(injected, int) or injected < 1:
        errors.append(f"{path}: poison_injected missing or < 1 - the storm "
                      "must include poison for the quarantine gate to mean "
                      "anything")
    elif quarantined != injected:
        errors.append(f"{path}: poison_quarantined is {quarantined!r}, "
                      f"need all {injected} injected poison quarantined")
    if not isinstance(series.get("fragile_injected"), int) or \
            series["fragile_injected"] < 1:
        errors.append(f"{path}: fragile_injected missing or < 1")
    if "storm-none" in lanes and "storm-ladder" in lanes and \
            lanes["storm-none"]["completed"] >= \
            lanes["storm-ladder"]["completed"]:
        errors.append(f"{path}: storm-none completed "
                      f"{lanes['storm-none']['completed']} must be below "
                      f"storm-ladder {lanes['storm-ladder']['completed']} - "
                      "the ladder must demonstrably buy completions")
    kill = series.get("kill_restart")
    if not isinstance(kill, dict):
        errors.append(f"{path}: kill_restart object missing")
    else:
        if not isinstance(kill.get("killed_after"), int) or \
                kill["killed_after"] < 1:
            errors.append(f"{path}: kill_restart.killed_after missing or "
                          "< 1 - the kill must land mid-batch")
        if kill.get("lost") != 0:
            errors.append(f"{path}: kill_restart.lost is "
                          f"{kill.get('lost')!r}, need exactly 0")
        if kill.get("double_committed") != 0:
            errors.append(f"{path}: kill_restart.double_committed is "
                          f"{kill.get('double_committed')!r}, need exactly 0")
    overhead = series.get("overhead_frac")
    if not isinstance(overhead, (int, float)) or overhead > 0.10:
        errors.append(f"{path}: overhead_frac is {overhead!r}, need <= 0.10 "
                      "- journaling and admission must be near-free on a "
                      "clean batch")
    if series.get("deterministic_rerun") is not True:
        errors.append(f"{path}: deterministic_rerun must be true - fleet "
                      "results must be bit-identical for a fixed (spec, "
                      "seed, workers)")


# Every committed BENCH_*.json must name one of these experiments. A
# validator re-checks the experiment's gates from the artifact; None means
# the experiment has no gates beyond the envelope (figure/table replays
# whose numbers are judged against the paper in EXPERIMENTS.md, not
# thresholded here). An experiment absent from this table fails the docs
# stage outright - new artifacts must state their gates.
KNOWN_EXPERIMENTS = {
    "ablation_coarse": None,
    "ablation_params": None,
    "ablation_subsolver": None,
    "availability": None,
    "deadline": check_deadline_series,
    "failslow": check_failslow_series,
    "fig1_asci_red": None,
    "fig2_machines": None,
    "fig3_cache_tlb": None,
    "fig4_partitioning": None,
    "fig5_cfl": None,
    "fleet": check_fleet_series,
    "micro_kernels": None,
    "sdc": None,
    "simd": check_simd_series,
    "table1_layout": None,
    "table2_precision": None,
    "table3_bottlenecks": None,
    "table4_schwarz": None,
    "table5_hybrid": None,
    "threading": None,
    "tune": check_tune_series,
}


def check_tunedb(path, errors):
    """Persisted tuning DB must match the f3d-tunedb-v1 schema the loader
    validates at solver startup."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or invalid JSON ({e})")
        return
    if doc.get("schema") != TUNEDB_SCHEMA:
        errors.append(f"{path}: schema is {doc.get('schema')!r}, expected "
                      f"{TUNEDB_SCHEMA!r}")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        errors.append(f"{path}: entries missing or empty")
        return
    for k, e in enumerate(entries):
        if not isinstance(e, dict):
            errors.append(f"{path}: entry {k} not an object")
            continue
        key_obj = e.get("key")
        if not isinstance(key_obj, dict):
            errors.append(f"{path}: entry {k} missing key object")
            key_obj = {}
        for key in ("mesh_class", "host_isa", "precision"):
            if not isinstance(key_obj.get(key), str) or not key_obj[key]:
                errors.append(f"{path}: entry {k} missing key field {key!r}")
        if not isinstance(e.get("config"), dict) or not e["config"]:
            errors.append(f"{path}: entry {k} missing config object")


def check_knob_docs(knobs_path, tuning_md, errors):
    """Every knob in the dumped catalog must be named in the tuning doc;
    an undocumented knob is a docs failure, not a silent drift."""
    try:
        with open(knobs_path, encoding="utf-8") as f:
            catalog = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{knobs_path}: unreadable or invalid JSON ({e})")
        return
    if not isinstance(catalog, list) or not catalog:
        errors.append(f"{knobs_path}: knob catalog must be a non-empty array")
        return
    try:
        with open(tuning_md, encoding="utf-8") as f:
            doc_text = f.read()
    except OSError as e:
        errors.append(f"{tuning_md}: cannot read tuning doc ({e})")
        return
    for k, knob in enumerate(catalog):
        name = knob.get("name") if isinstance(knob, dict) else None
        if not isinstance(name, str) or not name:
            errors.append(f"{knobs_path}: catalog record {k} has no name")
            continue
        if name not in doc_text:
            errors.append(f"{tuning_md}: registered knob {name!r} is not "
                          "documented (knob catalog cross-check)")


def check_trace(path, min_coverage, errors):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or invalid JSON ({e})")
        return
    meta = doc.get("meta", {})
    if meta.get("schema") != TRACE_SCHEMA:
        errors.append(f"{path}: meta.schema is {meta.get('schema')!r}, "
                      f"expected {TRACE_SCHEMA!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append(f"{path}: traceEvents missing or empty")
        return
    for k, e in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                errors.append(f"{path}: event {k} missing {key!r}")
        if e.get("ph") == "X" and "dur" not in e:
            errors.append(f"{path}: complete event {k} missing 'dur'")
    if min_coverage > 0:
        roots = [e for e in events if e.get("name") == "ptc_solve"]
        if not roots:
            errors.append(f"{path}: no ptc_solve root span for the "
                          "coverage check")
            return
        root = roots[-1]
        covered = sum(
            e.get("dur", 0.0) for e in events
            if e.get("tid") == root.get("tid")
            and e.get("args", {}).get("depth") == 1)
        frac = covered / root["dur"] if root.get("dur") else 0.0
        if frac < min_coverage:
            errors.append(
                f"{path}: depth-1 spans cover {frac:.1%} of the root span, "
                f"need >= {min_coverage:.0%}")


def check_markdown_links(repo_root, errors):
    files = [os.path.join(repo_root, f) for f in MARKDOWN_FILES]
    files += sorted(glob.glob(os.path.join(repo_root, "docs", "*.md")))
    for md in files:
        if not os.path.isfile(md):
            continue
        base = os.path.dirname(md)
        with open(md, encoding="utf-8") as f:
            text = f.read()
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in LINK_RE.finditer(line):
                target = m.group(2)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                target = target.split("#", 1)[0]
                if not target:
                    continue
                resolved = os.path.normpath(os.path.join(base, target))
                if not os.path.exists(resolved):
                    rel = os.path.relpath(md, repo_root)
                    errors.append(f"{rel}:{lineno}: dead link -> {m.group(2)}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace JSON to validate")
    ap.add_argument("--min-coverage", type=float, default=0.0,
                    help="required depth-1 coverage of the ptc_solve root "
                         "span (e.g. 0.9); 0 disables the check")
    ap.add_argument("--tunedb", help="persisted tuning DB (f3d-tunedb-v1) "
                                     "to validate")
    ap.add_argument("--knobs", help="knob catalog JSON (tuned_solve "
                                    "-dump-knobs) to cross-check against "
                                    "the tuning doc")
    ap.add_argument("--tuning-md", default=None,
                    help="tuning doc for the knob cross-check "
                         "(default: <repo>/docs/TUNING.md)")
    ap.add_argument("--repo", default=None,
                    help="repo root (default: parent of this script)")
    args = ap.parse_args()

    repo_root = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    errors = []

    bench_files = sorted(glob.glob(os.path.join(repo_root, "BENCH_*.json")))
    if not bench_files:
        errors.append("no committed BENCH_*.json found at the repo root")
    for path in bench_files:
        check_bench_report(path, errors)

    if args.trace:
        check_trace(args.trace, args.min_coverage, errors)

    if args.tunedb:
        check_tunedb(args.tunedb, errors)

    if args.knobs:
        tuning_md = args.tuning_md or os.path.join(repo_root, "docs",
                                                   "TUNING.md")
        check_knob_docs(args.knobs, tuning_md, errors)

    check_markdown_links(repo_root, errors)

    if errors:
        for e in errors:
            print(f"check_docs: {e}", file=sys.stderr)
        return 1
    n_md = len(MARKDOWN_FILES) + len(glob.glob(
        os.path.join(repo_root, "docs", "*.md")))
    print(f"check_docs: OK ({len(bench_files)} bench report(s), "
          f"{'1 trace, ' if args.trace else ''}{n_md} markdown file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
