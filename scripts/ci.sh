#!/usr/bin/env bash
# Full CI gate in one command:
#   1. release build + complete test suite, then the same suite against
#      the scalar SIMD fallback (F3D_SIMD=OFF), then the sdc-labelled
#      subset on its own (ABFT guards, bit-flip injection, Json/checkpoint
#      hardening) and the failslow-labelled subset (straggler injection,
#      outlier detector, mitigation ladder) so each defense layer's
#      regressions are visible as their own stage
#   2. thread-scaling bench of the exec-layer kernels (writes
#      BENCH_threading.json; also re-verifies bit-identity across thread
#      counts and exits nonzero on any mismatch), then the SIMD +
#      mixed-precision three-way A/B (writes BENCH_simd.json; exits
#      nonzero when the mixed solve misses the double solve's
#      tolerance), then the SDC injection
#      campaign (writes BENCH_sdc.json; exits nonzero when exponent-flip
#      detection coverage drops below 90%, a clean run false-positives,
#      or guard overhead exceeds 10%), then the fail-slow mitigation
#      sweep (writes BENCH_failslow.json; exits nonzero when the ladder
#      recovers < 50% of a 4x straggler's tax or the detector
#      false-positives on a clean campaign), then the deadline oracle
#      campaign (writes BENCH_deadline.json; exits nonzero when the
#      degradation ladder's on-time rate drops below 95%, the stall
#      watchdog false-positives on a clean scenario or misses the stall
#      scenario, or p99 cancellation latency exceeds the documented
#      work-unit bound at 1/2/4 threads)
#      threads), then the self-tuning A/B (writes BENCH_tune.json +
#      build/tune_db.json; exits nonzero when the tuned config is worse
#      than the compiled defaults or the DB round-trip is not
#      bit-identical), then the scenario-fleet storm campaign (writes
#      BENCH_fleet.json; exits nonzero when the retry ladder misses a
#      non-poison scenario, poison escapes quarantine, kill-and-restart
#      loses or double-commits a scenario, clean-lane overhead exceeds
#      10%, or a re-run is not bit-identical)
#   3. docs gate: a traced quickstart run must produce a schema-valid
#      Chrome trace whose phase spans cover >=90% of the solve, every
#      committed BENCH_*.json must carry the f3d-bench-v1 envelope, the
#      tuning DB must match f3d-tunedb-v1, every registered knob (dumped
#      via tuned_solve -dump-knobs) must be documented in docs/TUNING.md
#      (with a negative control proving the cross-check can fail), and
#      the markdown must have no dead relative links
#   4. ASan+UBSan build + the resilience-labelled tests (the fault
#      injection / recovery / checkpoint / distributed-campaign paths,
#      where memory bugs would hide behind error handling) + the sdc-,
#      failslow- and simd-labelled tests under the same sanitizers
#   5. TSan build + the threaded-labelled tests (the exec pool, colored
#      scatters, level-scheduled solves) with a 4-thread pool
#
# Usage: scripts/ci.sh [-j N]

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

echo "=== release build + full test suite ==="
cmake --preset release
cmake --build --preset release -j "$JOBS"
ctest --preset release -j "$JOBS"

# Scalar-fallback lane: the same suite must pass with the explicit SIMD
# kernels compiled out (F3D_SIMD=OFF) — the portable configuration every
# non-x86 or older-compiler build lands on, and the "scalar-double" leg
# of the bench_simd A/B.
echo "=== scalar-fallback build (F3D_SIMD=OFF) + full test suite ==="
cmake --preset release-scalar
cmake --build --preset release-scalar -j "$JOBS"
ctest --preset release-scalar -j "$JOBS"

echo "=== sdc-labelled tests (release) ==="
ctest --preset release-sdc -j "$JOBS"

echo "=== failslow-labelled tests (release) ==="
ctest --preset release-failslow -j "$JOBS"

# Hang-detection lane: the run-to-completion tests exercise deadlines and
# cancellation, where a regression shows up as a wedge, not a wrong
# answer. Every test carries a TIMEOUT property and the preset adds a
# hard 120 s cap, so a hung solve fails loudly here instead of stalling
# the pipeline.
echo "=== guard-labelled tests (release, hang-detection lane) ==="
ctest --preset release-guard -j "$JOBS" --timeout 120

echo "=== tune-labelled tests (release) ==="
ctest --preset release-tune -j "$JOBS"

# Fleet lane: journal replay/truncation sweeps, the retry/quarantine
# ladder, and admission control. Kill-and-restart tests replay real
# journals, so a hard TIMEOUT cap keeps a wedged resume from stalling CI.
echo "=== fleet-labelled tests (release) ==="
ctest --preset release-fleet -j "$JOBS" --timeout 120

echo "=== thread-scaling bench (BENCH_threading.json) ==="
./build/bench/bench_threading -vertices 8000 -reps 3 -out BENCH_threading.json

echo "=== SIMD + mixed-precision A/B (BENCH_simd.json) ==="
./build/bench/bench_simd -vertices 8000 -reps 3 -solve-steps 6 -out BENCH_simd.json

echo "=== SDC injection campaign (BENCH_sdc.json) ==="
./build/bench/bench_sdc -out BENCH_sdc.json

echo "=== fail-slow mitigation sweep (BENCH_failslow.json) ==="
./build/bench/bench_failslow -out BENCH_failslow.json

echo "=== deadline oracle campaign (BENCH_deadline.json) ==="
./build/bench/bench_deadline -out BENCH_deadline.json

echo "=== self-tuning A/B (BENCH_tune.json + build/tune_db.json) ==="
./build/bench/bench_tune -small 2500 -medium 6000 -width 8 -rungs 2 \
  -db build/tune_db.json -out BENCH_tune.json

echo "=== scenario-fleet storm campaign (BENCH_fleet.json) ==="
./build/bench/bench_fleet -out BENCH_fleet.json

echo "=== docs gate: trace schema + bench envelopes + markdown links ==="
F3D_TRACE=1 F3D_TRACE_OUT=build/ci_trace.json ./build/examples/quickstart
./build/examples/tuned_solve -dump-knobs > build/knobs.json
python3 scripts/check_docs.py --trace build/ci_trace.json --min-coverage 0.9 \
  --tunedb build/tune_db.json --knobs build/knobs.json

# Negative control for the knob-catalog cross-check: strip one knob from
# a copy of the tuning doc and demand the gate notices. A gate that
# cannot fail is not a gate.
echo "=== docs gate negative control (deliberately undocumented knob) ==="
grep -v 'ptc\.cfl0' docs/TUNING.md > build/TUNING_missing.md
if python3 scripts/check_docs.py --knobs build/knobs.json \
     --tuning-md build/TUNING_missing.md >/dev/null 2>&1; then
  echo "ERROR: check_docs.py accepted a tuning doc missing ptc.cfl0" >&2
  exit 1
fi

# Negative control for the unknown-experiment registry: a schema-valid
# BENCH artifact whose experiment has no registered validator must fail
# the docs gate rather than slide through envelope-only.
echo "=== docs gate negative control (unregistered BENCH experiment) ==="
mkdir -p build/docs_negctl
cat > build/docs_negctl/BENCH_mystery.json <<'EOF'
{"meta": {"schema": "f3d-bench-v1", "experiment": "mystery",
          "host_isa": {"isa": "none", "arch": "x86_64",
                       "double_lanes": 1, "simd_compiled": false}},
 "series": {}}
EOF
if python3 scripts/check_docs.py --repo build/docs_negctl >/dev/null 2>&1; then
  echo "ERROR: check_docs.py accepted an unregistered BENCH experiment" >&2
  exit 1
fi

echo "=== asan build + resilience-labelled tests ==="
cmake --preset asan
cmake --build --preset asan -j "$JOBS"
ctest --preset asan-resilience -j "$JOBS"
ctest --preset asan-sdc -j "$JOBS"
ctest --preset asan-failslow -j "$JOBS"
ctest --preset asan-tune -j "$JOBS"
ctest --preset asan-fleet -j "$JOBS" --timeout 240

# UBSan over the explicit SIMD kernels: the memcpy-based pack loads and
# the float promote paths must be alignment- and aliasing-clean.
echo "=== simd-labelled tests (ASan+UBSan) ==="
ctest --preset asan-simd -j "$JOBS"

echo "=== tsan build + threaded-labelled tests ==="
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"
ctest --preset tsan-threaded -j "$JOBS"

echo "=== CI green ==="
