// Design-cycle walkthrough: the paper's motivating use case. "FUN3D is
// used for design optimization ... The optimization loop involves many
// analysis cycles. Thus, time to reach the steady-state solution in each
// analysis cycle is crucial." This example runs a small angle-of-attack
// sweep (the analysis loop of a lift study), warm-starting each cycle
// from the previous converged state, and reports how much cheaper warm
// cycles are than cold ones — plus a lift-vs-alpha polar at the end.
//
//   $ design_cycle [-vertices 6000] [-cycles 5] [-dalpha 0.75]

#include <cmath>
#include <cstdio>

#include "cfd/problem.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "io/csv.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "solver/newton.hpp"

int main(int argc, char** argv) {
  using namespace f3d;
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 6000);
  const int cycles = opts.get_int("cycles", 5);
  const double dalpha = opts.get_double("dalpha", 0.75);

  auto mesh = mesh::generate_wing_mesh_with_size(vertices);
  mesh::apply_best_ordering(mesh);
  std::printf("design study: %d analysis cycles, alpha = 0 .. %.2f deg, "
              "%d vertices\n\n",
              cycles, dalpha * (cycles - 1), mesh.num_vertices());

  Table t({"cycle", "alpha", "start", "steps", "linear its", "time",
           "wall Fz (lift proxy)"});
  std::vector<double> state;  // carried between cycles (warm start)
  double cold_steps = 0, warm_steps = 0;
  int warm_cycles = 0;

  for (int cycle = 0; cycle < cycles; ++cycle) {
    cfd::FlowConfig cfg;
    cfg.model = cfd::Model::kIncompressible;
    cfg.order = 1;
    cfg.alpha_deg = dalpha * cycle;
    cfd::EulerDiscretization disc(mesh, cfg);
    cfd::EulerProblem prob(disc, -1.0);

    const bool warm = !state.empty();
    auto x = warm ? state : prob.initial_state();

    solver::PtcOptions popts;
    popts.cfl0 = warm ? 1000.0 : 20.0;  // warm states tolerate huge CFL
    popts.rtol = 1e-8;
    popts.max_steps = 60;
    popts.schwarz.fill_level = 1;
    Timer timer;
    auto res = solver::ptc_solve(prob, x, popts);
    const double secs = timer.seconds();
    if (!res.converged) {
      std::printf("cycle %d did not converge\n", cycle);
      return 1;
    }
    if (warm) {
      warm_steps += res.steps;
      ++warm_cycles;
    } else {
      cold_steps = res.steps;
    }

    // Lift proxy: z-component of the pressure force on the wall (grows
    // monotonically with the angle of attack — the polar a design loop
    // sweeps out).
    double fz = 0;
    const auto& bfaces = mesh.boundary_faces();
    for (std::size_t f = 0; f < bfaces.size(); ++f) {
      if (bfaces[f].tag != mesh::BoundaryTag::kWall) continue;
      for (int lv = 0; lv < 3; ++lv) {
        const int v = bfaces[f].v[lv];
        fz += x[static_cast<std::size_t>(v) * 4] *
              disc.dual().bface_normal[f][2] / 3.0;
      }
    }
    t.add_row({Table::num(static_cast<long long>(cycle)),
               Table::num(cfg.alpha_deg, 2), warm ? "warm" : "cold",
               Table::num(static_cast<long long>(res.steps)),
               Table::num(res.total_linear_iterations),
               Table::num(secs, 2) + "s", Table::num(fz, 4)});

    // Checkpoint the converged state (also demonstrates the state I/O).
    state = x;
    if (opts.has("checkpoint")) {
      io::write_state(opts.get_string("checkpoint", "cycle.state"), state);
      state = io::read_state(opts.get_string("checkpoint", "cycle.state"));
    }
  }
  t.print();
  if (warm_cycles > 0 && cold_steps > 0)
    std::printf("\nwarm cycles averaged %.1f pseudo-steps vs %.0f for the "
                "cold start (%.1fx fewer) — the payoff the paper's design "
                "loop depends on.\n",
                warm_steps / warm_cycles, cold_steps,
                cold_steps * warm_cycles / std::max(warm_steps, 1e-9));
  return 0;
}
