// Cache explorer: point the simulated memory hierarchy at the solver's
// kernels under a cache geometry of your choosing — the "what if my
// machine had ..." tool behind the paper's memory-centric methodology.
//
//   $ cache_explorer [-vertices 12000] [-l2-kb 4096] [-l2-assoc 2]
//                    [-line 128] [-tlb 64] [-page-kb 4]
//
// Prints, for each layout configuration, the TLB and L2 miss counts of a
// flux evaluation + SpMV, plus the analytic Eq. 1/2 bound for the SpMV
// vector working set — letting you see the paper's model and the
// simulation side by side on your own parameters.

#include <cstdio>

#include "cfd/euler.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "perf/models.hpp"
#include "simcache/traced_kernels.hpp"
#include "sparse/assembly.hpp"

int main(int argc, char** argv) {
  using namespace f3d;
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 12000);

  simcache::MemoryTracer::Config cache_cfg;
  cache_cfg.l2_capacity = static_cast<std::uint64_t>(
      opts.get_int("l2-kb", 4096)) * 1024;
  cache_cfg.l2_assoc = static_cast<std::uint32_t>(opts.get_int("l2-assoc", 2));
  cache_cfg.l2_line = static_cast<std::uint32_t>(opts.get_int("line", 128));
  cache_cfg.tlb_entries = static_cast<std::uint32_t>(opts.get_int("tlb", 64));
  cache_cfg.page_size = static_cast<std::uint32_t>(
      opts.get_int("page-kb", 4)) * 1024;

  std::printf("simulated hierarchy: L2 %lluKB/%u-way (%uB lines), TLB %u x "
              "%uKB pages\n",
              static_cast<unsigned long long>(cache_cfg.l2_capacity / 1024),
              cache_cfg.l2_assoc, cache_cfg.l2_line, cache_cfg.tlb_entries,
              cache_cfg.page_size / 1024);

  auto shuffled = mesh::generate_wing_mesh_with_size(vertices);
  mesh::shuffle_mesh(shuffled, 1);
  auto ordered = shuffled;
  mesh::apply_best_ordering(ordered);
  std::printf("mesh: %d vertices, %d edges\n\n", shuffled.num_vertices(),
              shuffled.num_edges());

  const int nb = 4;
  auto run = [&](const mesh::UnstructuredMesh& mesh, bool interlace) {
    cfd::FlowConfig fc;
    fc.model = cfd::Model::kIncompressible;
    fc.order = 1;
    fc.layout = interlace ? sparse::FieldLayout::kInterlaced
                          : sparse::FieldLayout::kNonInterlaced;
    cfd::EulerDiscretization disc(mesh, fc);
    auto stencil = sparse::stencil_from_mesh(mesh);
    auto values = sparse::synthetic_values(stencil);
    auto a = sparse::build_point_csr(stencil, nb, values, fc.layout);
    auto q = disc.make_freestream_field();
    std::vector<double> r, x(static_cast<std::size_t>(a.n), 1.0), y(x.size());

    simcache::MemoryTracer tracer(cache_cfg);
    simcache::traced_flux(mesh, disc.dual(), fc, q, r, tracer);  // warm
    simcache::traced_spmv_csr(a, x.data(), y.data(), tracer);
    tracer.reset_counters();
    simcache::traced_flux(mesh, disc.dual(), fc, q, r, tracer);
    simcache::traced_spmv_csr(a, x.data(), y.data(), tracer);
    return std::pair<long long, long long>(
        static_cast<long long>(tracer.tlb().misses()),
        static_cast<long long>(tracer.l2().misses()));
  };

  Table t({"Configuration", "TLB misses", "L2 misses"});
  struct Row {
    const char* name;
    bool reorder, interlace;
  };
  for (const Row& row : {Row{"shuffled, non-interlaced", false, false},
                         Row{"shuffled, interlaced", false, true},
                         Row{"RCM+sorted, non-interlaced", true, false},
                         Row{"RCM+sorted, interlaced", true, true}}) {
    auto [tlb, l2] = run(row.reorder ? ordered : shuffled, row.interlace);
    t.add_row({row.name, Table::num(tlb), Table::num(l2)});
  }
  t.print();

  // The paper's analytic bounds for the SpMV vector working set.
  const std::uint64_t n_dw =
      static_cast<std::uint64_t>(shuffled.num_vertices()) * nb;
  const std::uint64_t beta_dw =
      static_cast<std::uint64_t>(ordered.bandwidth()) * nb;
  const std::uint64_t cache_dw = cache_cfg.l2_capacity / 8;
  const std::uint64_t line_dw = cache_cfg.l2_line / 8;
  std::printf("\nEq. 1 bound (non-interlaced, span ~ N = %llu doubles): "
              "%llu conflict misses\n",
              static_cast<unsigned long long>(n_dw),
              static_cast<unsigned long long>(
                  perf::conflict_miss_bound(n_dw, n_dw, cache_dw, line_dw)));
  std::printf("Eq. 2 bound (interlaced+RCM, span ~ nb*beta = %llu doubles): "
              "%llu conflict misses\n",
              static_cast<unsigned long long>(beta_dw),
              static_cast<unsigned long long>(perf::conflict_miss_bound(
                  n_dw, beta_dw, cache_dw, line_dw)));
  std::printf("\nTry: -l2-kb 256 to watch the interlaced/non-interlaced gap\n"
              "open up, or -tlb 16 to reproduce the TLB cliff of Figure 3.\n");
  return 0;
}
