// Layout tuning walkthrough: how a user applies the paper's three data
// layout enhancements to their own mesh and verifies each one's effect —
// on bandwidth, on simulated cache/TLB behaviour, and on real kernel time.
//
//   $ layout_tuning [-vertices 12000]

#include <cstdio>

#include "cfd/euler.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "simcache/traced_kernels.hpp"
#include "sparse/assembly.hpp"

int main(int argc, char** argv) {
  using namespace f3d;
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 12000);

  // A mesh "as delivered": vertex numbering is whatever the generator
  // produced (emulated by a shuffle).
  auto mesh = mesh::generate_wing_mesh_with_size(vertices);
  mesh::shuffle_mesh(mesh, 42);
  std::printf("as-delivered mesh: %d vertices, bandwidth %d\n",
              mesh.num_vertices(), mesh.bandwidth());

  // Step 1: vertex reordering (RCM) — shrinks the Jacobian bandwidth,
  // which is the beta in the paper's conflict-miss bound (Eq. 2).
  auto rcm = mesh::rcm_ordering(mesh.vertex_adjacency());
  mesh.permute_vertices(rcm);
  std::printf("after RCM: bandwidth %d\n", mesh.bandwidth());

  // Step 2: edge reordering — sorts the flux loop by tail vertex.
  mesh.permute_edges(mesh::edge_order_sorted(mesh));

  // Step 3: compare field layouts and matrix formats on the tuned mesh.
  auto stencil = sparse::stencil_from_mesh(mesh);
  auto values = sparse::synthetic_values(stencil);
  const int nb = 4;

  auto mi = sparse::build_point_csr(stencil, nb, values,
                                    sparse::FieldLayout::kInterlaced);
  auto mn = sparse::build_point_csr(stencil, nb, values,
                                    sparse::FieldLayout::kNonInterlaced);
  auto mb = sparse::build_bcsr(stencil, nb, values);

  std::vector<double> x(static_cast<std::size_t>(stencil.n) * nb, 1.0);
  std::vector<double> y(x.size());
  auto time_spmv = [&](auto& m) {
    // Warm + best of 5.
    m.spmv(x.data(), y.data());
    double best = 1e100;
    for (int r = 0; r < 5; ++r) {
      Timer t;
      for (int k = 0; k < 10; ++k) m.spmv(x.data(), y.data());
      best = std::min(best, t.seconds() / 10);
    }
    return best;
  };

  // Cache/TLB behaviour from the simulator (no hardware counters needed).
  auto misses = [&](auto&& kernel) {
    simcache::MemoryTracer tracer;
    kernel(tracer);  // warm
    tracer.reset_counters();
    kernel(tracer);
    return std::pair<long long, long long>(
        static_cast<long long>(tracer.tlb().misses()),
        static_cast<long long>(tracer.l2().misses()));
  };
  auto [tlb_i, l2_i] = misses([&](simcache::MemoryTracer& t) {
    simcache::traced_spmv_csr(mi, x.data(), y.data(), t);
  });
  auto [tlb_n, l2_n] = misses([&](simcache::MemoryTracer& t) {
    simcache::traced_spmv_csr(mn, x.data(), y.data(), t);
  });
  auto [tlb_b, l2_b] = misses([&](simcache::MemoryTracer& t) {
    simcache::traced_spmv_bcsr(mb, x.data(), y.data(), t);
  });

  Table table({"SpMV variant", "time", "TLB misses", "L2 misses"});
  table.add_row({"non-interlaced point CSR",
                 Table::num(time_spmv(mn) * 1e3, 2) + "ms", Table::num(tlb_n),
                 Table::num(l2_n)});
  table.add_row({"interlaced point CSR",
                 Table::num(time_spmv(mi) * 1e3, 2) + "ms", Table::num(tlb_i),
                 Table::num(l2_i)});
  table.add_row({"interlaced block CSR (BAIJ)",
                 Table::num(time_spmv(mb) * 1e3, 2) + "ms", Table::num(tlb_b),
                 Table::num(l2_b)});
  std::printf("\n");
  table.print();
  std::printf("\nRule of thumb from the paper: interlace fields, block the\n"
              "matrix by the %d unknowns per vertex, and order vertices/edges\n"
              "for locality — worth ~5x end to end on cache machines.\n",
              nb);
  return 0;
}
