// Bit-flip storm: inject silent, finite-value bit flips — the kind no
// NaN/Inf guard can see — into the resilient psi-NKS solve and watch the
// SDC defense catch them: the ABFT-checksummed SpMV, the residual
// transport checksum, the Krylov drift monitors, and the step-entry
// state scan, with the recompute and rollback rungs clearing what they
// flag.
//
//   $ bit_flip_storm [-seed 7] [-bit 58] [-target state|residual|krylov|
//                     matrix|any] [-flips 3] [-vertices 500] [-recovery 1]
//
// `-bit` picks the flipped IEEE-754 bit: 52-62 (exponent) corrupts by
// orders of magnitude and must be caught; 0-25 (low mantissa) sits below
// the checksum noise floor and silently rides along — the measured
// escape class. With -recovery 0 the first detection aborts the solve.

#include <cstdio>
#include <cstring>
#include <string>

#include "cfd/problem.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "resilience/bitflip.hpp"
#include "resilience/faults.hpp"
#include "resilience/recovery.hpp"
#include "solver/newton.hpp"

int main(int argc, char** argv) {
  using namespace f3d;
  using resilience::FlipTarget;
  Options opts(argc, argv);

  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 7));
  const int bit = opts.get_int("bit", 58);
  const int flips = opts.get_int("flips", 3);
  const bool recovery = opts.get_int("recovery", 1) != 0;
  const std::string tname = opts.get_string("target", "any");

  FlipTarget target = FlipTarget::kAny;
  for (auto t : {FlipTarget::kState, FlipTarget::kResidual,
                 FlipTarget::kKrylov, FlipTarget::kMatrix})
    if (tname == resilience::flip_target_name(t)) target = t;

  auto mesh = mesh::generate_wing_mesh_with_size(opts.get_int("vertices", 500));
  mesh::apply_best_ordering(mesh);
  std::printf("mesh: %d vertices | seed %llu, bit %d (%s), target %s, "
              "%d flip(s), recovery %s\n",
              mesh.num_vertices(), static_cast<unsigned long long>(seed), bit,
              bit >= 52 ? (bit == 63 ? "sign" : "exponent") : "mantissa",
              resilience::flip_target_name(target), flips,
              recovery ? "ON" : "OFF");

  resilience::FaultInjector injector(seed);
  resilience::FaultPlan plan;
  plan.fire_every = 2;  // one flip every couple of residual/state/matrix touches
  plan.skip_first = 3;
  plan.max_fires = flips;
  injector.arm(resilience::FaultSite::kBitFlip, plan);
  injector.set_bit_flip({.bit = bit, .target = target});

  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(mesh, cfg);
  cfd::EulerProblem problem(disc, /*switch_to_second_at=*/-1.0);

  solver::PtcOptions popts;
  popts.cfl0 = opts.get_double("cfl0", 20.0);
  popts.rtol = opts.get_double("rtol", 1e-8);
  popts.max_steps = opts.get_int("max-steps", 80);
  popts.schwarz.fill_level = 1;
  popts.num_subdomains = 2;
  popts.matrix_free = false;  // assembled operator: ABFT on the hook
  popts.recovery.enabled = recovery;
  popts.sdc.enabled = true;
  popts.fault_injector = &injector;

  auto x = problem.initial_state();
  solver::PtcResult result;
  try {
    result = solver::ptc_solve(problem, x, popts);
  } catch (const NumericalError& e) {
    std::printf("\nSOLVE ABORTED: %s\n", e.what());
    std::printf("flips fired before abort: %d\n",
                injector.fires(resilience::FaultSite::kBitFlip));
    std::printf("(re-run with -recovery 1 to see the SDC rungs clear the "
                "same storm)\n");
    return 1;
  }

  std::printf("\nflips fired: %d (of %d planned)\n",
              injector.fires(resilience::FaultSite::kBitFlip), flips);
  std::printf("SDC detections: %d | recompute rungs: %d | rollback rungs: "
              "%d\n",
              result.sdc_detections, result.sdc_recomputes,
              result.sdc_rollbacks);
  std::printf("\nrecovery log (%zu events, %d detections):\n",
              result.recovery_log.size(), result.recovery_log.detections());
  std::printf("%s", result.recovery_log.to_string().c_str());

  std::printf("\n%s in %d steps (%d rejected, final residual %.3e)\n",
              result.converged ? "CONVERGED" : "NOT converged", result.steps,
              result.steps_rejected,
              result.final_residual / result.initial_residual);
  return result.converged ? 0 : 1;
}
