// Compressible Euler flow over the wing with the paper's robustness
// recipe (§2.4.1): start first-order with a modest CFL, switch to
// second-order after two orders of residual reduction, and let the SER
// power law drive the timestep toward Newton's method.
//
//   $ compressible_wing [-vertices 6000] [-mach 0.5] [-alpha 2.0]

#include <cmath>
#include <cstdio>

#include "cfd/problem.hpp"
#include "io/vtk.hpp"
#include "common/options.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "solver/newton.hpp"

int main(int argc, char** argv) {
  using namespace f3d;
  Options opts(argc, argv);

  auto mesh = mesh::generate_wing_mesh_with_size(opts.get_int("vertices", 6000));
  mesh::apply_best_ordering(mesh);

  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kCompressible;
  cfg.mach = opts.get_double("mach", 0.5);
  cfg.alpha_deg = opts.get_double("alpha", 2.0);
  cfg.order = 2;  // target order; the problem starts first-order below
  cfd::EulerDiscretization disc(mesh, cfg);

  // Switch to second order after two orders of residual reduction — the
  // paper: "we normally reduce the first two to four orders of residual
  // norm with the first-order discretization, then switch to second."
  cfd::EulerProblem problem(disc, /*switch_to_second_at=*/1e-2);

  solver::PtcOptions popts;
  popts.cfl0 = opts.get_double("cfl0", 5.0);
  popts.ser_exponent = 1.0;
  popts.rtol = opts.get_double("rtol", 1e-8);
  popts.max_steps = opts.get_int("max-steps", 80);
  popts.schwarz.fill_level = 1;
  popts.num_subdomains = opts.get_int("subdomains", 1);

  std::printf("compressible Euler: Mach %.2f, alpha %.1f deg, %d vertices "
              "(%d DOFs)\n\n",
              cfg.mach, cfg.alpha_deg, mesh.num_vertices(),
              mesh.num_vertices() * 5);

  auto x = problem.initial_state();
  auto result = solver::ptc_solve(problem, x, popts);

  int switch_step = -1;
  for (const auto& h : result.history) {
    const bool second = disc.config().order == 2;
    if (switch_step < 0 && second &&
        h.residual / result.initial_residual < 1e-2)
      switch_step = h.step;
    std::printf("step %3d  res %.3e  CFL %8.0f  its %3d\n", h.step,
                h.residual / result.initial_residual, h.cfl,
                h.linear_iterations);
  }
  std::printf("\n%s; discretization finished at order %d\n",
              result.converged ? "CONVERGED" : "NOT converged",
              disc.config().order);

  // Flow field summary: Mach number statistics over the volume.
  double mmin = 1e30, mmax = -1e30;
  for (int v = 0; v < mesh.num_vertices(); ++v) {
    const double* q = &x[static_cast<std::size_t>(v) * 5];
    const double inv_rho = 1.0 / q[0];
    const double speed = std::sqrt(q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) *
                         inv_rho;
    const double p =
        (cfg.gamma - 1.0) *
        (q[4] - 0.5 * inv_rho * (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]));
    const double a = std::sqrt(cfg.gamma * p * inv_rho);
    const double mach = speed / a;
    mmin = std::min(mmin, mach);
    mmax = std::max(mmax, mach);
  }
  std::printf("Mach number range in the field: [%.3f, %.3f] "
              "(freestream %.2f; the bump accelerates the flow)\n",
              mmin, mmax, cfg.mach);
  if (opts.has("output")) {
    const auto path = opts.get_string("output", "flow.vtk");
    io::write_flow_vtk(path, mesh, disc.config(), x);
    std::printf("wrote %s\n", path.c_str());
  }
  return result.converged ? 0 : 1;
}
