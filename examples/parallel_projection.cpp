// Parallel planning walkthrough: given a mesh and a target machine, how
// many processors are worth using? Combines real measurements (partition
// quality, iteration growth with subdomain count) with the virtual
// machine models — the workflow behind the paper's Figures 1-2.
//
//   $ parallel_projection [-vertices 10000] [-target-vertices 2800000]
//                         [-machine red|bluepacific|t3e|origin]

#include <cmath>
#include <cstdio>

#include "cfd/problem.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "mesh/generator.hpp"
#include "mesh/graph.hpp"
#include "mesh/ordering.hpp"
#include "par/stepmodel.hpp"
#include "partition/partition.hpp"
#include "perf/machine.hpp"
#include "solver/newton.hpp"

// NOTE: this example intentionally repeats a little of bench_util's logic
// inline, because it documents the *user-facing* API sequence.

int main(int argc, char** argv) {
  using namespace f3d;
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 10000);
  const double target_nv = opts.get_double("target-vertices", 2.8e6);

  perf::MachineModel machine = perf::asci_red();
  const std::string mname = opts.get_string("machine", "red");
  if (mname == "bluepacific") machine = perf::blue_pacific();
  if (mname == "t3e") machine = perf::cray_t3e();
  if (mname == "origin") machine = perf::origin2000();

  // Calibration mesh + graph.
  auto mesh = mesh::generate_wing_mesh_with_size(vertices);
  mesh::apply_best_ordering(mesh);
  auto g = mesh::build_graph(mesh.num_vertices(), mesh.edges());

  // 1. Partition surface law from real partitions.
  std::vector<par::PartitionLoad> samples;
  for (int np : {8, 16, 32, 64})
    samples.push_back(par::measure_load(g, part::kway_grow(g, np)));
  auto law = par::fit_surface_law(samples);
  std::printf("surface law from real partitions: ghosts ~ %.1f (N/P)^(2/3), "
              "redundant edges ~ %.1f (N/P)^(2/3)\n",
              law.ghost_coeff, law.cut_coeff);

  // 2. Iteration growth from real multi-subdomain solves.
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  std::vector<std::pair<int, double>> its;
  for (int np : {8, 32}) {
    cfd::EulerDiscretization disc(mesh, cfg);
    cfd::EulerProblem prob(disc, -1.0);
    auto x = prob.initial_state();
    solver::PtcOptions popts;
    popts.max_steps = 3;
    popts.rtol = 1e-12;
    popts.num_subdomains = np;
    popts.partition = part::kway_grow(g, np);
    popts.schwarz.fill_level = 1;
    auto res = solver::ptc_solve(prob, x, popts);
    its.push_back({np, static_cast<double>(res.total_linear_iterations) /
                           std::max(1, res.steps)});
  }
  const double alpha = std::log(its[1].second / its[0].second) /
                       std::log(static_cast<double>(its[1].first) / its[0].first);
  std::printf("iteration growth measured: its/step ~ P^%.3f\n\n", alpha);

  // 3. Project onto the target machine.
  cfd::EulerDiscretization disc(mesh, cfg);
  par::WorkCoefficients work;
  work.nb = disc.nb();
  work.flux_flops_per_edge =
      disc.residual_flops() / std::max(1, mesh.num_edges());
  work.sparse_bytes_per_vertex_it = 2300;
  work.sparse_flops_per_vertex_it = 420;

  std::printf("projection: %.0f-vertex problem on %s\n", target_nv,
              machine.name.c_str());
  Table t({"Procs", "Verts/proc", "Time/step", "Parallel eff", "Gflop/s"});
  double t1 = 0;
  int p0 = 0;
  for (int p = 16; p <= machine.max_nodes; p *= 2) {
    par::StepCounts counts;
    counts.linear_its =
        its[0].second * std::pow(static_cast<double>(p) / its[0].first, alpha);
    auto load = par::synthesize_load(target_nv, p, law);
    auto b = par::model_step(machine, load, work, counts);
    if (p0 == 0) {
      p0 = p;
      t1 = b.total();
    }
    t.add_row({Table::num(static_cast<long long>(p)),
               Table::num(static_cast<long long>(target_nv / p)),
               Table::num(b.total(), 2) + "s",
               Table::num(t1 * p0 / (b.total() * p), 2),
               Table::num(b.gflops(), 1)});
  }
  t.print();
  std::printf("\nReading the table: stop adding processors when parallel\n"
              "efficiency drops below your budget threshold; the knee is\n"
              "where surface effects (ghosts, redundant edges, imbalance)\n"
              "catch up with the shrinking subdomain volume.\n");
  return 0;
}
