// Fault storm: run the resilient psi-NKS solver through a barrage of
// injected faults — corrupted residuals, zeroed pivots, poisoned Krylov
// iterations — and print the structured recovery log showing how the
// ladder (step rejection, CFL backtracking, pivot shifts, restart
// escalation, Krylov method swaps) rides them out.
//
//   $ fault_storm [-seed 42] [-vertices 2000] [-storm 3]
//
// `-storm` scales the fault rate (1 = sparse, 5 = relentless). With
// recovery disabled (-recovery 0) the same storm kills the solve.

#include <algorithm>
#include <cstdio>

#include "cfd/problem.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "resilience/faults.hpp"
#include "resilience/recovery.hpp"
#include "solver/newton.hpp"

int main(int argc, char** argv) {
  using namespace f3d;
  using resilience::FaultPlan;
  using resilience::FaultSite;
  Options opts(argc, argv);

  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const int storm = std::clamp(opts.get_int("storm", 3), 1, 10);
  const bool recovery = opts.get_int("recovery", 1) != 0;

  auto mesh = mesh::generate_wing_mesh_with_size(opts.get_int("vertices", 2000));
  mesh::apply_best_ordering(mesh);
  std::printf("mesh: %d vertices, %d edges | seed %llu, storm level %d, "
              "recovery %s\n",
              mesh.num_vertices(), mesh.num_edges(),
              static_cast<unsigned long long>(seed), storm,
              recovery ? "ON" : "OFF");

  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(mesh, cfg);
  cfd::EulerProblem problem(disc, /*switch_to_second_at=*/-1.0);

  // Arm every solver-stack site. fire_every schedules are deterministic,
  // so the same seed + storm level always replays the same storm.
  resilience::FaultInjector injector(seed);
  FaultPlan nan_plan;
  nan_plan.fire_every = 60 / storm;
  nan_plan.skip_first = 4;
  nan_plan.max_fires = storm;
  injector.arm(FaultSite::kResidual, nan_plan);
  FaultPlan pivot_plan;
  pivot_plan.fire_every = 4;
  pivot_plan.skip_first = 1;
  pivot_plan.max_fires = storm;
  injector.arm(FaultSite::kFactorPivot, pivot_plan);
  FaultPlan krylov_plan;
  krylov_plan.probability = 0.02 * storm;
  krylov_plan.max_fires = 2 * storm;
  injector.arm(FaultSite::kBicgstab, krylov_plan);

  solver::PtcOptions popts;
  popts.cfl0 = opts.get_double("cfl0", 20.0);
  popts.rtol = opts.get_double("rtol", 1e-6);
  popts.max_steps = opts.get_int("max-steps", 60);
  popts.schwarz.fill_level = 1;
  popts.num_subdomains = 2;
  popts.recovery.enabled = recovery;
  popts.fault_injector = &injector;

  auto x = problem.initial_state();
  solver::PtcResult result;
  try {
    result = solver::ptc_solve(problem, x, popts);
  } catch (const NumericalError& e) {
    std::printf("\nSOLVE ABORTED: %s\n", e.what());
    std::printf("(re-run with -recovery 1 to see the ladder absorb the "
                "same storm)\n");
    return 1;
  }

  std::printf("\nfaults fired:");
  for (int s = 0; s < resilience::kNumFaultSites; ++s) {
    const auto site = static_cast<FaultSite>(s);
    if (injector.fires(site) > 0)
      std::printf("  %s x%d", resilience::fault_site_name(site),
                  injector.fires(site));
  }
  std::printf("\n\nrecovery log (%zu events, %d detections):\n",
              result.recovery_log.size(), result.recovery_log.detections());
  std::printf("%s", result.recovery_log.to_string().c_str());

  std::printf("\n%s in %d steps (%d rejected, %d Krylov breakdowns, "
              "final residual %.3e)\n",
              result.converged ? "CONVERGED" : "NOT converged", result.steps,
              result.steps_rejected, result.krylov_breakdowns,
              result.final_residual / result.initial_residual);
  return result.converged ? 0 : 1;
}
