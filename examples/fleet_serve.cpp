// Fleet serving walkthrough: read a batch spec (or build a demo sweep),
// serve it through the journaled scenario fleet, and print the dashboard.
//
//   $ fleet_serve [-spec batch.json] [-workers 4] [-journal fleet.journal]
//                 [-resume] [-dash fleet_dash.json] [-storm]
//
// With `-storm` a seeded fault storm (fragile knob sets + poison work
// budgets) is injected into the demo sweep so the retry ladder and
// quarantine path have something to do. Kill the process mid-batch and
// rerun with `-resume` to watch the journal replay the committed set and
// finish only the pending scenarios.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/options.hpp"
#include "fleet/service.hpp"
#include "fleet/spec.hpp"

namespace {

f3d::fleet::BatchSpec load_or_demo(const f3d::Options& opts, bool storm) {
  const std::string path = opts.get_string("spec", "");
  if (!path.empty()) {
    std::ifstream in(path, std::ios::binary);
    F3D_CHECK_MSG(static_cast<bool>(in), "cannot open spec: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return f3d::fleet::BatchSpec::parse(text.str());
  }
  auto spec = f3d::fleet::BatchSpec::parse(R"({
    "schema": "f3d-fleet-batch-v1",
    "name": "demo-sweep",
    "seed": 11,
    "defaults": {"rtol": 1e-4, "max_steps": 80},
    "sweep": {"vertices": [200],
              "mach": [0.2, 0.3, 0.4],
              "alpha_deg": [0.0, 1.0, 2.0, 3.0]}
  })");
  if (storm) {
    for (auto& sc : spec.scenarios) {
      if (sc.id % 5 == 1) {
        sc.knobs = f3d::obs::Json::object();
        sc.knobs.set("ptc.no_such_knob", 1.0);  // rung 1 recovers this
      } else if (sc.id % 5 == 3) {
        sc.work_units = 5;  // hopeless budget: quarantined after 3 strikes
      }
    }
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace f3d;
  Options opts(argc, argv);
  const bool storm = opts.has("storm");

  fleet::BatchSpec spec;
  try {
    spec = load_or_demo(opts, storm);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spec error: %s\n", e.what());
    return 2;
  }
  std::printf("batch '%s': %d scenarios (hash %08x)%s\n", spec.name.c_str(),
              static_cast<int>(spec.scenarios.size()), spec.content_hash(),
              storm ? " [fault storm injected]" : "");

  fleet::FleetOptions o;
  o.workers = opts.get_int("workers", 4);
  o.journal_path = opts.get_string("journal", "fleet.journal");
  o.resume = opts.has("resume");
  o.backoff_base_ms = 1;
  o.tune_db_path = opts.get_string("tunedb", "");

  fleet::BatchResult res;
  try {
    fleet::Service svc(o);
    res = svc.serve(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve error: %s\n", e.what());
    return 1;
  }

  std::printf("\n%-28s %-11s %-8s %-18s %s\n", "scenario", "status",
              "attempts", "verdict", "wall s");
  for (const auto& sc : res.scenarios)
    std::printf("%-28s %-11s %-8d %-18s %.4f%s\n", sc.name.c_str(),
                fleet::scenario_status_name(sc.status), sc.attempts,
                sc.verdict.c_str(), sc.wall_s,
                sc.replayed ? "  (replayed)" : "");
  std::printf("\n%d committed, %d quarantined, %d shed, %d cancelled, "
              "%d pending | %d retries | %.3f s\n",
              res.committed, res.quarantined, res.shed, res.cancelled,
              res.pending, res.retries, res.wall_s);

  const std::string dash = opts.get_string("dash", "");
  if (!dash.empty() && obs::write_json_file(dash, res.to_json()))
    std::printf("dashboard -> %s\n", dash.c_str());
  return res.pending == 0 ? 0 : 1;
}
