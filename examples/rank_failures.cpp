// Rank failures: run a psi-NKS campaign on the virtual parallel machine
// with a seeded fail-stop process and a lossy interconnect armed, under
// both recovery policies — spare-rank substitution and
// shrink-and-repartition — from the SAME seed, and print the recovery
// logs and step-time breakdowns side by side. The contrast is the point:
// spares keep the decomposition (and the step time) intact at the price
// of idle hardware; shrinking survives with what is left but the
// absorbed subdomains show up as load imbalance (implicit
// synchronization time) in every step after the failure.
//
//   $ rank_failures [-seed 7] [-vertices 4000] [-ranks 16] [-steps 60]

#include <cstdio>

#include "common/options.hpp"
#include "mesh/generator.hpp"
#include "mesh/graph.hpp"
#include "mesh/ordering.hpp"
#include "par/distres.hpp"
#include "partition/partition.hpp"
#include "perf/machine.hpp"
#include "resilience/faults.hpp"

namespace {
using namespace f3d;

void print_result(const par::CampaignResult& r, const char* name) {
  std::printf("\n--- %s ---\n%s", name, r.log.to_string().c_str());
  const auto& a = r.sim.aggregate;
  std::printf(
      "steps %d%s | failures %d (spares used %d, shrinks %d) | "
      "retransmits %d\n",
      r.steps_executed, r.completed ? "" : " (ABORTED: state lost)",
      r.rank_failures, r.spares_used, r.shrink_events, a.retransmits);
  std::printf(
      "flux %.2f s | sparse %.2f s | reductions %.2f s | scatter %.2f s | "
      "implicit sync %.2f s | recovery %.2f s\n",
      a.t_flux, a.t_sparse, a.t_reductions, a.t_scatter, a.t_implicit_sync,
      a.t_recovery);
  std::printf(
      "checkpoint %.3f s + rework %.3f s + restore %.3f s | total %.2f s | "
      "availability %.1f %%\n",
      r.t_checkpoint, r.t_rework, r.t_restore, r.total_seconds(),
      100.0 * r.availability());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto seed = opts.get_uint64("seed", 7);
  const int ranks = opts.get_int("ranks", 16);
  const int nsteps = opts.get_int("steps", 60);

  auto mesh = mesh::generate_wing_mesh_with_size(opts.get_int("vertices", 4000));
  mesh::apply_best_ordering(mesh);
  const auto g = mesh::build_graph(mesh.num_vertices(), mesh.edges());
  const auto domain = par::make_domain(g, part::kway_grow(g, ranks));

  std::printf(
      "mesh %d vertices on %d ranks (ASCI Red model) | seed %llu | "
      "%d steps\n",
      mesh.num_vertices(), ranks, static_cast<unsigned long long>(seed),
      nsteps);

  const auto machine = perf::asci_red();
  par::WorkCoefficients work;
  work.sparse_bytes_per_vertex_it = 1200;
  work.sparse_flops_per_vertex_it = 300;
  const std::vector<par::StepCounts> steps(static_cast<std::size_t>(nsteps),
                                           par::StepCounts{});

  // The same deterministic storm for both policies: a rank dies roughly
  // every 20 steps somewhere in the machine, and ~1 in 500 messages
  // arrives corrupted.
  auto make_injector = [&](resilience::FaultInjector& inj) {
    resilience::FaultPlan fail;
    fail.probability = 1.0 / (20.0 * ranks);
    inj.arm(resilience::FaultSite::kRankFail, fail);
    resilience::FaultPlan corrupt;
    corrupt.probability = 1.0 / 500.0;
    inj.arm(resilience::FaultSite::kMessage, corrupt);
  };

  par::CampaignOptions o;
  o.checkpoint_interval = 10;
  o.comm = par::CommReliability{};

  {
    resilience::FaultInjector injector(seed);
    make_injector(injector);
    o.policy = par::RecoveryPolicy::kSpareRank;
    o.spare_ranks = opts.get_int("spares", 4);
    o.injector = &injector;
    print_result(par::simulate_campaign(machine, domain, work, steps, o),
                 "spare-rank substitution");
  }
  {
    resilience::FaultInjector injector(seed);
    make_injector(injector);
    o.policy = par::RecoveryPolicy::kShrinkRepartition;
    o.injector = &injector;
    print_result(par::simulate_campaign(machine, domain, work, steps, o),
                 "shrink-and-repartition");
  }
  return 0;
}
