// Quickstart: solve a subsonic incompressible Euler flow over a wing with
// the psi-NKS solver — the shortest end-to-end use of the library.
//
//   $ quickstart [-vertices 8000] [-cfl0 50] [-rtol 1e-8]
//
// Walks through the canonical pipeline:
//   1. generate an unstructured tetrahedral wing mesh;
//   2. apply the paper's recommended data layout (RCM vertices + sorted
//      edges — Table 1's "all enhancements" row);
//   3. discretize (second-order edge-based finite volume, interlaced
//      fields, block Jacobian);
//   4. solve with pseudo-transient Newton-Krylov-Schwarz;
//   5. report the convergence history and a wall-pressure summary.

#include <cmath>
#include <cstdio>

#include "cfd/problem.hpp"
#include "io/vtk.hpp"
#include "common/options.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "solver/newton.hpp"

int main(int argc, char** argv) {
  using namespace f3d;
  Options opts(argc, argv);

  // 1. Mesh.
  auto mesh = mesh::generate_wing_mesh_with_size(opts.get_int("vertices", 8000));
  std::printf("mesh: %d vertices, %d tets, %d edges, %d boundary faces\n",
              mesh.num_vertices(), mesh.num_tets(), mesh.num_edges(),
              mesh.num_boundary_faces());

  // 2. Layout tuning (the paper's big sequential win).
  mesh::apply_best_ordering(mesh);
  std::printf("applied RCM + sorted-edge ordering; matrix bandwidth = %d\n",
              mesh.bandwidth());

  // 3. Discretization.
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 2;
  cfg.alpha_deg = 2.0;
  cfd::EulerDiscretization disc(mesh, cfg);
  cfd::EulerProblem problem(disc, /*switch_to_second_at=*/0.0);

  // 4. Solve.
  solver::PtcOptions popts;
  popts.cfl0 = opts.get_double("cfl0", 50.0);
  popts.rtol = opts.get_double("rtol", 1e-8);
  popts.max_steps = opts.get_int("max-steps", 60);
  popts.schwarz.fill_level = 1;
  auto x = problem.initial_state();
  auto result = solver::ptc_solve(problem, x, popts);

  std::printf("\n%-6s %-12s %-8s %-10s\n", "step", "residual", "CFL",
              "linear its");
  for (const auto& h : result.history)
    std::printf("%-6d %-12.3e %-8.0f %-10d\n", h.step,
                h.residual / result.initial_residual, h.cfl,
                h.linear_iterations);
  std::printf("\n%s in %d steps (%lld linear iterations, %lld residual "
              "evaluations)\n",
              result.converged ? "CONVERGED" : "NOT converged", result.steps,
              result.total_linear_iterations, result.function_evaluations);

  // The paper: "the CFD application spends almost all of its time in two
  // phases: flux computations ... and sparse linear algebraic kernels."
  std::printf("phase breakdown:");
  for (const auto& [name, sec] : result.phases.buckets())
    std::printf("  %s %.0f%%", name.c_str(),
                100.0 * sec / result.phases.total());
  std::printf("\n");

  // 5. Wall pressure summary: integrate p n over the wall (force vector).
  double force[3] = {0, 0, 0};
  double pmin = 1e30, pmax = -1e30;
  const auto& bfaces = mesh.boundary_faces();
  const auto& dual = disc.dual();
  for (std::size_t f = 0; f < bfaces.size(); ++f) {
    if (bfaces[f].tag != mesh::BoundaryTag::kWall) continue;
    for (int lv = 0; lv < 3; ++lv) {
      const int v = bfaces[f].v[lv];
      const double p = x[static_cast<std::size_t>(v) * 4 + 0];
      pmin = std::min(pmin, p);
      pmax = std::max(pmax, p);
      for (int d = 0; d < 3; ++d)
        force[d] += p * dual.bface_normal[f][d] / 3.0;
    }
  }
  std::printf("wall pressure range: [%.4f, %.4f]\n", pmin, pmax);

  // Optional: write the solution for ParaView (-output flow.vtk).
  if (opts.has("output")) {
    const auto path = opts.get_string("output", "flow.vtk");
    io::write_flow_vtk(path, mesh, disc.config(), x);
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("pressure force on wall: (%.4f, %.4f, %.4f) — the wing bump "
              "generates lift (negative z here: the wall normal points "
              "down)\n",
              force[0], force[1], force[2]);
  return result.converged ? 0 : 1;
}
