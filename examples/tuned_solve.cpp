// tuned_solve: the self-tuning solver entry point — consult the tuning DB
// at startup, fall back to compiled defaults on a miss or a corrupt file,
// optionally run the search to (re)populate the DB, and introspect the
// knob space.
//
//   $ tuned_solve -dump-knobs                  # print the knob catalog JSON
//   $ tuned_solve [-vertices 2500] [-db tune_db.json]
//                                              # solve with DB-tuned config
//   $ tuned_solve -search [-trials 12] [-db tune_db.json]
//                                              # tune, persist, then solve
//
// The -dump-knobs output is the machine-readable catalog
// scripts/check_docs.py cross-checks against docs/TUNING.md, so adding a
// knob without documenting it fails CI.

#include <cstdio>
#include <string>

#include "common/options.hpp"
#include "tune/db.hpp"
#include "tune/lab.hpp"
#include "tune/registry.hpp"
#include "tune/search.hpp"

int main(int argc, char** argv) {
  using namespace f3d;
  Options opts(argc, argv);

  const int vertices = opts.get_int("vertices", 2500);
  tune::SolveLab lab(vertices, /*mesh_seed=*/1);
  tune::Registry& reg = lab.registry();

  if (opts.has("dump-knobs")) {
    std::printf("%s\n", reg.dump_catalog().dump().c_str());
    return 0;
  }

  const std::string db_path = opts.get_string("db", "tune_db.json");
  const tune::DbKey key = lab.db_key();

  if (opts.has("search")) {
    tune::SearchOptions sopts;
    sopts.strategy = tune::Strategy::kHalving;
    sopts.seed = opts.get_uint64("seed", 1);
    sopts.halving_width = opts.get_int("trials", 8);
    auto ev = lab.evaluator();
    auto result = tune::search(reg, tune::SolveLab::default_search_space(),
                               ev, sopts);
    std::printf("search: %d evaluations, %d rejected, improved=%s\n",
                result.evaluations, result.rejected,
                result.improved ? "yes" : "no");
    if (!result.note.empty())
      std::printf("search note: %s\n", result.note.c_str());

    tune::Db db = tune::Db::load(db_path);
    tune::DbEntry entry;
    entry.key = key;
    entry.config = result.best_config;
    entry.score = result.best_score;
    entry.baseline_score = result.baseline_score;
    entry.strategy = tune::strategy_name(sopts.strategy);
    entry.evaluations = result.evaluations;
    db.put(entry);
    if (db.save(db_path))
      std::printf("saved tuned config to %s\n", db_path.c_str());
  } else {
    tune::Db db = tune::Db::load(db_path);
    if (!db.ok())
      std::printf("tuning DB: %s — using compiled defaults\n",
                  db.note().c_str());
    std::string note;
    if (tune::apply(reg, db, key, &note))
      std::printf("tuning DB hit for (%s, %s, %s)\n", key.mesh_class.c_str(),
                  key.host_isa.c_str(), key.precision.c_str());
    else
      std::printf("tuning DB miss (%s) — using compiled defaults\n",
                  note.c_str());
  }

  std::printf("active configuration:\n%s\n", reg.to_json().dump().c_str());

  auto outcome = lab.evaluate(/*fidelity=*/1);
  std::printf("solve: %s  wall=%.3fs  work_units=%lld\n",
              outcome.ok ? "ok (converged, bit-identical rerun)" : "FAILED",
              outcome.wall_seconds, outcome.work_units);
  if (!outcome.note.empty()) std::printf("note: %s\n", outcome.note.c_str());
  return outcome.ok ? 0 : 1;
}
