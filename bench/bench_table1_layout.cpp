// Reproduces Table 1: execution time per pseudo-timestep for the six
// combinations of the three data-layout enhancements — field interlacing,
// structural blocking, edge (+vertex) reordering — for both the
// incompressible (nb=4) and compressible (nb=5) Euler workloads.
//
// The paper timed the whole code on one 250 MHz R10000; we time the same
// composition of kernels one pseudo-timestep executes: two second-order
// residual evaluations (function + matrix-free action), one preconditioner
// refresh (value fill + ILU(0) factorization), and 20 Krylov iterations'
// worth of SpMV + triangular solves. Absolute times are host-specific;
// the paper's claim under reproduction is the *ratio* column (up to 5.7x).
//
// Usage: bench_table1_layout [-vertices 22677] [-its 20] [-reps auto]

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "cfd/euler.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "mesh/ordering.hpp"
#include "sparse/assembly.hpp"
#include "sparse/ilu.hpp"

namespace {

using namespace f3d;

struct Config {
  bool interlace;
  bool blocking;
  bool reorder;
  const char* label;
};

constexpr Config kConfigs[] = {
    {false, false, false, " .    .    . "},
    {true, false, false, " x    .    . "},
    {true, true, false, " x    x    . "},
    {false, false, true, " .    .    x "},
    {true, false, true, " x    .    x "},
    {true, true, true, " x    x    x "},
};

// Paper Table 1 reference values (250 MHz R10000).
constexpr double kPaperIncomp[] = {83.6, 36.1, 29.0, 29.2, 23.4, 16.9};
constexpr double kPaperComp[] = {140.0, 57.5, 43.1, 59.1, 35.7, 24.5};

double time_step(const mesh::UnstructuredMesh& mesh, cfd::Model model,
                 bool interlace, bool blocking, int linear_its, int reps) {
  cfd::FlowConfig cfg;
  cfg.model = model;
  cfg.order = 2;
  cfg.layout = interlace ? sparse::FieldLayout::kInterlaced
                         : sparse::FieldLayout::kNonInterlaced;
  cfd::EulerDiscretization disc(mesh, cfg);
  const int nb = cfg.nb();

  auto q = disc.make_freestream_field();
  std::vector<double> r;

  // Matrix with the Jacobian's sparsity in the matching format/layout;
  // synthetic values keep the fill identical (and stable for ILU) across
  // configurations so only layout effects are timed.
  auto stencil = sparse::stencil_from_mesh(mesh);
  auto values = sparse::synthetic_values(stencil);

  sparse::Bcsr<double> ab;
  sparse::Csr<double> ap;
  sparse::IluPattern pat;
  if (blocking) {
    ab = sparse::build_bcsr(stencil, nb, values);
    pat = sparse::ilu_symbolic(ab, 0);
  } else {
    ap = sparse::build_point_csr(stencil, nb, values, cfg.layout);
    pat = sparse::ilu_symbolic(ap, 0);
  }

  std::vector<double> x(static_cast<std::size_t>(stencil.n) * nb, 1.0);
  std::vector<double> y(x.size());

  double best = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    Timer t;
    // Two residual evaluations per step (function + matrix-free action).
    disc.residual(q, r);
    disc.residual(q, r);
    // Preconditioner refresh (refactorization) + Krylov loop kernels.
    if (blocking) {
      auto f = sparse::ilu_factor_block<double>(ab, pat);
      for (int k = 0; k < linear_its; ++k) {
        ab.spmv(x.data(), y.data());
        f.solve(y.data(), x.data());
      }
    } else {
      auto f = sparse::ilu_factor_point<double>(ap, pat);
      for (int k = 0; k < linear_its; ++k) {
        ap.spmv(x.data(), y.data());
        f.solve(y.data(), x.data());
      }
    }
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 22677);
  const int linear_its = opts.get_int("its", 20);
  const int reps = opts.get_int("reps", 3);

  benchutil::print_header(
      "Table 1 - layout enhancements (interlacing / blocking / reordering)",
      "paper Table 1: 22,677-vertex M6 wing, one R10000; ratios up to 5.7x");

  // Baseline mesh: shuffled vertices, vector-machine (colored) edge order.
  auto base = benchutil::make_shuffled_wing(vertices);
  base.permute_edges(mesh::edge_order_colored(base));
  // Enhanced mesh: RCM vertices + sorted edges.
  auto ordered = benchutil::make_shuffled_wing(vertices);
  mesh::apply_best_ordering(ordered);

  std::printf("mesh: %d vertices, %d edges, %d tets\n", base.num_vertices(),
              base.num_edges(), base.num_tets());
  std::printf("DOFs: incompressible %d, compressible %d\n",
              base.num_vertices() * 4, base.num_vertices() * 5);

  Table table({"Intl", "Blk", "Reord", "Incomp t/step", "Ratio",
               "paper", "Comp t/step", "Ratio", "paper"});
  double inc0 = 0, com0 = 0;
  for (int row = 0; row < 6; ++row) {
    const auto& c = kConfigs[row];
    const auto& mesh = c.reorder ? ordered : base;
    const double ti = time_step(mesh, cfd::Model::kIncompressible,
                                c.interlace, c.blocking, linear_its, reps);
    const double tc = time_step(mesh, cfd::Model::kCompressible, c.interlace,
                                c.blocking, linear_its, reps);
    if (row == 0) {
      inc0 = ti;
      com0 = tc;
    }
    table.add_row({c.interlace ? "x" : ".", c.blocking ? "x" : ".",
                   c.reorder ? "x" : ".", Table::num(ti * 1e3, 1) + "ms",
                   Table::num(inc0 / ti, 2),
                   Table::num(kPaperIncomp[0] / kPaperIncomp[row], 2),
                   Table::num(tc * 1e3, 1) + "ms", Table::num(com0 / tc, 2),
                   Table::num(kPaperComp[0] / kPaperComp[row], 2)});
  }
  table.print();
  std::printf(
      "\nShape check: every enhancement should improve both models, with the\n"
      "full combination the fastest (paper: 4.96x incompressible, 5.71x\n"
      "compressible on the R10000; modern hosts have larger caches and\n"
      "relatively faster memory, so smaller but same-ordered ratios are\n"
      "expected at this mesh size).\n");
  return 0;
}
