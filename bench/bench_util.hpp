#pragma once
// Shared infrastructure for the per-table/per-figure benchmark harnesses:
// standard meshes, work-coefficient calibration from the real kernels,
// real psi-NKS probes (measured iteration counts), and the iteration-growth
// fit that extrapolates measured algorithmic behaviour to the paper's
// 2.8M-vertex scale.

#include <string>
#include <utility>
#include <vector>

#include "cfd/euler.hpp"
#include "mesh/generator.hpp"
#include "obs/json.hpp"
#include "par/loadmodel.hpp"
#include "par/stepmodel.hpp"
#include "partition/partition.hpp"
#include "solver/newton.hpp"

namespace f3d::benchutil {

/// Paper-style experiment header.
void print_header(const std::string& experiment, const std::string& paper_ref);

/// Wing mesh in "as-delivered" (shuffled) order.
mesh::UnstructuredMesh make_shuffled_wing(int target_vertices,
                                          unsigned seed = 1);

/// Same mesh with the paper's best layout (RCM + sorted edges).
mesh::UnstructuredMesh make_ordered_wing(int target_vertices,
                                         unsigned seed = 1);

/// Work coefficients for the virtual machine, calibrated from the actual
/// discretization and preconditioner sizes on the given mesh.
par::WorkCoefficients calibrate_work(const cfd::EulerDiscretization& disc,
                                     int ilu_fill, bool single_precision);

/// Result of a short real psi-NKS run with P subdomains.
struct NksProbe {
  int subdomains = 0;
  double linear_its_per_step = 0;
  double flux_evals_per_step = 0;
  long long total_linear_its = 0;
  int steps = 0;
  double wall_seconds = 0;
  bool converged = false;
};

enum class Partitioner { kKway, kBalanceFirst, kMultilevel };

/// Run `steps` pseudo-timesteps of the incompressible wing problem with
/// the given Schwarz configuration on `subdomains` subdomains; measure the
/// real iteration counts (the eta_alg ingredient of Tables 3-4 / Fig 4).
NksProbe probe_nks(const mesh::UnstructuredMesh& mesh, int subdomains,
                   const solver::SchwarzOptions& schwarz, int steps,
                   Partitioner partitioner = Partitioner::kKway,
                   double rtol = 1e-10);

/// Fit its(P) = its_base * (P / P_base)^alpha by least squares in log
/// space; returns alpha. Input: (procs, its) pairs.
double fit_iteration_growth(
    const std::vector<std::pair<int, double>>& its_by_procs);

/// Surface law measured from real partitions of the given mesh across a
/// range of subdomain counts.
par::SurfaceLaw measure_surface_law(const mesh::UnstructuredMesh& mesh,
                                    const std::vector<int>& part_counts,
                                    Partitioner partitioner = Partitioner::kKway);

/// JSON value for the machine-readable BENCH_*.json artifacts. Now the
/// observability layer's value type (objects keep insertion order;
/// doubles print with %.17g so round-trips are exact).
using Json = obs::Json;

/// Serialize `v` to `path` (pretty-printed, trailing newline), wrapped in
/// the unified f3d-bench-v1 envelope {"meta": {...}, "series": v} unless
/// `v` already carries one. The experiment name is derived from the file
/// name ("BENCH_threading.json" -> "threading"). Throws f3d::Error if the
/// file cannot be written.
void write_json(const std::string& path, const Json& v);

}  // namespace f3d::benchutil
