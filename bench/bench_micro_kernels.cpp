// Micro-benchmarks (google-benchmark) for the kernels the paper's
// analysis rests on: SpMV in all four format/layout combinations, ILU
// factorization and triangular solves in both storage precisions, the
// flux kernel under the three edge orderings, STREAM, and two ablations
// of internal design decisions (GMRES orthogonalization variant, and the
// zero-overhead claim of the tracer policy design).

#include <benchmark/benchmark.h>

#include "cfd/euler.hpp"
#include "common/rng.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "perf/stream.hpp"
#include "simcache/traced_kernels.hpp"
#include "solver/gmres.hpp"
#include "sparse/assembly.hpp"
#include "sparse/ilu.hpp"

namespace {

using namespace f3d;

constexpr int kVertices = 12000;

struct MatrixFixture {
  mesh::UnstructuredMesh mesh;
  sparse::Stencil stencil;
  sparse::Bcsr<double> bcsr;
  sparse::Csr<double> csr_interlaced;
  sparse::Csr<double> csr_noninterlaced;
  std::vector<double> x, y;

  explicit MatrixFixture(int nb) {
    mesh = mesh::generate_wing_mesh_with_size(kVertices);
    mesh::shuffle_mesh(mesh, 1);
    mesh::apply_best_ordering(mesh);
    stencil = sparse::stencil_from_mesh(mesh);
    auto fn = sparse::synthetic_values(stencil);
    bcsr = sparse::build_bcsr(stencil, nb, fn);
    csr_interlaced =
        sparse::build_point_csr(stencil, nb, fn, sparse::FieldLayout::kInterlaced);
    csr_noninterlaced = sparse::build_point_csr(
        stencil, nb, fn, sparse::FieldLayout::kNonInterlaced);
    x.assign(static_cast<std::size_t>(stencil.n) * nb, 1.0);
    y.resize(x.size());
  }
};

MatrixFixture& fixture4() {
  static MatrixFixture f(4);
  return f;
}

void BM_SpmvPointNonInterlaced(benchmark::State& state) {
  auto& f = fixture4();
  for (auto _ : state) {
    f.csr_noninterlaced.spmv(f.x.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.csr_noninterlaced.nnz()) * 2);
}
BENCHMARK(BM_SpmvPointNonInterlaced);

void BM_SpmvPointInterlaced(benchmark::State& state) {
  auto& f = fixture4();
  for (auto _ : state) {
    f.csr_interlaced.spmv(f.x.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.csr_interlaced.nnz()) * 2);
}
BENCHMARK(BM_SpmvPointInterlaced);

void BM_SpmvBlocked(benchmark::State& state) {
  auto& f = fixture4();
  for (auto _ : state) {
    f.bcsr.spmv(f.x.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.bcsr.nblocks()) * 16 * 2);
}
BENCHMARK(BM_SpmvBlocked);

void BM_SpmvBlockedFloat(benchmark::State& state) {
  auto& f = fixture4();
  static auto bf = f.bcsr.convert<float>();
  for (auto _ : state) {
    bf.spmv(f.x.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
}
BENCHMARK(BM_SpmvBlockedFloat);

void BM_IluFactorBlock(benchmark::State& state) {
  auto& f = fixture4();
  const int level = static_cast<int>(state.range(0));
  auto pat = sparse::ilu_symbolic(f.bcsr, level);
  for (auto _ : state) {
    auto fac = sparse::ilu_factor_block<double>(f.bcsr, pat);
    benchmark::DoNotOptimize(fac.val.data());
  }
}
BENCHMARK(BM_IluFactorBlock)->Arg(0)->Arg(1)->Arg(2);

void BM_TriSolveBlockDouble(benchmark::State& state) {
  auto& f = fixture4();
  static auto fac =
      sparse::ilu_factor_block<double>(f.bcsr, sparse::ilu_symbolic(f.bcsr, 1));
  for (auto _ : state) {
    fac.solve(f.x.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
}
BENCHMARK(BM_TriSolveBlockDouble);

void BM_TriSolveBlockFloat(benchmark::State& state) {
  auto& f = fixture4();
  static auto fac =
      sparse::ilu_factor_block<float>(f.bcsr, sparse::ilu_symbolic(f.bcsr, 1));
  for (auto _ : state) {
    fac.solve(f.x.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
}
BENCHMARK(BM_TriSolveBlockFloat);

// --- flux kernel by edge ordering ---------------------------------------

void flux_bench(benchmark::State& state, int ordering) {
  auto mesh = mesh::generate_wing_mesh_with_size(kVertices);
  mesh::shuffle_mesh(mesh, 1);
  switch (ordering) {
    case 0:  // colored (vector-machine) order on shuffled vertices
      mesh.permute_edges(mesh::edge_order_colored(mesh));
      break;
    case 1:  // random
      mesh.permute_edges(mesh::edge_order_random(mesh, 2));
      break;
    case 2:  // RCM + sorted (the paper's layout)
      mesh::apply_best_ordering(mesh);
      break;
    default:
      break;
  }
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(mesh, cfg);
  auto q = disc.make_freestream_field();
  std::vector<double> r;
  for (auto _ : state) {
    disc.residual(q, r);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * mesh.num_edges());
}

void BM_FluxColoredEdges(benchmark::State& state) { flux_bench(state, 0); }
BENCHMARK(BM_FluxColoredEdges);
void BM_FluxRandomEdges(benchmark::State& state) { flux_bench(state, 1); }
BENCHMARK(BM_FluxRandomEdges);
void BM_FluxSortedEdgesRcm(benchmark::State& state) { flux_bench(state, 2); }
BENCHMARK(BM_FluxSortedEdgesRcm);

// --- STREAM ---------------------------------------------------------------

void BM_StreamTriad(benchmark::State& state) {
  const std::size_t n = 4 * 1000 * 1000;
  std::vector<double> a(n, 1), b(n, 2), c(n, 3);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + 3.0 * c[i];
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(n) * 24);
}
BENCHMARK(BM_StreamTriad);

// --- ablation: GMRES orthogonalization variant ----------------------------

void gmres_bench(benchmark::State& state, solver::Orthogonalization orth) {
  auto& f = fixture4();
  solver::LinearOperator op;
  op.n = f.bcsr.scalar_n();
  op.apply = [&](const double* x, double* y) { f.bcsr.spmv(x, y); };
  solver::IdentityPreconditioner prec(op.n);
  std::vector<double> b(op.n, 1.0);
  solver::GmresOptions o;
  o.rtol = 1e-8;
  o.max_iters = 60;
  o.restart = 30;
  o.orth = orth;
  for (auto _ : state) {
    std::vector<double> x(op.n, 0.0);
    auto res = solver::gmres(op, prec, b, x, o);
    benchmark::DoNotOptimize(res.iterations);
  }
}

void BM_GmresModifiedGs(benchmark::State& state) {
  gmres_bench(state, solver::Orthogonalization::kModifiedGramSchmidt);
}
BENCHMARK(BM_GmresModifiedGs);
void BM_GmresClassicalGs(benchmark::State& state) {
  gmres_bench(state, solver::Orthogonalization::kClassicalGramSchmidt);
}
BENCHMARK(BM_GmresClassicalGs);

// --- ablation: tracer policy has zero overhead when null -------------------

void BM_SpmvProduction(benchmark::State& state) {
  auto& f = fixture4();
  for (auto _ : state) {
    f.csr_interlaced.spmv(f.x.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
}
BENCHMARK(BM_SpmvProduction);

void BM_SpmvNullTraced(benchmark::State& state) {
  auto& f = fixture4();
  simcache::NullTracer nt;
  for (auto _ : state) {
    simcache::traced_spmv_csr(f.csr_interlaced, f.x.data(), f.y.data(), nt);
    benchmark::DoNotOptimize(f.y.data());
  }
}
BENCHMARK(BM_SpmvNullTraced);

}  // namespace

BENCHMARK_MAIN();
