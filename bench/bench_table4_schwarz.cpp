// Reproduces Table 4: effect of subdomain overlap (0/1/2) and ILU fill
// level (0/1/2) in the additive Schwarz preconditioner, for three
// processor counts. The paper used the 357,900-vertex case on ASCI Red
// with GMRES(20); subdomain counts here are scaled so vertices-per-
// subdomain match the paper's (357,900 / {128,256,512} = 2796/1398/699).
//
// The iteration counts are REAL: full psi-NKS runs with RASM(overlap) +
// ILU(fill) on actual partitions, a fixed number of pseudo-steps each.
// The execution times combine the real per-iteration kernel costs with
// the ASCI Red virtual-machine model (overlap enlarges the local
// factor/solve work and adds setup communication, which is what turns
// "fewer iterations" into "more seconds" — the paper's punchline).
//
// Usage: bench_table4_schwarz [-vertices 22677] [-steps 6]

#include <cstdio>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "mesh/graph.hpp"
#include "par/stepmodel.hpp"
#include "perf/machine.hpp"

namespace {
using namespace f3d;

// Paper Table 4 (time, linear its) indexed [fill][procs][overlap].
struct PaperCell {
  const char* time;
  int its;
};
const PaperCell kPaper[3][3][3] = {
    // ILU(0)
    {{{"688s", 930}, {"661s", 816}, {"696s", 813}},
     {{"371s", 993}, {"374s", 876}, {"418s", 887}},
     {{"210s", 1052}, {"230s", 988}, {"222s", 872}}},
    // ILU(1)
    {{{"598s", 674}, {"564s", 549}, {"617s", 532}},
     {{"334s", 746}, {"335s", 617}, {"359s", 551}},
     {{"177s", 807}, {"178s", 630}, {"200s", 555}}},
    // ILU(2)
    {{{"688s", 527}, {"786s", 441}, {"-", 0}},
     {{"386s", 608}, {"441s", 488}, {"531s", 448}},
     {{"193s", 631}, {"272s", 540}, {"313s", 472}}},
};

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 16000);
  const int steps = opts.get_int("steps", 6);

  benchutil::print_header(
      "Table 4 - Schwarz overlap x ILU fill level",
      "paper Table 4: 357,900-vertex case, ASCI Red, GMRES(20); more "
      "overlap/fill cuts iterations but raises per-iteration cost; "
      "ILU(1), overlap 0 wins at scale");

  auto mesh = benchutil::make_ordered_wing(vertices);
  const int nv = mesh.num_vertices();
  // Scale processor counts to preserve the paper's vertices/subdomain.
  const int paper_vpp[] = {357900 / 128, 357900 / 256, 357900 / 512};
  int procs[3];
  for (int i = 0; i < 3; ++i)
    procs[i] = std::max(2, (nv + paper_vpp[i] / 2) / paper_vpp[i]);
  std::printf("mesh: %d vertices; subdomain counts %d/%d/%d "
              "(matching the paper's %d/%d/%d vertices per subdomain)\n",
              nv, procs[0], procs[1], procs[2], paper_vpp[0], paper_vpp[1],
              paper_vpp[2]);
  std::printf("each cell: %d pseudo-steps of a real psi-NKS run\n\n", steps);

  auto law = benchutil::measure_surface_law(mesh, {4, 8, 16});
  auto machine = perf::asci_red();

  for (int fill = 0; fill <= 2; ++fill) {
    std::printf("ILU(%d) in each subdomain:\n", fill);
    Table table({"Procs(scaled)", "ov0 time/its", "ov1 time/its",
                 "ov2 time/its", "paper(ov0)", "paper(ov1)", "paper(ov2)"});
    for (int pi = 0; pi < 3; ++pi) {
      std::vector<std::string> row;
      const int paper_procs[] = {128, 256, 512};
      row.push_back(std::to_string(procs[pi]) + " (~" +
                    std::to_string(paper_procs[pi]) + ")");
      for (int overlap = 0; overlap <= 2; ++overlap) {
        solver::SchwarzOptions so;
        so.type = overlap == 0 ? solver::SchwarzType::kBlockJacobi
                               : solver::SchwarzType::kRasm;
        so.overlap = overlap;
        so.fill_level = fill;
        auto probe = benchutil::probe_nks(mesh, procs[pi], so, steps);

        // Model the per-step time on virtual ASCI Red at the paper's
        // processor count and problem size, with overlap inflating the
        // subdomain solve volume the way it did in the real run.
        auto g = mesh::build_graph(mesh.num_vertices(), mesh.edges());
        auto partition = part::kway_grow(g, procs[pi]);
        auto regions = part::overlap_expand(g, partition, overlap);
        double expanded = 0;
        for (const auto& reg : regions) expanded += static_cast<double>(reg.size());
        const double overlap_factor = expanded / nv;

        cfd::FlowConfig cfg;
        cfg.model = cfd::Model::kIncompressible;
        cfd::EulerDiscretization disc(mesh, cfg);
        auto work = benchutil::calibrate_work(disc, fill, false);
        work.sparse_bytes_per_vertex_it *= overlap_factor;
        work.sparse_flops_per_vertex_it *= overlap_factor;

        par::StepCounts counts;
        counts.linear_its = probe.linear_its_per_step;
        counts.flux_evals = probe.flux_evals_per_step;
        // Standard ASM needs two communication phases per apply, RASM one.
        counts.scatters_per_linear_it =
            so.type == solver::SchwarzType::kAsm ? 3.0 : 2.0;

        auto load = par::synthesize_load(357900, paper_procs[pi], law);
        auto brk = par::model_step(machine, load, work, counts);
        // A fixed 40-pseudo-step run, so cells compare by (per-step cost x
        // measured iterations/step) exactly like the paper's fixed solves.
        const double total_time = brk.total() * 40;
        row.push_back(Table::num(total_time, 0) + "s/" +
                      std::to_string(probe.total_linear_its));
      }
      for (int overlap = 0; overlap <= 2; ++overlap) {
        const auto& c = kPaper[fill][pi][overlap];
        row.push_back(c.its > 0 ? std::string(c.time) + "/" +
                                      std::to_string(c.its)
                                : "-");
      }
      table.add_row(row);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Shape check (paper): iterations fall with overlap and fill; time\n"
      "rises with overlap at the larger processor counts; best overall\n"
      "cells sit at ILU(1) with zero overlap.\n");
  return 0;
}
