// Ablation of the coarse-grid (two-level) Schwarz extension — the step
// the paper identifies as required for asymptotic scalability but omits
// ("the nonlinear stiffness ... requires a timestepping globalization"
// whose diagonal shift keeps one-level conditioning acceptable).
//
// Two regimes, both real GMRES runs:
//  1. elliptic regime (small pseudo-time shift; a graph Laplacian): the
//     theory's case — one-level iterations grow with P, two-level stay flat;
//  2. psi-NKS regime (the Euler Jacobian with a CFL-sized shift): the
//     paper's case — the shift keeps growth mild, so the coarse grid buys
//     little, matching the paper's decision to skip it.
//
// Usage: bench_ablation_coarse [-vertices 8000]

#include <cstdio>

#include "bench_util.hpp"
#include "cfd/euler.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "mesh/graph.hpp"
#include "solver/coarse.hpp"
#include "solver/gmres.hpp"
#include "sparse/assembly.hpp"

namespace {

using namespace f3d;

int gmres_its(const sparse::Bcsr<double>& a, const solver::Preconditioner& m) {
  solver::LinearOperator op;
  op.n = a.scalar_n();
  op.apply = [&](const double* x, double* y) { a.spmv(x, y); };
  std::vector<double> b(op.n, 1.0), x(op.n, 0.0);
  solver::GmresOptions o;
  o.rtol = 1e-8;
  o.max_iters = 500;
  o.restart = 40;
  return solver::gmres(op, m, b, x, o).iterations;
}

void sweep(const sparse::Bcsr<double>& a, const mesh::Graph& g,
           const char* title) {
  std::printf("\n%s:\n", title);
  Table t({"Subdomains", "one-level its", "two-level its", "coarse dim"});
  solver::SchwarzOptions so;
  so.type = solver::SchwarzType::kBlockJacobi;
  so.fill_level = 0;
  for (int np : {4, 8, 16, 32, 64}) {
    auto p = part::kway_grow(g, np);
    solver::SchwarzPreconditioner one(a, p, so);
    solver::TwoLevelSchwarzPreconditioner two(a, p, so);
    t.add_row({Table::num(static_cast<long long>(np)),
               Table::num(static_cast<long long>(gmres_its(a, one))),
               Table::num(static_cast<long long>(gmres_its(a, two))),
               Table::num(static_cast<long long>(two.coarse_dim()))});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 8000);
  auto mesh = benchutil::make_ordered_wing(vertices);
  auto g = mesh::build_graph(mesh.num_vertices(), mesh.edges());
  auto stencil = sparse::stencil_from_mesh(mesh);
  std::printf("mesh: %d vertices\n", mesh.num_vertices());

  benchutil::print_header(
      "Ablation - coarse-grid (two-level) Schwarz",
      "paper 1.1/2.4.3: coarse grid needed for asymptotic scalability, "
      "unnecessary at psi-NKS's diagonally shifted regime");

  // Regime 1: elliptic (graph Laplacian with a weak shift).
  {
    std::vector<int> degree(stencil.n);
    for (int i = 0; i < stencil.n; ++i)
      degree[i] = stencil.ptr[i + 1] - stencil.ptr[i] - 1;
    auto fn = [&](int vi, int vj, int nb, double* block) {
      for (int a = 0; a < nb; ++a)
        for (int b = 0; b < nb; ++b)
          block[a * nb + b] =
              (a == b) ? (vi == vj ? degree[vi] + 0.05 : -1.0) : 0.0;
    };
    auto a = sparse::build_bcsr(stencil, 4, fn);
    sweep(a, g, "elliptic regime (weakly shifted Laplacian)");
  }

  // Regime 2: the Euler Jacobian with a CFL = 10 pseudo-time shift.
  {
    cfd::FlowConfig cfg;
    cfg.model = cfd::Model::kIncompressible;
    cfg.order = 1;
    cfd::EulerDiscretization disc(mesh, cfg);
    auto q = disc.make_freestream_field();
    auto jac = disc.allocate_jacobian();
    disc.jacobian(q, jac);
    std::vector<double> sr;
    disc.spectral_radius(q, sr);
    for (int v = 0; v < mesh.num_vertices(); ++v) {
      double* blk = jac.find_block(v, v);
      for (int c = 0; c < 4; ++c) blk[c * 4 + c] += sr[v] / 10.0;
    }
    sweep(jac, g, "psi-NKS regime (Euler Jacobian, CFL 10 shift)");
  }

  std::printf(
      "\nShape check: in the elliptic regime one-level iterations climb\n"
      "steeply with the subdomain count while two-level stays nearly flat;\n"
      "in the shifted psi-NKS regime both stay moderate — exactly why the\n"
      "paper could skip the coarse grid.\n");
  return 0;
}
