// Run-to-completion guarantees under deadline pressure: the f3d::guard
// oracle campaign.
//
// Three lanes over real psi-NKS solves on a wing mesh:
//
//   on-time   budget x scenario-hardness x policy sweep. Each scenario is
//             first calibrated unbounded (its clean cost U in guard work
//             units), then re-run under budgets that are fractions of U,
//             with the graceful-degradation ladder off (baseline) and on.
//             A run is ON TIME when it converges to the scenario's outer
//             tolerance within the budget; the ladder trades linear-solve
//             accuracy and Jacobian freshness for exactly that.
//   watchdog  the livelock detector must stay silent on every clean
//             converging scenario (zero false positives — it is wall-
//             clock-free and deterministic by design) and must fire on
//             the stall scenario (an unreachable tolerance that plateaus
//             at the residual floor).
//   cancel    cooperative cancellation armed mid-solve at deterministic
//             work units, swept over 1/2/4 pool threads. Measured p99
//             latency (work units charged after the trip) must stay
//             under guard::cancel_latency_bound_units, and the returned
//             best-committed state must hash bit-identically at every
//             thread count.
//
// Writes BENCH_deadline.json (f3d-bench-v1 envelope; gated by
// scripts/check_docs.py). Exit status enforces the same gates.
//
// Usage: bench_deadline [-vertices 400] [-out BENCH_deadline.json]

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cfd/problem.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "exec/pool.hpp"
#include "guard/guard.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "solver/newton.hpp"

namespace {

using namespace f3d;

struct Scenario {
  const char* name;
  double cfl0;
  double rtol;
  int max_steps;
};

// Hardness = how far the continuation has to carry the solve: a timid
// initial CFL means many more pseudo-timesteps (and work units) to the
// same tolerance.
const std::vector<Scenario> kScenarios = {
    {"easy", 8.0, 1e-8, 100},
    {"medium", 2.5, 1e-8, 150},
    {"hard", 1.0, 1e-9, 250},
};

// Aggressive degradation policy: rungs fire early enough to leave the
// cheapened tail room to converge before the budget trips.
solver::PtcDegradeOptions bench_ladder() {
  solver::PtcDegradeOptions d;
  d.enabled = true;
  d.loosen_at = 0.35;
  d.freeze_at = 0.55;
  d.shrink_at = 0.75;
  return d;
}

struct Rig {
  mesh::UnstructuredMesh mesh;

  explicit Rig(int vertices)
      : mesh(mesh::generate_wing_mesh_with_size(vertices)) {
    mesh::apply_best_ordering(mesh);
  }

  solver::PtcResult run(const Scenario& sc, const solver::PtcGuardOptions& g,
                        std::vector<double>* x_out = nullptr) const {
    cfd::FlowConfig cfg;
    cfg.model = cfd::Model::kIncompressible;
    cfg.order = 1;
    cfd::EulerDiscretization disc(mesh, cfg);
    cfd::EulerProblem prob(disc, -1.0);
    auto x = prob.initial_state();
    solver::PtcOptions o;
    o.cfl0 = sc.cfl0;
    o.rtol = sc.rtol;
    o.max_steps = sc.max_steps;
    o.num_subdomains = 2;
    o.schwarz.fill_level = 1;
    o.guard = g;
    auto res = solver::ptc_solve(prob, x, o);
    if (x_out != nullptr) *x_out = x;
    return res;
  }
};

std::uint64_t fnv1a(const std::vector<double>& x) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* p = reinterpret_cast<const unsigned char*>(x.data());
  for (std::size_t i = 0; i < x.size() * sizeof(double); ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct SweepCell {
  std::string scenario;
  double budget_frac = 0;
  bool ladder = false;
  guard::SolveVerdict verdict = guard::SolveVerdict::kMaxIters;
  bool on_time = false;
  long long budget_units = 0;
  long long work_units = 0;
  double drop_orders = 0;
  int degrade_rungs = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 400);
  const std::string out_path = opts.get_string("out", "BENCH_deadline.json");

  benchutil::print_header(
      "Run-to-completion guarantees - budgets, cancellation, degradation",
      "on-time = converged within the work budget; ladder trades linear "
      "accuracy + Jacobian freshness for on-time completion");

  Rig rig(vertices);
  std::printf("mesh: %d vertices\n\n", rig.mesh.num_vertices());

  // --- calibration: clean unbounded cost per scenario ----------------------
  struct Calibration {
    long long units = 0;
    int steps = 0;
    double drop_orders = 0;
  };
  std::vector<Calibration> cal;
  for (const auto& sc : kScenarios) {
    const auto res = rig.run(sc, {});
    if (res.verdict != guard::SolveVerdict::kConverged) {
      std::printf("FATAL: clean scenario '%s' did not converge (%s)\n",
                  sc.name, guard::verdict_name(res.verdict));
      return 1;
    }
    cal.push_back({res.work_units, res.steps, res.residual_drop_orders});
    std::printf("calibrate %-6s  %5d steps  %8lld units  %.1f orders\n",
                sc.name, res.steps, res.work_units, res.residual_drop_orders);
  }

  // --- lane 1: budget x hardness x policy ----------------------------------
  const std::vector<double> budget_fracs = {0.9, 1.0, 1.1};
  std::vector<SweepCell> cells;
  int ladder_on_time = 0, ladder_runs = 0;
  int none_on_time = 0, none_runs = 0;
  for (std::size_t s = 0; s < kScenarios.size(); ++s) {
    for (double frac : budget_fracs) {
      for (bool ladder : {false, true}) {
        SweepCell cell;
        cell.scenario = kScenarios[s].name;
        cell.budget_frac = frac;
        cell.ladder = ladder;
        cell.budget_units =
            static_cast<long long>(frac * static_cast<double>(cal[s].units));
        solver::PtcGuardOptions g;
        g.budget.max_work_units = cell.budget_units;
        if (ladder) g.degrade = bench_ladder();
        const auto res = rig.run(kScenarios[s], g);
        cell.verdict = res.verdict;
        cell.on_time = res.verdict == guard::SolveVerdict::kConverged;
        cell.work_units = res.work_units;
        cell.drop_orders = res.residual_drop_orders;
        cell.degrade_rungs = res.degrade_rungs;
        if (ladder) {
          ++ladder_runs;
          ladder_on_time += cell.on_time ? 1 : 0;
        } else {
          ++none_runs;
          none_on_time += cell.on_time ? 1 : 0;
        }
        cells.push_back(cell);
      }
    }
  }
  const double rate_ladder =
      static_cast<double>(ladder_on_time) / static_cast<double>(ladder_runs);
  const double rate_none =
      static_cast<double>(none_on_time) / static_cast<double>(none_runs);

  Table tab({"scenario", "budget", "ladder", "verdict", "on-time", "units",
             "budget units", "orders", "rungs"});
  for (const auto& c : cells)
    tab.add_row({c.scenario, Table::num(c.budget_frac, 2),
                 c.ladder ? "on" : "off", guard::verdict_name(c.verdict),
                 c.on_time ? "yes" : "NO", std::to_string(c.work_units),
                 std::to_string(c.budget_units), Table::num(c.drop_orders, 1),
                 std::to_string(c.degrade_rungs)});
  tab.print();
  std::printf("\non-time rate: ladder %.0f %%, baseline %.0f %%\n",
              100.0 * rate_ladder, 100.0 * rate_none);

  // --- lane 2: watchdog false positives + stall detection ------------------
  int clean_runs = 0, watchdog_false_positives = 0;
  for (const auto& sc : kScenarios) {
    solver::PtcGuardOptions g;
    g.watchdog.enabled = true;
    g.watchdog.window = 10;
    g.watchdog.stall_ratio = 0.9;
    const auto res = rig.run(sc, g);
    ++clean_runs;
    if (res.watchdog_fired) ++watchdog_false_positives;
  }
  Scenario stall{"stall", 20.0, 1e-300, 80};  // unreachable tolerance
  bool stall_detected;
  {
    solver::PtcGuardOptions g;
    g.watchdog.enabled = true;
    g.watchdog.window = 10;
    g.watchdog.stall_ratio = 0.9;
    const auto res = rig.run(stall, g);
    stall_detected = res.watchdog_fired &&
                     res.verdict == guard::SolveVerdict::kStagnated;
  }
  std::printf("watchdog: %d clean runs, %d false positives; stall %s\n",
              clean_runs, watchdog_false_positives,
              stall_detected ? "detected" : "MISSED");

  // --- lane 3: cancellation latency at 1/2/4 threads -----------------------
  const std::vector<double> arm_fracs = {0.25, 0.5, 0.75};
  struct LatencyRow {
    int threads = 0;
    long long p99 = 0;
    long long worst = 0;
    int samples = 0;
  };
  std::vector<LatencyRow> latency;
  bool hashes_consistent = true;
  long long bound = 0;
  std::vector<std::uint64_t> ref_hashes;  // per (scenario, arm), at 1 thread
  for (int nt : {1, 2, 4}) {
    exec::ThreadScope threads(nt);
    LatencyRow row;
    row.threads = nt;
    std::vector<long long> samples;
    std::size_t cell_idx = 0;
    for (std::size_t s = 0; s < kScenarios.size(); ++s) {
      for (double frac : arm_fracs) {
        guard::CancelToken tok;
        tok.cancel_at_work(static_cast<long long>(
            frac * static_cast<double>(cal[s].units)));
        solver::PtcGuardOptions g;
        g.budget.cancel = &tok;
        bound = guard::cancel_latency_bound_units(g.budget);
        std::vector<double> x;
        const auto res = rig.run(kScenarios[s], g, &x);
        if (res.verdict != guard::SolveVerdict::kCancelled) {
          std::printf("FATAL: cancel arm not honored (%s, frac %.2f)\n",
                      kScenarios[s].name, frac);
          return 1;
        }
        samples.push_back(res.cancel_latency_units);
        const std::uint64_t h = fnv1a(x);
        if (nt == 1) {
          ref_hashes.push_back(h);
        } else if (h != ref_hashes[cell_idx]) {
          hashes_consistent = false;
        }
        ++cell_idx;
      }
    }
    std::sort(samples.begin(), samples.end());
    row.samples = static_cast<int>(samples.size());
    row.worst = samples.back();
    row.p99 = samples[static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(samples.size())) - 1)];
    latency.push_back(row);
    std::printf("cancel @ %d thread(s): %d samples, p99 latency %lld / "
                "bound %lld units, worst %lld\n",
                nt, row.samples, row.p99, bound, row.worst);
  }
  std::printf("cancelled states bit-identical across thread counts: %s\n",
              hashes_consistent ? "yes" : "NO");

  // --- gates ---------------------------------------------------------------
  const bool ok_on_time = rate_ladder >= 0.95;
  const bool ok_watchdog = watchdog_false_positives == 0 && stall_detected;
  bool ok_latency = true;
  for (const auto& row : latency) ok_latency &= row.p99 <= bound;
  ok_latency &= hashes_consistent;
  std::printf(
      "\ngates: on-time(ladder) %.0f %% %s | watchdog fp %d + stall %s %s | "
      "cancel p99 <= %lld and thread-invariant %s\n",
      100.0 * rate_ladder, ok_on_time ? "(>= 95% - OK)" : "(FAIL)",
      watchdog_false_positives, stall_detected ? "detected" : "missed",
      ok_watchdog ? "(OK)" : "(FAIL)", bound, ok_latency ? "(OK)" : "(FAIL)");

  // --- report --------------------------------------------------------------
  benchutil::Json sweep = benchutil::Json::array();
  for (const auto& c : cells)
    sweep.push(benchutil::Json::object()
                   .set("scenario", benchutil::Json(c.scenario))
                   .set("budget_frac", benchutil::Json(c.budget_frac))
                   .set("ladder", benchutil::Json(c.ladder))
                   .set("verdict", benchutil::Json(std::string(
                                       guard::verdict_name(c.verdict))))
                   .set("on_time", benchutil::Json(c.on_time))
                   .set("budget_units", benchutil::Json(c.budget_units))
                   .set("work_units", benchutil::Json(c.work_units))
                   .set("residual_drop_orders", benchutil::Json(c.drop_orders))
                   .set("degrade_rungs", benchutil::Json(
                                             static_cast<long long>(
                                                 c.degrade_rungs))));

  benchutil::Json lat = benchutil::Json::array();
  for (const auto& row : latency)
    lat.push(benchutil::Json::object()
                 .set("threads", benchutil::Json(
                                     static_cast<long long>(row.threads)))
                 .set("samples", benchutil::Json(
                                     static_cast<long long>(row.samples)))
                 .set("p99_latency_units", benchutil::Json(row.p99))
                 .set("worst_latency_units", benchutil::Json(row.worst))
                 .set("bound_units", benchutil::Json(bound)));

  benchutil::Json series =
      benchutil::Json::object()
          .set("vertices", benchutil::Json(
                               static_cast<long long>(rig.mesh.num_vertices())))
          .set("sweep", std::move(sweep))
          .set("on_time_rate_ladder", benchutil::Json(rate_ladder))
          .set("on_time_rate_none", benchutil::Json(rate_none))
          .set("clean_runs", benchutil::Json(
                                 static_cast<long long>(clean_runs)))
          .set("watchdog_false_positives",
               benchutil::Json(static_cast<long long>(watchdog_false_positives)))
          .set("stall_detected", benchutil::Json(stall_detected))
          .set("cancel_latency", std::move(lat))
          .set("cancel_latency_bound_units", benchutil::Json(bound))
          .set("cancel_states_thread_invariant",
               benchutil::Json(hashes_consistent));
  benchutil::write_json(out_path, series);
  std::printf("wrote %s\n", out_path.c_str());

  return ok_on_time && ok_watchdog && ok_latency ? 0 : 1;
}
