// Ablation of the psi-NKS algorithmic parameters the paper's §2.4 lists
// as the tuning surface: Krylov restart dimension, inner convergence
// tolerance, Jacobian/preconditioner refresh frequency, and the SER
// exponent p. All runs are REAL solves of the incompressible wing flow;
// for each knob the sweep reports steps/iterations/residual-evals/time so
// the §2.4 guidance can be checked ("loose constant tolerance is enough",
// "restart 10-30", "p up to 1.5 for smooth flows").
//
// Usage: bench_ablation_params [-vertices 6000]

#include <cstdio>

#include "bench_util.hpp"
#include "cfd/problem.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "solver/newton.hpp"

namespace {

using namespace f3d;

struct RunResult {
  int steps;
  long long its;
  long long fevals;
  double seconds;
  bool converged;
};

RunResult run(const mesh::UnstructuredMesh& mesh,
              const solver::PtcOptions& popts) {
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(mesh, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  Timer t;
  auto res = solver::ptc_solve(prob, x, popts);
  return {res.steps, res.total_linear_iterations, res.function_evaluations,
          t.seconds(), res.converged};
}

std::vector<std::string> row_of(const std::string& label, const RunResult& r) {
  return {label,
          Table::num(static_cast<long long>(r.steps)),
          Table::num(r.its),
          Table::num(r.fevals),
          Table::num(r.seconds, 2) + "s",
          r.converged ? "yes" : "NO"};
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 6000);
  auto mesh = benchutil::make_ordered_wing(vertices);

  benchutil::print_header(
      "Ablation - psi-NKS algorithmic parameters (paper 2.4)",
      "paper 2.4.2: inner tolerance 0.001-0.01 suffices; restart 10-30; "
      "2.4.1: SER exponent up to 1.5 for smooth flows");

  solver::PtcOptions base;
  base.cfl0 = 10.0;
  base.rtol = 1e-8;
  base.max_steps = 60;
  base.num_subdomains = 8;
  base.schwarz.fill_level = 1;
  std::printf("mesh: %d vertices; base: CFL0=10, p=1, GMRES(20) rtol 5e-3, "
              "8 subdomains, refresh every step\n\n",
              mesh.num_vertices());

  {
    std::printf("Krylov restart dimension (paper: 10-30 typical):\n");
    Table t({"restart", "steps", "linear its", "residual evals", "time",
             "converged"});
    for (int m : {5, 10, 20, 30}) {
      auto o = base;
      o.gmres.restart = m;
      t.add_row(row_of(std::to_string(m), run(mesh, o)));
    }
    t.print();
  }
  {
    std::printf("\ninner (Krylov) tolerance (paper: loose & constant wins):\n");
    Table t({"rtol", "steps", "linear its", "residual evals", "time",
             "converged"});
    for (double rt : {1e-1, 1e-2, 5e-3, 1e-4}) {
      auto o = base;
      o.gmres.rtol = rt;
      char lbl[32];
      std::snprintf(lbl, sizeof lbl, "%.0e", rt);
      t.add_row(row_of(lbl, run(mesh, o)));
    }
    t.print();
  }
  {
    std::printf("\nJacobian/preconditioner refresh frequency:\n");
    Table t({"refresh every", "steps", "linear its", "residual evals", "time",
             "converged"});
    for (int k : {1, 2, 4}) {
      auto o = base;
      o.jacobian_refresh = k;
      t.add_row(row_of(std::to_string(k) + " steps", run(mesh, o)));
    }
    t.print();
  }
  {
    std::printf("\nKrylov method (GMRES(20) vs BiCGSTAB):\n");
    Table t({"method", "steps", "linear its", "residual evals", "time",
             "converged"});
    for (auto kv : {solver::PtcOptions::Krylov::kGmres,
                    solver::PtcOptions::Krylov::kBicgstab}) {
      auto o = base;
      o.krylov = kv;
      t.add_row(row_of(
          kv == solver::PtcOptions::Krylov::kGmres ? "GMRES(20)" : "BiCGSTAB",
          run(mesh, o)));
    }
    t.print();
  }
  {
    std::printf("\nSER exponent p (paper: up to 1.5 first order, 0.75 with "
                "shocks):\n");
    Table t({"p", "steps", "linear its", "residual evals", "time",
             "converged"});
    for (double p : {0.75, 1.0, 1.5}) {
      auto o = base;
      o.ser_exponent = p;
      t.add_row(row_of(Table::num(p, 2), run(mesh, o)));
    }
    t.print();
  }
  std::printf(
      "\nShape check: tightening the inner tolerance below ~1e-2 buys few\n"
      "steps but costs many iterations (the paper's inexact-Newton point);\n"
      "larger p accelerates smooth-flow convergence; infrequent refresh\n"
      "trades factorization work against iteration growth.\n");
  return 0;
}
