// Oracle-instrumented silent-data-corruption campaign.
//
// Sweep bit position x injection site over seeded psi-NKS solves on the
// wing problem with every SDC guard armed (ABFT-checksummed assembled
// SpMV, Krylov invariant monitors, physical-admissibility scans, plus the
// classic NaN/divergence ladder underneath). Each injected run is judged
// against a clean reference solve — the oracle:
//
//   caught   a guard fired (SDC rungs or the classic ladder) or the solve
//            loudly aborted: the corruption did NOT silently pass,
//   benign   no guard fired but the converged answer matches the clean
//            reference: Newton absorbed the flip (a perturbed iterate is
//            just another initial guess),
//   escaped  no guard fired AND the answer moved: true silent corruption.
//
// The paper's performance-model discipline applied to integrity: measure
// the coverage boundary (exponent flips must be caught, low mantissa bits
// sit below the rounding-bound noise floor and escape), the false-positive
// rate on clean runs (must be exactly zero — the ABFT bound is derived,
// not tuned), and the wall-clock overhead of running every guard.
//
// Writes BENCH_sdc.json (f3d-bench-v1 envelope). Exit status enforces:
//   exponent-bit detection coverage >= 90%, zero false positives on clean
//   runs, guard overhead <= 10%.
//
// Usage: bench_sdc [-seeds 3] [-steps 40] [-overhead-vertices 2000]
//                  [-out BENCH_sdc.json]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cfd/problem.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "mesh/generator.hpp"
#include "mesh/ordering.hpp"
#include "resilience/bitflip.hpp"
#include "resilience/faults.hpp"
#include "solver/newton.hpp"

namespace {

using namespace f3d;
using resilience::FaultInjector;
using resilience::FaultPlan;
using resilience::FaultSite;
using resilience::FlipTarget;

solver::PtcOptions campaign_options() {
  solver::PtcOptions o;
  o.cfl0 = 20.0;
  o.max_steps = 60;
  o.rtol = 1e-8;
  o.num_subdomains = 2;
  o.schwarz.fill_level = 1;
  o.matrix_free = false;  // assembled operator: the ABFT-guarded path
  o.recovery.enabled = true;
  o.sdc.enabled = true;
  return o;
}

struct RunOutcome {
  bool injected = false;
  bool caught = false;   ///< guard fired or loud abort
  bool escaped = false;  ///< silent AND answer altered
  bool benign = false;   ///< silent but answer identical to reference
};

struct Rig {
  mesh::UnstructuredMesh mesh = mesh::generate_wing_mesh(
      mesh::WingMeshConfig{.nx = 6, .ny = 3, .nz = 3});
  cfd::FlowConfig cfg;
  std::vector<double> x_ref;  ///< clean converged answer
  double ref_norm = 0;
  bool verbose = false;

  Rig() {
    cfg.model = cfd::Model::kCompressible;
    cfg.order = 1;
    cfd::EulerDiscretization disc(mesh, cfg);
    cfd::EulerProblem prob(disc, -1.0);
    x_ref = prob.initial_state();
    auto res = solver::ptc_solve(prob, x_ref, campaign_options());
    F3D_CHECK_MSG(res.converged, "clean reference solve must converge");
    for (double v : x_ref) ref_norm = std::max(ref_norm, std::abs(v));
  }

  RunOutcome run(int bit, FlipTarget target, std::uint64_t seed) {
    FaultInjector inj(seed);
    FaultPlan p;
    p.fire_every = 1;
    // Vary the strike point with the seed so a sweep samples different
    // elements/steps, not one fixed victim.
    p.skip_first = 2 + static_cast<int>(seed % 7);
    p.max_fires = 1;
    inj.arm(FaultSite::kBitFlip, p);
    inj.set_bit_flip({.bit = bit, .target = target});

    cfd::EulerDiscretization disc(mesh, cfg);
    cfd::EulerProblem prob(disc, -1.0);
    auto x = prob.initial_state();
    auto o = campaign_options();
    o.fault_injector = &inj;

    RunOutcome out;
    bool aborted = false;
    solver::PtcResult res;
    try {
      res = solver::ptc_solve(prob, x, o);
    } catch (const NumericalError&) {
      aborted = true;  // loud failure: not silent by definition
    }
    out.injected = inj.fires(FaultSite::kBitFlip) > 0;
    if (!out.injected) return out;

    const bool guard_fired =
        aborted || res.sdc_detections > 0 || res.recovery_log.detections() > 0;
    double diff = 0;
    for (std::size_t i = 0; i < x.size(); ++i)
      diff = std::max(diff, std::abs(x[i] - x_ref[i]));
    if (guard_fired) {
      out.caught = true;
    } else if (!res.converged || diff / ref_norm > 1e-6) {
      out.escaped = true;  // wrong (or unconverged) answer, nothing fired
    } else {
      out.benign = true;
    }
    if (verbose)
      std::printf("  bit %2d %-9s seed %llu: %-7s (sdc_det %d, log_det %d, "
                  "diff %.2e)%s\n",
                  bit, resilience::flip_target_name(target),
                  static_cast<unsigned long long>(seed),
                  out.caught ? "caught" : out.escaped ? "ESCAPED" : "benign",
                  res.sdc_detections, res.recovery_log.detections(),
                  diff / ref_norm, aborted ? " [aborted]" : "");
    return out;
  }
};

struct Bucket {
  std::string name;
  int lo = 0, hi = 0;  ///< inclusive bit range
  int injected = 0, caught = 0, escaped = 0, benign = 0;
  [[nodiscard]] double coverage() const {
    return injected > 0 ? static_cast<double>(caught) / injected : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int nseeds = opts.get_int("seeds", 3);
  const int overhead_vertices = opts.get_int("overhead-vertices", 2000);
  const int overhead_steps = opts.get_int("steps", 40);
  const std::string out_path = opts.get_string("out", "BENCH_sdc.json");

  benchutil::print_header(
      "SDC defense - detection coverage, escape rate, guard overhead",
      "ABFT bound |1'(Ax) - c'x| <= slack*eps*(|A|'1)'|x|; exponent flips "
      "caught, low mantissa bits escape below the noise floor");

  const std::vector<int> bits = {0,  4,  8,  16, 24, 32, 40, 44,
                                 48, 51, 52, 55, 58, 61, 62, 63};
  const std::vector<FlipTarget> targets = {FlipTarget::kState,
                                           FlipTarget::kResidual,
                                           FlipTarget::kKrylov,
                                           FlipTarget::kMatrix};

  Rig rig;
  rig.verbose = opts.get_bool("verbose", false);
  std::printf("wing mesh: %d vertices | %d bits x %zu targets x %d seeds\n\n",
              rig.mesh.num_vertices(), static_cast<int>(bits.size()),
              targets.size(), nseeds);

  std::vector<Bucket> buckets = {{"mantissa-low", 0, 25},
                                 {"mantissa-high", 26, 51},
                                 {"exponent", 52, 62},
                                 {"sign", 63, 63}};
  benchutil::Json detail = benchutil::Json::array();

  for (int bit : bits) {
    Bucket row;  // per-bit tallies for the detail series
    for (FlipTarget target : targets) {
      for (int seed = 1; seed <= nseeds; ++seed) {
        const auto out =
            rig.run(bit, target, static_cast<std::uint64_t>(seed));
        if (!out.injected) continue;
        for (auto& b : buckets) {
          if (bit < b.lo || bit > b.hi) continue;
          ++b.injected;
          b.caught += out.caught;
          b.escaped += out.escaped;
          b.benign += out.benign;
        }
        ++row.injected;
        row.caught += out.caught;
        row.escaped += out.escaped;
        row.benign += out.benign;
      }
    }
    detail.push(benchutil::Json::object()
                    .set("bit", benchutil::Json(static_cast<long long>(bit)))
                    .set("injected", benchutil::Json(
                                         static_cast<long long>(row.injected)))
                    .set("caught",
                         benchutil::Json(static_cast<long long>(row.caught)))
                    .set("escaped",
                         benchutil::Json(static_cast<long long>(row.escaped)))
                    .set("benign",
                         benchutil::Json(static_cast<long long>(row.benign))));
  }

  Table tab({"bit class", "bits", "injected", "caught", "benign", "escaped",
             "coverage"});
  for (const auto& b : buckets)
    tab.add_row({b.name, std::to_string(b.lo) + "-" + std::to_string(b.hi),
                 std::to_string(b.injected), std::to_string(b.caught),
                 std::to_string(b.benign), std::to_string(b.escaped),
                 Table::num(100.0 * b.coverage(), 1) + " %"});
  tab.print();

  // --- false positives: clean solves with every guard armed ---------------
  int clean_runs = 0, false_positives = 0;
  for (int seed = 1; seed <= 2 * nseeds; ++seed) {
    cfd::EulerDiscretization disc(rig.mesh, rig.cfg);
    cfd::EulerProblem prob(disc, -1.0);
    auto x = prob.initial_state();
    auto res = solver::ptc_solve(prob, x, campaign_options());
    ++clean_runs;
    if (res.sdc_detections > 0) ++false_positives;
  }
  std::printf("\nclean runs: %d, SDC false positives: %d\n", clean_runs,
              false_positives);

  // --- guard overhead: identical solve with guards off vs on --------------
  auto mesh_big = mesh::generate_wing_mesh_with_size(overhead_vertices);
  mesh::apply_best_ordering(mesh_big);
  cfd::FlowConfig cfg_big;
  cfg_big.model = cfd::Model::kIncompressible;
  cfg_big.order = 1;
  auto timed_solve = [&](bool guards) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      cfd::EulerDiscretization disc(mesh_big, cfg_big);
      cfd::EulerProblem prob(disc, -1.0);
      auto x = prob.initial_state();
      auto o = campaign_options();
      o.max_steps = overhead_steps;
      o.rtol = 1e-300;  // fixed work: run every step
      o.sdc.enabled = guards;
      Timer t;
      auto res = solver::ptc_solve(prob, x, o);
      best = std::min(best, t.seconds());
      F3D_CHECK(res.steps == overhead_steps);
    }
    return best;
  };
  const double t_off = timed_solve(false);
  const double t_on = timed_solve(true);
  const double overhead_pct = 100.0 * (t_on / t_off - 1.0);
  std::printf("guard overhead: %d vertices x %d steps, guards off %.3f s, "
              "on %.3f s -> %+.2f %%\n",
              mesh_big.num_vertices(), overhead_steps, t_off, t_on,
              overhead_pct);

  // --- verdicts + artifact ------------------------------------------------
  const auto& expo = buckets[2];
  const auto& mlow = buckets[0];
  const double expo_cov = expo.coverage();
  const double mlow_escape =
      mlow.injected > 0 ? static_cast<double>(mlow.escaped) / mlow.injected
                        : 0.0;
  const bool ok_cov = expo_cov >= 0.90;
  const bool ok_fp = false_positives == 0;
  const bool ok_ovh = overhead_pct <= 10.0;
  std::printf("\nexponent coverage %.1f %% %s | false positives %d %s | "
              "overhead %.2f %% %s\n",
              100.0 * expo_cov, ok_cov ? "(>= 90% - OK)" : "(FAIL)",
              false_positives, ok_fp ? "(zero - OK)" : "(FAIL)", overhead_pct,
              ok_ovh ? "(<= 10% - OK)" : "(FAIL)");

  benchutil::Json classes = benchutil::Json::array();
  for (const auto& b : buckets)
    classes.push(
        benchutil::Json::object()
            .set("class", benchutil::Json(b.name))
            .set("bits", benchutil::Json(std::to_string(b.lo) + "-" +
                                         std::to_string(b.hi)))
            .set("injected",
                 benchutil::Json(static_cast<long long>(b.injected)))
            .set("caught", benchutil::Json(static_cast<long long>(b.caught)))
            .set("benign", benchutil::Json(static_cast<long long>(b.benign)))
            .set("escaped",
                 benchutil::Json(static_cast<long long>(b.escaped)))
            .set("coverage", benchutil::Json(b.coverage())));

  benchutil::Json series =
      benchutil::Json::object()
          .set("by_bit_class", std::move(classes))
          .set("by_bit", std::move(detail))
          .set("exponent_detection_coverage", benchutil::Json(expo_cov))
          .set("low_mantissa_escape_rate", benchutil::Json(mlow_escape))
          .set("clean_runs", benchutil::Json(static_cast<long long>(clean_runs)))
          .set("false_positives",
               benchutil::Json(static_cast<long long>(false_positives)))
          .set("guard_overhead_pct", benchutil::Json(overhead_pct))
          .set("overhead_vertices",
               benchutil::Json(static_cast<long long>(mesh_big.num_vertices())))
          .set("overhead_steps",
               benchutil::Json(static_cast<long long>(overhead_steps)))
          .set("seeds", benchutil::Json(static_cast<long long>(nseeds)));
  benchutil::write_json(out_path, series);
  std::printf("wrote %s\n", out_path.c_str());

  return ok_cov && ok_fp && ok_ovh ? 0 : 1;
}
