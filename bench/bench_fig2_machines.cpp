// Reproduces Figure 2: aggregate Gflop/s and execution time (log-log
// against ideal scaling) for the 2.8M-vertex case on ASCI Red, Blue
// Pacific, and the Cray T3E. Same calibration pipeline as Figure 1; the
// three machine-parameter models provide the hardware contrast the
// figure shows (T3E fastest per PE at low counts, Red scaling furthest).
//
// Usage: bench_fig2_machines [-vertices 12000] [-steps 4]

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "par/stepmodel.hpp"
#include "perf/machine.hpp"

namespace {
using namespace f3d;
}

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 12000);
  const int steps = opts.get_int("steps", 4);

  benchutil::print_header(
      "Figure 2 - Gflop/s and execution time on Red / Blue Pacific / T3E",
      "paper Fig 2: log-log scaling of the 2.8M-vertex case with ideal "
      "lines; ASCI Red scales to 3072 nodes");

  auto mesh = benchutil::make_ordered_wing(vertices);
  solver::SchwarzOptions so;
  so.type = solver::SchwarzType::kBlockJacobi;
  so.fill_level = 0;
  std::vector<std::pair<int, double>> its;
  for (int p : {8, 16, 32, 64})
    its.push_back(
        {p, benchutil::probe_nks(mesh, p, so, steps).linear_its_per_step});
  const double alpha = benchutil::fit_iteration_growth(its);
  const double its8 = its.front().second;
  auto law = benchutil::measure_surface_law(mesh, {8, 16, 32, 64});

  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfd::EulerDiscretization disc(mesh, cfg);
  auto work = benchutil::calibrate_work(disc, so.fill_level, false);

  const double paper_nv = 2.8e6;
  const int nodes_list[] = {64, 128, 256, 512, 768, 1024, 2048, 3072};

  for (const auto& machine :
       {perf::asci_red(), perf::blue_pacific(), perf::cray_t3e()}) {
    std::printf("\n%s (max %d nodes):\n", machine.name.c_str(),
                machine.max_nodes);
    Table t({"Nodes", "Gflop/s", "ideal Gflop/s", "Time(20 steps)",
             "ideal time"});
    double base_gf = 0, base_time = 0;
    int base_nodes = 0;
    for (int nodes : nodes_list) {
      if (nodes > machine.max_nodes) continue;
      par::StepCounts counts;
      counts.linear_its = its8 * std::pow(nodes / 8.0, alpha);
      auto load = par::synthesize_load(paper_nv, nodes, law);
      auto b = par::model_step(machine, load, work, counts);
      const double gf = b.gflops();
      const double time = b.total() * 20.0;
      if (base_nodes == 0) {
        base_nodes = nodes;
        base_gf = gf;
        base_time = time;
      }
      t.add_row({Table::num(static_cast<long long>(nodes)),
                 Table::num(gf, 1),
                 Table::num(base_gf * nodes / base_nodes, 1),
                 Table::num(time, 0) + "s",
                 Table::num(base_time * base_nodes / nodes, 0) + "s"});
    }
    t.print();
  }
  std::printf(
      "\nShape check (paper): Gflop/s tracks the ideal line closely on Red\n"
      "and T3E while execution time falls away from ideal (iteration growth\n"
      "adds redundant work); T3E has the highest per-PE rate, Red reaches\n"
      "the highest aggregate by scaling to 3072 nodes.\n");
  return 0;
}
