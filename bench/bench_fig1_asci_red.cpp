// Reproduces Figure 1: average vertices per processor and five parallel
// performance metrics for the fixed-size 2.8M-vertex problem on up to
// 3072 ASCI Red nodes (block Jacobi + ILU preconditioning).
//
// Real ingredients: iteration-growth exponent and partition surface law
// measured on the host mesh; hardware side from the ASCI Red virtual
// machine. The five metrics mirror the figure: execution time, speedup,
// implementation efficiency (eta_impl, per-step), overall efficiency,
// and aggregate Gflop/s.
//
// Usage: bench_fig1_asci_red [-vertices 12000] [-steps 4]

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "par/stepmodel.hpp"
#include "perf/machine.hpp"

namespace {
using namespace f3d;
}

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 12000);
  const int steps = opts.get_int("steps", 4);

  benchutil::print_header(
      "Figure 1 - parallel metrics vs nodes, ASCI Red, 2.8M vertices",
      "paper Fig 1: 91% implementation efficiency 256->2048; 156 Gflop/s "
      "on 2048 nodes with -procs 2, 227 Gflop/s on 3072");

  auto mesh = benchutil::make_ordered_wing(vertices);
  std::printf("calibration mesh: %d vertices\n", mesh.num_vertices());

  // Real algorithmic calibration.
  solver::SchwarzOptions so;
  so.type = solver::SchwarzType::kBlockJacobi;
  so.fill_level = 0;  // Fig 1 used ILU(0)
  std::vector<std::pair<int, double>> its;
  for (int p : {8, 16, 32, 64})
    its.push_back({p, benchutil::probe_nks(mesh, p, so, steps)
                          .linear_its_per_step});
  const double alpha = benchutil::fit_iteration_growth(its);
  const double its8 = its.front().second;
  auto law = benchutil::measure_surface_law(mesh, {8, 16, 32, 64});
  std::printf("measured: its/step ~ P^%.3f, ghosts ~ %.1f v^(2/3)\n\n", alpha,
              law.ghost_coeff);

  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfd::EulerDiscretization disc(mesh, cfg);
  auto work = benchutil::calibrate_work(disc, so.fill_level, false);

  const double paper_nv = 2.8e6;
  auto machine = perf::asci_red();
  const int nodes_list[] = {128, 256, 512, 1024, 2048, 3072};

  std::vector<par::ScalingPoint> points;
  std::vector<double> gflops1, gflops2;
  for (int nodes : nodes_list) {
    par::StepCounts counts;
    counts.linear_its = its8 * std::pow(nodes / 8.0, alpha);
    auto load = par::synthesize_load(paper_nv, nodes, law);
    auto b1 = par::model_step(machine, load, work, counts,
                              par::NodeMode::kMpi1);
    // The paper's "-procs 2": hybrid threading of the flux phase only.
    auto b2 = par::model_step(machine, load, work, counts,
                              par::NodeMode::kHybridOmp2);
    points.push_back({nodes, counts.linear_its, b1.total() * 20.0});
    gflops1.push_back(b1.gflops());
    gflops2.push_back(b2.gflops());
  }
  auto eff = par::efficiency_decomposition(points);

  Table t({"Nodes", "Verts/node", "Time(20 steps)", "Speedup", "eta_overall",
           "eta_impl", "Gflop/s", "Gflop/s(-procs 2)"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    t.add_row({Table::num(static_cast<long long>(points[i].procs)),
               Table::num(static_cast<long long>(
                   static_cast<long long>(paper_nv) / points[i].procs)),
               Table::num(points[i].time, 0) + "s",
               Table::num(eff[i].speedup, 2), Table::num(eff[i].eta_overall, 2),
               Table::num(eff[i].eta_impl, 2), Table::num(gflops1[i], 0),
               Table::num(gflops2[i], 0)});
  }
  t.print();

  // Paper checkpoints.
  double eta_impl_256 = 0, eta_impl_2048 = 0, gf2048 = 0, gf2048_2 = 0,
         gf3072_2 = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].procs == 256) eta_impl_256 = eff[i].eta_impl;
    if (points[i].procs == 2048) {
      eta_impl_2048 = eff[i].eta_impl;
      gf2048 = gflops1[i];
      gf2048_2 = gflops2[i];
    }
    if (points[i].procs == 3072) gf3072_2 = gflops2[i];
  }
  std::printf("\nimplementation efficiency 256 -> 2048 nodes: %.0f%% "
              "(paper: 91%%)\n",
              100.0 * eta_impl_2048 / eta_impl_256);
  std::printf("Gflop/s on 2048 nodes: %.0f single / %.0f hybrid = +%.0f%% "
              "(paper: 156 hybrid, +30%%)\n",
              gf2048, gf2048_2, 100.0 * (gf2048_2 / gf2048 - 1.0));
  std::printf("Gflop/s on 3072 nodes (hybrid): %.0f (paper: 227)\n", gf3072_2);
  return 0;
}
