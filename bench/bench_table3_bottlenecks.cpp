// Reproduces Table 3: scalability bottlenecks on ASCI Red, 128-1024
// processors, 2.8M-vertex mesh, block Jacobi + ILU(1).
//
// Two-layer reproduction:
//  1. ALGORITHMIC (real): the iteration growth with subdomain count is
//     measured from actual psi-NKS runs on a host-scale mesh with the
//     same vertices-per-subdomain ratios as the paper's configurations,
//     and fitted to its(P) = its0 * (P/P0)^alpha.
//  2. HARDWARE (modeled): per-step times, phase percentages, scatter
//     volumes and effective bandwidths come from the ASCI Red virtual
//     machine at the paper's true 2.8M-vertex scale, with partition
//     surface statistics extrapolated from real partitions.
//
// Usage: bench_table3_bottlenecks [-vertices 16000] [-steps 5]

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "par/stepmodel.hpp"
#include "perf/machine.hpp"

namespace {
using namespace f3d;
}

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 16000);
  const int steps = opts.get_int("steps", 5);

  benchutil::print_header(
      "Table 3 - scalability bottlenecks (ASCI Red, 2.8M vertices)",
      "paper Table 3: its 22->29, speedup 5.63 at 1024 procs, "
      "eta_overall 0.70 = eta_alg 0.76 x eta_impl 0.93; scatters 3%->6%, "
      "2.0->5.3 GB/it, ~4 MB/s effective");

  auto mesh = benchutil::make_ordered_wing(vertices);
  const int nv = mesh.num_vertices();
  const double paper_nv = 2.8e6;
  const int paper_procs[] = {128, 256, 512, 768, 1024};

  // --- 1. real iteration growth with subdomain count -------------------
  // The growth *exponent* of block-Jacobi-preconditioned Krylov iteration
  // counts is measured over an 8x subdomain range on the host mesh (the
  // same 8x span as the paper's 128 -> 1024) and transferred to the
  // paper's scale. This is a real algorithmic measurement, not a model.
  std::printf("mesh: %d vertices; measuring real iteration growth...\n", nv);
  solver::SchwarzOptions so;
  so.type = solver::SchwarzType::kBlockJacobi;
  so.overlap = 0;
  so.fill_level = 1;

  std::vector<std::pair<int, double>> its_measured;
  Table mtab({"Subdomains", "verts/sub", "its/step (real)"});
  for (int p : {8, 16, 32, 64}) {
    auto probe = benchutil::probe_nks(mesh, p, so, steps);
    its_measured.push_back({p, probe.linear_its_per_step});
    mtab.add_row({Table::num(static_cast<long long>(p)),
                  Table::num(static_cast<long long>(nv / p)),
                  Table::num(probe.linear_its_per_step, 1)});
  }
  mtab.print();
  const double alpha = benchutil::fit_iteration_growth(its_measured);
  std::printf("fitted iteration growth: its ~ P^%.3f "
              "(paper's 22->29 over 8x implies P^%.3f)\n\n",
              alpha, std::log(29.0 / 22.0) / std::log(8.0));

  // --- 2. virtual ASCI Red at 2.8M vertices ----------------------------
  auto law = benchutil::measure_surface_law(mesh, {8, 16, 32, 64});
  auto machine = perf::asci_red();
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfd::EulerDiscretization disc(mesh, cfg);
  auto work = benchutil::calibrate_work(disc, so.fill_level, false);

  const double its_base = its_measured.front().second;
  std::vector<par::ScalingPoint> points;
  std::vector<par::StepBreakdown> breakdowns;
  for (int pp : paper_procs) {
    par::StepCounts counts;
    counts.linear_its =
        its_base * std::pow(static_cast<double>(pp) / 128.0, alpha);
    auto load = par::synthesize_load(paper_nv, pp, law);
    auto brk = par::model_step(machine, load, work, counts);
    breakdowns.push_back(brk);
    points.push_back(
        {pp, counts.linear_its, brk.total() * 20.0});  // 20-step solve
  }
  auto eff = par::efficiency_decomposition(points);

  const int paper_its[] = {22, 24, 26, 27, 29};
  const double paper_speedup[] = {1.00, 1.78, 3.20, 4.62, 5.63};
  const double paper_eta[] = {1.00, 0.89, 0.80, 0.77, 0.70};

  Table t1({"Procs", "Its", "Time", "Speedup", "eta_ovr", "eta_alg",
            "eta_impl", "paper(spd/eta)"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    t1.add_row({Table::num(static_cast<long long>(points[i].procs)),
                Table::num(points[i].its, 0),
                Table::num(points[i].time, 0) + "s",
                Table::num(eff[i].speedup, 2), Table::num(eff[i].eta_overall, 2),
                Table::num(eff[i].eta_alg, 2), Table::num(eff[i].eta_impl, 2),
                Table::num(paper_speedup[i], 2) + "/" +
                    Table::num(paper_eta[i], 2) + " (its " +
                    std::to_string(paper_its[i]) + ")"});
  }
  t1.print();

  std::printf("\nper-step phase shares and scatter statistics:\n");
  Table t2({"Procs", "%reduc", "%implsync", "%scatter", "GB/step",
            "EffBW MB/s", "paper(%r/%s/%sc, GB, BW)"});
  const char* paper_row[] = {"5/4/3, 2.0, 3.9", "3/6/4, 2.8, 4.2",
                             "3/7/5, 4.0, 3.4", "3/8/5, 4.6, 4.2",
                             "3/10/6, 5.3, 4.2"};
  for (std::size_t i = 0; i < breakdowns.size(); ++i) {
    const auto& b = breakdowns[i];
    t2.add_row({Table::num(static_cast<long long>(points[i].procs)),
                Table::num(b.pct(b.t_reductions), 0),
                Table::num(b.pct(b.t_implicit_sync), 0),
                Table::num(b.pct(b.t_scatter), 0),
                Table::num(b.scatter_bytes_total * 1e-9, 1),
                Table::num(b.effective_bw_per_node_mbs, 1), paper_row[i]});
  }
  t2.print();
  std::printf(
      "\nShape check: iteration counts (real) grow ~15-30%% over the sweep;\n"
      "implicit sync and scatter shares grow with P while reductions stay\n"
      "small; total scattered GB grows despite shrinking subdomains; the\n"
      "effective per-node bandwidth sits far below the wire rate.\n");
  return 0;
}
