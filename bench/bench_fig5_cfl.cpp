// Reproduces Figure 5: residual norm versus pseudo-timestep for a sweep
// of initial CFL numbers under the SER continuation law
//   N_CFL^l = N_CFL^0 (||f(u^0)|| / ||f(u^{l-1})||)^p.
// The paper's point: a small initial CFL adds nonlinear robustness but
// delays entry into the superlinear-convergence regime, and the sweet
// spot is case-specific. These are *real* psi-NKS solves of the
// incompressible wing flow.
//
// Usage: bench_fig5_cfl [-vertices 8000] [-steps 40] [-p 1.0]

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "cfd/problem.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "io/csv.hpp"
#include "solver/newton.hpp"

namespace {
using namespace f3d;
}

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 8000);
  const int steps = opts.get_int("steps", 40);
  const double p_exp = opts.get_double("p", 1.0);

  benchutil::print_header(
      "Figure 5 - effect of initial CFL number on nonlinear convergence",
      "paper Fig 5: 2.8M-vertex case; SER timestep growth, initial CFL "
      "sweep; small CFL = robust but slow induction");

  auto mesh = benchutil::make_ordered_wing(vertices);
  std::printf("mesh: %d vertices; SER exponent p = %.2f; up to %d steps\n\n",
              mesh.num_vertices(), p_exp, steps);

  const double cfls[] = {1, 5, 10, 50, 100};
  std::vector<std::vector<double>> histories;
  std::vector<int> steps_to_converge;

  for (double cfl0 : cfls) {
    cfd::FlowConfig cfg;
    cfg.model = cfd::Model::kIncompressible;
    cfg.order = 1;
    cfd::EulerDiscretization disc(mesh, cfg);
    cfd::EulerProblem prob(disc, -1.0);
    auto x = prob.initial_state();

    solver::PtcOptions popts;
    popts.cfl0 = cfl0;
    popts.ser_exponent = p_exp;
    popts.max_steps = steps;
    popts.rtol = 1e-10;
    popts.schwarz.fill_level = 1;
    auto res = solver::ptc_solve(prob, x, popts);

    std::vector<double> h;
    h.push_back(res.initial_residual);
    int conv_at = -1;
    for (const auto& rec : res.history) {
      h.push_back(rec.residual);
      if (conv_at < 0 && rec.residual / res.initial_residual <= 1e-10)
        conv_at = rec.step + 1;
    }
    histories.push_back(h);
    steps_to_converge.push_back(conv_at);
  }

  // Print as plottable series: one row per step, one column per CFL.
  std::printf("relative residual ||f(u^l)|| / ||f(u^0)|| by pseudo-step:\n");
  std::vector<std::string> header = {"step"};
  for (double c : cfls) header.push_back("CFL0=" + Table::num(c, 0));
  Table table(header);
  std::size_t longest = 0;
  for (const auto& h : histories) longest = std::max(longest, h.size());
  for (std::size_t s = 0; s < longest; ++s) {
    std::vector<std::string> row = {Table::num(static_cast<long long>(s))};
    for (const auto& h : histories) {
      if (s < h.size()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2e", h[s] / h[0]);
        row.push_back(buf);
      } else {
        row.push_back("-");
      }
    }
    table.add_row(row);
  }
  table.print();

  // Optional machine-readable series for plotting (-csv path).
  if (opts.has("csv")) {
    std::vector<std::string> header = {"step"};
    for (double c : cfls) header.push_back("cfl" + Table::num(c, 0));
    io::CsvWriter csv(header);
    std::size_t longest2 = 0;
    for (const auto& h : histories) longest2 = std::max(longest2, h.size());
    for (std::size_t s2 = 0; s2 < longest2; ++s2) {
      std::vector<double> row = {static_cast<double>(s2)};
      for (const auto& h : histories)
        row.push_back(s2 < h.size() ? h[s2] / h[0] : -1.0);
      csv.add_row(row);
    }
    const auto path = opts.get_string("csv", "fig5.csv");
    csv.write(path);
    std::printf("\nwrote %s\n", path.c_str());
  }

  std::printf("\npseudo-steps to 1e-10 residual reduction:\n");
  for (std::size_t i = 0; i < 5; ++i)
    std::printf("  CFL0 = %5.0f : %s\n", cfls[i],
                steps_to_converge[i] < 0
                    ? "not converged in budget"
                    : (std::to_string(steps_to_converge[i]) + " steps").c_str());
  std::printf(
      "\nShape check: larger CFL0 converges in fewer steps on this smooth\n"
      "flow; too small CFL0 shows the paper's long induction period.\n");
  return 0;
}
