// Reproduces Table 2: execution times with single vs double precision
// *storage* of the ILU preconditioner factors (all arithmetic stays
// double). The paper ran the 357,900-vertex case on 16-120 Origin 2000
// processors and saw the linear-solve phase run ~2x faster with float
// storage, "clearly identifying memory bandwidth as the bottleneck".
//
// Here: (a) real host measurement of the triangular-solve phase with both
// storage precisions (same iteration counts — the preconditioner is
// approximate by design, so convergence is unaffected, which we verify);
// (b) the Origin 2000 virtual-machine projection across 16-120 CPUs.
//
// Usage: bench_table2_precision [-vertices 30000] [-its 60] [-reps 3]

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "cfd/problem.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "perf/machine.hpp"
#include "solver/newton.hpp"
#include "sparse/ilu.hpp"

namespace {
using namespace f3d;
}

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 30000);
  const int linear_its = opts.get_int("its", 60);
  const int reps = opts.get_int("reps", 3);

  benchutil::print_header(
      "Table 2 - single vs double precision preconditioner storage",
      "paper Table 2: 357,900-vertex case, Origin 2000; float storage runs "
      "the linear solve ~2x faster at identical convergence");

  auto mesh = benchutil::make_ordered_wing(vertices);
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(mesh, cfg);
  std::printf("mesh: %d vertices (%d DOFs)\n", mesh.num_vertices(),
              mesh.num_vertices() * 4);

  // Assemble a representative Jacobian at freestream + pseudo-time shift.
  auto q = disc.make_freestream_field();
  auto jac = disc.allocate_jacobian();
  disc.jacobian(q, jac);
  std::vector<double> sr;
  disc.spectral_radius(q, sr);
  for (int v = 0; v < mesh.num_vertices(); ++v) {
    double* blk = jac.find_block(v, v);
    for (int c = 0; c < 4; ++c)
      blk[c * 4 + c] += sr[v] / 10.0;  // CFL ~ 10 shift
  }

  auto pat = sparse::ilu_symbolic(jac, 0);
  auto fd = sparse::ilu_factor_block<double>(jac, pat);
  auto ff = sparse::ilu_factor_block<float>(jac, pat);

  const std::size_t n = static_cast<std::size_t>(jac.scalar_n());
  std::vector<double> b(n, 1.0), x(n);

  auto time_solves = [&](auto& f) {
    double best = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      Timer t;
      for (int k = 0; k < linear_its; ++k) {
        f.solve(b.data(), x.data());
        // A matvec alternates with the trisolve in the real Krylov loop.
        jac.spmv(x.data(), b.data());
      }
      best = std::min(best, t.seconds());
    }
    return best;
  };

  const double t_double = time_solves(fd);
  const double t_float = time_solves(ff);

  // Convergence equivalence: one GMRES solve with each.
  solver::LinearOperator op;
  op.n = static_cast<int>(n);
  op.apply = [&](const double* xx, double* yy) { jac.spmv(xx, yy); };
  auto pd = solver::make_global_ilu(jac, 0, false);
  auto pf = solver::make_global_ilu(jac, 0, true);
  std::vector<double> rhs(n, 1.0), x1(n, 0.0), x2(n, 0.0);
  solver::GmresOptions go;
  go.rtol = 1e-8;
  go.max_iters = 300;
  auto rd = solver::gmres(op, *pd, rhs, x1, go);
  auto rf = solver::gmres(op, *pf, rhs, x2, go);

  std::printf("\nHost measurement (%d trisolve+spmv pairs):\n", linear_its);
  Table host({"Storage", "Linear phase", "Factor bytes", "GMRES its to 1e-8"});
  host.add_row({"Double", Table::num(t_double * 1e3, 1) + "ms",
                Table::num(static_cast<long long>(pd->factor_bytes())),
                Table::num(static_cast<long long>(rd.iterations))});
  host.add_row({"Single", Table::num(t_float * 1e3, 1) + "ms",
                Table::num(static_cast<long long>(pf->factor_bytes())),
                Table::num(static_cast<long long>(rf.iterations))});
  host.print();
  std::printf("measured speedup: %.2fx (paper: 1.6-1.9x; bound from the "
              "traffic model: <= 2x)\n",
              t_double / t_float);

  // Origin 2000 projection at the paper's processor counts.
  auto law = benchutil::measure_surface_law(mesh, {4, 8, 16});
  auto machine = perf::origin2000();
  const double nv = 357900;
  par::StepCounts counts;
  counts.linear_its = 18;  // per-step order of magnitude from our runs
  Table proj({"Procs", "Linear Solve Dbl", "Linear Solve Sgl", "Overall Dbl",
              "Overall Sgl", "paper (lin slv D/S)"});
  const char* paper_ref[] = {"223s/136s", "117s/67s", "60s/34s", "31s/16s"};
  const int procs_list[] = {16, 32, 64, 120};
  for (int i = 0; i < 4; ++i) {
    const int p = procs_list[i];
    auto load = par::synthesize_load(nv, p, law);
    auto wd = benchutil::calibrate_work(disc, 0, false);
    auto wf = benchutil::calibrate_work(disc, 0, true);
    auto bd = par::model_step(machine, load, wd, counts);
    auto bf = par::model_step(machine, load, wf, counts);
    // "Linear solve" phase = sparse + its share of comm; "overall" adds
    // the flux phases. Report per 60 pseudo-steps like the paper's runs.
    const double steps = 60;
    proj.add_row({Table::num(static_cast<long long>(p)),
                  Table::num(steps * (bd.t_sparse + bd.t_implicit_sync), 0) + "s",
                  Table::num(steps * (bf.t_sparse + bf.t_implicit_sync), 0) + "s",
                  Table::num(steps * bd.total(), 0) + "s",
                  Table::num(steps * bf.total(), 0) + "s", paper_ref[i]});
  }
  std::printf("\nOrigin 2000 projection (357,900 vertices, 60 pseudo-steps):\n");
  proj.print();
  return 0;
}
