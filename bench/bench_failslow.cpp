// Fail-slow mitigation ladder: efficiency recovered per rung, measured
// against an oracle that knows the slow rank.
//
// Sweep fault pattern (persistent straggler, noisy-neighbor jitter,
// degraded NIC) x severity x mitigation policy over seeded campaigns on
// the virtual parallel machine. Every arm of a sweep faces the identical
// fault sequence (the injector draws all fail-slow sites every step,
// armed or not), so arm differences are pure policy effects. Each
// (pattern, severity, seed) cell is normalized by two reference runs:
//
//   none    the control arm - detect and log, never mitigate,
//   oracle  a scheduler that knew the sick resource before step 0 and
//           placed work around it: the fault-free campaign time.
//
//   recovered = (t_none - t_policy) / (t_none - t_oracle)
//
// is the fraction of the wall clock lost to the fault that the ladder
// claws back (0 = as bad as ignoring it, 1 = as good as clairvoyance).
// The paper's performance-model discipline applied to degraded machines:
// the same alpha-beta step model that predicts healthy performance
// predicts the straggler tax and what each mitigation rung buys back.
//
// Writes BENCH_failslow.json (f3d-bench-v1 envelope). Exit status
// enforces: the full ladder recovers >= 50% of the efficiency lost to a
// 4x persistent straggler, and the detector raises zero false positives
// across every clean campaign (all policies x seeds).
//
// Usage: bench_failslow [-procs 16] [-steps 400] [-seeds 3] [-vertices 3000]
//                       [-out BENCH_failslow.json]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "mesh/generator.hpp"
#include "mesh/graph.hpp"
#include "par/distres.hpp"
#include "par/failslow.hpp"
#include "partition/partition.hpp"
#include "perf/machine.hpp"
#include "resilience/faults.hpp"

namespace {

using namespace f3d;
using resilience::FaultInjector;
using resilience::FaultPlan;
using resilience::FaultSite;

struct Injection {
  FaultSite site = FaultSite::kSlowRank;
  double magnitude = 1.0;
  int rank = 0;
  int at_step = 0;
  bool persistent_refire = false;  ///< re-fire every step (kJitter pattern)
};

struct Rig {
  mesh::Graph graph;
  par::CampaignDomain domain;
  par::WorkCoefficients work;
  perf::MachineModel machine = perf::asci_red();
  std::vector<par::StepCounts> steps;
  int procs = 0;

  Rig(int procs_, int nsteps, int vertices) : procs(procs_) {
    auto m = mesh::generate_wing_mesh_with_size(vertices);
    graph = mesh::build_graph(m.num_vertices(), m.edges());
    domain = par::make_domain(graph, part::kway_grow(graph, procs));
    work.sparse_bytes_per_vertex_it = 1200;
    work.sparse_flops_per_vertex_it = 300;
    steps.assign(static_cast<std::size_t>(nsteps), par::StepCounts{});
  }

  /// One campaign. `inject == nullptr` runs fault-free (the oracle arm).
  par::CampaignResult run(par::SlowMitigation policy, const Injection* inject,
                          std::uint64_t seed) const {
    FaultInjector inj(seed);
    if (inject != nullptr) {
      // Draw s*P + r of a fail-slow site is (step s, rank r) - the
      // campaign draws each site once per alive rank per step.
      FaultPlan plan;
      plan.skip_first = inject->at_step * procs + inject->rank;
      plan.fire_every = inject->persistent_refire ? procs : 1;
      plan.max_fires = inject->persistent_refire ? (1 << 30) : 1;
      plan.magnitude = inject->magnitude;
      inj.arm(inject->site, plan);
    }
    par::CampaignOptions o;
    o.policy = par::RecoveryPolicy::kSpareRank;
    o.spare_ranks = 4;
    o.checkpoint_interval = 20;
    o.comm = par::CommReliability{};
    o.slow_mitigation = policy;
    o.injector = &inj;
    return par::simulate_campaign(machine, domain, work, steps, o);
  }
};

struct Cell {
  std::string pattern;
  double severity = 0;
  par::SlowMitigation policy = par::SlowMitigation::kNone;
  double seconds = 0;        ///< summed over seeds
  double none_seconds = 0;   ///< control arm, summed over the same seeds
  double oracle_seconds = 0;
  int confirmed = 0;
  int detect_latency = 0;  ///< worst over seeds
  int halo_timeouts = 0;
  int repartitions = 0;
  int quarantined = 0;
  int retunes = 0;
  [[nodiscard]] double recovered() const {
    const double lost = none_seconds - oracle_seconds;
    return lost > 1e-9 ? (none_seconds - seconds) / lost : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int procs = opts.get_int("procs", 16);
  const int nsteps = opts.get_int("steps", 400);
  const int nseeds = opts.get_int("seeds", 3);
  const int vertices = opts.get_int("vertices", 3000);
  const std::string out_path = opts.get_string("out", "BENCH_failslow.json");

  benchutil::print_header(
      "Fail-slow tolerance - mitigation ladder vs slow-rank oracle",
      "recovered = (t_none - t_policy) / (t_none - t_oracle); ladder rungs "
      "retry -> repartition -> quarantine");

  Rig rig(procs, nsteps, vertices);
  const int num_vertices = static_cast<int>(rig.graph.ptr.size()) - 1;
  std::printf("%d vertices, %d ranks, %d steps x %d seeds\n\n",
              num_vertices, procs, nsteps, nseeds);

  // The three fail-slow signatures, three severities each. Severity is
  // the site magnitude: a compute slowdown factor (>= 1), the jitter
  // sigma (uniform per-step stretch in [0, sigma]), or the surviving
  // link bandwidth fraction (in (0, 1]; the auto-armed halo timeout
  // trips below 1/4).
  struct Pattern {
    const char* name;
    FaultSite site;
    bool persistent_refire;
    std::vector<double> severities;
  };
  const std::vector<Pattern> patterns = {
      {"straggler", FaultSite::kSlowRank, false, {2.0, 4.0, 8.0}},
      {"jitter", FaultSite::kJitter, true, {1.0, 2.0, 4.0}},
      {"degraded-link", FaultSite::kDegradedLink, false, {0.5, 0.2, 0.1}},
  };
  const std::vector<par::SlowMitigation> policies = {
      par::SlowMitigation::kNone, par::SlowMitigation::kRetry,
      par::SlowMitigation::kRepartition, par::SlowMitigation::kQuarantine};

  // Oracle arm: fault-free, one per seed (pattern-independent).
  std::vector<double> oracle_s(static_cast<std::size_t>(nseeds) + 1, 0.0);
  double oracle_total = 0;
  for (int seed = 1; seed <= nseeds; ++seed) {
    const auto r = rig.run(par::SlowMitigation::kNone, nullptr,
                           static_cast<std::uint64_t>(seed));
    oracle_s[static_cast<std::size_t>(seed)] = r.total_seconds();
    oracle_total += r.total_seconds();
  }

  std::vector<Cell> cells;
  double gate_recovered = 0;  ///< full ladder at the 4x straggler
  for (const auto& pat : patterns) {
    for (double severity : pat.severities) {
      // Control arm first: the same seeds every policy sees.
      std::vector<double> none_s(static_cast<std::size_t>(nseeds) + 1, 0.0);
      for (const auto policy : policies) {
        Cell cell;
        cell.pattern = pat.name;
        cell.severity = severity;
        cell.policy = policy;
        cell.oracle_seconds = oracle_total;
        for (int seed = 1; seed <= nseeds; ++seed) {
          Injection inject;
          inject.site = pat.site;
          inject.magnitude = severity;
          // Vary the victim and the onset with the seed.
          inject.rank = 1 + (3 * seed) % (procs - 1);
          inject.at_step = 4 + 2 * seed;
          inject.persistent_refire = pat.persistent_refire;
          const auto r =
              rig.run(policy, &inject, static_cast<std::uint64_t>(seed));
          cell.seconds += r.total_seconds();
          if (policy == par::SlowMitigation::kNone)
            none_s[static_cast<std::size_t>(seed)] = r.total_seconds();
          cell.none_seconds += none_s[static_cast<std::size_t>(seed)];
          cell.confirmed += r.slow_confirmed;
          cell.detect_latency =
              std::max(cell.detect_latency, r.slow_detect_latency_steps);
          cell.halo_timeouts += r.sim.aggregate.halo_timeouts;
          cell.repartitions += r.weighted_repartitions;
          cell.quarantined += r.slow_quarantined;
          cell.retunes += r.checkpoint_retunes;
        }
        if (pat.site == FaultSite::kSlowRank && severity == 4.0 &&
            policy == par::SlowMitigation::kQuarantine)
          gate_recovered = cell.recovered();
        cells.push_back(cell);
      }
    }
  }

  Table tab({"pattern", "severity", "policy", "t (s)", "recovered",
             "confirmed", "latency", "timeouts", "reparts", "quarantine"});
  for (const auto& c : cells)
    tab.add_row({c.pattern, Table::num(c.severity, 2),
                 par::slow_mitigation_name(c.policy),
                 Table::num(c.seconds / nseeds, 3),
                 Table::num(100.0 * c.recovered(), 1) + " %",
                 std::to_string(c.confirmed), std::to_string(c.detect_latency),
                 std::to_string(c.halo_timeouts),
                 std::to_string(c.repartitions),
                 std::to_string(c.quarantined)});
  tab.print();
  std::printf("\noracle (fault-free) campaign: %.3f s avg\n",
              oracle_total / nseeds);

  // --- false positives: clean campaigns, every policy armed ----------------
  int clean_runs = 0, false_positives = 0;
  for (const auto policy : policies) {
    for (int seed = 1; seed <= nseeds; ++seed) {
      const auto r =
          rig.run(policy, nullptr, static_cast<std::uint64_t>(seed));
      ++clean_runs;
      if (r.slow_suspected > 0 || r.slow_confirmed > 0) ++false_positives;
    }
  }

  const bool ok_recovered = gate_recovered >= 0.50;
  const bool ok_fp = false_positives == 0;
  std::printf(
      "\nfull ladder vs 4x straggler: %.1f %% of lost efficiency recovered "
      "%s\nclean campaigns: %d, detector false positives: %d %s\n",
      100.0 * gate_recovered, ok_recovered ? "(>= 50% - OK)" : "(FAIL)",
      clean_runs, false_positives, ok_fp ? "(zero - OK)" : "(FAIL)");

  benchutil::Json sweep = benchutil::Json::array();
  for (const auto& c : cells)
    sweep.push(
        benchutil::Json::object()
            .set("pattern", benchutil::Json(c.pattern))
            .set("severity", benchutil::Json(c.severity))
            .set("policy", benchutil::Json(
                               std::string(par::slow_mitigation_name(c.policy))))
            .set("seconds", benchutil::Json(c.seconds / nseeds))
            .set("none_seconds", benchutil::Json(c.none_seconds / nseeds))
            .set("oracle_seconds", benchutil::Json(c.oracle_seconds / nseeds))
            .set("recovered_frac", benchutil::Json(c.recovered()))
            .set("slow_confirmed",
                 benchutil::Json(static_cast<long long>(c.confirmed)))
            .set("detect_latency_steps",
                 benchutil::Json(static_cast<long long>(c.detect_latency)))
            .set("halo_timeouts",
                 benchutil::Json(static_cast<long long>(c.halo_timeouts)))
            .set("weighted_repartitions",
                 benchutil::Json(static_cast<long long>(c.repartitions)))
            .set("quarantined",
                 benchutil::Json(static_cast<long long>(c.quarantined)))
            .set("checkpoint_retunes",
                 benchutil::Json(static_cast<long long>(c.retunes))));

  benchutil::Json series =
      benchutil::Json::object()
          .set("procs", benchutil::Json(static_cast<long long>(procs)))
          .set("steps", benchutil::Json(static_cast<long long>(nsteps)))
          .set("seeds", benchutil::Json(static_cast<long long>(nseeds)))
          .set("vertices", benchutil::Json(
                               static_cast<long long>(num_vertices)))
          .set("oracle_seconds", benchutil::Json(oracle_total / nseeds))
          .set("sweep", std::move(sweep))
          .set("ladder_recovered_4x_straggler", benchutil::Json(gate_recovered))
          .set("clean_runs",
               benchutil::Json(static_cast<long long>(clean_runs)))
          .set("false_positives",
               benchutil::Json(static_cast<long long>(false_positives)));
  benchutil::write_json(out_path, series);
  std::printf("wrote %s\n", out_path.c_str());

  return ok_recovered && ok_fp ? 0 : 1;
}
