// Reproduces Table 5: time in the flux (function evaluation) phase for
// the 2.8M-vertex case on ASCI Red, comparing the second CPU of each node
// used as an extra MPI rank versus as an OpenMP thread.
//
// Two parts:
//  1. REAL host measurement: the flux kernel on the f3d::exec pool
//     (edge-colored conflict-free scatter) with 1 vs 2 worker threads,
//     demonstrating the shared-memory code path.
//  2. Virtual ASCI Red at the paper's node counts: kMpi1 / kMpi2 /
//     kHybridOmp2 flux-phase times, which reproduce the paper's crossover
//     (MPI x2 best at 256 nodes, hybrid best at 2560-3072).
//
// Usage: bench_table5_hybrid [-vertices 16000] [-reps 3]

#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "par/stepmodel.hpp"
#include "perf/machine.hpp"

namespace {
using namespace f3d;
}

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 16000);
  const int reps = opts.get_int("reps", 3);

  benchutil::print_header(
      "Table 5 - flux phase: MPI ranks vs OpenMP threads per node",
      "paper Table 5: 2.8M vertices, ASCI Red; 2 MPI/node wins at 256 "
      "nodes (456s->258s), hybrid wins at 2560+ (76s->39s vs 72s->45s)");

  // --- real threaded flux kernel --------------------------------------
  auto mesh = benchutil::make_ordered_wing(vertices);
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 2;
  cfd::EulerDiscretization disc(mesh, cfg);
  auto q = disc.make_freestream_field();
  std::vector<double> r;

  auto time_flux = [&](int threads) {
    double best = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      Timer t;
      disc.residual_threaded(q, r, threads);
      best = std::min(best, t.seconds());
    }
    return best;
  };
  const double t1 = time_flux(1);
  const double t2 = time_flux(2);
  std::printf(
      "host flux kernel (exec pool, edge-colored), %d vertices: 1 thread "
      "%.1fms, 2 threads %.1fms (host has %u hardware thread%s; "
      "single-core hosts show only the pool's sync overhead)\n\n",
      mesh.num_vertices(), t1 * 1e3, t2 * 1e3,
      std::thread::hardware_concurrency(),
      std::thread::hardware_concurrency() == 1 ? "" : "s");

  // --- virtual ASCI Red at the paper's scale ---------------------------
  auto law = benchutil::measure_surface_law(mesh, {8, 16, 32, 64});
  auto work = benchutil::calibrate_work(disc, 0, false);
  auto machine = perf::asci_red();
  const double paper_nv = 2.8e6;

  // The paper reports cumulative function-evaluation time over a full
  // run; we normalize to 1000 flux evaluations (its "couple of thousand"
  // order of magnitude).
  const double evals = 1000;
  Table t({"Nodes", "MPI 1/node", "MPI 2/node", "OMP 2/node",
           "paper(MPI 1/2, OMP 2)"});
  struct PaperRow {
    int nodes;
    const char* ref;
  };
  const PaperRow rows[] = {{256, "456s/258s, 261s"},
                           {2560, "72s/45s, 39s"},
                           {3072, "62s/40s, 33s"}};
  for (const auto& row : rows) {
    const double tm1 =
        evals * par::model_flux_phase(machine,
                                      par::synthesize_load(paper_nv, row.nodes, law),
                                      work, par::NodeMode::kMpi1);
    const double tm2 =
        evals * par::model_flux_phase(
                    machine, par::synthesize_load(paper_nv, 2 * row.nodes, law),
                    work, par::NodeMode::kMpi2);
    const double to2 =
        evals * par::model_flux_phase(machine,
                                      par::synthesize_load(paper_nv, row.nodes, law),
                                      work, par::NodeMode::kHybridOmp2);
    t.add_row({Table::num(static_cast<long long>(row.nodes)),
               Table::num(tm1, 1) + "s", Table::num(tm2, 1) + "s",
               Table::num(to2, 1) + "s", row.ref});
  }
  t.print();
  std::printf(
      "\nShape check (paper): both dual-CPU modes beat one rank per node;\n"
      "2 MPI ranks/node edges out the hybrid at 256 nodes, while at\n"
      "2560-3072 nodes the hybrid wins (cache-resident gather vs inflated\n"
      "redundant cut-edge work of 2x more, smaller subdomains).\n");
  return 0;
}
