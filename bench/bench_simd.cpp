// Three-way vectorization / precision A/B on the solver's hot paths:
//   scalar-double  — SIMD kernels disabled, double storage everywhere
//   simd-double    — explicit SIMD kernels, double storage
//   simd-mixed     — explicit SIMD kernels, float *storage* with double
//                    accumulation (Bcsr<float> operator, float ILU
//                    factors, float gradient/limiter arrays)
// on four workloads: the second-order flux residual (edge-colored
// scatter), block SpMV, ILU(0) triangular solve, and a short full psi-NKS
// solve. The mixed configurations must converge to the same tolerance as
// the double ones — precision is traded in storage only, the paper's
// Table 2 move.
//
// Measured speedups land next to the modeled expectations: the paper's
// Table 1 layout ratio (up to 5.7x) bounds what data-layout work can buy,
// and the Table 2 precision ratio (~2x on the bandwidth-bound linear
// phase, <= 2x from the traffic model) bounds what float storage can buy.
// On narrow-width or single-core hosts the measured SIMD gain can sit
// well below the modeled headroom; the JSON records both so check_docs
// can gate on "measured >= 1.3x OR honestly annotated".
//
// Usage: bench_simd [-vertices 16000] [-reps 5] [-solve-steps 8]
//                   [-out BENCH_simd.json]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "cfd/problem.hpp"
#include "common/options.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "solver/newton.hpp"
#include "sparse/ilu.hpp"

namespace {

using namespace f3d;

struct Ab3 {
  double scalar_double = 0;  ///< seconds, best of reps
  double simd_double = 0;
  double simd_mixed = 0;
  [[nodiscard]] double speedup_simd() const {
    return simd_double > 0 ? scalar_double / simd_double : 1.0;
  }
  [[nodiscard]] double speedup_mixed() const {
    return simd_mixed > 0 ? scalar_double / simd_mixed : 1.0;
  }
};

benchutil::Json to_json(const Ab3& a) {
  auto o = benchutil::Json::object();
  o.set("scalar_double_seconds", a.scalar_double)
      .set("simd_double_seconds", a.simd_double)
      .set("simd_mixed_seconds", a.simd_mixed)
      .set("speedup_simd_double", a.speedup_simd())
      .set("speedup_simd_mixed", a.speedup_mixed());
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 16000);
  const int reps = opts.get_int("reps", 5);
  const int solve_steps = opts.get_int("solve-steps", 8);
  const std::string out_path = opts.get_string("out", "BENCH_simd.json");

  benchutil::print_header(
      "SIMD + mixed precision A/B: flux / SpMV / trisolve / full solve",
      "paper Tables 1-2 context: layout buys up to 5.7x, float storage "
      "~2x on the bandwidth-bound linear phase; explicit SIMD rides the "
      "same data-layout work");

  std::printf("isa: %s (%d double lanes, simd %s)\n", simd::isa_name(),
              simd::double_lanes(),
              simd::compiled() ? "compiled in" : "NOT compiled in");

  auto mesh = benchutil::make_ordered_wing(vertices);
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 2;
  cfd::EulerDiscretization disc(mesh, cfg);
  cfd::FlowConfig cfg_mixed = cfg;
  cfg_mixed.reco_single_precision = true;  // float gradient/limiter storage
  cfd::EulerDiscretization disc_mixed(mesh, cfg_mixed);
  const auto q = disc.make_freestream_field();
  const int n = disc.num_unknowns();

  auto best_of = [&](auto&& run) {
    run();  // warm-up
    double best = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      Timer t;
      run();
      best = std::min(best, t.seconds());
    }
    return best;
  };

  // --- flux residual (second order: gradients + limiters + scatter) ---
  std::vector<double> r;
  disc.residual(q, r);
  Ab3 flux;
  {
    simd::EnabledScope off(false);
    flux.scalar_double = best_of([&] { disc.residual(q, r); });
  }
  {
    simd::EnabledScope on(true);
    flux.simd_double = best_of([&] { disc.residual(q, r); });
    flux.simd_mixed = best_of([&] { disc_mixed.residual(q, r); });
  }

  // --- block SpMV: Bcsr<double> vs Bcsr<float> (double accumulate) ----
  auto jac = disc.allocate_jacobian();
  disc.jacobian(q, jac);
  for (int i = 0; i < jac.nrows; ++i) {
    double* blk = jac.find_block(i, i);
    for (int c = 0; c < jac.nb; ++c)
      blk[static_cast<std::size_t>(c) * jac.nb + c] += 1.0;
  }
  const auto jac_f = jac.convert<float>();
  std::vector<double> x(n), y(n);
  for (int i = 0; i < n; ++i) x[i] = 1.0 + 0.001 * (i % 97);
  Ab3 spmv;
  {
    simd::EnabledScope off(false);
    spmv.scalar_double = best_of([&] { jac.spmv(x.data(), y.data()); });
  }
  {
    simd::EnabledScope on(true);
    spmv.simd_double = best_of([&] { jac.spmv(x.data(), y.data()); });
    spmv.simd_mixed = best_of([&] { jac_f.spmv(x.data(), y.data()); });
  }

  // --- ILU(0) triangular solve: double vs float factors ---------------
  const auto pat = sparse::ilu_symbolic(jac, 0);
  const auto ilu_d = sparse::ilu_factor_block<double>(jac, pat);
  const auto ilu_f = sparse::ilu_factor_block<float>(jac, pat);
  std::vector<double> z(n);
  Ab3 tri;
  {
    simd::EnabledScope off(false);
    tri.scalar_double = best_of([&] { ilu_d.solve(x.data(), z.data()); });
  }
  {
    simd::EnabledScope on(true);
    tri.simd_double = best_of([&] { ilu_d.solve(x.data(), z.data()); });
    tri.simd_mixed = best_of([&] { ilu_f.solve(x.data(), z.data()); });
  }

  // --- full psi-NKS solve ---------------------------------------------
  // First order (the implicit workhorse), 4 subdomains, fixed step count;
  // the mixed run turns on every float-storage lever at once and must
  // reach the same residual drop.
  cfd::FlowConfig cfg1 = cfg;
  cfg1.order = 1;
  cfd::EulerDiscretization disc1(mesh, cfg1);
  cfd::EulerProblem prob(disc1, -1.0);
  auto run_solve = [&](bool mixed, double& rdrop, bool& converged) {
    solver::PtcOptions po;
    po.max_steps = solve_steps;
    po.rtol = 1e-8;
    po.cfl0 = 10.0;
    po.num_subdomains = 4;
    po.gmres.restart = 20;
    po.gmres.rtol = 1e-3;
    po.gmres.max_iters = 120;
    po.matrix_single_precision = mixed;
    po.schwarz.single_precision = mixed;
    auto x0 = prob.initial_state();
    Timer t;
    auto res = solver::ptc_solve(prob, x0, po);
    rdrop = res.initial_residual > 0
                ? res.final_residual / res.initial_residual
                : 0.0;
    converged = res.converged;
    return t.seconds();
  };
  Ab3 solve;
  double drop_scalar = 0, drop_simd = 0, drop_mixed = 0;
  bool conv_scalar = false, conv_simd = false, conv_mixed = false;
  {
    simd::EnabledScope off(false);
    solve.scalar_double = run_solve(false, drop_scalar, conv_scalar);
  }
  {
    simd::EnabledScope on(true);
    solve.simd_double = run_solve(false, drop_simd, conv_simd);
    solve.simd_mixed = run_solve(true, drop_mixed, conv_mixed);
  }
  // Same-tolerance check: float storage perturbs the *preconditioner and
  // operator representation*, not the residual definition, so the runs
  // must reach a comparable residual drop over the same step count.
  const bool mixed_converges =
      conv_mixed == conv_scalar && drop_mixed <= 10.0 * drop_scalar;

  // --- modeled expectations -------------------------------------------
  const auto wd = benchutil::calibrate_work(disc1, 0, false);
  const auto wf = benchutil::calibrate_work(disc1, 0, true);
  const double traffic_precision_bound =
      wf.sparse_bytes_per_vertex_it > 0
          ? wd.sparse_bytes_per_vertex_it / wf.sparse_bytes_per_vertex_it
          : 1.0;

  // --- report ---------------------------------------------------------
  Table t({"Workload", "scalar-dbl", "simd-dbl", "simd-mixed", "simd x",
           "mixed x"});
  auto add = [&](const char* name, const Ab3& a) {
    t.add_row({name, Table::num(a.scalar_double * 1e3, 3) + "ms",
               Table::num(a.simd_double * 1e3, 3) + "ms",
               Table::num(a.simd_mixed * 1e3, 3) + "ms",
               Table::num(a.speedup_simd(), 2) + "x",
               Table::num(a.speedup_mixed(), 2) + "x"});
  };
  add("flux residual (2nd)", flux);
  add("block SpMV", spmv);
  add("ILU(0) trisolve", tri);
  add("full psi-NKS solve", solve);
  t.print();
  std::printf(
      "\nmodeled: Table 1 layout ratio up to 5.7x, Table 2 precision ~2x "
      "(traffic-model bound here: %.2fx on the linear phase)\n"
      "mixed solve residual drop %.3g vs scalar-double %.3g over %d steps "
      "(%s)\n",
      traffic_precision_bound, drop_mixed, drop_scalar, solve_steps,
      mixed_converges ? "same-tolerance check passed"
                      : "SAME-TOLERANCE CHECK FAILED");

  const double gate = 1.3;
  const bool meets_gate =
      spmv.speedup_mixed() >= gate && flux.speedup_mixed() >= gate;
  if (!meets_gate)
    std::printf(
        "note: simd-mixed below the %.1fx gate on this host; see "
        "EXPERIMENTS.md for the modeled ratio discussion\n",
        gate);

  auto root = benchutil::Json::object();
  root.set("bench", "simd")
      .set("vertices", mesh.num_vertices())
      .set("edges", mesh.num_edges())
      .set("unknowns", n)
      .set("reps", reps)
      .set("solve_steps", solve_steps)
      .set("configs", [] {
        auto a = benchutil::Json::array();
        a.push("scalar-double");
        a.push("simd-double");
        a.push("simd-mixed");
        return a;
      }());
  auto kernels = benchutil::Json::object();
  kernels.set("flux_residual", to_json(flux))
      .set("block_spmv", to_json(spmv))
      .set("ilu0_trisolve", to_json(tri))
      .set("full_solve", to_json(solve));
  root.set("kernels", std::move(kernels));
  auto model = benchutil::Json::object();
  model.set("paper_table1_layout_ratio", 5.7)
      .set("paper_table2_precision_ratio", 2.0)
      .set("traffic_model_precision_bound", traffic_precision_bound);
  root.set("model", std::move(model));
  root.set("mixed_solve", [&] {
    auto o = benchutil::Json::object();
    o.set("residual_drop_scalar_double", drop_scalar)
        .set("residual_drop_simd_double", drop_simd)
        .set("residual_drop_simd_mixed", drop_mixed)
        .set("same_tolerance", mixed_converges);
    return o;
  }());
  root.set("gate_speedup", gate).set("meets_gate", meets_gate);
  if (!meets_gate)
    root.set("gate_note",
             "measured simd-mixed speedup below gate on this host; modeled "
             "ratios recorded in `model` and discussed in EXPERIMENTS.md");
  benchutil::write_json(out_path, root);
  std::printf("wrote %s\n", out_path.c_str());

  return mixed_converges ? 0 : 1;
}
