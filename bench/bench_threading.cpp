// Shared-memory thread scaling of the solver's four hot kernels on the
// f3d::exec pool: second-order flux residual (edge-colored scatter),
// block SpMV (row-parallel), ILU(0) triangular solves (level-scheduled),
// and the Krylov dot product (fixed-block tree reduction).
//
// Every kernel is bit-deterministic by construction — the sweep checks
// that the outputs at 2..N threads are byte-identical to the 1-thread
// run, and that the level-scheduled triangular solve is byte-identical
// to the serial solve. Results (best-of-reps wall times, speedups,
// determinism verdicts) go to BENCH_threading.json via
// benchutil::write_json.
//
// Usage: bench_threading [-vertices 16000] [-reps 5] [-max-threads 4]
//                        [-out BENCH_threading.json]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "exec/pool.hpp"
#include "exec/reduce.hpp"
#include "sparse/ilu.hpp"

namespace {

using namespace f3d;

struct SweepPoint {
  int threads = 0;
  double seconds = 0;
  double speedup = 1;
  bool bit_identical = true;
};

// Time `run` (which writes `out_n` doubles at `out`) at 1..max_threads
// pool threads; best of `reps`, outputs compared bytewise to 1 thread.
template <class Run>
std::vector<SweepPoint> sweep_kernel(int max_threads, int reps, Run&& run,
                                     const double* out, std::size_t out_n) {
  std::vector<SweepPoint> pts;
  std::vector<double> baseline;
  double t1 = 0;
  for (int nt = 1; nt <= max_threads; ++nt) {
    exec::ThreadScope scope(nt);
    run();  // warm-up (and the output compared below)
    double best = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      Timer t;
      run();
      best = std::min(best, t.seconds());
    }
    SweepPoint p;
    p.threads = nt;
    p.seconds = best;
    if (nt == 1) {
      t1 = best;
      baseline.assign(out, out + out_n);
    } else {
      p.bit_identical =
          std::memcmp(baseline.data(), out, out_n * sizeof(double)) == 0;
    }
    p.speedup = best > 0 ? t1 / best : 1.0;
    pts.push_back(p);
  }
  return pts;
}

benchutil::Json to_json(const std::vector<SweepPoint>& pts) {
  auto arr = benchutil::Json::array();
  for (const auto& p : pts) {
    auto o = benchutil::Json::object();
    o.set("threads", p.threads)
        .set("seconds", p.seconds)
        .set("speedup", p.speedup)
        .set("bit_identical", p.bit_identical);
    arr.push(std::move(o));
  }
  return arr;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 16000);
  const int reps = opts.get_int("reps", 5);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int max_threads =
      opts.get_int("max-threads", std::max(4, static_cast<int>(hw)));
  const std::string out_path = opts.get_string("out", "BENCH_threading.json");

  benchutil::print_header(
      "Thread scaling - exec pool: flux / SpMV / ILU trisolve / dot",
      "paper Table 5 context: shared-memory workers inside a node; all "
      "kernels bit-deterministic for any thread count");

  auto mesh = benchutil::make_ordered_wing(vertices);
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 2;
  cfd::EulerDiscretization disc(mesh, cfg);
  const auto q = disc.make_freestream_field();
  const int n = disc.num_unknowns();

  // --- flux residual (edge-colored scatter) ---------------------------
  std::vector<double> r;
  disc.residual(q, r);  // allocate before timing
  auto flux = sweep_kernel(
      max_threads, reps, [&] { disc.residual(q, r); }, r.data(), r.size());

  // --- block SpMV (row-parallel) --------------------------------------
  auto jac = disc.allocate_jacobian();
  disc.jacobian(q, jac);
  // Pseudo-transient diagonal term: keeps the ILU(0) pivots safely
  // nonsingular at the freestream state (as in the real ptc loop).
  for (int i = 0; i < jac.nrows; ++i) {
    double* blk = jac.find_block(i, i);
    for (int c = 0; c < jac.nb; ++c)
      blk[static_cast<std::size_t>(c) * jac.nb + c] += 1.0;
  }
  std::vector<double> x(n), y(n);
  for (int i = 0; i < n; ++i) x[i] = 1.0 + 0.001 * (i % 97);
  auto spmv = sweep_kernel(
      max_threads, reps, [&] { jac.spmv(x.data(), y.data()); }, y.data(),
      y.size());

  // --- ILU(0) triangular solves (level-scheduled) ---------------------
  const auto pat = sparse::ilu_symbolic(jac, 0);
  const auto ilu = sparse::ilu_factor_block<double>(jac, pat);
  const auto fwd = sparse::lower_levels(pat);
  const auto bwd = sparse::upper_levels(pat);
  std::vector<double> z(n), zserial(n);
  ilu.solve(x.data(), zserial.data());
  auto tri = sweep_kernel(
      max_threads, reps,
      [&] { ilu.solve_levels(fwd, bwd, x.data(), z.data()); }, z.data(),
      z.size());
  const bool tri_matches_serial =
      std::memcmp(z.data(), zserial.data(), z.size() * sizeof(double)) == 0;

  // --- Krylov dot (fixed-block tree reduction) ------------------------
  double dval = 0;
  auto dot = sweep_kernel(
      max_threads, reps, [&] { dval = exec::dot(n, x.data(), y.data()); },
      &dval, 1);

  // --- vectorization A/B (same binary, runtime toggle) ----------------
  // The thread sweeps above ran in the build's default SIMD state; here
  // the two hot kernels are re-timed at max threads with explicit SIMD
  // off and on, isolating the vector-width effect from thread scaling.
  auto ab_time = [&](bool simd_on, auto&& run) {
    simd::EnabledScope scope(simd_on);
    exec::ThreadScope threads(max_threads);
    run();  // warm-up
    double best = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      Timer t;
      run();
      best = std::min(best, t.seconds());
    }
    return best;
  };
  const double flux_scalar = ab_time(false, [&] { disc.residual(q, r); });
  const double flux_simd = ab_time(true, [&] { disc.residual(q, r); });
  const double spmv_scalar =
      ab_time(false, [&] { jac.spmv(x.data(), y.data()); });
  const double spmv_simd = ab_time(true, [&] { jac.spmv(x.data(), y.data()); });

  // --- report ---------------------------------------------------------
  Table t({"Kernel", "t(1)", "t(" + std::to_string(max_threads) + ")",
           "speedup", "bit-identical"});
  auto add = [&](const char* name, const std::vector<SweepPoint>& pts) {
    const auto& last = pts.back();
    bool all_bit = true;
    for (const auto& p : pts) all_bit = all_bit && p.bit_identical;
    t.add_row({name, Table::num(pts.front().seconds * 1e3, 3) + "ms",
               Table::num(last.seconds * 1e3, 3) + "ms",
               Table::num(last.speedup, 2) + "x", all_bit ? "yes" : "NO"});
    return all_bit;
  };
  bool all_ok = true;
  all_ok &= add("flux residual", flux);
  all_ok &= add("block SpMV", spmv);
  all_ok &= add("ILU(0) trisolve", tri);
  all_ok &= add("dot", dot);
  t.print();

  const double combined1 = flux.front().seconds + spmv.front().seconds;
  const double combinedN = flux.back().seconds + spmv.back().seconds;
  const double combined_speedup = combinedN > 0 ? combined1 / combinedN : 1.0;
  std::printf(
      "\nflux+SpMV speedup at %d threads: %.2fx (host has %u hardware "
      "thread%s)\ntrisolve level schedule %s the serial solve bytewise; "
      "fwd/bwd levels: %d/%d over %d rows\n",
      max_threads, combined_speedup, hw, hw == 1 ? "" : "s",
      tri_matches_serial ? "matches" : "DOES NOT MATCH", fwd.num_levels(),
      bwd.num_levels(), jac.nrows);
  if (hw < static_cast<unsigned>(max_threads))
    std::printf(
        "note: oversubscribed sweep (threads > cores); speedups above "
        "1x need >= %d physical cores\n",
        max_threads);

  auto root = benchutil::Json::object();
  root.set("bench", "threading")
      .set("hardware_threads", static_cast<int>(hw))
      .set("reps", reps)
      .set("vertices", mesh.num_vertices())
      .set("edges", mesh.num_edges())
      .set("edge_colors", disc.edge_coloring().num_colors())
      .set("unknowns", n)
      .set("ilu_forward_levels", fwd.num_levels())
      .set("ilu_backward_levels", bwd.num_levels())
      .set("flux_spmv_speedup_at_max_threads", combined_speedup)
      .set("trisolve_matches_serial", tri_matches_serial)
      .set("all_bit_identical", all_ok);
  auto kernels = benchutil::Json::object();
  kernels.set("flux_residual", to_json(flux))
      .set("block_spmv", to_json(spmv))
      .set("ilu0_trisolve", to_json(tri))
      .set("dot", to_json(dot));
  root.set("kernels", std::move(kernels));
  auto simd_ab = benchutil::Json::object();
  simd_ab.set("simd_compiled", simd::compiled())
      .set("threads", max_threads)
      .set("flux_scalar_seconds", flux_scalar)
      .set("flux_simd_seconds", flux_simd)
      .set("flux_simd_speedup", flux_simd > 0 ? flux_scalar / flux_simd : 1.0)
      .set("spmv_scalar_seconds", spmv_scalar)
      .set("spmv_simd_seconds", spmv_simd)
      .set("spmv_simd_speedup", spmv_simd > 0 ? spmv_scalar / spmv_simd : 1.0);
  root.set("simd_ab", std::move(simd_ab));
  std::printf("SIMD A/B at %d thread(s): flux %.2fx, SpMV %.2fx (%s)\n",
              max_threads, flux_simd > 0 ? flux_scalar / flux_simd : 1.0,
              spmv_simd > 0 ? spmv_scalar / spmv_simd : 1.0,
              simd::isa_name());
  benchutil::write_json(out_path, root);
  std::printf("wrote %s\n", out_path.c_str());

  return all_ok && tri_matches_serial ? 0 : 1;
}
