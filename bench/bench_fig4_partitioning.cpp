// Reproduces Figure 4: parallel speedup relative to the base processor
// count on the Cray T3E for the 2.8M-vertex case under the two
// partitioning strategies — connectivity-seeking ("k-MeTiS"-like) versus
// strictly balanced but fragmenting ("p-MeTiS"-like).
//
// The convergence side is REAL: psi-NKS runs on actual partitions from
// both partitioners at a sweep of subdomain counts; the fragmented
// partitions measurably need more Krylov iterations (more effective
// blocks in block Jacobi — the paper's explanation). The timing side is
// the T3E virtual machine with each partitioner's own measured surface
// law and imbalance.
//
// Usage: bench_fig4_partitioning [-vertices 12000] [-steps 4]

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "mesh/graph.hpp"
#include "partition/multilevel.hpp"
#include "par/stepmodel.hpp"
#include "perf/machine.hpp"

namespace {
using namespace f3d;
}

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 12000);
  const int steps = opts.get_int("steps", 4);

  benchutil::print_header(
      "Figure 4 - effect of partitioning strategy (k-MeTiS vs p-MeTiS)",
      "paper Fig 4: T3E, 2.8M vertices; k-MeTiS (connected subdomains) "
      "scales better than p-MeTiS (balanced but fragmented) at large P");

  auto mesh = benchutil::make_ordered_wing(vertices);
  auto g = mesh::build_graph(mesh.num_vertices(), mesh.edges());
  std::printf("mesh: %d vertices\n\n", mesh.num_vertices());

  // Partition quality contrast (the mechanism).
  std::printf("partition quality at 32 subdomains:\n");
  {
    auto pk = part::kway_grow(g, 32);
    auto pm = part::multilevel_kway(g, 32);
    auto pb = part::balance_first(g, 32);
    auto qk = part::evaluate(g, pk);
    auto qm = part::evaluate(g, pm);
    auto qb = part::evaluate(g, pb);
    Table t({"Partitioner", "imbalance", "edge cut", "components/part(max)"});
    t.add_row({"kway grow (k-MeTiS-like)", Table::num(qk.imbalance, 3),
               Table::num(static_cast<long long>(qk.edge_cut)),
               Table::num(static_cast<long long>(qk.max_components))});
    t.add_row({"multilevel (closest to MeTiS)", Table::num(qm.imbalance, 3),
               Table::num(static_cast<long long>(qm.edge_cut)),
               Table::num(static_cast<long long>(qm.max_components))});
    t.add_row({"balance-first (p-MeTiS-like)", Table::num(qb.imbalance, 3),
               Table::num(static_cast<long long>(qb.edge_cut)),
               Table::num(static_cast<long long>(qb.max_components))});
    t.print();
  }

  // Real convergence with both partitioners.
  solver::SchwarzOptions so;
  so.type = solver::SchwarzType::kBlockJacobi;
  so.fill_level = 0;
  const int sweep[] = {8, 16, 32, 64};
  std::vector<std::pair<int, double>> its_k, its_b;
  std::printf("\nreal iterations per step by partitioner:\n");
  Table itab({"Subdomains", "kway its/step", "balance-first its/step"});
  for (int p : sweep) {
    auto pk = benchutil::probe_nks(mesh, p, so, steps,
                                   benchutil::Partitioner::kKway);
    auto pb = benchutil::probe_nks(mesh, p, so, steps,
                                   benchutil::Partitioner::kBalanceFirst);
    its_k.push_back({p, pk.linear_its_per_step});
    its_b.push_back({p, pb.linear_its_per_step});
    itab.add_row({Table::num(static_cast<long long>(p)),
                  Table::num(pk.linear_its_per_step, 1),
                  Table::num(pb.linear_its_per_step, 1)});
  }
  itab.print();

  // T3E projection: speedup relative to 128 PEs, both strategies.
  const double alpha_k = benchutil::fit_iteration_growth(its_k);
  const double alpha_b = benchutil::fit_iteration_growth(its_b);
  auto law_k =
      benchutil::measure_surface_law(mesh, {8, 16, 32, 64},
                                     benchutil::Partitioner::kKway);
  auto law_b =
      benchutil::measure_surface_law(mesh, {8, 16, 32, 64},
                                     benchutil::Partitioner::kBalanceFirst);

  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfd::EulerDiscretization disc(mesh, cfg);
  auto work = benchutil::calibrate_work(disc, 0, false);
  auto machine = perf::cray_t3e();
  const double paper_nv = 2.8e6;

  std::printf("\nspeedup relative to 128 PEs on the virtual T3E "
              "(its growth: kway P^%.3f, balance-first P^%.3f):\n",
              alpha_k, alpha_b);
  Table stab({"PEs", "kway speedup", "balance-first speedup", "ideal"});
  double t_k128 = 0, t_b128 = 0;
  for (int pe : {128, 256, 512, 1024}) {
    auto time_for = [&](double its8, double alpha, const par::SurfaceLaw& law) {
      par::StepCounts counts;
      counts.linear_its = its8 * std::pow(pe / 8.0, alpha);
      auto load = par::synthesize_load(paper_nv, pe, law);
      return par::model_step(machine, load, work, counts).total();
    };
    const double tk = time_for(its_k.front().second, alpha_k, law_k);
    const double tb = time_for(its_b.front().second, alpha_b, law_b);
    if (pe == 128) {
      t_k128 = tk;
      t_b128 = tb;
    }
    stab.add_row({Table::num(static_cast<long long>(pe)),
                  Table::num(t_k128 / tk, 2), Table::num(t_b128 / tb, 2),
                  Table::num(pe / 128.0, 2)});
  }
  stab.print();
  std::printf(
      "\nShape check (paper): both near-ideal at small P; the fragmented\n"
      "balance-first partitions fall behind as P grows because their\n"
      "effective block count (hence iteration count) grows faster.\n");
  return 0;
}
