// Ablation of the subdomain-solver quality (paper §2.4: "quality of
// subdomain solver (fill level, number of sweeps)") and of the
// matrix-free choice. All REAL psi-NKS solves on the wing flow:
//  * ILU(0/1/2) vs SSOR(1/2/3 sweeps) as the Schwarz subdomain solve;
//  * matrix-free FD Jacobian action vs the assembled first-order
//    Jacobian as the Krylov operator.
//
// Usage: bench_ablation_subsolver [-vertices 6000]

#include <cstdio>

#include "bench_util.hpp"
#include "cfd/problem.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "solver/newton.hpp"

namespace {

using namespace f3d;

struct RunResult {
  int steps;
  long long its;
  double seconds;
  bool converged;
};

RunResult run(const mesh::UnstructuredMesh& mesh,
              const solver::PtcOptions& popts) {
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(mesh, cfg);
  cfd::EulerProblem prob(disc, -1.0);
  auto x = prob.initial_state();
  Timer t;
  auto res = solver::ptc_solve(prob, x, popts);
  return {res.steps, res.total_linear_iterations, t.seconds(), res.converged};
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 6000);
  auto mesh = benchutil::make_ordered_wing(vertices);

  benchutil::print_header(
      "Ablation - subdomain solver quality and matrix-free choice",
      "paper 2.4: fill level / number of sweeps as the subproblem knobs; "
      "the Jacobian itself is never explicitly needed");

  solver::PtcOptions base;
  base.cfl0 = 10.0;
  base.rtol = 1e-8;
  base.max_steps = 60;
  base.num_subdomains = 8;
  std::printf("mesh: %d vertices; 8 subdomains, block Jacobi composition\n\n",
              mesh.num_vertices());

  {
    std::printf("subdomain solver (same Schwarz composition):\n");
    Table t({"subdomain solve", "steps", "linear its", "time", "converged"});
    for (int fill : {0, 1, 2}) {
      auto o = base;
      o.schwarz.subdomain_solver = solver::SubdomainSolver::kIlu;
      o.schwarz.fill_level = fill;
      auto r = run(mesh, o);
      t.add_row({"ILU(" + std::to_string(fill) + ")",
                 Table::num(static_cast<long long>(r.steps)),
                 Table::num(r.its), Table::num(r.seconds, 2) + "s",
                 r.converged ? "yes" : "NO"});
    }
    for (int sweeps : {1, 2, 3}) {
      auto o = base;
      o.schwarz.subdomain_solver = solver::SubdomainSolver::kSsor;
      o.schwarz.sweeps = sweeps;
      auto r = run(mesh, o);
      t.add_row({"SSOR(" + std::to_string(sweeps) + ")",
                 Table::num(static_cast<long long>(r.steps)),
                 Table::num(r.its), Table::num(r.seconds, 2) + "s",
                 r.converged ? "yes" : "NO"});
    }
    t.print();
  }
  {
    std::printf("\nKrylov operator (ILU(1) subdomains):\n");
    Table t({"operator", "steps", "linear its", "time", "converged"});
    for (bool mf : {true, false}) {
      auto o = base;
      o.schwarz.fill_level = 1;
      o.matrix_free = mf;
      auto r = run(mesh, o);
      t.add_row({mf ? "matrix-free FD (paper)" : "assembled 1st-order",
                 Table::num(static_cast<long long>(r.steps)),
                 Table::num(r.its), Table::num(r.seconds, 2) + "s",
                 r.converged ? "yes" : "NO"});
    }
    t.print();
  }
  std::printf(
      "\nShape check: ILU(1) is the sweet spot (paper Table 4); SSOR needs\n"
      "2+ sweeps to be competitive and costs more matvec-equivalents per\n"
      "apply; the assembled operator saves flux evaluations per iteration\n"
      "but converges the nonlinear problem more slowly (first-order\n"
      "operator for a second-order... here first-order residual, so it\n"
      "mainly shows the per-iteration cost contrast).\n");
  return 0;
}
