// Tuned-vs-default A/B on two mesh classes: run the successive-halving
// search (tune::search over tune::SolveLab's default space), persist the
// winner to the tuning DB (f3d-tunedb-v1), reload it the way a solver
// front end would (tune::Db::load + tune::apply), verify the persisted
// entry reproduces the tuned configuration bit-identically, then
// re-measure default and tuned back-to-back.
//
// Gate (never-worse): the reported tuned time must not be slower than the
// default beyond a small timing-noise margin. The guarantee is
// structural — the search falls back to the baseline configuration when
// no proposal beats it — and the bench additionally enforces it on the
// re-measured numbers: if back-to-back timing says the "tuned" config
// regressed (noise), the cell falls back to the default config and says
// so in gate_note. The JSON is honest either way: `improved == false`
// cells carry an explanatory gate_note instead of a fabricated speedup.
//
// Usage: bench_tune [-small 2500] [-medium 6000] [-width 8] [-rungs 2]
//                   [-seed 1] [-db build/tune_db.json]
//                   [-out BENCH_tune.json]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/timer.hpp"
#include "tune/db.hpp"
#include "tune/lab.hpp"
#include "tune/registry.hpp"
#include "tune/search.hpp"

namespace {

using namespace f3d;

struct Cell {
  std::string mesh_class;
  int vertices = 0;
  double default_seconds = 0;
  double tuned_seconds = 0;
  double speedup = 1.0;
  int trials = 0;
  int rejected = 0;
  bool improved = false;
  bool db_roundtrip_identical = false;
  std::string gate_note;
  obs::Json tuned_config;
};

// Median-of-3 timed evaluations of the registry's current config.
double measure(tune::SolveLab& lab, int fidelity) {
  std::vector<double> walls;
  for (int r = 0; r < 3; ++r) {
    auto outcome = lab.evaluate(fidelity);
    F3D_CHECK_MSG(outcome.ok, "measurement config failed gates: " + outcome.note);
    walls.push_back(outcome.wall_seconds);
  }
  std::sort(walls.begin(), walls.end());
  return walls[1];
}

Cell run_class(int vertices, const tune::SearchOptions& sopts,
               const std::string& db_path) {
  tune::SolveLab lab(vertices);
  tune::Registry& reg = lab.registry();
  Cell cell;
  cell.vertices = lab.num_vertices();
  cell.mesh_class = lab.db_key().mesh_class;

  const int final_fidelity = sopts.halving_rungs - 1;
  const obs::Json default_config = reg.to_json();

  std::printf("\n-- %s (%d vertices): %s search, width %d, %d rungs\n",
              cell.mesh_class.c_str(), cell.vertices,
              tune::strategy_name(sopts.strategy), sopts.halving_width,
              sopts.halving_rungs);

  auto result = tune::search(reg, tune::SolveLab::default_search_space(),
                             lab.evaluator(), sopts);
  cell.trials = result.evaluations;
  cell.rejected = result.rejected;
  std::printf("   search: %d evaluations (%d gate-rejected), improved=%s\n",
              result.evaluations, result.rejected,
              result.improved ? "yes" : "no");
  if (!result.note.empty())
    std::printf("   search note: %s\n", result.note.c_str());

  // Persist the winner and reload it the way a solver front end would.
  tune::Db db = tune::Db::load(db_path);
  tune::DbEntry entry;
  entry.key = lab.db_key();
  entry.config = result.best_config;
  entry.score = result.best_score;
  entry.baseline_score = result.baseline_score;
  entry.strategy = tune::strategy_name(sopts.strategy);
  entry.evaluations = result.evaluations;
  db.put(entry);
  F3D_CHECK_MSG(db.save(db_path), "cannot write tuning DB " + db_path);

  tune::SolveLab lab2(vertices);
  tune::Db reloaded = tune::Db::load(db_path);
  F3D_CHECK_MSG(reloaded.ok(), "tuning DB failed to reload: " + reloaded.note());
  std::string apply_note;
  const bool applied =
      tune::apply(lab2.registry(), reloaded, lab2.db_key(), &apply_note);
  F3D_CHECK_MSG(applied, "tuning DB apply failed: " + apply_note);
  cell.db_roundtrip_identical =
      lab2.registry().to_json().dump() == result.best_config.dump();
  std::printf("   db round-trip bit-identical: %s\n",
              cell.db_roundtrip_identical ? "yes" : "NO");

  // Back-to-back default-vs-tuned re-measure on the reloaded lab.
  lab2.registry().from_json(default_config);
  cell.default_seconds = measure(lab2, final_fidelity);
  lab2.registry().from_json(result.best_config);
  cell.tuned_seconds = measure(lab2, final_fidelity);
  cell.improved = result.improved;
  cell.tuned_config = result.best_config;

  // Never-worse enforcement on the measured numbers (2% noise margin):
  // a regression means the search win did not survive re-measurement —
  // fall back to the default config, honestly annotated.
  if (cell.tuned_seconds > cell.default_seconds * 1.02) {
    cell.gate_note = "tuned config regressed on re-measurement (" +
                     std::to_string(cell.tuned_seconds) + "s vs " +
                     std::to_string(cell.default_seconds) +
                     "s); fell back to compiled defaults";
    cell.tuned_seconds = cell.default_seconds;
    cell.tuned_config = default_config;
    cell.improved = false;
  } else if (!result.improved) {
    cell.gate_note = result.note.empty()
                         ? "search found no config beating the defaults; "
                           "baseline returned"
                         : result.note;
  }
  cell.speedup = cell.tuned_seconds > 0
                     ? cell.default_seconds / cell.tuned_seconds
                     : 1.0;
  std::printf("   default %.3fs   tuned %.3fs   speedup %.2fx%s\n",
              cell.default_seconds, cell.tuned_seconds, cell.speedup,
              cell.improved ? "" : "  (defaults retained)");
  return cell;
}

obs::Json cell_json(const Cell& c) {
  obs::Json j = obs::Json::object();
  j.set("mesh_class", c.mesh_class)
      .set("vertices", c.vertices)
      .set("default_seconds", c.default_seconds)
      .set("tuned_seconds", c.tuned_seconds)
      .set("speedup", c.speedup)
      .set("trials", c.trials)
      .set("rejected", c.rejected)
      .set("improved", c.improved)
      .set("db_roundtrip_identical", c.db_roundtrip_identical)
      .set("tuned_config", c.tuned_config);
  if (!c.gate_note.empty()) j.set("gate_note", c.gate_note);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const std::string out_path = opts.get_string("out", "BENCH_tune.json");
  const std::string db_path = opts.get_string("db", "build/tune_db.json");

  benchutil::print_header(
      "bench_tune: self-tuning solver, tuned vs compiled defaults",
      "the paper's whole arc — layout (Table 1), precision (Table 2), "
      "Schwarz quality (Table 4), restart/inexactness (2.4.2), CFL "
      "continuation (2.4.1) — searched automatically under correctness "
      "gates");

  tune::SearchOptions sopts;
  sopts.strategy = tune::Strategy::kHalving;
  sopts.seed = opts.get_uint64("seed", 1);
  sopts.halving_width = opts.get_int("width", 8);
  sopts.halving_rungs = opts.get_int("rungs", 2);

  std::vector<Cell> cells;
  cells.push_back(run_class(opts.get_int("small", 2500), sopts, db_path));
  cells.push_back(run_class(opts.get_int("medium", 6000), sopts, db_path));

  bool never_worse = true;
  bool any_fallback = false;
  std::string gate_note;
  for (const auto& c : cells) {
    if (c.tuned_seconds > c.default_seconds * 1.02) never_worse = false;
    if (!c.improved) any_fallback = true;
    if (!c.gate_note.empty())
      gate_note += (gate_note.empty() ? "" : "; ") + c.mesh_class + ": " +
                   c.gate_note;
  }
  if (any_fallback && gate_note.empty())
    gate_note = "at least one mesh class retained compiled defaults";

  obs::Json series = obs::Json::object();
  obs::Json arr = obs::Json::array();
  for (const auto& c : cells) arr.push(cell_json(c));
  series.set("mesh_classes", std::move(arr))
      .set("never_worse", never_worse)
      .set("db_schema", tune::kTuneDbSchema)
      .set("db_path", db_path)
      .set("search_strategy", tune::strategy_name(sopts.strategy))
      .set("search_seed", static_cast<long long>(sopts.seed));
  if (!gate_note.empty()) series.set("gate_note", gate_note);

  benchutil::write_json(out_path, series);
  std::printf("\nwrote %s and %s\n", out_path.c_str(), db_path.c_str());

  bool roundtrip_ok = true;
  for (const auto& c : cells) roundtrip_ok &= c.db_roundtrip_identical;
  if (!never_worse || !roundtrip_ok) {
    std::printf("GATE FAILURE: never_worse=%d db_roundtrip=%d\n",
                never_worse, roundtrip_ok);
    return 1;
  }
  return 0;
}
