// Availability U-curve of the distributed campaign vs. the Young/Daly
// analytic optimum.
//
// A psi-NKS campaign runs on the virtual parallel machine with a seeded
// fail-stop process armed (FaultSite::kRankFail, one opportunity per
// alive rank per step) and buddy checkpointing at a swept interval tau.
// Checkpointing too often pays the mirror tax every few steps; too rarely
// pays long rework after every failure — the classic U-curve whose
// analytic minimum is tau_opt = sqrt(2 * delta * MTBF) (Young 1974, Daly
// 2006 leading term). The bench measures the curve from the simulator and
// checks that its minimum lands within 25% (in overhead) of the Daly
// prediction for at least one (MTBF, cost) configuration.
//
// The sweep uses the spare-rank recovery policy with an inexhaustible
// spare pool so the decomposition (and hence the step time) is stationary
// — the regime the Daly model assumes. The same seed is used across the
// interval sweep, so every tau sees the identical failure sequence and
// the curve differences are pure checkpoint-policy effects.
//
// Usage: bench_availability [-procs 64] [-steps 2000] [-seeds 3]
//                           [-mtbf-steps 150]

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "par/distres.hpp"
#include "perf/machine.hpp"
#include "resilience/faults.hpp"

namespace {
using namespace f3d;

struct SweepPoint {
  int interval_steps = 0;
  double interval_s = 0;
  double measured_overhead = 0;  ///< total/useful - 1, averaged over seeds
  double daly_overhead = 0;
  double failures = 0;  ///< rank failures per run, averaged
};

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int procs = opts.get_int("procs", 64);
  const int nsteps = opts.get_int("steps", 6000);
  const int nseeds = opts.get_int("seeds", 3);
  const double mtbf_steps = opts.get_double("mtbf-steps", 300);

  benchutil::print_header(
      "Availability - buddy checkpoint interval vs Young/Daly optimum",
      "tau_opt = sqrt(2*delta*MTBF); overhead(tau) = delta/tau + "
      "(tau/2 + R)/MTBF");

  const auto machine = perf::asci_red();

  // A representative large-P decomposition, synthesized from a typical
  // tetrahedral surface law (the bench sweeps availability policy, not
  // partition quality, so a canned law is the right control).
  par::SurfaceLaw law;
  law.edges_per_vertex = 7;
  law.ghost_coeff = 2.0;
  law.cut_coeff = 4.0;
  law.imbalance_coeff = 0.5;
  law.neighbor_base = 8;
  const double total_vertices = 4000.0 * procs;
  const auto load = par::synthesize_load(total_vertices, procs, law);
  const auto domain = par::make_domain(load);

  par::WorkCoefficients work;
  work.sparse_bytes_per_vertex_it = 1200;
  work.sparse_flops_per_vertex_it = 300;
  const std::vector<par::StepCounts> steps(static_cast<std::size_t>(nsteps),
                                           par::StepCounts{});

  // Fault-free step time: converts step-denominated knobs to seconds.
  const double step_s = par::model_step(machine, load, work, steps[0]).total();

  // One failure somewhere in the machine every `mtbf_steps` steps on
  // average -> per-rank per-step probability.
  const double q = 1.0 / (mtbf_steps * procs);
  const double mtbf_s = mtbf_steps * step_s;

  par::CampaignOptions base;
  base.policy = par::RecoveryPolicy::kSpareRank;
  base.spare_ranks = 1 << 20;  // never exhausted: stationary decomposition
  base.spare_boot_s = 0.25 * step_s;
  // Full warm-restart image: state + residual (2*nb) + Jacobian and ILU
  // blocks (2*nb^2) + a 20-vector Krylov basis (20*nb) = 120 doubles per
  // vertex at nb = 4.
  base.checkpoint_doubles_per_vertex =
      2.0 * work.nb + 2.0 * work.nb * work.nb + 20.0 * work.nb;

  // Per-event costs for the analytic model, taken from the simulator's
  // own cost model so both sides price a checkpoint identically.
  double delta = 0, restart_s = 0;
  {
    resilience::FaultInjector probe(1);
    par::CampaignOptions o = base;
    o.checkpoint_interval = 0;
    o.injector = &probe;
    const auto r = par::simulate_campaign(machine, domain, work,
                                          {steps.begin(), steps.begin() + 1},
                                          o);
    delta = r.checkpoint_cost_s;
    // A recovery pulls the image from the buddy, boots the spare, and
    // re-mirrors the restored configuration: 2*delta + boot.
    restart_s = 2.0 * r.checkpoint_cost_s + base.spare_boot_s;
  }

  std::printf(
      "procs %d, %.0f vertices, step %.4f s | per-rank q %.2e "
      "(MTBF %.0f steps = %.2f s) | delta %.4f s, R %.4f s\n\n",
      procs, total_vertices, step_s, q, mtbf_steps, mtbf_s, delta, restart_s);

  const double tau_opt_s = par::daly_optimal_interval(delta, mtbf_s);
  const int tau_opt_steps =
      std::max(1, static_cast<int>(std::lround(tau_opt_s / step_s)));

  std::vector<int> grid;
  for (int t = 1; t <= 16 * tau_opt_steps; t = std::max(t + 1, t * 3 / 2))
    if (t >= std::max(1, tau_opt_steps / 8)) grid.push_back(t);

  std::vector<SweepPoint> curve;
  for (int tau : grid) {
    SweepPoint pt;
    pt.interval_steps = tau;
    pt.interval_s = tau * step_s;
    for (int seed = 1; seed <= nseeds; ++seed) {
      resilience::FaultInjector injector(static_cast<std::uint64_t>(seed));
      resilience::FaultPlan fail;
      fail.probability = q;
      injector.arm(resilience::FaultSite::kRankFail, fail);
      par::CampaignOptions o = base;
      o.checkpoint_interval = tau;
      o.injector = &injector;
      const auto r = par::simulate_campaign(machine, domain, work, steps, o);
      pt.measured_overhead +=
          r.useful_seconds() > 0
              ? r.total_seconds() / r.useful_seconds() - 1.0
              : 0;
      pt.failures += r.rank_failures;
    }
    pt.measured_overhead /= nseeds;
    pt.failures /= nseeds;
    pt.daly_overhead =
        par::daly_overhead(pt.interval_s, delta, restart_s, mtbf_s);
    curve.push_back(pt);
  }

  Table tab({"tau (steps)", "tau (s)", "overhead meas", "overhead Daly",
             "failures/run"});
  std::size_t best = 0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const auto& pt = curve[i];
    if (pt.measured_overhead < curve[best].measured_overhead) best = i;
    tab.add_row({std::to_string(pt.interval_steps),
                 Table::num(pt.interval_s, 3),
                 Table::num(100.0 * pt.measured_overhead, 2) + " %",
                 Table::num(100.0 * pt.daly_overhead, 2) + " %",
                 Table::num(pt.failures, 1)});
  }
  tab.print();

  const double best_overhead = curve[best].measured_overhead;
  const double daly_at_opt =
      par::daly_overhead(tau_opt_s, delta, restart_s, mtbf_s);
  const double rel =
      daly_at_opt > 0 ? std::fabs(best_overhead - daly_at_opt) / daly_at_opt
                      : 0;
  std::printf(
      "\nmeasured minimum: tau = %d steps (%.3f s), overhead %.2f %%\n",
      curve[best].interval_steps, curve[best].interval_s,
      100.0 * best_overhead);
  std::printf("Daly optimum:     tau = %.3f s (~%d steps), overhead %.2f %%\n",
              tau_opt_s, tau_opt_steps, 100.0 * daly_at_opt);
  std::printf("minimum-overhead agreement: %.1f %% %s\n", 100.0 * rel,
              rel <= 0.25 ? "(within 25% - VALIDATED)" : "(outside 25%)");
  return rel <= 0.25 ? 0 : 1;
}
