// Reproduces Figure 3: TLB misses (log scale in the paper) and secondary
// (L2) cache misses for the layout configurations, measured on one
// Origin 2000 R10000 with hardware counters in the paper — here with the
// trace-driven cache/TLB simulator configured to R10000-like geometry
// (32 KB 2-way L1 / 4 MB 2-way L2 with 128 B lines / 64-entry TLB).
//
// Workload per configuration: one first-order flux evaluation plus one
// Jacobian SpMV on the 22,677-vertex wing mesh (the paper's case).
// Configurations mirror Figure 3's bars: NOER (no edge reordering, i.e.
// colored vector-machine order on a shuffled mesh) vs reordered, crossed
// with interlacing and blocking.
//
// Usage: bench_fig3_cache_tlb [-vertices 22677]

#include <cstdio>

#include "bench_util.hpp"
#include "cfd/euler.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "mesh/ordering.hpp"
#include "simcache/traced_kernels.hpp"
#include "sparse/assembly.hpp"

namespace {

using namespace f3d;

struct Counts {
  std::uint64_t tlb = 0;
  std::uint64_t l2 = 0;
};

Counts run_config(const mesh::UnstructuredMesh& mesh, bool interlace,
                  bool blocking) {
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfg.layout = interlace ? sparse::FieldLayout::kInterlaced
                         : sparse::FieldLayout::kNonInterlaced;
  cfd::EulerDiscretization disc(mesh, cfg);
  const int nb = cfg.nb();

  auto stencil = sparse::stencil_from_mesh(mesh);
  auto values = sparse::synthetic_values(stencil);

  auto q = disc.make_freestream_field();
  std::vector<double> r, grad, phi;
  disc.gradients(q, grad);
  disc.limiters(q, grad, phi);

  simcache::MemoryTracer tracer;  // R10000-like defaults
  // Warm run then counted run, so cold (compulsory) misses don't swamp
  // the layout-dependent conflict/capacity misses Fig 3 contrasts. Two
  // second-order flux evaluations per counted step, like a real step.
  auto flux = [&] {
    simcache::traced_flux_second_order(mesh, disc.dual(), cfg, q, grad, phi,
                                       r, tracer);
  };
  flux();
  std::vector<double> x(static_cast<std::size_t>(stencil.n) * nb, 1.0);
  std::vector<double> y(x.size());

  if (blocking) {
    auto a = sparse::build_bcsr(stencil, nb, values);
    simcache::traced_spmv_bcsr(a, x.data(), y.data(), tracer);
    tracer.reset_counters();
    flux();
    simcache::traced_spmv_bcsr(a, x.data(), y.data(), tracer);
    flux();
  } else {
    auto a = sparse::build_point_csr(stencil, nb, values, cfg.layout);
    simcache::traced_spmv_csr(a, x.data(), y.data(), tracer);
    tracer.reset_counters();
    flux();
    simcache::traced_spmv_csr(a, x.data(), y.data(), tracer);
    flux();
  }
  return Counts{tracer.tlb().misses(), tracer.l2().misses()};
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 22677);

  benchutil::print_header(
      "Figure 3 - TLB and secondary cache misses by data layout",
      "paper Fig 3: R10000 hardware counters, 22,677-vertex case; edge "
      "reordering cuts TLB misses ~100x, L2 misses ~3.5x");

  auto noer = benchutil::make_shuffled_wing(vertices);
  noer.permute_edges(mesh::edge_order_colored(noer));
  auto ordered = benchutil::make_shuffled_wing(vertices);
  mesh::apply_best_ordering(ordered);
  std::printf("mesh: %d vertices, %d edges\n", noer.num_vertices(),
              noer.num_edges());
  std::printf("simulated hierarchy: 32KB/2-way L1, 4MB/2-way L2 (128B "
              "lines), 64-entry TLB (4KB pages)\n");

  struct Row {
    const char* name;
    bool reorder, interlace, blocking;
  };
  const Row rows[] = {
      {"NOER noninterlaced", false, false, false},
      {"NOER interlaced", false, true, false},
      {"NOER interlaced+blocked", false, true, true},
      {"Reordered noninterlaced", true, false, false},
      {"Reordered interlaced", true, true, false},
      {"Reordered interlaced+blocked", true, true, true},
  };

  Table table({"Configuration", "TLB misses", "L2 misses"});
  std::uint64_t tlb0 = 0, l20 = 0, tlb_best = 0, l2_best = 0;
  for (const auto& row : rows) {
    auto c = run_config(row.reorder ? ordered : noer, row.interlace,
                        row.blocking);
    if (!row.reorder && !row.interlace && !row.blocking) {
      tlb0 = c.tlb;
      l20 = c.l2;
    }
    if (row.reorder && row.interlace && row.blocking) {
      tlb_best = c.tlb;
      l2_best = c.l2;
    }
    table.add_row({row.name, Table::num(static_cast<long long>(c.tlb)),
                   Table::num(static_cast<long long>(c.l2))});
  }
  table.print();
  // 3C decomposition for the two extreme configs — the direct check of
  // the paper's Eq. 1/2 *conflict*-miss framing. Eq. 1's regime needs the
  // gathered-vector span to exceed the cache (at the paper's 2.8M-vertex
  // scale the non-interlaced span is ~90 MB >> 4 MB); to exhibit it at
  // host scale we classify against a proportionally smaller 256 KB
  // 2-way cache, so span(non-interlaced) > C > span(interlaced).
  std::printf("\n3C decomposition of vector-gather misses (SpMV against a "
              "scaled 256KB 2-way cache):\n");
  {
    auto classify = [&](const mesh::UnstructuredMesh& mm, bool interlace) {
      cfd::FlowConfig cfg2;
      cfg2.model = cfd::Model::kIncompressible;
      cfg2.layout = interlace ? sparse::FieldLayout::kInterlaced
                              : sparse::FieldLayout::kNonInterlaced;
      auto st = sparse::stencil_from_mesh(mm);
      auto vals = sparse::synthetic_values(st);
      auto a = sparse::build_point_csr(st, 4, vals, cfg2.layout);
      std::vector<double> xx(static_cast<std::size_t>(a.n), 1.0), yy(xx.size());
      simcache::CacheModel l2(256 * 1024, 128, 2, /*classify=*/true);
      // Trace only the x-gathers and y-writes: Eq. 1/2 bound the misses of
      // the *vector* working set; the matrix stream is compulsory traffic
      // in every layout.
      struct VecOnly {
        simcache::CacheModel* c;
        const double* lo;
        const double* hi;
        void touch(const void* p, std::size_t bytes) {
          if (p < static_cast<const void*>(lo) ||
              p >= static_cast<const void*>(hi))
            return;
          auto addr = reinterpret_cast<std::uint64_t>(p);
          for (std::uint64_t q = addr & ~127ull; q <= addr + bytes - 1;
               q += 128)
            c->access(q);
        }
      } tracer{&l2, xx.data(), xx.data() + xx.size()};
      simcache::traced_spmv_csr(a, xx.data(), yy.data(), tracer);  // warm
      l2.reset_counters();
      simcache::traced_spmv_csr(a, xx.data(), yy.data(), tracer);
      return l2;
    };
    Table t3({"Config", "compulsory", "capacity", "conflict"});
    auto worst = classify(noer, false);
    auto best = classify(ordered, true);
    t3.add_row({"NOER noninterlaced",
                Table::num(static_cast<long long>(worst.compulsory_misses())),
                Table::num(static_cast<long long>(worst.capacity_misses())),
                Table::num(static_cast<long long>(worst.conflict_misses()))});
    t3.add_row({"Reordered interlaced",
                Table::num(static_cast<long long>(best.compulsory_misses())),
                Table::num(static_cast<long long>(best.capacity_misses())),
                Table::num(static_cast<long long>(best.conflict_misses()))});
    t3.print();
  }

  std::printf("\nworst/best TLB miss ratio: %.1fx (paper: ~2 orders of "
              "magnitude)\n",
              tlb_best ? static_cast<double>(tlb0) / tlb_best : 0.0);
  std::printf("worst/best L2 miss ratio:  %.1fx (paper: ~3.5x from edge "
              "reordering)\n",
              l2_best ? static_cast<double>(l20) / l2_best : 0.0);
  return 0;
}
