#include "bench_util.hpp"

#include <cmath>
#include <cstdio>

#include "cfd/problem.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "mesh/ordering.hpp"
#include "obs/trace.hpp"
#include "partition/multilevel.hpp"
#include "sparse/ilu.hpp"

namespace f3d::benchutil {

void print_header(const std::string& experiment, const std::string& paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

mesh::UnstructuredMesh make_shuffled_wing(int target_vertices, unsigned seed) {
  auto m = mesh::generate_wing_mesh_with_size(target_vertices);
  mesh::shuffle_mesh(m, seed);
  return m;
}

mesh::UnstructuredMesh make_ordered_wing(int target_vertices, unsigned seed) {
  auto m = make_shuffled_wing(target_vertices, seed);
  mesh::apply_best_ordering(m);
  return m;
}

par::WorkCoefficients calibrate_work(const cfd::EulerDiscretization& disc,
                                     int ilu_fill, bool single_precision) {
  par::WorkCoefficients w;
  w.nb = disc.nb();
  w.flux_flops_per_edge =
      disc.residual_flops() / std::max(1, disc.mesh().num_edges());

  // Sparse traffic per owned vertex per Krylov iteration: one ILU(k)
  // triangular solve (stream the factors once) plus ~6 Krylov vector
  // passes (orthogonalization + update).
  const auto& st = disc.stencil();
  const double blocks_per_vertex =
      static_cast<double>(st.nnz()) / std::max(1, st.n);
  // ILU(k) fill growth measured coarsely: level 1 ~ 1.6x, level 2 ~ 2.3x
  // the level-0 block count on tetrahedral stencils.
  const double fill_factor = ilu_fill == 0 ? 1.0 : (ilu_fill == 1 ? 1.6 : 2.3);
  const double factor_scalar_bytes = single_precision ? 4.0 : 8.0;
  const double factor_bytes = blocks_per_vertex * fill_factor * w.nb * w.nb *
                              factor_scalar_bytes;
  const double vector_bytes = 6.0 * w.nb * 8.0;
  w.sparse_bytes_per_vertex_it = factor_bytes + vector_bytes;
  w.sparse_flops_per_vertex_it =
      2.0 * blocks_per_vertex * fill_factor * w.nb * w.nb + 8.0 * w.nb;
  // Single-precision runs ship float halos: half the ghost-exchange
  // payload per scatter (the beta term of the comm model).
  w.halo_scalar_bytes = single_precision ? 4.0 : 8.0;
  return w;
}

NksProbe probe_nks(const mesh::UnstructuredMesh& mesh, int subdomains,
                   const solver::SchwarzOptions& schwarz, int steps,
                   Partitioner partitioner, double rtol) {
  cfd::FlowConfig cfg;
  cfg.model = cfd::Model::kIncompressible;
  cfg.order = 1;
  cfd::EulerDiscretization disc(mesh, cfg);
  cfd::EulerProblem prob(disc, -1.0);

  auto g = mesh::build_graph(mesh.num_vertices(), mesh.edges());
  solver::PtcOptions opts;
  opts.max_steps = steps;
  opts.rtol = rtol;
  opts.cfl0 = 10.0;
  opts.num_subdomains = subdomains;
  opts.schwarz = schwarz;
  opts.gmres.restart = 20;
  opts.gmres.rtol = 1e-3;
  opts.gmres.max_iters = 120;
  switch (partitioner) {
    case Partitioner::kKway:
      opts.partition = part::kway_grow(g, subdomains);
      break;
    case Partitioner::kBalanceFirst:
      opts.partition = part::balance_first(g, subdomains);
      break;
    case Partitioner::kMultilevel:
      opts.partition = part::multilevel_kway(g, subdomains);
      break;
  }

  auto x = prob.initial_state();
  Timer t;
  auto res = solver::ptc_solve(prob, x, opts);
  NksProbe probe;
  probe.subdomains = subdomains;
  probe.steps = res.steps;
  probe.total_linear_its = res.total_linear_iterations;
  probe.linear_its_per_step =
      res.steps > 0 ? static_cast<double>(res.total_linear_iterations) /
                          res.steps
                    : 0;
  probe.flux_evals_per_step =
      res.steps > 0
          ? static_cast<double>(res.function_evaluations) / res.steps
          : 0;
  probe.wall_seconds = t.seconds();
  probe.converged = res.converged;
  return probe;
}

double fit_iteration_growth(
    const std::vector<std::pair<int, double>>& its_by_procs) {
  // Least squares slope of log(its) vs log(P).
  F3D_CHECK(its_by_procs.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(its_by_procs.size());
  for (const auto& [p, its] : its_by_procs) {
    const double x = std::log(static_cast<double>(p));
    const double y = std::log(std::max(its, 1e-9));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

par::SurfaceLaw measure_surface_law(const mesh::UnstructuredMesh& mesh,
                                    const std::vector<int>& part_counts,
                                    Partitioner partitioner) {
  auto g = mesh::build_graph(mesh.num_vertices(), mesh.edges());
  std::vector<par::PartitionLoad> samples;
  for (int np : part_counts) {
    part::Partition p;
    switch (partitioner) {
      case Partitioner::kKway:
        p = part::kway_grow(g, np);
        break;
      case Partitioner::kBalanceFirst:
        p = part::balance_first(g, np);
        break;
      case Partitioner::kMultilevel:
        p = part::multilevel_kway(g, np);
        break;
    }
    samples.push_back(par::measure_load(g, p));
  }
  return par::fit_surface_law(samples);
}

namespace {

// "results/BENCH_threading.json" -> "threading"; used for the envelope's
// meta.experiment when the caller's payload is not already enveloped.
std::string experiment_from_path(const std::string& path) {
  std::string name = path;
  const std::size_t slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.rfind("BENCH_", 0) == 0) name = name.substr(6);
  const std::size_t dot = name.rfind('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name.empty() ? "unknown" : name;
}

}  // namespace

void write_json(const std::string& path, const Json& v) {
  Json out = obs::is_bench_report(v)
                 ? v
                 : obs::make_bench_report(experiment_from_path(path), v);
  // Every artifact records the host ISA the numbers were produced on —
  // a SIMD A/B ratio is meaningless without the vector width behind it.
  const Json* meta = out.find("meta");
  if (meta != nullptr && meta->find("host_isa") == nullptr) {
    Json isa = Json::object();
    isa.set("isa", simd::isa_name())
        .set("arch", simd::target_arch())
        .set("double_lanes", simd::double_lanes())
        .set("simd_compiled", simd::compiled())
        .set("simd_enabled", simd::enabled());
    Json meta2 = *meta;
    meta2.set("host_isa", std::move(isa));
    out.set("meta", std::move(meta2));
  }
  F3D_CHECK_MSG(obs::write_json_file(path, out), "cannot write " + path);
}

}  // namespace f3d::benchutil
