// Fault-isolated scenario fleet under a seeded fault storm: the serving
// campaign behind the paper's "many configurations, one mesh" methodology
// run as a resident service.
//
// A >= 64-scenario Mach x AoA x mesh-class sweep is served three ways:
//
//   clean         no injected faults, journal on. Gates the fleet's
//                 serving overhead: wall time within 10% of the same
//                 batch served with every robustness layer off.
//   storm-none    seeded fault storm (fragile knob sets, poison work
//                 budgets, straggler delays), retry ladder DISABLED
//                 (one strike). Fragile scenarios die alongside poison.
//   storm-ladder  same storm, full retry/backoff ladder + quarantine.
//                 Must complete 100% of non-poison scenarios and
//                 quarantine 100% of injected poison.
//
// Plus two robustness probes: a mid-batch kill-and-restart (journal
// replay must lose nothing and double-commit nothing) and a determinism
// re-run (bit-identical per-scenario solution CRCs, identical
// quarantine set).
//
// Writes BENCH_fleet.json (f3d-bench-v1 envelope; gated by
// scripts/check_docs.py). Exit status enforces the same gates.
//
// Usage: bench_fleet [-vertices 220] [-workers 4] [-out BENCH_fleet.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "fleet/journal.hpp"
#include "fleet/service.hpp"
#include "fleet/spec.hpp"

namespace {

using namespace f3d;

fleet::BatchSpec make_sweep(int vertices) {
  char text[512];
  std::snprintf(text, sizeof(text), R"({
    "schema": "f3d-fleet-batch-v1",
    "name": "storm-sweep",
    "seed": 3,
    "defaults": {"rtol": 1e-4, "max_steps": 80},
    "sweep": {"vertices": [%d, %d],
              "mach": [0.2, 0.28, 0.34, 0.4],
              "alpha_deg": [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5]}
  })",
                vertices, vertices + vertices / 2);
  return fleet::BatchSpec::parse(text);
}

struct Storm {
  std::set<int> fragile;  ///< bad knob configs (rung 1 recovers them)
  std::set<int> poison;   ///< hopeless budgets (nothing recovers them)
  std::set<int> straggle; ///< injected worker delay
};

/// Seeded storm: every 7th scenario gets a knob set its registry rejects,
/// every 11th a work budget no configuration can converge under, every
/// 5th a straggler delay. Deterministic in the spec alone.
Storm inject_storm(fleet::BatchSpec& spec) {
  Storm storm;
  for (auto& sc : spec.scenarios) {
    if (sc.id % 11 == 3) {
      sc.work_units = 5;
      storm.poison.insert(sc.id);
    } else if (sc.id % 7 == 1) {
      sc.knobs = obs::Json::object();
      sc.knobs.set("ptc.no_such_knob", 1.0);
      storm.fragile.insert(sc.id);
    }
    if (sc.id % 5 == 2) {
      sc.delay_ms = 5;
      storm.straggle.insert(sc.id);
    }
  }
  return storm;
}

struct Lane {
  std::string name;
  int completed = 0;
  int quarantined = 0;
  double wall_s = 0;
  double scenarios_per_hour = 0;
  double p50_latency_s = 0;
  double p99_latency_s = 0;
};

Lane summarize(const std::string& name, const fleet::BatchResult& res) {
  Lane lane;
  lane.name = name;
  lane.completed = res.committed;
  lane.quarantined = res.quarantined;
  lane.wall_s = res.wall_s;
  lane.scenarios_per_hour =
      res.wall_s > 0 ? static_cast<double>(res.committed) * 3600.0 / res.wall_s
                     : 0;
  std::vector<double> lat;
  for (const auto& sc : res.scenarios)
    if (!sc.replayed && sc.wall_s > 0) lat.push_back(sc.wall_s);
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    lane.p50_latency_s = lat[lat.size() / 2];
    lane.p99_latency_s = lat[std::min(
        lat.size() - 1, static_cast<std::size_t>(0.99 * static_cast<double>(
                                                            lat.size())))];
  }
  return lane;
}

obs::Json lane_json(const Lane& lane) {
  obs::Json j = obs::Json::object();
  j.set("name", lane.name)
      .set("completed", static_cast<long long>(lane.completed))
      .set("quarantined", static_cast<long long>(lane.quarantined))
      .set("wall_s", lane.wall_s)
      .set("scenarios_per_hour", lane.scenarios_per_hour)
      .set("p50_latency_s", lane.p50_latency_s)
      .set("p99_latency_s", lane.p99_latency_s);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int vertices = opts.get_int("vertices", 220);
  const int workers = opts.get_int("workers", 4);
  const std::string out_path = opts.get_string("out", "BENCH_fleet.json");
  const std::string journal_path = out_path + ".journal";

  benchutil::print_header(
      "Fault-isolated scenario fleet - journaled serving under a storm",
      "three lanes: clean overhead, storm without mitigation, storm with "
      "the full retry/quarantine ladder; plus kill-and-restart and "
      "determinism probes");

  const fleet::BatchSpec clean_spec = make_sweep(vertices);
  fleet::BatchSpec storm_spec = clean_spec;
  const Storm storm = inject_storm(storm_spec);
  const int n = static_cast<int>(clean_spec.scenarios.size());
  const int poison = static_cast<int>(storm.poison.size());
  std::printf("sweep: %d scenarios, storm: %d fragile, %d poison, %d "
              "stragglers, %d workers\n\n",
              n, static_cast<int>(storm.fragile.size()), poison,
              static_cast<int>(storm.straggle.size()), workers);

  fleet::FleetOptions base;
  base.workers = workers;
  base.backoff_base_ms = 0;

  // --- lane 0 (reference): every robustness layer off ----------------------
  // No journal, one strike, no admission: the cheapest possible serve of
  // the same batch, which the clean lane's overhead is measured against.
  // Two reps each, best-of, to keep the gate off the noise floor.
  double bare_wall = 1e99, clean_wall = 1e99;
  fleet::BatchResult clean_res;
  for (int rep = 0; rep < 2; ++rep) {
    auto o = base;
    o.max_attempts = 1;
    fleet::Service svc(o);
    bare_wall = std::min(bare_wall, svc.serve(clean_spec).wall_s);
  }
  for (int rep = 0; rep < 2; ++rep) {
    auto o = base;
    o.journal_path = journal_path;
    fleet::Service svc(o);
    const auto res = svc.serve(clean_spec);
    if (res.wall_s < clean_wall) {
      clean_wall = res.wall_s;
      clean_res = res;
    }
  }
  const double overhead_frac = (clean_wall - bare_wall) / bare_wall;
  Lane clean = summarize("clean", clean_res);
  clean.wall_s = clean_wall;
  std::printf("clean: %d/%d committed, %.3f s (bare %.3f s, overhead "
              "%.1f %%)\n",
              clean.completed, n, clean_wall, bare_wall,
              100.0 * overhead_frac);

  // --- storm lanes ---------------------------------------------------------
  fleet::BatchResult storm_none_res, storm_ladder_res;
  {
    auto o = base;
    o.max_attempts = 1;  // mitigation off: one strike and you're out
    fleet::Service svc(o);
    storm_none_res = svc.serve(storm_spec);
  }
  {
    auto o = base;
    o.journal_path = journal_path;
    o.max_attempts = 3;
    o.backoff_base_ms = 1;
    fleet::Service svc(o);
    storm_ladder_res = svc.serve(storm_spec);
  }
  const Lane storm_none = summarize("storm-none", storm_none_res);
  const Lane storm_ladder = summarize("storm-ladder", storm_ladder_res);

  int poison_quarantined = 0;
  bool non_poison_all_committed = true;
  std::set<int> ladder_quarantine_set;
  for (const auto& sc : storm_ladder_res.scenarios) {
    if (sc.status == fleet::ScenarioStatus::kQuarantined) {
      ladder_quarantine_set.insert(sc.id);
      if (storm.poison.count(sc.id) != 0) ++poison_quarantined;
    } else if (storm.poison.count(sc.id) == 0 &&
               sc.status != fleet::ScenarioStatus::kCommitted) {
      non_poison_all_committed = false;
    }
  }
  const double non_poison_completed_frac =
      static_cast<double>(storm_ladder.completed) /
      static_cast<double>(n - poison);

  Table tab({"lane", "committed", "quarantined", "wall s", "scen/h",
             "p50 s", "p99 s"});
  for (const Lane* lane :
       {static_cast<const Lane*>(&clean), &storm_none, &storm_ladder})
    tab.add_row({lane->name, std::to_string(lane->completed),
                 std::to_string(lane->quarantined),
                 Table::num(lane->wall_s, 3),
                 Table::num(lane->scenarios_per_hour, 0),
                 Table::num(lane->p50_latency_s, 4),
                 Table::num(lane->p99_latency_s, 4)});
  tab.print();

  // --- kill-and-restart probe ----------------------------------------------
  const int kill_after = n / 3;
  int lost = 0, double_committed = 0, resumed_completed = 0;
  {
    auto o = base;
    o.journal_path = journal_path;
    o.max_attempts = 3;
    o.kill_after_commits = kill_after;
    fleet::Service svc(o);
    const auto before = svc.serve(storm_spec);
    std::set<int> committed_before;
    for (const auto& sc : before.scenarios)
      if (sc.status == fleet::ScenarioStatus::kCommitted)
        committed_before.insert(sc.id);

    auto r = base;
    r.journal_path = journal_path;
    r.max_attempts = 3;
    r.resume = true;
    fleet::Service resume_svc(r);
    const auto after = resume_svc.serve(storm_spec);
    resumed_completed = after.committed;
    for (const auto& sc : after.scenarios) {
      if (sc.status == fleet::ScenarioStatus::kPending) ++lost;
      // A scenario committed before the kill must come back replayed
      // from the journal, never re-solved.
      if (committed_before.count(sc.id) != 0 && !sc.replayed)
        ++double_committed;
    }
    std::printf("\nkill/restart: killed after %d commits -> resumed to "
                "%d committed, %d lost, %d double-committed\n",
                kill_after, resumed_completed, lost, double_committed);
  }

  // --- determinism probe ---------------------------------------------------
  bool deterministic = true;
  {
    fleet::Service a(base), b(base);
    const auto ra = a.serve(clean_spec);
    const auto rb = b.serve(clean_spec);
    for (int i = 0; i < n; ++i)
      deterministic &= ra.scenarios[static_cast<std::size_t>(i)].solution_crc ==
                       rb.scenarios[static_cast<std::size_t>(i)].solution_crc;
    // And the storm quarantine set reproduces exactly.
    auto o = base;
    o.max_attempts = 3;
    fleet::Service c(o);
    const auto rc = c.serve(storm_spec);
    std::set<int> qset;
    for (const auto& sc : rc.scenarios)
      if (sc.status == fleet::ScenarioStatus::kQuarantined)
        qset.insert(sc.id);
    deterministic &= qset == ladder_quarantine_set;
  }
  std::printf("deterministic re-run (solutions + quarantine set): %s\n",
              deterministic ? "yes" : "NO");

  // --- gates ---------------------------------------------------------------
  const bool ok_ladder = non_poison_all_committed &&
                         storm_ladder.completed == n - poison;
  const bool ok_poison = poison_quarantined == poison;
  const bool ok_storm_delta = storm_none.completed < storm_ladder.completed;
  const bool ok_exactly_once = lost == 0 && double_committed == 0;
  const bool ok_overhead = overhead_frac <= 0.10;
  std::printf(
      "\ngates: non-poison %d/%d %s | poison quarantined %d/%d %s | "
      "storm-none %d < storm-ladder %d %s | kill/restart lost %d dup %d %s "
      "| overhead %.1f %% %s | deterministic %s\n",
      storm_ladder.completed, n - poison, ok_ladder ? "(OK)" : "(FAIL)",
      poison_quarantined, poison, ok_poison ? "(OK)" : "(FAIL)",
      storm_none.completed, storm_ladder.completed,
      ok_storm_delta ? "(OK)" : "(FAIL)", lost, double_committed,
      ok_exactly_once ? "(OK)" : "(FAIL)", 100.0 * overhead_frac,
      ok_overhead ? "(<= 10% - OK)" : "(FAIL)",
      deterministic ? "(OK)" : "(FAIL)");

  // --- report --------------------------------------------------------------
  obs::Json lanes = obs::Json::array();
  lanes.push(lane_json(clean));
  lanes.push(lane_json(storm_none));
  lanes.push(lane_json(storm_ladder));
  obs::Json kill = obs::Json::object();
  kill.set("killed_after", static_cast<long long>(kill_after))
      .set("lost", static_cast<long long>(lost))
      .set("double_committed", static_cast<long long>(double_committed))
      .set("resumed_completed", static_cast<long long>(resumed_completed));
  benchutil::Json series =
      obs::Json::object()
          .set("scenarios", static_cast<long long>(n))
          .set("workers", static_cast<long long>(workers))
          .set("lanes", std::move(lanes))
          .set("poison_injected", static_cast<long long>(poison))
          .set("poison_quarantined",
               static_cast<long long>(poison_quarantined))
          .set("fragile_injected",
               static_cast<long long>(storm.fragile.size()))
          .set("non_poison_completed_frac_ladder", non_poison_completed_frac)
          .set("kill_restart", std::move(kill))
          .set("overhead_frac", overhead_frac)
          .set("deterministic_rerun", deterministic);
  benchutil::write_json(out_path, series);
  std::remove(journal_path.c_str());
  std::printf("wrote %s\n", out_path.c_str());

  return ok_ladder && ok_poison && ok_storm_delta && ok_exactly_once &&
                 ok_overhead && deterministic
             ? 0
             : 1;
}
