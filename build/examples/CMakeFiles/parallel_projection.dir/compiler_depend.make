# Empty compiler generated dependencies file for parallel_projection.
# This may be replaced when dependencies are built.
