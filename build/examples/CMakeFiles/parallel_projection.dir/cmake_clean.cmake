file(REMOVE_RECURSE
  "CMakeFiles/parallel_projection.dir/parallel_projection.cpp.o"
  "CMakeFiles/parallel_projection.dir/parallel_projection.cpp.o.d"
  "parallel_projection"
  "parallel_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
