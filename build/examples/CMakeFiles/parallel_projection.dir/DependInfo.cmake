
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/parallel_projection.cpp" "examples/CMakeFiles/parallel_projection.dir/parallel_projection.cpp.o" "gcc" "examples/CMakeFiles/parallel_projection.dir/parallel_projection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/f3d_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/f3d_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/f3d_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/f3d_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/cfd/CMakeFiles/f3d_cfd.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/f3d_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/f3d_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/f3d_par.dir/DependInfo.cmake"
  "/root/repo/build/src/simcache/CMakeFiles/f3d_simcache.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/f3d_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
