# Empty dependencies file for layout_tuning.
# This may be replaced when dependencies are built.
