# Empty compiler generated dependencies file for design_cycle.
# This may be replaced when dependencies are built.
