file(REMOVE_RECURSE
  "CMakeFiles/design_cycle.dir/design_cycle.cpp.o"
  "CMakeFiles/design_cycle.dir/design_cycle.cpp.o.d"
  "design_cycle"
  "design_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
