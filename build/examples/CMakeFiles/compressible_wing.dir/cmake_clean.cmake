file(REMOVE_RECURSE
  "CMakeFiles/compressible_wing.dir/compressible_wing.cpp.o"
  "CMakeFiles/compressible_wing.dir/compressible_wing.cpp.o.d"
  "compressible_wing"
  "compressible_wing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressible_wing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
