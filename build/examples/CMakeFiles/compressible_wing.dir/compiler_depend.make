# Empty compiler generated dependencies file for compressible_wing.
# This may be replaced when dependencies are built.
