file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cache_tlb.dir/bench_fig3_cache_tlb.cpp.o"
  "CMakeFiles/bench_fig3_cache_tlb.dir/bench_fig3_cache_tlb.cpp.o.d"
  "bench_fig3_cache_tlb"
  "bench_fig3_cache_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cache_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
