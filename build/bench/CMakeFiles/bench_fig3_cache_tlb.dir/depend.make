# Empty dependencies file for bench_fig3_cache_tlb.
# This may be replaced when dependencies are built.
