# Empty compiler generated dependencies file for f3d_bench_util.
# This may be replaced when dependencies are built.
