file(REMOVE_RECURSE
  "libf3d_bench_util.a"
)
