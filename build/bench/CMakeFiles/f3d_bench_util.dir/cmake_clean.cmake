file(REMOVE_RECURSE
  "CMakeFiles/f3d_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/f3d_bench_util.dir/bench_util.cpp.o.d"
  "libf3d_bench_util.a"
  "libf3d_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f3d_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
