file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cfl.dir/bench_fig5_cfl.cpp.o"
  "CMakeFiles/bench_fig5_cfl.dir/bench_fig5_cfl.cpp.o.d"
  "bench_fig5_cfl"
  "bench_fig5_cfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
