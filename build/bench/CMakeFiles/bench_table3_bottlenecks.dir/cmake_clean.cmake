file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_bottlenecks.dir/bench_table3_bottlenecks.cpp.o"
  "CMakeFiles/bench_table3_bottlenecks.dir/bench_table3_bottlenecks.cpp.o.d"
  "bench_table3_bottlenecks"
  "bench_table3_bottlenecks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_bottlenecks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
