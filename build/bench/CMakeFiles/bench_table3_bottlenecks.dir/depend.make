# Empty dependencies file for bench_table3_bottlenecks.
# This may be replaced when dependencies are built.
