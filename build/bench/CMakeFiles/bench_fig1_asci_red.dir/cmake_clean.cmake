file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_asci_red.dir/bench_fig1_asci_red.cpp.o"
  "CMakeFiles/bench_fig1_asci_red.dir/bench_fig1_asci_red.cpp.o.d"
  "bench_fig1_asci_red"
  "bench_fig1_asci_red.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_asci_red.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
