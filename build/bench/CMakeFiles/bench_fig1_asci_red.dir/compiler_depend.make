# Empty compiler generated dependencies file for bench_fig1_asci_red.
# This may be replaced when dependencies are built.
