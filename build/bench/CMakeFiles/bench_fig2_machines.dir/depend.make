# Empty dependencies file for bench_fig2_machines.
# This may be replaced when dependencies are built.
