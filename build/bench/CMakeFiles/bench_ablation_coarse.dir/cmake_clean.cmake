file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coarse.dir/bench_ablation_coarse.cpp.o"
  "CMakeFiles/bench_ablation_coarse.dir/bench_ablation_coarse.cpp.o.d"
  "bench_ablation_coarse"
  "bench_ablation_coarse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
