file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_layout.dir/bench_table1_layout.cpp.o"
  "CMakeFiles/bench_table1_layout.dir/bench_table1_layout.cpp.o.d"
  "bench_table1_layout"
  "bench_table1_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
