file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_schwarz.dir/bench_table4_schwarz.cpp.o"
  "CMakeFiles/bench_table4_schwarz.dir/bench_table4_schwarz.cpp.o.d"
  "bench_table4_schwarz"
  "bench_table4_schwarz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_schwarz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
