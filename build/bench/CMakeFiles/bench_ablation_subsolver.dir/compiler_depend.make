# Empty compiler generated dependencies file for bench_ablation_subsolver.
# This may be replaced when dependencies are built.
