file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_subsolver.dir/bench_ablation_subsolver.cpp.o"
  "CMakeFiles/bench_ablation_subsolver.dir/bench_ablation_subsolver.cpp.o.d"
  "bench_ablation_subsolver"
  "bench_ablation_subsolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_subsolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
