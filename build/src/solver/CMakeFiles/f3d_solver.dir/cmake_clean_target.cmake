file(REMOVE_RECURSE
  "libf3d_solver.a"
)
