# Empty dependencies file for f3d_solver.
# This may be replaced when dependencies are built.
