file(REMOVE_RECURSE
  "CMakeFiles/f3d_solver.dir/bicgstab.cpp.o"
  "CMakeFiles/f3d_solver.dir/bicgstab.cpp.o.d"
  "CMakeFiles/f3d_solver.dir/coarse.cpp.o"
  "CMakeFiles/f3d_solver.dir/coarse.cpp.o.d"
  "CMakeFiles/f3d_solver.dir/gmres.cpp.o"
  "CMakeFiles/f3d_solver.dir/gmres.cpp.o.d"
  "CMakeFiles/f3d_solver.dir/newton.cpp.o"
  "CMakeFiles/f3d_solver.dir/newton.cpp.o.d"
  "CMakeFiles/f3d_solver.dir/precond.cpp.o"
  "CMakeFiles/f3d_solver.dir/precond.cpp.o.d"
  "libf3d_solver.a"
  "libf3d_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f3d_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
