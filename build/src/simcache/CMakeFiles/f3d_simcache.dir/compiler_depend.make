# Empty compiler generated dependencies file for f3d_simcache.
# This may be replaced when dependencies are built.
