file(REMOVE_RECURSE
  "libf3d_simcache.a"
)
