file(REMOVE_RECURSE
  "CMakeFiles/f3d_simcache.dir/cache.cpp.o"
  "CMakeFiles/f3d_simcache.dir/cache.cpp.o.d"
  "libf3d_simcache.a"
  "libf3d_simcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f3d_simcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
