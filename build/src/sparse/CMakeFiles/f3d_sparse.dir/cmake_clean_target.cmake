file(REMOVE_RECURSE
  "libf3d_sparse.a"
)
