# Empty dependencies file for f3d_sparse.
# This may be replaced when dependencies are built.
