
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/assembly.cpp" "src/sparse/CMakeFiles/f3d_sparse.dir/assembly.cpp.o" "gcc" "src/sparse/CMakeFiles/f3d_sparse.dir/assembly.cpp.o.d"
  "/root/repo/src/sparse/ilu.cpp" "src/sparse/CMakeFiles/f3d_sparse.dir/ilu.cpp.o" "gcc" "src/sparse/CMakeFiles/f3d_sparse.dir/ilu.cpp.o.d"
  "/root/repo/src/sparse/vec.cpp" "src/sparse/CMakeFiles/f3d_sparse.dir/vec.cpp.o" "gcc" "src/sparse/CMakeFiles/f3d_sparse.dir/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/f3d_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/f3d_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
