file(REMOVE_RECURSE
  "CMakeFiles/f3d_sparse.dir/assembly.cpp.o"
  "CMakeFiles/f3d_sparse.dir/assembly.cpp.o.d"
  "CMakeFiles/f3d_sparse.dir/ilu.cpp.o"
  "CMakeFiles/f3d_sparse.dir/ilu.cpp.o.d"
  "CMakeFiles/f3d_sparse.dir/vec.cpp.o"
  "CMakeFiles/f3d_sparse.dir/vec.cpp.o.d"
  "libf3d_sparse.a"
  "libf3d_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f3d_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
