file(REMOVE_RECURSE
  "libf3d_perf.a"
)
