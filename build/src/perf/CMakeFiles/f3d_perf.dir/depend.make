# Empty dependencies file for f3d_perf.
# This may be replaced when dependencies are built.
