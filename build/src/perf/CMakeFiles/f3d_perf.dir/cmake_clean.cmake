file(REMOVE_RECURSE
  "CMakeFiles/f3d_perf.dir/machine.cpp.o"
  "CMakeFiles/f3d_perf.dir/machine.cpp.o.d"
  "CMakeFiles/f3d_perf.dir/models.cpp.o"
  "CMakeFiles/f3d_perf.dir/models.cpp.o.d"
  "CMakeFiles/f3d_perf.dir/stream.cpp.o"
  "CMakeFiles/f3d_perf.dir/stream.cpp.o.d"
  "libf3d_perf.a"
  "libf3d_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f3d_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
