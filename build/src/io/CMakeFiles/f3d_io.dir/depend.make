# Empty dependencies file for f3d_io.
# This may be replaced when dependencies are built.
