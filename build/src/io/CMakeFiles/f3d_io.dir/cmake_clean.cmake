file(REMOVE_RECURSE
  "CMakeFiles/f3d_io.dir/csv.cpp.o"
  "CMakeFiles/f3d_io.dir/csv.cpp.o.d"
  "CMakeFiles/f3d_io.dir/vtk.cpp.o"
  "CMakeFiles/f3d_io.dir/vtk.cpp.o.d"
  "libf3d_io.a"
  "libf3d_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f3d_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
