file(REMOVE_RECURSE
  "libf3d_io.a"
)
