file(REMOVE_RECURSE
  "libf3d_cfd.a"
)
