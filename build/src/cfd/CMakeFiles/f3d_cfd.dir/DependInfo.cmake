
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfd/euler.cpp" "src/cfd/CMakeFiles/f3d_cfd.dir/euler.cpp.o" "gcc" "src/cfd/CMakeFiles/f3d_cfd.dir/euler.cpp.o.d"
  "/root/repo/src/cfd/flux.cpp" "src/cfd/CMakeFiles/f3d_cfd.dir/flux.cpp.o" "gcc" "src/cfd/CMakeFiles/f3d_cfd.dir/flux.cpp.o.d"
  "/root/repo/src/cfd/problem.cpp" "src/cfd/CMakeFiles/f3d_cfd.dir/problem.cpp.o" "gcc" "src/cfd/CMakeFiles/f3d_cfd.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/f3d_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/f3d_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/f3d_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/f3d_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/f3d_partition.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
