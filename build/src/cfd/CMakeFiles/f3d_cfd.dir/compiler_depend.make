# Empty compiler generated dependencies file for f3d_cfd.
# This may be replaced when dependencies are built.
