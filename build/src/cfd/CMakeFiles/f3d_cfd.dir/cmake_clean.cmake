file(REMOVE_RECURSE
  "CMakeFiles/f3d_cfd.dir/euler.cpp.o"
  "CMakeFiles/f3d_cfd.dir/euler.cpp.o.d"
  "CMakeFiles/f3d_cfd.dir/flux.cpp.o"
  "CMakeFiles/f3d_cfd.dir/flux.cpp.o.d"
  "CMakeFiles/f3d_cfd.dir/problem.cpp.o"
  "CMakeFiles/f3d_cfd.dir/problem.cpp.o.d"
  "libf3d_cfd.a"
  "libf3d_cfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f3d_cfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
