# Empty dependencies file for f3d_par.
# This may be replaced when dependencies are built.
