file(REMOVE_RECURSE
  "CMakeFiles/f3d_par.dir/loadmodel.cpp.o"
  "CMakeFiles/f3d_par.dir/loadmodel.cpp.o.d"
  "CMakeFiles/f3d_par.dir/stepmodel.cpp.o"
  "CMakeFiles/f3d_par.dir/stepmodel.cpp.o.d"
  "libf3d_par.a"
  "libf3d_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f3d_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
