file(REMOVE_RECURSE
  "libf3d_par.a"
)
