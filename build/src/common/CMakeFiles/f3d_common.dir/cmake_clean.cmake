file(REMOVE_RECURSE
  "CMakeFiles/f3d_common.dir/denselu.cpp.o"
  "CMakeFiles/f3d_common.dir/denselu.cpp.o.d"
  "CMakeFiles/f3d_common.dir/options.cpp.o"
  "CMakeFiles/f3d_common.dir/options.cpp.o.d"
  "CMakeFiles/f3d_common.dir/table.cpp.o"
  "CMakeFiles/f3d_common.dir/table.cpp.o.d"
  "libf3d_common.a"
  "libf3d_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f3d_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
