# Empty compiler generated dependencies file for f3d_common.
# This may be replaced when dependencies are built.
