file(REMOVE_RECURSE
  "libf3d_common.a"
)
