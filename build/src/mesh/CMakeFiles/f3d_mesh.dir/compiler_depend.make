# Empty compiler generated dependencies file for f3d_mesh.
# This may be replaced when dependencies are built.
