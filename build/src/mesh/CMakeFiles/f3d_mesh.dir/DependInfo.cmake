
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/dual.cpp" "src/mesh/CMakeFiles/f3d_mesh.dir/dual.cpp.o" "gcc" "src/mesh/CMakeFiles/f3d_mesh.dir/dual.cpp.o.d"
  "/root/repo/src/mesh/generator.cpp" "src/mesh/CMakeFiles/f3d_mesh.dir/generator.cpp.o" "gcc" "src/mesh/CMakeFiles/f3d_mesh.dir/generator.cpp.o.d"
  "/root/repo/src/mesh/graph.cpp" "src/mesh/CMakeFiles/f3d_mesh.dir/graph.cpp.o" "gcc" "src/mesh/CMakeFiles/f3d_mesh.dir/graph.cpp.o.d"
  "/root/repo/src/mesh/mesh.cpp" "src/mesh/CMakeFiles/f3d_mesh.dir/mesh.cpp.o" "gcc" "src/mesh/CMakeFiles/f3d_mesh.dir/mesh.cpp.o.d"
  "/root/repo/src/mesh/ordering.cpp" "src/mesh/CMakeFiles/f3d_mesh.dir/ordering.cpp.o" "gcc" "src/mesh/CMakeFiles/f3d_mesh.dir/ordering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/f3d_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
