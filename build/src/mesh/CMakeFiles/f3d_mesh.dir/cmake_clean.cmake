file(REMOVE_RECURSE
  "CMakeFiles/f3d_mesh.dir/dual.cpp.o"
  "CMakeFiles/f3d_mesh.dir/dual.cpp.o.d"
  "CMakeFiles/f3d_mesh.dir/generator.cpp.o"
  "CMakeFiles/f3d_mesh.dir/generator.cpp.o.d"
  "CMakeFiles/f3d_mesh.dir/graph.cpp.o"
  "CMakeFiles/f3d_mesh.dir/graph.cpp.o.d"
  "CMakeFiles/f3d_mesh.dir/mesh.cpp.o"
  "CMakeFiles/f3d_mesh.dir/mesh.cpp.o.d"
  "CMakeFiles/f3d_mesh.dir/ordering.cpp.o"
  "CMakeFiles/f3d_mesh.dir/ordering.cpp.o.d"
  "libf3d_mesh.a"
  "libf3d_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f3d_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
