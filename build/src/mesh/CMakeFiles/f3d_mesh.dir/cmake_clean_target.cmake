file(REMOVE_RECURSE
  "libf3d_mesh.a"
)
