# Empty compiler generated dependencies file for f3d_partition.
# This may be replaced when dependencies are built.
