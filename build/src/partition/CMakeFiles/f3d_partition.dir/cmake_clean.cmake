file(REMOVE_RECURSE
  "CMakeFiles/f3d_partition.dir/multilevel.cpp.o"
  "CMakeFiles/f3d_partition.dir/multilevel.cpp.o.d"
  "CMakeFiles/f3d_partition.dir/partition.cpp.o"
  "CMakeFiles/f3d_partition.dir/partition.cpp.o.d"
  "libf3d_partition.a"
  "libf3d_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f3d_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
