file(REMOVE_RECURSE
  "libf3d_partition.a"
)
