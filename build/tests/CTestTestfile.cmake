# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_ordering[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_cfd[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_simcache[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_par[1]_include.cmake")
include("/root/repo/build/tests/test_coarse[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_multilevel[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_solver2[1]_include.cmake")
include("/root/repo/build/tests/test_edgecases[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_crossvalidation[1]_include.cmake")
include("/root/repo/build/tests/test_benchutil[1]_include.cmake")
