file(REMOVE_RECURSE
  "CMakeFiles/test_simcache.dir/test_simcache.cpp.o"
  "CMakeFiles/test_simcache.dir/test_simcache.cpp.o.d"
  "test_simcache"
  "test_simcache.pdb"
  "test_simcache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
