# Empty compiler generated dependencies file for test_simcache.
# This may be replaced when dependencies are built.
