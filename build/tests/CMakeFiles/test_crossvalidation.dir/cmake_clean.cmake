file(REMOVE_RECURSE
  "CMakeFiles/test_crossvalidation.dir/test_crossvalidation.cpp.o"
  "CMakeFiles/test_crossvalidation.dir/test_crossvalidation.cpp.o.d"
  "test_crossvalidation"
  "test_crossvalidation.pdb"
  "test_crossvalidation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossvalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
