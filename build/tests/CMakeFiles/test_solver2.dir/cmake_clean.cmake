file(REMOVE_RECURSE
  "CMakeFiles/test_solver2.dir/test_solver2.cpp.o"
  "CMakeFiles/test_solver2.dir/test_solver2.cpp.o.d"
  "test_solver2"
  "test_solver2.pdb"
  "test_solver2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
