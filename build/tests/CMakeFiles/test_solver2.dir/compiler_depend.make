# Empty compiler generated dependencies file for test_solver2.
# This may be replaced when dependencies are built.
