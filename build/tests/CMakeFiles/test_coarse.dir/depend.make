# Empty dependencies file for test_coarse.
# This may be replaced when dependencies are built.
