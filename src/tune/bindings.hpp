#pragma once
// Process-global knobs — the two tunables that live outside any options
// struct: the execution-layer thread count (exec::set_threads) and the
// SIMD kernel toggle (simd::set_enabled). Bound through getter/setter
// closures so the registry reads and writes the live global state.

namespace f3d::tune {

class Registry;

/// Register "exec.threads" ([1, max(4, hardware_concurrency)]) backed by
/// exec::num_threads()/set_threads().
void bind_exec_threads(Registry& reg);

/// Register "simd.enabled" backed by simd::enabled()/set_enabled(). In a
/// build without the vector backend the setter is pinned off, so the knob
/// degenerates to a constant — harmless to search.
void bind_simd(Registry& reg);

}  // namespace f3d::tune
