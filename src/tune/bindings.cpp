#include "tune/bindings.hpp"

#include <algorithm>
#include <thread>

#include "common/simd.hpp"
#include "exec/pool.hpp"
#include "tune/registry.hpp"

namespace f3d::tune {

void bind_exec_threads(Registry& reg) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int hi = std::max(4, hw);
  reg.add_int_fn(
      "exec.threads", [] { return exec::num_threads(); },
      [](int v) { exec::set_threads(v); }, 1, hi,
      "worker thread count of the execution layer; the paper's per-node "
      "parallel axis (Fig 4 scalability)");
}

void bind_simd(Registry& reg) {
  reg.add_bool_fn(
      "simd.enabled", [] { return simd::enabled(); },
      [](bool on) { simd::set_enabled(on); },
      "vectorized flux/SpMV kernels on or off; pinned off in builds "
      "without the vector backend (paper Table 1 instruction-mix axis)");
}

}  // namespace f3d::tune
