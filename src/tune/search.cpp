#include "tune/search.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace f3d::tune {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kRandom: return "random";
    case Strategy::kHillClimb: return "hill-climb";
    case Strategy::kHalving: return "successive-halving";
  }
  return "?";
}

namespace {

// A candidate is the numeric vector over the searched knobs; the full
// registry (searched + untouched knobs) is what the evaluator sees.
using Values = std::vector<double>;

void apply(Registry& reg, const std::vector<const Knob*>& knobs,
           const Values& v) {
  for (std::size_t i = 0; i < knobs.size(); ++i)
    reg.set_number(knobs[i]->name, v[i]);
}

Values current(const std::vector<const Knob*>& knobs) {
  Values v(knobs.size());
  for (std::size_t i = 0; i < knobs.size(); ++i) v[i] = knobs[i]->get();
  return v;
}

double sample_knob(const Knob& k, Rng& rng) {
  switch (k.kind) {
    case KnobKind::kBool:
      return rng.below(2) ? 1.0 : 0.0;
    case KnobKind::kEnum:
    case KnobKind::kInt: {
      const long long lo = std::llround(k.min), hi = std::llround(k.max);
      return static_cast<double>(
          lo + static_cast<long long>(rng.below(
                   static_cast<std::uint64_t>(hi - lo + 1))));
    }
    case KnobKind::kDouble:
      if (k.log_scale)
        return std::exp(rng.uniform(std::log(k.min), std::log(k.max)));
      return rng.uniform(k.min, k.max);
  }
  return k.min;
}

// Hill-climb move: perturb one coordinate to a nearby admissible value.
double neighbor_knob(const Knob& k, double v, Rng& rng) {
  switch (k.kind) {
    case KnobKind::kBool:
      return v != 0 ? 0.0 : 1.0;
    case KnobKind::kEnum:
    case KnobKind::kInt: {
      const long long lo = std::llround(k.min), hi = std::llround(k.max);
      if (hi == lo) return v;
      if (k.kind == KnobKind::kEnum) {  // any *other* choice
        long long c = lo + static_cast<long long>(
                               rng.below(static_cast<std::uint64_t>(hi - lo)));
        if (c >= std::llround(v)) ++c;
        return static_cast<double>(c);
      }
      const long long span = hi - lo;
      const long long step = std::max<long long>(
          1, static_cast<long long>(std::llround(span * 0.15)));
      const long long delta =
          (rng.below(2) ? 1 : -1) *
          (1 + static_cast<long long>(rng.below(
                   static_cast<std::uint64_t>(step))));
      return std::clamp(std::llround(v) + delta, lo, hi) * 1.0;
    }
    case KnobKind::kDouble: {
      if (k.log_scale) {
        const double f = std::exp(rng.uniform(-std::log(4.0), std::log(4.0)));
        return std::clamp(v * f, k.min, k.max);
      }
      const double delta = rng.uniform(-0.25, 0.25) * (k.max - k.min);
      return std::clamp(v + delta, k.min, k.max);
    }
  }
  return v;
}

Values sample_config(const std::vector<const Knob*>& knobs, Rng& rng) {
  Values v(knobs.size());
  for (std::size_t i = 0; i < knobs.size(); ++i)
    v[i] = sample_knob(*knobs[i], rng);
  return v;
}

struct Driver {
  Registry& reg;
  const std::vector<const Knob*>& knobs;
  const Evaluator& evaluate;
  SearchResult& result;

  TrialOutcome run(const Values& v, int fidelity) {
    apply(reg, knobs, v);
    TrialRecord rec;
    rec.trial = result.evaluations++;
    rec.fidelity = fidelity;
    rec.config = reg.to_json();
    rec.outcome = evaluate(reg, fidelity);
    if (!rec.outcome.ok) ++result.rejected;
    result.history.push_back(rec);
    return result.history.back().outcome;
  }
};

}  // namespace

SearchResult search(Registry& reg, const std::vector<std::string>& knob_names,
                    const Evaluator& evaluate, const SearchOptions& opts) {
  std::vector<const Knob*> knobs;
  knobs.reserve(knob_names.size());
  for (const auto& name : knob_names) knobs.push_back(&reg.at(name));

  SearchResult result;
  Driver drv{reg, knobs, evaluate, result};
  Rng rng(opts.seed);

  // Degenerate-input guards: a one-rung schedule, eta <= 1, or a
  // zero-width bracket must not divide by zero / loop forever below.
  const int rungs = std::max(1, opts.halving_rungs);
  const double eta = opts.halving_eta > 1.0 ? opts.halving_eta : 2.0;
  const int final_fidelity =
      opts.strategy == Strategy::kHalving ? rungs - 1 : opts.fidelity;

  // Baseline: the configuration the registry holds on entry (for a
  // freshly bound registry, the compiled defaults).
  const Values base = current(knobs);
  const obs::Json base_config = reg.to_json();
  const TrialOutcome base_out = drv.run(base, final_fidelity);
  result.baseline_ok = base_out.ok;
  result.baseline_score = base_out.score;

  Values best = base;
  double best_score = base_out.score;
  bool best_ok = base_out.ok;
  bool best_is_base = true;

  auto offer = [&](const Values& v, const TrialOutcome& out) {
    if (!out.ok) return;
    if (!best_ok || out.score < best_score) {
      best = v;
      best_score = out.score;
      best_ok = true;
      best_is_base = v == base;
    }
  };

  if (knobs.empty()) {
    // Empty knob space: nothing to search; the baseline is the answer.
    result.note = "empty knob space: baseline returned untouched";
  } else {
    switch (opts.strategy) {
      case Strategy::kRandom: {
        for (int t = 0; t < opts.trials; ++t) {
          const Values v = sample_config(knobs, rng);
          offer(v, drv.run(v, final_fidelity));
        }
        break;
      }
      case Strategy::kHillClimb: {
        // Walk from the baseline (or from the first admissible sample if
        // the baseline itself fails the gates).
        Values cur = base;
        double cur_score = base_out.score;
        bool cur_ok = base_out.ok;
        for (int t = 0; t < opts.trials; ++t) {
          Values v = cur;
          if (cur_ok) {
            const std::size_t i = static_cast<std::size_t>(
                rng.below(static_cast<std::uint64_t>(knobs.size())));
            v[i] = neighbor_knob(*knobs[i], v[i], rng);
          } else {
            v = sample_config(knobs, rng);
          }
          const TrialOutcome out = drv.run(v, final_fidelity);
          offer(v, out);
          if (out.ok && (!cur_ok || out.score < cur_score)) {
            cur = v;
            cur_score = out.score;
            cur_ok = true;
          }
        }
        break;
      }
      case Strategy::kHalving: {
        // Bracket: slot 0 = baseline, the rest seeded samples. A width
        // of 1 (single-candidate bracket) degenerates to re-scoring the
        // baseline and is handled by the same loop.
        const int width = std::max(1, opts.halving_width);
        std::vector<Values> alive;
        alive.push_back(base);
        for (int c = 1; c < width; ++c)
          alive.push_back(sample_config(knobs, rng));

        for (int r = 0; r < rungs && !alive.empty(); ++r) {
          std::vector<std::pair<double, Values>> scored;
          for (const auto& v : alive) {
            const TrialOutcome out = drv.run(v, r);
            if (out.ok) scored.emplace_back(out.score, v);
            if (r == rungs - 1 && out.ok) offer(v, out);
          }
          if (scored.empty()) {
            result.note = "all rung-" + std::to_string(r) +
                          " candidates failed the gates";
            alive.clear();
            break;
          }
          std::stable_sort(scored.begin(), scored.end(),
                           [](const auto& a, const auto& b) {
                             return a.first < b.first;
                           });
          const int keep = std::max(
              1, static_cast<int>(std::ceil(scored.size() / eta)));
          alive.clear();
          for (int i = 0; i < keep && i < static_cast<int>(scored.size());
               ++i)
            alive.push_back(scored[i].second);
        }
        break;
      }
    }
  }

  // The winner must beat the baseline to count as an improvement; ties
  // and losses fall back to the compiled defaults.
  if (best_ok && !best_is_base &&
      (!result.baseline_ok || best_score < result.baseline_score)) {
    result.improved = true;
    apply(reg, knobs, best);
    result.best_config = reg.to_json();
    result.best_score = best_score;
  } else {
    apply(reg, knobs, base);
    result.best_config = base_config;
    result.best_score = result.baseline_score;
    if (result.note.empty())
      result.note = result.baseline_ok
                        ? "no proposal beat the baseline"
                        : "baseline and every proposal failed the gates";
  }
  return result;
}

}  // namespace f3d::tune
