#pragma once
// tune::SolveLab — the bridge between the abstract search driver and the
// real solver stack: one wing problem, the full knob registry bound over
// it, and an Evaluator that scores a candidate configuration by running
// short genuine psi-NKS solves under a guard::SolveBudget.
//
// Correctness gates (a trial that fails ANY of them is rejected, i.e.
// TrialOutcome::ok == false, and can never become the tuned config):
//  * the solve reaches the per-fidelity residual tolerance,
//  * the verdict is guard::SolveVerdict::kConverged (no budget trip, no
//    stall, no fault exit),
//  * bit-identity: the solve is run twice from the same initial state and
//    the returned states must hash identically (CRC-32 over the raw
//    bytes) with identical deterministic work-unit totals,
//  * no exception escapes (an inadmissible config — e.g. a non-interlaced
//    layout fed to EulerProblem — throws and is rejected, not fatal).
//
// Score = wall seconds of the second (timed) run; lower is better.
// Scores are only comparable within one fidelity level — exactly how the
// successive-halving driver uses them.

#include <string>
#include <vector>

#include "cfd/state.hpp"
#include "mesh/mesh.hpp"
#include "mesh/ordering.hpp"
#include "solver/newton.hpp"
#include "tune/db.hpp"
#include "tune/registry.hpp"
#include "tune/search.hpp"

namespace f3d::tune {

/// Per-fidelity solve parameters (exposed for tests/benches that want to
/// reason about what a rung costs).
struct LabFidelity {
  double rtol = 1e-4;           ///< steady residual reduction target
  int max_steps = 25;           ///< pseudo-timestep cap
  long long max_work_units = 10000;  ///< guard budget (deterministic units)
};
[[nodiscard]] LabFidelity lab_fidelity(int fidelity);

class SolveLab {
public:
  /// Builds the shuffled ("as-delivered") wing mesh of ~`num_vertices`
  /// and binds every knob — flow, mesh ordering, ptc/gmres/schwarz,
  /// exec threads, simd — into registry().
  explicit SolveLab(int num_vertices, unsigned mesh_seed = 1);

  [[nodiscard]] Registry& registry() { return reg_; }
  [[nodiscard]] const Registry& registry() const { return reg_; }

  /// Run the gates on the registry's current configuration at the given
  /// fidelity. Never throws: config failures come back as ok == false.
  [[nodiscard]] TrialOutcome evaluate(int fidelity);

  /// The search-driver adapter (captures `this`; the lab must outlive it).
  [[nodiscard]] Evaluator evaluator();

  /// The knob subset the bench searches: the paper's high-leverage axes.
  /// Excludes flow.layout (EulerProblem requires interlaced) and the
  /// process-global exec/simd toggles (searched separately if at all, so
  /// a tuning run does not perturb the host-wide execution state).
  [[nodiscard]] static std::vector<std::string> default_search_space();

  /// DB key for this lab's problem: (mesh class, host ISA, "double").
  [[nodiscard]] DbKey db_key() const;

  [[nodiscard]] int num_vertices() const { return base_mesh_.num_vertices(); }

private:
  struct RunResult {
    bool ok = false;
    double wall_seconds = 0;
    long long work_units = 0;
    std::uint32_t state_hash = 0;
    double residual_drop_orders = 0;
    std::string note;
  };
  RunResult run_once(const LabFidelity& fid);

  mesh::UnstructuredMesh base_mesh_;  ///< shuffled; copied per evaluation
  cfd::FlowConfig flow_;
  mesh::OrderingOptions ordering_;
  solver::PtcOptions ptc_;
  Registry reg_;
};

}  // namespace f3d::tune
