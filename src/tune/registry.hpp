#pragma once
// f3d::tune — declarative knob registry, the flat options layer under the
// autotuner. The paper's whole arc is tuning: layout (§2.1.3, Table 1),
// precision (§2.2, Table 2), Schwarz quality (§2.4.3, Table 4), restart
// length and inexactness (§2.4.2), CFL continuation (§2.4.1, Fig 5),
// partitioning (Fig 4). Those knobs live in typed structs scattered
// across the stack (PtcOptions, SchwarzOptions, GmresOptions, FlowConfig,
// mesh ordering, exec thread count, SIMD toggle); each struct gains a
// `bind(Registry&)` that registers its fields as named, range-constrained
// knobs, so solver code keeps its typed access while the search driver
// (tune/search.hpp) and the tuning DB (tune/db.hpp) see one flat,
// introspectable space.
//
// Contract: a knob is a name + kind + inclusive range (or enum choice
// list) + a getter/setter pair into the bound struct, with the default
// captured at bind time. set_number() clamps (the search driver's
// proposals are always admissible); from_json() is strict — an unknown
// knob, a type mismatch, or an out-of-range value throws f3d::Error and
// leaves the registry untouched, which is what makes a corrupt tuning-DB
// entry safely rejectable at solver startup.
//
// Layering: tune sits above obs/common/exec and below mesh/cfd/solver
// (which link it to implement their bind() methods).

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace f3d::tune {

enum class KnobKind { kInt, kDouble, kBool, kEnum };
[[nodiscard]] const char* knob_kind_name(KnobKind kind);

/// One named, typed, range-constrained tuning parameter. Numeric access
/// is uniform: bool reads/writes 0/1, enum reads/writes the choice index.
struct Knob {
  std::string name;
  std::string doc;  ///< one line incl. the paper §/table it comes from
  KnobKind kind = KnobKind::kDouble;
  double min = 0;   ///< inclusive (int/double; enum: 0)
  double max = 0;   ///< inclusive (int/double; enum: choices.size()-1)
  bool log_scale = false;  ///< hint: sample/perturb in log space
  std::vector<std::string> choices;  ///< kEnum only
  double def = 0;   ///< default captured at bind time (numeric view)

  std::function<double()> get;
  std::function<void(double)> set;

  /// Current value as JSON (int/double/bool natively; enum as its string).
  [[nodiscard]] obs::Json value_json() const;
  /// Introspection record: name/kind/min/max/choices/default/doc.
  [[nodiscard]] obs::Json describe() const;
};

class Registry {
public:
  // ---- binder API (called by the bind() methods of the option structs).
  void add_int(const std::string& name, int* target, int lo, int hi,
               const std::string& doc);
  void add_int_fn(const std::string& name, std::function<int()> get,
                  std::function<void(int)> set, int lo, int hi,
                  const std::string& doc);
  void add_double(const std::string& name, double* target, double lo,
                  double hi, const std::string& doc);
  void add_bool(const std::string& name, bool* target, const std::string& doc);
  void add_bool_fn(const std::string& name, std::function<bool()> get,
                   std::function<void(bool)> set, const std::string& doc);
  template <class E>
  void add_enum(const std::string& name, E* target,
                std::vector<std::string> choices, const std::string& doc) {
    add_enum_fn(
        name, [target] { return static_cast<int>(*target); },
        [target](int v) { *target = static_cast<E>(v); }, std::move(choices),
        doc);
  }
  void add_enum_fn(const std::string& name, std::function<int()> get,
                   std::function<void(int)> set,
                   std::vector<std::string> choices, const std::string& doc);

  // ---- introspection.
  [[nodiscard]] int size() const { return static_cast<int>(knobs_.size()); }
  [[nodiscard]] const std::vector<Knob>& knobs() const { return knobs_; }
  /// nullptr when no knob has that name.
  [[nodiscard]] const Knob* find(const std::string& name) const;
  /// Like find(), but throws f3d::Error naming the knob when absent.
  [[nodiscard]] const Knob& at(const std::string& name) const;
  /// JSON array of Knob::describe() records — the `--dump-knobs` payload
  /// scripts/check_docs.py cross-checks against docs/TUNING.md.
  [[nodiscard]] obs::Json dump_catalog() const;

  // ---- numeric access (search-driver surface; enum via choice index).
  [[nodiscard]] double get_number(const std::string& name) const;
  /// Set with clamping into [min, max] (bool: v != 0; int/enum: rounded).
  void set_number(const std::string& name, double v);

  // ---- whole-configuration access.
  /// Flat { name: value } object over every knob, in registration order.
  [[nodiscard]] obs::Json to_json() const;
  /// Strict load: every member must name a registered knob, match its
  /// type, and lie inside its range/choices — otherwise throws f3d::Error
  /// and applies nothing. Members may cover any subset of the knobs.
  void from_json(const obs::Json& config);
  /// Restore every knob to its bind-time default.
  void reset_defaults();

private:
  void add(Knob k);

  std::vector<Knob> knobs_;
  std::map<std::string, int> index_;
};

}  // namespace f3d::tune
