#include "tune/registry.hpp"

#include <cmath>

namespace f3d::tune {

const char* knob_kind_name(KnobKind kind) {
  switch (kind) {
    case KnobKind::kInt: return "int";
    case KnobKind::kDouble: return "double";
    case KnobKind::kBool: return "bool";
    case KnobKind::kEnum: return "enum";
  }
  return "?";
}

obs::Json Knob::value_json() const {
  const double v = get();
  switch (kind) {
    case KnobKind::kInt:
      return obs::Json(static_cast<long long>(std::llround(v)));
    case KnobKind::kDouble: return obs::Json(v);
    case KnobKind::kBool: return obs::Json(v != 0);
    case KnobKind::kEnum:
      return obs::Json(choices[static_cast<std::size_t>(std::llround(v))]);
  }
  return obs::Json();
}

obs::Json Knob::describe() const {
  obs::Json j = obs::Json::object();
  j.set("name", name).set("kind", knob_kind_name(kind));
  if (kind == KnobKind::kInt) {
    j.set("min", static_cast<long long>(std::llround(min)))
        .set("max", static_cast<long long>(std::llround(max)));
    j.set("default", static_cast<long long>(std::llround(def)));
  } else if (kind == KnobKind::kDouble) {
    j.set("min", min).set("max", max);
    j.set("default", def);
    j.set("log_scale", log_scale);
  } else if (kind == KnobKind::kBool) {
    j.set("default", def != 0);
  } else {
    obs::Json cs = obs::Json::array();
    for (const auto& c : choices) cs.push(obs::Json(c));
    j.set("choices", std::move(cs));
    j.set("default", choices[static_cast<std::size_t>(std::llround(def))]);
  }
  j.set("doc", doc);
  return j;
}

void Registry::add(Knob k) {
  F3D_CHECK_MSG(!k.name.empty(), "knob name must be non-empty");
  F3D_CHECK_MSG(index_.find(k.name) == index_.end(),
                "duplicate knob name: " + k.name);
  F3D_CHECK_MSG(k.min <= k.max, "knob " + k.name + ": min > max");
  k.def = k.get();
  F3D_CHECK_MSG(k.def >= k.min && k.def <= k.max,
                "knob " + k.name + ": default outside [min, max]");
  index_[k.name] = static_cast<int>(knobs_.size());
  knobs_.push_back(std::move(k));
}

void Registry::add_int(const std::string& name, int* target, int lo, int hi,
                       const std::string& doc) {
  add_int_fn(
      name, [target] { return *target; }, [target](int v) { *target = v; }, lo,
      hi, doc);
}

void Registry::add_int_fn(const std::string& name, std::function<int()> get,
                          std::function<void(int)> set, int lo, int hi,
                          const std::string& doc) {
  Knob k;
  k.name = name;
  k.doc = doc;
  k.kind = KnobKind::kInt;
  k.min = lo;
  k.max = hi;
  k.get = [g = std::move(get)] { return static_cast<double>(g()); };
  k.set = [s = std::move(set)](double v) {
    s(static_cast<int>(std::llround(v)));
  };
  add(std::move(k));
}

void Registry::add_double(const std::string& name, double* target, double lo,
                          double hi, const std::string& doc) {
  Knob k;
  k.name = name;
  k.doc = doc;
  k.kind = KnobKind::kDouble;
  k.min = lo;
  k.max = hi;
  // Spanning two+ decades with a positive floor: perturb multiplicatively
  // (CFL, linear tolerances — the knobs the paper sweeps on log axes).
  k.log_scale = lo > 0 && hi / lo >= 100.0;
  k.get = [target] { return *target; };
  k.set = [target](double v) { *target = v; };
  add(std::move(k));
}

void Registry::add_bool(const std::string& name, bool* target,
                        const std::string& doc) {
  add_bool_fn(
      name, [target] { return *target; }, [target](bool v) { *target = v; },
      doc);
}

void Registry::add_bool_fn(const std::string& name, std::function<bool()> get,
                           std::function<void(bool)> set,
                           const std::string& doc) {
  Knob k;
  k.name = name;
  k.doc = doc;
  k.kind = KnobKind::kBool;
  k.min = 0;
  k.max = 1;
  k.get = [g = std::move(get)] { return g() ? 1.0 : 0.0; };
  k.set = [s = std::move(set)](double v) { s(v != 0); };
  add(std::move(k));
}

void Registry::add_enum_fn(const std::string& name, std::function<int()> get,
                           std::function<void(int)> set,
                           std::vector<std::string> choices,
                           const std::string& doc) {
  F3D_CHECK_MSG(!choices.empty(), "knob " + name + ": empty choice list");
  Knob k;
  k.name = name;
  k.doc = doc;
  k.kind = KnobKind::kEnum;
  k.min = 0;
  k.max = static_cast<double>(choices.size() - 1);
  k.choices = std::move(choices);
  k.get = [g = std::move(get)] { return static_cast<double>(g()); };
  k.set = [s = std::move(set)](double v) {
    s(static_cast<int>(std::llround(v)));
  };
  add(std::move(k));
}

const Knob* Registry::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &knobs_[it->second];
}

const Knob& Registry::at(const std::string& name) const {
  const Knob* k = find(name);
  F3D_CHECK_MSG(k != nullptr, "unknown knob: " + name);
  return *k;
}

obs::Json Registry::dump_catalog() const {
  obs::Json arr = obs::Json::array();
  for (const auto& k : knobs_) arr.push(k.describe());
  return arr;
}

double Registry::get_number(const std::string& name) const {
  return at(name).get();
}

void Registry::set_number(const std::string& name, double v) {
  const Knob& k = at(name);
  if (v < k.min) v = k.min;
  if (v > k.max) v = k.max;
  k.set(v);
}

obs::Json Registry::to_json() const {
  obs::Json j = obs::Json::object();
  for (const auto& k : knobs_) j.set(k.name, k.value_json());
  return j;
}

namespace {

// Numeric view of a JSON member for knob `k`; throws on type mismatch or
// out-of-range values. Pure — called for every member before any setter
// runs, so a bad config is rejected without partially applying.
double validated_number(const Knob& k, const obs::Json& v) {
  using Kind = obs::Json::Kind;
  switch (k.kind) {
    case KnobKind::kInt: {
      F3D_CHECK_MSG(v.kind == Kind::kInt,
                    "knob " + k.name + ": expected an integer");
      const double d = static_cast<double>(v.i);
      F3D_CHECK_MSG(d >= k.min && d <= k.max,
                    "knob " + k.name + ": " + std::to_string(v.i) +
                        " outside [" + std::to_string((long long)k.min) +
                        ", " + std::to_string((long long)k.max) + "]");
      return d;
    }
    case KnobKind::kDouble: {
      F3D_CHECK_MSG(v.kind == Kind::kInt || v.kind == Kind::kDouble,
                    "knob " + k.name + ": expected a number");
      const double d = v.number();
      F3D_CHECK_MSG(std::isfinite(d) && d >= k.min && d <= k.max,
                    "knob " + k.name + ": " + std::to_string(d) +
                        " outside [" + std::to_string(k.min) + ", " +
                        std::to_string(k.max) + "]");
      return d;
    }
    case KnobKind::kBool:
      F3D_CHECK_MSG(v.kind == Kind::kBool,
                    "knob " + k.name + ": expected a bool");
      return v.b ? 1.0 : 0.0;
    case KnobKind::kEnum: {
      F3D_CHECK_MSG(v.kind == Kind::kString,
                    "knob " + k.name + ": expected a choice string");
      for (std::size_t i = 0; i < k.choices.size(); ++i)
        if (k.choices[i] == v.s) return static_cast<double>(i);
      F3D_CHECK_MSG(false, "knob " + k.name + ": '" + v.s +
                               "' is not one of its choices");
    }
  }
  return 0;
}

}  // namespace

void Registry::from_json(const obs::Json& config) {
  F3D_CHECK_MSG(config.is_object(), "knob config must be a JSON object");
  // Validate everything first so a throw leaves the registry untouched.
  std::vector<std::pair<const Knob*, double>> pending;
  pending.reserve(config.members.size());
  for (const auto& [name, value] : config.members) {
    const Knob* k = find(name);
    F3D_CHECK_MSG(k != nullptr, "unknown knob: " + name);
    pending.emplace_back(k, validated_number(*k, value));
  }
  for (const auto& [k, v] : pending) k->set(v);
}

void Registry::reset_defaults() {
  for (const auto& k : knobs_) k.set(k.def);
}

}  // namespace f3d::tune
