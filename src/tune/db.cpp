#include "tune/db.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace f3d::tune {

std::string mesh_class_of(int num_vertices) {
  if (num_vertices < 4000) return "wing-small";
  if (num_vertices < 20000) return "wing-medium";
  if (num_vertices < 200000) return "wing-large";
  return "wing-xl";
}

namespace {

const obs::Json* member(const obs::Json& j, const char* key,
                        obs::Json::Kind kind) {
  const obs::Json* v = j.find(key);
  return v != nullptr && v->kind == kind ? v : nullptr;
}

bool parse_entry(const obs::Json& j, DbEntry& e) {
  const obs::Json* key = j.find("key");
  if (key == nullptr || !key->is_object()) return false;
  const obs::Json* mc = member(*key, "mesh_class", obs::Json::Kind::kString);
  const obs::Json* isa = member(*key, "host_isa", obs::Json::Kind::kString);
  const obs::Json* prec = member(*key, "precision", obs::Json::Kind::kString);
  if (mc == nullptr || isa == nullptr || prec == nullptr) return false;
  e.key = {mc->s, isa->s, prec->s};
  const obs::Json* cfg = j.find("config");
  if (cfg == nullptr || !cfg->is_object() || cfg->members.empty())
    return false;
  e.config = *cfg;
  const obs::Json* score = j.find("score");
  const obs::Json* base = j.find("baseline_score");
  if (score == nullptr || base == nullptr) return false;
  e.score = score->number();
  e.baseline_score = base->number();
  if (const obs::Json* s = member(j, "strategy", obs::Json::Kind::kString))
    e.strategy = s->s;
  if (const obs::Json* n = member(j, "evaluations", obs::Json::Kind::kInt))
    e.evaluations = static_cast<int>(n->i);
  return true;
}

}  // namespace

Db Db::load(const std::string& path) {
  Db db;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    db.ok_ = false;
    db.note_ = path + ": not found (compiled defaults in effect)";
    return db;
  }
  std::ostringstream text;
  text << in.rdbuf();
  obs::Json doc;
  try {
    doc = obs::parse_json(text.str());
  } catch (const std::exception& e) {
    db.ok_ = false;
    db.note_ = path + ": corrupt (" + e.what() + ")";
    return db;
  }
  const obs::Json* schema = member(doc, "schema", obs::Json::Kind::kString);
  if (schema == nullptr || schema->s != kTuneDbSchema) {
    db.ok_ = false;
    db.note_ = path + ": missing or unexpected schema tag (want " +
               std::string(kTuneDbSchema) + ")";
    return db;
  }
  const obs::Json* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    db.ok_ = false;
    db.note_ = path + ": entries array missing";
    return db;
  }
  for (const auto& item : entries->items) {
    DbEntry e;
    if (!parse_entry(item, e)) {
      db.ok_ = false;
      db.note_ = path + ": malformed entry rejected";
      db.entries_.clear();
      return db;
    }
    db.put(std::move(e));
  }
  db.note_ = path;
  return db;
}

bool Db::save(const std::string& path) const {
  // Atomic publish: write a unique temp file next to the target, flush,
  // then rename over it. A reader (or a concurrent writer's load) sees
  // either the old complete file or the new complete file, never a torn
  // prefix — the invariant the fleet relies on when scenario workers
  // consult the DB while a tuning campaign saves it.
  static std::atomic<unsigned> counter{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<unsigned long>(getpid())) +
                          "." + std::to_string(counter.fetch_add(1));
  const std::string text = to_json().dump() + "\n";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool written =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fflush(f) == 0;
  if (std::fclose(f) != 0 || !written) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

obs::Json Db::to_json() const {
  obs::Json doc = obs::Json::object();
  doc.set("schema", kTuneDbSchema);
  obs::Json arr = obs::Json::array();
  for (const auto& e : entries_) {
    obs::Json key = obs::Json::object();
    key.set("mesh_class", e.key.mesh_class)
        .set("host_isa", e.key.host_isa)
        .set("precision", e.key.precision);
    obs::Json item = obs::Json::object();
    item.set("key", std::move(key))
        .set("config", e.config)
        .set("score", e.score)
        .set("baseline_score", e.baseline_score)
        .set("strategy", e.strategy)
        .set("evaluations", e.evaluations);
    arr.push(std::move(item));
  }
  doc.set("entries", std::move(arr));
  return doc;
}

const DbEntry* Db::lookup(const DbKey& key) const {
  for (const auto& e : entries_)
    if (e.key == key) return &e;
  return nullptr;
}

void Db::put(DbEntry entry) {
  for (auto& e : entries_)
    if (e.key == entry.key) {
      e = std::move(entry);
      return;
    }
  entries_.push_back(std::move(entry));
}

bool apply(Registry& reg, const Db& db, const DbKey& key, std::string* note) {
  const DbEntry* e = db.lookup(key);
  if (e == nullptr) {
    if (note != nullptr)
      *note = "no tuned entry for (" + key.mesh_class + ", " + key.host_isa +
              ", " + key.precision + "): compiled defaults in effect" +
              (db.ok() ? "" : " [" + db.note() + "]");
    return false;
  }
  try {
    reg.from_json(e->config);  // strict: validates before applying
  } catch (const Error& err) {
    if (note != nullptr)
      *note = std::string("tuned entry rejected (") + err.what() +
              "): compiled defaults in effect";
    return false;
  }
  if (note != nullptr)
    *note = "tuned entry applied (" + e->strategy + ", score " +
            std::to_string(e->score) + " vs baseline " +
            std::to_string(e->baseline_score) + ")";
  return true;
}

}  // namespace f3d::tune
