#pragma once
// tune::Db — the persistent tuning database consulted at solver startup.
// A strict obs::Json file (schema f3d-tunedb-v1) mapping a key of
// (mesh_class, host_isa, precision) to the winning flat knob
// configuration a search found, plus its provenance (strategy, scores,
// evaluation count). The contract that makes it safe to consult blindly:
//
//  * load() NEVER throws on a missing, unreadable, or corrupt file — it
//    returns an empty Db with ok() == false and a reason, and the solver
//    proceeds on compiled defaults;
//  * apply() validates the stored configuration against the live
//    registry (strict from_json: unknown knob / type / range errors all
//    reject) before touching anything, so a DB written by a different
//    build vintage degrades to defaults instead of poisoning a solve;
//  * save() round-trips exactly: dump -> parse -> dump is bit-identical
//    (obs::Json prints doubles with %.17g), which is what lets a solve
//    started from a persisted entry reproduce the tuned configuration
//    bit-for-bit.

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "tune/registry.hpp"

namespace f3d::tune {

inline constexpr const char* kTuneDbSchema = "f3d-tunedb-v1";

/// What a tuned configuration is keyed by: the workload shape, the
/// vector hardware, and the arithmetic contract. A config tuned for one
/// triple is not assumed transferable to another.
struct DbKey {
  std::string mesh_class;  ///< coarse size bucket, see mesh_class_of()
  std::string host_isa;    ///< simd::isa_name() of the producing host
  std::string precision;   ///< "double" | "mixed"

  [[nodiscard]] bool operator==(const DbKey& o) const {
    return mesh_class == o.mesh_class && host_isa == o.host_isa &&
           precision == o.precision;
  }
};

/// Coarse mesh-class bucket from the vertex count. Buckets, not exact
/// counts, key the DB: the tuned knobs (restart, fill, subdomains) track
/// problem *scale*, not the precise mesh instance.
[[nodiscard]] std::string mesh_class_of(int num_vertices);

struct DbEntry {
  DbKey key;
  obs::Json config;           ///< flat { knob: value } map
  double score = 0;           ///< tuned final-fidelity score (lower better)
  double baseline_score = 0;  ///< compiled defaults at the same fidelity
  std::string strategy;       ///< strategy_name() that produced it
  int evaluations = 0;
};

class Db {
public:
  /// Load from `path`. Missing / unreadable / malformed / wrong-schema
  /// files yield an empty Db with ok() == false and note() saying why —
  /// never an exception (the safe-fallback contract).
  [[nodiscard]] static Db load(const std::string& path);

  /// Serialize to `path` (strict JSON, trailing newline); false when the
  /// file cannot be written.
  [[nodiscard]] bool save(const std::string& path) const;

  /// Entry for `key`, or nullptr.
  [[nodiscard]] const DbEntry* lookup(const DbKey& key) const;
  /// Insert, replacing any same-key entry.
  void put(DbEntry entry);

  [[nodiscard]] int size() const { return static_cast<int>(entries_.size()); }
  [[nodiscard]] const std::vector<DbEntry>& entries() const { return entries_; }
  /// True when load() found and fully parsed a schema-valid file (a
  /// freshly constructed Db is ok).
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& note() const { return note_; }

  [[nodiscard]] obs::Json to_json() const;

private:
  std::vector<DbEntry> entries_;
  bool ok_ = true;
  std::string note_;
};

/// Startup consultation: when the DB holds an entry for `key` whose
/// configuration validates against `reg`, apply it and return true;
/// otherwise leave the registry (= compiled defaults) untouched and
/// return false with `note` saying why. This is the one call a solver
/// front end needs — see examples/tuned_solve.cpp.
bool apply(Registry& reg, const Db& db, const DbKey& key,
           std::string* note = nullptr);

}  // namespace f3d::tune
