#include "tune/lab.hpp"

#include <exception>
#include <utility>

#include "cfd/euler.hpp"
#include "cfd/problem.hpp"
#include "common/crc32.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "mesh/generator.hpp"
#include "tune/bindings.hpp"

namespace f3d::tune {

LabFidelity lab_fidelity(int fidelity) {
  LabFidelity fid;
  if (fidelity <= 0) {
    fid.rtol = 1e-2;
    fid.max_steps = 12;
  } else if (fidelity == 1) {
    fid.rtol = 1e-4;
    fid.max_steps = 25;
  } else {
    fid.rtol = 1e-6;
    fid.max_steps = 40;
  }
  // Generous for any sane config on the lab meshes; a runaway config
  // (e.g. a hopeless CFL schedule) trips the budget and fails the
  // verdict gate instead of stalling the whole search.
  fid.max_work_units = 20000LL * (fidelity + 1);
  return fid;
}

SolveLab::SolveLab(int num_vertices, unsigned mesh_seed) {
  auto m = mesh::generate_wing_mesh_with_size(num_vertices);
  mesh::shuffle_mesh(m, mesh_seed);
  base_mesh_ = std::move(m);

  flow_.model = cfd::Model::kIncompressible;
  flow_.order = 1;  // short runs; first order keeps trials cheap
  ptc_.max_steps = 25;
  ptc_.gmres.max_iters = 120;

  flow_.bind(reg_);
  ordering_.bind(reg_);
  ptc_.bind(reg_);
  bind_exec_threads(reg_);
  bind_simd(reg_);
}

SolveLab::RunResult SolveLab::run_once(const LabFidelity& fid) {
  RunResult out;
  try {
    // Fresh copy so the ordering knobs act on the same as-delivered mesh
    // every trial (a discretization must never see a re-permuted mesh).
    mesh::UnstructuredMesh m = base_mesh_;
    mesh::apply_ordering(m, ordering_);

    cfd::EulerDiscretization disc(m, flow_);
    cfd::EulerProblem prob(disc, -1.0);

    solver::PtcOptions opts = ptc_;
    opts.rtol = fid.rtol;
    opts.max_steps = fid.max_steps;
    opts.guard.budget.max_work_units = fid.max_work_units;
    opts.guard.capture_faults = true;
    opts.partition = {};  // rebuilt by the driver for num_subdomains

    auto x = prob.initial_state();
    Timer t;
    auto res = solver::ptc_solve(prob, x, opts);
    out.wall_seconds = t.seconds();
    out.work_units = res.work_units;
    out.residual_drop_orders = res.residual_drop_orders;
    out.state_hash =
        crc32(x.data(), x.size() * sizeof(double));
    if (!res.converged ||
        res.verdict != guard::SolveVerdict::kConverged) {
      out.note = std::string("gate: not converged (verdict ") +
                 guard::verdict_name(res.verdict) + ")";
      return out;
    }
    out.ok = true;
    return out;
  } catch (const std::exception& e) {
    out.note = std::string("gate: exception: ") + e.what();
    return out;
  }
}

TrialOutcome SolveLab::evaluate(int fidelity) {
  const LabFidelity fid = lab_fidelity(fidelity);
  TrialOutcome t;

  RunResult first = run_once(fid);
  if (!first.ok) {
    t.ok = false;
    t.note = first.note;
    t.wall_seconds = first.wall_seconds;
    t.work_units = first.work_units;
    return t;
  }
  RunResult second = run_once(fid);
  if (!second.ok) {
    t.ok = false;
    t.note = "gate: rerun failed: " + second.note;
    return t;
  }
  if (first.state_hash != second.state_hash ||
      first.work_units != second.work_units) {
    t.ok = false;
    t.note = "gate: bit-identity violation (state hash or work units "
             "differ between identical runs)";
    return t;
  }

  t.ok = true;
  // Score the second run: the first warmed the page cache / pool, so the
  // second is the steadier timing.
  t.score = second.wall_seconds;
  t.wall_seconds = second.wall_seconds;
  t.work_units = second.work_units;
  return t;
}

Evaluator SolveLab::evaluator() {
  return [this](Registry& /*reg*/, int fidelity) { return evaluate(fidelity); };
}

std::vector<std::string> SolveLab::default_search_space() {
  return {
      "mesh.vertex_order", "mesh.edge_order",
      "flow.reco_single_precision",
      "ptc.cfl0", "ptc.ser_exponent", "ptc.jacobian_refresh",
      "ptc.num_subdomains",
      "gmres.restart", "gmres.rtol",
      "schwarz.type", "schwarz.overlap", "schwarz.fill_level",
      "schwarz.single_precision",
  };
}

DbKey SolveLab::db_key() const {
  DbKey key;
  key.mesh_class = mesh_class_of(base_mesh_.num_vertices());
  key.host_isa = simd::isa_name();
  key.precision = "double";
  return key;
}

}  // namespace f3d::tune
