#pragma once
// tune::search — the search driver over a Registry's knob space. Three
// strategies (random, hill-climb, successive halving) propose
// configurations, an Evaluator runs them (for the solver: a short real
// ψNKS solve under a guard::SolveBudget — see tune/lab.hpp) and reports
// a score plus a pass/fail on the correctness gates; the driver never
// lets a gate-failing configuration win. The result always carries a
// usable configuration: when no proposal beats the baseline (the
// registry's state on entry, i.e. the compiled defaults), the baseline
// is restored and returned with improved == false — the "tuned config is
// never worse than compiled defaults" guarantee is structural.
//
// Every proposal comes from a seeded f3d::Rng, so a search over a
// deterministic evaluator is reproducible bit-for-bit from its seed.
//
// Degenerate inputs are first-class (the measure_load/fit_surface_law
// lesson): an empty knob list, a single-candidate halving bracket, a
// one-rung schedule, or eta <= 1 must all terminate without dividing by
// zero — they just evaluate what they were given.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "tune/registry.hpp"

namespace f3d::tune {

/// What one evaluation of the current registry configuration reported.
struct TrialOutcome {
  /// All correctness gates passed (solver evaluators: bit-identity of a
  /// repeated run, residual tolerance reached, no SolveVerdict failure).
  bool ok = false;
  double score = 0;         ///< minimized; only meaningful when ok
  double wall_seconds = 0;  ///< measured solve wall time
  long long work_units = 0; ///< deterministic cost-model total
  std::string note;         ///< gate-failure reason when !ok
};

/// Evaluate the configuration currently held by the registry. `fidelity`
/// is the successive-halving rung (0 = cheapest); evaluators scale their
/// solve budget/tolerance with it. Scores are only compared within one
/// fidelity level.
using Evaluator = std::function<TrialOutcome(Registry&, int fidelity)>;

enum class Strategy { kRandom, kHillClimb, kHalving };
[[nodiscard]] const char* strategy_name(Strategy s);

struct SearchOptions {
  Strategy strategy = Strategy::kHalving;
  std::uint64_t seed = 1;

  /// Evaluation budget for kRandom / kHillClimb (baseline not included).
  int trials = 16;
  /// Fidelity used for every kRandom / kHillClimb evaluation (and the
  /// baseline under those strategies).
  int fidelity = 1;

  // Successive halving: `halving_width` seeded candidates (slot 0 is the
  // baseline configuration) race through `halving_rungs` rungs; rung r
  // evaluates the survivors at fidelity r and keeps ceil(n / halving_eta)
  // of the gate-passing ones. The baseline is additionally scored at the
  // final rung's fidelity so the winner is comparable to it.
  int halving_width = 8;
  int halving_rungs = 2;
  double halving_eta = 2.0;
};

struct TrialRecord {
  int trial = 0;     ///< global evaluation index (0 = baseline)
  int fidelity = 0;
  obs::Json config;  ///< full flat dump of the evaluated configuration
  TrialOutcome outcome;
};

struct SearchResult {
  obs::Json best_config;      ///< full flat dump; baseline when !improved
  double best_score = 0;      ///< final-fidelity score of best_config
  double baseline_score = 0;  ///< final-fidelity score of the entry config
  bool baseline_ok = false;   ///< baseline passed the gates
  bool improved = false;      ///< a proposal beat the baseline
  int evaluations = 0;        ///< evaluator calls, baseline included
  int rejected = 0;           ///< evaluations failing the correctness gates
  std::string note;           ///< e.g. why the search fell back to baseline
  std::vector<TrialRecord> history;
};

/// Search the space spanned by `knob_names` (each must be registered).
/// On return the registry holds best_config. Throws f3d::Error on an
/// unknown knob name; an empty `knob_names` is the degenerate
/// nothing-to-search space — the baseline is evaluated once and returned.
SearchResult search(Registry& reg, const std::vector<std::string>& knob_names,
                    const Evaluator& evaluate, const SearchOptions& opts);

}  // namespace f3d::tune
