#pragma once
// Incomplete LU factorization with level-of-fill — ILU(k) — in point
// (AIJ) and block (BAIJ) variants, the paper's subdomain solver (§2.4.3,
// Table 4: k = 0, 1, 2).
//
// The symbolic phase is shared: level-of-fill on the (block) sparsity
// graph. The numeric phase always computes in double; the factors may be
// *stored* in float for the paper's single-precision-preconditioner
// experiment (§2.2, Table 2) — the triangular solves then read float
// operands but accumulate in double, halving the memory traffic of the
// bandwidth-bound solve at no observed cost in convergence.

#include <vector>

#include "exec/pool.hpp"
#include "sparse/csr.hpp"

namespace f3d::sparse {

/// Combined L+U sparsity with diagonal positions. For block ILU the
/// indices are block rows/cols.
struct IluPattern {
  int n = 0;
  std::vector<int> ptr;
  std::vector<int> col;   ///< ascending within each row
  std::vector<int> diag;  ///< position of (i, i) within row i

  [[nodiscard]] std::size_t nnz() const { return col.size(); }
};

/// Level-of-fill symbolic factorization on an arbitrary CSR sparsity
/// (must contain the diagonal). level == 0 returns the input pattern.
IluPattern ilu_symbolic(int n, const std::vector<int>& aptr,
                        const std::vector<int>& acol, int level);

/// Level schedule of one triangular factor's dependency DAG: rows grouped
/// into levels such that every row's in-factor dependencies sit in
/// earlier levels — rows within a level solve in parallel. Rows are
/// ascending within a level, so the per-row arithmetic of a scheduled
/// solve is exactly the serial solve's: level-scheduled results are
/// bit-identical to the serial ones for any thread count.
struct TriSchedule {
  std::vector<int> level_ptr;  ///< size num_levels()+1
  std::vector<int> rows;       ///< rows grouped by level, ascending within
  [[nodiscard]] int num_levels() const {
    return static_cast<int>(level_ptr.empty() ? 0 : level_ptr.size() - 1);
  }
};

/// Schedule of the forward (L, cols < diag) solve of `pat`.
TriSchedule lower_levels(const IluPattern& pat);
/// Schedule of the backward (U, cols > diag) solve of `pat`.
TriSchedule upper_levels(const IluPattern& pat);

namespace detail {
/// One triangular-solve row update: s0 minus the row's partial dot with
/// x, promoted to double. Scalar path subtracts term by term (the seed
/// kernel, unchanged); SIMD path strip-mines through
/// row_dot_promote_simd and subtracts once. Both PointIlu::solve and
/// solve_levels funnel through this single helper with the same
/// use_simd value, which is what keeps the serial and level-scheduled
/// solves bit-identical in every configuration.
template <class S>
[[nodiscard]] inline double tri_row_reduce(bool use_simd, const S* val,
                                           const int* col, int count,
                                           const double* x, double s0) {
  if (use_simd) return s0 - row_dot_promote_simd(val, col, count, x);
  for (int k = 0; k < count; ++k)
    s0 -= static_cast<double>(val[k]) * x[col[k]];
  return s0;
}
}  // namespace detail

/// Point ILU factors, storage scalar S (double or float).
template <class S>
struct PointIlu {
  IluPattern pat;
  std::vector<S> val;

  /// x = (LU)^{-1} b, double arithmetic.
  void solve(const double* b, double* x) const {
    const bool use_simd = simd::enabled();
    const int n = pat.n;
    const S* v = val.data();
    const int* c = pat.col.data();
    for (int i = 0; i < n; ++i) {
      const int p0 = pat.ptr[i];
      x[i] = detail::tri_row_reduce(use_simd, v + p0, c + p0,
                                    pat.diag[i] - p0, x, b[i]);
    }
    for (int i = n - 1; i >= 0; --i) {
      const int p0 = pat.diag[i] + 1;
      const double s = detail::tri_row_reduce(use_simd, v + p0, c + p0,
                                              pat.ptr[i + 1] - p0, x, x[i]);
      x[i] = s / static_cast<double>(v[pat.diag[i]]);
    }
  }

  void solve(const std::vector<double>& b, std::vector<double>& x) const {
    x.resize(b.size());
    solve(b.data(), x.data());
  }

  /// Level-scheduled solve on the exec pool: levels in sequence, the rows
  /// of a level in parallel. Per-row arithmetic is identical to solve(),
  /// so the result is bit-identical for any thread count. `fwd`/`bwd`
  /// come from lower_levels/upper_levels of this factor's pattern.
  void solve_levels(const TriSchedule& fwd, const TriSchedule& bwd,
                    const double* b, double* x) const {
    const bool use_simd = simd::enabled();
    const S* v = val.data();
    const int* c = pat.col.data();
    auto& pool = exec::pool();
    for (int l = 0; l < fwd.num_levels(); ++l) {
      pool.parallel_for(
          fwd.level_ptr[l], fwd.level_ptr[l + 1],
          [&, use_simd](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t k = lo; k < hi; ++k) {
              const int i = fwd.rows[k];
              const int p0 = pat.ptr[i];
              x[i] = detail::tri_row_reduce(use_simd, v + p0, c + p0,
                                            pat.diag[i] - p0, x, b[i]);
            }
          },
          /*grain=*/128);
    }
    for (int l = 0; l < bwd.num_levels(); ++l) {
      pool.parallel_for(
          bwd.level_ptr[l], bwd.level_ptr[l + 1],
          [&, use_simd](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t k = lo; k < hi; ++k) {
              const int i = bwd.rows[k];
              const int p0 = pat.diag[i] + 1;
              const double s = detail::tri_row_reduce(
                  use_simd, v + p0, c + p0, pat.ptr[i + 1] - p0, x, x[i]);
              x[i] = s / static_cast<double>(v[pat.diag[i]]);
            }
          },
          /*grain=*/128);
    }
  }
};

/// Block ILU factors; diagonal blocks are stored as their in-place LU
/// factorizations.
template <class S>
struct BlockIlu {
  int nb = 0;
  IluPattern pat;
  std::vector<S> val;  ///< nb*nb per pattern entry

  void solve(const double* b, double* x) const;
  void solve(const std::vector<double>& b, std::vector<double>& x) const {
    x.resize(b.size());
    solve(b.data(), x.data());
  }

  /// Level-scheduled variant of solve() (see PointIlu::solve_levels);
  /// bit-identical to solve() for any thread count.
  void solve_levels(const TriSchedule& fwd, const TriSchedule& bwd,
                    const double* b, double* x) const;
};

/// Outcome of a numeric factorization when requested through the
/// non-throwing path. `bad_row` is the first (block) row whose pivot was
/// zero/singular; the returned factors are only valid up to that row.
struct IluFactorStatus {
  bool ok = true;
  int bad_row = -1;
};

/// Numeric point factorization of A on `pat` (pattern from ilu_symbolic of
/// A's sparsity). Computes in double, stores in S. With `status == nullptr`
/// a zero pivot throws f3d::NumericalError; with a status out-param the
/// call never throws on numerical failure — the resilient solver paths use
/// that to climb a diagonal-shift ladder instead of aborting.
template <class S = double>
PointIlu<S> ilu_factor_point(const Csr<double>& a, const IluPattern& pat,
                             IluFactorStatus* status = nullptr);

/// Numeric block factorization (same status contract as the point variant).
template <class S = double>
BlockIlu<S> ilu_factor_block(const Bcsr<double>& a, const IluPattern& pat,
                             IluFactorStatus* status = nullptr);

/// Convenience: symbolic on a matrix's own sparsity.
IluPattern ilu_symbolic(const Csr<double>& a, int level);
IluPattern ilu_symbolic(const Bcsr<double>& a, int level);

}  // namespace f3d::sparse
