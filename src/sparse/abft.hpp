#pragma once
// Algorithm-based fault tolerance (ABFT) for the sparse matrix-vector
// product — the Huang-Abraham checksum idea applied to CSR/BCSR SpMV.
//
// Invariant: with c = Aᵀ·1 (per-column sums of A), exact arithmetic gives
//   1ᵀ(A x) = cᵀ x        for every x.
// Both sides are O(n) to evaluate (vs O(nnz) for the product itself), so
// verifying every SpMV costs a few percent. A silent bit flip in A's
// values, in x, or in the computed y breaks the identity by roughly the
// magnitude of the corruption — far above rounding for exponent-bit
// flips, while flips in the lowest mantissa bits can hide below the
// noise floor (the measured "escape rate" of bench_sdc).
//
// Rounding bound (why a violation is corruption, not noise): float
// summation of n terms t_i carries error <= gamma_n * sum_i |t_i| with
// gamma_n ~ n * eps. Both sides of the identity sum the same bilinear
// form sum_ij a_ij x_j whose absolute mass is sum_j cabs_j |x_j| with
// cabs = |A|ᵀ·1, so
//   |1ᵀ(Ax) - cᵀx| <= slack * eps * sum_j cabs_j |x_j|
// with `slack` absorbing the summation-length factor (max column count
// plus the reduction-tree depth; the default 1024 is comfortably above
// any mesh this library builds while still 10+ orders below an
// exponent flip). All four sums use the exec-layer fixed-block tree
// reductions, so the verdict is bit-identical for any thread count.
//
// The checksum is a function of the matrix values: any reassembly
// invalidates it (call rebuild(), exactly where the Jacobian refresh
// happens in the psi-NKS driver).

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace f3d::sparse {

/// Checksum state for one matrix. Build with rebuild(), check each
/// product with verify_spmv(). Failures are tallied process-wide as
/// "abft.verify_failures".
struct AbftGuard {
  std::vector<double> colsum;      ///< c = Aᵀ·1 (signed column sums)
  std::vector<double> colsum_abs;  ///< |A|ᵀ·1 (rounding-bound mass)
  double slack = 1024.0;           ///< multiplies eps in the bound
  /// The eps of the bound: the *storage* unit roundoff of the guarded
  /// matrix. rebuild() sets it — DBL_EPSILON for double storage,
  /// FLT_EPSILON for float storage (the checksums are computed from the
  /// promoted entries, but each stored entry carries float rounding, so
  /// the product and the checksum identity both live at float accuracy).
  double unit_roundoff = 2.220446049250313e-16;  // DBL_EPSILON
  long long verifies = 0;          ///< products checked since rebuild()
  long long failures = 0;          ///< bound violations observed

  [[nodiscard]] bool valid() const { return !colsum.empty(); }
  void invalidate() {
    colsum.clear();
    colsum_abs.clear();
  }

private:
  friend bool verify_spmv(AbftGuard& g, const double* x, const double* y,
                          std::int64_t n);
  std::vector<double> scratch_;  ///< |x| buffer reused across verifies
};

/// Recompute the checksums from the current values of `a` (scalar
/// columns; for Bcsr the checksum is over the scalar expansion, so it
/// guards every one of the nb*nb entries of every block). Float-storage
/// overloads promote each entry to double for the checksum accumulation
/// and widen the guard's unit_roundoff to FLT_EPSILON — the bound must
/// absorb float storage rounding or clean mixed-precision products would
/// trip it.
void rebuild(AbftGuard& g, const Csr<double>& a);
void rebuild(AbftGuard& g, const Bcsr<double>& a);
void rebuild(AbftGuard& g, const Csr<float>& a);
void rebuild(AbftGuard& g, const Bcsr<float>& a);

/// Verify y == A x via the checksum identity; `y` must already hold the
/// product. Returns true when the identity holds within the rounding
/// bound. Counts into g.verifies/g.failures and the obs registry. The
/// guard must be valid() and n must match the checksummed matrix.
[[nodiscard]] bool verify_spmv(AbftGuard& g, const double* x, const double* y,
                               std::int64_t n);

/// Convenience: checked product. Computes y = A x, then verifies.
template <class M>
[[nodiscard]] bool spmv_verified(AbftGuard& g, const M& a,
                                 const std::vector<double>& x,
                                 std::vector<double>& y) {
  a.spmv(x, y);
  return verify_spmv(g, x.data(), y.data(),
                     static_cast<std::int64_t>(y.size()));
}

}  // namespace f3d::sparse
