#pragma once
// Compressed sparse row (PETSc "AIJ") matrix, templated on the stored
// scalar so the paper's single-precision-storage experiment (§2.2,
// Table 2) can store float entries while all arithmetic stays double.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "exec/pool.hpp"

namespace f3d::sparse {

template <class S = double>
struct Csr {
  int n = 0;  ///< square: rows == cols
  std::vector<int> ptr;  ///< size n+1
  std::vector<int> col;  ///< column indices, ascending within a row
  std::vector<S> val;

  [[nodiscard]] std::size_t nnz() const { return col.size(); }

  void check() const {
    F3D_CHECK(static_cast<int>(ptr.size()) == n + 1);
    F3D_CHECK(col.size() == val.size());
    F3D_CHECK(ptr[0] == 0 && ptr[n] == static_cast<int>(col.size()));
    for (int i = 0; i < n; ++i) {
      F3D_CHECK(ptr[i] <= ptr[i + 1]);
      for (int p = ptr[i]; p < ptr[i + 1]; ++p) {
        F3D_CHECK(col[p] >= 0 && col[p] < n);
        if (p > ptr[i]) F3D_CHECK(col[p - 1] < col[p]);
      }
    }
  }

  /// y = A x. Arithmetic in double regardless of storage type. Rows are
  /// independent, so the loop runs row-parallel on the exec pool and the
  /// result is bit-identical for any thread count.
  void spmv(const double* x, double* y) const {
    exec::pool().parallel_for(
        0, n,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            double s = 0;
            for (int p = ptr[i]; p < ptr[i + 1]; ++p)
              s += static_cast<double>(val[p]) * x[col[p]];
            y[i] = s;
          }
        },
        /*grain=*/512);
  }

  void spmv(const std::vector<double>& x, std::vector<double>& y) const {
    F3D_CHECK(static_cast<int>(x.size()) == n);
    y.resize(n);
    spmv(x.data(), y.data());
  }

  /// Pointer to entry (i, j), or nullptr if not in the pattern.
  [[nodiscard]] const S* find(int i, int j) const {
    for (int p = ptr[i]; p < ptr[i + 1]; ++p)
      if (col[p] == j) return &val[p];
    return nullptr;
  }
  [[nodiscard]] S* find(int i, int j) {
    return const_cast<S*>(static_cast<const Csr*>(this)->find(i, j));
  }

  /// Convert storage scalar (e.g. double -> float for the single-precision
  /// preconditioner experiment).
  template <class T>
  [[nodiscard]] Csr<T> convert() const {
    Csr<T> out;
    out.n = n;
    out.ptr = ptr;
    out.col = col;
    out.val.assign(val.begin(), val.end());
    return out;
  }
};

/// Block CSR (PETSc "BAIJ"): the paper's structural-blocking format.
/// Blocks are nb x nb, row-major, one per block-sparsity entry. The win
/// over point CSR: one column index per block instead of nb^2 — fewer
/// integer loads and more register reuse in spmv (paper §2.1.2).
template <class S = double>
struct Bcsr {
  int nb = 0;      ///< block size (4 incompressible, 5 compressible)
  int nrows = 0;   ///< block rows
  std::vector<int> ptr;  ///< block-row pointers, size nrows+1
  std::vector<int> col;  ///< block-column indices, ascending in a row
  std::vector<S> val;    ///< nb*nb scalars per block entry

  [[nodiscard]] std::size_t nblocks() const { return col.size(); }
  [[nodiscard]] int scalar_n() const { return nrows * nb; }

  void check() const {
    F3D_CHECK(nb >= 1);
    F3D_CHECK(static_cast<int>(ptr.size()) == nrows + 1);
    F3D_CHECK(val.size() ==
              col.size() * static_cast<std::size_t>(nb) * nb);
    for (int i = 0; i < nrows; ++i)
      for (int p = ptr[i]; p < ptr[i + 1]; ++p) {
        F3D_CHECK(col[p] >= 0 && col[p] < nrows);
        if (p > ptr[i]) F3D_CHECK(col[p - 1] < col[p]);
      }
  }

  /// y = A x with x, y of length nrows*nb (interlaced field layout).
  /// Dispatches to fully unrolled kernels for the block sizes the Euler
  /// models use (4 and 5) — the register-reuse benefit of structural
  /// blocking (paper §2.1.2) needs the compile-time block size.
  void spmv(const double* x, double* y) const {
    switch (nb) {
      case 4:
        spmv_fixed<4>(x, y);
        return;
      case 5:
        spmv_fixed<5>(x, y);
        return;
      default:
        spmv_generic(x, y);
    }
  }

  template <int NB>
  void spmv_fixed(const double* x, double* y) const {
    const std::size_t bsz = static_cast<std::size_t>(NB) * NB;
    // Block rows are independent: row-parallel, bit-identical for any
    // thread count.
    exec::pool().parallel_for(
        0, nrows,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            double acc[NB] = {};
            for (int p = ptr[i]; p < ptr[i + 1]; ++p) {
              const S* b = &val[p * bsz];
              const double* xj = &x[static_cast<std::size_t>(col[p]) * NB];
              for (int r = 0; r < NB; ++r) {
                double s = 0;
                const S* row = b + static_cast<std::size_t>(r) * NB;
                for (int c = 0; c < NB; ++c)
                  s += static_cast<double>(row[c]) * xj[c];
                acc[r] += s;
              }
            }
            double* yi = &y[static_cast<std::size_t>(i) * NB];
            for (int r = 0; r < NB; ++r) yi[r] = acc[r];
          }
        },
        /*grain=*/256);
  }

  void spmv_generic(const double* x, double* y) const {
    const std::size_t bsz = static_cast<std::size_t>(nb) * nb;
    F3D_ASSERT(nb <= 8);
    exec::pool().parallel_for(
        0, nrows,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
            for (int p = ptr[i]; p < ptr[i + 1]; ++p) {
              const S* b = &val[p * bsz];
              const double* xj = &x[static_cast<std::size_t>(col[p]) * nb];
              for (int r = 0; r < nb; ++r) {
                double s = 0;
                const S* row = b + static_cast<std::size_t>(r) * nb;
                for (int c = 0; c < nb; ++c)
                  s += static_cast<double>(row[c]) * xj[c];
                acc[r] += s;
              }
            }
            double* yi = &y[static_cast<std::size_t>(i) * nb];
            for (int r = 0; r < nb; ++r) yi[r] = acc[r];
          }
        },
        /*grain=*/256);
  }

  void spmv(const std::vector<double>& x, std::vector<double>& y) const {
    F3D_CHECK(static_cast<int>(x.size()) == scalar_n());
    y.resize(x.size());
    spmv(x.data(), y.data());
  }

  /// Pointer to the nb*nb block (i, j), or nullptr.
  [[nodiscard]] const S* find_block(int i, int j) const {
    for (int p = ptr[i]; p < ptr[i + 1]; ++p)
      if (col[p] == j) return &val[static_cast<std::size_t>(p) * nb * nb];
    return nullptr;
  }
  [[nodiscard]] S* find_block(int i, int j) {
    return const_cast<S*>(static_cast<const Bcsr*>(this)->find_block(i, j));
  }

  template <class T>
  [[nodiscard]] Bcsr<T> convert() const {
    Bcsr<T> out;
    out.nb = nb;
    out.nrows = nrows;
    out.ptr = ptr;
    out.col = col;
    out.val.assign(val.begin(), val.end());
    return out;
  }
};

}  // namespace f3d::sparse
