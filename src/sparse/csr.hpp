#pragma once
// Compressed sparse row (PETSc "AIJ") matrix, templated on the stored
// scalar so the paper's single-precision-storage experiment (§2.2,
// Table 2) can store float entries while all arithmetic stays double.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "exec/pool.hpp"

namespace f3d::sparse {

namespace detail {

// The ONE implementation of the "arithmetic in double regardless of
// storage type" contract: every sparse kernel (point CSR rows, Bcsr
// block rows, generic fallback) funnels its inner product through these
// helpers, so a float-storage path cannot drift from the double path by
// re-implementing the promotion locally.

/// s = sum_k val[k] * x[col[k]], promoted per term, sequential order.
template <class S>
[[nodiscard]] inline double row_dot_promote(const S* val, const int* col,
                                            int count, const double* x) {
  double s = 0;
  for (int k = 0; k < count; ++k)
    s += static_cast<double>(val[k]) * x[col[k]];
  return s;
}

/// SIMD variant: 4-lane strip-mine (promoting loads for float storage,
/// gathered x), fixed pairwise lane combine, in-order scalar tail.
/// Rounds differently from row_dot_promote (strip-mined association) but
/// is itself fixed-order, so results stay bit-identical at any thread
/// count within the SIMD configuration.
template <class S>
[[nodiscard]] inline double row_dot_promote_simd(const S* val, const int* col,
                                                 int count, const double* x) {
  using simd::Vd;
  Vd acc = Vd::zero();
  int k = 0;
  for (; k + simd::kDoubleLanes <= count; k += simd::kDoubleLanes)
    acc += Vd::loadu(val + k) * Vd::gather(x, col + k);
  double s = acc.hsum();
  for (; k < count; ++k) s += static_cast<double>(val[k]) * x[col[k]];
  return s;
}

/// s = sum_c row[c] * xj[c] over a contiguous dense block row.
template <class S>
[[nodiscard]] inline double dense_dot_promote(const S* row, const double* xj,
                                              int count) {
  double s = 0;
  for (int c = 0; c < count; ++c)
    s += static_cast<double>(row[c]) * xj[c];
  return s;
}

/// SIMD dense dot: same strip-mine/tail structure as the CSR variant.
template <class S>
[[nodiscard]] inline double dense_dot_promote_simd(const S* row,
                                                   const double* xj,
                                                   int count) {
  using simd::Vd;
  Vd acc = Vd::zero();
  int c = 0;
  for (; c + simd::kDoubleLanes <= count; c += simd::kDoubleLanes)
    acc += Vd::loadu(row + c) * Vd::loadu(xj + c);
  double s = acc.hsum();
  for (; c < count; ++c) s += static_cast<double>(row[c]) * xj[c];
  return s;
}

}  // namespace detail

template <class S = double>
struct Csr {
  int n = 0;  ///< square: rows == cols
  std::vector<int> ptr;  ///< size n+1
  std::vector<int> col;  ///< column indices, ascending within a row
  std::vector<S> val;

  [[nodiscard]] std::size_t nnz() const { return col.size(); }

  void check() const {
    F3D_CHECK(static_cast<int>(ptr.size()) == n + 1);
    F3D_CHECK(col.size() == val.size());
    F3D_CHECK(ptr[0] == 0 && ptr[n] == static_cast<int>(col.size()));
    for (int i = 0; i < n; ++i) {
      F3D_CHECK(ptr[i] <= ptr[i + 1]);
      for (int p = ptr[i]; p < ptr[i + 1]; ++p) {
        F3D_CHECK(col[p] >= 0 && col[p] < n);
        if (p > ptr[i]) F3D_CHECK(col[p - 1] < col[p]);
      }
    }
  }

  /// y = A x. Arithmetic in double regardless of storage type (via the
  /// detail::row_dot_promote helpers). Rows are independent, so the loop
  /// runs row-parallel on the exec pool and the result is bit-identical
  /// for any thread count; the SIMD variant is selected once per call.
  void spmv(const double* x, double* y) const {
    if (simd::enabled())
      spmv_impl<true>(x, y);
    else
      spmv_impl<false>(x, y);
  }

  template <bool kSimd>
  void spmv_impl(const double* x, double* y) const {
    const S* v = val.data();
    const int* c = col.data();
    exec::pool().parallel_for(
        0, n,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const int b = ptr[i];
            const int count = ptr[i + 1] - b;
            y[i] = kSimd
                       ? detail::row_dot_promote_simd(v + b, c + b, count, x)
                       : detail::row_dot_promote(v + b, c + b, count, x);
          }
        },
        /*grain=*/512);
  }

  void spmv(const std::vector<double>& x, std::vector<double>& y) const {
    F3D_CHECK(static_cast<int>(x.size()) == n);
    y.resize(n);
    spmv(x.data(), y.data());
  }

  /// Pointer to entry (i, j), or nullptr if not in the pattern.
  [[nodiscard]] const S* find(int i, int j) const {
    for (int p = ptr[i]; p < ptr[i + 1]; ++p)
      if (col[p] == j) return &val[p];
    return nullptr;
  }
  [[nodiscard]] S* find(int i, int j) {
    return const_cast<S*>(static_cast<const Csr*>(this)->find(i, j));
  }

  /// Convert storage scalar (e.g. double -> float for the single-precision
  /// preconditioner experiment).
  template <class T>
  [[nodiscard]] Csr<T> convert() const {
    Csr<T> out;
    out.n = n;
    out.ptr = ptr;
    out.col = col;
    out.val.assign(val.begin(), val.end());
    return out;
  }
};

/// Block CSR (PETSc "BAIJ"): the paper's structural-blocking format.
/// Blocks are nb x nb, row-major, one per block-sparsity entry. The win
/// over point CSR: one column index per block instead of nb^2 — fewer
/// integer loads and more register reuse in spmv (paper §2.1.2).
template <class S = double>
struct Bcsr {
  int nb = 0;      ///< block size (4 incompressible, 5 compressible)
  int nrows = 0;   ///< block rows
  std::vector<int> ptr;  ///< block-row pointers, size nrows+1
  std::vector<int> col;  ///< block-column indices, ascending in a row
  std::vector<S> val;    ///< nb*nb scalars per block entry

  [[nodiscard]] std::size_t nblocks() const { return col.size(); }
  [[nodiscard]] int scalar_n() const { return nrows * nb; }

  void check() const {
    F3D_CHECK(nb >= 1);
    F3D_CHECK(static_cast<int>(ptr.size()) == nrows + 1);
    F3D_CHECK(val.size() ==
              col.size() * static_cast<std::size_t>(nb) * nb);
    for (int i = 0; i < nrows; ++i)
      for (int p = ptr[i]; p < ptr[i + 1]; ++p) {
        F3D_CHECK(col[p] >= 0 && col[p] < nrows);
        if (p > ptr[i]) F3D_CHECK(col[p - 1] < col[p]);
      }
  }

  /// y = A x with x, y of length nrows*nb (interlaced field layout).
  /// Dispatches to fully unrolled kernels for the block sizes the Euler
  /// models use (4 and 5) — the register-reuse benefit of structural
  /// blocking (paper §2.1.2) needs the compile-time block size.
  void spmv(const double* x, double* y) const {
    switch (nb) {
      case 4:
        spmv_fixed<4>(x, y);
        return;
      case 5:
        spmv_fixed<5>(x, y);
        return;
      default:
        spmv_generic(x, y);
    }
  }

  template <int NB>
  void spmv_fixed(const double* x, double* y) const {
    if (simd::enabled())
      spmv_fixed_impl<NB, true>(x, y);
    else
      spmv_fixed_impl<NB, false>(x, y);
  }

  template <int NB, bool kSimd>
  void spmv_fixed_impl(const double* x, double* y) const {
    const std::size_t bsz = static_cast<std::size_t>(NB) * NB;
    const S* vals = val.data();
    // Block rows are independent: row-parallel, bit-identical for any
    // thread count.
    exec::pool().parallel_for(
        0, nrows,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            double acc[NB] = {};
            for (int p = ptr[i]; p < ptr[i + 1]; ++p) {
              const S* b = vals + static_cast<std::size_t>(p) * bsz;
              const double* xj = &x[static_cast<std::size_t>(col[p]) * NB];
              for (int r = 0; r < NB; ++r) {
                const S* row = b + static_cast<std::size_t>(r) * NB;
                acc[r] += kSimd
                              ? detail::dense_dot_promote_simd(row, xj, NB)
                              : detail::dense_dot_promote(row, xj, NB);
              }
            }
            double* yi = &y[static_cast<std::size_t>(i) * NB];
            for (int r = 0; r < NB; ++r) yi[r] = acc[r];
          }
        },
        /*grain=*/256);
  }

  /// Fallback for arbitrary nb. Funnels through the same dot helpers as
  /// the fixed kernels (including the SIMD dispatch) so the direct-call
  /// equivalence tests hold bitwise in every configuration.
  void spmv_generic(const double* x, double* y) const {
    if (simd::enabled())
      spmv_generic_impl<true>(x, y);
    else
      spmv_generic_impl<false>(x, y);
  }

  template <bool kSimd>
  void spmv_generic_impl(const double* x, double* y) const {
    const std::size_t bsz = static_cast<std::size_t>(nb) * nb;
    const S* vals = val.data();
    F3D_ASSERT(nb <= 8);
    exec::pool().parallel_for(
        0, nrows,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
            for (int p = ptr[i]; p < ptr[i + 1]; ++p) {
              const S* b = vals + static_cast<std::size_t>(p) * bsz;
              const double* xj = &x[static_cast<std::size_t>(col[p]) * nb];
              for (int r = 0; r < nb; ++r) {
                const S* row = b + static_cast<std::size_t>(r) * nb;
                acc[r] += kSimd
                              ? detail::dense_dot_promote_simd(row, xj, nb)
                              : detail::dense_dot_promote(row, xj, nb);
              }
            }
            double* yi = &y[static_cast<std::size_t>(i) * nb];
            for (int r = 0; r < nb; ++r) yi[r] = acc[r];
          }
        },
        /*grain=*/256);
  }

  void spmv(const std::vector<double>& x, std::vector<double>& y) const {
    F3D_CHECK(static_cast<int>(x.size()) == scalar_n());
    y.resize(x.size());
    spmv(x.data(), y.data());
  }

  /// Pointer to the nb*nb block (i, j), or nullptr.
  [[nodiscard]] const S* find_block(int i, int j) const {
    for (int p = ptr[i]; p < ptr[i + 1]; ++p)
      if (col[p] == j) return &val[static_cast<std::size_t>(p) * nb * nb];
    return nullptr;
  }
  [[nodiscard]] S* find_block(int i, int j) {
    return const_cast<S*>(static_cast<const Bcsr*>(this)->find_block(i, j));
  }

  template <class T>
  [[nodiscard]] Bcsr<T> convert() const {
    Bcsr<T> out;
    out.nb = nb;
    out.nrows = nrows;
    out.ptr = ptr;
    out.col = col;
    out.val.assign(val.begin(), val.end());
    return out;
  }
};

}  // namespace f3d::sparse
