#include "sparse/abft.hpp"

#include <cfloat>
#include <cmath>

#include "common/error.hpp"
#include "exec/pool.hpp"
#include "exec/reduce.hpp"
#include "obs/obs.hpp"

namespace f3d::sparse {

namespace {

// Storage scalar decides the eps of the verify bound: the stored entries
// carry S's rounding, so the checksum identity holds only to S accuracy.
template <class S>
constexpr double storage_roundoff() {
  return sizeof(S) == sizeof(float) ? FLT_EPSILON : DBL_EPSILON;
}

template <class S>
void rebuild_csr(AbftGuard& g, const Csr<S>& a) {
  const int n = a.n;
  g.colsum.assign(static_cast<std::size_t>(n), 0.0);
  g.colsum_abs.assign(static_cast<std::size_t>(n), 0.0);
  g.unit_roundoff = storage_roundoff<S>();
  g.verifies = 0;
  g.failures = 0;
  // Column sums scatter across rows; keep the accumulation serial (it is
  // O(nnz) once per reassembly, not once per product) so the checksum
  // itself is trivially deterministic. Entries promote to double — the
  // same promote-on-load contract as the spmv the checksum guards.
  for (int i = 0; i < n; ++i)
    for (int p = a.ptr[i]; p < a.ptr[i + 1]; ++p) {
      const double v = static_cast<double>(a.val[p]);
      g.colsum[a.col[p]] += v;
      g.colsum_abs[a.col[p]] += std::fabs(v);
    }
}

template <class S>
void rebuild_bcsr(AbftGuard& g, const Bcsr<S>& a) {
  const int n = a.scalar_n();
  const int nb = a.nb;
  const std::size_t bsz = static_cast<std::size_t>(nb) * nb;
  g.colsum.assign(static_cast<std::size_t>(n), 0.0);
  g.colsum_abs.assign(static_cast<std::size_t>(n), 0.0);
  g.unit_roundoff = storage_roundoff<S>();
  g.verifies = 0;
  g.failures = 0;
  for (int i = 0; i < a.nrows; ++i)
    for (int p = a.ptr[i]; p < a.ptr[i + 1]; ++p) {
      const S* b = &a.val[p * bsz];
      const std::size_t j0 = static_cast<std::size_t>(a.col[p]) * nb;
      for (int r = 0; r < nb; ++r)
        for (int c = 0; c < nb; ++c) {
          const double v =
              static_cast<double>(b[static_cast<std::size_t>(r) * nb + c]);
          g.colsum[j0 + c] += v;
          g.colsum_abs[j0 + c] += std::fabs(v);
        }
    }
}

}  // namespace

void rebuild(AbftGuard& g, const Csr<double>& a) { rebuild_csr(g, a); }
void rebuild(AbftGuard& g, const Bcsr<double>& a) { rebuild_bcsr(g, a); }
void rebuild(AbftGuard& g, const Csr<float>& a) { rebuild_csr(g, a); }
void rebuild(AbftGuard& g, const Bcsr<float>& a) { rebuild_bcsr(g, a); }

bool verify_spmv(AbftGuard& g, const double* x, const double* y,
                 std::int64_t n) {
  F3D_CHECK_MSG(g.valid(), "AbftGuard not built (call rebuild after assembly)");
  F3D_CHECK_MSG(n == static_cast<std::int64_t>(g.colsum.size()),
                "AbftGuard size does not match the vector length");
  // Left side: 1ᵀy. Right side: cᵀx. Bound mass: (|A|ᵀ1)ᵀ|x|. All three
  // use the fixed-block tree reductions, so pass/fail is bit-identical
  // for any thread count.
  const double lhs = exec::sum(n, y);
  const double rhs = exec::dot(n, g.colsum.data(), x);
  g.scratch_.resize(static_cast<std::size_t>(n));
  double* ax = g.scratch_.data();
  exec::pool().parallel_for(
      0, n,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) ax[i] = std::fabs(x[i]);
      },
      /*grain=*/4096);
  const double mass = exec::dot(n, g.colsum_abs.data(), ax);
  const double bound = g.slack * g.unit_roundoff * mass;

  ++g.verifies;
  obs::Registry::global().count("abft.verifies");
  // A non-finite side always fails: a flip that lands the exponent on
  // all-ones produces Inf/NaN, and NaN comparisons would otherwise let
  // it slip through the <= below.
  const double diff = std::fabs(lhs - rhs);
  const bool ok = std::isfinite(lhs) && std::isfinite(rhs) && diff <= bound;
  if (!ok) {
    ++g.failures;
    obs::Registry::global().count("abft.verify_failures");
  }
  return ok;
}

}  // namespace f3d::sparse
