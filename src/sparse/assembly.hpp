#pragma once
// Matrix assembly from a mesh stencil.
//
// The Jacobian of a vertex-centered scheme couples each vertex to itself
// and its edge neighbors, with an nb x nb dense block per coupling. The
// same operator can be realized as:
//  * Bcsr            — block CSR over the vertex graph (paper's "structural
//                      blocking", interlaced by construction);
//  * point CSR, interlaced     — scalar rows v*nb+c;
//  * point CSR, non-interlaced — scalar rows c*N+v (the vector-machine
//                      layout whose bandwidth is ~N, paper Eq. 1).
// All three multiply identical vectors to identical results (up to layout
// permutation); tests enforce this.

#include <functional>

#include "mesh/mesh.hpp"
#include "sparse/csr.hpp"
#include "sparse/layout.hpp"

namespace f3d::sparse {

/// Vertex coupling stencil: CSR adjacency including the self-coupling,
/// sorted ascending within each row.
struct Stencil {
  int n = 0;
  std::vector<int> ptr;
  std::vector<int> col;

  [[nodiscard]] std::size_t nnz() const { return col.size(); }
};

/// Stencil from mesh connectivity (self + edge neighbors).
Stencil stencil_from_mesh(const mesh::UnstructuredMesh& mesh);

/// Block value callback: fill `block` (nb*nb row-major) for coupling
/// (row_vertex, col_vertex).
using BlockValueFn =
    std::function<void(int row_vertex, int col_vertex, int nb, double* block)>;

/// Deterministic synthetic Jacobian-like values: strongly diagonally
/// dominant self-coupling blocks, O(1) off-diagonal entries pseudo-random
/// in the coupling indices. Good enough to exercise every kernel and keep
/// ILU stable.
BlockValueFn synthetic_values(const Stencil& stencil, unsigned seed = 0);

/// Assemble block CSR over the vertex graph.
Bcsr<double> build_bcsr(const Stencil& stencil, int nb, const BlockValueFn& fn);

/// Assemble point CSR with the given field layout. The operator equals the
/// Bcsr from the same (stencil, fn) after layout permutation of x and y.
Csr<double> build_point_csr(const Stencil& stencil, int nb,
                            const BlockValueFn& fn, FieldLayout layout);

/// Expand a Bcsr into the equivalent interlaced point CSR (used by the
/// point-ILU path and by tests).
Csr<double> bcsr_to_point(const Bcsr<double>& b);

}  // namespace f3d::sparse
