#pragma once
// Dense vector kernels used by the Krylov solver. Free functions over raw
// spans so the same code serves interlaced and non-interlaced field
// storage (which differ only in how callers index, not in these kernels).

#include <cstddef>
#include <vector>

namespace f3d::sparse {

using Vec = std::vector<double>;

double dot(const Vec& x, const Vec& y);
double norm2(const Vec& x);
/// y += a * x
void axpy(double a, const Vec& x, Vec& y);
/// y = x + a * y
void aypx(double a, const Vec& x, Vec& y);
/// w = a * x + y
void waxpy(Vec& w, double a, const Vec& x, const Vec& y);
void scale(Vec& x, double a);
void set_all(Vec& x, double a);
/// max_i |x_i|
double norm_inf(const Vec& x);

}  // namespace f3d::sparse
