#include "sparse/assembly.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace f3d::sparse {

std::vector<double> convert_layout(const std::vector<double>& x,
                                   FieldLayout from, FieldLayout to,
                                   int num_vertices, int nb) {
  F3D_CHECK(static_cast<int>(x.size()) == num_vertices * nb);
  if (from == to) return x;
  std::vector<double> out(x.size());
  for (int v = 0; v < num_vertices; ++v)
    for (int c = 0; c < nb; ++c)
      out[field_index(to, num_vertices, nb, v, c)] =
          x[field_index(from, num_vertices, nb, v, c)];
  return out;
}

Stencil stencil_from_mesh(const mesh::UnstructuredMesh& mesh) {
  const int n = mesh.num_vertices();
  auto adj = mesh.vertex_adjacency();
  Stencil s;
  s.n = n;
  s.ptr.assign(n + 1, 0);
  for (int i = 0; i < n; ++i)
    s.ptr[i + 1] = s.ptr[i] + (adj.ptr[i + 1] - adj.ptr[i]) + 1;  // +self
  s.col.resize(s.ptr[n]);
  for (int i = 0; i < n; ++i) {
    int q = s.ptr[i];
    bool self_placed = false;
    for (int p = adj.ptr[i]; p < adj.ptr[i + 1]; ++p) {
      const int j = adj.adj[p];
      if (!self_placed && j > i) {
        s.col[q++] = i;
        self_placed = true;
      }
      s.col[q++] = j;
    }
    if (!self_placed) s.col[q++] = i;
    F3D_CHECK(q == s.ptr[i + 1]);
  }
  return s;
}

BlockValueFn synthetic_values(const Stencil& stencil, unsigned seed) {
  // Degree per vertex for diagonal dominance scaling.
  std::vector<int> degree(stencil.n);
  for (int i = 0; i < stencil.n; ++i)
    degree[i] = stencil.ptr[i + 1] - stencil.ptr[i];

  return [degree, seed](int vi, int vj, int nb, double* block) {
    auto hash01 = [seed](unsigned a, unsigned b, unsigned c, unsigned d) {
      // SplitMix-style hash of the coupling indices -> [-1, 1).
      std::uint64_t x = (static_cast<std::uint64_t>(a) << 40) ^
                        (static_cast<std::uint64_t>(b) << 20) ^
                        (static_cast<std::uint64_t>(c) << 8) ^ d ^
                        (static_cast<std::uint64_t>(seed) << 52);
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      x ^= x >> 31;
      return static_cast<double>(x >> 11) * 0x1.0p-52 - 1.0;
    };
    for (int a = 0; a < nb; ++a) {
      for (int b = 0; b < nb; ++b) {
        double v = 0.25 * hash01(vi, vj, a, b);
        if (vi == vj && a == b)
          v += static_cast<double>(degree[vi]) + nb;  // dominant diagonal
        block[a * nb + b] = v;
      }
    }
  };
}

Bcsr<double> build_bcsr(const Stencil& stencil, int nb,
                        const BlockValueFn& fn) {
  F3D_CHECK(nb >= 1 && nb <= 8);
  Bcsr<double> m;
  m.nb = nb;
  m.nrows = stencil.n;
  m.ptr = stencil.ptr;
  m.col = stencil.col;
  m.val.resize(stencil.nnz() * static_cast<std::size_t>(nb) * nb);
  for (int i = 0; i < stencil.n; ++i)
    for (int p = stencil.ptr[i]; p < stencil.ptr[i + 1]; ++p)
      fn(i, stencil.col[p], nb, &m.val[static_cast<std::size_t>(p) * nb * nb]);
  m.check();
  return m;
}

Csr<double> build_point_csr(const Stencil& stencil, int nb,
                            const BlockValueFn& fn, FieldLayout layout) {
  F3D_CHECK(nb >= 1 && nb <= 8);
  const int nv = stencil.n;
  const int n = nv * nb;
  Csr<double> m;
  m.n = n;
  m.ptr.assign(n + 1, 0);

  // Row lengths: every scalar row of vertex v has (stencil row length)*nb
  // entries regardless of layout.
  for (int v = 0; v < nv; ++v) {
    const int len = (stencil.ptr[v + 1] - stencil.ptr[v]) * nb;
    for (int c = 0; c < nb; ++c)
      m.ptr[field_index(layout, nv, nb, v, c) + 1] = len;
  }
  for (int i = 0; i < n; ++i) m.ptr[i + 1] += m.ptr[i];
  m.col.resize(m.ptr[n]);
  m.val.resize(m.ptr[n]);

  std::vector<double> block(static_cast<std::size_t>(nb) * nb);
  // Scatter each block's scalars to their point rows; column order within
  // a row must be ascending, which we get by sorting entries per row at
  // the end (layouts permute columns differently).
  std::vector<int> cursor(m.ptr.begin(), m.ptr.end() - 1);
  for (int v = 0; v < nv; ++v) {
    for (int p = stencil.ptr[v]; p < stencil.ptr[v + 1]; ++p) {
      const int w = stencil.col[p];
      fn(v, w, nb, block.data());
      for (int a = 0; a < nb; ++a) {
        const int row = field_index(layout, nv, nb, v, a);
        for (int b = 0; b < nb; ++b) {
          const int cidx = cursor[row]++;
          m.col[cidx] = field_index(layout, nv, nb, w, b);
          m.val[cidx] = block[static_cast<std::size_t>(a) * nb + b];
        }
      }
    }
  }
  // Sort each row by column (pairs).
  std::vector<std::pair<int, double>> tmp;
  for (int i = 0; i < n; ++i) {
    tmp.clear();
    for (int p = m.ptr[i]; p < m.ptr[i + 1]; ++p) tmp.push_back({m.col[p], m.val[p]});
    std::sort(tmp.begin(), tmp.end());
    for (int k = 0; k < static_cast<int>(tmp.size()); ++k) {
      m.col[m.ptr[i] + k] = tmp[k].first;
      m.val[m.ptr[i] + k] = tmp[k].second;
    }
  }
  m.check();
  return m;
}

Csr<double> bcsr_to_point(const Bcsr<double>& b) {
  const int nb = b.nb;
  const int nv = b.nrows;
  Csr<double> m;
  m.n = nv * nb;
  m.ptr.assign(m.n + 1, 0);
  for (int v = 0; v < nv; ++v) {
    const int len = (b.ptr[v + 1] - b.ptr[v]) * nb;
    for (int c = 0; c < nb; ++c) m.ptr[v * nb + c + 1] = len;
  }
  for (int i = 0; i < m.n; ++i) m.ptr[i + 1] += m.ptr[i];
  m.col.resize(m.ptr[m.n]);
  m.val.resize(m.ptr[m.n]);
  std::vector<int> cursor(m.ptr.begin(), m.ptr.end() - 1);
  for (int v = 0; v < nv; ++v) {
    for (int p = b.ptr[v]; p < b.ptr[v + 1]; ++p) {
      const int w = b.col[p];
      const double* blk = &b.val[static_cast<std::size_t>(p) * nb * nb];
      for (int a = 0; a < nb; ++a) {
        const int row = v * nb + a;
        for (int c = 0; c < nb; ++c) {
          const int q = cursor[row]++;
          m.col[q] = w * nb + c;
          m.val[q] = blk[static_cast<std::size_t>(a) * nb + c];
        }
      }
    }
  }
  // Block columns ascending already => scalar columns ascending per row.
  m.check();
  return m;
}

}  // namespace f3d::sparse
