#include "sparse/ilu.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "common/densemat.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace f3d::sparse {

IluPattern ilu_symbolic(int n, const std::vector<int>& aptr,
                        const std::vector<int>& acol, int level) {
  F3D_CHECK(level >= 0);
  IluPattern pat;
  pat.n = n;
  pat.ptr.assign(n + 1, 0);
  pat.diag.assign(n, -1);

  // U-part (cols > k) of each processed row, with fill levels, needed by
  // later rows.
  std::vector<std::vector<std::pair<int, int>>> urow(n);

  std::vector<int> cols_out;
  cols_out.reserve(acol.size() * 2);

  // Workspace: ordered col -> level map for the current row.
  std::map<int, int> w;
  for (int i = 0; i < n; ++i) {
    w.clear();
    bool has_diag = false;
    for (int p = aptr[i]; p < aptr[i + 1]; ++p) {
      w.emplace(acol[p], 0);
      if (acol[p] == i) has_diag = true;
    }
    F3D_CHECK_MSG(has_diag, "ILU requires a structurally nonzero diagonal");

    // Merge fill contributions from all k < i present in the (growing)
    // workspace, ascending. std::map iteration stays valid under inserts.
    for (auto it = w.begin(); it != w.end() && it->first < i; ++it) {
      const int k = it->first;
      const int lev_ik = it->second;
      for (const auto& [j, lev_kj] : urow[k]) {
        const int lev = lev_ik + lev_kj + 1;
        if (lev > level) continue;
        auto [jt, inserted] = w.emplace(j, lev);
        if (!inserted && jt->second > lev) jt->second = lev;
      }
    }

    pat.ptr[i + 1] = pat.ptr[i] + static_cast<int>(w.size());
    for (const auto& [j, lev] : w) {
      if (j == i) pat.diag[i] = static_cast<int>(cols_out.size());
      if (j > i) urow[i].push_back({j, lev});
      cols_out.push_back(j);
    }
    F3D_CHECK(pat.diag[i] >= 0);
  }
  pat.col = std::move(cols_out);
  return pat;
}

namespace {

// Group rows by dependency depth. `deps(i)` yields the in-factor
// dependencies of row i via a callback; rows must be visited in an order
// where dependencies come first (ascending for L, descending for U).
TriSchedule build_levels(int n, const std::vector<int>& level) {
  TriSchedule sch;
  int nlev = 0;
  for (int i = 0; i < n; ++i) nlev = std::max(nlev, level[i] + 1);
  sch.level_ptr.assign(nlev + 1, 0);
  for (int i = 0; i < n; ++i) ++sch.level_ptr[level[i] + 1];
  for (int l = 0; l < nlev; ++l) sch.level_ptr[l + 1] += sch.level_ptr[l];
  sch.rows.resize(n);
  std::vector<int> next(sch.level_ptr.begin(), sch.level_ptr.end() - 1);
  // Ascending row ids within each level (stable fill in row order).
  for (int i = 0; i < n; ++i) sch.rows[next[level[i]]++] = i;
  return sch;
}

}  // namespace

TriSchedule lower_levels(const IluPattern& pat) {
  const int n = pat.n;
  std::vector<int> level(n, 0);
  for (int i = 0; i < n; ++i) {
    int lev = 0;
    for (int p = pat.ptr[i]; p < pat.diag[i]; ++p)
      lev = std::max(lev, level[pat.col[p]] + 1);
    level[i] = lev;
  }
  return build_levels(n, level);
}

TriSchedule upper_levels(const IluPattern& pat) {
  const int n = pat.n;
  std::vector<int> level(n, 0);
  for (int i = n - 1; i >= 0; --i) {
    int lev = 0;
    for (int p = pat.diag[i] + 1; p < pat.ptr[i + 1]; ++p)
      lev = std::max(lev, level[pat.col[p]] + 1);
    level[i] = lev;
  }
  return build_levels(n, level);
}

IluPattern ilu_symbolic(const Csr<double>& a, int level) {
  return ilu_symbolic(a.n, a.ptr, a.col, level);
}

IluPattern ilu_symbolic(const Bcsr<double>& a, int level) {
  return ilu_symbolic(a.nrows, a.ptr, a.col, level);
}

namespace {

// Report a zero pivot at `row`: records it when the caller passed a
// status, throws NumericalError otherwise. Returns true when the caller
// should stop factoring.
bool pivot_failure(IluFactorStatus* status, int row) {
  if (status != nullptr) {
    status->ok = false;
    status->bad_row = row;
    return true;
  }
  F3D_NUMERIC_CHECK_MSG(false, "zero pivot in ILU at row " + std::to_string(row));
  return true;  // unreachable
}

// Shared numeric point ILU in double; callers cast to the storage scalar.
std::vector<double> factor_point_double(const Csr<double>& a,
                                        const IluPattern& pat,
                                        IluFactorStatus* status) {
  F3D_OBS_SPAN("ilu.factor");
  obs::Registry::global().count("sparse.ilu.factorizations");
  F3D_CHECK(a.n == pat.n);
  const int n = pat.n;
  std::vector<double> val(pat.nnz(), 0.0);

  // Scatter A into the (superset) pattern.
  for (int i = 0; i < n; ++i) {
    int q = pat.ptr[i];
    for (int p = a.ptr[i]; p < a.ptr[i + 1]; ++p) {
      const int j = a.col[p];
      while (pat.col[q] < j) ++q;
      F3D_CHECK_MSG(pat.col[q] == j, "pattern does not contain A");
      val[q] = a.val[p];
    }
  }

  for (int i = 0; i < n; ++i) {
    for (int pos = pat.ptr[i]; pos < pat.diag[i]; ++pos) {
      const int k = pat.col[pos];
      const double ukk = val[pat.diag[k]];
      if (ukk == 0.0 && pivot_failure(status, k)) return val;
      const double lik = val[pos] / ukk;
      val[pos] = lik;
      // Row update: row_i -= lik * U-part of row k (pattern-restricted).
      int r = pos + 1;
      for (int q = pat.diag[k] + 1; q < pat.ptr[k + 1]; ++q) {
        const int j = pat.col[q];
        while (r < pat.ptr[i + 1] && pat.col[r] < j) ++r;
        if (r == pat.ptr[i + 1]) break;
        if (pat.col[r] == j) val[r] -= lik * val[q];
      }
    }
    if (val[pat.diag[i]] == 0.0 && pivot_failure(status, i)) return val;
  }
  return val;
}

std::vector<double> factor_block_double(const Bcsr<double>& a,
                                        const IluPattern& pat,
                                        IluFactorStatus* status) {
  F3D_OBS_SPAN("ilu.factor");
  obs::Registry::global().count("sparse.ilu.factorizations");
  F3D_CHECK(a.nrows == pat.n);
  const int n = pat.n;
  const int nb = a.nb;
  const std::size_t bsz = static_cast<std::size_t>(nb) * nb;
  std::vector<double> val(pat.nnz() * bsz, 0.0);

  for (int i = 0; i < n; ++i) {
    int q = pat.ptr[i];
    for (int p = a.ptr[i]; p < a.ptr[i + 1]; ++p) {
      const int j = a.col[p];
      while (pat.col[q] < j) ++q;
      F3D_CHECK_MSG(pat.col[q] == j, "pattern does not contain A");
      std::copy_n(&a.val[p * bsz], bsz, &val[q * bsz]);
    }
  }

  for (int i = 0; i < n; ++i) {
    for (int pos = pat.ptr[i]; pos < pat.diag[i]; ++pos) {
      const int k = pat.col[pos];
      double* blk_ik = &val[static_cast<std::size_t>(pos) * bsz];
      // blk_ik := blk_ik * (A_kk)^{-1}; A_kk already holds its LU factors.
      dense::right_lu_solve_block(nb, &val[static_cast<std::size_t>(pat.diag[k]) * bsz],
                                  blk_ik);
      int r = pos + 1;
      for (int u = pat.diag[k] + 1; u < pat.ptr[k + 1]; ++u) {
        const int j = pat.col[u];
        while (r < pat.ptr[i + 1] && pat.col[r] < j) ++r;
        if (r == pat.ptr[i + 1]) break;
        if (pat.col[r] == j)
          dense::gemm_sub(nb, blk_ik, &val[static_cast<std::size_t>(u) * bsz],
                          &val[static_cast<std::size_t>(r) * bsz]);
      }
    }
    const bool ok =
        dense::lu_factor(nb, &val[static_cast<std::size_t>(pat.diag[i]) * bsz]);
    if (!ok) {
      if (status != nullptr) {
        status->ok = false;
        status->bad_row = i;
        return val;
      }
      F3D_NUMERIC_CHECK_MSG(ok, "singular diagonal block in block ILU at row " +
                                    std::to_string(i));
    }
  }
  return val;
}

}  // namespace

template <class S>
PointIlu<S> ilu_factor_point(const Csr<double>& a, const IluPattern& pat,
                             IluFactorStatus* status) {
  PointIlu<S> out;
  out.pat = pat;
  auto v = factor_point_double(a, pat, status);
  out.val.assign(v.begin(), v.end());
  return out;
}

template <class S>
BlockIlu<S> ilu_factor_block(const Bcsr<double>& a, const IluPattern& pat,
                             IluFactorStatus* status) {
  BlockIlu<S> out;
  out.nb = a.nb;
  out.pat = pat;
  auto v = factor_block_double(a, pat, status);
  out.val.assign(v.begin(), v.end());
  return out;
}

template <class S>
void BlockIlu<S>::solve(const double* b, double* x) const {
  const int n = pat.n;
  const std::size_t bsz = static_cast<std::size_t>(nb) * nb;
  // Forward: x_i = b_i - sum_{j<i} L_ij x_j (unit block diagonal).
  for (int i = 0; i < n; ++i) {
    double* xi = x + static_cast<std::size_t>(i) * nb;
    const double* bi = b + static_cast<std::size_t>(i) * nb;
    for (int c = 0; c < nb; ++c) xi[c] = bi[c];
    for (int p = pat.ptr[i]; p < pat.diag[i]; ++p)
      dense::gemv_sub(nb, &val[static_cast<std::size_t>(p) * bsz],
                      x + static_cast<std::size_t>(pat.col[p]) * nb, xi);
  }
  // Backward: x_i = U_ii^{-1} (x_i - sum_{j>i} U_ij x_j).
  double tmp[8];
  F3D_CHECK(nb <= 8);
  for (int i = n - 1; i >= 0; --i) {
    double* xi = x + static_cast<std::size_t>(i) * nb;
    for (int p = pat.diag[i] + 1; p < pat.ptr[i + 1]; ++p)
      dense::gemv_sub(nb, &val[static_cast<std::size_t>(p) * bsz],
                      x + static_cast<std::size_t>(pat.col[p]) * nb, xi);
    dense::lu_solve(nb, &val[static_cast<std::size_t>(pat.diag[i]) * bsz], xi,
                    tmp);
    for (int c = 0; c < nb; ++c) xi[c] = tmp[c];
  }
}

template <class S>
void BlockIlu<S>::solve_levels(const TriSchedule& fwd, const TriSchedule& bwd,
                               const double* b, double* x) const {
  const std::size_t bsz = static_cast<std::size_t>(nb) * nb;
  auto& pool = exec::pool();
  // Per-row arithmetic is exactly solve()'s: the schedule only reorders
  // *across* independent rows, so results are bit-identical to solve().
  for (int l = 0; l < fwd.num_levels(); ++l) {
    pool.parallel_for(
        fwd.level_ptr[l], fwd.level_ptr[l + 1],
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t k = lo; k < hi; ++k) {
            const int i = fwd.rows[k];
            double* xi = x + static_cast<std::size_t>(i) * nb;
            const double* bi = b + static_cast<std::size_t>(i) * nb;
            for (int c = 0; c < nb; ++c) xi[c] = bi[c];
            for (int p = pat.ptr[i]; p < pat.diag[i]; ++p)
              dense::gemv_sub(nb, &val[static_cast<std::size_t>(p) * bsz],
                              x + static_cast<std::size_t>(pat.col[p]) * nb,
                              xi);
          }
        },
        /*grain=*/128);
  }
  F3D_CHECK(nb <= 8);
  for (int l = 0; l < bwd.num_levels(); ++l) {
    pool.parallel_for(
        bwd.level_ptr[l], bwd.level_ptr[l + 1],
        [&](std::int64_t lo, std::int64_t hi) {
          double tmp[8];
          for (std::int64_t k = lo; k < hi; ++k) {
            const int i = bwd.rows[k];
            double* xi = x + static_cast<std::size_t>(i) * nb;
            for (int p = pat.diag[i] + 1; p < pat.ptr[i + 1]; ++p)
              dense::gemv_sub(nb, &val[static_cast<std::size_t>(p) * bsz],
                              x + static_cast<std::size_t>(pat.col[p]) * nb,
                              xi);
            dense::lu_solve(nb, &val[static_cast<std::size_t>(pat.diag[i]) * bsz],
                            xi, tmp);
            for (int c = 0; c < nb; ++c) xi[c] = tmp[c];
          }
        },
        /*grain=*/128);
  }
}

// Explicit instantiations for the two storage precisions.
template struct BlockIlu<double>;
template struct BlockIlu<float>;
template PointIlu<double> ilu_factor_point<double>(const Csr<double>&,
                                                   const IluPattern&,
                                                   IluFactorStatus*);
template PointIlu<float> ilu_factor_point<float>(const Csr<double>&,
                                                 const IluPattern&,
                                                 IluFactorStatus*);
template BlockIlu<double> ilu_factor_block<double>(const Bcsr<double>&,
                                                   const IluPattern&,
                                                   IluFactorStatus*);
template BlockIlu<float> ilu_factor_block<float>(const Bcsr<double>&,
                                                 const IluPattern&,
                                                 IluFactorStatus*);

}  // namespace f3d::sparse
