#include "sparse/vec.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "exec/pool.hpp"
#include "exec/reduce.hpp"

namespace f3d::sparse {

namespace {
// Elements per parallel_for chunk for the elementwise kernels; small
// vectors run inline with zero synchronization.
constexpr std::int64_t kVecGrain = 8192;

// The elementwise kernels vectorize 4 lanes at a time with the identical
// per-element arithmetic (no reassociation), so the SIMD paths here are
// bit-identical to the scalar loops — unlike the reductions, there is no
// per-configuration rounding caveat for axpy/aypx/waxpy/scale.
}  // namespace

double dot(const Vec& x, const Vec& y) {
  F3D_CHECK(x.size() == y.size());
  // Fixed-block tree reduction: bit-identical for any thread count (the
  // Krylov solvers' determinism hinges on this — see exec/reduce.hpp).
  return exec::dot(static_cast<std::int64_t>(x.size()), x.data(), y.data());
}

double norm2(const Vec& x) { return std::sqrt(dot(x, x)); }

void axpy(double a, const Vec& x, Vec& y) {
  F3D_CHECK(x.size() == y.size());
  const bool use_simd = simd::enabled();
  exec::pool().parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&, use_simd](std::int64_t lo, std::int64_t hi) {
        std::int64_t i = lo;
        if (use_simd) {
          const simd::Vd va = simd::Vd::broadcast(a);
          for (; i + simd::kDoubleLanes <= hi; i += simd::kDoubleLanes)
            (simd::Vd::loadu(&y[i]) + va * simd::Vd::loadu(&x[i]))
                .storeu(&y[i]);
        }
        for (; i < hi; ++i) y[i] += a * x[i];
      },
      kVecGrain);
}

void aypx(double a, const Vec& x, Vec& y) {
  F3D_CHECK(x.size() == y.size());
  const bool use_simd = simd::enabled();
  exec::pool().parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&, use_simd](std::int64_t lo, std::int64_t hi) {
        std::int64_t i = lo;
        if (use_simd) {
          const simd::Vd va = simd::Vd::broadcast(a);
          for (; i + simd::kDoubleLanes <= hi; i += simd::kDoubleLanes)
            (simd::Vd::loadu(&x[i]) + va * simd::Vd::loadu(&y[i]))
                .storeu(&y[i]);
        }
        for (; i < hi; ++i) y[i] = x[i] + a * y[i];
      },
      kVecGrain);
}

void waxpy(Vec& w, double a, const Vec& x, const Vec& y) {
  F3D_CHECK(x.size() == y.size());
  w.resize(x.size());
  const bool use_simd = simd::enabled();
  exec::pool().parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&, use_simd](std::int64_t lo, std::int64_t hi) {
        std::int64_t i = lo;
        if (use_simd) {
          const simd::Vd va = simd::Vd::broadcast(a);
          for (; i + simd::kDoubleLanes <= hi; i += simd::kDoubleLanes)
            (va * simd::Vd::loadu(&x[i]) + simd::Vd::loadu(&y[i]))
                .storeu(&w[i]);
        }
        for (; i < hi; ++i) w[i] = a * x[i] + y[i];
      },
      kVecGrain);
}

void scale(Vec& x, double a) {
  const bool use_simd = simd::enabled();
  exec::pool().parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&, use_simd](std::int64_t lo, std::int64_t hi) {
        std::int64_t i = lo;
        if (use_simd) {
          const simd::Vd va = simd::Vd::broadcast(a);
          for (; i + simd::kDoubleLanes <= hi; i += simd::kDoubleLanes)
            (va * simd::Vd::loadu(&x[i])).storeu(&x[i]);
        }
        for (; i < hi; ++i) x[i] *= a;
      },
      kVecGrain);
}

void set_all(Vec& x, double a) {
  exec::pool().parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) x[i] = a;
      },
      kVecGrain);
}

double norm_inf(const Vec& x) {
  return exec::max_abs(static_cast<std::int64_t>(x.size()), x.data());
}

}  // namespace f3d::sparse
