#include "sparse/vec.hpp"

#include <cmath>

#include "common/error.hpp"
#include "exec/pool.hpp"
#include "exec/reduce.hpp"

namespace f3d::sparse {

namespace {
// Elements per parallel_for chunk for the elementwise kernels; small
// vectors run inline with zero synchronization.
constexpr std::int64_t kVecGrain = 8192;
}  // namespace

double dot(const Vec& x, const Vec& y) {
  F3D_CHECK(x.size() == y.size());
  // Fixed-block tree reduction: bit-identical for any thread count (the
  // Krylov solvers' determinism hinges on this — see exec/reduce.hpp).
  return exec::dot(static_cast<std::int64_t>(x.size()), x.data(), y.data());
}

double norm2(const Vec& x) { return std::sqrt(dot(x, x)); }

void axpy(double a, const Vec& x, Vec& y) {
  F3D_CHECK(x.size() == y.size());
  exec::pool().parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) y[i] += a * x[i];
      },
      kVecGrain);
}

void aypx(double a, const Vec& x, Vec& y) {
  F3D_CHECK(x.size() == y.size());
  exec::pool().parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) y[i] = x[i] + a * y[i];
      },
      kVecGrain);
}

void waxpy(Vec& w, double a, const Vec& x, const Vec& y) {
  F3D_CHECK(x.size() == y.size());
  w.resize(x.size());
  exec::pool().parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) w[i] = a * x[i] + y[i];
      },
      kVecGrain);
}

void scale(Vec& x, double a) {
  exec::pool().parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) x[i] *= a;
      },
      kVecGrain);
}

void set_all(Vec& x, double a) {
  exec::pool().parallel_for(
      0, static_cast<std::int64_t>(x.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) x[i] = a;
      },
      kVecGrain);
}

double norm_inf(const Vec& x) {
  return exec::max_abs(static_cast<std::int64_t>(x.size()), x.data());
}

}  // namespace f3d::sparse
