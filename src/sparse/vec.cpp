#include "sparse/vec.hpp"

#include <cmath>

#include "common/error.hpp"

namespace f3d::sparse {

double dot(const Vec& x, const Vec& y) {
  F3D_CHECK(x.size() == y.size());
  double s = 0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double norm2(const Vec& x) { return std::sqrt(dot(x, x)); }

void axpy(double a, const Vec& x, Vec& y) {
  F3D_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void aypx(double a, const Vec& x, Vec& y) {
  F3D_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + a * y[i];
}

void waxpy(Vec& w, double a, const Vec& x, const Vec& y) {
  F3D_CHECK(x.size() == y.size());
  w.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) w[i] = a * x[i] + y[i];
}

void scale(Vec& x, double a) {
  for (auto& v : x) v *= a;
}

void set_all(Vec& x, double a) {
  for (auto& v : x) v = a;
}

double norm_inf(const Vec& x) {
  double m = 0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace f3d::sparse
