#pragma once
// Field storage layouts (paper §2.1.1).
//
// A multicomponent field over N mesh vertices with nb components can be
// stored interlaced (u1,v1,w1,p1, u2,v2,...) — the cache-friendly order —
// or non-interlaced (u1..uN, v1..vN, ...) — the vector-machine order the
// original FUN3D used. The scalar index maps are:
//   interlaced:      idx(v, c) = v * nb + c
//   non-interlaced:  idx(v, c) = c * N + v

#include <vector>

#include "common/error.hpp"

namespace f3d::sparse {

enum class FieldLayout {
  kInterlaced,
  kNonInterlaced,
};

/// Scalar index of component c at vertex v.
inline int field_index(FieldLayout layout, int num_vertices, int nb, int v,
                       int c) {
  return layout == FieldLayout::kInterlaced ? v * nb + c
                                            : c * num_vertices + v;
}

/// Reorder a scalar vector from one layout to the other.
std::vector<double> convert_layout(const std::vector<double>& x,
                                   FieldLayout from, FieldLayout to,
                                   int num_vertices, int nb);

}  // namespace f3d::sparse
