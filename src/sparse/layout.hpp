#pragma once
// Field storage layouts (paper §2.1.1).
//
// A multicomponent field over N mesh vertices with nb components can be
// stored interlaced (u1,v1,w1,p1, u2,v2,...) — the cache-friendly order —
// or non-interlaced (u1..uN, v1..vN, ...) — the vector-machine order the
// original FUN3D used. The scalar index maps are:
//   interlaced:      idx(v, c) = v * nb + c
//   non-interlaced:  idx(v, c) = c * N + v

#include <vector>

#include "common/error.hpp"

namespace f3d::sparse {

enum class FieldLayout {
  kInterlaced,
  kNonInterlaced,
};

/// Scalar index of component c at vertex v.
inline int field_index(FieldLayout layout, int num_vertices, int nb, int v,
                       int c) {
  return layout == FieldLayout::kInterlaced ? v * nb + c
                                            : c * num_vertices + v;
}

/// Reorder a scalar vector from one layout to the other.
std::vector<double> convert_layout(const std::vector<double>& x,
                                   FieldLayout from, FieldLayout to,
                                   int num_vertices, int nb);

/// Zero-copy SoA-blocked view over a multicomponent field: exposes the
/// per-component strides the SIMD kernels need without reordering any
/// bytes. Aliasing the caller's storage is the point — the hot paths
/// must not pay a gather/copy just to get vector-friendly addressing
/// (the SoaViewAliasesStorage property test pins this down).
template <class T>
struct SoaView {
  T* data = nullptr;
  int num_vertices = 0;
  int nb = 0;
  FieldLayout layout = FieldLayout::kInterlaced;

  /// Address of component c at vertex v (same map as field_index).
  [[nodiscard]] T* at(int v, int c) const {
    return data + field_index(layout, num_vertices, nb, v, c);
  }
  /// Scalar distance between vertex v and v+1 at fixed component.
  [[nodiscard]] std::ptrdiff_t vertex_stride() const {
    return layout == FieldLayout::kInterlaced ? nb : 1;
  }
  /// Scalar distance between component c and c+1 at fixed vertex.
  [[nodiscard]] std::ptrdiff_t component_stride() const {
    return layout == FieldLayout::kInterlaced ? 1 : num_vertices;
  }
  /// Contiguous nb-component block at vertex v (interlaced layout only —
  /// what Vd::loadu wants for the nb == 4 fast paths).
  [[nodiscard]] T* block(int v) const {
    F3D_ASSERT(layout == FieldLayout::kInterlaced);
    return data + static_cast<std::ptrdiff_t>(v) * nb;
  }
};

/// View over a vector's bytes; no copy, no ownership.
template <class T>
[[nodiscard]] inline SoaView<T> soa_view(std::vector<T>& x, FieldLayout layout,
                                         int num_vertices, int nb) {
  F3D_CHECK(static_cast<int>(x.size()) == num_vertices * nb);
  return SoaView<T>{x.data(), num_vertices, nb, layout};
}

}  // namespace f3d::sparse
