#pragma once
// Progress watchdog: detects livelock-style stalls the per-rung solver
// watchdogs miss — the outer PTC loop cycling (accept, reject, recover)
// while the nonlinear residual goes nowhere. Deliberately deterministic:
// it observes only the accepted-step residual history, never the wall
// clock, so a clean converging solve can never false-positive because a
// machine was slow that day, and a fired verdict reproduces exactly under
// any thread count. bench_deadline gates "zero false positives on clean
// scenarios" against this property.

#include <cstddef>
#include <vector>

namespace f3d::guard {

struct WatchdogOptions {
  bool enabled = false;
  /// Number of accepted steps in the comparison window. The watchdog can
  /// only fire after this many accepted steps have been observed.
  int window = 30;
  /// Fire when rnorm_now >= stall_ratio * rnorm_window_ago, i.e. the
  /// residual improved by less than a factor 1/stall_ratio across the
  /// whole window. Near-1 values tolerate long plateaus that eventually
  /// break; psi-NKS transonic continuation routinely idles for a few
  /// steps, so the window must be generous.
  double stall_ratio = 0.995;
};

/// Ring buffer over accepted-step residual norms. observe() returns true
/// the first time a stall is detected; callers map that to
/// SolveVerdict::kStagnated.
class ProgressWatchdog {
 public:
  explicit ProgressWatchdog(const WatchdogOptions& opts);

  /// Record one accepted step's residual norm; returns true when the
  /// stall condition fires (at most once per watchdog instance).
  bool observe(double rnorm);

  [[nodiscard]] bool fired() const { return fired_; }
  [[nodiscard]] long long steps_observed() const { return observed_; }

 private:
  WatchdogOptions opts_;
  std::vector<double> ring_;
  long long observed_ = 0;
  bool fired_ = false;
};

}  // namespace f3d::guard
