#include "guard/guard.hpp"

#include "obs/obs.hpp"

namespace f3d::guard {

const char* trip_reason_name(TripReason reason) {
  switch (reason) {
    case TripReason::kNone: return "none";
    case TripReason::kCancelled: return "cancelled";
    case TripReason::kDeadline: return "deadline";
    case TripReason::kWorkExhausted: return "work-exhausted";
  }
  return "unknown";
}

const char* verdict_name(SolveVerdict verdict) {
  switch (verdict) {
    case SolveVerdict::kConverged: return "converged";
    case SolveVerdict::kMaxIters: return "max-iters";
    case SolveVerdict::kStagnated: return "stagnated";
    case SolveVerdict::kDeadline: return "deadline";
    case SolveVerdict::kCancelled: return "cancelled";
    case SolveVerdict::kFaultUnrecoverable: return "fault-unrecoverable";
  }
  return "unknown";
}

TripReason SolveGuard::charge(long long units) {
  units_ += units;
  obs::Registry::global().count("guard.work_units", units);

  TripReason current = tripped();
  if (current != TripReason::kNone) return current;

  // Cancel flag and armed work-unit trip: re-read on every charge, so the
  // latency from request to observation is at most one charge's units.
  if (budget_.cancel != nullptr) {
    const long long armed = budget_.cancel->armed_at();
    if (budget_.cancel->requested() || (armed >= 0 && units_ >= armed)) {
      trip(TripReason::kCancelled);
      return TripReason::kCancelled;
    }
  }
  if (budget_.max_work_units > 0 && units_ >= budget_.max_work_units) {
    trip(TripReason::kWorkExhausted);
    return TripReason::kWorkExhausted;
  }
  // Wall clock: checked every check_every units, bounding both the clock
  // read rate and the deadline-observation latency.
  if (budget_.wall_deadline_s > 0) {
    since_clock_check_ += units;
    if (since_clock_check_ >= budget_.check_every) {
      since_clock_check_ = 0;
      if (elapsed_s() >= budget_.wall_deadline_s) {
        trip(TripReason::kDeadline);
        return TripReason::kDeadline;
      }
    }
  }
  return TripReason::kNone;
}

double SolveGuard::pressure() const {
  double p = 0;
  if (budget_.max_work_units > 0) {
    p = static_cast<double>(units_) /
        static_cast<double>(budget_.max_work_units);
  }
  if (budget_.wall_deadline_s > 0) {
    const double t = elapsed_s() / budget_.wall_deadline_s;
    if (t > p) p = t;
  }
  return p < 1.0 ? p : 1.0;
}

void SolveGuard::trip(TripReason reason) {
  int expected = static_cast<int>(TripReason::kNone);
  if (tripped_.compare_exchange_strong(expected, static_cast<int>(reason),
                                       std::memory_order_relaxed)) {
    tripped_at_.store(units_, std::memory_order_relaxed);
    obs::Registry::global().count("guard.trips");
    switch (reason) {
      case TripReason::kCancelled:
        obs::Registry::global().count("guard.trip.cancelled");
        break;
      case TripReason::kDeadline:
        obs::Registry::global().count("guard.trip.deadline");
        break;
      case TripReason::kWorkExhausted:
        obs::Registry::global().count("guard.trip.work_exhausted");
        break;
      case TripReason::kNone: break;
    }
  }
}

namespace {
// Thread-local, so concurrent guarded solves (the fleet layer runs one
// scenario per worker thread) each see only their own guard — a budget
// trip in scenario A must never cancel scenario B, and the pointer
// itself must not be a data race. A solve that fans its kernels out
// across the exec pool is still one logical operation: the pool captures
// the dispatching thread's active guard and installs it on each worker
// for the duration of the chunk (exec/pool.cpp), so pool workers observe
// the driver's guard exactly as they did when this was process-global.
thread_local SolveGuard* tl_active_guard = nullptr;
}  // namespace

SolveGuard* active_guard() { return tl_active_guard; }

SolveGuard* set_active_guard(SolveGuard* g) {
  SolveGuard* previous = tl_active_guard;
  tl_active_guard = g;
  return previous;
}

}  // namespace f3d::guard
