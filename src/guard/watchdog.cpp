#include "guard/watchdog.hpp"

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace f3d::guard {

ProgressWatchdog::ProgressWatchdog(const WatchdogOptions& opts) : opts_(opts) {
  F3D_CHECK_MSG(opts.window >= 2, "watchdog window must be >= 2");
  F3D_CHECK_MSG(opts.stall_ratio > 0 && opts.stall_ratio <= 1.0,
                "watchdog stall_ratio must be in (0, 1]");
  if (opts_.enabled) ring_.assign(static_cast<size_t>(opts_.window), 0.0);
}

bool ProgressWatchdog::observe(double rnorm) {
  if (!opts_.enabled || fired_) return false;
  const size_t slot = static_cast<size_t>(observed_ % opts_.window);
  if (observed_ >= opts_.window) {
    // ring_[slot] currently holds the residual from exactly `window`
    // accepted steps ago.
    const double old = ring_[slot];
    if (old > 0 && rnorm >= opts_.stall_ratio * old) {
      fired_ = true;
      obs::Registry::global().count("guard.watchdog.fired");
      ring_[slot] = rnorm;
      ++observed_;
      return true;
    }
  }
  ring_[slot] = rnorm;
  ++observed_;
  return false;
}

}  // namespace f3d::guard
