#pragma once
// f3d::guard — run-to-completion guarantees for the solve stack: per-solve
// budgets (wall-clock deadline + deterministic work units), cooperative
// cancellation, and the verdict taxonomy every exit maps onto. The fleet
// north star (thousands of Mach x AoA solves through one resident
// service) needs every solve to terminate on time with a usable answer;
// this layer is the contract that makes that true.
//
// Design constraints, in order:
//  * Deterministic trip points. Work units are charged by the psi-NKS
//    driver and the Krylov solvers at points whose order is independent
//    of thread count (residual evaluations, Krylov iterations, Jacobian
//    and factorization events — never exec chunk boundaries). A budget
//    or armed-cancel trip therefore lands at the same work unit at any
//    thread count, and the best committed state the driver returns is
//    bit-identical. Only the wall-clock deadline is inherently timing
//    dependent; it is still *observed* only at charge points, so the
//    returned state is always a consistently committed iterate.
//  * Bounded cancellation latency. charge() re-reads the cancel flag on
//    every call and the deadline clock every `check_every` units, so a
//    trip is honored within `cancel_latency_bound_units()` work units —
//    the documented bound bench_deadline measures p99 against.
//  * Near-zero cost when idle. With no guard registered, the poll at an
//    exec chunk boundary is one relaxed atomic load; a charge against an
//    unbounded budget is integer arithmetic plus one relaxed load.
//
// Layering: guard sits directly above f3d_common (it uses f3d::Error and
// tallies into obs::Registry); exec, solver, cfd and par all poll it.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/error.hpp"

namespace f3d::guard {

/// Why a guarded computation stopped early. kNone = still running.
enum class TripReason : int {
  kNone = 0,
  kCancelled,      ///< cooperative CancelToken honored
  kDeadline,       ///< wall-clock deadline exceeded
  kWorkExhausted,  ///< work-unit budget exhausted
};
[[nodiscard]] const char* trip_reason_name(TripReason reason);

/// Structured exit taxonomy of a guarded solve — every PtcResult and
/// CampaignResult carries one, so a fleet scheduler can triage thousands
/// of runs without parsing logs.
enum class SolveVerdict : int {
  kConverged = 0,        ///< residual target met
  kMaxIters,             ///< outer iteration cap exhausted, still improving
  kStagnated,            ///< progress watchdog detected a livelock-style stall
  kDeadline,             ///< budget (wall clock or work units) exhausted
  kCancelled,            ///< cooperative cancel honored
  kFaultUnrecoverable,   ///< recovery ladder exhausted; best state returned
};
[[nodiscard]] const char* verdict_name(SolveVerdict verdict);

/// Cooperative cancellation handle. cancel() may be called from any
/// thread (a fleet scheduler, a signal handler trampoline); the guarded
/// solve observes it at its next charge or poll point. cancel_at_work()
/// arms a *deterministic* trip at an exact work-unit count — the handle
/// tests and benches use to reproduce a mid-Krylov cancel bit-identically
/// at any thread count.
class CancelToken {
 public:
  void cancel() { flag_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool requested() const {
    return flag_.load(std::memory_order_relaxed);
  }
  /// Trip automatically when the guarded solve's work counter reaches
  /// `unit` (< 0 disarms). Deterministic: work units are charged at
  /// thread-count-independent points.
  void cancel_at_work(long long unit) {
    at_.store(unit, std::memory_order_relaxed);
  }
  [[nodiscard]] long long armed_at() const {
    return at_.load(std::memory_order_relaxed);
  }
  void reset() {
    flag_.store(false, std::memory_order_relaxed);
    at_.store(-1, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
  std::atomic<long long> at_{-1};
};

/// Deterministic cost model the solve stack charges in. The weights are
/// relative flop-count classes, not wall time — chosen so the degradation
/// ladder's "freeze Jacobian" rung genuinely saves budget.
inline constexpr long long kUnitsResidual = 1;    ///< flux/spectral-radius pass
inline constexpr long long kUnitsKrylovIter = 1;  ///< one Krylov iteration
inline constexpr long long kUnitsJacobian = 4;    ///< analytic assembly
inline constexpr long long kUnitsFactor = 6;      ///< preconditioner refactor

/// Per-solve budget. Default-constructed = unbounded (never trips).
///
/// Work units are the solver's deterministic cost model: kUnitsResidual
/// per residual evaluation / matrix-free action, kUnitsKrylovIter per
/// Krylov iteration, kUnitsJacobian per analytic Jacobian assembly,
/// kUnitsFactor per preconditioner refactorization. The same solve
/// charges the same units at any thread count.
struct SolveBudget {
  double wall_deadline_s = 0;    ///< 0 = no wall-clock deadline
  long long max_work_units = 0;  ///< 0 = no work budget
  CancelToken* cancel = nullptr; ///< optional cooperative cancel handle
  /// Deadline-clock check cadence in work units: the cancellation-latency
  /// bound. Smaller = tighter latency, more clock reads.
  int check_every = 8;

  [[nodiscard]] bool bounded() const {
    return wall_deadline_s > 0 || max_work_units > 0 || cancel != nullptr;
  }
};

/// Documented bound on how many work units may elapse between a trip
/// (cancel request, armed unit reached, deadline passed) and the solve
/// honoring it. bench_deadline gates measured p99 latency against this.
[[nodiscard]] inline long long cancel_latency_bound_units(
    const SolveBudget& budget) {
  return budget.check_every;
}

/// Live budget enforcement for one solve. charge() is driver-thread-only
/// (work units are deterministic, so no atomics on the counter); the trip
/// state is atomic so pool workers and Schwarz subdomain loops can
/// observe it via poll points.
class SolveGuard {
 public:
  explicit SolveGuard(const SolveBudget& budget)
      : budget_(budget), t0_(std::chrono::steady_clock::now()) {
    F3D_CHECK_MSG(budget.check_every >= 1, "guard check_every must be >= 1");
  }
  SolveGuard(const SolveGuard&) = delete;
  SolveGuard& operator=(const SolveGuard&) = delete;

  /// Charge `units` of deterministic work; returns the trip state after
  /// the charge. Call only from the solve's driver thread.
  TripReason charge(long long units);

  /// Current trip state (relaxed loads only; safe from any thread).
  [[nodiscard]] TripReason tripped() const {
    return static_cast<TripReason>(tripped_.load(std::memory_order_relaxed));
  }
  /// True when a poll point should abandon work: tripped and not yet
  /// disarmed for the exit path.
  [[nodiscard]] bool should_abandon() const {
    return tripped() != TripReason::kNone &&
           !disarmed_.load(std::memory_order_relaxed);
  }
  /// The driver calls this the moment it decides to exit: subsequent
  /// polls become no-ops so the exit path (quality grading, trace flush)
  /// can still use the exec pool without being cancelled itself.
  void disarm() { disarmed_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] long long work_units() const { return units_; }
  /// Work units charged after the trip was first observable (0 when not
  /// tripped) — the measured cancellation latency.
  [[nodiscard]] long long latency_units() const {
    const long long at = tripped_at_.load(std::memory_order_relaxed);
    return at >= 0 ? units_ - at : 0;
  }
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }
  /// Budget pressure in [0, 1]: the larger of work spent / work budget
  /// and wall elapsed / wall deadline (0 when unbounded). The degradation
  /// ladder keys its rungs off this.
  [[nodiscard]] double pressure() const;
  [[nodiscard]] const SolveBudget& budget() const { return budget_; }

 private:
  void trip(TripReason reason);

  SolveBudget budget_;
  std::chrono::steady_clock::time_point t0_;
  long long units_ = 0;              ///< driver thread only
  long long since_clock_check_ = 0;  ///< driver thread only
  std::atomic<int> tripped_{static_cast<int>(TripReason::kNone)};
  std::atomic<long long> tripped_at_{-1};
  std::atomic<bool> disarmed_{false};
};

/// Thrown from cooperative poll points (exec chunk boundaries, Schwarz
/// subdomain application, cfd kernels) when the active guard has tripped.
/// The psi-NKS driver catches it, restores the last committed state, and
/// returns with the trip's verdict — callers outside a guarded solve
/// never see it (poll points are no-ops with no guard registered).
class CancelledError : public Error {
 public:
  explicit CancelledError(TripReason reason)
      : Error(std::string("solve cancelled (") + trip_reason_name(reason) +
              ")"),
        reason_(reason) {}
  [[nodiscard]] TripReason reason() const { return reason_; }

 private:
  TripReason reason_;
};

/// Thread-local active guard, registered for a solve's duration so deep
/// layers (exec chunks, ILU application, flux kernels) see it without
/// threading it through every signature. Thread-local (not process-wide)
/// so concurrent guarded solves on different threads — the fleet layer's
/// scenario workers — are fully isolated from each other; the exec pool
/// propagates the dispatching thread's guard to its workers for the
/// duration of each parallel_for, so a threaded solve still behaves as
/// one guarded operation.
[[nodiscard]] SolveGuard* active_guard();
SolveGuard* set_active_guard(SolveGuard* g);

class GuardScope {
 public:
  explicit GuardScope(SolveGuard* g) : previous_(set_active_guard(g)) {}
  ~GuardScope() { set_active_guard(previous_); }
  GuardScope(const GuardScope&) = delete;
  GuardScope& operator=(const GuardScope&) = delete;

 private:
  SolveGuard* previous_;
};

/// Cooperative poll point: one relaxed load when no guard is active;
/// throws CancelledError when the active guard has tripped (and has not
/// been disarmed for the exit path). Cheap enough for chunk boundaries.
inline void poll_cancellation() {
  SolveGuard* g = active_guard();
  if (g != nullptr && g->should_abandon()) throw CancelledError(g->tripped());
}

}  // namespace f3d::guard
