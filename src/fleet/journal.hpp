#pragma once
// fleet::Journal — the append-only, CRC-framed scenario journal that
// makes a batch run restartable. Every scheduling decision that must
// survive a crash is a frame: scenario started, scenario committed
// (solved and its result durable in the caller's sense), scenario
// quarantined as poison, scenario shed by admission control, scenario
// cancelled by a supersede. Replay of a (possibly truncated) journal
// yields exactly the set of terminal decisions that were fully written;
// a frame cut mid-write by a kill fails its CRC and is discarded along
// with everything after it.
//
// On-disk layout (all integers little-endian):
//   file header:  u32 kFileMagic, u32 kVersion, u32 batch content_hash
//   frame:        u32 kFrameMagic, u32 crc32(payload), u32 length, payload
//   payload:      u8 RecordType, u32 scenario id, u32 attempt,
//                 u32 detail length, detail bytes (UTF-8, record-specific)
//
// Execution semantics built on top (src/fleet/service.cpp): kStart is
// written before a solve begins and kCommit after it finishes, so a kill
// between the two re-runs the scenario on resume — at-least-once
// execution, exactly-once commit. That is safe because scenario solves
// are deterministic: the re-run reproduces the identical solution.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace f3d::fleet {

enum class RecordType : std::uint8_t {
  kBatchMeta = 1,   ///< detail = batch name (first frame of every journal)
  kStart = 2,       ///< attempt began; non-terminal
  kCommit = 3,      ///< terminal: solved, result durable
  kQuarantine = 4,  ///< terminal: declared poison after the retry ladder
  kShed = 5,        ///< terminal: rejected by admission control
  kCancel = 6,      ///< terminal: superseded before completing
};

struct JournalRecord {
  RecordType type = RecordType::kStart;
  int scenario_id = -1;
  int attempt = 0;
  std::string detail;  ///< verdict / post-mortem text, record-specific
};

/// Everything replay can recover from a journal file. Scenario ids only
/// appear in one terminal set (later terminal frames for an id already
/// terminal are a corruption and fail the replay).
struct JournalState {
  std::uint32_t batch_hash = 0;  ///< from the file header
  std::string batch_name;        ///< from the kBatchMeta frame
  std::set<int> committed;
  std::set<int> quarantined;
  std::set<int> shed;
  std::set<int> cancelled;
  /// Attempts started per scenario (kStart frames seen), survives for
  /// resume so the retry ladder continues where it left off.
  std::map<int, int> attempts_started;
  /// Detail text of each terminal frame (commit verdict + solution CRC,
  /// quarantine post-mortem, shed/cancel reason).
  std::map<int, std::string> terminal_detail;
  std::size_t frames_replayed = 0;
  /// Bytes of torn tail discarded (0 on a cleanly closed journal).
  std::size_t bytes_discarded = 0;

  [[nodiscard]] bool is_terminal(int id) const {
    return committed.count(id) != 0 || quarantined.count(id) != 0 ||
           shed.count(id) != 0 || cancelled.count(id) != 0;
  }
  /// Ids in [0, num_scenarios) with no terminal frame — the exact set a
  /// resumed fleet must still decide.
  [[nodiscard]] std::vector<int> pending(int num_scenarios) const;
};

/// Append-only writer. Thread-safe: fleet workers commit concurrently
/// through one Journal instance; each append is written and flushed under
/// a mutex so frames never interleave.
class Journal {
public:
  /// Create (truncate) a new journal bound to `batch_hash`, writing the
  /// file header and the kBatchMeta frame. Throws f3d::Error on I/O
  /// failure.
  static Journal create(const std::string& path, std::uint32_t batch_hash,
                        const std::string& batch_name);

  /// Open an existing journal for appending (after replay). Validates the
  /// header against `batch_hash` — resuming a journal against a different
  /// batch spec is refused.
  static Journal append_to(const std::string& path, std::uint32_t batch_hash);

  /// Replay `path`, stopping at the first torn/corrupt frame; the torn
  /// tail is counted in bytes_discarded, never trusted. Throws f3d::Error
  /// when the file is missing, the header itself is unreadable, or the
  /// frame stream violates the terminal-once invariant.
  static JournalState replay(const std::string& path);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&&) = delete;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Append one frame and flush it to the OS. Throws f3d::Error on I/O
  /// failure (a journal that cannot persist decisions must stop the
  /// fleet, not silently drop them).
  void append(const JournalRecord& rec);

  [[nodiscard]] const std::string& path() const { return path_; }

private:
  explicit Journal(const std::string& path);
  struct Impl;
  Impl* impl_ = nullptr;
  std::string path_;
};

}  // namespace f3d::fleet
