#pragma once
// fleet::BatchSpec — the JSON batch specification of a scenario sweep
// (schema f3d-fleet-batch-v1) and its deterministic expansion into a
// flat scenario list. The paper's tuning methodology is "run many solver
// configurations against the same mesh"; a batch spec is the serving
// form of that: a Mach x AoA x mesh-class cross product plus optional
// explicit scenarios with per-scenario knob overrides, budgets,
// priorities and supersede directives.
//
// Determinism contract: expansion order is a pure function of the spec
// text (mesh classes outermost, then Mach, then alpha, then the explicit
// scenarios in listed order), ids are assigned densely in that order,
// and content_hash() covers the fully expanded list — the journal binds
// a run to that hash so a resumed fleet can never replay one spec's
// journal against a different batch.
//
// Spec document shape (all members except "schema" optional):
//   {
//     "schema": "f3d-fleet-batch-v1",
//     "name": "wing-sweep",
//     "seed": 1,                       // mesh shuffle seed
//     "defaults": {"rtol": 1e-5, "max_steps": 80,
//                   "work_units": 60000, "wall_deadline_s": 0},
//     "sweep": {"vertices": [800], "mach": [0.2, 0.3],
//                "alpha_deg": [0, 2, 4]},
//     "scenarios": [ {"vertices": 800, "mach": 0.5, "alpha_deg": 1,
//                      "priority": 5, "supersedes": 3, "delay_ms": 0,
//                      "knobs": {"ptc.cfl0": 40.0}} ]
//   }

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace f3d::fleet {

inline constexpr const char* kBatchSchema = "f3d-fleet-batch-v1";

/// One fully expanded scenario. Physics (mach, alpha, mesh class) plus
/// the per-scenario solve contract (tolerance, budgets) and fleet
/// metadata (priority, supersede target, injected straggle).
struct ScenarioSpec {
  int id = -1;             ///< dense index in expansion order
  std::string name;        ///< human label, derived when not given
  int vertices = 800;      ///< mesh-class size (shared-artifact key)
  double mach = 0.3;
  double alpha_deg = 2.0;
  double rtol = 1e-5;
  int max_steps = 80;
  long long work_units = 0;    ///< guard work budget (0 = batch default)
  double wall_deadline_s = 0;  ///< per-scenario wall deadline (0 = none)
  int priority = 0;            ///< higher schedules earlier
  int supersedes = -1;         ///< id of an earlier scenario to cancel
  double delay_ms = 0;         ///< injected worker straggle (fault storms)
  obs::Json knobs;             ///< flat tune-registry overrides (may be null)

  [[nodiscard]] obs::Json to_json() const;
};

struct BatchSpec {
  std::string name = "batch";
  unsigned seed = 1;  ///< mesh shuffle seed (shared-artifact determinism)
  std::vector<ScenarioSpec> scenarios;  ///< expanded; index == id

  /// Strict parse + expansion; throws f3d::Error on a missing/mismatched
  /// schema tag, a malformed member, or an unknown top-level key.
  [[nodiscard]] static BatchSpec from_json(const obs::Json& doc);
  [[nodiscard]] static BatchSpec parse(const std::string& text);

  /// Canonical JSON of the *expanded* batch (not the sweep shorthand).
  [[nodiscard]] obs::Json to_json() const;

  /// CRC-32 of the canonical dump — the identity the scenario journal
  /// records and validates on resume.
  [[nodiscard]] std::uint32_t content_hash() const;
};

}  // namespace f3d::fleet
