#include "fleet/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "cfd/problem.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "exec/pool.hpp"
#include "mesh/generator.hpp"
#include "mesh/graph.hpp"
#include "mesh/ordering.hpp"
#include "obs/obs.hpp"
#include "partition/partition.hpp"
#include "solver/newton.hpp"
#include "tune/db.hpp"
#include "tune/registry.hpp"

namespace f3d::fleet {

const char* scenario_status_name(ScenarioStatus s) {
  switch (s) {
    case ScenarioStatus::kCommitted: return "committed";
    case ScenarioStatus::kQuarantined: return "quarantined";
    case ScenarioStatus::kShed: return "shed";
    case ScenarioStatus::kCancelled: return "cancelled";
    case ScenarioStatus::kPending: return "pending";
  }
  return "?";
}

namespace {

/// Fixed subdomain count of the shared partition artifact. A scenario
/// knob cannot change it: the partition is computed once per mesh class
/// and shared immutably, which is the whole point of the fleet.
constexpr int kSubdomains = 2;

/// Immutable per-mesh-class artifacts, computed once and shared by every
/// scenario of that class. The mesh lives behind a unique_ptr so the
/// references EulerDiscretization borrows stay stable in the map.
struct Artifact {
  std::unique_ptr<mesh::UnstructuredMesh> mesh;
  std::shared_ptr<const cfd::SharedGeometry> geometry;
  part::Partition partition;
};

Artifact build_artifact(int vertices, unsigned seed) {
  F3D_OBS_SPAN("fleet.artifact");
  Artifact art;
  art.mesh = std::make_unique<mesh::UnstructuredMesh>(
      mesh::generate_wing_mesh_with_size(vertices));
  mesh::shuffle_mesh(*art.mesh, seed);
  mesh::apply_best_ordering(*art.mesh);
  art.geometry = cfd::SharedGeometry::compute(*art.mesh);
  art.partition = part::kway_grow(
      mesh::build_graph(art.mesh->num_vertices(), art.mesh->edges()),
      kSubdomains, seed);
  return art;
}

/// Scheduling order: priority descending, then id ascending. Admission,
/// queue drain, and the supersede pass all use this one order, so every
/// overload decision is deterministic for a fixed spec.
std::vector<int> schedule_order(const BatchSpec& spec) {
  std::vector<int> order(spec.scenarios.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (spec.scenarios[a].priority != spec.scenarios[b].priority)
      return spec.scenarios[a].priority > spec.scenarios[b].priority;
    return a < b;
  });
  return order;
}

long long admit_units(const ScenarioSpec& sc, const FleetOptions& opts) {
  return sc.work_units > 0 ? sc.work_units : opts.default_admit_units;
}

/// Deterministic backoff jitter in [0.5, 1.5): one draw per
/// (seed, scenario, attempt), independent of timing and worker identity.
double backoff_jitter(unsigned seed, int id, int attempt) {
  Rng rng(seed ^ (static_cast<unsigned>(id) * 2654435761u) ^
          (static_cast<unsigned>(attempt) << 20));
  return 0.5 + rng.uniform();
}

std::string commit_detail(guard::SolveVerdict verdict, std::uint32_t crc,
                          long long units, double orders) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "verdict=%s crc=%08x units=%lld orders=%.2f",
                guard::verdict_name(verdict), crc, units, orders);
  return buf;
}

}  // namespace

obs::Json BatchResult::to_json() const {
  obs::Json doc = obs::Json::object();
  doc.set("schema", "f3d-fleet-dash-v1")
      .set("committed", static_cast<long long>(committed))
      .set("quarantined", static_cast<long long>(quarantined))
      .set("shed", static_cast<long long>(shed))
      .set("cancelled", static_cast<long long>(cancelled))
      .set("pending", static_cast<long long>(pending))
      .set("retries", static_cast<long long>(retries))
      .set("killed", killed)
      .set("budget_reclaimed_units", budget_reclaimed_units)
      .set("wall_s", wall_s);
  obs::Json arr = obs::Json::array();
  for (const auto& sc : scenarios) {
    obs::Json row = obs::Json::object();
    row.set("id", static_cast<long long>(sc.id))
        .set("name", sc.name)
        .set("status", scenario_status_name(sc.status))
        .set("attempts", static_cast<long long>(sc.attempts))
        .set("verdict", sc.verdict)
        .set("work_units", sc.work_units)
        .set("residual_drop_orders", sc.residual_drop_orders)
        .set("solution_crc", static_cast<long long>(sc.solution_crc))
        .set("wall_s", sc.wall_s)
        .set("replayed", sc.replayed)
        .set("detail", sc.detail);
    arr.push(std::move(row));
  }
  doc.set("scenarios", std::move(arr));
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  obs::Json counters = obs::Json::object();
  for (const auto& [name, value] : snap.counters)
    if (name.rfind("fleet.", 0) == 0) counters.set(name, value);
  doc.set("counters", std::move(counters));
  return doc;
}

struct Service::Impl {
  FleetOptions opts;

  const BatchSpec* spec = nullptr;
  std::map<int, Artifact> artifacts;  ///< vertex class -> shared artifacts
  unsigned artifact_seed = 0;         ///< seed the cache was built with
  tune::Db db;
  bool db_loaded = false;

  std::optional<Journal> journal;
  JournalState replayed;   ///< prior-run decisions (resume only)
  bool resumed = false;

  std::mutex mu;           ///< queue + result aggregation
  std::vector<int> queue;  ///< admitted ids, scheduling order; next_ indexes
  std::size_t next = 0;
  BatchResult result;
  std::atomic<bool> stop{false};
  std::atomic<int> commits{0};

  // ---- per-attempt solve --------------------------------------------------

  struct Attempt {
    bool success = false;
    guard::SolveVerdict verdict = guard::SolveVerdict::kMaxIters;
    long long work_units = 0;
    double drop_orders = 0;
    std::uint32_t crc = 0;
    std::string detail;
  };

  /// Knob configuration of a ladder rung. Rung 0 trusts the scenario:
  /// tuning-DB entry (filtered to the knobs this solve binds) plus the
  /// scenario's own overrides. Rung 1 drops both — safe compiled
  /// defaults, which clears "fragile" scenarios whose own knobs are the
  /// problem. Rung 2 adds conservative settings: timid CFL, more ILU
  /// fill, longer restart — slower, harder to break.
  void configure_rung(tune::Registry& reg, const ScenarioSpec& sc,
                      int attempt, int vertices, std::string* rejected) {
    if (attempt == 0) {
      if (db_loaded && db.ok()) {
        const tune::DbKey key{tune::mesh_class_of(vertices), simd::isa_name(),
                              "double"};
        if (const tune::DbEntry* entry = db.lookup(key)) {
          obs::Json filtered = obs::Json::object();
          for (const auto& [name, value] : entry->config.members)
            if (reg.find(name) != nullptr) filtered.set(name, value);
          try {
            reg.from_json(filtered);
            obs::Registry::global().count("fleet.tunedb_applied");
          } catch (const Error&) {
            // A stale DB never poisons a solve: fall through to defaults.
            obs::Registry::global().count("fleet.tunedb_rejected");
          }
        }
      }
      if (sc.knobs.is_object()) {
        try {
          reg.from_json(sc.knobs);
        } catch (const Error& e) {
          *rejected = e.what();
        }
      }
    } else if (attempt >= 2) {
      reg.set_number("ptc.cfl0", 2.0);
      reg.set_number("schwarz.fill_level", 2);
      reg.set_number("gmres.restart", 60);
    }
  }

  Attempt run_attempt(const ScenarioSpec& sc, int attempt) {
    F3D_OBS_SPAN("fleet.attempt");
    const Artifact& art = artifacts.at(sc.vertices);

    cfd::FlowConfig cfg;
    cfg.model = cfd::Model::kCompressible;
    cfg.order = 1;
    cfg.mach = sc.mach;
    cfg.alpha_deg = sc.alpha_deg;

    solver::PtcOptions o;
    o.rtol = sc.rtol;
    o.max_steps = sc.max_steps;
    o.recovery.enabled = true;
    o.guard.capture_faults = true;
    o.guard.budget.max_work_units = sc.work_units;
    o.guard.budget.wall_deadline_s = sc.wall_deadline_s;

    tune::Registry reg;
    o.bind(reg);
    Attempt out;
    std::string rejected;
    configure_rung(reg, sc, attempt, sc.vertices, &rejected);
    if (!rejected.empty()) {
      // A knob set the registry refuses is a failed attempt, not a
      // solve: rung 1 retries without it.
      out.verdict = guard::SolveVerdict::kFaultUnrecoverable;
      out.detail = "rejected knobs: " + rejected;
      return out;
    }
    // The shared partition is an artifact, not a knob: pin it after knob
    // application (ptc.num_subdomains has no effect under the fleet).
    o.num_subdomains = art.partition.nparts;
    o.partition = art.partition;

    cfd::EulerDiscretization disc(*art.mesh, cfg, art.geometry);
    cfd::EulerProblem prob(disc, -1.0);
    std::vector<double> x = prob.initial_state();
    try {
      const solver::PtcResult res = solver::ptc_solve(prob, x, o);
      out.verdict = res.verdict;
      out.work_units = res.work_units;
      out.drop_orders = res.residual_drop_orders;
      out.success = res.converged &&
                    res.verdict == guard::SolveVerdict::kConverged;
      if (out.success)
        out.crc = crc32(x.data(), x.size() * sizeof(double));
      else
        out.detail = std::string("verdict=") + guard::verdict_name(res.verdict);
    } catch (const Error& e) {
      out.verdict = guard::SolveVerdict::kFaultUnrecoverable;
      out.detail = e.what();
    }
    return out;
  }

  // ---- scenario lifecycle -------------------------------------------------

  void journal_append(RecordType type, int id, int attempt,
                      const std::string& detail) {
    if (!journal.has_value()) return;
    JournalRecord rec;
    rec.type = type;
    rec.scenario_id = id;
    rec.attempt = attempt;
    rec.detail = detail;
    journal->append(rec);
    obs::Registry::global().count("fleet.journal_frames");
  }

  void run_scenario(const ScenarioSpec& sc) {
    F3D_OBS_SPAN("fleet.scenario");
    Timer timer;
    ScenarioResult& slot = result.scenarios[static_cast<std::size_t>(sc.id)];
    int attempt = 0;
    if (auto it = replayed.attempts_started.find(sc.id);
        it != replayed.attempts_started.end())
      attempt = std::min(it->second, opts.max_attempts - 1);

    std::string last_detail;
    const int first_attempt = attempt;
    int extra_attempts = 0;
    for (; attempt < opts.max_attempts; ++attempt) {
      journal_append(RecordType::kStart, sc.id, attempt, {});
      if (attempt > first_attempt) {
        ++extra_attempts;
        obs::Registry::global().count("fleet.retries");
        if (opts.backoff_base_ms > 0) {
          const double ms = opts.backoff_base_ms *
                            static_cast<double>(1 << attempt) *
                            backoff_jitter(opts.backoff_seed, sc.id, attempt);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(ms));
        }
      }
      if (sc.delay_ms > 0)  // injected straggle (fault storms)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sc.delay_ms));

      const Attempt a = run_attempt(sc, attempt);
      last_detail = a.detail;
      std::lock_guard<std::mutex> lk(mu);
      slot.attempts = attempt + 1;
      slot.verdict = guard::verdict_name(a.verdict);
      slot.work_units = a.work_units;
      slot.residual_drop_orders = a.drop_orders;
      if (a.success) {
        slot.status = ScenarioStatus::kCommitted;
        slot.solution_crc = a.crc;
        slot.wall_s = timer.seconds();
        journal_append(RecordType::kCommit, sc.id, attempt,
                       commit_detail(a.verdict, a.crc, a.work_units,
                                     a.drop_orders));
        ++result.committed;
        result.retries += extra_attempts;
        obs::Registry::global().count("fleet.committed");
        const int done = commits.fetch_add(1) + 1;
        if (opts.kill_after_commits > 0 && done >= opts.kill_after_commits) {
          stop.store(true);
          result.killed = true;
        }
        return;
      }
    }

    // Strikes exhausted: quarantine with a structured post-mortem so the
    // operator can triage without re-running anything.
    std::lock_guard<std::mutex> lk(mu);
    result.retries += extra_attempts;
    slot.status = ScenarioStatus::kQuarantined;
    slot.wall_s = timer.seconds();
    slot.detail = "poison after " + std::to_string(opts.max_attempts) +
                  " attempts; last: " + last_detail;
    journal_append(RecordType::kQuarantine, sc.id, opts.max_attempts - 1,
                   slot.detail);
    ++result.quarantined;
    obs::Registry::global().count("fleet.quarantined");
  }

  void worker_loop() {
    for (;;) {
      int id;
      {
        std::lock_guard<std::mutex> lk(mu);
        if (stop.load() || next >= queue.size()) return;
        id = queue[next++];
      }
      run_scenario(spec->scenarios[static_cast<std::size_t>(id)]);
    }
  }
};

Service::Service(FleetOptions opts) : impl_(std::make_unique<Impl>()) {
  impl_->opts = std::move(opts);
  F3D_CHECK_MSG(impl_->opts.workers >= 1, "fleet needs at least one worker");
  F3D_CHECK_MSG(impl_->opts.max_attempts >= 1,
                "fleet needs at least one attempt");
}

Service::~Service() = default;

BatchResult Service::serve(const BatchSpec& spec) {
  F3D_OBS_SPAN("fleet.serve");
  Impl& im = *impl_;
  // The exec pool has one job slot; concurrent scenario solves would
  // race on it, so multi-worker fleets require single-threaded solves.
  F3D_CHECK_MSG(im.opts.workers == 1 || exec::num_threads() == 1,
                "fleet workers > 1 requires a 1-thread exec pool");
  Timer timer;
  auto& obsr = obs::Registry::global();

  im.spec = &spec;
  im.result = BatchResult{};
  im.result.scenarios.resize(spec.scenarios.size());
  for (std::size_t i = 0; i < spec.scenarios.size(); ++i) {
    im.result.scenarios[i].id = static_cast<int>(i);
    im.result.scenarios[i].name = spec.scenarios[i].name;
  }
  im.queue.clear();
  im.next = 0;
  im.stop.store(false);
  im.commits.store(0);
  im.replayed = JournalState{};

  if (!im.opts.tune_db_path.empty()) {
    im.db = tune::Db::load(im.opts.tune_db_path);
    im.db_loaded = true;
  }

  // ---- journal open / resume ----------------------------------------------
  const std::uint32_t hash = spec.content_hash();
  if (!im.opts.journal_path.empty()) {
    if (im.opts.resume) {
      im.replayed = Journal::replay(im.opts.journal_path);
      if (im.replayed.batch_hash != hash)
        throw Error("fleet: journal " + im.opts.journal_path +
                    " belongs to a different batch spec");
      im.journal.emplace(Journal::append_to(im.opts.journal_path, hash));
      im.resumed = true;
      obsr.count("fleet.resumed_pending",
                 static_cast<long long>(
                     im.replayed.pending(static_cast<int>(spec.scenarios.size()))
                         .size()));
    } else {
      im.journal.emplace(Journal::create(im.opts.journal_path, hash, spec.name));
    }
  }

  // Prior-run terminal decisions become replayed results, never re-runs —
  // the exactly-once half of the journal contract.
  for (const int id : im.replayed.committed) {
    auto& slot = im.result.scenarios[static_cast<std::size_t>(id)];
    slot.status = ScenarioStatus::kCommitted;
    slot.replayed = true;
    if (auto it = im.replayed.terminal_detail.find(id);
        it != im.replayed.terminal_detail.end()) {
      slot.detail = it->second;
      unsigned crc = 0;
      if (std::sscanf(it->second.c_str(), "verdict=%*s crc=%x", &crc) == 1)
        slot.solution_crc = crc;
    }
    ++im.result.committed;
  }
  auto replay_terminal = [&](const std::set<int>& ids, ScenarioStatus status,
                             int* tally) {
    for (const int id : ids) {
      auto& slot = im.result.scenarios[static_cast<std::size_t>(id)];
      slot.status = status;
      slot.replayed = true;
      if (auto it = im.replayed.terminal_detail.find(id);
          it != im.replayed.terminal_detail.end())
        slot.detail = it->second;
      ++*tally;
    }
  };
  replay_terminal(im.replayed.quarantined, ScenarioStatus::kQuarantined,
                  &im.result.quarantined);
  replay_terminal(im.replayed.shed, ScenarioStatus::kShed, &im.result.shed);
  replay_terminal(im.replayed.cancelled, ScenarioStatus::kCancelled,
                  &im.result.cancelled);

  // ---- shared artifacts ---------------------------------------------------
  // The cache survives across batches (the service is resident), but only
  // for one mesh-shuffle seed: a different seed is a different mesh.
  if (!im.artifacts.empty() && im.artifact_seed != spec.seed)
    im.artifacts.clear();
  im.artifact_seed = spec.seed;
  for (const auto& sc : spec.scenarios) {
    if (im.replayed.is_terminal(sc.id)) continue;
    if (im.artifacts.find(sc.vertices) == im.artifacts.end()) {
      im.artifacts.emplace(sc.vertices, build_artifact(sc.vertices, spec.seed));
      obsr.count("fleet.artifacts_built");
    } else {
      obsr.count("fleet.artifacts_shared");
    }
  }

  // ---- supersede + admission (one pass, scheduling order) -----------------
  // Processing order IS the decision order: when a scenario carrying a
  // supersede directive is reached, its target — necessarily still
  // queued, since no worker has started — is cancelled on the spot, and
  // if the target had already been admitted its work budget is released
  // immediately, so every later admission in this same pass sees the
  // reclaimed headroom (the fleet.budget_reclaimed_units contract).
  const std::vector<int> order = schedule_order(spec);
  std::set<int> cancelled_ids;
  long long used_units = 0;
  std::map<int, long long> admitted_units;
  auto cancel_queued = [&](int id, const std::string& why) {
    auto& slot = im.result.scenarios[static_cast<std::size_t>(id)];
    if (auto it = admitted_units.find(id); it != admitted_units.end()) {
      used_units -= it->second;
      im.result.budget_reclaimed_units += it->second;
      obsr.count("fleet.budget_reclaimed_units", it->second);
      admitted_units.erase(it);
      im.queue.erase(std::remove(im.queue.begin(), im.queue.end(), id),
                     im.queue.end());
    }
    slot.status = ScenarioStatus::kCancelled;
    slot.detail = why;
    im.journal_append(RecordType::kCancel, id, 0, why);
    ++im.result.cancelled;
    obsr.count("fleet.cancelled");
  };
  for (const int id : order) {
    const ScenarioSpec& sc = spec.scenarios[static_cast<std::size_t>(id)];
    if (im.replayed.is_terminal(id) || cancelled_ids.count(id) != 0) continue;
    auto& slot = im.result.scenarios[static_cast<std::size_t>(id)];
    if (sc.supersedes >= 0 && !im.replayed.is_terminal(sc.supersedes) &&
        cancelled_ids.insert(sc.supersedes).second)
      cancel_queued(sc.supersedes, "superseded by scenario " +
                                       std::to_string(id) + " while queued");
    const long long units = admit_units(sc, im.opts);
    if (im.opts.admission_capacity_units > 0 &&
        used_units + units > im.opts.admission_capacity_units) {
      slot.status = ScenarioStatus::kShed;
      slot.detail = "admission: " + std::to_string(units) + " units over " +
                    std::to_string(im.opts.admission_capacity_units -
                                   used_units) +
                    " remaining";
      im.journal_append(RecordType::kShed, id, 0, slot.detail);
      ++im.result.shed;
      obsr.count("fleet.shed");
      continue;
    }
    used_units += units;
    admitted_units[id] = units;
    im.queue.push_back(id);
    obsr.count("fleet.admitted");
  }

  // ---- drain --------------------------------------------------------------
  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(im.opts.workers));
    for (int w = 0; w < im.opts.workers; ++w)
      workers.emplace_back([&im] { im.worker_loop(); });
    for (auto& w : workers) w.join();
  }

  for (auto& slot : im.result.scenarios)
    if (slot.status == ScenarioStatus::kPending &&
        !im.replayed.is_terminal(slot.id))
      ++im.result.pending;
  im.result.wall_s = timer.seconds();
  im.spec = nullptr;
  return im.result;
}

}  // namespace f3d::fleet
