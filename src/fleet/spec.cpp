#include "fleet/spec.hpp"

#include <cstdio>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace f3d::fleet {

namespace {

double number_or(const obs::Json& j, const char* key, double def) {
  const obs::Json* v = j.find(key);
  if (v == nullptr) return def;
  if (v->kind != obs::Json::Kind::kInt && v->kind != obs::Json::Kind::kDouble)
    throw Error(std::string("fleet spec: ") + key + " must be a number");
  return v->number();
}

long long int_or(const obs::Json& j, const char* key, long long def) {
  const obs::Json* v = j.find(key);
  if (v == nullptr) return def;
  if (v->kind != obs::Json::Kind::kInt)
    throw Error(std::string("fleet spec: ") + key + " must be an integer");
  return v->i;
}

std::vector<double> number_list(const obs::Json& j, const char* key,
                                std::vector<double> def) {
  const obs::Json* v = j.find(key);
  if (v == nullptr) return def;
  if (!v->is_array() || v->items.empty())
    throw Error(std::string("fleet spec: ") + key +
                " must be a non-empty array");
  std::vector<double> out;
  for (const auto& item : v->items) {
    if (item.kind != obs::Json::Kind::kInt &&
        item.kind != obs::Json::Kind::kDouble)
      throw Error(std::string("fleet spec: ") + key +
                  " entries must be numbers");
    out.push_back(item.number());
  }
  return out;
}

std::string default_name(const ScenarioSpec& sc) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "v%d-m%.3f-a%.2f", sc.vertices, sc.mach,
                sc.alpha_deg);
  return buf;
}

/// Fill a ScenarioSpec's overridable fields from a JSON object, with
/// `base` supplying the defaults. Physics, contract, and fleet metadata
/// only — ids are assigned by the expansion, never by the document.
ScenarioSpec scenario_from_json(const obs::Json& j, const ScenarioSpec& base) {
  ScenarioSpec sc = base;
  sc.vertices = static_cast<int>(int_or(j, "vertices", base.vertices));
  sc.mach = number_or(j, "mach", base.mach);
  sc.alpha_deg = number_or(j, "alpha_deg", base.alpha_deg);
  sc.rtol = number_or(j, "rtol", base.rtol);
  sc.max_steps = static_cast<int>(int_or(j, "max_steps", base.max_steps));
  sc.work_units = int_or(j, "work_units", base.work_units);
  sc.wall_deadline_s = number_or(j, "wall_deadline_s", base.wall_deadline_s);
  sc.priority = static_cast<int>(int_or(j, "priority", base.priority));
  sc.supersedes = static_cast<int>(int_or(j, "supersedes", -1));
  sc.delay_ms = number_or(j, "delay_ms", 0.0);
  if (const obs::Json* name = j.find("name")) {
    if (!name->is_string())
      throw Error("fleet spec: scenario name must be a string");
    sc.name = name->s;
  }
  if (const obs::Json* knobs = j.find("knobs")) {
    if (!knobs->is_object())
      throw Error("fleet spec: scenario knobs must be an object");
    sc.knobs = *knobs;
  }
  if (sc.vertices < 8) throw Error("fleet spec: vertices must be >= 8");
  if (sc.max_steps < 1) throw Error("fleet spec: max_steps must be >= 1");
  if (!(sc.rtol > 0)) throw Error("fleet spec: rtol must be > 0");
  return sc;
}

}  // namespace

obs::Json ScenarioSpec::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("id", static_cast<long long>(id))
      .set("name", name)
      .set("vertices", static_cast<long long>(vertices))
      .set("mach", mach)
      .set("alpha_deg", alpha_deg)
      .set("rtol", rtol)
      .set("max_steps", static_cast<long long>(max_steps))
      .set("work_units", work_units)
      .set("wall_deadline_s", wall_deadline_s)
      .set("priority", static_cast<long long>(priority))
      .set("supersedes", static_cast<long long>(supersedes))
      .set("delay_ms", delay_ms);
  if (knobs.is_object()) j.set("knobs", knobs);
  return j;
}

BatchSpec BatchSpec::from_json(const obs::Json& doc) {
  if (!doc.is_object()) throw Error("fleet spec: document must be an object");
  const obs::Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->s != kBatchSchema)
    throw Error(std::string("fleet spec: schema must be \"") + kBatchSchema +
                "\"");
  for (const auto& [key, value] : doc.members) {
    (void)value;
    if (key != "schema" && key != "name" && key != "seed" &&
        key != "defaults" && key != "sweep" && key != "scenarios")
      throw Error("fleet spec: unknown top-level member \"" + key + "\"");
  }

  BatchSpec spec;
  if (const obs::Json* name = doc.find("name")) {
    if (!name->is_string()) throw Error("fleet spec: name must be a string");
    spec.name = name->s;
  }
  spec.seed = static_cast<unsigned>(int_or(doc, "seed", 1));

  ScenarioSpec base;
  if (const obs::Json* defaults = doc.find("defaults")) {
    if (!defaults->is_object())
      throw Error("fleet spec: defaults must be an object");
    base = scenario_from_json(*defaults, base);
    if (base.supersedes != -1 || base.knobs.is_object() || base.delay_ms != 0)
      throw Error(
          "fleet spec: defaults may not carry supersedes/knobs/delay_ms");
  }

  // Sweep expansion: vertices outermost, then mach, then alpha — a fixed
  // order so ids are reproducible from the spec text alone.
  if (const obs::Json* sweep = doc.find("sweep")) {
    if (!sweep->is_object()) throw Error("fleet spec: sweep must be an object");
    const std::vector<double> verts = number_list(
        *sweep, "vertices", {static_cast<double>(base.vertices)});
    const std::vector<double> machs = number_list(*sweep, "mach", {base.mach});
    const std::vector<double> alphas =
        number_list(*sweep, "alpha_deg", {base.alpha_deg});
    for (double v : verts)
      for (double m : machs)
        for (double a : alphas) {
          ScenarioSpec sc = base;
          sc.vertices = static_cast<int>(v);
          sc.mach = m;
          sc.alpha_deg = a;
          spec.scenarios.push_back(sc);
        }
  }

  if (const obs::Json* list = doc.find("scenarios")) {
    if (!list->is_array())
      throw Error("fleet spec: scenarios must be an array");
    for (const auto& item : list->items) {
      if (!item.is_object())
        throw Error("fleet spec: scenario entries must be objects");
      spec.scenarios.push_back(scenario_from_json(item, base));
    }
  }

  if (spec.scenarios.empty())
    throw Error("fleet spec: no scenarios (need a sweep or a scenarios list)");

  for (std::size_t i = 0; i < spec.scenarios.size(); ++i) {
    ScenarioSpec& sc = spec.scenarios[i];
    sc.id = static_cast<int>(i);
    if (sc.name.empty()) sc.name = default_name(sc);
    if (sc.supersedes >= 0 &&
        (sc.supersedes >= sc.id ||
         static_cast<std::size_t>(sc.supersedes) >= spec.scenarios.size()))
      throw Error("fleet spec: supersedes must name an earlier scenario id");
  }
  return spec;
}

BatchSpec BatchSpec::parse(const std::string& text) {
  obs::Json doc;
  try {
    doc = obs::parse_json(text);
  } catch (const std::exception& e) {
    throw Error(std::string("fleet spec: invalid JSON (") + e.what() + ")");
  }
  return from_json(doc);
}

obs::Json BatchSpec::to_json() const {
  obs::Json doc = obs::Json::object();
  doc.set("schema", kBatchSchema)
      .set("name", name)
      .set("seed", static_cast<long long>(seed));
  obs::Json arr = obs::Json::array();
  for (const auto& sc : scenarios) arr.push(sc.to_json());
  doc.set("scenarios", std::move(arr));
  return doc;
}

std::uint32_t BatchSpec::content_hash() const {
  const std::string text = to_json().dump();
  return crc32(text.data(), text.size());
}

}  // namespace f3d::fleet
