#include "fleet/journal.hpp"

#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace f3d::fleet {

namespace {

constexpr std::uint32_t kFileMagic = 0x464C4A4Cu;   // "FLJL"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFrameMagic = 0x46524D45u;  // "FRME"
// A frame payload is type + id + attempt + detail-length + detail; cap
// the detail so a corrupt length field can't drive a huge allocation.
constexpr std::uint32_t kMaxPayload = 1u << 20;

void put_u32(std::string& out, std::uint32_t v) {
  for (int k = 0; k < 4; ++k)
    out.push_back(static_cast<char>((v >> (8 * k)) & 0xFFu));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::string encode_payload(const JournalRecord& rec) {
  std::string p;
  p.push_back(static_cast<char>(rec.type));
  put_u32(p, static_cast<std::uint32_t>(rec.scenario_id));
  put_u32(p, static_cast<std::uint32_t>(rec.attempt));
  put_u32(p, static_cast<std::uint32_t>(rec.detail.size()));
  p.append(rec.detail);
  return p;
}

bool decode_payload(const std::string& p, JournalRecord& rec) {
  if (p.size() < 13) return false;
  const auto* b = reinterpret_cast<const unsigned char*>(p.data());
  const auto t = static_cast<std::uint8_t>(b[0]);
  if (t < 1 || t > 6) return false;
  rec.type = static_cast<RecordType>(t);
  rec.scenario_id = static_cast<int>(get_u32(b + 1));
  rec.attempt = static_cast<int>(get_u32(b + 5));
  const std::uint32_t dlen = get_u32(b + 9);
  if (p.size() != 13 + static_cast<std::size_t>(dlen)) return false;
  rec.detail.assign(p, 13, dlen);
  return true;
}

}  // namespace

std::vector<int> JournalState::pending(int num_scenarios) const {
  std::vector<int> out;
  for (int id = 0; id < num_scenarios; ++id)
    if (!is_terminal(id)) out.push_back(id);
  return out;
}

struct Journal::Impl {
  std::FILE* f = nullptr;
  std::mutex mu;
};

Journal::Journal(const std::string& path) : impl_(new Impl), path_(path) {}

Journal::Journal(Journal&& other) noexcept
    : impl_(other.impl_), path_(std::move(other.path_)) {
  other.impl_ = nullptr;
}

Journal::~Journal() {
  if (impl_ != nullptr) {
    if (impl_->f != nullptr) std::fclose(impl_->f);
    delete impl_;
  }
}

Journal Journal::create(const std::string& path, std::uint32_t batch_hash,
                        const std::string& batch_name) {
  Journal j(path);
  j.impl_->f = std::fopen(path.c_str(), "wb");
  if (j.impl_->f == nullptr)
    throw Error("fleet journal: cannot create " + path);
  std::string header;
  put_u32(header, kFileMagic);
  put_u32(header, kVersion);
  put_u32(header, batch_hash);
  if (std::fwrite(header.data(), 1, header.size(), j.impl_->f) !=
      header.size())
    throw Error("fleet journal: header write failed for " + path);
  JournalRecord meta;
  meta.type = RecordType::kBatchMeta;
  meta.scenario_id = -1;
  meta.detail = batch_name;
  j.append(meta);
  return j;
}

Journal Journal::append_to(const std::string& path, std::uint32_t batch_hash) {
  // Validate the header (and implicitly existence) before appending.
  JournalState state = replay(path);
  if (state.batch_hash != batch_hash)
    throw Error("fleet journal: " + path +
                " was written for a different batch spec (hash mismatch)");
  Journal j(path);
  // "ab" appends past whatever replay accepted; a torn tail frame is
  // rendered harmless because replay stops at it forever after — but to
  // keep the file canonical we truncate the torn bytes first.
  if (state.bytes_discarded > 0) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw Error("fleet journal: cannot reopen " + path);
    std::fseek(f, 0, SEEK_END);
    const long total = std::ftell(f);
    std::fclose(f);
    const long keep = total - static_cast<long>(state.bytes_discarded);
    // No std::filesystem dependency here: rewrite the kept prefix.
    std::string prefix(static_cast<std::size_t>(keep), '\0');
    f = std::fopen(path.c_str(), "rb");
    if (f == nullptr || std::fread(prefix.data(), 1, prefix.size(), f) !=
                            prefix.size()) {
      if (f != nullptr) std::fclose(f);
      throw Error("fleet journal: torn-tail truncation read failed");
    }
    std::fclose(f);
    f = std::fopen(path.c_str(), "wb");
    if (f == nullptr || std::fwrite(prefix.data(), 1, prefix.size(), f) !=
                            prefix.size()) {
      if (f != nullptr) std::fclose(f);
      throw Error("fleet journal: torn-tail truncation write failed");
    }
    std::fclose(f);
  }
  j.impl_->f = std::fopen(path.c_str(), "ab");
  if (j.impl_->f == nullptr)
    throw Error("fleet journal: cannot open " + path + " for append");
  return j;
}

void Journal::append(const JournalRecord& rec) {
  const std::string payload = encode_payload(rec);
  std::string frame;
  put_u32(frame, kFrameMagic);
  put_u32(frame, crc32(payload.data(), payload.size()));
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (std::fwrite(frame.data(), 1, frame.size(), impl_->f) != frame.size() ||
      std::fflush(impl_->f) != 0)
    throw Error("fleet journal: append failed for " + path_);
}

JournalState Journal::replay(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw Error("fleet journal: cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long fsize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string bytes(static_cast<std::size_t>(fsize < 0 ? 0 : fsize), '\0');
  if (!bytes.empty() &&
      std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fclose(f);
    throw Error("fleet journal: read failed for " + path);
  }
  std::fclose(f);

  JournalState state;
  if (bytes.size() < 12)
    throw Error("fleet journal: " + path + " has no valid header");
  const auto* base = reinterpret_cast<const unsigned char*>(bytes.data());
  if (get_u32(base) != kFileMagic)
    throw Error("fleet journal: " + path + " is not a fleet journal");
  if (get_u32(base + 4) != kVersion)
    throw Error("fleet journal: " + path + " has an unsupported version");
  state.batch_hash = get_u32(base + 8);

  std::size_t off = 12;
  while (off < bytes.size()) {
    // Any structural defect from here on is a torn tail: count the
    // remainder as discarded and stop. Only invariant violations in
    // frames that *pass* their CRC are hard errors.
    if (bytes.size() - off < 12) break;
    const unsigned char* p = base + off;
    if (get_u32(p) != kFrameMagic) break;
    const std::uint32_t crc = get_u32(p + 4);
    const std::uint32_t len = get_u32(p + 8);
    if (len > kMaxPayload || bytes.size() - off - 12 < len) break;
    const std::string payload = bytes.substr(off + 12, len);
    if (crc32(payload.data(), payload.size()) != crc) break;
    JournalRecord rec;
    if (!decode_payload(payload, rec)) break;

    switch (rec.type) {
      case RecordType::kBatchMeta:
        state.batch_name = rec.detail;
        break;
      case RecordType::kStart: {
        int& n = state.attempts_started[rec.scenario_id];
        if (rec.attempt + 1 > n) n = rec.attempt + 1;
        break;
      }
      case RecordType::kCommit:
      case RecordType::kQuarantine:
      case RecordType::kShed:
      case RecordType::kCancel: {
        if (state.is_terminal(rec.scenario_id))
          throw Error("fleet journal: scenario " +
                      std::to_string(rec.scenario_id) +
                      " has two terminal frames");
        std::set<int>& dst = rec.type == RecordType::kCommit ? state.committed
                             : rec.type == RecordType::kQuarantine
                                 ? state.quarantined
                             : rec.type == RecordType::kShed ? state.shed
                                                             : state.cancelled;
        dst.insert(rec.scenario_id);
        state.terminal_detail[rec.scenario_id] = rec.detail;
        break;
      }
    }
    ++state.frames_replayed;
    off += 12 + len;
  }
  state.bytes_discarded = bytes.size() - off;
  return state;
}

}  // namespace f3d::fleet
