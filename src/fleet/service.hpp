#pragma once
// fleet::Service — the resident multi-scenario serving layer: accept a
// BatchSpec, share the immutable per-mesh-class artifacts (mesh,
// ordering, dual metrics / stencil / edge coloring, partition) across
// scenarios, and drain the scenario queue with fault isolation:
//
//  * journaled exactly-once commits — every terminal decision is a
//    CRC-framed frame in the scenario journal (fleet/journal.hpp); a
//    kill-and-restart resumes exactly the pending set;
//  * a retry/backoff ladder with poison quarantine — a failed scenario
//    is retried under progressively safer knob configurations (attempt
//    1 drops the scenario's own knobs and any tuning-DB entry, attempt
//    2 adds conservative solver settings); after max_attempts strikes
//    it is quarantined with a structured post-mortem rather than being
//    allowed to wedge the batch;
//  * overload control — admission by aggregate work budget processed in
//    scheduling order (priority desc, id asc), load-shedding verdicts
//    for scenarios that do not fit, and supersede-cancellation that
//    releases a cancelled scenario's admitted budget immediately so a
//    later admission sees the headroom (fleet.budget_reclaimed_units).
//
// Concurrency model: scenario workers are plain threads owned by the
// service; each solve runs single-threaded on its worker (the global
// exec pool must be 1 thread when workers > 1 — enforced — because the
// pool has a single job slot and does not accept concurrent external
// dispatch). Guards are thread-local, so concurrent guarded solves are
// isolated. Determinism: for a fixed (spec, seed) every scenario's
// solve is bit-identical regardless of worker count or interleaving,
// because scenarios never share mutable state — only the immutable
// artifacts.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/journal.hpp"
#include "fleet/spec.hpp"
#include "obs/json.hpp"

namespace f3d::fleet {

/// How one scenario left the fleet.
enum class ScenarioStatus : int {
  kCommitted = 0,   ///< solved, result durable in the journal
  kQuarantined,     ///< declared poison after the retry ladder
  kShed,            ///< rejected by admission control
  kCancelled,       ///< superseded while still queued
  kPending,         ///< run stopped (kill hook) before a decision
};
[[nodiscard]] const char* scenario_status_name(ScenarioStatus s);

struct ScenarioResult {
  int id = -1;
  std::string name;
  ScenarioStatus status = ScenarioStatus::kPending;
  int attempts = 0;            ///< solve attempts consumed (this run + prior)
  std::string verdict;         ///< guard verdict name of the last attempt
  long long work_units = 0;    ///< last attempt's deterministic work
  double residual_drop_orders = 0;
  std::uint32_t solution_crc = 0;  ///< CRC-32 of the committed state bytes
  double wall_s = 0;           ///< wall time across this run's attempts
  bool replayed = false;       ///< decision came from the journal, not a solve
  std::string detail;          ///< post-mortem / shed / cancel reason
};

struct BatchResult {
  std::vector<ScenarioResult> scenarios;  ///< index == scenario id
  int committed = 0;
  int quarantined = 0;
  int shed = 0;
  int cancelled = 0;
  int pending = 0;          ///< nonzero only after a kill-hook stop
  int retries = 0;          ///< extra attempts beyond the first, this run
  bool killed = false;      ///< the kill_after_commits hook fired
  long long budget_reclaimed_units = 0;
  double wall_s = 0;

  [[nodiscard]] obs::Json to_json() const;  ///< f3d-fleet-dash-v1 document
};

struct FleetOptions {
  int workers = 1;             ///< scenario worker threads
  std::string journal_path;    ///< empty = run without a journal
  bool resume = false;         ///< replay journal_path and continue it
  int max_attempts = 3;        ///< retry-ladder strikes before quarantine
  double backoff_base_ms = 0;  ///< retry backoff base (0 = no backoff sleep)
  unsigned backoff_seed = 1;   ///< jitter stream seed
  /// Aggregate admission capacity in guard work units (0 = unlimited).
  /// Scenarios whose work_units do not fit the remaining capacity are
  /// shed, in scheduling order.
  long long admission_capacity_units = 0;
  /// Admission charge for a scenario with work_units == 0 (an unbounded
  /// solve still occupies the fleet).
  long long default_admit_units = 50000;
  std::string tune_db_path;    ///< consult f3d-tunedb-v1 on attempt 0
  /// Test hook: stop the whole service abruptly after this many commits
  /// (0 = off). Emulates a mid-batch crash — the journal is left exactly
  /// as written, undecided scenarios stay pending.
  int kill_after_commits = 0;
};

class Service {
public:
  explicit Service(FleetOptions opts);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Serve one batch to completion (or to the kill hook). Builds or
  /// resumes the journal, runs admission, drains the queue with the
  /// configured workers, and returns the per-scenario outcomes.
  BatchResult serve(const BatchSpec& spec);

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace f3d::fleet
