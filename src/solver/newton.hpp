#pragma once
// Pseudo-transient Newton-Krylov-Schwarz (psi-NKS) — the paper's solution
// algorithm (§1.1, §2.4).
//
// Each pseudo-timestep l solves one inexact Newton correction of
//   g(x) = r(x) + D_l (x - x_l),   D_l = diag(V_i / dt_i) (x) I_nb,
// with dt_i = N_CFL^l * V_i / sr_i local timesteps and the SER power law
//   N_CFL^l = N_CFL^0 (||r(x_0)|| / ||r(x_{l-1})||)^p        (§2.4.1).
// The Jacobian action is matrix-free (FD of the residual; the paper: "the
// Jacobian itself is never explicitly needed"); the preconditioner is
// built from the analytic first-order Jacobian and refreshed at a
// configurable frequency (§2.4's "refresh frequency" knob).

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.hpp"

#include "guard/guard.hpp"
#include "guard/watchdog.hpp"
#include "partition/partition.hpp"
#include "resilience/faults.hpp"
#include "resilience/recovery.hpp"
#include "solver/gmres.hpp"
#include "solver/precond.hpp"
#include "sparse/csr.hpp"

namespace f3d::tune {
class Registry;
}

namespace f3d::solver {

/// The nonlinear discretization the psi-NKS driver operates on. State
/// vectors are interlaced scalars of length num_vertices()*nb().
class NonlinearProblem {
public:
  virtual ~NonlinearProblem() = default;

  [[nodiscard]] virtual int num_vertices() const = 0;
  [[nodiscard]] virtual int nb() const = 0;
  [[nodiscard]] int num_unknowns() const { return num_vertices() * nb(); }

  /// Steady residual r(x).
  virtual void residual(const std::vector<double>& x,
                        std::vector<double>& r) = 0;

  /// Analytic first-order Jacobian for preconditioning.
  [[nodiscard]] virtual sparse::Bcsr<double> allocate_jacobian() const = 0;
  virtual void jacobian(const std::vector<double>& x,
                        sparse::Bcsr<double>& jac) = 0;

  /// Per-vertex V_i / sr_i at state x (local timestep scale; the local
  /// pseudo-timestep is dt_i = N_CFL * V_i / sr_i).
  virtual void timestep_scale(const std::vector<double>& x,
                              std::vector<double>& vol_over_sr) = 0;

  /// Per-vertex dual control volumes V_i (the pseudo-time term of the
  /// implicit system is (V_i / dt_i) I = (sr_i / N_CFL) I).
  virtual void cell_volumes(std::vector<double>& vol) const = 0;

  /// Called at the start of each pseudo-timestep with the residual
  /// reduction so far; lets the problem switch discretization order etc.
  virtual void on_step(int step, double residual_ratio) {
    (void)step;
    (void)residual_ratio;
  }

  /// Physical-admissibility watchdog: is state x something the model could
  /// legitimately produce? Called after each accepted pseudo-timestep when
  /// the SDC guards are on. The base class only demands finiteness;
  /// physics problems override with real constraints (cfd::EulerProblem:
  /// positive density and pressure — see cfd/admissibility.hpp).
  [[nodiscard]] virtual bool admissible(const std::vector<double>& x) const {
    for (double v : x)
      if (!std::isfinite(v)) return false;
    return true;
  }
};

/// Knobs of the ψNKS breakdown recovery ladder (§2.4's safeguards, made
/// explicit). With `enabled == false` every numerical failure aborts via
/// an exception exactly as the plain driver always did; with it on, the
/// driver detects, recovers, logs, and keeps going:
///   NaN/diverged residual  -> reject the step, backtrack CFL, refresh prec
///   Krylov breakdown       -> swap BiCGStab -> GMRES
///   GMRES stagnation       -> escalate the restart length; if escalation
///                             is exhausted, swap GMRES -> BiCGStab
///   zero pivot             -> escalating diagonal shift in the refactor
struct PtcRecoveryOptions {
  bool enabled = false;

  // Step rejection.
  int max_step_retries = 6;       ///< attempts per pseudo-timestep
  double cfl_backtrack = 0.25;    ///< CFL multiplier on a rejected step
  double cfl_regrow = 2.0;        ///< relaxation recovery per accepted step
  double divergence_factor = 1e3; ///< reject if ||r|| grows past this factor

  // Zero-pivot shift ladder (Manteuffel-style, relative to diag scale).
  double pivot_shift0 = 1e-8;
  int pivot_shift_attempts = 8;   ///< x10 escalation per rung

  // Krylov escalation. A breakdown swaps BiCGStab -> GMRES; stagnation
  // first escalates the GMRES restart length, then (once per solve) swaps
  // GMRES -> BiCGStab. The swapped-to method stays active for the rest of
  // the run.
  bool allow_krylov_swap = true;
  int gmres_restart_max = 120;    ///< cap for restart-length escalation
  int max_linear_retries = 2;     ///< escalating re-solves of one system

  // Checkpoint/restart (see resilience/checkpoint.hpp).
  std::string checkpoint_path;    ///< empty = no checkpointing
  int checkpoint_every = 0;       ///< write every k accepted steps (0 = off)
  bool resume = false;            ///< restore from checkpoint_path if present
};

/// Silent-data-corruption guards (detect finite wrong values no NaN check
/// can see) and the two ladder rungs that answer a detection. Requires
/// PtcRecoveryOptions::enabled — without the ladder a detection aborts
/// via NumericalError like every other plain-path failure.
///
/// Detection layers (all on by default once `enabled` is set):
///  * ABFT checksum on every assembled-Jacobian SpMV (matrix_free=false
///    path only; see sparse/abft.hpp),
///  * Krylov invariant monitors (GMRES restart drift / BiCGStab periodic
///    true residual; see the solvers' sdc_drift_tol options),
///  * NonlinearProblem::admissible() on each accepted step's state.
///
/// Recovery rungs, in escalation order:
///  1. recompute-and-verify: reject the step, force a Jacobian/checksum
///     rebuild, and re-run the attempt — clears transient flips (residual
///     or Krylov vectors) and matrix corruption;
///  2. rollback: restore the last state that passed every guard — the
///     only exit when the step-entry state itself is corrupted.
struct PtcSdcOptions {
  bool enabled = false;

  bool abft = true;               ///< checksum assembled-Jacobian products
  double abft_slack = 1024.0;     ///< rounding-bound slack (sparse/abft.hpp)
  bool admissibility = true;      ///< post-step admissible() scan
  double gmres_drift_tol = 1e-2;  ///< GmresOptions::sdc_drift_tol
  double bicgstab_drift_tol = 1e-2;   ///< BicgstabOptions::sdc_drift_tol
  int bicgstab_true_residual_every = 10;  ///< extra matvec cadence

  /// Recompute-and-verify attempts per step before rolling back to the
  /// last verified state.
  int max_recompute = 1;
};

/// Graceful-degradation ladder: under budget pressure, trade accuracy for
/// on-time completion instead of overrunning. Rungs fire once each, in
/// order, as guard::SolveGuard::pressure() crosses their thresholds; the
/// final rung — early-return the best committed state — is the budget
/// trip itself. Every firing is logged as RecoveryAction::kDegradeRung.
struct PtcDegradeOptions {
  bool enabled = false;
  double loosen_at = 0.5;   ///< pressure to loosen the linear tolerance at
  double freeze_at = 0.7;   ///< pressure to stop Jacobian/prec refreshes at
  double shrink_at = 0.85;  ///< pressure to shrink the Krylov effort at
  double rtol_factor = 10.0;  ///< linear-rtol multiplier for the loosen rung
  double rtol_max = 0.3;      ///< cap on the loosened linear rtol
  int restart_min = 8;        ///< floor for the shrunk GMRES restart
  int krylov_iters_min = 10;  ///< floor for the shrunk per-solve iterations
};

/// Run-to-completion contract for one solve: budget + cancellation, the
/// livelock watchdog, and the degradation policy. Default-constructed =
/// unbounded, watchdog off, no degradation — byte-for-byte the historical
/// driver behavior.
struct PtcGuardOptions {
  guard::SolveBudget budget;          ///< deadline / work cap / cancel token
  guard::WatchdogOptions watchdog;    ///< livelock-style stall detection
  PtcDegradeOptions degrade;          ///< accuracy-for-time ladder
  /// Catch NumericalError from an exhausted recovery ladder and return the
  /// best committed state with verdict kFaultUnrecoverable instead of
  /// propagating. Off by default: plain callers keep the historical
  /// abort-by-exception semantics.
  bool capture_faults = false;
};

struct PtcOptions {
  // Continuation (§2.4.1).
  double cfl0 = 10.0;      ///< initial CFL number
  double ser_exponent = 1.0;  ///< p in the SER power law (0.75 - 1.5)
  double cfl_max = 1e5;    ///< CFL cap (paper: CFL reaches 1e5)

  // Outer loop.
  int max_steps = 100;
  double rtol = 1e-8;      ///< steady residual reduction target
  int newton_per_step = 1; ///< inexact Newton iterations per timestep

  // Krylov (§2.4.2).
  enum class Krylov { kGmres, kBicgstab };
  Krylov krylov = Krylov::kGmres;
  GmresOptions gmres{.rtol = 5e-3, .max_iters = 60, .restart = 20};

  // Schwarz (§2.4.3).
  SchwarzOptions schwarz{};
  int num_subdomains = 1;
  /// Add the aggregation coarse space (two-level Schwarz) — the paper's
  /// "coarse grid usage" knob.
  bool use_coarse_space = false;
  /// Partition supplied by the caller (e.g. from a specific partitioner
  /// for the Figure 4 experiment); if empty, kway_grow is used.
  part::Partition partition{};

  /// Rebuild+refactor the preconditioner every k pseudo-timesteps.
  int jacobian_refresh = 1;

  /// Relative FD step for the matrix-free Jacobian action.
  double fd_eps = 1e-7;

  /// false = apply the *assembled* first-order Jacobian in GMRES instead
  /// of the matrix-free FD action. Cheaper per iteration but the Krylov
  /// operator is then only first-order accurate — the tradeoff behind the
  /// paper's matrix-free choice (ablated in bench_ablation_subsolver).
  bool matrix_free = true;

  /// With matrix_free == false: keep the Krylov operator's Jacobian in
  /// float storage (Bcsr<float>, arithmetic still double — the Table 2
  /// storage/accumulate split applied to the operator itself, halving its
  /// memory traffic). The ABFT guard, when on, checksums the float copy
  /// and widens its bound to FLT_EPSILON. Pair with
  /// schwarz.single_precision for float preconditioner factors too.
  bool matrix_single_precision = false;

  /// Backtracking line search steps (0 = plain Newton).
  int max_line_search = 3;

  /// Breakdown recovery ladder + checkpoint/restart (off by default: the
  /// plain path aborts on numerical failure exactly as before).
  PtcRecoveryOptions recovery;

  /// Silent-data-corruption guards + recompute/rollback rungs (off by
  /// default; needs recovery.enabled for the recovery half).
  PtcSdcOptions sdc;

  /// Optional fault injector, registered process-wide for the duration of
  /// the solve (resilience test campaigns; see resilience/faults.hpp).
  resilience::FaultInjector* fault_injector = nullptr;

  /// Run-to-completion contract: budget, cancellation, stall watchdog,
  /// degradation ladder (defaults = unbounded, everything off).
  PtcGuardOptions guard;

  /// Register the driver's performance knobs (continuation, Krylov choice,
  /// refresh frequency, subdomain count, operator precision, checkpoint
  /// interval τ) plus the nested gmres/schwarz knobs into the flat tuning
  /// space under "ptc." / "gmres." / "schwarz." — see docs/TUNING.md.
  /// The registry borrows this struct: it must outlive the registry.
  void bind(tune::Registry& reg);
};

struct PtcStepRecord {
  int step = 0;
  double residual = 0;  ///< steady ||r(x)|| after the step
  double cfl = 0;
  int linear_iterations = 0;
  bool linear_converged = false;
  bool linear_breakdown = false;  ///< BiCGStab flagged rho/omega collapse
  bool linear_stagnated = false;  ///< GMRES stagnation watchdog fired
  int rejections = 0;             ///< attempts rolled back before acceptance
  double line_search_lambda = 1.0;
};

struct PtcResult {
  bool converged = false;
  int steps = 0;
  long long total_linear_iterations = 0;
  long long function_evaluations = 0;
  double initial_residual = 0;
  double final_residual = 0;
  std::vector<PtcStepRecord> history;
  SolveCounters counters;

  // Resilience bookkeeping.
  resilience::RecoveryLog recovery_log;  ///< every detection/recovery action
  int steps_rejected = 0;     ///< step attempts rolled back
  int krylov_breakdowns = 0;  ///< breakdowns reported by the inner solver
  bool resumed = false;       ///< state was restored from a checkpoint
  int resume_step = 0;        ///< first step executed after the restore
  int sdc_detections = 0;     ///< guard firings (ABFT / drift / admissibility)
  int sdc_recomputes = 0;     ///< recompute-and-verify rungs taken
  int sdc_rollbacks = 0;      ///< rollbacks to the last verified state

  // Run-to-completion contract (f3d::guard). On any early exit x holds
  // the best committed iterate — the last accepted pseudo-timestep's
  // state, bit-identical at any thread count for deterministic trips.
  guard::SolveVerdict verdict = guard::SolveVerdict::kMaxIters;
  guard::TripReason trip = guard::TripReason::kNone;
  long long work_units = 0;           ///< deterministic cost-model total
  long long cancel_latency_units = 0; ///< units charged after the trip
  int degrade_rungs = 0;              ///< degradation-ladder rungs fired
  bool watchdog_fired = false;        ///< livelock-style stall detected
  // Quality grade of the returned state.
  double residual_drop_orders = 0;    ///< log10(r0 / final_residual)
  bool best_state_admissible = true;  ///< admissibility scan of returned x
  int last_checkpoint_step = -1;      ///< last verified checkpoint (-1: none)
  /// Real wall-clock per phase: "flux" (residual evaluations, including
  /// matrix-free actions and line search), "jacobian" (analytic assembly),
  /// "factor" (preconditioner refactorization), "krylov" (solver
  /// orchestration outside the residual calls). The paper: "the CFD
  /// application spends almost all of its time in two phases" — this is
  /// how we check that claim on the reproduction.
  PhaseTimers phases;
};

/// Run psi-NKS from initial state x (updated in place).
PtcResult ptc_solve(NonlinearProblem& problem, std::vector<double>& x,
                    const PtcOptions& opts);

}  // namespace f3d::solver
