#pragma once
// Domain-decomposition preconditioners — the paper's Schwarz layer
// (§2.4.3): block Jacobi (zero overlap), additive Schwarz (ASM), and
// restricted additive Schwarz (RASM, Cai-Sarkis), each with ILU(k)
// subdomain solves and optional single-precision factor storage (§2.2).
//
// On this sequential substrate, "subdomains" play the role of the paper's
// processors: the *algorithmic* effect of the subdomain count (more,
// smaller blocks => more Krylov iterations) is reproduced exactly; the
// hardware cost of applying the preconditioner in parallel is modeled
// separately by f3d::par.

#include <memory>
#include <string>
#include <vector>

#include "partition/partition.hpp"
#include "solver/linear.hpp"
#include "sparse/csr.hpp"
#include "sparse/ilu.hpp"

namespace f3d::tune {
class Registry;
}

namespace f3d::solver {

enum class SchwarzType {
  kBlockJacobi,  ///< no overlap; prolongation trivially restricted
  kAsm,          ///< overlapping, additive prolongation (2 comm phases)
  kRasm,         ///< overlapping, restricted prolongation (1 comm phase)
};

/// Subdomain solve kind — the paper's §2.4 "quality of subdomain solver
/// (fill level, number of sweeps)" knob.
enum class SubdomainSolver {
  kIlu,   ///< ILU(fill_level) factorization + triangular solves
  kSsor,  ///< `sweeps` symmetric block Gauss-Seidel sweeps
};

struct SchwarzOptions {
  SchwarzType type = SchwarzType::kRasm;
  int overlap = 0;       ///< BFS levels of subdomain overlap
  int fill_level = 1;    ///< ILU(k) in each subdomain
  bool single_precision = false;  ///< store factors in float (Table 2)
  SubdomainSolver subdomain_solver = SubdomainSolver::kIlu;
  int sweeps = 2;        ///< SSOR sweeps when subdomain_solver == kSsor

  /// Register the Schwarz knobs (type, overlap, fill, factor precision,
  /// subdomain solver, sweeps) into the flat tuning space under `prefix`.
  /// The registry borrows this struct: it must outlive the registry.
  void bind(tune::Registry& reg, const std::string& prefix = "schwarz.");
};

/// Additive Schwarz over a vertex partition of a block (BAIJ) matrix.
class SchwarzPreconditioner final : public RefactorablePreconditioner {
public:
  /// `a` is the assembled global block Jacobian (interlaced); `partition`
  /// assigns each block row (mesh vertex) to a subdomain. The adjacency
  /// graph used for overlap expansion is derived from `a`'s block
  /// sparsity. Performs symbolic setup and the first numeric
  /// factorization.
  SchwarzPreconditioner(const sparse::Bcsr<double>& a,
                        const part::Partition& partition,
                        const SchwarzOptions& opts);

  /// Re-extract subdomain values from a new `a` with the same sparsity and
  /// refactor (Jacobian refresh between Newton steps). Throws
  /// f3d::NumericalError on a singular subdomain factorization.
  void refactor(const sparse::Bcsr<double>& a) override;

  /// Resilient refresh: a zero pivot / singular block is retried with an
  /// escalating diagonal shift delta*I (delta = shift0 * diag scale, x10
  /// per rung, `max_attempts` rungs) on the failing subdomain's local
  /// matrix — the factorization then succeeds on a slightly perturbed
  /// operator, degrading preconditioner quality instead of aborting.
  bool refactor_checked(const sparse::Bcsr<double>& a, double shift0,
                        int max_attempts,
                        resilience::FactorReport* report) override;

  void apply(const double* r, double* z) const override;
  [[nodiscard]] int n() const override { return n_; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int num_subdomains() const {
    return static_cast<int>(subs_.size());
  }
  /// Owned + overlap vertex count per subdomain (the paper's "larger local
  /// submatrices" ASM cost).
  [[nodiscard]] std::vector<int> subdomain_sizes() const;
  /// Total factor storage in bytes (float factors halve this — the
  /// memory-bandwidth lever of Table 2).
  [[nodiscard]] std::size_t factor_bytes() const;

private:
  struct Subdomain {
    std::vector<int> vertices;  ///< global vertex ids (owned + overlap)
    std::vector<char> owned;    ///< parallel to vertices
    sparse::Bcsr<double> local; ///< extracted local matrix
    sparse::IluPattern pattern;
    sparse::TriSchedule fwd;    ///< level schedule of the L solve
    sparse::TriSchedule bwd;    ///< level schedule of the U solve
    sparse::BlockIlu<double> ilu_d;  ///< populated if !single_precision
    sparse::BlockIlu<float> ilu_f;   ///< populated if single_precision
    std::vector<double> diag_lu;     ///< factored diagonal blocks (SSOR)
  };

  void extract_local_values(const sparse::Bcsr<double>& a, Subdomain& sd) const;
  void factor(Subdomain& sd);
  /// Non-throwing numeric factorization; `err` gets the failure reason.
  bool factor_checked(Subdomain& sd, std::string* err);
  /// Add `delta` to every scalar diagonal entry of sd.local's diagonal
  /// blocks (Manteuffel shift, applied cumulatively by the ladder).
  static void shift_local_diagonal(Subdomain& sd, int nb, double delta);
  void ssor_solve(const Subdomain& sd, const double* b, double* z) const;

  int n_ = 0;
  int nb_ = 0;
  SchwarzOptions opts_;
  std::vector<Subdomain> subs_;
};

/// Convenience: single-domain global block-ILU(k) preconditioner.
std::unique_ptr<SchwarzPreconditioner> make_global_ilu(
    const sparse::Bcsr<double>& a, int fill_level,
    bool single_precision = false);

}  // namespace f3d::solver
