#pragma once
// Linear-solver interfaces: operator action (possibly matrix-free, as in
// the paper's "matrix-free implementation" where the true Jacobian is
// only ever applied, never formed) and right preconditioning.

#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "resilience/recovery.hpp"
#include "sparse/csr.hpp"

namespace f3d::solver {

/// A square linear operator given by its action y = A x.
struct LinearOperator {
  int n = 0;
  std::function<void(const double* x, double* y)> apply;
};

/// Right preconditioner interface: z = M^{-1} r.
class Preconditioner {
public:
  virtual ~Preconditioner() = default;
  virtual void apply(const double* r, double* z) const = 0;
  [[nodiscard]] virtual int n() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// A preconditioner whose numeric values can be rebuilt from a new matrix
/// with unchanged sparsity (Jacobian refresh between Newton steps).
class RefactorablePreconditioner : public Preconditioner {
public:
  virtual void refactor(const sparse::Bcsr<double>& a) = 0;

  /// Non-throwing refresh for the resilient solver path: a singular
  /// factorization is answered with an escalating Manteuffel-style
  /// diagonal shift (up to `max_attempts` rungs of x10 from `shift0`,
  /// relative to the diagonal scale) instead of an abort. Returns false
  /// only if even the ladder failed; `report` (optional) records what was
  /// needed. The base implementation has no ladder — it simply downgrades
  /// a NumericalError from refactor() to a status.
  virtual bool refactor_checked(const sparse::Bcsr<double>& a, double shift0,
                                int max_attempts,
                                resilience::FactorReport* report) {
    (void)shift0;
    (void)max_attempts;
    try {
      refactor(a);
    } catch (const NumericalError& e) {
      if (report != nullptr) {
        report->ok = false;
        report->detail = e.what();
      }
      return false;
    }
    if (report != nullptr) *report = {};
    return true;
  }
};

/// Identity (no preconditioning).
class IdentityPreconditioner final : public Preconditioner {
public:
  explicit IdentityPreconditioner(int n) : n_(n) {}
  void apply(const double* r, double* z) const override {
    for (int i = 0; i < n_; ++i) z[i] = r[i];
  }
  [[nodiscard]] int n() const override { return n_; }
  [[nodiscard]] std::string name() const override { return "none"; }

private:
  int n_;
};

/// Operation counters the parallel performance model consumes: every
/// global reduction (dot/norm) is a synchronization point on a real
/// machine (paper Table 3 decomposes exactly these costs).
struct SolveCounters {
  long long matvecs = 0;
  long long prec_applies = 0;
  long long dots = 0;    ///< global reductions
  long long axpys = 0;   ///< local vector updates

  SolveCounters& operator+=(const SolveCounters& o) {
    matvecs += o.matvecs;
    prec_applies += o.prec_applies;
    dots += o.dots;
    axpys += o.axpys;
    return *this;
  }
};

}  // namespace f3d::solver
