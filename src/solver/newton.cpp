#include "solver/newton.hpp"

#include "solver/bicgstab.hpp"
#include "solver/coarse.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "resilience/bitflip.hpp"
#include "resilience/checkpoint.hpp"
#include "sparse/abft.hpp"
#include "sparse/vec.hpp"

namespace f3d::solver {

namespace {

using resilience::RecoveryAction;

// Block-sparsity adjacency graph for the default partitioner.
mesh::Graph graph_from_jacobian(const sparse::Bcsr<double>& a) {
  std::vector<std::array<int, 2>> edges;
  for (int i = 0; i < a.nrows; ++i)
    for (int p = a.ptr[i]; p < a.ptr[i + 1]; ++p)
      if (a.col[p] > i) edges.push_back({i, a.col[p]});
  return mesh::build_graph(a.nrows, edges);
}

bool all_finite(const std::vector<double>& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

// The actual solve. Wrapped by ptc_solve() below, which owns the root
// trace span and the env-requested trace flush.
PtcResult ptc_solve_impl(NonlinearProblem& problem, std::vector<double>& x,
                         const PtcOptions& opts) {
  const int n = problem.num_unknowns();
  const int nb = problem.nb();
  const int nv = problem.num_vertices();
  F3D_CHECK(static_cast<int>(x.size()) == n);
  F3D_CHECK(opts.num_subdomains >= 1);

  const PtcRecoveryOptions& rec = opts.recovery;
  const bool resilient = rec.enabled;
  const PtcSdcOptions& sdc = opts.sdc;
  const bool sdc_on = sdc.enabled;
  // Register the fault injector for the duration of the solve so the
  // instrumented sites deep in the stack (ILU factorization, Krylov inner
  // loops) see it without threading it through every signature.
  resilience::InjectorScope injector_scope(opts.fault_injector);

  // Run-to-completion contract: the guard is always constructed (an
  // unbounded budget never trips, so the plain path is unchanged) and
  // registered process-wide so exec chunk boundaries, Schwarz subdomain
  // loops, and the cfd kernels can poll it.
  const PtcGuardOptions& gopts = opts.guard;
  guard::SolveGuard sguard(gopts.budget);
  guard::GuardScope guard_scope(&sguard);
  guard::ProgressWatchdog stall_watchdog(gopts.watchdog);

  PtcResult result;
  std::vector<double> r(n), g0(n), rhs(n), dx(n), scale(nv), work(n), xw(n);

  // Ladder state that survives across steps.
  double cfl_relax = 1.0;  ///< CFL backtrack multiplier (1 = no backtrack)
  bool force_refresh = false;
  GmresOptions gmres_active = opts.gmres;
  gmres_active.guard = &sguard;  ///< charge/trip at iteration boundaries
  if (sdc_on) gmres_active.sdc_drift_tol = sdc.gmres_drift_tol;
  PtcOptions::Krylov krylov_active = opts.krylov;
  int cur_step = 0;
  bool nan_seen = false;
  bool sdc_flagged = false;  ///< this attempt tripped an SDC guard
  sparse::AbftGuard abft_guard;
  abft_guard.slack = sdc.abft_slack;

  // Every SDC guard firing funnels through here: tallies, logs, and either
  // hands the recovery ladder the attempt (resilient mode) or aborts.
  auto detect_sdc = [&](const std::string& what) {
    ++result.sdc_detections;
    obs::Registry::global().count("resilience.sdc_detected");
    F3D_NUMERIC_CHECK_MSG(resilient,
                          "silent data corruption detected: " + what);
    result.recovery_log.add(cur_step, RecoveryAction::kDetectSdc, what);
    sdc_flagged = true;
  };

  // Residual evaluation wrapper: all driver-side residual calls funnel
  // through here — it times into "flux", counts, hosts the NaN/Inf
  // fault-injection site, and detects non-finite output. The plain path
  // aborts on corruption exactly where it happens; the resilient path
  // records it and lets the step-rejection ladder handle it.
  auto eval_residual = [&](const std::vector<double>& xx,
                           std::vector<double>& rr, const char* what) {
    // Budget charge + immediate honor: a tripped guard abandons the
    // evaluation before any work, so cancellation latency is zero extra
    // units at every residual-class charge point regardless of whether
    // the problem's kernels have their own poll points. The throw lands
    // in this driver's own guard-exit handler.
    if (sguard.charge(guard::kUnitsResidual) != guard::TripReason::kNone)
      throw guard::CancelledError(sguard.tripped());
    {
      F3D_OBS_SPAN("flux");
      PhaseTimers::Scope scope(result.phases, "flux");
      problem.residual(xx, rr);
    }
    ++result.function_evaluations;
    if (resilience::fault_fires(resilience::FaultSite::kResidual)) {
      const auto* inj = resilience::active_injector();
      rr[0] = (inj->fires(resilience::FaultSite::kResidual) % 2 == 0)
                  ? std::numeric_limits<double>::infinity()
                  : std::numeric_limits<double>::quiet_NaN();
    }
    // Transport checksum over the freshly evaluated residual. Both sums
    // run the same serial order over the same memory, so on a clean path
    // they are bit-identical — zero false positives by construction. A
    // flip whose contribution is swallowed by summation rounding (low
    // mantissa bits) stays invisible: that is the measured escape class.
    double sum_before = 0;
    if (sdc_on && sdc.abft)
      for (int i = 0; i < n; ++i) sum_before += rr[i];
    // SDC site: a silent finite flip in the freshly evaluated residual —
    // transient corruption (the recompute-and-verify rung clears it).
    resilience::maybe_flip(resilience::FlipTarget::kResidual, rr.data(), n);
    const bool finite = all_finite(rr);
    if (!finite) {
      nan_seen = true;
      if (resilient)
        result.recovery_log.add(cur_step, RecoveryAction::kDetectNanResidual,
                                what);
      else
        F3D_NUMERIC_CHECK_MSG(finite, std::string("non-finite residual (") +
                                          what + ")");
      return finite;
    }
    if (sdc_on && sdc.abft && std::isfinite(sum_before)) {
      double sum_after = 0;
      for (int i = 0; i < n; ++i) sum_after += rr[i];
      if (sum_after != sum_before) {
        detect_sdc(std::string("residual transport checksum mismatch (") +
                   what + ")");
        return false;
      }
    }
    return finite;
  };

  // --- checkpoint restore -------------------------------------------------
  int start_step = 0;
  double rnorm = 0, r0 = 1.0;
  bool restored = false;

  // Best committed iterate: the state every guard exit restores and
  // returns. Updated only when x is set to an accepted/verified state, so
  // for deterministic trips (work budget, armed cancel) the returned
  // state is bit-identical at any thread count.
  std::vector<double> x_commit = x;
  double rnorm_commit = std::numeric_limits<double>::infinity();
  bool fault_captured = false;
  bool guard_exit = false;

  // The whole solve runs under the guard-exit handler below: a
  // CancelledError thrown from any charge or poll point (driver charges,
  // exec chunk boundaries, Schwarz subdomain loops, cfd kernel entries)
  // unwinds to it, the best committed state is restored, and the exit is
  // mapped onto the verdict taxonomy — never propagated to the caller.
  auto solve_body = [&]() {
  if (resilient && rec.resume && !rec.checkpoint_path.empty()) {
    std::string ck_source;
    if (auto ck = resilience::load_checkpoint_with_fallback(
            rec.checkpoint_path, &ck_source)) {
      F3D_CHECK_MSG(static_cast<int>(ck->x.size()) == n,
                    "checkpoint state size mismatch");
      x = ck->x;
      start_step = static_cast<int>(ck->step);
      rnorm = ck->rnorm;
      r0 = ck->r0;
      cfl_relax = ck->cfl_relax;
      result.steps = static_cast<int>(ck->steps_done);
      result.function_evaluations = ck->function_evaluations;
      result.total_linear_iterations = ck->total_linear_iterations;
      if (ck->gmres_restart > 0) gmres_active.restart = ck->gmres_restart;
      krylov_active = static_cast<PtcOptions::Krylov>(ck->krylov);
      result.recovery_log = ck->log;
      if (ck->has_injector && opts.fault_injector != nullptr)
        opts.fault_injector->restore(ck->injector);
      result.resumed = true;
      result.resume_step = start_step;
      result.initial_residual = r0;
      result.recovery_log.add(start_step, RecoveryAction::kResume,
                              "restored from " + ck_source);
      restored = true;
    }
  }
  if (!restored) {
    // The initial evaluation may itself be hit by a (transient) injected
    // fault; re-evaluating is the only recovery available before any step
    // state exists.
    for (int attempt = 0;; ++attempt) {
      nan_seen = false;
      sdc_flagged = false;
      eval_residual(x, r, "initial residual");
      if (!nan_seen && !sdc_flagged) break;
      F3D_NUMERIC_CHECK_MSG(attempt < 3, "non-finite initial residual");
    }
    sdc_flagged = false;
    rnorm = sparse::norm2(r);
    result.initial_residual = rnorm;
    r0 = rnorm > 0 ? rnorm : 1.0;
  }

  // Last state that passed every SDC guard — the rollback rung's target
  // when the step-entry iterate itself is corrupted (so step-rejection's
  // own snapshot is poisoned too).
  std::vector<double> x_good;
  double rnorm_good = rnorm;
  if (sdc_on) x_good = x;
  // Entry state (restored or freshly evaluated) is the first committed
  // iterate; a trip before any accepted step returns it unchanged.
  x_commit = x;
  rnorm_commit = rnorm;
  if (restored) result.last_checkpoint_step = start_step;

  // Jacobian + Schwarz preconditioner built lazily on the first step.
  sparse::Bcsr<double> jac = problem.allocate_jacobian();
  // Float-storage copy of the assembled operator for mixed-precision
  // mode: stored float, products accumulate in double (promote-on-load).
  // Refreshed together with jac; the preconditioner keeps factoring from
  // the double assembly (pair with schwarz.single_precision for float
  // ILU factors too).
  sparse::Bcsr<float> jac_f;
  const bool mat_single = opts.matrix_single_precision && !opts.matrix_free;
  std::unique_ptr<RefactorablePreconditioner> prec;
  part::Partition partition = opts.partition;
  if (partition.nparts == 0) {
    F3D_OBS_SPAN("partition");
    partition = part::kway_grow(graph_from_jacobian(jac), opts.num_subdomains);
  }
  F3D_CHECK(partition.nparts == opts.num_subdomains);

  auto make_preconditioner = [&]() -> std::unique_ptr<RefactorablePreconditioner> {
    if (opts.use_coarse_space)
      return std::make_unique<TwoLevelSchwarzPreconditioner>(jac, partition,
                                                             opts.schwarz);
    return std::make_unique<SchwarzPreconditioner>(jac, partition, opts.schwarz);
  };

  // Degradation-ladder state: rungs fire once each as budget pressure
  // crosses their thresholds. The freeze rung overrides the effective
  // Jacobian-refresh cadence.
  bool rung_loosen = false, rung_freeze = false, rung_shrink = false;
  int jacobian_refresh_active = opts.jacobian_refresh;

  for (int step = start_step; step < opts.max_steps && rnorm / r0 > opts.rtol;
       ++step) {
    cur_step = step;

    // Guard exit between steps: a trip observed at a charge point that
    // exits cleanly (Krylov iteration boundary) rather than by throwing.
    if (sguard.tripped() != guard::TripReason::kNone) {
      guard_exit = true;
      break;
    }

    // Graceful degradation under budget pressure: trade accuracy for
    // on-time completion instead of overrunning. Each rung is logged; the
    // final rung — early-return of the best committed state — is the
    // budget trip itself.
    if (gopts.degrade.enabled && gopts.budget.bounded()) {
      const PtcDegradeOptions& dg = gopts.degrade;
      const double pr = sguard.pressure();
      if (!rung_loosen && pr >= dg.loosen_at) {
        rung_loosen = true;
        ++result.degrade_rungs;
        gmres_active.rtol =
            std::min(dg.rtol_max, gmres_active.rtol * dg.rtol_factor);
        result.recovery_log.add(
            step, RecoveryAction::kDegradeRung,
            "loosen linear rtol -> " + std::to_string(gmres_active.rtol));
      }
      if (!rung_freeze && pr >= dg.freeze_at) {
        rung_freeze = true;
        ++result.degrade_rungs;
        jacobian_refresh_active = std::numeric_limits<int>::max();
        result.recovery_log.add(step, RecoveryAction::kDegradeRung,
                                "freeze jacobian/preconditioner refresh");
      }
      if (!rung_shrink && pr >= dg.shrink_at) {
        rung_shrink = true;
        ++result.degrade_rungs;
        gmres_active.restart = std::max(dg.restart_min, gmres_active.restart / 2);
        gmres_active.max_iters =
            std::max(dg.krylov_iters_min, gmres_active.max_iters / 2);
        result.recovery_log.add(
            step, RecoveryAction::kDegradeRung,
            "shrink krylov effort: restart -> " +
                std::to_string(gmres_active.restart) + ", max_iters -> " +
                std::to_string(gmres_active.max_iters));
      }
    }

    problem.on_step(step, rnorm / r0);

    // SDC site: a silent flip in the committed state vector. Deliberately
    // BEFORE the step-rejection snapshot below — the corruption is
    // persistent (recompute retries restart from the same poisoned
    // x_step), so only the rollback rung's x_good can clear it.
    resilience::maybe_flip(resilience::FlipTarget::kState, x.data(), n);

    // Entry scan of the committed state. This must run BEFORE the Newton
    // attempt: a corrupted-but-finite entry state is a legal (if terrible)
    // initial guess, and Newton will often pull it back to an admissible
    // commit — the flip would then silently cost extra iterations and a
    // perturbed trajectory instead of being caught. Recompute cannot help
    // (the committed vector itself is wrong), so detection goes straight
    // to the rollback rung. Two guards stack here: the committed state
    // must be byte-identical to the verified copy the rollback rung
    // already keeps (nothing legitimate writes to x between steps), and
    // it must be physically admissible (which also covers the very first
    // step, where the verified copy IS the unchecked initial state).
    if (sdc_on) {
      const bool mutated =
          !x_good.empty() &&
          std::memcmp(x.data(), x_good.data(),
                      sizeof(double) * x.size()) != 0;
      if (mutated || (sdc.admissibility && !problem.admissible(x))) {
        detect_sdc(mutated ? "committed state changed between steps"
                           : "step-entry state is physically inadmissible");
        sdc_flagged = false;  // handled here, not by the retry ladder
        x = x_good;
        rnorm = rnorm_good;
        ++result.sdc_rollbacks;
        result.recovery_log.add(step, RecoveryAction::kSdcRollback,
                                "restored last verified state");
      }
    }

    // Rollback state for the recovery ladder: a rejected attempt restores
    // the step-entry iterate exactly.
    const std::vector<double> x_step = x;
    const double rnorm_step = rnorm;

    PtcStepRecord rec_step;
    rec_step.step = step;

    // One attempt at this pseudo-timestep with the given CFL. Returns
    // false only on a detected numerical failure (resilient mode; the
    // plain path throws at the point of detection instead). On success x
    // and rnorm are committed.
    auto attempt_step = [&](double cfl) -> bool {
      // D = diag over vertices of V_i / dt_i; with dt_i = cfl * V_i / sr_i
      // this is sr_i / cfl = V_i / (cfl * scale_i).
      if (sguard.charge(guard::kUnitsResidual) != guard::TripReason::kNone)
        throw guard::CancelledError(sguard.tripped());
      problem.timestep_scale(x, scale);
      ++result.function_evaluations;  // spectral radius pass ~ a flux pass
      std::vector<double> vols;
      problem.cell_volumes(vols);
      std::vector<double> diag(nv);
      for (int v = 0; v < nv; ++v) {
        F3D_CHECK(scale[v] > 0 && vols[v] > 0);
        diag[v] = vols[v] / (cfl * scale[v]);
      }

      for (int newton = 0; newton < opts.newton_per_step; ++newton) {
        // g(x) = r(x) + D (x - x_step_start); at the first Newton iterate
        // the pseudo-time term vanishes, so g(x) = r(x).
        if (!eval_residual(x, g0, "newton rhs")) return false;

        // Build / refresh the preconditioner from the analytic first-order
        // Jacobian plus the pseudo-time diagonal.
        if (!prec || force_refresh ||
            (step % std::max(1, jacobian_refresh_active)) == 0) {
          if (sguard.charge(guard::kUnitsJacobian) !=
              guard::TripReason::kNone)
            throw guard::CancelledError(sguard.tripped());
          {
            F3D_OBS_SPAN("jacobian");
            PhaseTimers::Scope scope(result.phases, "jacobian");
            problem.jacobian(x, jac);
          }
          for (int v = 0; v < nv; ++v) {
            double* blk = jac.find_block(v, v);
            F3D_CHECK(blk != nullptr);
            for (int c = 0; c < nb; ++c) blk[c * nb + c] += diag[v];
          }
          // Mixed precision: narrow the assembled operator (with its
          // pseudo-time diagonal) to float storage. The Krylov products
          // read this copy; the preconditioner still factors from the
          // double assembly.
          if (mat_single) jac_f = jac.convert<float>();
          // ABFT checksums are a function of the values just assembled:
          // rebuild here, and only here — any flip landing after this
          // point is exactly what verify_spmv exists to catch. The guard
          // checksums the matrix the operator actually multiplies with —
          // the float copy in mixed-precision mode (rebuild widens the
          // bound to FLT_EPSILON there).
          if (sdc_on && sdc.abft && !opts.matrix_free) {
            if (mat_single)
              sparse::rebuild(abft_guard, jac_f);
            else
              sparse::rebuild(abft_guard, jac);
          }
          // SDC site: a silent flip in the assembled operator (after the
          // checksum rebuild, so ABFT is the guard on the hook; with
          // matrix_free on, the flip only degrades the preconditioner —
          // a measured escape path). Strikes the storage the Krylov
          // products read: the float copy in mixed-precision mode.
          if (mat_single)
            resilience::maybe_flip(resilience::FlipTarget::kMatrix,
                                   jac_f.val.data(),
                                   static_cast<long long>(jac_f.val.size()));
          else
            resilience::maybe_flip(resilience::FlipTarget::kMatrix,
                                   jac.val.data(),
                                   static_cast<long long>(jac.val.size()));
          if (sguard.charge(guard::kUnitsFactor) != guard::TripReason::kNone)
            throw guard::CancelledError(sguard.tripped());
          F3D_OBS_SPAN("factor");
          PhaseTimers::Scope scope(result.phases, "factor");
          if (!prec) {
            if (resilient) {
              try {
                prec = make_preconditioner();
              } catch (const NumericalError& e) {
                result.recovery_log.add(
                    step, RecoveryAction::kDetectSingularFactor, e.what());
                prec.reset();
                return false;
              }
            } else {
              prec = make_preconditioner();
            }
          } else if (resilient) {
            resilience::FactorReport report;
            const bool ok = prec->refactor_checked(
                jac, rec.pivot_shift0, rec.pivot_shift_attempts, &report);
            if (report.shift_attempts > 0) {
              result.recovery_log.add(step,
                                      RecoveryAction::kDetectSingularFactor,
                                      "zero pivot in preconditioner refresh");
              char shift_buf[32];
              std::snprintf(shift_buf, sizeof shift_buf, "%.3g",
                            report.shift_used);
              result.recovery_log.add(
                  step, RecoveryAction::kPivotShift,
                  "shift=" + std::string(shift_buf) + " after " +
                      std::to_string(report.shift_attempts) + " rung(s)");
            }
            if (report.coarse_disabled)
              result.recovery_log.add(step, RecoveryAction::kCoarseDisabled,
                                      report.detail);
            if (!ok) {
              result.recovery_log.add(
                  step, RecoveryAction::kDetectSingularFactor,
                  "shift ladder exhausted: " + report.detail);
              return false;
            }
          } else {
            prec->refactor(jac);
          }
          force_refresh = false;
        }

        // Matrix-free action of J_g = dr/dx + D via finite differences,
        // or the assembled first-order Jacobian when matrix_free is off.
        const double xnorm = sparse::norm2(x);
        bool abft_failed = false;
        bool krylov_sdc = false;
        LinearOperator op;
        op.n = n;
        if (!opts.matrix_free) {
          // jac already carries the pseudo-time diagonal from the refresh.
          // With the ABFT guard built, every product is checksum-verified
          // (an O(n) add-on to the O(nnz) product). Mixed-precision mode
          // multiplies with the float-storage copy (double accumulation).
          op.apply = [&](const double* v, double* y) {
            if (mat_single)
              jac_f.spmv(v, y);
            else
              jac.spmv(v, y);
            if (sdc_on && sdc.abft && abft_guard.valid() &&
                !sparse::verify_spmv(abft_guard, v, y, n))
              abft_failed = true;
          };
        } else
        op.apply = [&](const double* v, double* y) {
          double vnorm = 0;
          for (int i = 0; i < n; ++i) vnorm += v[i] * v[i];
          vnorm = std::sqrt(vnorm);
          if (vnorm == 0) {
            std::fill(y, y + n, 0.0);
            return;
          }
          const double eps = opts.fd_eps * (1.0 + xnorm) / vnorm;
          for (int i = 0; i < n; ++i) xw[i] = x[i] + eps * v[i];
          if (!eval_residual(xw, work, "matrix-free action")) {
            // Corrupted evaluation: return a null action; the Krylov solve
            // is already doomed (nan_seen fails the attempt) — keep its
            // arithmetic finite on the way down.
            std::fill(y, y + n, 0.0);
            return;
          }
          for (int i = 0; i < n; ++i) y[i] = (work[i] - g0[i]) / eps;
          // Pseudo-time diagonal term.
          for (int vtx = 0; vtx < nv; ++vtx)
            for (int c = 0; c < nb; ++c)
              y[static_cast<std::size_t>(vtx) * nb + c] +=
                  diag[vtx] * v[static_cast<std::size_t>(vtx) * nb + c];
        };

        // Solve J dx = -g, escalating through the Krylov recovery ladder:
        // BiCGStab breakdown -> swap to GMRES; GMRES stagnation -> grow the
        // restart length. (Residual calls inside the operator are timed
        // into "flux"; everything else lands in "krylov".)
        Timer krylov_timer;
        for (int i = 0; i < n; ++i) rhs[i] = -g0[i];
        std::fill(dx.begin(), dx.end(), 0.0);
        int lin_retries = 0;
        bool swapped_this_solve = false;
        {
        F3D_OBS_SPAN("krylov");
        for (;;) {
          if (krylov_active == PtcOptions::Krylov::kBicgstab) {
            BicgstabOptions bo;
            bo.rtol = gmres_active.rtol;
            bo.max_iters = gmres_active.max_iters;
            bo.guard = &sguard;
            if (sdc_on) {
              bo.true_residual_every = sdc.bicgstab_true_residual_every;
              bo.sdc_drift_tol = sdc.bicgstab_drift_tol;
            }
            auto bres = bicgstab(op, *prec, rhs, dx, bo);
            rec_step.linear_iterations += bres.iterations;
            rec_step.linear_converged = bres.converged;
            result.total_linear_iterations += bres.iterations;
            result.counters += bres.counters;
            if (bres.sdc_suspected) krylov_sdc = true;
            if (bres.breakdown) {
              rec_step.linear_breakdown = true;
              ++result.krylov_breakdowns;
              if (resilient) {
                result.recovery_log.add(step, RecoveryAction::kDetectBreakdown,
                                        "BiCGStab rho/omega collapse");
                if (rec.allow_krylov_swap && !swapped_this_solve) {
                  swapped_this_solve = true;
                  krylov_active = PtcOptions::Krylov::kGmres;
                  result.recovery_log.add(
                      step, RecoveryAction::kKrylovSwap,
                      "BiCGStab -> GMRES(m=" +
                          std::to_string(gmres_active.restart) + ")");
                  std::fill(dx.begin(), dx.end(), 0.0);
                  continue;
                }
              }
            }
          } else {
            auto gres = gmres(op, *prec, rhs, dx, gmres_active);
            rec_step.linear_iterations += gres.iterations;
            rec_step.linear_converged = gres.converged;
            result.total_linear_iterations += gres.iterations;
            result.counters += gres.counters;
            if (gres.sdc_suspected) krylov_sdc = true;
            if (gres.stagnated) {
              rec_step.linear_stagnated = true;
              if (resilient) {
                result.recovery_log.add(step, RecoveryAction::kDetectStagnation,
                                        gres.reason);
                if (gmres_active.restart < rec.gmres_restart_max &&
                    lin_retries < rec.max_linear_retries) {
                  gmres_active.restart =
                      std::min(rec.gmres_restart_max, gmres_active.restart * 2);
                  gmres_active.max_iters =
                      std::max(gmres_active.max_iters, gmres_active.restart);
                  result.recovery_log.add(
                      step, RecoveryAction::kRestartEscalation,
                      "restart -> " + std::to_string(gmres_active.restart));
                  std::fill(dx.begin(), dx.end(), 0.0);
                  ++lin_retries;
                  continue;
                }
                // Escalation exhausted: last rung is a method swap — a
                // persistently poisoned GMRES (e.g. an injected fault in
                // the Arnoldi process) is unrecoverable from inside GMRES.
                if (rec.allow_krylov_swap && !swapped_this_solve) {
                  swapped_this_solve = true;
                  krylov_active = PtcOptions::Krylov::kBicgstab;
                  result.recovery_log.add(step, RecoveryAction::kKrylovSwap,
                                          "GMRES -> BiCGStab");
                  std::fill(dx.begin(), dx.end(), 0.0);
                  continue;
                }
              }
            }
          }
          break;
        }
        }
        result.phases.add("krylov", krylov_timer.seconds());
        // Guard trip inside the Krylov solve: abandon the attempt before
        // the line search touches x. The retry ladder below checks the
        // trip before treating the false return as a numerical failure.
        if (sguard.tripped() != guard::TripReason::kNone) return false;
        if (nan_seen) return false;
        if (sdc_on && (abft_failed || krylov_sdc)) {
          detect_sdc(abft_failed
                         ? "ABFT checksum violation in assembled SpMV"
                         : "Krylov recurrence/true-residual drift");
          return false;
        }
        // Residual-checksum detection inside a matrix-free action lands
        // here (the operator returns a null action instead of failing).
        if (sdc_flagged) return false;
        if (resilient && !all_finite(dx)) {
          result.recovery_log.add(step, RecoveryAction::kDetectDivergence,
                                  "non-finite Newton correction");
          return false;
        }

        // Backtracking line search on ||g|| (globalization; §2.4's "line
        // search" knob). g at trial x' uses the same pseudo-time anchor.
        double lambda = 1.0;
        const double gnorm0 = sparse::norm2(g0);
        for (int ls = 0; ls <= opts.max_line_search; ++ls) {
          for (int i = 0; i < n; ++i) xw[i] = x[i] + lambda * dx[i];
          eval_residual(xw, work, "line search");
          for (int vtx = 0; vtx < nv; ++vtx)
            for (int c = 0; c < nb; ++c) {
              const std::size_t k = static_cast<std::size_t>(vtx) * nb + c;
              work[k] += diag[vtx] * (xw[k] - x[k]);
            }
          const double gnorm = sparse::norm2(work);
          if (gnorm <= (1.0 - 1e-4 * lambda) * gnorm0 ||
              ls == opts.max_line_search) {
            x = xw;
            rec_step.line_search_lambda = lambda;
            break;
          }
          lambda *= 0.5;
        }
        if (nan_seen || sdc_flagged) return false;
      }

      if (!eval_residual(x, r, "step residual")) return false;
      const double rnorm_new = sparse::norm2(r);
      if (!std::isfinite(rnorm_new)) {
        F3D_NUMERIC_CHECK_MSG(resilient, "psi-NKS diverged (NaN residual)");
        result.recovery_log.add(step, RecoveryAction::kDetectNanResidual,
                                "non-finite step residual norm");
        return false;
      }
      if (resilient && rnorm_new > rec.divergence_factor * rnorm_step) {
        result.recovery_log.add(
            step, RecoveryAction::kDetectDivergence,
            "||r|| grew " + std::to_string(rnorm_new / rnorm_step) + "x");
        return false;
      }
      // Numerical health watchdog: the step is numerically fine — is the
      // state physically possible? (Finite wrong values from a bit flip
      // pass every norm test above.)
      if (sdc_on && sdc.admissibility) {
        bool ok;
        {
          F3D_OBS_SPAN("admissibility");
          ok = problem.admissible(x);
        }
        if (!ok) {
          detect_sdc("physically inadmissible state after step");
          return false;
        }
      }
      rnorm = rnorm_new;
      return true;
    };

    int sdc_retries = 0;
    for (int attempt = 0;; ++attempt) {
      nan_seen = false;
      sdc_flagged = false;
      // SER continuation, scaled by the ladder's backtrack multiplier.
      const double cfl =
          std::min(opts.cfl_max, opts.cfl0 *
                                     std::pow(r0 / rnorm, opts.ser_exponent) *
                                     cfl_relax);
      rec_step.cfl = cfl;
      if (attempt_step(cfl)) break;

      // Guard exits outrank the recovery ladder — and must be checked
      // before the plain-path abort below, so a budget trip works with
      // recovery disabled too. x was not touched by the failed attempt
      // (the trip aborts before the line search), so it still holds the
      // committed step-entry state.
      if (sguard.tripped() != guard::TripReason::kNone) {
        guard_exit = true;
        break;
      }

      // Plain path only reaches a false return through states it used to
      // tolerate silently; keep the historical abort semantics.
      F3D_NUMERIC_CHECK_MSG(resilient, "psi-NKS diverged (NaN residual)");

      // Reject: roll back, shrink the pseudo-timestep, rebuild the
      // preconditioner at the new state.
      ++result.steps_rejected;
      ++rec_step.rejections;
      x = x_step;
      rnorm = rnorm_step;
      result.recovery_log.add(step, RecoveryAction::kStepRejected,
                              "attempt " + std::to_string(attempt + 1));
      F3D_NUMERIC_CHECK_MSG(
          attempt + 1 < rec.max_step_retries,
          "recovery ladder exhausted at step " + std::to_string(step));
      if (sdc_flagged) {
        // SDC rungs. The numerics were fine — the data was corrupt — so
        // no CFL backtrack. force_refresh reassembles the Jacobian (and
        // its checksums), which clears matrix corruption.
        force_refresh = true;
        if (sdc_retries < sdc.max_recompute) {
          ++sdc_retries;
          ++result.sdc_recomputes;
          result.recovery_log.add(step, RecoveryAction::kSdcRecompute,
                                  "reassemble and re-run attempt " +
                                      std::to_string(attempt + 1));
          continue;
        }
        // Recompute didn't clear it: the step-entry state itself is
        // corrupted. Restore the last iterate that passed every guard.
        x = x_good;
        rnorm = rnorm_good;
        sdc_retries = 0;
        ++result.sdc_rollbacks;
        result.recovery_log.add(step, RecoveryAction::kSdcRollback,
                                "restored last verified state");
        continue;
      }
      cfl_relax *= rec.cfl_backtrack;
      result.recovery_log.add(step, RecoveryAction::kCflBacktrack,
                              "cfl_relax=" + std::to_string(cfl_relax));
      force_refresh = true;
      result.recovery_log.add(step, RecoveryAction::kPrecRefresh,
                              "forced by step rejection");
    }

    if (guard_exit) break;

    rec_step.residual = rnorm;
    result.history.push_back(rec_step);
    ++result.steps;
    // Let the CFL relaxation recover toward 1 after accepted steps.
    if (resilient && cfl_relax < 1.0)
      cfl_relax = std::min(1.0, cfl_relax * rec.cfl_regrow);
    // The committed state passed every active guard: it becomes the
    // rollback rung's restore point.
    if (sdc_on) {
      x_good = x;
      rnorm_good = rnorm;
    }

    // Periodic checkpoint of the committed state.
    if (resilient && rec.checkpoint_every > 0 && !rec.checkpoint_path.empty() &&
        result.steps % rec.checkpoint_every == 0) {
      F3D_OBS_SPAN("checkpoint");
      resilience::PtcCheckpoint ck;
      ck.step = step + 1;
      ck.steps_done = result.steps;
      ck.x = x;
      ck.rnorm = rnorm;
      ck.r0 = r0;
      ck.cfl_relax = cfl_relax;
      ck.function_evaluations = result.function_evaluations;
      ck.total_linear_iterations = result.total_linear_iterations;
      ck.gmres_restart = gmres_active.restart;
      ck.krylov = static_cast<std::int32_t>(krylov_active);
      if (opts.fault_injector != nullptr) {
        ck.has_injector = true;
        ck.injector = opts.fault_injector->state();
      }
      ck.log = result.recovery_log;
      if (resilience::save_checkpoint(rec.checkpoint_path, ck)) {
        result.recovery_log.add(step, RecoveryAction::kCheckpointWrite,
                                rec.checkpoint_path);
        result.last_checkpoint_step = step + 1;
      }
    }

    // The accepted state becomes the best committed iterate every guard
    // exit restores.
    x_commit = x;
    rnorm_commit = rnorm;

    // Progress watchdog over accepted-step residuals: a window that ends
    // no lower than stall_ratio x where it began is a livelock-style
    // stall the per-rung watchdogs cannot see (every individual step
    // looks healthy). Deterministic — no wall clock involved.
    if (stall_watchdog.observe(rnorm)) {
      result.watchdog_fired = true;
      result.recovery_log.add(
          step, RecoveryAction::kDetectStall,
          "residual stalled across " +
              std::to_string(gopts.watchdog.window) + " accepted step(s)");
      break;
    }
  }
  };  // solve_body

  try {
    solve_body();
  } catch (const guard::CancelledError&) {
    // Thrown from a charge or poll point anywhere in the stack. The
    // in-flight attempt is discarded; the best committed iterate is the
    // contract's return value.
    x = x_commit;
    rnorm = rnorm_commit;
    guard_exit = true;
  } catch (const NumericalError& e) {
    if (!gopts.capture_faults) throw;
    // Opted-in graceful fault capture: an exhausted recovery ladder (or a
    // plain-path abort) still returns the best committed state, graded,
    // instead of losing the whole solve.
    fault_captured = true;
    x = x_commit;
    rnorm = rnorm_commit;
    result.recovery_log.add(cur_step, RecoveryAction::kGuardTrip,
                            std::string("fault captured: ") + e.what());
  }

  // Exit taxonomy + quality grade. disarm() first: the grading scan below
  // may fan out on the exec pool, whose poll points must not cancel the
  // exit path itself.
  sguard.disarm();
  result.final_residual = rnorm;
  result.converged = rnorm / r0 <= opts.rtol;
  result.work_units = sguard.work_units();
  result.trip = sguard.tripped();
  result.cancel_latency_units = sguard.latency_units();
  result.watchdog_fired = result.watchdog_fired || stall_watchdog.fired();
  if (guard_exit && result.trip != guard::TripReason::kNone)
    result.recovery_log.add(
        cur_step, RecoveryAction::kGuardTrip,
        std::string(guard::trip_reason_name(result.trip)) + " after " +
            std::to_string(result.work_units) + " work unit(s)");

  if (result.converged)
    result.verdict = guard::SolveVerdict::kConverged;
  else if (fault_captured)
    result.verdict = guard::SolveVerdict::kFaultUnrecoverable;
  else if (result.watchdog_fired)
    result.verdict = guard::SolveVerdict::kStagnated;
  else if (result.trip == guard::TripReason::kCancelled)
    result.verdict = guard::SolveVerdict::kCancelled;
  else if (result.trip != guard::TripReason::kNone)
    result.verdict = guard::SolveVerdict::kDeadline;
  else
    result.verdict = guard::SolveVerdict::kMaxIters;

  result.residual_drop_orders =
      (r0 > 0 && rnorm > 0 && std::isfinite(rnorm))
          ? std::log10(r0 / rnorm)
          : 0.0;
  {
    F3D_OBS_SPAN("admissibility");
    result.best_state_admissible = problem.admissible(x);
  }
  return result;
}

}  // namespace

PtcResult ptc_solve(NonlinearProblem& problem, std::vector<double>& x,
                    const PtcOptions& opts) {
  PtcResult result;
  try {
    obs::Span root("ptc_solve");
    result = ptc_solve_impl(problem, x, opts);
  } catch (...) {
    // Abnormal exit (plain-path numerical abort, harness error): the
    // buffered spans and counters are exactly the postmortem evidence —
    // flush them before the exception leaves, or the trace dies with the
    // solve.
    obs::Registry::global().count("solver.ptc.aborts");
    obs::flush_env_trace();
    throw;
  }
  // Fold the solve's tallies into the process-wide registry so trace
  // files and bench reports can embed them next to the span timeline.
  auto& reg = obs::Registry::global();
  reg.count("solver.ptc.steps", result.steps);
  reg.count("solver.ptc.rejections", result.steps_rejected);
  reg.count("solver.ptc.function_evaluations", result.function_evaluations);
  reg.count("solver.krylov.iterations", result.total_linear_iterations);
  reg.count("solver.krylov.breakdowns", result.krylov_breakdowns);
  reg.count("solver.ptc.sdc_recomputes", result.sdc_recomputes);
  reg.count("solver.ptc.sdc_rollbacks", result.sdc_rollbacks);
  reg.count(std::string("guard.verdict.") +
            guard::verdict_name(result.verdict));
  if (result.degrade_rungs > 0)
    reg.count("guard.degrade_rungs", result.degrade_rungs);
  if (result.cancel_latency_units > 0)
    reg.count("guard.cancel_latency_units", result.cancel_latency_units);
  // Writes the Chrome trace iff the F3D_TRACE environment variable asked
  // for one; a plain set_tracing(true) caller drains the tracer itself.
  obs::flush_env_trace();
  return result;
}

}  // namespace f3d::solver
