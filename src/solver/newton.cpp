#include "solver/newton.hpp"

#include "solver/bicgstab.hpp"
#include "solver/coarse.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/vec.hpp"

namespace f3d::solver {

namespace {

// Block-sparsity adjacency graph for the default partitioner.
mesh::Graph graph_from_jacobian(const sparse::Bcsr<double>& a) {
  std::vector<std::array<int, 2>> edges;
  for (int i = 0; i < a.nrows; ++i)
    for (int p = a.ptr[i]; p < a.ptr[i + 1]; ++p)
      if (a.col[p] > i) edges.push_back({i, a.col[p]});
  return mesh::build_graph(a.nrows, edges);
}

}  // namespace

PtcResult ptc_solve(NonlinearProblem& problem, std::vector<double>& x,
                    const PtcOptions& opts) {
  const int n = problem.num_unknowns();
  const int nb = problem.nb();
  const int nv = problem.num_vertices();
  F3D_CHECK(static_cast<int>(x.size()) == n);
  F3D_CHECK(opts.num_subdomains >= 1);

  PtcResult result;
  std::vector<double> r(n), g0(n), rhs(n), dx(n), scale(nv), work(n), xw(n);

  {
    PhaseTimers::Scope scope(result.phases, "flux");
    problem.residual(x, r);
  }
  ++result.function_evaluations;
  double rnorm = sparse::norm2(r);
  result.initial_residual = rnorm;
  const double r0 = rnorm > 0 ? rnorm : 1.0;

  // Jacobian + Schwarz preconditioner built lazily on the first step.
  sparse::Bcsr<double> jac = problem.allocate_jacobian();
  std::unique_ptr<RefactorablePreconditioner> prec;
  part::Partition partition = opts.partition;
  if (partition.nparts == 0) {
    partition = part::kway_grow(graph_from_jacobian(jac), opts.num_subdomains);
  }
  F3D_CHECK(partition.nparts == opts.num_subdomains);

  for (int step = 0; step < opts.max_steps && rnorm / r0 > opts.rtol; ++step) {
    problem.on_step(step, rnorm / r0);
    // Order switching etc. may change the residual; re-evaluate lazily is
    // unnecessary — the SER law below uses the previous norm as intended.

    // SER continuation.
    const double cfl = std::min(
        opts.cfl_max, opts.cfl0 * std::pow(r0 / rnorm, opts.ser_exponent));

    // D = diag over vertices of V_i / dt_i; with dt_i = cfl * V_i / sr_i
    // this is sr_i / cfl = V_i / (cfl * scale_i).
    problem.timestep_scale(x, scale);
    ++result.function_evaluations;  // spectral radius pass ~ a flux pass
    std::vector<double> vols;
    problem.cell_volumes(vols);
    std::vector<double> diag(nv);
    for (int v = 0; v < nv; ++v) {
      F3D_CHECK(scale[v] > 0 && vols[v] > 0);
      diag[v] = vols[v] / (cfl * scale[v]);
    }

    PtcStepRecord rec;
    rec.step = step;
    rec.cfl = cfl;

    for (int newton = 0; newton < opts.newton_per_step; ++newton) {
      // g(x) = r(x) + D (x - x_step_start); at the first Newton iterate
      // the pseudo-time term vanishes, so g(x) = r(x).
      problem.residual(x, g0);
      ++result.function_evaluations;
      // (x - x_l) term is zero at newton == 0 and we take a single Newton
      // step per pseudo-timestep in the usual configuration; for
      // newton > 0 we keep the implicit Euler target fixed at x_l.
      static_cast<void>(0);

      // Build / refresh the preconditioner from the analytic first-order
      // Jacobian plus the pseudo-time diagonal.
      if (!prec || (step % std::max(1, opts.jacobian_refresh)) == 0) {
        {
          PhaseTimers::Scope scope(result.phases, "jacobian");
          problem.jacobian(x, jac);
        }
        const std::size_t bsz = static_cast<std::size_t>(nb) * nb;
        for (int v = 0; v < nv; ++v) {
          double* blk = jac.find_block(v, v);
          F3D_CHECK(blk != nullptr);
          for (int c = 0; c < nb; ++c) blk[c * nb + c] += diag[v];
        }
        PhaseTimers::Scope scope(result.phases, "factor");
        if (!prec) {
          if (opts.use_coarse_space) {
            prec = std::make_unique<TwoLevelSchwarzPreconditioner>(
                jac, partition, opts.schwarz);
          } else {
            prec = std::make_unique<SchwarzPreconditioner>(jac, partition,
                                                           opts.schwarz);
          }
        } else {
          prec->refactor(jac);
        }
        (void)bsz;
      }

      // Matrix-free action of J_g = dr/dx + D via finite differences,
      // or the assembled first-order Jacobian when matrix_free is off.
      const double xnorm = sparse::norm2(x);
      LinearOperator op;
      op.n = n;
      if (!opts.matrix_free) {
        // jac already carries the pseudo-time diagonal from the refresh.
        op.apply = [&jac](const double* v, double* y) { jac.spmv(v, y); };
      } else
      op.apply = [&](const double* v, double* y) {
        double vnorm = 0;
        for (int i = 0; i < n; ++i) vnorm += v[i] * v[i];
        vnorm = std::sqrt(vnorm);
        if (vnorm == 0) {
          std::fill(y, y + n, 0.0);
          return;
        }
        const double eps = opts.fd_eps * (1.0 + xnorm) / vnorm;
        for (int i = 0; i < n; ++i) xw[i] = x[i] + eps * v[i];
        {
          PhaseTimers::Scope scope(result.phases, "flux");
          problem.residual(xw, work);
        }
        ++result.function_evaluations;
        for (int i = 0; i < n; ++i) y[i] = (work[i] - g0[i]) / eps;
        // Pseudo-time diagonal term.
        for (int vtx = 0; vtx < nv; ++vtx)
          for (int c = 0; c < nb; ++c)
            y[static_cast<std::size_t>(vtx) * nb + c] +=
                diag[vtx] * v[static_cast<std::size_t>(vtx) * nb + c];
      };

      // Solve J dx = -g. (Residual calls inside the operator are timed
      // into "flux"; everything else lands in "krylov".)
      Timer krylov_timer;
      for (int i = 0; i < n; ++i) rhs[i] = -g0[i];
      std::fill(dx.begin(), dx.end(), 0.0);
      if (opts.krylov == PtcOptions::Krylov::kBicgstab) {
        BicgstabOptions bo;
        bo.rtol = opts.gmres.rtol;
        bo.max_iters = opts.gmres.max_iters;
        auto bres = bicgstab(op, *prec, rhs, dx, bo);
        rec.linear_iterations += bres.iterations;
        rec.linear_converged = bres.converged;
        result.total_linear_iterations += bres.iterations;
        result.counters += bres.counters;
      } else {
        auto gres = gmres(op, *prec, rhs, dx, opts.gmres);
        rec.linear_iterations += gres.iterations;
        rec.linear_converged = gres.converged;
        result.total_linear_iterations += gres.iterations;
        result.counters += gres.counters;
      }
      result.phases.add("krylov", krylov_timer.seconds());

      // Backtracking line search on ||g|| (globalization; §2.4's "line
      // search" knob). g at trial x' uses the same pseudo-time anchor.
      double lambda = 1.0;
      const double gnorm0 = sparse::norm2(g0);
      bool accepted = false;
      for (int ls = 0; ls <= opts.max_line_search; ++ls) {
        for (int i = 0; i < n; ++i) xw[i] = x[i] + lambda * dx[i];
        {
          PhaseTimers::Scope scope(result.phases, "flux");
          problem.residual(xw, work);
        }
        ++result.function_evaluations;
        for (int vtx = 0; vtx < nv; ++vtx)
          for (int c = 0; c < nb; ++c) {
            const std::size_t k = static_cast<std::size_t>(vtx) * nb + c;
            work[k] += diag[vtx] * (xw[k] - x[k]);
          }
        const double gnorm = sparse::norm2(work);
        if (gnorm <= (1.0 - 1e-4 * lambda) * gnorm0 ||
            ls == opts.max_line_search) {
          accepted = gnorm < gnorm0 || ls < opts.max_line_search;
          x = xw;
          rec.line_search_lambda = lambda;
          break;
        }
        lambda *= 0.5;
      }
      (void)accepted;
    }

    {
      PhaseTimers::Scope scope(result.phases, "flux");
      problem.residual(x, r);
    }
    ++result.function_evaluations;
    rnorm = sparse::norm2(r);
    rec.residual = rnorm;
    result.history.push_back(rec);
    ++result.steps;

    F3D_CHECK_MSG(std::isfinite(rnorm), "psi-NKS diverged (NaN residual)");
  }

  result.final_residual = rnorm;
  result.converged = rnorm / r0 <= opts.rtol;
  return result;
}

}  // namespace f3d::solver
