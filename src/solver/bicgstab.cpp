#include "solver/bicgstab.hpp"

#include <cmath>

#include "common/error.hpp"
#include "guard/guard.hpp"
#include "obs/obs.hpp"
#include "resilience/bitflip.hpp"
#include "resilience/faults.hpp"
#include "sparse/vec.hpp"

namespace f3d::solver {

BicgstabResult bicgstab(const LinearOperator& a, const Preconditioner& m,
                        const std::vector<double>& b, std::vector<double>& x,
                        const BicgstabOptions& opts) {
  using sparse::Vec;
  const int n = a.n;
  F3D_CHECK(static_cast<int>(b.size()) == n &&
            static_cast<int>(x.size()) == n && m.n() == n);

  BicgstabResult res;
  Vec r(n), r0(n), p(n, 0.0), v(n, 0.0), s(n), t(n), phat(n), shat(n);

  a.apply(x.data(), r.data());
  ++res.counters.matvecs;
  for (int i = 0; i < n; ++i) r[i] = b[i] - r[i];
  r0 = r;
  double rnorm = sparse::norm2(r);
  ++res.counters.dots;
  res.initial_residual = rnorm;
  const double target = std::max(opts.atol, opts.rtol * rnorm);

  double rho_prev = 1, alpha = 1, omega = 1;
  while (res.iterations < opts.max_iters && rnorm > target) {
    // Budget charge at the iteration boundary (see GmresOptions::guard):
    // the deterministic trip point for bounded cancellation latency.
    if (opts.guard != nullptr &&
        opts.guard->charge(guard::kUnitsKrylovIter) !=
            guard::TripReason::kNone) {
      res.guard_tripped = true;
      break;
    }
    // Fault-injection site: forced rho collapse (breakdown) at the top of
    // the iteration.
    if (resilience::fault_fires(resilience::FaultSite::kBicgstab)) {
      res.breakdown = true;
      break;
    }
    const double rho = sparse::dot(r0, r);
    ++res.counters.dots;
    if (std::abs(rho) < 1e-300) {
      res.breakdown = true;
      break;
    }
    if (res.iterations == 0) {
      p = r;
    } else {
      const double beta = (rho / rho_prev) * (alpha / omega);
      for (int i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
      res.counters.axpys += 2;
    }
    m.apply(p.data(), phat.data());
    ++res.counters.prec_applies;
    a.apply(phat.data(), v.data());
    ++res.counters.matvecs;
    // SDC site: a silent finite-value flip in the fresh Krylov direction
    // (caught by the periodic true-residual check, not by any NaN guard).
    resilience::maybe_flip(resilience::FlipTarget::kKrylov, v.data(), n);
    const double r0v = sparse::dot(r0, v);
    ++res.counters.dots;
    if (std::abs(r0v) < 1e-300) {
      res.breakdown = true;
      break;
    }
    alpha = rho / r0v;
    for (int i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    ++res.counters.axpys;

    const double snorm = sparse::norm2(s);
    ++res.counters.dots;
    if (snorm <= target) {
      sparse::axpy(alpha, phat, x);
      ++res.counters.axpys;
      rnorm = snorm;
      ++res.iterations;
      break;
    }

    m.apply(s.data(), shat.data());
    ++res.counters.prec_applies;
    a.apply(shat.data(), t.data());
    ++res.counters.matvecs;
    const double tt = sparse::dot(t, t);
    const double ts = sparse::dot(t, s);
    res.counters.dots += 2;
    if (tt == 0) {
      res.breakdown = true;
      break;
    }
    omega = ts / tt;
    if (std::abs(omega) < 1e-300) {
      res.breakdown = true;
      break;
    }
    for (int i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    res.counters.axpys += 3;
    rnorm = sparse::norm2(r);
    ++res.counters.dots;
    rho_prev = rho;
    ++res.iterations;

    // Krylov invariant monitor: the short recurrence's r and the true
    // residual b - Ax agree to rounding unless something was silently
    // corrupted. Costs a matvec, so only every true_residual_every iters.
    if (opts.true_residual_every > 0 && opts.sdc_drift_tol > 0 &&
        res.iterations % opts.true_residual_every == 0) {
      a.apply(x.data(), t.data());
      ++res.counters.matvecs;
      for (int i = 0; i < n; ++i) t[i] = b[i] - t[i];
      const double true_norm = sparse::norm2(t);
      ++res.counters.dots;
      const double scale = std::max(rnorm, true_norm);
      const double drift =
          scale > 0 ? std::abs(true_norm - rnorm) / scale : 0.0;
      res.sdc_drift = std::max(res.sdc_drift, drift);
      if (drift > opts.sdc_drift_tol || !std::isfinite(true_norm))
        res.sdc_suspected = true;
    }
  }

  // Exit drift check: a solve shorter than true_residual_every iterations
  // never meets the periodic monitor above, and even a long one can be
  // corrupted after its last check. One extra matvec closes both windows.
  // Rounding-level residuals are skipped — estimate and truth legitimately
  // part ways there.
  if (opts.sdc_drift_tol > 0 && res.iterations > 0 && !res.breakdown &&
      !res.guard_tripped) {
    a.apply(x.data(), t.data());
    ++res.counters.matvecs;
    for (int i = 0; i < n; ++i) t[i] = b[i] - t[i];
    const double true_norm = sparse::norm2(t);
    ++res.counters.dots;
    const double scale = std::max(rnorm, true_norm);
    if (scale > 1e-14 * res.initial_residual) {
      const double drift = scale > 0 ? std::abs(true_norm - rnorm) / scale : 0;
      res.sdc_drift = std::max(res.sdc_drift, drift);
      if (drift > opts.sdc_drift_tol || !std::isfinite(true_norm))
        res.sdc_suspected = true;
    }
  }
  res.final_residual = rnorm;
  res.converged = rnorm <= target;
  auto& reg = obs::Registry::global();
  reg.count("solver.bicgstab.iterations", res.iterations);
  if (res.breakdown) reg.count("solver.bicgstab.breakdowns");
  if (res.sdc_suspected) reg.count("solver.bicgstab.sdc_suspected");
  return res;
}

}  // namespace f3d::solver
