#include "solver/gmres.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "guard/guard.hpp"
#include "obs/obs.hpp"
#include "resilience/bitflip.hpp"
#include "resilience/faults.hpp"
#include "sparse/vec.hpp"

namespace f3d::solver {

namespace {
using sparse::Vec;

// One GMRES cycle of up to `m` iterations. Returns iterations done and
// updates x; sets `resid` to the estimated true residual norm.
// `entry_beta` (optional) receives the TRUE residual ||b - Ax|| computed
// at cycle entry — the outer loop compares it against the previous
// cycle's recurrence estimate for the SDC drift monitor.
int gmres_cycle(const LinearOperator& a, const Preconditioner& prec,
                const Vec& b, Vec& x, int m, double target, double* resid,
                Orthogonalization orth, SolveCounters& ctr,
                guard::SolveGuard* sguard, bool* guard_tripped,
                double* entry_beta = nullptr) {
  const int n = a.n;
  Vec r(n), w(n), z(n);

  // r = b - A x.
  a.apply(x.data(), r.data());
  ++ctr.matvecs;
  for (int i = 0; i < n; ++i) r[i] = b[i] - r[i];
  double beta = sparse::norm2(r);
  ++ctr.dots;
  if (entry_beta != nullptr) *entry_beta = beta;
  *resid = beta;
  if (beta <= target || beta == 0) return 0;

  std::vector<Vec> v;  // Krylov basis
  v.reserve(m + 1);
  v.push_back(r);
  sparse::scale(v[0], 1.0 / beta);

  // Hessenberg (column-major: h[j] has j+2 entries) + Givens rotations.
  std::vector<std::vector<double>> h(m);
  std::vector<double> cs(m), sn(m), g(m + 1, 0.0);
  g[0] = beta;

  int j = 0;
  for (; j < m; ++j) {
    // Budget charge at the iteration boundary: the deterministic trip
    // point the cancellation-latency bound is documented against. The
    // cycle ends cleanly (the basis built so far is still applied below)
    // and the caller stops restarting.
    if (sguard != nullptr &&
        sguard->charge(guard::kUnitsKrylovIter) != guard::TripReason::kNone) {
      *guard_tripped = true;
      break;
    }
    // w = A M^{-1} v_j.
    prec.apply(v[j].data(), z.data());
    ++ctr.prec_applies;
    a.apply(z.data(), w.data());
    ++ctr.matvecs;
    // Fault-injection site: a wiped Krylov direction (forced breakdown /
    // stagnation — the cycle ends with a zero Hessenberg column).
    if (resilience::fault_fires(resilience::FaultSite::kGmres))
      std::fill(w.begin(), w.end(), 0.0);
    // SDC site: a silent finite-value flip in the fresh Krylov direction
    // (caught by the restart drift monitor, not by any NaN guard).
    resilience::maybe_flip(resilience::FlipTarget::kKrylov, w.data(), n);

    h[j].assign(j + 2, 0.0);
    if (orth == Orthogonalization::kModifiedGramSchmidt) {
      for (int i = 0; i <= j; ++i) {
        const double hij = sparse::dot(w, v[i]);
        ++ctr.dots;
        h[j][i] = hij;
        sparse::axpy(-hij, v[i], w);
        ++ctr.axpys;
      }
    } else {
      // Classical GS: all projections from the same w (fusable into one
      // global reduction on a parallel machine).
      for (int i = 0; i <= j; ++i) {
        h[j][i] = sparse::dot(w, v[i]);
        ++ctr.dots;
      }
      for (int i = 0; i <= j; ++i) {
        sparse::axpy(-h[j][i], v[i], w);
        ++ctr.axpys;
      }
    }
    const double hnorm = sparse::norm2(w);
    ++ctr.dots;
    h[j][j + 1] = hnorm;

    // Apply previous Givens rotations to the new column.
    for (int i = 0; i < j; ++i) {
      const double t = cs[i] * h[j][i] + sn[i] * h[j][i + 1];
      h[j][i + 1] = -sn[i] * h[j][i] + cs[i] * h[j][i + 1];
      h[j][i] = t;
    }
    // New rotation to annihilate h[j][j+1].
    {
      const double denom = std::hypot(h[j][j], h[j][j + 1]);
      if (denom == 0) {
        // Dead direction: the rotated column vanished entirely (w was
        // wiped — injected fault or exact breakdown with no component
        // left). The residual recurrence would report a bogus 0; the
        // direction contributed nothing, so keep the previous estimate
        // and end the cycle — the outer loop's stagnation watchdog reacts.
        ++j;
        break;
      }
      cs[j] = h[j][j] / denom;
      sn[j] = h[j][j + 1] / denom;
      h[j][j] = cs[j] * h[j][j] + sn[j] * h[j][j + 1];
      h[j][j + 1] = 0;
      g[j + 1] = -sn[j] * g[j];
      g[j] = cs[j] * g[j];
    }
    *resid = std::abs(g[j + 1]);

    if (*resid <= target || hnorm == 0) {
      ++j;
      break;
    }
    Vec vn = w;
    sparse::scale(vn, 1.0 / hnorm);
    v.push_back(std::move(vn));
  }

  // Back-substitute y from the triangularized Hessenberg, then
  // x += M^{-1} (V y). Skipped after a guard trip: the preconditioner
  // apply would hit its own poll point, and the driver discards the
  // attempt on trip anyway.
  const int k = j;
  if (k > 0 && !*guard_tripped) {
    std::vector<double> y(k);
    for (int i = k - 1; i >= 0; --i) {
      double s = g[i];
      for (int l = i + 1; l < k; ++l) s -= h[l][i] * y[l];
      // A zero diagonal happens on (lucky or injected) breakdown: the
      // direction contributed nothing — drop it instead of dividing by 0.
      y[i] = h[i][i] != 0 ? s / h[i][i] : 0.0;
    }
    Vec u(n, 0.0);
    for (int i = 0; i < k; ++i) {
      sparse::axpy(y[i], v[i], u);
      ++ctr.axpys;
    }
    prec.apply(u.data(), z.data());
    ++ctr.prec_applies;
    for (int i = 0; i < n; ++i) x[i] += z[i];
  }
  return k;
}

}  // namespace

GmresResult gmres(const LinearOperator& a, const Preconditioner& m,
                  const std::vector<double>& b, std::vector<double>& x,
                  const GmresOptions& opts) {
  F3D_CHECK(a.n == static_cast<int>(b.size()));
  F3D_CHECK(a.n == m.n());
  F3D_CHECK(a.n == static_cast<int>(x.size()));
  F3D_CHECK(opts.restart >= 1);

  GmresResult res;
  double resid = 0;

  // Initial residual norm for the relative tolerance.
  {
    Vec r(a.n);
    a.apply(x.data(), r.data());
    ++res.counters.matvecs;
    for (int i = 0; i < a.n; ++i) r[i] = b[i] - r[i];
    res.initial_residual = sparse::norm2(r);
    ++res.counters.dots;
  }
  const double target =
      std::max(opts.atol, opts.rtol * res.initial_residual);
  resid = res.initial_residual;

  int stagnant_cycles = 0;
  int restart_cycles = 0;
  while (res.iterations < opts.max_iters && resid > target) {
    const double resid_before = resid;
    const int room = std::min(opts.restart, opts.max_iters - res.iterations);
    double entry_beta = 0;
    bool guard_tripped = false;
    const int done = gmres_cycle(a, m, b, x, room, target, &resid, opts.orth,
                                 res.counters, opts.guard, &guard_tripped,
                                 &entry_beta);
    // Krylov invariant monitor: the recurrence estimate the previous
    // cycle ended with (resid_before) and the true residual this cycle
    // just computed (entry_beta) agree to rounding unless something was
    // silently corrupted in between.
    if (opts.sdc_drift_tol > 0 && restart_cycles > 0) {
      const double scale = std::max(resid_before, entry_beta);
      const double drift =
          scale > 0 ? std::abs(entry_beta - resid_before) / scale : 0.0;
      res.sdc_drift = std::max(res.sdc_drift, drift);
      if (drift > opts.sdc_drift_tol || !std::isfinite(entry_beta))
        res.sdc_suspected = true;
    }
    res.iterations += done;
    ++restart_cycles;
    if (guard_tripped) {
      res.guard_tripped = true;
      res.reason = "guard trip: budget/cancel ended the solve";
      break;
    }
    if (done == 0) break;  // stagnation or immediate convergence
    // Stagnation watchdog: stop burning restarts that make no progress.
    if (resid > target && resid >= opts.stagnation_factor * resid_before) {
      if (++stagnant_cycles >= opts.max_stagnant_restarts) {
        res.stagnated = true;
        res.reason = "stagnation: " + std::to_string(stagnant_cycles) +
                     " restart cycle(s) of m=" + std::to_string(opts.restart) +
                     " made no progress (resid " + std::to_string(resid) + ")";
        break;
      }
    } else {
      stagnant_cycles = 0;
    }
  }
  // Exit drift check: the cross-cycle monitor above never sees the LAST
  // cycle (and short solves converge in a single cycle, so it never runs
  // at all). One extra matvec recomputes the true residual at the final
  // iterate; corruption of the Arnoldi recurrence shows up as a gap
  // between it and the recurrence estimate. Residuals at rounding level
  // are skipped — estimate and truth legitimately part ways there.
  // (Skipped after a guard trip: the extra matvec would re-enter the
  // tripped operator and the attempt is being discarded anyway.)
  if (opts.sdc_drift_tol > 0 && res.iterations > 0 && !res.guard_tripped) {
    Vec r(a.n);
    a.apply(x.data(), r.data());
    ++res.counters.matvecs;
    for (int i = 0; i < a.n; ++i) r[i] = b[i] - r[i];
    const double true_resid = sparse::norm2(r);
    ++res.counters.dots;
    const double scale = std::max(resid, true_resid);
    if (scale > 1e-14 * res.initial_residual) {
      const double drift = scale > 0 ? std::abs(true_resid - resid) / scale : 0;
      res.sdc_drift = std::max(res.sdc_drift, drift);
      if (drift > opts.sdc_drift_tol || !std::isfinite(true_resid))
        res.sdc_suspected = true;
    }
  }
  res.final_residual = resid;
  res.converged = resid <= target;
  if (!res.converged && res.reason.empty())
    res.reason = res.iterations >= opts.max_iters
                     ? "max_iters (" + std::to_string(opts.max_iters) +
                           ") exhausted"
                     : "no progress in first cycle";
  auto& reg = obs::Registry::global();
  reg.count("solver.gmres.iterations", res.iterations);
  reg.count("solver.gmres.restart_cycles", restart_cycles);
  if (res.stagnated) reg.count("solver.gmres.stagnations");
  if (res.sdc_suspected) reg.count("solver.gmres.sdc_suspected");
  return res;
}

}  // namespace f3d::solver
