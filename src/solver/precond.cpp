#include "solver/precond.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/densemat.hpp"
#include "common/error.hpp"
#include "guard/guard.hpp"
#include "obs/obs.hpp"
#include "resilience/faults.hpp"

namespace f3d::solver {

namespace {

// Block-sparsity adjacency (excluding self) for overlap expansion.
mesh::Graph graph_from_bcsr(const sparse::Bcsr<double>& a) {
  std::vector<std::array<int, 2>> edges;
  for (int i = 0; i < a.nrows; ++i)
    for (int p = a.ptr[i]; p < a.ptr[i + 1]; ++p)
      if (a.col[p] > i) edges.push_back({i, a.col[p]});
  return mesh::build_graph(a.nrows, edges);
}

}  // namespace

SchwarzPreconditioner::SchwarzPreconditioner(const sparse::Bcsr<double>& a,
                                             const part::Partition& partition,
                                             const SchwarzOptions& opts)
    : n_(a.scalar_n()), nb_(a.nb), opts_(opts) {
  F3D_CHECK(partition.num_vertices() == a.nrows);
  F3D_CHECK(opts.overlap >= 0 && opts.fill_level >= 0);
  if (opts_.type == SchwarzType::kBlockJacobi) {
    F3D_CHECK_MSG(opts_.overlap == 0, "block Jacobi has no overlap");
  }

  const auto g = graph_from_bcsr(a);
  auto regions = part::overlap_expand(g, partition, opts_.overlap);

  subs_.resize(partition.nparts);
  std::vector<int> global_to_local(a.nrows, -1);
  for (int s = 0; s < partition.nparts; ++s) {
    auto& sd = subs_[s];
    sd.vertices = std::move(regions[s]);
    F3D_CHECK_MSG(!sd.vertices.empty(), "empty subdomain");
    sd.owned.resize(sd.vertices.size());
    for (std::size_t k = 0; k < sd.vertices.size(); ++k)
      sd.owned[k] = partition.part[sd.vertices[k]] == s ? 1 : 0;

    // Local block sparsity: rows/cols restricted to the subdomain set.
    const int nl = static_cast<int>(sd.vertices.size());
    for (int k = 0; k < nl; ++k) global_to_local[sd.vertices[k]] = k;

    sd.local.nb = nb_;
    sd.local.nrows = nl;
    sd.local.ptr.assign(nl + 1, 0);
    for (int k = 0; k < nl; ++k) {
      const int gi = sd.vertices[k];
      int cnt = 0;
      for (int p = a.ptr[gi]; p < a.ptr[gi + 1]; ++p)
        if (global_to_local[a.col[p]] >= 0) ++cnt;
      sd.local.ptr[k + 1] = sd.local.ptr[k] + cnt;
    }
    sd.local.col.resize(sd.local.ptr[nl]);
    sd.local.val.resize(sd.local.ptr[nl] * static_cast<std::size_t>(nb_) * nb_);
    for (int k = 0; k < nl; ++k) {
      const int gi = sd.vertices[k];
      int q = sd.local.ptr[k];
      for (int p = a.ptr[gi]; p < a.ptr[gi + 1]; ++p) {
        const int lj = global_to_local[a.col[p]];
        if (lj >= 0) sd.local.col[q++] = lj;
      }
      // Global columns ascending and the local ids monotone in global ids
      // within the subdomain set, so local columns are already sorted.
    }
    if (opts_.subdomain_solver == SubdomainSolver::kIlu) {
      sd.pattern = sparse::ilu_symbolic(sd.local, opts_.fill_level);
      // Level schedules of the triangular solves, computed once: the
      // pattern is fixed across Newton refactorizations.
      sd.fwd = sparse::lower_levels(sd.pattern);
      sd.bwd = sparse::upper_levels(sd.pattern);
    }

    for (int k = 0; k < nl; ++k) global_to_local[sd.vertices[k]] = -1;
  }

  refactor(a);
}

void SchwarzPreconditioner::extract_local_values(const sparse::Bcsr<double>& a,
                                                 Subdomain& sd) const {
  const std::size_t bsz = static_cast<std::size_t>(nb_) * nb_;
  std::vector<char> in_sub(a.nrows, 0);
  for (int v : sd.vertices) in_sub[v] = 1;
  const int nl = static_cast<int>(sd.vertices.size());
  for (int k = 0; k < nl; ++k) {
    const int gi = sd.vertices[k];
    int q = sd.local.ptr[k];
    for (int p = a.ptr[gi]; p < a.ptr[gi + 1]; ++p) {
      if (!in_sub[a.col[p]]) continue;
      std::copy_n(&a.val[static_cast<std::size_t>(p) * bsz], bsz,
                  &sd.local.val[static_cast<std::size_t>(q) * bsz]);
      ++q;
    }
    F3D_CHECK(q == sd.local.ptr[k + 1]);
  }
  // Fault-injection site: a corrupted Jacobian block arriving at the
  // factorization (forced zero pivot). One opportunity per subdomain
  // extraction, shared by the plain and resilient refresh paths.
  if (resilience::fault_fires(resilience::FaultSite::kFactorPivot)) {
    double* blk = sd.local.find_block(0, 0);
    if (blk != nullptr)
      std::fill_n(blk, static_cast<std::size_t>(nb_) * nb_, 0.0);
  }
}

bool SchwarzPreconditioner::factor_checked(Subdomain& sd, std::string* err) {
  if (opts_.subdomain_solver == SubdomainSolver::kSsor) {
    // SSOR only needs the factored diagonal blocks.
    const std::size_t bsz = static_cast<std::size_t>(nb_) * nb_;
    const int nl = static_cast<int>(sd.vertices.size());
    sd.diag_lu.resize(static_cast<std::size_t>(nl) * bsz);
    for (int k = 0; k < nl; ++k) {
      const double* blk = sd.local.find_block(k, k);
      F3D_CHECK_MSG(blk != nullptr, "missing diagonal block");
      std::copy_n(blk, bsz, &sd.diag_lu[static_cast<std::size_t>(k) * bsz]);
      const bool ok =
          dense::lu_factor(nb_, &sd.diag_lu[static_cast<std::size_t>(k) * bsz]);
      if (!ok) {
        if (err != nullptr)
          *err = "singular diagonal block in SSOR at local row " +
                 std::to_string(k);
        return false;
      }
    }
    sd.ilu_d = {};
    sd.ilu_f = {};
    return true;
  }
  sparse::IluFactorStatus status;
  if (opts_.single_precision) {
    sd.ilu_f = sparse::ilu_factor_block<float>(sd.local, sd.pattern, &status);
    sd.ilu_d = {};
  } else {
    sd.ilu_d = sparse::ilu_factor_block<double>(sd.local, sd.pattern, &status);
    sd.ilu_f = {};
  }
  if (!status.ok && err != nullptr)
    *err = "singular diagonal block in block ILU at local row " +
           std::to_string(status.bad_row);
  return status.ok;
}

void SchwarzPreconditioner::factor(Subdomain& sd) {
  std::string err;
  const bool ok = factor_checked(sd, &err);
  F3D_NUMERIC_CHECK_MSG(ok, err);
}

void SchwarzPreconditioner::shift_local_diagonal(Subdomain& sd, int nb,
                                                 double delta) {
  const int nl = static_cast<int>(sd.vertices.size());
  for (int k = 0; k < nl; ++k) {
    double* blk = sd.local.find_block(k, k);
    if (blk == nullptr) continue;
    for (int c = 0; c < nb; ++c)
      blk[static_cast<std::size_t>(c) * nb + c] += delta;
  }
}

void SchwarzPreconditioner::ssor_solve(const Subdomain& sd, const double* b,
                                       double* z) const {
  // `sweeps` symmetric block Gauss-Seidel iterations on the local system,
  // starting from z = 0. Each half-sweep: z_i = D_ii^{-1} (b_i - sum_{j!=i}
  // A_ij z_j) with the latest z values (forward then backward order).
  const int nl = static_cast<int>(sd.vertices.size());
  const std::size_t bsz = static_cast<std::size_t>(nb_) * nb_;
  std::fill(z, z + static_cast<std::size_t>(nl) * nb_, 0.0);
  double rhs[8], sol[8];
  F3D_CHECK(nb_ <= 8);
  auto relax_row = [&](int i) {
    const double* bi = b + static_cast<std::size_t>(i) * nb_;
    for (int c = 0; c < nb_; ++c) rhs[c] = bi[c];
    for (int p = sd.local.ptr[i]; p < sd.local.ptr[i + 1]; ++p) {
      const int j = sd.local.col[p];
      if (j == i) continue;
      dense::gemv_sub(nb_, &sd.local.val[static_cast<std::size_t>(p) * bsz],
                      z + static_cast<std::size_t>(j) * nb_, rhs);
    }
    dense::lu_solve(nb_, &sd.diag_lu[static_cast<std::size_t>(i) * bsz], rhs,
                    sol);
    double* zi = z + static_cast<std::size_t>(i) * nb_;
    for (int c = 0; c < nb_; ++c) zi[c] = sol[c];
  };
  for (int sweep = 0; sweep < opts_.sweeps; ++sweep) {
    for (int i = 0; i < nl; ++i) relax_row(i);
    for (int i = nl - 1; i >= 0; --i) relax_row(i);
  }
}

void SchwarzPreconditioner::refactor(const sparse::Bcsr<double>& a) {
  F3D_CHECK(a.scalar_n() == n_ && a.nb == nb_);
  for (auto& sd : subs_) {
    extract_local_values(a, sd);
    factor(sd);
  }
}

bool SchwarzPreconditioner::refactor_checked(const sparse::Bcsr<double>& a,
                                             double shift0, int max_attempts,
                                             resilience::FactorReport* report) {
  F3D_CHECK(a.scalar_n() == n_ && a.nb == nb_);
  if (shift0 <= 0) shift0 = 1e-8;
  if (max_attempts < 1) max_attempts = 1;
  bool all_ok = true;
  for (auto& sd : subs_) {
    extract_local_values(a, sd);
    std::string err;
    if (factor_checked(sd, &err)) continue;

    // Diagonal scale of the failing subdomain, so the shift is relative.
    double scale = 0;
    const int nl = static_cast<int>(sd.vertices.size());
    for (int k = 0; k < nl; ++k) {
      const double* blk = sd.local.find_block(k, k);
      if (blk == nullptr) continue;
      for (int c = 0; c < nb_; ++c)
        scale = std::max(scale,
                         std::abs(blk[static_cast<std::size_t>(c) * nb_ + c]));
    }
    if (scale == 0 || !std::isfinite(scale)) scale = 1.0;

    bool ok = false;
    double applied = 0;
    double shift = shift0;
    for (int attempt = 0; attempt < max_attempts; ++attempt, shift *= 10) {
      const double target = shift * scale;
      shift_local_diagonal(sd, nb_, target - applied);
      applied = target;
      if (report != nullptr) {
        ++report->shift_attempts;
        report->shift_used = std::max(report->shift_used, target);
      }
      if (factor_checked(sd, &err)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      all_ok = false;
      if (report != nullptr) report->detail = err;
    }
  }
  if (report != nullptr) report->ok = all_ok;
  return all_ok;
}

void SchwarzPreconditioner::apply(const double* r, double* z) const {
  F3D_OBS_SPAN("precond");
  obs::Registry::global().count("solver.precond.applies");
  std::fill(z, z + n_, 0.0);
  std::vector<double> rl, zl;
  for (const auto& sd : subs_) {
    // Cooperative cancellation boundary: with many subdomains one apply
    // is a long serial stretch between Krylov-iteration charge points.
    guard::poll_cancellation();
    const int nl = static_cast<int>(sd.vertices.size());
    rl.resize(static_cast<std::size_t>(nl) * nb_);
    zl.resize(rl.size());
    for (int k = 0; k < nl; ++k)
      for (int c = 0; c < nb_; ++c)
        rl[static_cast<std::size_t>(k) * nb_ + c] =
            r[static_cast<std::size_t>(sd.vertices[k]) * nb_ + c];
    if (opts_.subdomain_solver == SubdomainSolver::kSsor)
      ssor_solve(sd, rl.data(), zl.data());
    else if (opts_.single_precision)
      sd.ilu_f.solve_levels(sd.fwd, sd.bwd, rl.data(), zl.data());
    else
      sd.ilu_d.solve_levels(sd.fwd, sd.bwd, rl.data(), zl.data());

    const bool restrict_to_owned = opts_.type != SchwarzType::kAsm;
    for (int k = 0; k < nl; ++k) {
      if (restrict_to_owned && !sd.owned[k]) continue;
      for (int c = 0; c < nb_; ++c)
        z[static_cast<std::size_t>(sd.vertices[k]) * nb_ + c] +=
            zl[static_cast<std::size_t>(k) * nb_ + c];
    }
  }
}

std::string SchwarzPreconditioner::name() const {
  std::string base = opts_.type == SchwarzType::kBlockJacobi ? "bjacobi"
                     : opts_.type == SchwarzType::kAsm       ? "asm"
                                                             : "rasm";
  const std::string sub =
      opts_.subdomain_solver == SubdomainSolver::kSsor
          ? "/ssor(" + std::to_string(opts_.sweeps) + ")"
          : "/ilu(" + std::to_string(opts_.fill_level) + ")";
  return base + sub + "+ov" + std::to_string(opts_.overlap) +
         (opts_.single_precision ? "/float" : "/double");
}

std::vector<int> SchwarzPreconditioner::subdomain_sizes() const {
  std::vector<int> out;
  out.reserve(subs_.size());
  for (const auto& sd : subs_) out.push_back(static_cast<int>(sd.vertices.size()));
  return out;
}

std::size_t SchwarzPreconditioner::factor_bytes() const {
  std::size_t bytes = 0;
  for (const auto& sd : subs_) {
    const std::size_t scalars =
        sd.pattern.nnz() * static_cast<std::size_t>(nb_) * nb_;
    bytes += scalars * (opts_.single_precision ? sizeof(float) : sizeof(double));
  }
  return bytes;
}

std::unique_ptr<SchwarzPreconditioner> make_global_ilu(
    const sparse::Bcsr<double>& a, int fill_level, bool single_precision) {
  part::Partition p;
  p.nparts = 1;
  p.part.assign(a.nrows, 0);
  SchwarzOptions opts;
  opts.type = SchwarzType::kBlockJacobi;
  opts.overlap = 0;
  opts.fill_level = fill_level;
  opts.single_precision = single_precision;
  return std::make_unique<SchwarzPreconditioner>(a, p, opts);
}

}  // namespace f3d::solver
