#pragma once
// Preconditioned BiCGSTAB — the short-recurrence alternative to GMRES(m)
// PETSc offers for nonsymmetric systems. Constant memory (no Krylov basis
// to store, cf. §2.4.2's "Krylov subspace dimension depends largely on
// the problem size and the available memory"), two matvecs and two
// preconditioner applies per iteration; convergence is less monotone
// than GMRES but needs no restart tuning.

#include <vector>

#include "solver/linear.hpp"

namespace f3d::guard {
class SolveGuard;
}

namespace f3d::solver {

struct BicgstabOptions {
  double rtol = 1e-3;
  double atol = 1e-50;
  int max_iters = 200;

  // Krylov invariant monitor (SDC watchdog): every true_residual_every
  // iterations recompute the TRUE residual ||b - Ax|| and compare it to
  // the short recurrence's r. The two drifting apart relatively by more
  // than sdc_drift_tol flags sdc_suspected. Unlike the GMRES monitor this
  // costs one extra matvec per check; 0 in either field disables it.
  int true_residual_every = 0;
  double sdc_drift_tol = 0;

  // Run-to-completion guard (f3d::guard). When set, every iteration
  // charges guard::kUnitsKrylovIter; a budget/cancel trip ends the solve
  // cleanly at the next iteration boundary with guard_tripped set.
  guard::SolveGuard* guard = nullptr;
};

struct BicgstabResult {
  bool converged = false;
  int iterations = 0;  ///< full BiCGSTAB iterations (2 matvecs each)
  double initial_residual = 0;
  double final_residual = 0;
  bool breakdown = false;  ///< rho or omega collapsed
  bool guard_tripped = false;  ///< budget/cancel trip ended the solve early
  bool sdc_suspected = false;  ///< true-residual check exceeded sdc_drift_tol
  double sdc_drift = 0;        ///< worst relative drift observed
  SolveCounters counters;
};

/// Solve A x = b with right preconditioning; x carries the initial guess.
BicgstabResult bicgstab(const LinearOperator& a, const Preconditioner& m,
                        const std::vector<double>& b, std::vector<double>& x,
                        const BicgstabOptions& opts);

}  // namespace f3d::solver
