#pragma once
// Preconditioned BiCGSTAB — the short-recurrence alternative to GMRES(m)
// PETSc offers for nonsymmetric systems. Constant memory (no Krylov basis
// to store, cf. §2.4.2's "Krylov subspace dimension depends largely on
// the problem size and the available memory"), two matvecs and two
// preconditioner applies per iteration; convergence is less monotone
// than GMRES but needs no restart tuning.

#include <vector>

#include "solver/linear.hpp"

namespace f3d::solver {

struct BicgstabOptions {
  double rtol = 1e-3;
  double atol = 1e-50;
  int max_iters = 200;
};

struct BicgstabResult {
  bool converged = false;
  int iterations = 0;  ///< full BiCGSTAB iterations (2 matvecs each)
  double initial_residual = 0;
  double final_residual = 0;
  bool breakdown = false;  ///< rho or omega collapsed
  SolveCounters counters;
};

/// Solve A x = b with right preconditioning; x carries the initial guess.
BicgstabResult bicgstab(const LinearOperator& a, const Preconditioner& m,
                        const std::vector<double>& b, std::vector<double>& x,
                        const BicgstabOptions& opts);

}  // namespace f3d::solver
