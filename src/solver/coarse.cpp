#include "solver/coarse.hpp"

#include "common/error.hpp"

namespace f3d::solver {

TwoLevelSchwarzPreconditioner::TwoLevelSchwarzPreconditioner(
    const sparse::Bcsr<double>& a, const part::Partition& partition,
    const SchwarzOptions& opts)
    : fine_(a, partition, opts),
      part_of_(partition.part),
      nparts_(partition.nparts),
      nb_(a.nb) {
  F3D_NUMERIC_CHECK_MSG(build_coarse(a),
                        "singular coarse operator (check pseudo-time shift)");
}

bool TwoLevelSchwarzPreconditioner::build_coarse(const sparse::Bcsr<double>& a) {
  const int nc = coarse_dim();
  std::vector<double> a0(static_cast<std::size_t>(nc) * nc, 0.0);
  const std::size_t bsz = static_cast<std::size_t>(nb_) * nb_;

  // A0[(s,c),(t,d)] = sum over blocks (v in s, w in t) of block[c][d].
  for (int v = 0; v < a.nrows; ++v) {
    const int s = part_of_[v];
    for (int p = a.ptr[v]; p < a.ptr[v + 1]; ++p) {
      const int t = part_of_[a.col[p]];
      const double* blk = &a.val[static_cast<std::size_t>(p) * bsz];
      for (int c = 0; c < nb_; ++c)
        for (int d = 0; d < nb_; ++d)
          a0[static_cast<std::size_t>(s * nb_ + c) * nc + t * nb_ + d] +=
              blk[static_cast<std::size_t>(c) * nb_ + d];
    }
  }
  return coarse_lu_.factor(nc, a0.data());
}

void TwoLevelSchwarzPreconditioner::refactor(const sparse::Bcsr<double>& a) {
  fine_.refactor(a);
  F3D_NUMERIC_CHECK_MSG(build_coarse(a),
                        "singular coarse operator (check pseudo-time shift)");
  coarse_ok_ = true;
}

bool TwoLevelSchwarzPreconditioner::refactor_checked(
    const sparse::Bcsr<double>& a, double shift0, int max_attempts,
    resilience::FactorReport* report) {
  const bool fine_ok = fine_.refactor_checked(a, shift0, max_attempts, report);
  coarse_ok_ = build_coarse(a);
  if (!coarse_ok_ && report != nullptr) {
    report->coarse_disabled = true;
    if (!report->detail.empty()) report->detail += "; ";
    report->detail += "singular coarse operator: correction disabled";
  }
  // A dead coarse space degrades convergence but not correctness.
  return fine_ok;
}

void TwoLevelSchwarzPreconditioner::apply(const double* r, double* z) const {
  fine_.apply(r, z);
  if (!coarse_ok_) return;

  // Coarse correction: z += R0^T A0^{-1} R0 r.
  const int nc = coarse_dim();
  std::vector<double> rc(nc, 0.0), zc(nc);
  const int nv = static_cast<int>(part_of_.size());
  for (int v = 0; v < nv; ++v) {
    const int s = part_of_[v];
    for (int c = 0; c < nb_; ++c)
      rc[s * nb_ + c] += r[static_cast<std::size_t>(v) * nb_ + c];
  }
  coarse_lu_.solve(rc.data(), zc.data());
  for (int v = 0; v < nv; ++v) {
    const int s = part_of_[v];
    for (int c = 0; c < nb_; ++c)
      z[static_cast<std::size_t>(v) * nb_ + c] += zc[s * nb_ + c];
  }
}

}  // namespace f3d::solver
