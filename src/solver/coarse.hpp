#pragma once
// Two-level additive Schwarz: the coarse-grid component the paper points
// to for asymptotic scalability ("for asymptotic scalability this
// algorithm requires a coarse grid preconditioning step") but did not
// need at its CFL regime. Implemented as the classical aggregation
// (Nicolaides) coarse space: one coarse degree of freedom per subdomain
// per field component, with piecewise-constant restriction over each
// subdomain's owned vertices. The coarse operator A0 = R0 A R0^T is a
// dense (P*nb)^2 system solved with pivoted LU.
//
// M^{-1} = M_schwarz^{-1} + R0^T A0^{-1} R0   (additive correction)
//
// The ablation bench (bench_ablation_coarse) shows the effect the theory
// predicts: iteration counts flatten with the subdomain count.

#include <memory>

#include "common/denselu.hpp"
#include "solver/precond.hpp"

namespace f3d::solver {

class TwoLevelSchwarzPreconditioner final : public RefactorablePreconditioner {
public:
  TwoLevelSchwarzPreconditioner(const sparse::Bcsr<double>& a,
                                const part::Partition& partition,
                                const SchwarzOptions& opts);

  /// Rebuild both levels from new values on the same sparsity.
  void refactor(const sparse::Bcsr<double>& a) override;

  /// Resilient refresh: the fine level climbs the Schwarz shift ladder; a
  /// singular coarse operator disables the coarse correction for this
  /// refresh (one-level Schwarz is still a valid preconditioner) instead
  /// of aborting.
  bool refactor_checked(const sparse::Bcsr<double>& a, double shift0,
                        int max_attempts,
                        resilience::FactorReport* report) override;

  /// False while the coarse correction is disabled after a singular
  /// coarse operator was seen on the resilient path.
  [[nodiscard]] bool coarse_active() const { return coarse_ok_; }

  void apply(const double* r, double* z) const override;
  [[nodiscard]] int n() const override { return fine_.n(); }
  [[nodiscard]] std::string name() const override {
    return fine_.name() + "+coarse";
  }

  [[nodiscard]] int coarse_dim() const { return nparts_ * nb_; }

private:
  [[nodiscard]] bool build_coarse(const sparse::Bcsr<double>& a);

  SchwarzPreconditioner fine_;
  std::vector<int> part_of_;  ///< vertex -> subdomain
  int nparts_ = 0;
  int nb_ = 0;
  bool coarse_ok_ = true;
  dense::DenseLu coarse_lu_;
};

}  // namespace f3d::solver
