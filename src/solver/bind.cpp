// bind() implementations for the solver option structs: each registers
// its tunable fields as named, range-constrained knobs (tune/registry.hpp)
// while the structs keep their typed access everywhere else. Ranges are
// the admissible search intervals, not hard mathematical limits — wide
// enough to cover the paper's reported sweeps, narrow enough that every
// in-range value yields a well-posed solve.

#include "solver/gmres.hpp"
#include "solver/newton.hpp"
#include "solver/precond.hpp"
#include "tune/registry.hpp"

namespace f3d::solver {

void GmresOptions::bind(tune::Registry& reg, const std::string& prefix) {
  reg.add_int(prefix + "restart", &restart, 4, 200,
              "GMRES(m) restart length; the paper's §2.4.2 subspace-size "
              "knob (Table 4 uses 20, typical range 10-30)");
  reg.add_double(prefix + "rtol", &rtol, 1e-6, 0.5,
                 "inexact-Newton linear tolerance; looser = cheaper inner "
                 "solves but more outer steps (§2.4.2 inexactness knob)");
  reg.add_int(prefix + "max_iters", &max_iters, 20, 400,
              "total Krylov iterations across restarts per Newton "
              "correction (§2.4.2)");
  reg.add_enum(prefix + "orth", &orth,
               {"modified_gram_schmidt", "classical_gram_schmidt"},
               "orthogonalization mechanism; classical GS trades stability "
               "for fewer synchronization points (§2.4.2)");
}

void SchwarzOptions::bind(tune::Registry& reg, const std::string& prefix) {
  reg.add_enum(prefix + "type", &type, {"block_jacobi", "asm", "rasm"},
               "Schwarz variant; RASM halves the communication of ASM "
               "(§2.4.3, Table 4)");
  reg.add_int(prefix + "overlap", &overlap, 0, 2,
              "BFS levels of subdomain overlap (Table 4 sweeps 0-2)");
  reg.add_int(prefix + "fill_level", &fill_level, 0, 3,
              "ILU(k) fill level of the subdomain factorization; the "
              "paper's subdomain-solver-quality knob (§2.4.3)");
  reg.add_bool(prefix + "single_precision", &single_precision,
               "store subdomain factors in float (double arithmetic) — "
               "halves factor memory traffic (Table 2)");
  reg.add_enum(prefix + "subdomain_solver", &subdomain_solver,
               {"ilu", "ssor"},
               "subdomain solve kind: ILU(k) factorization or SSOR "
               "sweeps (§2.4.3 quality-of-subdomain-solver knob)");
  reg.add_int(prefix + "sweeps", &sweeps, 1, 6,
              "SSOR sweep count when subdomain_solver == ssor");
}

void PtcOptions::bind(tune::Registry& reg) {
  reg.add_double("ptc.cfl0", &cfl0, 0.5, 1e4,
                 "initial CFL number of the pseudo-transient continuation "
                 "(§2.4.1; paper starts at 10)");
  reg.add_double("ptc.ser_exponent", &ser_exponent, 0.0, 2.0,
                 "p in the SER power law; the paper quotes 0.75-1.5 "
                 "(§2.4.1, Fig 5)");
  reg.add_double("ptc.cfl_max", &cfl_max, 1e2, 1e6,
                 "CFL cap of the continuation (paper: CFL reaches 1e5)");
  reg.add_enum("ptc.krylov", &krylov, {"gmres", "bicgstab"},
               "inner Krylov method (§2.4.2; the paper uses GMRES)");
  reg.add_int("ptc.num_subdomains", &num_subdomains, 1, 32,
              "Schwarz subdomain count — the paper's processor-count "
              "algorithmic axis (more, smaller blocks => more Krylov "
              "iterations; Fig 4)");
  reg.add_bool("ptc.use_coarse_space", &use_coarse_space,
               "two-level Schwarz aggregation coarse space (the paper's "
               "coarse-grid-usage knob, §2.4.3)");
  reg.add_int("ptc.jacobian_refresh", &jacobian_refresh, 1, 10,
              "rebuild+refactor the preconditioner every k pseudo-steps "
              "(§2.4 refresh-frequency knob)");
  reg.add_bool("ptc.matrix_free", &matrix_free,
               "matrix-free FD Jacobian action vs the assembled "
               "first-order operator (§2.4.2; ablated in "
               "bench_ablation_subsolver)");
  reg.add_bool("ptc.matrix_single_precision", &matrix_single_precision,
               "assembled Krylov operator stored in float (double "
               "arithmetic) — Table 2 storage/accumulate split; only "
               "active when ptc.matrix_free is off");
  reg.add_int("ptc.checkpoint_every", &recovery.checkpoint_every, 0, 1000,
              "checkpoint interval tau in accepted steps (0 = off); the "
              "resilience-overhead knob");
  gmres.bind(reg, "gmres.");
  schwarz.bind(reg, "schwarz.");
}

}  // namespace f3d::solver
