#pragma once
// Restarted GMRES(m) with right preconditioning — the paper's Krylov
// solver (GMRES(20) in Table 4; restart dimension is one of the §2.4.2
// tuning parameters, typical range 10-30).

#include <string>
#include <vector>

#include "solver/linear.hpp"

namespace f3d::guard {
class SolveGuard;
}

namespace f3d::tune {
class Registry;
}

namespace f3d::solver {

enum class Orthogonalization {
  kModifiedGramSchmidt,   ///< numerically robust default
  kClassicalGramSchmidt,  ///< fewer synchronization points (one fused
                          ///< reduction per iteration on a parallel
                          ///< machine) — the paper's "orthogonalization
                          ///< mechanism" tuning knob
};

struct GmresOptions {
  double rtol = 1e-3;       ///< relative residual tolerance
  double atol = 1e-50;
  int max_iters = 200;      ///< total Krylov iterations across restarts
  int restart = 20;         ///< Krylov subspace dimension
  Orthogonalization orth = Orthogonalization::kModifiedGramSchmidt;

  // Stagnation watchdog: a restart cycle that fails to reduce the
  // residual below stagnation_factor x (previous cycle's residual) counts
  // as stagnant; after max_stagnant_restarts consecutive stagnant cycles
  // the solve stops with converged=false and a reason string instead of
  // silently burning the rest of max_iters.
  double stagnation_factor = 0.9999;
  int max_stagnant_restarts = 2;

  // Krylov invariant monitor (SDC watchdog): at each restart the cycle
  // recomputes the TRUE residual ||b - Ax|| anyway; in exact arithmetic
  // it equals the previous cycle's recurrence estimate |g_{j+1}|. A
  // silent bit flip in the basis, the Hessenberg, or x breaks that
  // identity. When sdc_drift_tol > 0 and the relative gap between the
  // two exceeds it, the result is flagged sdc_suspected (the solve still
  // runs to completion — the psi-NKS ladder decides what to do). 0
  // disables the check. The comparison reuses an existing matvec, so the
  // monitor is free.
  double sdc_drift_tol = 0;

  // Run-to-completion guard (f3d::guard). When set, every Krylov
  // iteration charges guard::kUnitsKrylovIter; a budget/cancel trip ends
  // the solve cleanly at the next iteration boundary with guard_tripped
  // set (bounded, deterministic cancellation latency).
  guard::SolveGuard* guard = nullptr;

  /// Register the §2.4.2 tuning parameters (restart length, inexactness
  /// tolerance, iteration cap, orthogonalization mechanism) into the flat
  /// tuning space under `prefix`. The registry borrows this struct: it
  /// must outlive the registry.
  void bind(tune::Registry& reg, const std::string& prefix = "gmres.");
};

struct GmresResult {
  bool converged = false;
  bool stagnated = false;   ///< stopped by the stagnation watchdog
  bool sdc_suspected = false;  ///< recurrence/true-residual drift exceeded
                               ///< sdc_drift_tol (silent corruption likely)
  bool guard_tripped = false;  ///< budget/cancel trip ended the solve early
  int iterations = 0;
  double initial_residual = 0;
  double final_residual = 0;
  double sdc_drift = 0;     ///< worst relative recurrence drift observed
  std::string reason;       ///< empty on success; why the solve stopped
  SolveCounters counters;
};

/// Solve A x = b; x holds the initial guess on entry and the solution on
/// exit. Right-preconditioned: residuals reported are true (unpreconditioned)
/// residual estimates from the Arnoldi recurrence.
GmresResult gmres(const LinearOperator& a, const Preconditioner& m,
                  const std::vector<double>& b, std::vector<double>& x,
                  const GmresOptions& opts);

}  // namespace f3d::solver
