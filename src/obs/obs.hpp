#pragma once
// f3d::obs — the unified observability layer of the ψNKS stack: an RAII
// hierarchical span tracer and a thread-safe counter/gauge registry.
// Every other instrumentation surface in the repo (solver PhaseTimers,
// BENCH_*.json artifacts, the recovery log's tallies) is either a shim
// over this layer or drains into it. See docs/OBSERVABILITY.md.
//
// Design constraints, in order:
//  * Dependency-free. obs sits BELOW f3d_common (PhaseTimers is a shim
//    over obs::Registry), so it may not include any other f3d header.
//  * Near-zero cost when disabled: a Span construction is one relaxed
//    atomic load and nothing else — no clock read, no allocation. The
//    F3D_OBS_SPAN macro additionally compiles to nothing when
//    F3D_OBS_DISABLE is defined.
//  * Lock-free hot path when enabled: spans append to a per-thread
//    buffer owned by the tracer; the only lock is taken once per
//    (thread, tracer) pair at first use, and again at flush when the
//    buffers are merged.
//
// Span names must be string literals (or otherwise outlive the tracer) —
// the tracer stores the pointer, never copies the text.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace f3d::obs {

namespace detail {
extern std::atomic<bool> g_tracing;
/// Per-thread span nesting depth (shared across tracers; in practice a
/// thread records into one tracer at a time).
int& thread_depth();
}  // namespace detail

/// Runtime master switch for span recording. Initialized from the
/// F3D_TRACE environment variable (unset/"0" = off).
inline bool tracing_enabled() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}
void set_tracing(bool on);

/// True when the F3D_TRACE environment variable requested tracing at
/// process start (flush_env_trace only writes in that case, so tests
/// toggling set_tracing don't spray trace files).
bool trace_env_requested();
/// F3D_TRACE_OUT, defaulting to "trace.json".
std::string trace_env_path();

/// One completed span: [t0, t1) nanoseconds since the tracer's epoch, on
/// tracer-thread `tid`, at per-thread nesting `depth` (0 = outermost).
struct SpanEvent {
  const char* name = nullptr;
  int tid = 0;
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  int depth = 0;
  [[nodiscard]] double duration_us() const {
    return static_cast<double>(t1_ns - t0_ns) * 1e-3;
  }
};

/// Collects SpanEvents into per-thread buffers; merge happens only at
/// drain(). Thread ids are assigned in first-record order (the main
/// thread of a solve is tid 0 in practice).
class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every Span uses by default.
  static Tracer& global();

  /// Monotonic nanoseconds since this tracer's construction.
  [[nodiscard]] std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Append one completed span to the calling thread's buffer (lock-free
  /// after the thread's first record). Events beyond the per-thread cap
  /// are dropped and counted.
  void record(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
              int depth);

  /// Merge every thread's buffer, clear them, and return the events
  /// sorted by (t0, tid, depth): deterministic for a fixed event set.
  std::vector<SpanEvent> drain();
  /// Discard all buffered events.
  void clear();
  /// Events dropped by the per-thread buffer cap since construction.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Per-thread buffer cap; generous (a span is 40 bytes) but bounded so
  /// a pathological loop with tracing on cannot eat the machine.
  static constexpr std::size_t kMaxEventsPerThread = 1u << 22;

 private:
  struct Buffer {
    int tid = 0;
    std::vector<SpanEvent> events;
  };
  Buffer* local_buffer();

  std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  ///< guards buffers_ registration and merge
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// RAII hierarchical span. When tracing is disabled construction and
/// destruction are a single relaxed load each — no clock, no allocation.
class Span {
 public:
  Span(Tracer& tracer, const char* name) {
    if (!tracing_enabled()) return;
    tracer_ = &tracer;
    name_ = name;
    depth_ = detail::thread_depth()++;
    t0_ = tracer.now_ns();
  }
  explicit Span(const char* name) : Span(Tracer::global(), name) {}
  ~Span() {
    if (tracer_ == nullptr) return;
    const std::uint64_t t1 = tracer_->now_ns();
    --detail::thread_depth();
    tracer_->record(name_, t0_, t1, depth_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  int depth_ = 0;
};

// Compile-time no-op gate: define F3D_OBS_DISABLE to strip every
// F3D_OBS_SPAN site from the binary.
#define F3D_OBS_CAT2(a, b) a##b
#define F3D_OBS_CAT(a, b) F3D_OBS_CAT2(a, b)
#if defined(F3D_OBS_DISABLE)
#define F3D_OBS_SPAN(name) \
  do {                     \
  } while (0)
#else
#define F3D_OBS_SPAN(name) \
  ::f3d::obs::Span F3D_OBS_CAT(f3d_obs_span_, __LINE__)(name)
#endif

/// Merged view of a Registry at one instant.
struct Snapshot {
  std::map<std::string, long long> counters;
  std::map<std::string, double> times;  ///< accumulated seconds
  std::map<std::string, double> gauges;
  [[nodiscard]] bool empty() const {
    return counters.empty() && times.empty() && gauges.empty();
  }
};

/// Thread-safe named counters (exact integers), time accumulators
/// (seconds), and gauges (last-write-wins). Counters and times
/// accumulate into per-thread-striped shards so concurrent increments
/// from pool workers never contend on one lock; reads merge the shards.
/// Counter totals are exact for any thread count (integer addition
/// commutes); time totals are summed in shard order, which is
/// deterministic for a fixed assignment of adds to threads.
class Registry {
 public:
  Registry() = default;
  /// Copies materialize the merged snapshot (a Registry member keeps
  /// value semantics for result structs like PtcResult).
  Registry(const Registry& o);
  Registry& operator=(const Registry& o);

  /// The process-wide registry the instrumented layers tally into.
  static Registry& global();

  void count(const std::string& name, long long delta = 1);
  void add_time(const std::string& name, double seconds);
  void set_gauge(const std::string& name, double value);

  [[nodiscard]] long long counter(const std::string& name) const;
  [[nodiscard]] double seconds(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  /// Sum of every time bucket.
  [[nodiscard]] double total_time() const;

  [[nodiscard]] Snapshot snapshot() const;
  void clear();

 private:
  static constexpr int kShards = 16;  // power of two
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, long long> counters;
    std::map<std::string, double> times;
  };
  static int thread_slot();
  Shard& my_shard() { return shards_[thread_slot() & (kShards - 1)]; }
  void merge_snapshot(const Snapshot& s);

  Shard shards_[kShards];
  mutable std::mutex gauge_mu_;
  std::map<std::string, double> gauges_;
};

}  // namespace f3d::obs
