#include "obs/trace.hpp"

#include <cstdio>

namespace f3d::obs {

Json make_bench_report(const std::string& experiment, Json series) {
  Json meta = Json::object();
  meta.set("schema", kBenchSchema).set("experiment", experiment);
  Json root = Json::object();
  root.set("meta", std::move(meta)).set("series", std::move(series));
  return root;
}

bool is_bench_report(const Json& v) {
  const Json* meta = v.find("meta");
  if (meta == nullptr || !meta->is_object()) return false;
  const Json* schema = meta->find("schema");
  const Json* experiment = meta->find("experiment");
  return schema != nullptr && schema->is_string() && schema->s == kBenchSchema &&
         experiment != nullptr && experiment->is_string() &&
         v.find("series") != nullptr;
}

namespace {

// Flattened into the meta object as counters/times/gauges members.
void embed_snapshot(Json& meta, const Snapshot& s) {
  Json counters = Json::object();
  for (const auto& [k, v] : s.counters) counters.set(k, v);
  Json times = Json::object();
  for (const auto& [k, v] : s.times) times.set(k, v);
  Json gauges = Json::object();
  for (const auto& [k, v] : s.gauges) gauges.set(k, v);
  meta.set("counters", std::move(counters))
      .set("times", std::move(times))
      .set("gauges", std::move(gauges));
}

}  // namespace

Json chrome_trace_json(const std::vector<SpanEvent>& events,
                       const Snapshot* registry) {
  Json trace_events = Json::array();
  for (const SpanEvent& e : events) {
    Json ev = Json::object();
    Json args = Json::object();
    args.set("depth", e.depth);
    ev.set("name", e.name)
        .set("ph", "X")
        .set("ts", static_cast<double>(e.t0_ns) * 1e-3)
        .set("dur", e.duration_us())
        .set("pid", 1)
        .set("tid", e.tid)
        .set("args", std::move(args));
    trace_events.push(std::move(ev));
  }
  Json meta = Json::object();
  meta.set("schema", kTraceSchema)
      .set("span_count", static_cast<long long>(events.size()));
  if (registry != nullptr && !registry->empty())
    embed_snapshot(meta, *registry);
  Json root = Json::object();
  root.set("traceEvents", std::move(trace_events))
      .set("displayTimeUnit", "ms")
      .set("meta", std::move(meta));
  return root;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanEvent>& events,
                        const Snapshot* registry) {
  return write_json_file(path, chrome_trace_json(events, registry));
}

std::string spans_csv(const std::vector<SpanEvent>& events) {
  std::string out = "name,tid,depth,t0_us,dur_us\n";
  char buf[160];
  for (const SpanEvent& e : events) {
    std::snprintf(buf, sizeof buf, "%s,%d,%d,%.3f,%.3f\n", e.name, e.tid,
                  e.depth, static_cast<double>(e.t0_ns) * 1e-3,
                  e.duration_us());
    out += buf;
  }
  return out;
}

std::string snapshot_csv(const Snapshot& s) {
  std::string out = "kind,name,value\n";
  char buf[256];
  for (const auto& [k, v] : s.counters) {
    std::snprintf(buf, sizeof buf, "counter,%s,%lld\n", k.c_str(), v);
    out += buf;
  }
  for (const auto& [k, v] : s.times) {
    std::snprintf(buf, sizeof buf, "time,%s,%.9f\n", k.c_str(), v);
    out += buf;
  }
  for (const auto& [k, v] : s.gauges) {
    std::snprintf(buf, sizeof buf, "gauge,%s,%.17g\n", k.c_str(), v);
    out += buf;
  }
  return out;
}

void flush_env_trace() {
  if (!trace_env_requested()) return;
  std::vector<SpanEvent> events = Tracer::global().drain();
  if (events.empty()) return;
  const Snapshot registry = Registry::global().snapshot();
  const std::string path = trace_env_path();
  if (!write_chrome_trace(path, events, &registry))
    std::fprintf(stderr, "f3d::obs: cannot write trace to %s\n", path.c_str());
}

}  // namespace f3d::obs
