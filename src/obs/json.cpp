#include "obs/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace f3d::obs {

void fail(const std::string& msg) {
  throw std::runtime_error("f3d::obs: " + msg);
}

Json& Json::set(const std::string& key, Json value) {
  if (kind != Kind::kObject) fail("Json::set on a non-object");
  for (auto& [k, v] : members)
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  members.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind != Kind::kArray) fail("Json::push on a non-array");
  items.push_back(std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

double Json::number() const {
  if (kind == Kind::kInt) return static_cast<double>(i);
  if (kind == Kind::kDouble) return d;
  fail("Json::number on a non-numeric node");
}

namespace {

void json_escape(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void json_dump(const Json& v, int indent, int depth, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent) * depth, ' ');
  const std::string pad1(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  char buf[64];
  switch (v.kind) {
    case Json::Kind::kNull:
      out += "null";
      break;
    case Json::Kind::kBool:
      out += v.b ? "true" : "false";
      break;
    case Json::Kind::kInt:
      std::snprintf(buf, sizeof buf, "%lld", v.i);
      out += buf;
      break;
    case Json::Kind::kDouble:
      if (std::isfinite(v.d)) {
        std::snprintf(buf, sizeof buf, "%.17g", v.d);
        out += buf;
      } else {
        out += "null";  // JSON has no inf/nan
      }
      break;
    case Json::Kind::kString:
      json_escape(v.s, out);
      break;
    case Json::Kind::kArray: {
      if (v.items.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t k = 0; k < v.items.size(); ++k) {
        out += pad1;
        json_dump(v.items[k], indent, depth + 1, out);
        if (k + 1 < v.items.size()) out += ',';
        out += '\n';
      }
      out += pad + "]";
      break;
    }
    case Json::Kind::kObject: {
      if (v.members.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t k = 0; k < v.members.size(); ++k) {
        out += pad1;
        json_escape(v.members[k].first, out);
        out += ": ";
        json_dump(v.members[k].second, indent, depth + 1, out);
        if (k + 1 < v.members.size()) out += ',';
        out += '\n';
      }
      out += pad + "}";
      break;
    }
  }
}

// --- parser -----------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) error("trailing characters after value");
    return v;
  }

 private:
  [[noreturn]] void error(const std::string& what) const {
    fail("JSON parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) error("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) error(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': {
        // The parser is recursive descent: uncapped nesting turns "[[[[..."
        // into a stack overflow, which no try/catch can contain. 256 is
        // far beyond any document this library writes.
        if (++depth_ > kMaxDepth) error("nesting too deep");
        Json v = object();
        --depth_;
        return v;
      }
      case '[': {
        if (++depth_ > kMaxDepth) error("nesting too deep");
        Json v = array();
        --depth_;
        return v;
      }
      case '"': return Json(string());
      case 't':
        if (!consume_literal("true")) error("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) error("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) error("bad literal");
        return Json();
      default:
        return number();
    }
  }

  Json object() {
    expect('{');
    Json v = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    expect('[');
    Json v = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) error("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned cp = hex4();
          // Surrogate pairs: a high surrogate must be immediately followed
          // by \u + low surrogate; anything else (lone high, lone low)
          // would previously be mis-encoded as a 3-byte sequence that is
          // not valid UTF-8 — reject it instead.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              error("lone high surrogate");
            pos_ += 2;
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) error("lone high surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            error("lone low surrogate");
          }
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          error("unknown escape");
      }
    }
  }

  unsigned hex4() {
    if (pos_ + 4 > text_.size()) error("truncated \\u escape");
    unsigned cp = 0;
    for (int k = 0; k < 4; ++k) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
      else error("bad \\u escape digit");
    }
    return cp;
  }

  Json number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) error("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    if (is_double) {
      const double d = std::strtod(tok.c_str(), &end);
      if (end == nullptr || *end != '\0') error("bad number '" + tok + "'");
      // strtod saturates 1e999-style input to +-inf; the Json model (and
      // its dumper) has no representation for that, so reject it rather
      // than silently round-tripping inf -> null.
      if (!std::isfinite(d)) error("number out of range '" + tok + "'");
      return Json(d);
    }
    errno = 0;
    const long long i = std::strtoll(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') error("bad number '" + tok + "'");
    if (errno == ERANGE) {
      // Integer literal beyond int64 (strtoll would silently saturate to
      // LLONG_MAX/MIN): keep the value as a double approximation instead.
      const double d = std::strtod(tok.c_str(), &end);
      if (!std::isfinite(d)) error("number out of range '" + tok + "'");
      return Json(d);
    }
    return Json(i);
  }

  static constexpr int kMaxDepth = 256;
  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  json_dump(*this, indent, 0, out);
  return out;
}

Json parse_json(const std::string& text) { return Parser(text).parse(); }

bool write_json_file(const std::string& path, const Json& v) {
  std::ofstream f(path);
  if (!f.good()) return false;
  f << v.dump() << '\n';
  return f.good();
}

}  // namespace f3d::obs
