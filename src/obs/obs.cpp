#include "obs/obs.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace f3d::obs {

namespace {

bool env_tracing_requested() {
  const char* e = std::getenv("F3D_TRACE");
  return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
}

}  // namespace

namespace detail {

std::atomic<bool> g_tracing{env_tracing_requested()};

int& thread_depth() {
  thread_local int depth = 0;
  return depth;
}

}  // namespace detail

void set_tracing(bool on) {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

bool trace_env_requested() {
  static const bool requested = env_tracing_requested();
  return requested;
}

std::string trace_env_path() {
  const char* e = std::getenv("F3D_TRACE_OUT");
  return e != nullptr && *e != '\0' ? std::string(e) : std::string("trace.json");
}

// --- Tracer ---------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_next_tracer_id{1};

// Thread-local cache of (tracer id -> buffer). Keyed by a process-unique
// id, never a pointer, so a destroyed tracer's entries can never be
// matched again (stale pointers are unreachable, not dangling-deref'd).
struct TlsEntry {
  std::uint64_t tracer_id;
  void* buffer;
};
thread_local std::vector<TlsEntry> tl_buffers;
}  // namespace

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

Tracer::Buffer* Tracer::local_buffer() {
  for (const TlsEntry& e : tl_buffers)
    if (e.tracer_id == id_) return static_cast<Buffer*>(e.buffer);
  auto owned = std::make_unique<Buffer>();
  Buffer* raw = owned.get();
  {
    std::lock_guard<std::mutex> lk(mu_);
    raw->tid = static_cast<int>(buffers_.size());
    buffers_.push_back(std::move(owned));
  }
  tl_buffers.push_back({id_, raw});
  return raw;
}

void Tracer::record(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
                    int depth) {
  Buffer* b = local_buffer();
  if (b->events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b->events.push_back({name, b->tid, t0_ns, t1_ns, depth});
}

std::vector<SpanEvent> Tracer::drain() {
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& b : buffers_) {
      out.insert(out.end(), b->events.begin(), b->events.end());
      b->events.clear();
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.depth < b.depth;
                   });
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& b : buffers_) b->events.clear();
}

// --- Registry -------------------------------------------------------------

Registry& Registry::global() {
  static Registry r;
  return r;
}

int Registry::thread_slot() {
  static std::atomic<int> next{0};
  thread_local int slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

Registry::Registry(const Registry& o) { merge_snapshot(o.snapshot()); }

Registry& Registry::operator=(const Registry& o) {
  if (this != &o) {
    Snapshot s = o.snapshot();
    clear();
    merge_snapshot(s);
  }
  return *this;
}

void Registry::merge_snapshot(const Snapshot& s) {
  Shard& sh = shards_[0];
  std::lock_guard<std::mutex> lk(sh.mu);
  for (const auto& [k, v] : s.counters) sh.counters[k] += v;
  for (const auto& [k, v] : s.times) sh.times[k] += v;
  std::lock_guard<std::mutex> gl(gauge_mu_);
  for (const auto& [k, v] : s.gauges) gauges_[k] = v;
}

void Registry::count(const std::string& name, long long delta) {
  Shard& sh = my_shard();
  std::lock_guard<std::mutex> lk(sh.mu);
  sh.counters[name] += delta;
}

void Registry::add_time(const std::string& name, double seconds) {
  Shard& sh = my_shard();
  std::lock_guard<std::mutex> lk(sh.mu);
  sh.times[name] += seconds;
}

void Registry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lk(gauge_mu_);
  gauges_[name] = value;
}

long long Registry::counter(const std::string& name) const {
  long long total = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.mu);
    auto it = sh.counters.find(name);
    if (it != sh.counters.end()) total += it->second;
  }
  return total;
}

double Registry::seconds(const std::string& name) const {
  double total = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.mu);
    auto it = sh.times.find(name);
    if (it != sh.times.end()) total += it->second;
  }
  return total;
}

double Registry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lk(gauge_mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

double Registry::total_time() const {
  double total = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.mu);
    for (const auto& [k, v] : sh.times) total += v;
  }
  return total;
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.mu);
    for (const auto& [k, v] : sh.counters) s.counters[k] += v;
    for (const auto& [k, v] : sh.times) s.times[k] += v;
  }
  std::lock_guard<std::mutex> lk(gauge_mu_);
  s.gauges = gauges_;
  return s;
}

void Registry::clear() {
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.counters.clear();
    sh.times.clear();
  }
  std::lock_guard<std::mutex> lk(gauge_mu_);
  gauges_.clear();
}

}  // namespace f3d::obs
