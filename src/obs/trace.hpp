#pragma once
// Sinks for the observability layer: Chrome trace_event JSON (loadable in
// chrome://tracing and https://ui.perfetto.dev), CSV, and the unified
// BENCH_*.json report schema every benchmark artifact uses. The
// human-readable table sink lives in common/table.hpp (f3d::Table sits
// above obs in the layering); see registry_table()/spans_table() there.
// Schemas are documented in docs/OBSERVABILITY.md.

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace f3d::obs {

inline constexpr const char* kBenchSchema = "f3d-bench-v1";
inline constexpr const char* kTraceSchema = "f3d-trace-v1";

// --- unified BENCH_*.json schema ------------------------------------------

/// Wrap an experiment's payload in the common envelope:
///   { "meta": { "schema": "f3d-bench-v1", "experiment": <name> },
///     "series": <series> }
Json make_bench_report(const std::string& experiment, Json series);

/// True when `v` already carries a valid f3d-bench-v1 envelope.
bool is_bench_report(const Json& v);

// --- Chrome trace_event sink ----------------------------------------------

/// Object-format Chrome trace: {"traceEvents": [...], "displayTimeUnit":
/// "ms", "meta": {"schema": "f3d-trace-v1", ...}}. Every span becomes one
/// complete ("ph":"X") event with microsecond ts/dur; per-tracer thread
/// ids map to trace tids. A non-null registry snapshot is embedded under
/// meta.counters/meta.times/meta.gauges.
Json chrome_trace_json(const std::vector<SpanEvent>& events,
                       const Snapshot* registry = nullptr);

/// Serialize chrome_trace_json to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanEvent>& events,
                        const Snapshot* registry = nullptr);

// --- CSV sinks ------------------------------------------------------------

/// "name,tid,depth,t0_us,dur_us" rows, header included.
std::string spans_csv(const std::vector<SpanEvent>& events);

/// "kind,name,value" rows (kind = counter|time|gauge), header included.
std::string snapshot_csv(const Snapshot& s);

// --- env-driven flush ------------------------------------------------------

/// If the process was started with F3D_TRACE set: drain the global tracer
/// and write a Chrome trace (with the global registry embedded) to
/// F3D_TRACE_OUT (default "trace.json"). Called by ptc_solve at the end
/// of every solve — the file always holds the most recent solve.
/// Best-effort: an unwritable path warns on stderr instead of throwing.
void flush_env_trace();

}  // namespace f3d::obs
