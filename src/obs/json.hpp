#pragma once
// Minimal JSON value type for the machine-readable artifacts of the
// observability layer: BENCH_*.json reports (meta+series schema, see
// docs/OBSERVABILITY.md) and Chrome trace_event files. Objects keep
// insertion order; doubles print with %.17g so dump -> parse round-trips
// are exact. The parser accepts exactly the subset dump() emits (strict
// JSON, no comments, no trailing commas).
//
// This header is part of f3d::obs, which sits below every other library
// in the stack — it deliberately depends on nothing but the standard
// library (errors are std::runtime_error, not f3d::Error).

#include <string>
#include <utility>
#include <vector>

namespace f3d::obs {

/// Throws std::runtime_error with an "f3d::obs: " prefix.
[[noreturn]] void fail(const std::string& msg);

struct Json {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  long long i = 0;
  double d = 0;
  std::string s;
  std::vector<Json> items;                            ///< kArray
  std::vector<std::pair<std::string, Json>> members;  ///< kObject

  Json() = default;
  Json(bool v) : kind(Kind::kBool), b(v) {}
  Json(int v) : kind(Kind::kInt), i(v) {}
  Json(long long v) : kind(Kind::kInt), i(v) {}
  Json(double v) : kind(Kind::kDouble), d(v) {}
  Json(const char* v) : kind(Kind::kString), s(v) {}
  Json(std::string v) : kind(Kind::kString), s(std::move(v)) {}

  static Json object() {
    Json j;
    j.kind = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind = Kind::kArray;
    return j;
  }

  /// Insert/overwrite an object member (keeps first-insertion order).
  Json& set(const std::string& key, Json value);
  /// Append an array element.
  Json& push(Json value);

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Numeric value of a kInt or kDouble node.
  [[nodiscard]] double number() const;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  [[nodiscard]] std::string dump(int indent = 2) const;
};

/// Strict parser for the subset dump() writes (which is all of JSON minus
/// exotic escapes). Throws std::runtime_error with position info on
/// malformed input.
Json parse_json(const std::string& text);

/// Serialize `v` to `path` (pretty-printed, trailing newline). Returns
/// false if the file cannot be opened or written.
bool write_json_file(const std::string& path, const Json& v);

}  // namespace f3d::obs
