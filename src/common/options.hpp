#pragma once
// Tiny command-line option parser in the spirit of PETSc's options
// database: `-key value` or `-flag`. Examples and benches use it so every
// experiment's parameters can be overridden from the shell.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace f3d {

class Options {
public:
  Options() = default;
  Options(int argc, const char* const* argv);

  /// True if `-name` was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] int get_int(const std::string& name, int fallback) const;
  /// Full-width unsigned parse (PRNG seeds for fault-injection campaigns).
  [[nodiscard]] std::uint64_t get_uint64(const std::string& name,
                                         std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Set programmatically (tests).
  void set(const std::string& name, const std::string& value);

  /// Positional (non-option) arguments.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace f3d
