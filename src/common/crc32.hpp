#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
// Used to frame anything whose silent corruption must be detected rather
// than deserialized into garbage: checkpoint payloads on disk and the
// buddy (diskless neighbor) checkpoint copies of the distributed
// resilience model.

#include <array>
#include <cstddef>
#include <cstdint>

namespace f3d {

/// CRC of `n` bytes at `data`; chainable via `seed` (pass the previous
/// call's result to continue a running checksum).
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < n; ++i)
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return ~c;
}

}  // namespace f3d
