#pragma once
// Small dense-block kernels used by the block sparse (BAIJ) path: in-place
// LU factorization of nb-by-nb diagonal blocks, triangular solves with
// them, and block multiply-accumulate. Blocks are stored row-major and are
// small (nb = 4 incompressible, nb = 5 compressible), so everything is a
// straightforward register-friendly triple loop.

#include <cstddef>
#include <type_traits>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace f3d::dense {

namespace detail {
// The gemv kernels take a one-pack fast path for the incompressible
// block size (nb == 4 — one full f3d::simd::Vd row) when the SIMD
// dispatch is on and the accumulate type is double. The pack dot uses the
// fixed pairwise hsum, so it rounds differently from the sequential
// scalar loop but identically everywhere it is called — both BlockIlu
// trisolve variants (serial reference and level-scheduled) funnel through
// here, which keeps their bitwise equivalence intact per configuration.
template <class TA, class TX, class TY>
inline constexpr bool kGemvSimdEligible =
    std::is_same_v<TX, double> && std::is_same_v<TY, double> &&
    (std::is_same_v<TA, double> || std::is_same_v<TA, float>);
}  // namespace detail

/// y += A * x for a row-major nb x nb block.
template <class TA, class TX, class TY>
inline void gemv_acc(int nb, const TA* a, const TX* x, TY* y) {
  if constexpr (detail::kGemvSimdEligible<TA, TX, TY>) {
    if (nb == simd::kDoubleLanes && simd::enabled()) {
      const simd::Vd xv = simd::Vd::loadu(x);
      for (int i = 0; i < simd::kDoubleLanes; ++i)
        y[i] += (simd::Vd::loadu(a + static_cast<std::size_t>(i) *
                                         simd::kDoubleLanes) *
                 xv)
                    .hsum();
      return;
    }
  }
  for (int i = 0; i < nb; ++i) {
    TY s = 0;
    const TA* row = a + static_cast<std::size_t>(i) * nb;
    for (int j = 0; j < nb; ++j) s += static_cast<TY>(row[j]) * static_cast<TY>(x[j]);
    y[i] += s;
  }
}

/// y -= A * x for a row-major nb x nb block.
template <class TA, class TX, class TY>
inline void gemv_sub(int nb, const TA* a, const TX* x, TY* y) {
  if constexpr (detail::kGemvSimdEligible<TA, TX, TY>) {
    if (nb == simd::kDoubleLanes && simd::enabled()) {
      const simd::Vd xv = simd::Vd::loadu(x);
      for (int i = 0; i < simd::kDoubleLanes; ++i)
        y[i] -= (simd::Vd::loadu(a + static_cast<std::size_t>(i) *
                                         simd::kDoubleLanes) *
                 xv)
                    .hsum();
      return;
    }
  }
  for (int i = 0; i < nb; ++i) {
    TY s = 0;
    const TA* row = a + static_cast<std::size_t>(i) * nb;
    for (int j = 0; j < nb; ++j) s += static_cast<TY>(row[j]) * static_cast<TY>(x[j]);
    y[i] -= s;
  }
}

/// C -= A * B (all row-major nb x nb blocks).
template <class T>
inline void gemm_sub(int nb, const T* a, const T* b, T* c) {
  for (int i = 0; i < nb; ++i) {
    for (int k = 0; k < nb; ++k) {
      const T aik = a[static_cast<std::size_t>(i) * nb + k];
      const T* brow = b + static_cast<std::size_t>(k) * nb;
      T* crow = c + static_cast<std::size_t>(i) * nb;
      for (int j = 0; j < nb; ++j) crow[j] -= aik * brow[j];
    }
  }
}

/// In-place LU factorization (no pivoting; the Euler point Jacobians we
/// factor are strongly diagonally dominated by the pseudo-timestep term).
/// Returns false if a zero/denormal pivot is hit.
template <class T>
inline bool lu_factor(int nb, T* a) {
  for (int k = 0; k < nb; ++k) {
    T pivot = a[static_cast<std::size_t>(k) * nb + k];
    if (!(pivot != T(0))) return false;
    T inv = T(1) / pivot;
    for (int i = k + 1; i < nb; ++i) {
      T lik = a[static_cast<std::size_t>(i) * nb + k] * inv;
      a[static_cast<std::size_t>(i) * nb + k] = lik;
      for (int j = k + 1; j < nb; ++j)
        a[static_cast<std::size_t>(i) * nb + j] -=
            lik * a[static_cast<std::size_t>(k) * nb + j];
    }
  }
  return true;
}

/// Solve (LU) x = b with factors from lu_factor; x may alias b.
template <class TA, class T>
inline void lu_solve(int nb, const TA* lu, const T* b, T* x) {
  // Forward: L y = b (unit diagonal).
  for (int i = 0; i < nb; ++i) {
    T s = b[i];
    for (int j = 0; j < i; ++j)
      s -= static_cast<T>(lu[static_cast<std::size_t>(i) * nb + j]) * x[j];
    x[i] = s;
  }
  // Backward: U x = y.
  for (int i = nb - 1; i >= 0; --i) {
    T s = x[i];
    for (int j = i + 1; j < nb; ++j)
      s -= static_cast<T>(lu[static_cast<std::size_t>(i) * nb + j]) * x[j];
    x[i] = s / static_cast<T>(lu[static_cast<std::size_t>(i) * nb + i]);
  }
}

/// B := A^{-1} * B where A is given as LU factors (used by block ILU:
/// multiplies an off-diagonal block by the inverted diagonal pivot block).
template <class T>
inline void lu_solve_block(int nb, const T* lu, T* b) {
  // Solve column by column: (LU) X = B, B row-major.
  for (int col = 0; col < nb; ++col) {
    // Forward.
    for (int i = 0; i < nb; ++i) {
      T s = b[static_cast<std::size_t>(i) * nb + col];
      for (int j = 0; j < i; ++j)
        s -= lu[static_cast<std::size_t>(i) * nb + j] *
             b[static_cast<std::size_t>(j) * nb + col];
      b[static_cast<std::size_t>(i) * nb + col] = s;
    }
    // Backward.
    for (int i = nb - 1; i >= 0; --i) {
      T s = b[static_cast<std::size_t>(i) * nb + col];
      for (int j = i + 1; j < nb; ++j)
        s -= lu[static_cast<std::size_t>(i) * nb + j] *
             b[static_cast<std::size_t>(j) * nb + col];
      b[static_cast<std::size_t>(i) * nb + col] =
          s / lu[static_cast<std::size_t>(i) * nb + i];
    }
  }
}

/// B := B * (LU)^{-1} (right-multiplication by the inverse of a factored
/// block). Used by block ILU to normalize sub-diagonal blocks:
/// A_ik := A_ik * A_kk^{-1}. Row r of B is independent:
///   solve y U = b (forward in U^T), then x L = y (backward in L^T).
template <class T>
inline void right_lu_solve_block(int nb, const T* lu, T* b) {
  for (int r = 0; r < nb; ++r) {
    T* row = b + static_cast<std::size_t>(r) * nb;
    // y U = row  (U upper, non-unit diagonal)
    for (int j = 0; j < nb; ++j) {
      T s = row[j];
      for (int i = 0; i < j; ++i)
        s -= row[i] * lu[static_cast<std::size_t>(i) * nb + j];
      row[j] = s / lu[static_cast<std::size_t>(j) * nb + j];
    }
    // x L = y  (L unit lower)
    for (int j = nb - 1; j >= 0; --j) {
      T s = row[j];
      for (int i = j + 1; i < nb; ++i)
        s -= row[i] * lu[static_cast<std::size_t>(i) * nb + j];
      row[j] = s;
    }
  }
}

}  // namespace f3d::dense
