#include "common/table.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace f3d {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  F3D_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  F3D_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(long long v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      if (r[c].size() > width[c]) width[c] = r[c].size();

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << "| " << r[c];
      for (std::size_t p = r[c].size(); p < width[c]; ++p) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|";
    for (std::size_t p = 0; p < width[c] + 2; ++p) os << '-';
  }
  os << "|\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace f3d
