#include "common/table.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace f3d {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  F3D_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  F3D_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(long long v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      if (r[c].size() > width[c]) width[c] = r[c].size();

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << "| " << r[c];
      for (std::size_t p = r[c].size(); p < width[c]; ++p) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|";
    for (std::size_t p = 0; p < width[c] + 2; ++p) os << '-';
  }
  os << "|\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

Table registry_table(const obs::Snapshot& snapshot) {
  Table t({"kind", "name", "value"});
  for (const auto& [k, v] : snapshot.counters)
    t.add_row({"counter", k, Table::num(v)});
  for (const auto& [k, v] : snapshot.times)
    t.add_row({"time", k, Table::num(v, 6) + "s"});
  for (const auto& [k, v] : snapshot.gauges)
    t.add_row({"gauge", k, Table::num(v, 3)});
  return t;
}

Table spans_table(const std::vector<obs::SpanEvent>& events) {
  // Aggregate by name, preserving first-appearance order.
  std::vector<std::string> order;
  struct Agg {
    long long count = 0;
    double total_us = 0;
  };
  std::vector<Agg> aggs;
  for (const auto& e : events) {
    std::size_t k = 0;
    for (; k < order.size(); ++k)
      if (order[k] == e.name) break;
    if (k == order.size()) {
      order.emplace_back(e.name);
      aggs.emplace_back();
    }
    ++aggs[k].count;
    aggs[k].total_us += e.duration_us();
  }
  Table t({"span", "count", "total", "mean"});
  for (std::size_t k = 0; k < order.size(); ++k) {
    t.add_row({order[k], Table::num(aggs[k].count),
               Table::num(aggs[k].total_us * 1e-3, 3) + "ms",
               Table::num(aggs[k].count > 0
                              ? aggs[k].total_us / static_cast<double>(
                                                       aggs[k].count)
                              : 0.0,
                          1) +
                   "us"});
  }
  return t;
}

}  // namespace f3d
