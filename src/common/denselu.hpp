#pragma once
// General dense LU with partial pivoting, for small dense systems that
// are not diagonally dominant — notably the coarse-space operator of the
// two-level Schwarz preconditioner (size = subdomains x components).

#include <vector>

namespace f3d::dense {

/// Dense row-major matrix with in-place factorization and solve.
class DenseLu {
public:
  DenseLu() = default;

  /// Factor a row-major n x n matrix (copied). Returns false if
  /// numerically singular.
  bool factor(int n, const double* a);

  /// Solve A x = b using the stored factors; x may alias b.
  void solve(const double* b, double* x) const;

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] bool ok() const { return ok_; }

private:
  int n_ = 0;
  bool ok_ = false;
  std::vector<double> lu_;   ///< packed L\U factors
  std::vector<int> piv_;     ///< row permutation
};

}  // namespace f3d::dense
