#pragma once
// f3d::simd — a small portable SIMD layer for the hot kernels: fixed
// 4-lane double packs over GCC/Clang vector extensions, with a scalar
// fallback that performs the identical lane-wise arithmetic when the
// build disables vectorization (F3D_SIMD=OFF).
//
// Precision policy (see DESIGN.md "SIMD + precision"): packs always hold
// *doubles*; loading from a float pointer promotes each lane to double
// before any arithmetic. This is the storage-precision/accumulate-
// precision split of the paper's Table 2 — float cuts the memory traffic,
// double keeps the arithmetic — and routing every promoted load through
// Vd::loadu(const float*) keeps the promote-to-double contract in one
// place.
//
// Determinism contract: within one (isa, precision) build configuration
// every pack operation is IEEE per-lane with a fixed lane order, and
// hsum() combines lanes in a fixed pairwise tree ((l0+l1)+(l2+l3)) — so
// any kernel built from these packs gives bit-identical results at any
// thread count, exactly like the scalar kernels. Across configurations
// (SIMD on/off, different summation strip widths) rounding may differ;
// the bitwise-identity guarantees are per-configuration by design.
//
// Runtime toggle: kernels branch on simd::enabled() once per call, so a
// single binary can run its scalar and SIMD variants back to back (the
// bench_simd A/B series). In an F3D_SIMD=OFF build enabled() is pinned
// false — the scalar-fallback CI lane exercises the plain loops only.

#include <atomic>
#include <cstring>

namespace f3d::simd {

#if defined(F3D_SIMD_VEC) && (defined(__GNUC__) || defined(__clang__))
#define F3D_SIMD_HAVE_VEC 1
#else
#define F3D_SIMD_HAVE_VEC 0
#endif

/// Lanes per double pack. Fixed at 4 (one 256-bit register, or a pair of
/// 128-bit ops on narrower hardware — the compiler splits as needed);
/// part of the per-configuration numerical contract like
/// exec::kReduceBlock.
inline constexpr int kDoubleLanes = 4;

/// True when the build compiled the vector-extension backend.
[[nodiscard]] constexpr bool compiled() { return F3D_SIMD_HAVE_VEC == 1; }

namespace detail {
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{compiled()};
  return flag;
}
}  // namespace detail

/// Process-wide dispatch switch consulted once per kernel call. Defaults
/// to the compiled setting; set_enabled(false) forces the scalar kernels
/// (the bench A/B baseline). Cannot enable what was not compiled.
[[nodiscard]] inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::enabled_flag().store(on && compiled(), std::memory_order_relaxed);
}

/// RAII scope for the A/B benches and the identity tests.
class EnabledScope {
public:
  explicit EnabledScope(bool on) : prev_(enabled()) { set_enabled(on); }
  ~EnabledScope() { set_enabled(prev_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

private:
  bool prev_;
};

/// Best compile-time ISA name (for BENCH_*.json meta.host_isa).
[[nodiscard]] inline const char* isa_name() {
#if !F3D_SIMD_HAVE_VEC
  return "scalar";
#elif defined(__AVX512F__)
  return "avx512f";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__AVX__)
  return "avx";
#elif defined(__SSE2__) || defined(_M_X64)
  return "sse2";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "generic";
#endif
}

[[nodiscard]] inline const char* target_arch() {
#if defined(__x86_64__) || defined(_M_X64)
  return "x86_64";
#elif defined(__aarch64__)
  return "aarch64";
#else
  return "unknown";
#endif
}

/// Lanes the dispatched kernels actually use right now.
[[nodiscard]] inline int double_lanes() { return enabled() ? kDoubleLanes : 1; }

/// Four doubles. All loads are memcpy-based (UBSan-clean on unaligned
/// addresses); loading from float promotes per lane — the one place
/// storage scalars widen to the accumulate precision.
struct Vd {
#if F3D_SIMD_HAVE_VEC
  typedef double Raw __attribute__((vector_size(kDoubleLanes * sizeof(double))));
  Raw r;
#else
  double r[kDoubleLanes];
#endif

  static Vd zero() {
    Vd v;
#if F3D_SIMD_HAVE_VEC
    v.r = Raw{0.0, 0.0, 0.0, 0.0};
#else
    for (double& x : v.r) x = 0.0;
#endif
    return v;
  }

  static Vd broadcast(double a) {
    Vd v;
#if F3D_SIMD_HAVE_VEC
    v.r = Raw{a, a, a, a};
#else
    for (double& x : v.r) x = a;
#endif
    return v;
  }

  static Vd loadu(const double* p) {
    Vd v;
    std::memcpy(&v.r, p, kDoubleLanes * sizeof(double));
    return v;
  }

  /// Promoting load: four stored floats widen to four double lanes.
  static Vd loadu(const float* p) {
    float f[kDoubleLanes];
    std::memcpy(f, p, kDoubleLanes * sizeof(float));
    Vd v;
#if F3D_SIMD_HAVE_VEC
    v.r = Raw{static_cast<double>(f[0]), static_cast<double>(f[1]),
              static_cast<double>(f[2]), static_cast<double>(f[3])};
#else
    for (int i = 0; i < kDoubleLanes; ++i) v.r[i] = static_cast<double>(f[i]);
#endif
    return v;
  }

  /// Gather four doubles through 32-bit indices (SpMV column access).
  static Vd gather(const double* base, const int* idx) {
    Vd v;
#if F3D_SIMD_HAVE_VEC
    v.r = Raw{base[idx[0]], base[idx[1]], base[idx[2]], base[idx[3]]};
#else
    for (int i = 0; i < kDoubleLanes; ++i) v.r[i] = base[idx[i]];
#endif
    return v;
  }

  void storeu(double* p) const {
    std::memcpy(p, &r, kDoubleLanes * sizeof(double));
  }

  [[nodiscard]] double lane(int i) const {
#if F3D_SIMD_HAVE_VEC
    return r[i];
#else
    return r[i];
#endif
  }

  /// Fixed pairwise combine: (l0 + l1) + (l2 + l3). Part of the
  /// per-configuration determinism contract.
  [[nodiscard]] double hsum() const {
    return (lane(0) + lane(1)) + (lane(2) + lane(3));
  }

  Vd& operator+=(const Vd& o) {
#if F3D_SIMD_HAVE_VEC
    r += o.r;
#else
    for (int i = 0; i < kDoubleLanes; ++i) r[i] += o.r[i];
#endif
    return *this;
  }
  Vd& operator-=(const Vd& o) {
#if F3D_SIMD_HAVE_VEC
    r -= o.r;
#else
    for (int i = 0; i < kDoubleLanes; ++i) r[i] -= o.r[i];
#endif
    return *this;
  }
  Vd& operator*=(const Vd& o) {
#if F3D_SIMD_HAVE_VEC
    r *= o.r;
#else
    for (int i = 0; i < kDoubleLanes; ++i) r[i] *= o.r[i];
#endif
    return *this;
  }

  friend Vd operator+(Vd a, const Vd& b) { return a += b; }
  friend Vd operator-(Vd a, const Vd& b) { return a -= b; }
  friend Vd operator*(Vd a, const Vd& b) { return a *= b; }
};

}  // namespace f3d::simd
