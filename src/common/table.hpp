#pragma once
// Minimal ASCII table formatter used by the benchmark harnesses to print
// paper-style tables (paper-reported values side by side with measured or
// modeled ones).

#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace f3d {

class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2);
  /// Format an integer.
  static std::string num(long long v);

  /// Render with column alignment and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// Render directly to stdout.
  void print() const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Human-readable table sink for the observability layer: one row per
/// registry entry (kind, name, value), sorted by name within kind.
[[nodiscard]] Table registry_table(const obs::Snapshot& snapshot);

/// Spans aggregated by name: count, total ms, mean us. `events` is a
/// Tracer::drain() result.
[[nodiscard]] Table spans_table(const std::vector<obs::SpanEvent>& events);

}  // namespace f3d
