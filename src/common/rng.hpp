#pragma once
// Deterministic, fast PRNG (xoshiro256**). All randomized components of the
// library (mesh vertex shuffles, synthetic workloads, partitioner seeds)
// take an explicit seed so every experiment is reproducible.

#include <cstdint>
#include <utility>

namespace f3d {

/// xoshiro256** by Blackman & Vigna; public-domain reference algorithm.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to fill the state from a single word.
    std::uint64_t z = seed;
    for (auto& si : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      si = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Fisher-Yates shuffle with an f3d::Rng (deterministic given the seed).
template <class Vec>
void shuffle(Vec& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace f3d
