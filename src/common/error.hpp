#pragma once
// Error handling utilities for the f3d library.
//
// Library code throws f3d::Error on precondition violations and
// unrecoverable numerical failures; hot loops use F3D_ASSERT which compiles
// out in release unless F3D_ENABLE_ASSERTS is defined.

#include <stdexcept>
#include <string>

namespace f3d {

/// Exception type thrown by all f3d components.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Numerical failure (zero pivot, NaN residual, singular operator) — as
/// opposed to an API precondition violation. Recoverable in principle:
/// the resilient solver paths downgrade these to status returns; the
/// plain paths throw this subclass so callers can tell a solver breakdown
/// apart from a programming error.
class NumericalError : public Error {
public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* cond, const char* file, int line,
                               const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": check `" +
              cond + "` failed" + (msg.empty() ? "" : ": " + msg));
}
[[noreturn]] inline void raise_numeric(const char* cond, const char* file,
                                       int line, const std::string& msg) {
  throw NumericalError(std::string(file) + ":" + std::to_string(line) +
                       ": numerical check `" + cond + "` failed" +
                       (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

/// Always-on check for API preconditions and invariants.
#define F3D_CHECK(cond)                                      \
  do {                                                       \
    if (!(cond)) ::f3d::detail::raise(#cond, __FILE__, __LINE__, {}); \
  } while (0)

/// Always-on check with a context message.
#define F3D_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::f3d::detail::raise(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Always-on check that throws f3d::NumericalError — for conditions that
/// signal solver breakdown rather than caller misuse.
#define F3D_NUMERIC_CHECK_MSG(cond, msg)                              \
  do {                                                                \
    if (!(cond))                                                      \
      ::f3d::detail::raise_numeric(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Debug-only assert for hot loops.
#if defined(F3D_ENABLE_ASSERTS)
#define F3D_ASSERT(cond) F3D_CHECK(cond)
#else
#define F3D_ASSERT(cond) ((void)0)
#endif

}  // namespace f3d
