#include "common/options.hpp"

#include <cctype>
#include <cstdlib>

namespace f3d {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() > 1 && arg[0] == '-' &&
        !(arg.size() > 1 && (std::isdigit(static_cast<unsigned char>(arg[1])) ||
                             arg[1] == '.'))) {
      std::string key = arg.substr(arg[1] == '-' ? 2 : 1);
      // Value = next token unless it is another option.
      if (i + 1 < argc) {
        std::string next = argv[i + 1];
        bool next_is_opt =
            next.size() > 1 && next[0] == '-' &&
            !std::isdigit(static_cast<unsigned char>(next[1])) && next[1] != '.';
        if (!next_is_opt) {
          kv_[key] = next;
          ++i;
          continue;
        }
      }
      kv_[key] = "";
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Options::has(const std::string& name) const { return kv_.count(name) > 0; }

int Options::get_int(const std::string& name, int fallback) const {
  auto it = kv_.find(name);
  if (it == kv_.end() || it->second.empty()) return fallback;
  return std::atoi(it->second.c_str());
}

std::uint64_t Options::get_uint64(const std::string& name,
                                  std::uint64_t fallback) const {
  auto it = kv_.find(name);
  if (it == kv_.end() || it->second.empty()) return fallback;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& name, double fallback) const {
  auto it = kv_.find(name);
  if (it == kv_.end() || it->second.empty()) return fallback;
  return std::atof(it->second.c_str());
}

std::string Options::get_string(const std::string& name,
                                const std::string& fallback) const {
  auto it = kv_.find(name);
  if (it == kv_.end() || it->second.empty()) return fallback;
  return it->second;
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return fallback;
  if (it->second.empty()) return true;  // bare flag
  return it->second == "1" || it->second == "true" || it->second == "yes" ||
         it->second == "on";
}

void Options::set(const std::string& name, const std::string& value) {
  kv_[name] = value;
}

}  // namespace f3d
