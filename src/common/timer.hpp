#pragma once
// Wall-clock timing utilities.

#include <chrono>
#include <map>
#include <string>

#include "obs/obs.hpp"

namespace f3d {

/// Monotonic wall-clock stopwatch.
class Timer {
public:
  Timer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named time buckets (e.g. "flux", "spmv", "trisolve").
/// Used by the solver to report the per-phase breakdown the paper's
/// Table 3 analyses.
///
/// A thin shim over obs::Registry time buckets: concurrent Scope
/// destructors (e.g. from exec::Pool workers) accumulate into
/// per-thread-striped shards, so adds never race on a shared map the way
/// the old std::map-backed implementation did.
class PhaseTimers {
public:
  /// RAII scope: adds elapsed time to the named bucket on destruction.
  class Scope {
  public:
    Scope(PhaseTimers& owner, std::string name)
        : owner_(owner), name_(std::move(name)) {}
    ~Scope() { owner_.add(name_, t_.seconds()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    PhaseTimers& owner_;
    std::string name_;
    Timer t_;
  };

  void add(const std::string& name, double sec) { reg_.add_time(name, sec); }

  [[nodiscard]] double get(const std::string& name) const {
    return reg_.seconds(name);
  }

  [[nodiscard]] double total() const { return reg_.total_time(); }

  /// Merged view of the buckets (by value: the per-thread shards are
  /// folded together at the call).
  [[nodiscard]] std::map<std::string, double> buckets() const {
    return reg_.snapshot().times;
  }

  void clear() { reg_.clear(); }

  /// The backing registry (counters/gauges ride along with the times).
  [[nodiscard]] obs::Registry& registry() { return reg_; }

private:
  obs::Registry reg_;
};

}  // namespace f3d
